// Package repro is the public API of the Adaptive Index Buffer library —
// a from-scratch Go reproduction of "Adaptive Index Buffer" (Voigt,
// Jaekel, Kissinger, Lehner; ICDE Workshops 2012).
//
// The library bundles a small storage engine (slotted-page heap tables on
// a simulated disk behind an LRU buffer pool), partial secondary B+-tree
// indexes, and the paper's contribution: volatile in-memory Index Buffers
// that complete the indexing of table pages during scans so subsequent
// scans can skip them, managed by benefit within a bounded Index Buffer
// Space.
//
// Quick start:
//
//	db, _ := repro.Open(repro.Options{SpaceLimit: 100000})
//	t, _ := db.CreateTable("flights",
//		repro.Int64Column("delay"),
//		repro.StringColumn("airport"),
//	)
//	t.Insert(int64(12), "ORD")
//	t.CreatePartialRangeIndex("delay", 0, 60)
//	rows, stats, _ := t.Query("delay", int64(12)) // partial index hit
//	rows, stats, _ = t.Query("delay", int64(90))  // miss: indexing scan
//	_ = rows
//	_ = stats.PagesSkipped
//
// A DB is safe for concurrent use: index-covered reads run in parallel
// across goroutines, while DML and buffer-building scans serialize per
// table (see DESIGN.md, "Concurrency model"). Concurrent misses on the
// same table and column are coalesced into one shared indexing scan
// rather than queuing for their own (SharedScanStats reports how often);
// long scans can be abandoned via the context-aware variants QueryCtx
// and QueryRangeCtx.
//
// See the examples/ directory for runnable programs and cmd/aibench for
// the paper's full experiment suite.
package repro

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/exec"
	"repro/internal/flight"
	"repro/internal/index"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/shell"
	"repro/internal/storage"
	"repro/internal/timeline"
	"repro/internal/trace"
	"repro/internal/wal"
)

// Options configures a database. The zero value gives the paper's
// defaults: B+-tree buffers, I^MAX = 5000 pages, P = 10000 pages,
// LRU-2 histories, unlimited Index Buffer Space.
type Options struct {
	// IMax caps pages indexed per table scan (paper I^MAX).
	IMax int
	// PartitionPages is the page capacity of one buffer partition
	// (paper P).
	PartitionPages int
	// HistoryDepth is the LRU-K depth (paper K).
	HistoryDepth int
	// SpaceLimit bounds total Index Buffer entries (paper L); 0 =
	// unlimited.
	SpaceLimit int
	// PoolPages is the buffer-pool capacity per table.
	PoolPages int
	// ScanParallelism bounds the worker pool every table-scan stage
	// (indexing scans and full scans) fans out to: 1 forces the serial
	// scan, n > 1 splits the page range into contiguous chunks read by at
	// most n goroutines, and 0 (the default) uses GOMAXPROCS. Query
	// results, QueryStats, and Index Buffer state are identical across
	// settings — parallelism changes wall-clock time only. Each worker
	// pins one buffer-pool page, so keep PoolPages comfortably above the
	// parallelism.
	ScanParallelism int
	// Structure selects the buffer's index structure.
	Structure Structure
	// Selection orders the page candidates of Algorithm 2's selection.
	// The zero value is the paper's ascending-counter policy; see
	// SelectRandom for the workloads where determinism backfires.
	Selection SelectionPolicy
	// DisplacementJitter is the probability, per victim-partition pick,
	// that displacement drops a uniformly random partition instead of
	// following the paper's deterministic incomplete-first order. 0 (the
	// default) is the paper's policy; nonzero values defeat workloads
	// that key off displacement events to starve a buffer (cf.
	// stochastic cracking). Must be in [0, 1].
	DisplacementJitter float64
	// Seed drives every random stream of the database — benefit-weighted
	// victim selection, SelectRandom page ordering and displacement
	// jitter — per the repo seeding convention (sub-streams derive from
	// this one seed by fixed offsets). 0 means a fixed default, so runs
	// are reproducible unless a seed is chosen explicitly.
	Seed int64
	// DisableIndexBuffer turns the contribution off (baseline mode):
	// partial-index misses degrade to full scans.
	DisableIndexBuffer bool
	// DisableEpochReadPath turns the epoch-based lock-free read path off,
	// forcing every query through the table RWMutex. Results and counters
	// are identical either way; the flag exists as the RWMutex baseline
	// arm of the contended-read benchmarks (cmd/aibench -epoch).
	DisableEpochReadPath bool
	// DataDir, when non-empty, stores table pages in real files under
	// the directory instead of the in-memory simulated disk. Call Close
	// to flush and release them.
	DataDir string
	// ReadLatency and WriteLatency, when positive, charge each simulated
	// disk access with a sleep so wall-clock behavior (and contention)
	// takes a real device's shape. Ignored for DataDir-backed tables.
	ReadLatency  time.Duration
	WriteLatency time.Duration
	// WAL configures crash-consistent durability for DataDir-backed
	// databases: every acknowledged DML is written ahead to a log, and
	// OpenExisting replays it so a crash — process kill, power cut —
	// loses nothing that was acknowledged. The zero value enables the
	// log with group commit. Ignored for in-memory databases.
	WAL WALOptions
	// Tenants declares the database's budget domains: each tenant's
	// Index Buffers compete within the tenant's entry quota before the
	// global pool, and an over-quota tenant's misses degrade to
	// unindexed scans instead of evicting other tenants' buffers (or
	// fail with ErrQuotaExceeded for a strict tenant). Tables created
	// through a tenant Session are visible to that tenant only. More
	// tenants can be added later with CreateTenant.
	Tenants []Tenant
}

// WALOptions configures the write-ahead log (Options.WAL).
type WALOptions struct {
	// Disable turns the WAL off, reverting to snapshot-only persistence:
	// only Save/Close write durable state, and anything after the last
	// Save is lost on a crash.
	Disable bool
	// Sync selects the commit durability protocol; the zero value is
	// SyncBatch (group commit).
	Sync SyncPolicy
	// SegmentBytes overrides the log segment rotation threshold
	// (default 4 MiB).
	SegmentBytes int
	// SyncDelay charges every log fsync with an extra sleep — the same
	// simulated-device convention as Options.WriteLatency — so
	// group-commit experiments keep a real device's shape on fast
	// filesystems.
	SyncDelay time.Duration
	// CheckpointEvery, when positive, runs a background checkpoint at
	// this period, bounding both recovery time and log size. Zero means
	// checkpoints happen only on DDL, Save, Close, and Checkpoint calls.
	CheckpointEvery time.Duration
	// DisableQueryLog stops logging query descriptors. They are never
	// needed for redo correctness — they only feed Rewarm's
	// post-recovery buffer warm-up — so this trades restart warmth for
	// log volume.
	DisableQueryLog bool
}

// SyncPolicy selects when a committed DML operation's log record is
// forced to disk (WALOptions.Sync).
type SyncPolicy int

const (
	// SyncBatch is group commit, the default: commits wait for
	// durability, but one fsync covers every record appended while the
	// previous fsync was in flight. Durability of SyncAlways at a
	// fraction of the fsyncs under concurrency.
	SyncBatch SyncPolicy = iota
	// SyncAlways fsyncs on every commit.
	SyncAlways
	// SyncNever lets commits return without forcing the log; a crash
	// can lose the unforced tail (but never corrupts).
	SyncNever
)

// policy maps the enum to the wal package's policy.
func (s SyncPolicy) policy() wal.SyncPolicy {
	switch s {
	case SyncAlways:
		return wal.SyncAlways
	case SyncNever:
		return wal.SyncNever
	default:
		return wal.SyncBatch
	}
}

// Tenant declares one budget domain for Options.Tenants / CreateTenant.
type Tenant struct {
	// Name identifies the tenant; it must be unique and non-empty ("" is
	// the default tenant, which always exists and has no quota).
	Name string
	// Quota is the tenant's Index Buffer entry budget carved from
	// SpaceLimit; 0 means unlimited.
	Quota int
	// Strict makes over-quota misses fail with ErrQuotaExceeded instead
	// of degrading to unindexed scans.
	Strict bool
}

// SelectionPolicy enumerates the page-selection orderings of
// Algorithm 2 — which candidate pages an indexing scan buffers first.
type SelectionPolicy int

const (
	// SelectAscending is the paper's policy: cheapest counters first
	// (pages needing the fewest entries to become skippable).
	SelectAscending SelectionPolicy = iota
	// SelectDescending buffers the most expensive pages first; it exists
	// for ablation benchmarks.
	SelectDescending
	// SelectRandom shuffles the candidates (seeded by Options.Seed).
	// Deterministic selection re-picks the same pages after every
	// displacement, so adversarial or unluckily aligned workloads can
	// starve a buffer indefinitely; random order converges on them
	// (cf. Halim et al., "Stochastic Database Cracking").
	SelectRandom
)

// order maps the enum to the core policy.
func (s SelectionPolicy) order() core.SelectionOrder {
	switch s {
	case SelectDescending:
		return core.DescendingCounter
	case SelectRandom:
		return core.RandomOrder
	default:
		return core.AscendingCounter
	}
}

// Structure enumerates the index structures an Index Buffer can use —
// the three the paper names.
type Structure int

const (
	// BTree is the default (the paper's B*-tree).
	BTree Structure = iota
	// CSBTree is the cache-sensitive B+-tree variant.
	CSBTree
	// HashTable is a chained hash index.
	HashTable
)

// factory maps the enum to the core factory.
func (s Structure) factory() core.StructureFactory {
	switch s {
	case CSBTree:
		return core.NewCSBTreeStructure
	case HashTable:
		return core.NewHashStructure
	default:
		return core.NewBTreeStructure
	}
}

// DB is a database instance.
type DB struct {
	eng *engine.Engine
	// sh evaluates statements for Exec, scoped to the default tenant.
	sh *shell.Shell
	// sink is the attached telemetry sink, if any (EnableTelemetrySink).
	sink *timeline.Sink
}

// OpenExisting reopens a database previously persisted into o.DataDir.
// With the WAL enabled (the default) this runs crash recovery: torn
// page and log tails are repaired, and every acknowledged operation
// since the last checkpoint is replayed from the log — even after an
// unclean shutdown. Tables and partial indexes are restored; Index
// Buffers start fresh (use Rewarm to warm them from the recovered
// query tail). RecoveryStats reports what recovery did.
func OpenExisting(o Options) (*DB, error) {
	if err := o.validate(); err != nil {
		return nil, err
	}
	eng, err := engine.Load(engineConfig(o))
	if err != nil {
		return nil, err
	}
	return newDB(eng, o)
}

// Open creates a new database (in-memory unless o.DataDir is set). It
// fails on nonsensical options rather than silently accepting them; the
// zero Options value is always valid.
func Open(o Options) (*DB, error) {
	if err := o.validate(); err != nil {
		return nil, err
	}
	return newDB(engine.New(engineConfig(o)), o)
}

// newDB wraps a constructed engine, registering the declared tenants.
func newDB(eng *engine.Engine, o Options) (*DB, error) {
	db := &DB{eng: eng, sh: shell.New(eng)}
	for _, tn := range o.Tenants {
		if _, err := eng.CreateTenant(tn.Name, tn.Quota, tn.Strict); err != nil {
			return nil, err
		}
	}
	return db, nil
}

// MustOpen is Open for tests and examples where invalid options are a
// programming error; it panics instead of returning one.
func MustOpen(o Options) *DB {
	db, err := Open(o)
	if err != nil {
		panic(err)
	}
	return db
}

// validate rejects option values that Open used to accept silently and
// misbehave on later.
func (o Options) validate() error {
	switch {
	case o.IMax < 0:
		return fmt.Errorf("repro: Options.IMax %d is negative", o.IMax)
	case o.PartitionPages < 0:
		return fmt.Errorf("repro: Options.PartitionPages %d is negative", o.PartitionPages)
	case o.HistoryDepth < 0:
		return fmt.Errorf("repro: Options.HistoryDepth %d is negative", o.HistoryDepth)
	case o.SpaceLimit < 0:
		return fmt.Errorf("repro: Options.SpaceLimit %d is negative", o.SpaceLimit)
	case o.PoolPages < 0:
		return fmt.Errorf("repro: Options.PoolPages %d is negative", o.PoolPages)
	case o.ScanParallelism < 0:
		return fmt.Errorf("repro: Options.ScanParallelism %d is negative", o.ScanParallelism)
	case o.DisplacementJitter < 0 || o.DisplacementJitter > 1:
		return fmt.Errorf("repro: Options.DisplacementJitter %v is outside [0, 1]", o.DisplacementJitter)
	}
	switch o.Structure {
	case BTree, CSBTree, HashTable:
	default:
		return fmt.Errorf("repro: unknown Options.Structure %d", o.Structure)
	}
	switch o.Selection {
	case SelectAscending, SelectDescending, SelectRandom:
	default:
		return fmt.Errorf("repro: unknown Options.Selection %d", o.Selection)
	}
	switch o.WAL.Sync {
	case SyncBatch, SyncAlways, SyncNever:
	default:
		return fmt.Errorf("repro: unknown Options.WAL.Sync %d", o.WAL.Sync)
	}
	switch {
	case o.WAL.SegmentBytes < 0:
		return fmt.Errorf("repro: Options.WAL.SegmentBytes %d is negative", o.WAL.SegmentBytes)
	case o.WAL.SyncDelay < 0:
		return fmt.Errorf("repro: Options.WAL.SyncDelay %v is negative", o.WAL.SyncDelay)
	case o.WAL.CheckpointEvery < 0:
		return fmt.Errorf("repro: Options.WAL.CheckpointEvery %v is negative", o.WAL.CheckpointEvery)
	}
	seen := make(map[string]bool, len(o.Tenants))
	for _, tn := range o.Tenants {
		switch {
		case tn.Name == "":
			return fmt.Errorf("repro: Options.Tenants has an empty tenant name")
		case tn.Quota < 0:
			return fmt.Errorf("repro: tenant %q quota %d is negative", tn.Name, tn.Quota)
		case seen[tn.Name]:
			return fmt.Errorf("repro: duplicate tenant %q", tn.Name)
		}
		seen[tn.Name] = true
	}
	return nil
}

// engineConfig maps public options to the engine configuration.
func engineConfig(o Options) engine.Config {
	cfg := engine.Config{
		PoolPages:       o.PoolPages,
		ScanParallelism: o.ScanParallelism,
		DataDir:         o.DataDir,
		ReadLatency:     o.ReadLatency,
		WriteLatency:    o.WriteLatency,
		Space: core.Config{
			IMax:               o.IMax,
			P:                  o.PartitionPages,
			K:                  o.HistoryDepth,
			SpaceLimit:         o.SpaceLimit,
			NewStructure:       o.Structure.factory(),
			Selection:          o.Selection.order(),
			DisplacementJitter: o.DisplacementJitter,
			Seed:               o.Seed,
		},
		DisableIndexBuffer:   o.DisableIndexBuffer,
		DisableEpochReadPath: o.DisableEpochReadPath,
		WAL: engine.WALConfig{
			Disable:         o.WAL.Disable,
			SyncPolicy:      o.WAL.Sync.policy(),
			SegmentBytes:    o.WAL.SegmentBytes,
			SyncDelay:       o.WAL.SyncDelay,
			CheckpointEvery: o.WAL.CheckpointEvery,
			DisableQueryLog: o.WAL.DisableQueryLog,
		},
	}
	return cfg
}

// Column describes a table column for CreateTable.
type Column struct {
	Name string
	kind storage.Kind
}

// Int64Column declares an INTEGER column.
func Int64Column(name string) Column { return Column{Name: name, kind: storage.KindInt64} }

// StringColumn declares a VARCHAR column.
func StringColumn(name string) Column { return Column{Name: name, kind: storage.KindString} }

// Table is a handle to one table.
type Table struct {
	t      *engine.Table
	schema *storage.Schema
}

// CreateTable creates an empty table with the given columns.
func (db *DB) CreateTable(name string, cols ...Column) (*Table, error) {
	sc := make([]storage.Column, len(cols))
	for i, c := range cols {
		sc[i] = storage.Column{Name: c.Name, Kind: c.kind}
	}
	schema, err := storage.NewSchema(sc...)
	if err != nil {
		return nil, err
	}
	t, err := db.eng.CreateTable(name, schema)
	if err != nil {
		return nil, err
	}
	return &Table{t: t, schema: schema}, nil
}

// Table returns an existing table handle, or nil.
func (db *DB) Table(name string) *Table {
	t := db.eng.Table(name)
	if t == nil {
		return nil
	}
	return &Table{t: t, schema: t.Schema()}
}

// RID is a stable record identifier returned by Insert and Update.
type RID = storage.RID

// Row is one query result.
type Row struct {
	RID    RID
	values []storage.Value
	schema *storage.Schema
}

// Int64 returns the named INTEGER column's value.
func (r Row) Int64(column string) (int64, error) {
	v, err := r.value(column)
	if err != nil {
		return 0, err
	}
	if v.Kind() != storage.KindInt64 {
		return 0, fmt.Errorf("repro: column %q is %v, not INTEGER", column, v.Kind())
	}
	return v.Int64(), nil
}

// String returns the named VARCHAR column's value.
func (r Row) String(column string) (string, error) {
	v, err := r.value(column)
	if err != nil {
		return "", err
	}
	if v.Kind() != storage.KindString {
		return "", fmt.Errorf("repro: column %q is %v, not VARCHAR", column, v.Kind())
	}
	return v.Str(), nil
}

func (r Row) value(column string) (storage.Value, error) {
	i := r.schema.ColumnIndex(column)
	if i < 0 {
		return storage.Value{}, fmt.Errorf("repro: column %q: %w", column, ErrNoColumn)
	}
	return r.values[i], nil
}

// QueryStats reports the cost and mechanism of one query; see the fields
// of exec.QueryStats. PagesRead is the logical I/O (the paper's runtime
// proxy), PagesSkipped the pages the Index Buffer saved.
type QueryStats = exec.QueryStats

// Plan is a non-mutating EXPLAIN of a query's access path and cost; see
// exec.Plan.
type Plan = exec.Plan

// toValue converts a friendly Go value to a storage value.
func toValue(v any) (storage.Value, error) {
	switch x := v.(type) {
	case int:
		return storage.Int64Value(int64(x)), nil
	case int64:
		return storage.Int64Value(x), nil
	case string:
		return storage.StringValue(x), nil
	case storage.Value:
		return x, nil
	default:
		return storage.Value{}, fmt.Errorf("repro: unsupported value type %T (want int, int64 or string)", v)
	}
}

// tuple builds a schema-conforming tuple from friendly values.
func (t *Table) tuple(values []any) (storage.Tuple, error) {
	if len(values) != t.schema.NumColumns() {
		return storage.Tuple{}, fmt.Errorf("repro: %d values for %d columns", len(values), t.schema.NumColumns())
	}
	vs := make([]storage.Value, len(values))
	for i, v := range values {
		sv, err := toValue(v)
		if err != nil {
			return storage.Tuple{}, err
		}
		vs[i] = sv
	}
	return storage.NewTuple(vs...), nil
}

// Insert adds a row; values must match the column order and kinds.
func (t *Table) Insert(values ...any) (RID, error) {
	tu, err := t.tuple(values)
	if err != nil {
		return storage.InvalidRID, err
	}
	return t.t.Insert(tu)
}

// Update replaces the row at rid, returning its (possibly new) RID.
func (t *Table) Update(rid RID, values ...any) (RID, error) {
	tu, err := t.tuple(values)
	if err != nil {
		return storage.InvalidRID, err
	}
	return t.t.Update(rid, tu)
}

// Delete removes the row at rid.
func (t *Table) Delete(rid RID) error { return t.t.Delete(rid) }

// columnIndex resolves a column name.
func (t *Table) columnIndex(column string) (int, error) {
	i := t.schema.ColumnIndex(column)
	if i < 0 {
		return 0, fmt.Errorf("repro: table %s column %q: %w", t.t.Name(), column, ErrNoColumn)
	}
	return i, nil
}

// CreatePartialRangeIndex builds a partial index covering values in
// [lo, hi] of the named column, and (unless disabled) the column's Index
// Buffer.
func (t *Table) CreatePartialRangeIndex(column string, lo, hi any) error {
	i, err := t.columnIndex(column)
	if err != nil {
		return err
	}
	lv, err := toValue(lo)
	if err != nil {
		return err
	}
	hv, err := toValue(hi)
	if err != nil {
		return err
	}
	return t.t.CreatePartialIndex(i, index.RangeCoverage{Lo: lv, Hi: hv})
}

// CreatePartialSetIndex builds a partial index covering an explicit value
// set.
func (t *Table) CreatePartialSetIndex(column string, values ...any) error {
	i, err := t.columnIndex(column)
	if err != nil {
		return err
	}
	vs := make([]storage.Value, len(values))
	for j, v := range values {
		sv, err := toValue(v)
		if err != nil {
			return err
		}
		vs[j] = sv
	}
	return t.t.CreatePartialIndex(i, index.NewSetCoverage(vs...))
}

// RedefineRangeIndex changes the partial index's covered range — the
// expensive disk-side adaptation the Index Buffer bridges.
func (t *Table) RedefineRangeIndex(column string, lo, hi any) error {
	i, err := t.columnIndex(column)
	if err != nil {
		return err
	}
	lv, err := toValue(lo)
	if err != nil {
		return err
	}
	hv, err := toValue(hi)
	if err != nil {
		return err
	}
	return t.t.RedefineIndex(i, index.RangeCoverage{Lo: lv, Hi: hv})
}

// Query answers column = key, maintaining the Index Buffer machinery as
// a side effect, and reports the query's cost profile. It is QueryCtx
// with context.Background().
func (t *Table) Query(column string, key any) ([]Row, QueryStats, error) {
	return t.QueryCtx(context.Background(), column, key)
}

// QueryCtx is Query honoring ctx: a query that misses the partial index
// runs a (possibly long) table scan, and the scan checks for
// cancellation between page reads, returning ctx.Err() when the deadline
// passes or the context is canceled. Index-covered queries are a handful
// of page fetches and complete regardless.
func (t *Table) QueryCtx(ctx context.Context, column string, key any) ([]Row, QueryStats, error) {
	i, err := t.columnIndex(column)
	if err != nil {
		return nil, QueryStats{}, err
	}
	kv, err := toValue(key)
	if err != nil {
		return nil, QueryStats{}, err
	}
	matches, stats, err := t.t.QueryEqualCtx(ctx, i, kv)
	if err != nil {
		return nil, stats, err
	}
	return t.rows(matches), stats, nil
}

// QueryRange answers lo <= column <= hi. The partial index serves the
// query only when its predicate covers the entire interval; any other
// range runs through the same indexing-scan machinery as a point miss,
// building the Index Buffer as a side effect. It is QueryRangeCtx with
// context.Background().
func (t *Table) QueryRange(column string, lo, hi any) ([]Row, QueryStats, error) {
	return t.QueryRangeCtx(context.Background(), column, lo, hi)
}

// QueryRangeCtx is QueryRange honoring ctx; see QueryCtx.
func (t *Table) QueryRangeCtx(ctx context.Context, column string, lo, hi any) ([]Row, QueryStats, error) {
	i, err := t.columnIndex(column)
	if err != nil {
		return nil, QueryStats{}, err
	}
	lv, err := toValue(lo)
	if err != nil {
		return nil, QueryStats{}, err
	}
	hv, err := toValue(hi)
	if err != nil {
		return nil, QueryStats{}, err
	}
	matches, stats, err := t.t.QueryRangeCtx(ctx, i, lv, hv)
	if err != nil {
		return nil, stats, err
	}
	return t.rows(matches), stats, nil
}

// rows materializes exec matches into public Rows.
func (t *Table) rows(matches []exec.Match) []Row {
	rows := make([]Row, len(matches))
	for j, m := range matches {
		vals := make([]storage.Value, t.schema.NumColumns())
		for c := range vals {
			vals[c] = m.Tuple.Value(c)
		}
		rows[j] = Row{RID: m.RID, values: vals, schema: t.schema}
	}
	return rows
}

// Explain plans column = key without executing or touching any Index
// Buffer state.
func (t *Table) Explain(column string, key any) (Plan, error) {
	i, err := t.columnIndex(column)
	if err != nil {
		return Plan{}, err
	}
	kv, err := toValue(key)
	if err != nil {
		return Plan{}, err
	}
	return t.t.ExplainEqual(i, kv)
}

// ExplainRange plans lo <= column <= hi without executing.
func (t *Table) ExplainRange(column string, lo, hi any) (Plan, error) {
	i, err := t.columnIndex(column)
	if err != nil {
		return Plan{}, err
	}
	lv, err := toValue(lo)
	if err != nil {
		return Plan{}, err
	}
	hv, err := toValue(hi)
	if err != nil {
		return Plan{}, err
	}
	return t.t.ExplainRange(i, lv, hv)
}

// Vacuum rewrites the table's heap densely, reclaiming dead space after
// heavy DML, and rebuilds its indexes. All RIDs change; the column's
// Index Buffers restart empty. It returns the page counts before and
// after.
func (t *Table) Vacuum() (pagesBefore, pagesAfter int, err error) {
	return t.t.Vacuum()
}

// NumPages returns the table's heap page count.
func (t *Table) NumPages() int { return t.t.NumPages() }

// Count returns the number of live rows (via a raw scan).
func (t *Table) Count() (int, error) { return t.t.Count() }

// BufferStats describes one Index Buffer's current state.
type BufferStats struct {
	Name          string
	Entries       int
	Partitions    int
	BufferedPages int
	MeanInterval  float64
	Benefit       float64
}

// BufferStats returns per-buffer occupancy, in creation order.
func (db *DB) BufferStats() []BufferStats {
	var out []BufferStats
	for _, b := range db.eng.Space().Buffers() {
		out = append(out, BufferStats{
			Name:          b.Name(),
			Entries:       b.EntryCount(),
			Partitions:    b.PartitionCount(),
			BufferedPages: b.BufferedPages(),
			MeanInterval:  b.History().Mean(),
			Benefit:       b.Benefit(),
		})
	}
	return out
}

// SpaceUsed returns total entries across all Index Buffers.
func (db *DB) SpaceUsed() int { return db.eng.Space().Used() }

// SharedScanStats reports the scan-sharing counters: how many queries
// missed into the indexing-scan path, how many Algorithm-1 passes
// actually ran, and how many scans coalescing saved; see
// metrics.SharedScanStats.
type SharedScanStats = metrics.SharedScanStats

// SharedScanStats reads the database-wide scan-sharing counters.
func (db *DB) SharedScanStats() SharedScanStats { return db.eng.SharedScanStats() }

// ParallelScanStats reports the parallel scan-execution counters: how
// many table-scan stages fanned out to more than one worker and the
// total workers they used; see metrics.ParallelScanStats.
type ParallelScanStats = metrics.ParallelScanStats

// ParallelScanStats reads the database-wide parallel-scan counters.
func (db *DB) ParallelScanStats() ParallelScanStats { return db.eng.ParallelScanStats() }

// TraceReport renders per-column query statistics — queries, hit rate,
// mean pages per query, the share of pages the Index Buffer let scans
// skip, and mean wall-clock microseconds per query.
func (db *DB) TraceReport() string { return db.eng.Tracer().Report() }

// TraceEvent is one structured span event from the adaptive machinery:
// miss admission, shared-scan leadership or attachment, Algorithm-2 page
// selection, displacement, and page completion (C[p] → 0). Seq is a
// process-wide monotonic sequence number; see trace.Span.
type TraceEvent = trace.Span

// EnableTraceEvents turns span-event recording on or off. Off (the
// default) reduces the instrumentation on every query path to a single
// atomic load — see the overhead contract in DESIGN.md, "Observability".
func (db *DB) EnableTraceEvents(on bool) { db.eng.Tracer().EnableSpans(on) }

// TraceEvents returns the retained span events, newest first. Recording
// must have been enabled with EnableTraceEvents; the ring keeps the most
// recent events only.
func (db *DB) TraceEvents() []TraceEvent { return db.eng.Tracer().Spans(1 << 30) }

// LatencyStats is one execution mechanism's query-latency summary in
// microseconds: exact count, sum, mean and max, with reservoir-sampled
// p50/p95/p99.
type LatencyStats = trace.MechanismLatency

// LatencyStats returns per-mechanism latency summaries (hit,
// indexing-scan, full-scan, shared-follower), sorted by mechanism.
func (db *DB) LatencyStats() []LatencyStats { return db.eng.Tracer().LatencyStats() }

// WriteMetrics renders every monitor — scan-sharing counters, Index
// Buffer Space occupancy, per-buffer gauges, per-column aggregates, and
// per-mechanism latency summaries — to w in the Prometheus text
// exposition format (v0.0.4).
func (db *DB) WriteMetrics(w io.Writer) error { return db.eng.WriteMetrics(w) }

// MetricsHandler returns an http.Handler serving /metrics (Prometheus
// text), /timeline (adaptation timeline as JSON), /healthz and
// /debug/pprof/* for this database. Mount it on a server of your
// choosing; nothing listens unless you do.
func (db *DB) MetricsHandler() http.Handler { return obs.Handler(db.eng) }

// ServeMetrics binds addr (e.g. "localhost:9090", or ":0" for an
// ephemeral port) and serves MetricsHandler on it in a background
// goroutine. It returns the server and the bound address; shut down
// with srv.Close or srv.Shutdown.
func (db *DB) ServeMetrics(addr string) (*http.Server, string, error) {
	return obs.Serve(addr, db.eng)
}

// TimelineSample is one adaptation-timeline data point: coverage
// fraction, C[p] distribution summary, occupancy, churn counters and
// the per-mechanism query mix at one sampling instant; see
// timeline.Sample.
type TimelineSample = timeline.Sample

// TimelineSeries is the retained timeline of one (table, column) pair,
// samples oldest-first; see timeline.Series.
type TimelineSeries = timeline.Series

// Convergence is the convergence detector's verdict for one column:
// whether (and after how many queries) coverage reached the target
// fraction, and whether it has since regressed; see
// timeline.Convergence.
type Convergence = timeline.Convergence

// EnableTimeline turns adaptation-timeline sampling on or off. Off (the
// default) reduces the instrumentation on every query path to a single
// atomic load, the same contract as EnableTraceEvents. While on, every
// query boundary samples the queried column's coverage, counter
// distribution and occupancy, and adaptive events (displacement,
// page completion) mark their buffer for resampling.
func (db *DB) EnableTimeline(on bool) { db.eng.Timeline().Enable(on) }

// Timeline returns the retained adaptation timeline, one series per
// (table, column), sorted by buffer name. Empty until EnableTimeline.
func (db *DB) Timeline() []TimelineSeries { return db.eng.Timeline().Series() }

// Convergence returns the convergence verdicts — the paper-shaped
// answer to "how many queries until column X became 95% skippable?" —
// sorted by buffer name. The target fraction defaults to 0.95.
func (db *DB) Convergence() []Convergence { return db.eng.Convergence() }

// TelemetryStats reports a telemetry sink's counters: records written
// and write failures; see timeline.SinkStats.
type TelemetryStats = timeline.SinkStats

// EnableTelemetrySink streams structured telemetry — every trace span
// and every timeline sample, one JSON object per line — to w, enabling
// trace events and timeline sampling as a side effect. The caller owns
// w's lifecycle; writes are serialized internally and a failed write
// drops that record (see TelemetryStats) rather than failing queries.
// A nil w detaches the current sink and leaves recording enabled.
func (db *DB) EnableTelemetrySink(w io.Writer) {
	if w == nil {
		db.eng.SetTelemetrySink(nil)
		db.sink = nil
		return
	}
	db.sink = timeline.NewSink(w)
	db.eng.SetTelemetrySink(db.sink)
}

// TelemetryStats reads the attached sink's counters (zero if no sink
// is attached).
func (db *DB) TelemetryStats() TelemetryStats {
	if db.sink == nil {
		return TelemetryStats{}
	}
	return db.sink.Stats()
}

// FlightRecord is one completed statement's flight record: trace ID,
// tenant, statement text, execution mechanism, page counts, quota
// degradation, WAL commit latency with the group-commit batch size, the
// span tree of adaptive events the statement triggered, wall-clock
// duration and error; see flight.Record.
type FlightRecord = flight.Record

// FlightStats reports the flight recorder's counters: enabled state,
// completed and slow-captured statements, and the slow threshold; see
// flight.Stats.
type FlightStats = flight.Stats

// EnableFlightRecorder turns the per-statement flight recorder on.
// While on, every statement that enters the statement API (Exec,
// Session.Exec, the wire server) is recorded: a trace ID is minted (or
// taken from the caller via the wire protocol's TRACE prefix), threaded
// through execution so span events and WAL commits carry it, and the
// completed record lands in a bounded in-memory ring. Statements at or
// above slowThreshold are additionally kept in a separate slow-query
// ring (0 keeps the current threshold, initially 10ms). Off (the
// default) reduces the per-statement cost to a single atomic load, the
// same contract as EnableTraceEvents.
func (db *DB) EnableFlightRecorder(slowThreshold time.Duration) {
	db.eng.Flight().Enable(slowThreshold)
}

// DisableFlightRecorder turns the flight recorder off. Retained records
// stay readable.
func (db *DB) DisableFlightRecorder() { db.eng.Flight().Disable() }

// FlightRecorderEnabled reports whether the flight recorder is on.
func (db *DB) FlightRecorderEnabled() bool { return db.eng.Flight().Enabled() }

// FlightStats reads the flight recorder's counters.
func (db *DB) FlightStats() FlightStats { return db.eng.Flight().Stats() }

// MintTraceID returns a fresh process-unique trace ID, the same minting
// the recorder applies to statements that arrive without one. The wire
// server uses it to stamp statements so the client can correlate its
// response with the flight record and span stream.
func (db *DB) MintTraceID() string { return db.eng.Flight().MintID() }

// SlowQueries returns up to n records from the slow-query ring, slowest
// first. Empty until EnableFlightRecorder.
func (db *DB) SlowQueries(n int) []FlightRecord { return db.eng.Flight().Slow(n) }

// RecentQueries returns up to n most recently completed flight records,
// newest first.
func (db *DB) RecentQueries(n int) []FlightRecord { return db.eng.Flight().Recent(n) }

// FlightRecords searches both retained rings for records matching every
// given filter — trace ID, tenant, minimum duration — newest first, at
// most n. Zero values ("" and 0) match everything.
func (db *DB) FlightRecords(traceID, tenant string, minDuration time.Duration, n int) []FlightRecord {
	return db.eng.Flight().Find(traceID, tenant, minDuration, n)
}

// DurabilityHealth summarizes the durability pipeline's health — WAL
// sync errors, LSN positions, segment backlog and checkpoint
// staleness — with an overall healthy verdict; /healthz serves it and
// turns 503 when unhealthy. See engine.DurabilityHealth.
type DurabilityHealth = engine.DurabilityHealth

// DurabilityHealth reads the durability health summary.
func (db *DB) DurabilityHealth() DurabilityHealth { return db.eng.DurabilityHealth() }

// WALTelemetry extends WALStats with distribution telemetry: fsync
// latency and group-commit batch-size summaries, LSN positions, active
// segment count and the sticky sync error; see wal.Telemetry.
type WALTelemetry = wal.Telemetry

// WALTelemetry reads the log writer's telemetry; ok is false when the
// WAL is off.
func (db *DB) WALTelemetry() (WALTelemetry, bool) { return db.eng.WALTelemetry() }

// CheckpointStats reports checkpoint activity: completed count, last
// duration, and the age of the last checkpoint; see
// engine.CheckpointStats.
type CheckpointStats = engine.CheckpointStats

// CheckpointStats reads the checkpoint counters.
func (db *DB) CheckpointStats() CheckpointStats { return db.eng.CheckpointStats() }

// Close flushes buffer pools and releases file-backed stores. In-memory
// databases need no Close, but calling it is always safe.
func (db *DB) Close() error { return db.eng.Close() }

// Save persists the database's catalog and flushes all pages. It
// requires a DataDir-backed database. With the WAL enabled (the
// default) Save is a checkpoint — see Checkpoint. Index Buffers are
// never persisted — they are volatile scratch-pad structures (paper
// §III) and start empty after OpenExisting.
func (db *DB) Save() error { return db.eng.Save() }

// Checkpoint flushes every table's dirty pages, writes a catalog
// consistent with them, and truncates the write-ahead log behind the
// checkpoint. Queries are not blocked while it runs. It requires a
// WAL-backed database (DataDir set, WAL not disabled).
func (db *DB) Checkpoint() error { return db.eng.Checkpoint() }

// RecoveryStats describes what OpenExisting's recovery pass did: the
// checkpoint position redo started from, records and page images
// replayed, torn bytes repaired, surplus pages truncated, and the
// query-tail length recovered for Rewarm. See engine.RecoveryStats.
type RecoveryStats = engine.RecoveryStats

// RecoveryStats returns what the OpenExisting that produced this
// database did during recovery; zero for databases created with Open.
func (db *DB) RecoveryStats() RecoveryStats { return db.eng.RecoveryStats() }

// WALStats reports write-ahead-log counters — appends, commits, fsyncs,
// bytes, segments — or zeros when the WAL is off. The Commits/Syncs
// ratio is the group-commit batching factor.
type WALStats = wal.Stats

// WALStats reads the log writer's counters.
func (db *DB) WALStats() WALStats { return db.eng.WALStats() }

// EpochStats reports the epoch-based lock-free read path's health: the
// reclamation domain's state (current epoch, pinned readers, retired
// backlog, reclaimed total, reclamation lag) plus the fast-path
// counters (queries served lock-free, attempts that fell back to the
// locked path). A quiescent database reports a drained backlog; see
// engine.EpochStats.
type EpochStats = engine.EpochStats

// EpochStats reads the epoch read-path statistics.
func (db *DB) EpochStats() EpochStats { return db.eng.EpochStats() }

// Rewarm replays the query tail recovered from the log through the
// normal query path, so the volatile Index Buffers converge back toward
// their pre-crash state without waiting for live traffic. Call it once
// after OpenExisting (enable the timeline first to record the restart
// as a fresh convergence episode); the tail is consumed. Returns the
// number of queries replayed.
func (db *DB) Rewarm(ctx context.Context) (int, error) { return db.eng.Rewarm(ctx) }
