package repro_test

import (
	"fmt"
	"strings"

	"repro"
)

// ExampleOpen shows the minimal end-to-end flow: a partial index answers
// covered queries; an uncovered query scans once and the Index Buffer
// makes the repeat skip every page.
func ExampleOpen() {
	db := repro.MustOpen(repro.Options{})
	t, _ := db.CreateTable("orders",
		repro.Int64Column("price"),
		repro.StringColumn("item"),
	)
	pad := strings.Repeat("x", 120)
	for i := 0; i < 5000; i++ {
		t.Insert(int64(1+i%1000), fmt.Sprintf("item-%d-%s", i, pad))
	}
	t.CreatePartialRangeIndex("price", 1, 100)

	_, hit, _ := t.Query("price", 50) // covered
	fmt.Println("covered query hit:", hit.PartialHit)

	_, miss1, _ := t.Query("price", 900) // uncovered: builds the buffer
	_, miss2, _ := t.Query("price", 901) // repeat: skips
	fmt.Println("repeat cheaper than first miss:", miss2.PagesRead < miss1.PagesRead/10)
	fmt.Println("second miss skipped all pages:", miss2.PagesSkipped == t.NumPages())
	// Output:
	// covered query hit: true
	// repeat cheaper than first miss: true
	// second miss skipped all pages: true
}

// ExampleTable_QueryRange shows range predicates: a range nested in the
// coverage hits the partial index; one straddling the edge runs the
// indexing scan yet returns the complete result.
func ExampleTable_QueryRange() {
	db := repro.MustOpen(repro.Options{})
	t, _ := db.CreateTable("m", repro.Int64Column("v"), repro.StringColumn("pad"))
	for i := 0; i < 1000; i++ {
		t.Insert(int64(i), strings.Repeat("p", 100))
	}
	t.CreatePartialRangeIndex("v", 0, 499)

	rows, stats, _ := t.QueryRange("v", 100, 109)
	fmt.Println("nested range:", len(rows), "rows, hit:", stats.PartialHit)

	rows, stats, _ = t.QueryRange("v", 495, 504)
	fmt.Println("straddling range:", len(rows), "rows, hit:", stats.PartialHit)
	// Output:
	// nested range: 10 rows, hit: true
	// straddling range: 10 rows, hit: false
}

// ExampleTable_Explain previews a query's access path without running it.
func ExampleTable_Explain() {
	db := repro.MustOpen(repro.Options{})
	t, _ := db.CreateTable("m", repro.Int64Column("v"), repro.StringColumn("pad"))
	for i := 0; i < 500; i++ {
		t.Insert(int64(i%100), strings.Repeat("p", 200))
	}
	t.CreatePartialRangeIndex("v", 0, 49)

	hitPlan, _ := t.Explain("v", 25)
	missPlan, _ := t.Explain("v", 75)
	fmt.Println(hitPlan.Mechanism)
	fmt.Println(missPlan.Mechanism)
	// Output:
	// partial index hit
	// indexing scan
}

// ExampleTable_AutoTune runs the complete self-tuning loop: the
// controller redefines the partial index after a sustained shift, with
// the Index Buffer bridging the gap meanwhile.
func ExampleTable_AutoTune() {
	db := repro.MustOpen(repro.Options{Seed: 1})
	t, _ := db.CreateTable("e", repro.Int64Column("k"), repro.StringColumn("pad"))
	for i := 0; i < 4000; i++ {
		t.Insert(int64(1+i%1000), strings.Repeat("s", 150))
	}
	t.CreatePartialRangeIndex("k", 1, 100)
	tuner, _ := t.AutoTune("k", repro.AutoTunePolicy{Window: 20, MissRate: 0.8, BucketWidth: 100})

	// The workload shifts entirely to the uncovered range [800, 899].
	for q := 0; q < 40; q++ {
		tuner.Query(int64(800 + q%100))
	}
	fmt.Println("adaptations:", tuner.Adaptations())
	_, stats, _, _ := tuner.Query(int64(850))
	fmt.Println("post-adaptation hit:", stats.PartialHit)
	// Output:
	// adaptations: 1
	// post-adaptation hit: true
}
