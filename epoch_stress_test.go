package repro

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestEpochReaderWriterConvoy is the convoy-elimination stress test: a
// writer commits through a deliberately slow synchronous WAL (every
// fsync charged tens of milliseconds) while NumCPU readers hammer
// index-covered point queries. Under the old protocol every one of
// those reads queued behind the writer's table lock for the duration of
// the fsync; with the epoch-based read path a hit never touches the
// lock, so read latency stays bounded well below the fsync cost and the
// overwhelming majority of reads are served lock-free. Afterwards the
// engine must return to baseline: no leaked goroutines, no pinned
// readers, retired-snapshot backlog drained.
func TestEpochReaderWriterConvoy(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive stress test")
	}
	const (
		rows      = 600
		keyDomain = 50
		covered   = 20
		syncDelay = 30 * time.Millisecond
		duration  = 700 * time.Millisecond
	)
	// Load phase: populate without per-commit fsyncs, then reopen with
	// the slow synchronous WAL so only the stress phase pays it.
	dir := t.TempDir()
	loader := MustOpen(Options{
		PoolPages: 64,
		Seed:      7,
		DataDir:   dir,
		WAL:       WALOptions{Sync: SyncNever},
	})
	tb, err := loader.CreateTable("data", Int64Column("k"), StringColumn("pad"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < rows; i++ {
		if _, err := tb.Insert(int64(i%keyDomain), fmt.Sprintf("pad-%04d-%0160d", i, i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tb.CreatePartialRangeIndex("k", 0, covered-1); err != nil {
		t.Fatal(err)
	}
	if err := loader.Close(); err != nil {
		t.Fatal(err)
	}
	db, err := OpenExisting(Options{
		PoolPages: 64,
		Seed:      7,
		DataDir:   dir,
		WAL: WALOptions{
			Sync:      SyncAlways,
			SyncDelay: syncDelay,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	tb = db.Table("data")
	if tb == nil {
		t.Fatal("table not recovered")
	}
	// Warm the pool so steady-state reads are memory-resident hits.
	for k := 0; k < covered; k++ {
		if _, _, err := tb.Query("k", int64(k)); err != nil {
			t.Fatal(err)
		}
	}

	baselineGoroutines := runtime.NumGoroutine()
	statsBefore := db.EpochStats()

	// Leave scheduler headroom for the writer and the main goroutine:
	// with every P running a reader, the latency measurement would be
	// dominated by run-queue waits, not by the engine.
	readers := runtime.NumCPU() - 2
	if readers < 2 {
		readers = 2
	}
	var (
		stop      atomic.Bool
		wg        sync.WaitGroup
		writes    atomic.Int64
		writeErr  atomic.Value
		latencyMu sync.Mutex
		latencies []time.Duration
	)

	// The slow mutator: every insert holds the write path through a
	// 30 ms fsync. The seqlock window closes before the WAL append, so
	// none of that time is reader-visible.
	wg.Add(1)
	go func() {
		defer wg.Done()
		n := rows
		for !stop.Load() {
			if _, err := tb.Insert(int64(covered+n%(keyDomain-covered)), fmt.Sprintf("pad-%04d-%0160d", n, n)); err != nil {
				writeErr.Store(err)
				return
			}
			n++
			writes.Add(1)
		}
	}()

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			k := seed
			var local []time.Duration
			for !stop.Load() {
				start := time.Now()
				_, stats, err := tb.Query("k", int64(k%covered))
				elapsed := time.Since(start)
				if err != nil {
					t.Errorf("reader query failed: %v", err)
					return
				}
				if !stats.PartialHit {
					t.Errorf("covered key %d was not an index hit", k%covered)
					return
				}
				local = append(local, elapsed)
				k++
			}
			latencyMu.Lock()
			latencies = append(latencies, local...)
			latencyMu.Unlock()
		}(r)
	}

	time.Sleep(duration)
	stop.Store(true)
	wg.Wait()
	if err := writeErr.Load(); err != nil {
		t.Fatalf("writer failed: %v", err)
	}

	if writes.Load() == 0 {
		t.Fatal("writer committed nothing; the stress never created contention")
	}
	reads := int64(len(latencies))
	if reads < int64(readers)*10 {
		t.Fatalf("only %d reads across %d readers; the stress never ran", reads, readers)
	}

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	p50 := latencies[len(latencies)/2]
	p99 := latencies[len(latencies)*99/100]
	max := latencies[len(latencies)-1]
	t.Logf("stress: %d reads, %d writes, read latency p50 %v p99 %v max %v, epoch stats %+v",
		reads, writes.Load(), p50, p99, max, db.EpochStats())

	// The convoy property: reads do not wait out writer fsyncs. With the
	// writer holding the table lock across its sync nearly all cycle, a
	// convoyed reader population would see a p50 in the 10-30 ms range
	// and a p99 pinned at the fsync cost; lock-free reads are bounded by
	// the probe itself, with only scheduler noise in the tail. The max is
	// logged but not asserted — it measures preemption under deliberate
	// CPU overcommit, not the engine.
	if p99 >= syncDelay/2 {
		t.Errorf("read p99 %v with a %v-fsync writer active: readers convoyed on the write lock", p99, syncDelay)
	}
	if p50 >= syncDelay/10 {
		t.Errorf("read p50 %v with a %v-fsync writer active: readers convoyed on the write lock", p50, syncDelay)
	}

	// The reads were actually lock-free, not locked-path reads that got
	// lucky: the fast-hit counter must account for (nearly) all of them.
	statsAfter := db.EpochStats()
	fast := statsAfter.FastHits - statsBefore.FastHits
	if min := reads * 9 / 10; int64(fast) < min {
		t.Errorf("only %d of %d reads were served lock-free, want >= %d", fast, reads, min)
	}

	// Baseline restoration: goroutines reaped, epoch domain quiescent.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baselineGoroutines {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d at baseline, %d after the stress", baselineGoroutines, n)
		}
		time.Sleep(10 * time.Millisecond)
	}
	var es EpochStats
	for i := 0; i < 8; i++ {
		es = db.EpochStats()
		if es.RetiredBacklog == 0 {
			break
		}
	}
	if es.PinnedReaders != 0 {
		t.Errorf("%d readers still pinned after the stress", es.PinnedReaders)
	}
	if es.RetiredBacklog != 0 {
		t.Errorf("retired-snapshot backlog stuck at %d (lag %d epochs)", es.RetiredBacklog, es.ReclamationLag)
	}
}
