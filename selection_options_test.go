package repro

import (
	"strings"
	"testing"
)

// TestOptionsValidateSelection covers the stochastic-selection knobs:
// Selection enum membership and the DisplacementJitter range.
func TestOptionsValidateSelection(t *testing.T) {
	cases := []struct {
		name    string
		opts    Options
		wantErr string
	}{
		{"zero value", Options{}, ""},
		{"random selection", Options{Selection: SelectRandom, Seed: 42}, ""},
		{"descending selection", Options{Selection: SelectDescending}, ""},
		{"full jitter", Options{DisplacementJitter: 1}, ""},
		{"half jitter", Options{Selection: SelectRandom, DisplacementJitter: 0.5}, ""},
		{"unknown selection", Options{Selection: SelectionPolicy(7)}, "unknown Options.Selection"},
		{"negative selection", Options{Selection: SelectionPolicy(-1)}, "unknown Options.Selection"},
		{"negative jitter", Options{DisplacementJitter: -0.1}, "outside [0, 1]"},
		{"jitter above one", Options{DisplacementJitter: 1.5}, "outside [0, 1]"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			db, err := Open(tc.opts)
			if err == nil {
				db.Close()
			}
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("Open failed: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("Open err = %v, want substring %q", err, tc.wantErr)
			}
		})
	}
}

// TestSelectRandomFacadeSmoke drives a few misses through a database
// opened with the stochastic knobs: queries must work and the Index
// Buffer must still build (the policy changes page order, not
// correctness).
func TestSelectRandomFacadeSmoke(t *testing.T) {
	db := MustOpen(Options{
		Selection:          SelectRandom,
		DisplacementJitter: 0.5,
		Seed:               7,
		IMax:               4,
	})
	defer db.Close()
	tb, err := db.CreateTable("t", Int64Column("k"), StringColumn("v"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 400; i++ {
		if _, err := tb.Insert(int64(i%100), "x"); err != nil {
			t.Fatal(err)
		}
	}
	if err := tb.CreatePartialRangeIndex("k", 0, 9); err != nil {
		t.Fatal(err)
	}
	for k := 10; k < 20; k++ {
		rows, _, err := tb.Query("k", int64(k))
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 4 {
			t.Fatalf("key %d returned %d rows, want 4", k, len(rows))
		}
	}
	stats := db.BufferStats()
	if len(stats) != 1 || stats[0].Entries == 0 {
		t.Fatalf("index buffer did not build under SelectRandom: %+v", stats)
	}
}
