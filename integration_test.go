package repro

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/storage"
)

// TestFullSystemScenario is the capstone integration test: one database
// driven through every public feature — bulk load, partial indexes on
// several columns, equality and range queries under DML, EXPLAIN
// consistency, displacement under a bounded space, vacuum, auto-tuning,
// and persistence — with results checked against a naive in-memory model
// throughout.
func TestFullSystemScenario(t *testing.T) {
	dir := t.TempDir()
	db := MustOpen(Options{
		DataDir:        dir,
		SpaceLimit:     6000,
		IMax:           60,
		PartitionPages: 100,
		Seed:           11,
	})
	events, err := db.CreateTable("events",
		Int64Column("kind"),
		Int64Column("region"),
		StringColumn("payload"),
	)
	if err != nil {
		t.Fatal(err)
	}

	// The model mirrors every live row.
	type row struct {
		kind, region int64
		payload      string
	}
	model := map[RID]row{}
	rng := rand.New(rand.NewSource(99))
	pad := strings.Repeat("e", 220)
	newRow := func() row {
		return row{
			kind:    1 + rng.Int63n(400),
			region:  1 + rng.Int63n(50),
			payload: fmt.Sprintf("%d-%s", rng.Int63(), pad),
		}
	}
	insert := func() RID {
		r := newRow()
		rid, err := events.Insert(r.kind, r.region, r.payload)
		if err != nil {
			t.Fatal(err)
		}
		model[rid] = r
		return rid
	}
	for i := 0; i < 3000; i++ {
		insert()
	}

	if err := events.CreatePartialRangeIndex("kind", 1, 40); err != nil {
		t.Fatal(err)
	}
	if err := events.CreatePartialRangeIndex("region", 1, 5); err != nil {
		t.Fatal(err)
	}

	checkEqual := func(col string, key int64) {
		t.Helper()
		want := map[RID]bool{}
		for rid, r := range model {
			v := r.kind
			if col == "region" {
				v = r.region
			}
			if v == key {
				want[rid] = true
			}
		}
		got, stats, err := events.Query(col, key)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("%s=%d: %d rows, want %d", col, key, len(got), len(want))
		}
		for _, g := range got {
			if !want[g.RID] {
				t.Fatalf("%s=%d: unexpected RID %v", col, key, g.RID)
			}
		}
		// EXPLAIN's estimate must match the actual cost on a repeat (the
		// first query may have changed buffer state).
		plan, err := events.Explain(col, key)
		if err != nil {
			t.Fatal(err)
		}
		_, stats2, err := events.Query(col, key)
		if err != nil {
			t.Fatal(err)
		}
		if plan.EstimatedPagesRead != stats2.PagesRead {
			t.Fatalf("%s=%d: plan %d pages, actual %d", col, key, plan.EstimatedPagesRead, stats2.PagesRead)
		}
		_ = stats
	}
	checkRange := func(col string, lo, hi int64) {
		t.Helper()
		want := 0
		for _, r := range model {
			v := r.kind
			if col == "region" {
				v = r.region
			}
			if v >= lo && v <= hi {
				want++
			}
		}
		got, _, err := events.QueryRange(col, lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != want {
			t.Fatalf("%s in [%d,%d]: %d rows, want %d", col, lo, hi, len(got), want)
		}
	}

	// Phase 1: mixed queries and DML under the bounded space.
	var rids []RID
	for rid := range model {
		rids = append(rids, rid)
	}
	for step := 0; step < 250; step++ {
		switch rng.Intn(6) {
		case 0:
			rids = append(rids, insert())
		case 1:
			i := rng.Intn(len(rids))
			if _, ok := model[rids[i]]; !ok {
				continue
			}
			if err := events.Delete(rids[i]); err != nil {
				t.Fatal(err)
			}
			delete(model, rids[i])
		case 2:
			i := rng.Intn(len(rids))
			if _, ok := model[rids[i]]; !ok {
				continue
			}
			r := newRow()
			nr, err := events.Update(rids[i], r.kind, r.region, r.payload)
			if err != nil {
				t.Fatal(err)
			}
			delete(model, rids[i])
			model[nr] = r
			rids = append(rids, nr)
		case 3:
			checkEqual("kind", 1+rng.Int63n(400))
		case 4:
			checkEqual("region", 1+rng.Int63n(50))
		default:
			lo := 1 + rng.Int63n(400)
			checkRange("kind", lo, lo+rng.Int63n(30))
		}
	}
	if db.SpaceUsed() > 6000 {
		t.Fatalf("space used %d over the limit", db.SpaceUsed())
	}

	// Phase 2: vacuum rewrites everything; rebuild the model's RIDs from
	// payload identity (payloads are unique).
	byPayload := map[string]row{}
	for _, r := range model {
		byPayload[r.payload] = r
	}
	before, after, err := events.Vacuum()
	if err != nil {
		t.Fatal(err)
	}
	if after > before {
		t.Errorf("vacuum grew the table: %d -> %d", before, after)
	}
	model = map[RID]row{}
	rids = rids[:0]
	err = db.eng.Table("events").Scan(func(rid RID, tu storage.Tuple) error {
		r, ok := byPayload[tu.Value(2).Str()]
		if !ok {
			return fmt.Errorf("unknown payload after vacuum")
		}
		model[rid] = r
		rids = append(rids, rid)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	checkEqual("kind", 20) // covered
	checkEqual("kind", 99) // uncovered
	checkRange("kind", 35, 45)

	// Phase 3: auto-tune follows a shift on kind.
	tuner, err := events.AutoTune("kind", AutoTunePolicy{Window: 30, MissRate: 0.8, BucketWidth: 50})
	if err != nil {
		t.Fatal(err)
	}
	for q := 0; q < 80; q++ {
		if _, _, _, err := tuner.Query(int64(300 + rng.Int63n(50))); err != nil {
			t.Fatal(err)
		}
	}
	if tuner.Adaptations() == 0 {
		t.Error("auto-tuner never adapted")
	}
	checkEqual("kind", 320)

	// Phase 4: persistence round trip preserves everything durable.
	wantCount := len(model)
	if err := db.Save(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := OpenExisting(Options{DataDir: dir, SpaceLimit: 6000, IMax: 60, PartitionPages: 100, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	events2 := db2.Table("events")
	n, err := events2.Count()
	if err != nil {
		t.Fatal(err)
	}
	if n != wantCount {
		t.Fatalf("rows after reload = %d, want %d", n, wantCount)
	}
	// The adapted coverage persisted: the shifted range still hits.
	_, stats, err := events2.Query("kind", 320)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.PartialHit {
		t.Error("adapted coverage did not persist")
	}
	// Buffers restart empty and rebuild.
	if db2.SpaceUsed() != 0 {
		t.Errorf("buffers persisted: %d entries", db2.SpaceUsed())
	}
	if _, _, err := events2.Query("kind", 200); err != nil {
		t.Fatal(err)
	}
	_, s2, err := events2.Query("kind", 201)
	if err != nil {
		t.Fatal(err)
	}
	if s2.PagesSkipped == 0 {
		t.Error("buffer did not rebuild after reload")
	}
	// Tracing recorded the post-reload activity.
	if !strings.Contains(db2.TraceReport(), "events.kind") {
		t.Errorf("trace report = %q", db2.TraceReport())
	}
}
