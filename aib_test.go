package repro

import (
	"strings"
	"testing"
)

func openFlights(t *testing.T, o Options) *Table {
	t.Helper()
	db := MustOpen(o)
	tb, err := db.CreateTable("flights",
		Int64Column("delay"),
		StringColumn("airport"),
		StringColumn("payload"),
	)
	if err != nil {
		t.Fatal(err)
	}
	return tb
}

func TestPublicAPIBasics(t *testing.T) {
	db := MustOpen(Options{})
	tb, err := db.CreateTable("flights", Int64Column("delay"), StringColumn("airport"))
	if err != nil {
		t.Fatal(err)
	}
	rid, err := tb.Insert(12, "ORD")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tb.Insert(30); err == nil {
		t.Error("arity mismatch should fail")
	}
	if _, err := tb.Insert("x", 1); err == nil {
		t.Error("kind mismatch should fail")
	}
	if _, err := tb.Insert(struct{}{}, "y"); err == nil {
		t.Error("unsupported type should fail")
	}

	rows, _, err := tb.Query("airport", "ORD")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].RID != rid {
		t.Fatalf("rows = %v", rows)
	}
	d, err := rows[0].Int64("delay")
	if err != nil || d != 12 {
		t.Errorf("delay = %d, %v", d, err)
	}
	a, err := rows[0].String("airport")
	if err != nil || a != "ORD" {
		t.Errorf("airport = %q, %v", a, err)
	}
	if _, err := rows[0].Int64("airport"); err == nil {
		t.Error("Int64 on VARCHAR should fail")
	}
	if _, err := rows[0].String("delay"); err == nil {
		t.Error("String on INTEGER should fail")
	}
	if _, err := rows[0].Int64("missing"); err == nil {
		t.Error("missing column should fail")
	}

	if db.Table("flights") == nil || db.Table("nope") != nil {
		t.Error("Table lookup wrong")
	}
	if _, _, err := tb.Query("missing", 1); err == nil {
		t.Error("query on missing column should fail")
	}
	if _, _, err := tb.Query("delay", struct{}{}); err == nil {
		t.Error("query with bad key type should fail")
	}
}

func TestPublicAPIUpdateDelete(t *testing.T) {
	tb := openFlights(t, Options{})
	rid, err := tb.Insert(int64(5), "FRA", "p")
	if err != nil {
		t.Fatal(err)
	}
	nr, err := tb.Update(rid, int64(7), "FRA", "p")
	if err != nil {
		t.Fatal(err)
	}
	rows, _, _ := tb.Query("delay", 7)
	if len(rows) != 1 {
		t.Fatalf("updated row not found")
	}
	if err := tb.Delete(nr); err != nil {
		t.Fatal(err)
	}
	if n, _ := tb.Count(); n != 0 {
		t.Errorf("count after delete = %d", n)
	}
}

// TestPublicAPIEndToEnd walks the paper's full story through the facade:
// partial index, misses building the buffer, skips, redefinition.
func TestPublicAPIEndToEnd(t *testing.T) {
	tb := openFlights(t, Options{IMax: 10000, PartitionPages: 100, Seed: 7})
	pad := strings.Repeat("p", 400)
	const rows = 2000
	for i := 0; i < rows; i++ {
		if _, err := tb.Insert(int64(i%100), airportFor(i), pad); err != nil {
			t.Fatal(err)
		}
	}
	if err := tb.CreatePartialRangeIndex("delay", 0, 49); err != nil {
		t.Fatal(err)
	}
	if err := tb.CreatePartialRangeIndex("delay", 0, 9); err == nil {
		t.Error("duplicate index should fail")
	}

	// Covered query: hit.
	_, hit, err := tb.Query("delay", 10)
	if err != nil {
		t.Fatal(err)
	}
	if !hit.PartialHit {
		t.Error("covered query should hit")
	}

	// Uncovered query: miss builds the buffer; the repeat skips.
	_, m1, err := tb.Query("delay", 80)
	if err != nil {
		t.Fatal(err)
	}
	_, m2, err := tb.Query("delay", 81)
	if err != nil {
		t.Fatal(err)
	}
	if m2.PagesSkipped != tb.NumPages() {
		t.Errorf("second miss skipped %d of %d pages", m2.PagesSkipped, tb.NumPages())
	}
	if m2.PagesRead >= m1.PagesRead {
		t.Errorf("no speedup: %d then %d pages", m1.PagesRead, m2.PagesRead)
	}

	// Buffer stats surface through the facade.
	bs := MustOpen(Options{}).BufferStats()
	if len(bs) != 0 {
		t.Error("fresh DB should have no buffers")
	}
	// (The table's own DB instance is embedded; query its stats via a
	// fresh handle path.)

	// Redefinition resets and re-covers.
	if err := tb.RedefineRangeIndex("delay", 50, 99); err != nil {
		t.Fatal(err)
	}
	_, s, err := tb.Query("delay", 80)
	if err != nil {
		t.Fatal(err)
	}
	if !s.PartialHit {
		t.Error("redefined index should cover 80")
	}
}

func airportFor(i int) string {
	airports := []string{"ORD", "FRA", "HEL", "JFK", "MUC"}
	return airports[i%len(airports)]
}

func TestPublicAPISetIndexAndStats(t *testing.T) {
	db := MustOpen(Options{IMax: 1000, PartitionPages: 10})
	tb, err := db.CreateTable("t", StringColumn("airport"), StringColumn("pad"))
	if err != nil {
		t.Fatal(err)
	}
	pad := strings.Repeat("x", 300)
	us := []string{"ORD", "JFK", "LAX", "SFO"}
	eu := []string{"FRA", "MUC", "HEL", "TXL"}
	for i := 0; i < 1000; i++ {
		var a string
		if i%2 == 0 {
			a = us[(i/2)%4]
		} else {
			a = eu[(i/2)%4]
		}
		if _, err := tb.Insert(a, pad); err != nil {
			t.Fatal(err)
		}
	}
	// The paper's Figure 2: a partial index over U.S. airports only.
	if err := tb.CreatePartialSetIndex("airport", "ORD", "JFK", "LAX", "SFO"); err != nil {
		t.Fatal(err)
	}
	_, s, err := tb.Query("airport", "ORD")
	if err != nil {
		t.Fatal(err)
	}
	if !s.PartialHit {
		t.Error("US airport should hit")
	}
	rows, s, err := tb.Query("airport", "FRA")
	if err != nil {
		t.Fatal(err)
	}
	if s.PartialHit {
		t.Error("FRA should miss the partial index")
	}
	if len(rows) == 0 {
		t.Error("FRA rows missing")
	}
	if db.SpaceUsed() == 0 {
		t.Error("miss should have charged the space")
	}
	bs := db.BufferStats()
	if len(bs) != 1 || bs[0].Entries == 0 || bs[0].BufferedPages == 0 {
		t.Errorf("buffer stats = %+v", bs)
	}
	if bs[0].Name != "t.airport" {
		t.Errorf("buffer name = %q", bs[0].Name)
	}
}

func TestStructureOptions(t *testing.T) {
	for _, st := range []Structure{BTree, CSBTree, HashTable} {
		db := MustOpen(Options{Structure: st, IMax: 1000, PartitionPages: 10})
		tb, err := db.CreateTable("t", Int64Column("k"), StringColumn("pad"))
		if err != nil {
			t.Fatal(err)
		}
		pad := strings.Repeat("x", 200)
		for i := 0; i < 500; i++ {
			if _, err := tb.Insert(int64(i%50), pad); err != nil {
				t.Fatal(err)
			}
		}
		if err := tb.CreatePartialRangeIndex("k", 0, 24); err != nil {
			t.Fatal(err)
		}
		if _, _, err := tb.Query("k", 40); err != nil {
			t.Fatal(err)
		}
		rows, s, err := tb.Query("k", 40)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 10 {
			t.Errorf("structure %d: %d rows, want 10", st, len(rows))
		}
		if s.PagesSkipped == 0 {
			t.Errorf("structure %d: no skips on second query", st)
		}
	}
}

func TestDisableIndexBuffer(t *testing.T) {
	db := MustOpen(Options{DisableIndexBuffer: true})
	tb, err := db.CreateTable("t", Int64Column("k"), StringColumn("pad"))
	if err != nil {
		t.Fatal(err)
	}
	pad := strings.Repeat("x", 200)
	for i := 0; i < 300; i++ {
		if _, err := tb.Insert(int64(i%50), pad); err != nil {
			t.Fatal(err)
		}
	}
	if err := tb.CreatePartialRangeIndex("k", 0, 24); err != nil {
		t.Fatal(err)
	}
	_, s1, _ := tb.Query("k", 40)
	_, s2, _ := tb.Query("k", 40)
	if !s1.FullScan || !s2.FullScan || s2.PagesRead != s1.PagesRead {
		t.Error("baseline mode should keep paying full scans")
	}
	if len(db.BufferStats()) != 0 {
		t.Error("baseline mode should have no buffers")
	}
}

func TestPublicAPIQueryRange(t *testing.T) {
	tb := openFlights(t, Options{IMax: 10000, PartitionPages: 100, Seed: 7})
	pad := strings.Repeat("p", 300)
	for i := 0; i < 1500; i++ {
		if _, err := tb.Insert(int64(i%200), airportFor(i), pad); err != nil {
			t.Fatal(err)
		}
	}
	if err := tb.CreatePartialRangeIndex("delay", 0, 99); err != nil {
		t.Fatal(err)
	}

	// Covered range hits.
	rows, stats, err := tb.QueryRange("delay", 10, 19)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.PartialHit {
		t.Error("covered range should hit")
	}
	if len(rows) != 80 { // keys 10..19 appear 8 times each
		t.Errorf("rows = %d, want 80", len(rows))
	}

	// Straddling range: complete despite skips after build-out.
	if _, _, err := tb.QueryRange("delay", 150, 160); err != nil {
		t.Fatal(err)
	}
	rows, stats, err = tb.QueryRange("delay", 90, 110)
	if err != nil {
		t.Fatal(err)
	}
	if stats.PartialHit {
		t.Error("straddling range should miss")
	}
	if len(rows) != 157 { // keys 90..110 are 21 values; 1500/200=7.5 -> 7 or 8 each
		// exact count: keys k in [90,110]; i%200==k occurs 8 times for k<100, 7 for k>=100
		// 90..99: 10*8=80, 100..110: 11*7=77 -> 157
		t.Errorf("rows = %d, want 157", len(rows))
	}
	if stats.PagesSkipped == 0 {
		t.Error("expected page skips after build-out")
	}

	// Errors.
	if _, _, err := tb.QueryRange("nope", 1, 2); err == nil {
		t.Error("bad column should fail")
	}
	if _, _, err := tb.QueryRange("delay", struct{}{}, 2); err == nil {
		t.Error("bad lo type should fail")
	}
	if _, _, err := tb.QueryRange("delay", 1, struct{}{}); err == nil {
		t.Error("bad hi type should fail")
	}
}

func TestAutoTunerThroughFacade(t *testing.T) {
	db := MustOpen(Options{Seed: 4})
	tb, err := db.CreateTable("e", Int64Column("k"), StringColumn("pad"))
	if err != nil {
		t.Fatal(err)
	}
	pad := strings.Repeat("s", 250)
	for i := 0; i < 4000; i++ {
		if _, err := tb.Insert(int64(1+i%1000), pad); err != nil {
			t.Fatal(err)
		}
	}
	// AutoTune before an index exists: error.
	if _, err := tb.AutoTune("k", AutoTunePolicy{}); err == nil {
		t.Error("AutoTune without index should fail")
	}
	if _, err := tb.AutoTune("nope", AutoTunePolicy{}); err == nil {
		t.Error("AutoTune on missing column should fail")
	}
	if err := tb.CreatePartialRangeIndex("k", 1, 100); err != nil {
		t.Fatal(err)
	}
	tuner, err := tb.AutoTune("k", AutoTunePolicy{Window: 20, MissRate: 0.8, BucketWidth: 100})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := tuner.Query(struct{}{}); err == nil {
		t.Error("bad key type should fail")
	}

	// Sustained shift to [800, 899].
	sawAdapt := false
	for q := 0; q < 60; q++ {
		rows, _, adapted, err := tuner.Query(int64(800 + q%100))
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 4 {
			t.Fatalf("query %d: %d rows, want 4", q, len(rows))
		}
		sawAdapt = sawAdapt || adapted
	}
	if !sawAdapt || tuner.Adaptations() != 1 {
		t.Errorf("adaptations = %d, sawAdapt = %v", tuner.Adaptations(), sawAdapt)
	}
	// Post-adaptation: hits.
	_, stats, _, err := tuner.Query(int64(850))
	if err != nil {
		t.Fatal(err)
	}
	if !stats.PartialHit {
		t.Error("post-adaptation query should hit")
	}
}

func TestPublicAPIExplain(t *testing.T) {
	tb := openFlights(t, Options{})
	pad := strings.Repeat("p", 300)
	for i := 0; i < 600; i++ {
		if _, err := tb.Insert(int64(i%100), airportFor(i), pad); err != nil {
			t.Fatal(err)
		}
	}
	if err := tb.CreatePartialRangeIndex("delay", 0, 49); err != nil {
		t.Fatal(err)
	}
	plan, err := tb.Explain("delay", 10)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.PartialHit {
		t.Errorf("plan = %+v", plan)
	}
	plan, err = tb.Explain("delay", 80)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Mechanism != "indexing scan" {
		t.Errorf("plan = %+v", plan)
	}
	// EXPLAIN must not have built anything.
	if got := tb.t.Buffer(tb.schema.ColumnIndex("delay")); got.EntryCount() != 0 {
		t.Error("Explain mutated the buffer")
	}
	rp, err := tb.ExplainRange("delay", 40, 60)
	if err != nil {
		t.Fatal(err)
	}
	if rp.PartialHit {
		t.Errorf("straddling range plan = %+v", rp)
	}
	if _, err := tb.Explain("nope", 1); err == nil {
		t.Error("bad column should fail")
	}
	if _, err := tb.Explain("delay", struct{}{}); err == nil {
		t.Error("bad key should fail")
	}
	if _, err := tb.ExplainRange("nope", 1, 2); err == nil {
		t.Error("bad column should fail")
	}
	if _, err := tb.ExplainRange("delay", struct{}{}, 2); err == nil {
		t.Error("bad lo should fail")
	}
	if _, err := tb.ExplainRange("delay", 1, struct{}{}); err == nil {
		t.Error("bad hi should fail")
	}
}

func TestPublicAPIPersistence(t *testing.T) {
	dir := t.TempDir()
	db := MustOpen(Options{DataDir: dir})
	tb, err := db.CreateTable("flights", StringColumn("airport"), Int64Column("delay"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if _, err := tb.Insert(airportFor(i), int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tb.CreatePartialRangeIndex("delay", 0, 49); err != nil {
		t.Fatal(err)
	}
	if err := db.Save(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := OpenExisting(Options{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	tb2 := db2.Table("flights")
	if tb2 == nil {
		t.Fatal("table missing")
	}
	rows, stats, err := tb2.Query("delay", 25)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || !stats.PartialHit {
		t.Errorf("rows=%d hit=%v", len(rows), stats.PartialHit)
	}
	a, err := rows[0].String("airport")
	if err != nil || a != airportFor(25) {
		t.Errorf("airport = %q, %v", a, err)
	}
	// Saving an in-memory database fails cleanly.
	if err := MustOpen(Options{}).Save(); err == nil {
		t.Error("Save without DataDir should fail")
	}
	if _, err := OpenExisting(Options{}); err == nil {
		t.Error("OpenExisting without DataDir should fail")
	}
}

func TestPublicAPIVacuum(t *testing.T) {
	tb := openFlights(t, Options{})
	pad := strings.Repeat("v", 400)
	var rids []RID
	for i := 0; i < 400; i++ {
		rid, err := tb.Insert(int64(i%50), airportFor(i), pad)
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	for i := 0; i < len(rids); i += 2 {
		if err := tb.Delete(rids[i]); err != nil {
			t.Fatal(err)
		}
	}
	before, after, err := tb.Vacuum()
	if err != nil {
		t.Fatal(err)
	}
	if after >= before {
		t.Errorf("no shrink: %d -> %d", before, after)
	}
	if n, _ := tb.Count(); n != 200 {
		t.Errorf("rows = %d", n)
	}
}

func TestTraceReport(t *testing.T) {
	tb := openFlights(t, Options{})
	if _, err := tb.Insert(int64(5), "ORD", "p"); err != nil {
		t.Fatal(err)
	}
	db := MustOpen(Options{})
	if db.TraceReport() != "no queries recorded" {
		t.Errorf("fresh report = %q", db.TraceReport())
	}
	if _, _, err := tb.Query("delay", 5); err != nil {
		t.Fatal(err)
	}
	// tb belongs to its own DB; query its engine's report through a
	// second query and the table handle's underlying engine.
	// (The facade exposes the report on the DB that owns the table.)
}

func TestTraceReportThroughDB(t *testing.T) {
	db := MustOpen(Options{})
	tb, err := db.CreateTable("t", Int64Column("k"), StringColumn("p"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tb.Insert(int64(1), "x"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := tb.Query("k", 1); err != nil {
		t.Fatal(err)
	}
	rep := db.TraceReport()
	if !strings.Contains(rep, "t.k") {
		t.Errorf("report = %q", rep)
	}
}
