package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/flight"
)

// Config tunes one Server. The zero value is usable: an ephemeral
// loopback port, a worker pool sized to the machine, and generous
// deadlines.
type Config struct {
	// Addr is the TCP listen address; "" means "127.0.0.1:0".
	Addr string
	// Workers bounds concurrently executing statements across all
	// connections — the same pool discipline as the scan-execution
	// stage: connections are cheap goroutines, execution slots are the
	// scarce resource. 0 means 4×GOMAXPROCS.
	Workers int
	// ReadTimeout is the per-statement read deadline: a connection idle
	// longer is closed. 0 means 5 minutes.
	ReadTimeout time.Duration
	// WriteTimeout is the per-response write deadline. 0 means 30s.
	WriteTimeout time.Duration
	// MaxLineBytes bounds one statement line. 0 means 1 MiB.
	MaxLineBytes int
}

func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = "127.0.0.1:0"
	}
	if c.Workers <= 0 {
		c.Workers = 4 * runtime.GOMAXPROCS(0)
	}
	if c.ReadTimeout <= 0 {
		c.ReadTimeout = 5 * time.Minute
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 30 * time.Second
	}
	if c.MaxLineBytes <= 0 {
		c.MaxLineBytes = 1 << 20
	}
	return c
}

// Server accepts TCP connections and executes their statement streams:
// goroutine per connection, a bounded worker pool for execution, and a
// graceful drain on Shutdown. Every statement goes through the
// repro.DB.Exec / Session.Exec front door.
type Server struct {
	db  *repro.DB
	cfg Config

	sem    chan struct{} // execution slots
	ctx    context.Context
	cancel context.CancelFunc

	mu       sync.Mutex
	ln       net.Listener
	conns    map[net.Conn]struct{}
	draining bool

	wg sync.WaitGroup // accept loop + connection handlers

	statements atomic.Uint64
	errored    atomic.Uint64
}

// New builds a server over db. Call Start to listen.
func New(db *repro.DB, cfg Config) *Server {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	return &Server{
		db:     db,
		cfg:    cfg,
		sem:    make(chan struct{}, cfg.Workers),
		ctx:    ctx,
		cancel: cancel,
		conns:  make(map[net.Conn]struct{}),
	}
}

// Start binds the configured address and begins accepting connections
// in a background goroutine. It returns the bound address (useful with
// the default ephemeral port).
func (s *Server) Start() (net.Addr, error) {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		ln.Close()
		return nil, errors.New("server: already shut down")
	}
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			// The listener is closed by Shutdown; anything else on a
			// closed-for-business server is equally final.
			return
		}
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			conn.Close()
			continue
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.handle(conn)
	}
}

// response is one protocol response line.
type response struct {
	OK     bool   `json:"ok"`
	Output string `json:"output,omitempty"`
	Rows   int    `json:"rows,omitempty"`
	Code   string `json:"code,omitempty"`
	Error  string `json:"error,omitempty"`
	// Trace is the statement's trace ID — the client-supplied one (the
	// "TRACE <id> <stmt>" prefix) echoed back, or the one the server
	// minted when the flight recorder is on. Correlate it with
	// /debug/queries?trace=<id> on the observability listener and with
	// the trace field of exported span records.
	Trace string `json:"trace,omitempty"`
}

func errResponse(err error) response {
	return response{Code: CodeOf(err), Error: err.Error()}
}

// tenantStmt recognizes the "TENANT <name>" handshake.
func tenantStmt(line string) (string, bool) {
	f := strings.Fields(line)
	if len(f) == 2 && strings.EqualFold(f[0], "TENANT") {
		return f[1], true
	}
	return "", false
}

// traceStmt recognizes the optional "TRACE <id> <stmt>" statement
// prefix: the client names the trace ID the statement should execute
// under, and the server echoes it in the response. The ID is a single
// whitespace-free token.
func traceStmt(line string) (id, rest string, ok bool) {
	first, tail, found := strings.Cut(line, " ")
	if !found || !strings.EqualFold(first, "TRACE") {
		return "", "", false
	}
	id, rest, found = strings.Cut(strings.TrimSpace(tail), " ")
	if !found || id == "" {
		return "", "", false
	}
	rest = strings.TrimSpace(rest)
	if rest == "" {
		return "", "", false
	}
	return id, rest, true
}

func (s *Server) handle(conn net.Conn) {
	defer s.wg.Done()
	defer conn.Close()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()

	sess, err := s.db.Session("")
	if err != nil {
		return // closed database; nothing to say
	}
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 64<<10), s.cfg.MaxLineBytes)
	for {
		_ = conn.SetReadDeadline(time.Now().Add(s.cfg.ReadTimeout))
		if !sc.Scan() {
			// EOF, idle timeout, an oversized line, or the drain poke
			// from Shutdown (which expires the pending read).
			return
		}
		resp, quit := s.serveLine(&sess, strings.TrimSpace(sc.Text()))

		_ = conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
		enc, err := json.Marshal(resp)
		if err != nil {
			enc = []byte(fmt.Sprintf(`{"ok":false,"code":%q,"error":"response encoding failed"}`, CodeBadStatement))
		}
		if _, err := conn.Write(append(enc, '\n')); err != nil {
			return
		}
		if quit || s.isDraining() {
			return
		}
	}
}

// serveLine executes one request line: the TENANT handshake rebinds the
// session in place; everything else acquires a worker slot and runs
// through the statement API.
func (s *Server) serveLine(sess **repro.Session, line string) (response, bool) {
	if name, ok := tenantStmt(line); ok {
		ns, err := s.db.Session(name)
		if err != nil {
			s.errored.Add(1)
			return errResponse(err), false
		}
		*sess = ns
		return response{OK: true, Output: "tenant " + name}, false
	}

	// Resolve the statement's trace ID before execution: a client-
	// supplied TRACE prefix wins; otherwise one is minted while the
	// flight recorder is on, so every response can be correlated with
	// its flight record. With the recorder off and no prefix, the
	// statement runs untraced and the response omits the field.
	ctx := s.ctx
	traceID, rest, ok := traceStmt(line)
	if ok {
		line = rest
	} else if s.db.FlightRecorderEnabled() {
		traceID = s.db.MintTraceID()
	}
	if traceID != "" {
		ctx = flight.WithTrace(ctx, traceID)
	}

	select {
	case s.sem <- struct{}{}:
	case <-s.ctx.Done():
		return errResponse(s.ctx.Err()), true
	}
	res, err := (*sess).Exec(ctx, line)
	<-s.sem

	s.statements.Add(1)
	if err != nil {
		s.errored.Add(1)
		resp := errResponse(err)
		resp.Trace = traceID
		return resp, false
	}
	return response{OK: true, Output: res.Output, Rows: res.Rows, Trace: traceID}, res.Quit
}

func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Statements returns the number of executed statements (excluding
// TENANT handshakes).
func (s *Server) Statements() uint64 { return s.statements.Load() }

// Errors returns the number of statements (and handshakes) that failed.
func (s *Server) Errors() uint64 { return s.errored.Load() }

// Shutdown drains the server: the listener closes, idle connections are
// woken and closed, and in-flight statements run to completion. If ctx
// expires first, in-flight statements are canceled (their scans abort
// between page reads) and connections are closed forcibly; Shutdown
// still waits for every handler to return, so no goroutine outlives it.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	ln := s.ln
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	if ln != nil {
		ln.Close()
	}
	// Wake blocked readers so their handlers observe the drain; a
	// handler mid-statement finishes and closes after its response.
	now := time.Now()
	for _, c := range conns {
		_ = c.SetReadDeadline(now)
	}

	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
	}
	s.cancel() // abort in-flight scans
	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	<-done
	return ctx.Err()
}
