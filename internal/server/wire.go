// Package server implements the aibserver network front end: a TCP
// server speaking a line-oriented protocol whose statements are the
// shell query language. Each connection is a session — optionally bound
// to a tenant with the TENANT handshake — with one JSON response line
// per statement. Execution goes exclusively through the repro.DB.Exec /
// Session.Exec front door, so the server, aibshell, and tests share one
// statement path.
//
// Protocol (one request line, one response line, UTF-8):
//
//	C: TENANT acme
//	S: {"ok":true,"output":"tenant acme"}
//	C: SELECT * FROM t WHERE a = 7
//	S: {"ok":true,"output":"...","rows":2}
//	C: SELECT * FROM nope WHERE a = 7
//	S: {"ok":false,"code":"bad_statement","error":"no table \"nope\""}
//
// EXIT/QUIT answers {"ok":true} and closes the connection.
package server

import (
	"context"
	"errors"

	"repro"
)

// Protocol error codes. These are the server's public error surface:
// clients branch on the code, never on error text, so the mapping below
// must stay stable (TestWireCodesRoundTrip pins it).
const (
	CodeNoColumn       = "no_column"
	CodeNoIndex        = "no_index"
	CodeDuplicateIndex = "duplicate_index"
	CodeDuplicateTable = "duplicate_table"
	CodeClosed         = "closed"
	CodeQuotaExceeded  = "quota_exceeded"
	CodeTenantUnknown  = "tenant_unknown"
	CodeCanceled       = "canceled"
	CodeDeadline       = "deadline"
	// CodeBadStatement covers everything else a statement can do wrong:
	// parse errors, unknown tables or columns by name, bad literals.
	CodeBadStatement = "bad_statement"
)

// wireCodes maps sentinel errors to protocol codes, most specific
// first (a quota error wrapped by a statement error must map to
// quota_exceeded, not bad_statement).
var wireCodes = []struct {
	Code string
	Err  error
}{
	{CodeNoColumn, repro.ErrNoColumn},
	{CodeNoIndex, repro.ErrNoIndex},
	{CodeDuplicateIndex, repro.ErrDuplicateIndex},
	{CodeDuplicateTable, repro.ErrDuplicateTable},
	{CodeClosed, repro.ErrClosed},
	{CodeQuotaExceeded, repro.ErrQuotaExceeded},
	{CodeTenantUnknown, repro.ErrTenantUnknown},
	{CodeCanceled, context.Canceled},
	{CodeDeadline, context.DeadlineExceeded},
}

// CodeOf maps an execution error to its protocol code. Unrecognized
// errors — parser complaints, name-resolution failures — report
// bad_statement.
func CodeOf(err error) string {
	for _, wc := range wireCodes {
		if errors.Is(err, wc.Err) {
			return wc.Code
		}
	}
	return CodeBadStatement
}

// ErrFromCode returns the sentinel error a protocol code stands for —
// the client-side half of the mapping — or nil for codes with no
// sentinel (bad_statement, unknown codes).
func ErrFromCode(code string) error {
	for _, wc := range wireCodes {
		if wc.Code == code {
			return wc.Err
		}
	}
	return nil
}
