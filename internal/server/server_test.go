package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro"
)

func openDB(t *testing.T, o repro.Options) *repro.DB {
	t.Helper()
	db, err := repro.Open(o)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func startServer(t *testing.T, db *repro.DB, cfg Config) (*Server, string) {
	t.Helper()
	srv := New(db, cfg)
	addr, err := srv.Start()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	})
	return srv, addr.String()
}

// TestWireCodesRoundTrip pins the protocol error surface: every code
// maps to its sentinel and back, including through wrapping.
func TestWireCodesRoundTrip(t *testing.T) {
	for _, wc := range wireCodes {
		if got := CodeOf(wc.Err); got != wc.Code {
			t.Errorf("CodeOf(%v) = %q, want %q", wc.Err, got, wc.Code)
		}
		wrapped := fmt.Errorf("statement failed: %w", wc.Err)
		if got := CodeOf(wrapped); got != wc.Code {
			t.Errorf("CodeOf(wrapped %v) = %q, want %q", wc.Err, got, wc.Code)
		}
		sentinel := ErrFromCode(wc.Code)
		if sentinel == nil || !errors.Is(wrapped, sentinel) {
			t.Errorf("ErrFromCode(%q) = %v does not match the original error", wc.Code, sentinel)
		}
	}
	if got := CodeOf(errors.New("anything else")); got != CodeBadStatement {
		t.Errorf("CodeOf(unknown) = %q, want %q", got, CodeBadStatement)
	}
	if got := ErrFromCode(CodeBadStatement); got != nil {
		t.Errorf("ErrFromCode(bad_statement) = %v, want nil", got)
	}
	if got := ErrFromCode("no_such_code"); got != nil {
		t.Errorf("ErrFromCode(unknown) = %v, want nil", got)
	}
}

// protoConn is a tiny test client over the line protocol.
type protoConn struct {
	t    *testing.T
	conn net.Conn
	sc   *bufio.Scanner
}

func dialProto(t *testing.T, addr string) *protoConn {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	return &protoConn{t: t, conn: conn, sc: sc}
}

func (c *protoConn) do(stmt string) response {
	c.t.Helper()
	if _, err := fmt.Fprintf(c.conn, "%s\n", stmt); err != nil {
		c.t.Fatalf("write %q: %v", stmt, err)
	}
	if !c.sc.Scan() {
		c.t.Fatalf("no response to %q: %v", stmt, c.sc.Err())
	}
	var r response
	if err := json.Unmarshal(c.sc.Bytes(), &r); err != nil {
		c.t.Fatalf("bad response %q: %v", c.sc.Text(), err)
	}
	return r
}

func TestServerProtocol(t *testing.T) {
	db := openDB(t, repro.Options{Tenants: []repro.Tenant{{Name: "acme"}}})
	_, addr := startServer(t, db, Config{})
	c := dialProto(t, addr)

	if r := c.do("TENANT nope"); r.OK || r.Code != CodeTenantUnknown {
		t.Fatalf("unknown tenant: got %+v", r)
	}
	if r := c.do("TENANT acme"); !r.OK {
		t.Fatalf("handshake failed: %+v", r)
	}
	if r := c.do("CREATE TABLE t (a INT, b VARCHAR)"); !r.OK {
		t.Fatalf("create: %+v", r)
	}
	if r := c.do("INSERT INTO t VALUES (1, 'one'), (2, 'two')"); !r.OK || r.Rows != 2 {
		t.Fatalf("insert: %+v", r)
	}
	if r := c.do("SELECT * FROM t WHERE a = 2"); !r.OK || r.Rows != 1 || !strings.Contains(r.Output, "two") {
		t.Fatalf("select: %+v", r)
	}
	if r := c.do("SELECT * FROM t WHERE a BETWEEN 1 AND 2"); !r.OK || r.Rows != 2 {
		t.Fatalf("range select: %+v", r)
	}
	if r := c.do("garbage statement !!"); r.OK || r.Code != CodeBadStatement {
		t.Fatalf("bad statement: got %+v", r)
	}
	// The tenant's table is invisible to a fresh default-tenant session.
	c2 := dialProto(t, addr)
	if r := c2.do("SELECT * FROM t WHERE a = 1"); r.OK {
		t.Fatalf("tenant table leaked to default session: %+v", r)
	}
	// EXIT answers then closes.
	if r := c.do("EXIT"); !r.OK {
		t.Fatalf("exit: %+v", r)
	}
	_ = c.conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if c.sc.Scan() {
		t.Fatalf("connection still open after EXIT: %q", c.sc.Text())
	}
}

func TestServerStrictQuotaOverWire(t *testing.T) {
	db := openDB(t, repro.Options{
		SpaceLimit: 1000,
		Tenants:    []repro.Tenant{{Name: "hard", Quota: 5, Strict: true}},
	})
	_, addr := startServer(t, db, Config{})
	c := dialProto(t, addr)
	for _, stmt := range []string{
		"TENANT hard",
		"CREATE TABLE t (a INT, b VARCHAR)",
		"CREATE PARTIAL INDEX ON t (a) COVERING 1 TO 5",
	} {
		if r := c.do(stmt); !r.OK {
			t.Fatalf("%s: %+v", stmt, r)
		}
	}
	var sb strings.Builder
	sb.WriteString("INSERT INTO t VALUES ")
	for i := 0; i < 200; i++ {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "(%d, 'x')", i%50+1)
	}
	if r := c.do(sb.String()); !r.OK {
		t.Fatalf("insert: %+v", r)
	}
	// Hammer uncovered keys until the quota fills; the strict tenant
	// must then see quota_exceeded on the wire, not silent degradation.
	sawQuota := false
	for k := int64(6); k <= 50; k++ {
		r := c.do(fmt.Sprintf("SELECT * FROM t WHERE a = %d", k))
		if !r.OK {
			if r.Code != CodeQuotaExceeded {
				t.Fatalf("want quota_exceeded, got %+v", r)
			}
			sawQuota = true
			break
		}
	}
	if !sawQuota {
		t.Fatal("strict tenant never hit its quota")
	}
}

// TestServerStressQuotas replays seeded query-only streams from many
// concurrent connections and asserts the hard multi-tenant invariants:
// every tenant within its quota, the ledger sum within SpaceLimit, the
// quota-tight tenant demonstrably degraded, no cross-tenant evictions
// without overcommit — and no goroutine outlives Shutdown.
func TestServerStressQuotas(t *testing.T) {
	before := runtime.NumGoroutine()

	const spaceLimit = 2000
	db := openDB(t, repro.Options{
		SpaceLimit: spaceLimit,
		Tenants: []repro.Tenant{
			{Name: "acme", Quota: 1500},
			{Name: "tiny", Quota: 10},
		},
	})
	srv := New(db, Config{Workers: 8})
	addr, err := srv.Start()
	if err != nil {
		t.Fatal(err)
	}

	cfg := DefaultLoadConfig()
	cfg.Conns = 32
	cfg.QueriesPerConn = 30
	cfg.Tenants = []string{"acme", "tiny"}
	cfg.Rows = 400
	cfg.Domain = 100
	cfg.Covered = 20
	cfg.HitRate = 0.3
	if testing.Short() {
		cfg.Conns = 8
		cfg.QueriesPerConn = 10
	}
	if err := SetupLoad(addr.String(), cfg); err != nil {
		t.Fatal(err)
	}
	rep, err := RunLoad(addr.String(), cfg, db)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Errorf("replay saw %d statement errors", rep.Errors)
	}
	if want := cfg.Conns * cfg.QueriesPerConn; rep.Statements != want {
		t.Errorf("statements = %d, want %d", rep.Statements, want)
	}

	if v := VerifyQuotas(db, spaceLimit); len(v) != 0 {
		t.Fatalf("quota invariants violated: %v", v)
	}
	for _, ts := range db.TenantStats() {
		if ts.Name == "tiny" && ts.Degraded == 0 {
			t.Error("tiny tenant never degraded despite a 10-entry quota")
		}
		// Quotas (1500 + 10) fit within SpaceLimit 2000, so no scan ever
		// needs to displace another tenant's entries.
		if ts.Evicted != 0 {
			t.Errorf("tenant %q lost %d entries cross-tenant without overcommit", ts.Name, ts.Evicted)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if _, err := net.DialTimeout("tcp", addr.String(), time.Second); err == nil {
		t.Error("listener still accepting after Shutdown")
	}

	// Handler goroutines must all be gone; allow unrelated runtime noise.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+3 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d before, %d after\n%s",
				before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestServerShutdownDrain checks the graceful path: idle connections
// are woken and closed, Shutdown returns without the grace period
// expiring, and statements finish with statements counted.
func TestServerShutdownDrain(t *testing.T) {
	db := openDB(t, repro.Options{})
	srv := New(db, Config{})
	addr, err := srv.Start()
	if err != nil {
		t.Fatal(err)
	}
	c := dialProto(t, addr.String())
	if r := c.do("CREATE TABLE t (a INT, b VARCHAR)"); !r.OK {
		t.Fatalf("create: %+v", r)
	}
	// The connection now sits idle in a read; Shutdown must not wait for
	// its read deadline.
	start := time.Now()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Errorf("graceful drain took %v", d)
	}
	if got := srv.Statements(); got != 1 {
		t.Errorf("statements = %d, want 1", got)
	}
}

// TestServerTracePropagation pins the end-to-end trace-context path: a
// client-supplied TRACE ID must come back in the response JSON, appear
// on the span events the statement emitted, and key the statement's
// flight record — for that exact statement.
func TestServerTracePropagation(t *testing.T) {
	db := openDB(t, repro.Options{})
	db.EnableFlightRecorder(time.Hour) // record everything, capture nothing as slow
	db.EnableTraceEvents(true)
	_, addr := startServer(t, db, Config{})
	c := dialProto(t, addr)

	for _, stmt := range []string{
		"CREATE TABLE t (a INT, b VARCHAR)",
		"CREATE PARTIAL INDEX ON t (a) COVERING 1 TO 5",
	} {
		if r := c.do(stmt); !r.OK {
			t.Fatalf("%s: %+v", stmt, r)
		}
	}
	var sb strings.Builder
	sb.WriteString("INSERT INTO t VALUES ")
	for i := 0; i < 120; i++ {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "(%d, 'x')", i%40+1)
	}
	if r := c.do(sb.String()); !r.OK {
		t.Fatalf("insert: %+v", r)
	}

	// The traced statement misses the partial index, so it runs an
	// indexing scan and emits span events under the supplied trace ID.
	const traceID = "client-trace-42"
	const stmt = "SELECT * FROM t WHERE a = 30"
	r := c.do("TRACE " + traceID + " " + stmt)
	if !r.OK || r.Rows == 0 {
		t.Fatalf("traced select: %+v", r)
	}
	if r.Trace != traceID {
		t.Fatalf("response trace = %q, want the client-supplied %q", r.Trace, traceID)
	}

	// Flight record: exactly this statement, under this trace.
	recs := db.FlightRecords(traceID, "", 0, 0)
	if len(recs) != 1 {
		t.Fatalf("FlightRecords(%q) = %d records, want 1", traceID, len(recs))
	}
	rec := recs[0]
	if rec.Stmt != stmt {
		t.Errorf("flight record stmt = %q, want %q", rec.Stmt, stmt)
	}
	if rec.Tenant != "default" || rec.Table != "t" || rec.Column != "a" {
		t.Errorf("flight attribution wrong: %+v", rec)
	}
	if rec.Mechanism != "indexing-scan" {
		t.Errorf("mechanism = %q, want indexing-scan", rec.Mechanism)
	}
	if rec.PagesRead == 0 || len(rec.Spans) == 0 {
		t.Errorf("flight record missing execution detail: %+v", rec)
	}

	// Span stream: the statement's events carry the trace ID.
	traced := 0
	for _, sp := range db.TraceEvents() {
		if sp.Trace == traceID {
			traced++
		}
	}
	if traced == 0 {
		t.Error("no span event carries the client trace ID")
	}

	// Without a TRACE prefix the server mints: the response still
	// carries a (server-generated) ID that keys a flight record.
	r2 := c.do("SELECT * FROM t WHERE a = 31")
	if !r2.OK || !strings.HasPrefix(r2.Trace, "aib-") {
		t.Fatalf("minted trace missing: %+v", r2)
	}
	if got := db.FlightRecords(r2.Trace, "", 0, 0); len(got) != 1 {
		t.Errorf("minted trace %q keys %d flight records, want 1", r2.Trace, len(got))
	}

	// With the recorder off and no prefix, the response omits the field.
	db.DisableFlightRecorder()
	if r3 := c.do("SELECT * FROM t WHERE a = 32"); r3.Trace != "" {
		t.Errorf("recorder off: response still carries trace %q", r3.Trace)
	}
	// A client-supplied ID is still echoed even with the recorder off.
	if r4 := c.do("TRACE still-echoed SELECT * FROM t WHERE a = 33"); r4.Trace != "still-echoed" {
		t.Errorf("recorder off: client trace not echoed: %+v", r4)
	}
}
