package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"sort"
	"strings"
	"sync"
	"time"

	"repro"
	"repro/internal/workload"
)

// This file is the load harness behind cmd/aibload and the server
// stress tests: it populates one table per tenant over the wire, then
// replays seeded query-only streams from many concurrent connections
// and reports client-side latency percentiles plus the engine-side
// saved-scan fraction. The measured phase issues only SELECTs — the
// per-tenant quota is a hard invariant for query traffic, so a replay
// that mixed in DML could not assert it afterwards.

// LoadConfig shapes one load run. The zero value is not runnable; use
// DefaultLoadConfig as a base.
type LoadConfig struct {
	// Conns is the number of concurrent client connections.
	Conns int
	// QueriesPerConn is the number of SELECTs each connection replays.
	QueriesPerConn int
	// Tenants are the tenant names connections round-robin over; an
	// empty entry is the default tenant. Each tenant gets its own table.
	Tenants []string
	// Rows per tenant table.
	Rows int
	// Domain is the key domain [1, Domain] of the indexed column.
	Domain int64
	// Covered is the partial-index coverage prefix [1, Covered].
	Covered int64
	// HitRate is the fraction of queries drawn from the covered prefix.
	HitRate float64
	// PayloadLen, when positive, pads every row's payload column to this
	// many bytes. Wide rows spread the table over more pages than the
	// buffer pool holds, so indexing scans pay simulated-disk reads and
	// run long enough for concurrent misses to share them.
	PayloadLen int
	// Seed drives every random stream; per-connection sub-streams use
	// fixed offsets from it, so a run is reproducible.
	Seed int64
	// DialTimeout bounds each connection attempt.
	DialTimeout time.Duration
}

// DefaultLoadConfig is a short smoke-sized run.
func DefaultLoadConfig() LoadConfig {
	return LoadConfig{
		Conns:          64,
		QueriesPerConn: 50,
		Tenants:        []string{""},
		Rows:           2000,
		Domain:         1000,
		Covered:        100,
		HitRate:        0.5,
		Seed:           1,
		DialTimeout:    10 * time.Second,
	}
}

// LoadReport is the JSON document a load run produces (BENCH_server.json).
type LoadReport struct {
	Conns          int     `json:"conns"`
	QueriesPerConn int     `json:"queries_per_conn"`
	Statements     int     `json:"statements"`
	Errors         int     `json:"errors"`
	DurationMS     float64 `json:"duration_ms"`
	Throughput     float64 `json:"statements_per_sec"`
	P50MS          float64 `json:"p50_ms"`
	P90MS          float64 `json:"p90_ms"`
	P95MS          float64 `json:"p95_ms"`
	P99MS          float64 `json:"p99_ms"`
	MaxMS          float64 `json:"max_ms"`
	// TenantLatency breaks the client-side latency distribution down by
	// tenant, in the round-robin order of LoadConfig.Tenants. Quota-tight
	// tenants degrade to unindexed scans, so their tail separates from
	// the well-provisioned tenants' here.
	TenantLatency []TenantLatency `json:"tenant_latency,omitempty"`
	// SavedScanFraction is engine-side: the share of admitted misses
	// whose indexing scan was avoided by riding along on another's
	// (metrics.SharedScanStats.Saved / Misses). Only populated when the
	// run has in-process access to the database.
	SavedScanFraction float64 `json:"saved_scan_fraction"`
	// Tenants is the post-run quota ledger (in-process runs only).
	Tenants []repro.TenantStats `json:"tenants,omitempty"`
}

// TenantLatency is one tenant's slice of the replay: statement count,
// protocol errors, and the latency distribution in milliseconds.
type TenantLatency struct {
	Tenant     string  `json:"tenant"`
	Statements int     `json:"statements"`
	Errors     int     `json:"errors"`
	P50MS      float64 `json:"p50_ms"`
	P90MS      float64 `json:"p90_ms"`
	P99MS      float64 `json:"p99_ms"`
	MaxMS      float64 `json:"max_ms"`
}

// latencySummary sorts lats in place and reads the p50/p90/p95/p99/max
// milliseconds (zeros for an empty slice).
func latencySummary(lats []time.Duration) (p50, p90, p95, p99, max float64) {
	n := len(lats)
	if n == 0 {
		return
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	ms := func(d time.Duration) float64 { return float64(d.Microseconds()) / 1e3 }
	p50 = ms(lats[n*50/100])
	p90 = ms(lats[min(n-1, n*90/100)])
	p95 = ms(lats[min(n-1, n*95/100)])
	p99 = ms(lats[min(n-1, n*99/100)])
	max = ms(lats[n-1])
	return
}

// loadClient is one wire connection: statement out, JSON response in.
type loadClient struct {
	conn net.Conn
	sc   *bufio.Scanner
}

func dialClient(addr string, timeout time.Duration) (*loadClient, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	return &loadClient{conn: conn, sc: sc}, nil
}

func (c *loadClient) close() { c.conn.Close() }

// do sends one statement and decodes the response line.
func (c *loadClient) do(stmt string) (response, error) {
	if _, err := fmt.Fprintf(c.conn, "%s\n", stmt); err != nil {
		return response{}, err
	}
	if !c.sc.Scan() {
		if err := c.sc.Err(); err != nil {
			return response{}, err
		}
		return response{}, fmt.Errorf("connection closed mid-response")
	}
	var r response
	if err := json.Unmarshal(c.sc.Bytes(), &r); err != nil {
		return response{}, fmt.Errorf("bad response line %q: %w", c.sc.Text(), err)
	}
	return r, nil
}

// mustOK is do plus turning a protocol-level failure into an error.
func (c *loadClient) mustOK(stmt string) (response, error) {
	r, err := c.do(stmt)
	if err != nil {
		return r, err
	}
	if !r.OK {
		return r, fmt.Errorf("statement %q failed: %s (%s)", stmt, r.Error, r.Code)
	}
	return r, nil
}

// SetupLoad creates and populates one table ("t", columns a INT /
// payload VARCHAR) per tenant over the wire, then covers [1, Covered]
// with a partial index so the replay phase exercises hits, misses and —
// for quota-tight tenants — degraded scans.
func SetupLoad(addr string, cfg LoadConfig) error {
	const batch = 500
	for _, tenant := range cfg.Tenants {
		c, err := dialClient(addr, cfg.DialTimeout)
		if err != nil {
			return fmt.Errorf("setup dial: %w", err)
		}
		err = func() error {
			defer c.close()
			if tenant != "" {
				if _, err := c.mustOK("TENANT " + tenant); err != nil {
					return err
				}
			}
			if _, err := c.mustOK("CREATE TABLE t (a INT, payload VARCHAR)"); err != nil {
				return err
			}
			rng := rand.New(rand.NewSource(cfg.Seed + 17))
			var pad string
			if cfg.PayloadLen > 0 {
				pad = strings.Repeat("x", cfg.PayloadLen)
			}
			for lo := 0; lo < cfg.Rows; lo += batch {
				hi := lo + batch
				if hi > cfg.Rows {
					hi = cfg.Rows
				}
				var sb strings.Builder
				sb.WriteString("INSERT INTO t VALUES ")
				for i := lo; i < hi; i++ {
					if i > lo {
						sb.WriteString(", ")
					}
					key := rng.Int63n(cfg.Domain) + 1
					fmt.Fprintf(&sb, "(%d, 'p%d%s')", key, i, pad)
				}
				if _, err := c.mustOK(sb.String()); err != nil {
					return err
				}
			}
			stmt := fmt.Sprintf("CREATE PARTIAL INDEX ON t (a) COVERING 1 TO %d", cfg.Covered)
			if _, err := c.mustOK(stmt); err != nil {
				return err
			}
			return nil
		}()
		if err != nil {
			return fmt.Errorf("setup tenant %q: %w", tenant, err)
		}
	}
	return nil
}

// RunLoad replays the configured query streams against addr and
// aggregates the report. db may be nil (external server) — then the
// engine-side fields stay zero. RunLoad does not call SetupLoad; run it
// first on a fresh database.
func RunLoad(addr string, cfg LoadConfig, db *repro.DB) (LoadReport, error) {
	if cfg.Conns <= 0 || cfg.QueriesPerConn <= 0 || len(cfg.Tenants) == 0 {
		return LoadReport{}, fmt.Errorf("load: Conns, QueriesPerConn and Tenants must be set")
	}

	var before repro.SharedScanStats
	if db != nil {
		before = db.SharedScanStats()
	}

	type connResult struct {
		latencies []time.Duration
		errors    int
		err       error // fatal (dial / transport) error
	}
	results := make([]connResult, cfg.Conns)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < cfg.Conns; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res := &results[i]
			c, err := dialClient(addr, cfg.DialTimeout)
			if err != nil {
				res.err = err
				return
			}
			defer c.close()
			tenant := cfg.Tenants[i%len(cfg.Tenants)]
			if tenant != "" {
				if _, err := c.mustOK("TENANT " + tenant); err != nil {
					res.err = err
					return
				}
			}
			// Per-connection sub-stream at a fixed offset, repo seeding
			// convention: reproducible, and distinct across connections.
			rng := rand.New(rand.NewSource(cfg.Seed + 1000*int64(i) + 7))
			draw := workload.WithHitRate(cfg.HitRate,
				workload.Uniform(1, cfg.Covered),
				workload.Uniform(cfg.Covered+1, cfg.Domain))
			res.latencies = make([]time.Duration, 0, cfg.QueriesPerConn)
			for q := 0; q < cfg.QueriesPerConn; q++ {
				stmt := fmt.Sprintf("SELECT * FROM t WHERE a = %d", draw(rng))
				t0 := time.Now()
				r, err := c.do(stmt)
				if err != nil {
					res.err = err
					return
				}
				res.latencies = append(res.latencies, time.Since(t0))
				if !r.OK {
					res.errors++
				}
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all []time.Duration
	perTenant := make(map[string][]time.Duration, len(cfg.Tenants))
	tenantErrs := make(map[string]int, len(cfg.Tenants))
	rep := LoadReport{Conns: cfg.Conns, QueriesPerConn: cfg.QueriesPerConn}
	for i := range results {
		if results[i].err != nil {
			return rep, fmt.Errorf("conn %d: %w", i, results[i].err)
		}
		tenant := cfg.Tenants[i%len(cfg.Tenants)]
		all = append(all, results[i].latencies...)
		perTenant[tenant] = append(perTenant[tenant], results[i].latencies...)
		tenantErrs[tenant] += results[i].errors
		rep.Errors += results[i].errors
	}
	rep.Statements = len(all)
	rep.DurationMS = float64(elapsed.Microseconds()) / 1e3
	if elapsed > 0 {
		rep.Throughput = float64(rep.Statements) / elapsed.Seconds()
	}
	rep.P50MS, rep.P90MS, rep.P95MS, rep.P99MS, rep.MaxMS = latencySummary(all)
	for _, tenant := range cfg.Tenants {
		lats, seen := perTenant[tenant]
		if !seen {
			continue
		}
		delete(perTenant, tenant) // a tenant listed twice reports once
		name := tenant
		if name == "" {
			name = "default"
		}
		tl := TenantLatency{Tenant: name, Statements: len(lats), Errors: tenantErrs[tenant]}
		tl.P50MS, tl.P90MS, _, tl.P99MS, tl.MaxMS = latencySummary(lats)
		rep.TenantLatency = append(rep.TenantLatency, tl)
	}

	if db != nil {
		after := db.SharedScanStats()
		if misses := after.Misses - before.Misses; misses > 0 {
			rep.SavedScanFraction = float64(after.Saved-before.Saved) / float64(misses)
		}
		rep.Tenants = db.TenantStats()
	}
	return rep, nil
}

// VerifyQuotas checks the hard per-tenant invariants after a query-only
// replay: every tenant's occupancy within its quota, and the sum of all
// occupancies within the global SpaceLimit. It returns one message per
// violation (empty = clean).
func VerifyQuotas(db *repro.DB, spaceLimit int) []string {
	var violations []string
	total := 0
	for _, ts := range db.TenantStats() {
		total += ts.Used
		if ts.Quota > 0 && ts.Used > ts.Quota {
			violations = append(violations,
				fmt.Sprintf("tenant %q: used %d > quota %d", ts.Name, ts.Used, ts.Quota))
		}
	}
	if spaceLimit > 0 && total > spaceLimit {
		violations = append(violations,
			fmt.Sprintf("tenant ledgers sum to %d > SpaceLimit %d", total, spaceLimit))
	}
	if used := db.SpaceUsed(); spaceLimit > 0 && used > spaceLimit {
		violations = append(violations,
			fmt.Sprintf("space used %d > SpaceLimit %d", used, spaceLimit))
	}
	return violations
}
