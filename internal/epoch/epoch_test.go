package epoch

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestRetireWithoutReadersReclaims(t *testing.T) {
	d := NewDomain()
	freed := false
	d.Retire(func() { freed = true })
	d.Advance()
	if !freed {
		t.Fatal("retired snapshot not reclaimed with no readers pinned")
	}
	st := d.Stats()
	if st.RetiredBacklog != 0 || st.Reclaimed != 1 {
		t.Fatalf("stats after reclaim: %+v", st)
	}
}

func TestPinnedReaderBlocksReclamation(t *testing.T) {
	d := NewDomain()
	g := d.Pin()
	freed := false
	d.Retire(func() { freed = true })
	d.Advance()
	d.Advance()
	if freed {
		t.Fatal("snapshot reclaimed while a reader from its epoch was pinned")
	}
	if st := d.Stats(); st.Pinned != 1 || st.RetiredBacklog != 1 {
		t.Fatalf("stats with pinned reader: %+v", st)
	}
	g.Unpin()
	d.Advance()
	if !freed {
		t.Fatal("snapshot not reclaimed after the pinned reader left")
	}
	if st := d.Stats(); st.Pinned != 0 || st.RetiredBacklog != 0 {
		t.Fatalf("stats after unpin: %+v", st)
	}
}

// TestLateReaderDoesNotBlockOldRetire checks the directional guarantee:
// a reader pinned after the retire (it can only see the new snapshot)
// must not stall reclamation forever — the epoch rotates past it.
func TestLateReaderDoesNotBlockOldRetire(t *testing.T) {
	d := NewDomain()
	freed := false
	d.Retire(func() { freed = true })
	g := d.Pin() // pinned at an epoch >= the retire epoch
	// One full rotation cannot complete while g holds its generation,
	// but unpinning g must release everything.
	g.Unpin()
	d.Advance()
	if !freed {
		t.Fatal("retire never reclaimed after late reader unpinned")
	}
}

func TestInterleavedRetiresAllReclaimed(t *testing.T) {
	d := NewDomain()
	var freed atomic.Int64
	const n = 100
	for i := 0; i < n; i++ {
		g := d.Pin()
		d.Retire(func() { freed.Add(1) })
		g.Unpin()
	}
	d.Advance()
	if got := freed.Load(); got != n {
		t.Fatalf("reclaimed %d of %d interleaved retires", got, n)
	}
}

func TestZeroGuardUnpinIsInert(t *testing.T) {
	var g Guard
	g.Unpin() // must not panic
}

func TestReclamationLag(t *testing.T) {
	d := NewDomain()
	g := d.Pin()
	d.Retire(func() {})
	// Lag grows as the epoch advances past the stuck retire... except
	// the pinned reader also blocks rotation, so drive epochs by
	// retiring from later epochs after unpinning generations.
	st := d.Stats()
	if st.RetiredBacklog != 1 {
		t.Fatalf("backlog = %d", st.RetiredBacklog)
	}
	g.Unpin()
	d.Advance()
	if st := d.Stats(); st.ReclamationLag != 0 || st.RetiredBacklog != 0 {
		t.Fatalf("lag after drain: %+v", st)
	}
}

// TestEpochConcurrentStress hammers Pin/Unpin/Retire from many
// goroutines under the race detector: every retired value must be
// freed exactly once, and no value may be freed while a reader that
// could reference it is pinned (modelled by the shared pointer below).
func TestEpochConcurrentStress(t *testing.T) {
	d := NewDomain()
	type box struct{ alive atomic.Bool }
	var cur atomic.Pointer[box]
	first := &box{}
	first.alive.Store(true)
	cur.Store(first)

	var freed atomic.Int64
	var retired atomic.Int64
	stop := make(chan struct{})
	var readers, writers sync.WaitGroup

	// Readers: pin, load, validate the loaded box was not freed.
	for r := 0; r < 8; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				g := d.Pin()
				b := cur.Load()
				if !b.alive.Load() {
					t.Error("reader observed a reclaimed snapshot")
					g.Unpin()
					return
				}
				g.Unpin()
			}
		}()
	}

	// Writers: swap a fresh box in, retire the old one.
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func() {
			defer writers.Done()
			for i := 0; i < 2000; i++ {
				nb := &box{}
				nb.alive.Store(true)
				old := cur.Swap(nb)
				retired.Add(1)
				d.Retire(func() {
					old.alive.Store(false)
					freed.Add(1)
				})
			}
		}()
	}

	writers.Wait()
	close(stop)
	readers.Wait()
	d.Advance()
	if got, want := freed.Load(), retired.Load(); got != want {
		t.Fatalf("freed %d of %d retired snapshots", got, want)
	}
	if st := d.Stats(); st.Pinned != 0 || st.RetiredBacklog != 0 {
		t.Fatalf("leaks after stress: %+v", st)
	}
}
