// Package epoch implements epoch-based reclamation (EBR) for the
// engine's lock-free read path. Mutators publish immutable snapshots
// (counter arrays, index states) with a single atomic pointer swap and
// hand the displaced snapshot to Retire; readers bracket every probe of
// such a snapshot with Pin/Unpin. A retired snapshot is reclaimed only
// once every reader that could still hold a reference has unpinned —
// the classic three-epoch argument below — so readers never need a lock
// and mutators never wait for readers.
//
// The domain keeps exactly three reader slots. A reader pinned at epoch
// e registers in slot e%3. Advancing the global epoch from e to e+1 is
// allowed only while slot (e+1)%3 is empty: that slot can only contain
// readers pinned at e-2 (readers at e+1 cannot exist before the
// advance), so each advance certifies that the generation three epochs
// back has fully drained. An object retired at epoch r may therefore be
// freed once the epoch reaches r+3:
//
//	advance r   -> r+1 required slot (r+1)%3 empty: no readers at r-2
//	advance r+1 -> r+2 required slot (r+2)%3 empty: no readers at r-1
//	advance r+2 -> r+3 required slot r%3     empty: no readers at r
//
// and readers pinned at epochs > r observed the new snapshot (the swap
// happened before Retire). All counters use sync/atomic, whose
// operations are sequentially consistent in Go; the reader's re-check
// in Pin closes the window where a reader increments a slot the
// advancer already inspected.
package epoch

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// slots is the number of reader generations tracked. Three is the
// minimum that makes "slot empty" certify a whole generation drained
// (see the package comment); more would only delay reclamation.
const slots = 3

// padded keeps each slot's counter on its own cache line so readers on
// different cores do not false-share.
type padded struct {
	n atomic.Int64
	_ [56]byte
}

// retired is one snapshot awaiting reclamation.
type retired struct {
	epoch uint64
	free  func()
}

// Stats is a point-in-time view of a domain's reclamation machinery.
type Stats struct {
	// Epoch is the current global epoch.
	Epoch uint64 `json:"epoch"`
	// Pinned is the number of readers currently inside a Pin/Unpin
	// bracket (summed across generations; approximate under churn).
	Pinned int64 `json:"pinned"`
	// RetiredBacklog is the number of retired snapshots not yet
	// reclaimed.
	RetiredBacklog int `json:"retired_backlog"`
	// Reclaimed counts snapshots freed since the domain was created.
	Reclaimed uint64 `json:"reclaimed"`
	// ReclamationLag is the age, in epochs, of the oldest retired
	// snapshot still awaiting reclamation (0 when the limbo is empty).
	ReclamationLag uint64 `json:"reclamation_lag"`
}

// Domain is one epoch-reclamation scope. The zero Domain is ready to
// use; NewDomain exists for symmetry with the rest of the codebase.
type Domain struct {
	epoch  atomic.Uint64
	active [slots]padded

	mu        sync.Mutex
	limbo     []retired
	reclaimed atomic.Uint64
}

// NewDomain creates an empty domain at epoch 0.
func NewDomain() *Domain { return &Domain{} }

// Guard is an active reader registration. It must be released with
// exactly one Unpin; the zero Guard is inert.
type Guard struct {
	d *Domain
	e uint64
}

// Pin registers the caller as a reader of the current epoch. Snapshots
// retired after Pin returns will not be reclaimed until Unpin. Pin
// never blocks: the retry loop only runs when an advance races the
// registration, and each retry observes a strictly newer epoch.
func (d *Domain) Pin() Guard {
	for {
		e := d.epoch.Load()
		s := &d.active[e%slots]
		s.n.Add(1)
		// Re-check: if the epoch moved while we registered, our
		// increment may sit in a slot the advancer already certified
		// empty. Undo and re-register under the new epoch.
		if d.epoch.Load() == e {
			return Guard{d: d, e: e}
		}
		s.n.Add(-1)
	}
}

// Unpin releases the registration. When the reader was the last of its
// generation it also attempts an epoch advance, so reclamation makes
// progress even on read-only workloads.
func (g Guard) Unpin() {
	if g.d == nil {
		return
	}
	if g.d.active[g.e%slots].n.Add(-1) == 0 {
		g.d.tryAdvance()
	}
}

// Retire schedules free to run once every reader pinned at or before
// the current epoch has unpinned. The caller must have already
// unlinked the snapshot (swapped the new one in) before retiring the
// old one.
func (d *Domain) Retire(free func()) {
	e := d.epoch.Load()
	d.mu.Lock()
	d.limbo = append(d.limbo, retired{epoch: e, free: free})
	d.mu.Unlock()
	d.tryAdvance()
}

// Advance nudges the epoch forward as far as current readers permit and
// reclaims everything that became safe — up to one full rotation, which
// is enough to drain the limbo completely when no readers are pinned.
// Stats accessors call it so backlog gauges read as "what is actually
// still pinned down", not "what nobody has poked yet".
func (d *Domain) Advance() {
	for i := 0; i < slots; i++ {
		d.tryAdvance()
	}
}

// tryAdvance performs at most one epoch advance (when the incoming
// generation's slot is drained) and then reclaims whatever the limbo
// holds from three or more epochs back.
func (d *Domain) tryAdvance() {
	for {
		e := d.epoch.Load()
		if d.active[(e+1)%slots].n.Load() != 0 {
			break // readers from e-2 still pinned; cannot rotate onto them
		}
		if d.epoch.CompareAndSwap(e, e+1) {
			break
		}
		// Lost the race to another advancer; re-evaluate at the new epoch.
	}
	d.reclaim()
}

// reclaim frees limbo entries whose generation has provably drained.
// Entries are not epoch-ordered (concurrent Retires interleave), so the
// whole list is filtered, not prefix-scanned.
func (d *Domain) reclaim() {
	cur := d.epoch.Load()
	d.mu.Lock()
	var ready []retired
	kept := d.limbo[:0]
	for _, r := range d.limbo {
		if cur >= r.epoch+slots {
			ready = append(ready, r)
		} else {
			kept = append(kept, r)
		}
	}
	d.limbo = kept
	d.mu.Unlock()
	for _, r := range ready {
		if r.free != nil {
			r.free()
		}
		d.reclaimed.Add(1)
	}
}

// Stats returns the domain's current counters. It first lets the epoch
// advance as far as live readers allow, so the backlog and lag reflect
// genuine pins rather than scheduling noise.
func (d *Domain) Stats() Stats {
	d.Advance()
	var pinned int64
	for i := range d.active {
		pinned += d.active[i].n.Load()
	}
	cur := d.epoch.Load()
	d.mu.Lock()
	backlog := len(d.limbo)
	var lag uint64
	for _, r := range d.limbo {
		if age := cur - r.epoch; age > lag {
			lag = age
		}
	}
	d.mu.Unlock()
	if pinned < 0 {
		pinned = 0 // transient Pin-retry underflow in another generation's slot
	}
	return Stats{
		Epoch:          cur,
		Pinned:         pinned,
		RetiredBacklog: backlog,
		Reclaimed:      d.reclaimed.Load(),
		ReclamationLag: lag,
	}
}

// Gosched is a tiny indirection so callers in retry loops do not import
// runtime just for this.
func Gosched() { runtime.Gosched() }
