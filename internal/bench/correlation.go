package bench

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/index"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/storage"
)

// The correlation experiment runs the paper's §II argument inside the
// real engine instead of the abstract simulation of Figure 3: tables are
// physically laid out with controlled physical/logical order
// correlation, a partial index covers the bottom 10% of the key range,
// and we measure (a) the share of pages a scan can skip using the
// partial index alone and (b) what the Index Buffer adds. The paper's
// point — partial indexes almost never enable page skipping on real
// (barely clustered) data, so the Index Buffer is what makes skipping
// real — falls out as a table.

// CorrelationOptions configures the experiment.
type CorrelationOptions struct {
	Rows         int       // table size; 0 = 20,000
	Coverage     float64   // partial index coverage fraction; 0 = 0.1
	Correlations []float64 // nil = {1.0, 0.9, 0.8, 0.5, 0.0}
	Seed         int64
}

func (o CorrelationOptions) withDefaults() CorrelationOptions {
	if o.Rows <= 0 {
		o.Rows = 20000
	}
	if o.Coverage <= 0 {
		o.Coverage = 0.1
	}
	if o.Correlations == nil {
		o.Correlations = []float64{1.0, 0.9, 0.8, 0.5, 0.0}
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// CorrelationPoint is the measured outcome for one correlation level.
type CorrelationPoint struct {
	TargetCorrelation float64
	Measured          float64 // actual rank correlation of the layout
	TablePages        int
	NaturalSkipShare  float64 // pages skippable via the partial index alone
	FirstMissPages    int     // pages a first uncovered query reads
	BufferedPages     int     // pages the buffer had to complete
	BufferEntries     int     // entries that full skip coverage cost
	SteadyMissPages   float64 // mean pages per query after build-out
}

// CorrelationResult carries all points.
type CorrelationResult struct {
	Points []CorrelationPoint
}

// Frame renders the result with one row per correlation level.
func (r *CorrelationResult) Frame() *metrics.Frame {
	corr := metrics.NewSeries("correlation")
	natural := metrics.NewSeries("natural_skip_share")
	entries := metrics.NewSeries("buffer_entries_needed")
	steady := metrics.NewSeries("steady_pages_per_query")
	for _, p := range r.Points {
		corr.Add(p.Measured)
		natural.Add(p.NaturalSkipShare)
		entries.Add(float64(p.BufferEntries))
		steady.Add(p.SteadyMissPages)
	}
	return metrics.NewFrame("level", corr, natural, entries, steady)
}

// RunCorrelation measures the partial index's natural page-skipping power
// and the Index Buffer's completion cost across physical layouts.
func RunCorrelation(o CorrelationOptions) (*CorrelationResult, error) {
	o = o.withDefaults()
	r := &CorrelationResult{}
	for li, target := range o.Correlations {
		keys := sim.KeysWithCorrelation(o.Rows, target, o.Seed+int64(li))
		point, err := runCorrelationLevel(o, keys, target)
		if err != nil {
			return nil, fmt.Errorf("bench: correlation %.2f: %w", target, err)
		}
		r.Points = append(r.Points, point)
	}
	return r, nil
}

func runCorrelationLevel(o CorrelationOptions, keys []int, target float64) (CorrelationPoint, error) {
	point := CorrelationPoint{
		TargetCorrelation: target,
		Measured:          sim.RankCorrelation(keys),
	}
	eng := engine.New(engine.Config{Space: core.Config{
		IMax: o.Rows, // unlimited build-out in one scan
		P:    o.Rows,
	}})
	observeEngine(eng)
	schema := storage.MustSchema(
		storage.Column{Name: "k", Kind: storage.KindInt64},
		storage.Column{Name: "payload", Kind: storage.KindString},
	)
	tb, err := eng.CreateTable("t", schema)
	if err != nil {
		return point, err
	}
	pad := strings.Repeat("c", 400) // ~19 tuples/page, near the paper's 18
	for _, k := range keys {
		tu := storage.NewTuple(storage.Int64Value(int64(k)), storage.StringValue(pad))
		if _, err := tb.Insert(tu); err != nil {
			return point, err
		}
	}
	coveredBelow := int64(o.Coverage * float64(o.Rows))
	if err := tb.CreatePartialIndex(0, index.IntRange(0, coveredBelow-1)); err != nil {
		return point, err
	}
	point.TablePages = tb.NumPages()

	// Natural skipping: pages whose counter starts at zero.
	buf := tb.Buffer(0)
	naturalSkips := 0
	for p := 0; p < point.TablePages; p++ {
		if buf.Counter(storage.PageID(p)) == 0 {
			naturalSkips++
		}
	}
	point.NaturalSkipShare = float64(naturalSkips) / float64(point.TablePages)

	// One uncovered miss fully builds the buffer (I^MAX = rows).
	rng := rand.New(rand.NewSource(o.Seed + 99))
	uncoveredKey := func() storage.Value {
		return storage.Int64Value(coveredBelow + rng.Int63n(int64(o.Rows)-coveredBelow))
	}
	_, s1, err := tb.QueryEqual(0, uncoveredKey())
	if err != nil {
		return point, err
	}
	point.FirstMissPages = s1.PagesRead
	point.BufferedPages = buf.BufferedPages()
	point.BufferEntries = buf.EntryCount()

	// Steady state over a few queries.
	total := 0
	const steadyQueries = 20
	for q := 0; q < steadyQueries; q++ {
		_, s, err := tb.QueryEqual(0, uncoveredKey())
		if err != nil {
			return point, err
		}
		total += s.PagesRead
	}
	point.SteadyMissPages = float64(total) / steadyQueries
	return point, nil
}
