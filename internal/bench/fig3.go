package bench

import (
	"repro/internal/metrics"
	"repro/internal/sim"
)

// Fig3Options configures the fully-indexed-pages study.
type Fig3Options struct {
	Tuples       int // tuples per scenario (paper: 100,000)
	Steps        int // measurement steps per sweep
	SwapsPerStep int // random swaps between measurements
	Seed         int64
	Scenarios    []sim.Scenario // nil means sim.PaperScenarios()
}

// DefaultFig3Options returns the paper-scale configuration.
func DefaultFig3Options() Fig3Options {
	return Fig3Options{Tuples: 100000, Steps: 200, SwapsPerStep: 1500, Seed: 1}
}

// Fig3Curve is one scenario's sweep.
type Fig3Curve struct {
	Scenario sim.Scenario
	Points   []sim.Point
}

// Fig3Result carries all curves of the paper's Figure 3.
type Fig3Result struct {
	Curves []Fig3Curve
}

// RunFig3 reproduces Figure 3: the share of fully indexed pages as the
// physical/logical order correlation decays, for each scenario.
func RunFig3(o Fig3Options) (*Fig3Result, error) {
	if o.Tuples <= 0 {
		o = DefaultFig3Options()
	}
	scs := o.Scenarios
	if scs == nil {
		scs = sim.PaperScenarios()
	}
	r := &Fig3Result{}
	for i, sc := range scs {
		points, err := sim.Run(o.Tuples, sc, o.Steps, o.SwapsPerStep, o.Seed+int64(i))
		if err != nil {
			return nil, err
		}
		r.Curves = append(r.Curves, Fig3Curve{Scenario: sc, Points: points})
	}
	return r, nil
}

// Frame renders share-vs-correlation at fixed correlation grid points so
// all curves align (correlation descends from 1.0 to 0.0 in steps of
// 0.05).
func (r *Fig3Result) Frame() *metrics.Frame {
	series := make([]*metrics.Series, len(r.Curves))
	for i, c := range r.Curves {
		s := metrics.NewSeries(c.Scenario.String())
		for g := 0; g <= 20; g++ {
			corr := 1 - float64(g)*0.05
			s.Add(sim.ShareAt(c.Points, corr))
		}
		series[i] = s
	}
	return metrics.NewFrame("corr_step(1.0->0.0)", series...)
}
