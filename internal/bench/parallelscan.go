package bench

import (
	"math/rand"
	"sync"
	"time"

	"repro/internal/core"
)

// ParallelScanOptions configures RunParallelScan. ScanParallelism (in
// the embedded Options) selects serial (1) versus parallel (>1 or 0 for
// GOMAXPROCS) scan execution; Goroutines adds client-side contention.
type ParallelScanOptions struct {
	Options

	// Goroutines is the number of concurrent query streams. 1 (or 0)
	// runs the workload uncontended; higher counts exercise the scan
	// stage under scan-sharing admission, where concurrent misses
	// coalesce into shared parallel passes.
	Goroutines int
}

// ParallelScanResult reports one RunParallelScan pass.
type ParallelScanResult struct {
	Wall          time.Duration // wall-clock time of the whole query stream
	Queries       int           // queries actually issued
	ParallelScans uint64        // scan stages that fanned out to >1 worker
	Workers       uint64        // total workers across those stages
}

// RunParallelScan drives the Fig. 6 miss workload — equality queries on
// uncovered values of a single buffered column — against an engine with
// the configured scan parallelism, and reports the stream's wall-clock
// time. A tight SpaceLimit keeps the Index Buffer from ever covering the
// table, so queries keep missing and the indexing-scan stage (the code
// the parallel path accelerates) keeps running; ReadLatency makes those
// scans device-bound, as in the paper's table >> memory setup. Query
// results and buffer state are identical across parallelism settings, so
// comparing runs that differ only in ScanParallelism isolates the
// scan-execution speedup.
func RunParallelScan(o ParallelScanOptions) (*ParallelScanResult, error) {
	o.Options = o.Options.withDefaults()
	if err := o.Options.validate(); err != nil {
		return nil, err
	}
	if o.Goroutines < 1 {
		o.Goroutines = 1
	}
	spaceCfg := core.Config{
		IMax: o.scale(paperIMax),
		P:    o.scale(paperP),
		// Roughly one page's worth of entries: enough to keep the
		// adaptive machinery live, far too little to absorb the table.
		SpaceLimit: 32,
	}
	eng, tb, err := setup(o.Options, spaceCfg, 1, false)
	if err != nil {
		return nil, err
	}

	per := o.Queries / o.Goroutines
	if per < 1 {
		per = 1
	}
	r := &ParallelScanResult{Queries: per * o.Goroutines}

	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	draw := uncoveredDraw()
	start := time.Now()
	for g := 0; g < o.Goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Per-stream RNG derived from the seed: the workload is
			// deterministic for a given (Seed, Goroutines) pair.
			rng := rand.New(rand.NewSource(o.Seed + 1000 + int64(g)))
			for i := 0; i < per; i++ {
				if _, _, err := tb.QueryEqual(0, intVal(draw(rng))); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
			}
		}(g)
	}
	wg.Wait()
	r.Wall = time.Since(start)
	if firstErr != nil {
		return nil, firstErr
	}
	ps := eng.ParallelScanStats()
	r.ParallelScans = ps.Scans
	r.Workers = ps.Workers
	return r, nil
}
