// Workload-robustness suite: drives the five internal/workload scenario
// families against three page-selection arms — the paper's deterministic
// ascending-counter policy, RandomOrder, and RandomOrder plus
// displacement jitter — and measures queries-to-95%-coverage with the
// adaptation-timeline convergence detector. The point is the failure
// mode stochastic cracking (Halim et al.) documented for deterministic
// adaptive indexing: under the adversarial just-displaced pattern the
// deterministic policy's coverage plateaus indefinitely while the
// stochastic arms converge. RunRobustness emits a deterministic,
// baseline-comparable result (BENCH_robustness.json in CI).
package bench

import (
	"fmt"
	"strings"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/storage"
	"repro/internal/timeline"
	"repro/internal/trace"
	"repro/internal/workload"
)

// RobustnessArm is one page-selection policy under test.
type RobustnessArm struct {
	Name      string
	Selection core.SelectionOrder
	Jitter    float64 // core.Config.DisplacementJitter
}

// DefaultArms returns the three arms of the robustness matrix: the
// paper's deterministic policy and the two stochastic escapes.
func DefaultArms() []RobustnessArm {
	return []RobustnessArm{
		{Name: "ascending", Selection: core.AscendingCounter, Jitter: 0},
		{Name: "random", Selection: core.RandomOrder, Jitter: 0},
		{Name: "random+jitter", Selection: core.RandomOrder, Jitter: 1},
	}
}

// RobustnessArmResult is the convergence verdict of one scenario × arm
// cell. OpsToTarget is capped at the total op count when the arm never
// achieved the target, so ratios stay well-defined.
type RobustnessArmResult struct {
	Arm           string  `json:"arm"`
	Selection     string  `json:"selection"`
	Jitter        float64 `json:"jitter"`
	Achieved      bool    `json:"achieved"`
	OpsToTarget   int     `json:"ops_to_target"`
	FinalCoverage float64 `json:"final_coverage"`
	MaxCoverage   float64 `json:"max_coverage"`
	Regressed     bool    `json:"regressed,omitempty"`
	// DisplacedEntries is the cumulative entry count displaced from the
	// observed (column 0) buffer — the adversary's damage tally.
	DisplacedEntries uint64 `json:"displaced_entries"`
}

// RobustnessScenarioResult groups the arms of one scenario family.
type RobustnessScenarioResult struct {
	Scenario string                `json:"scenario"`
	Arms     []RobustnessArmResult `json:"arms"`
}

// RobustnessResult is the full matrix, shaped for BENCH_robustness.json.
// Everything in it is a deterministic function of (Rows, Ops, Seed) —
// no timestamps, no wall-clock — so committed baselines diff cleanly.
type RobustnessResult struct {
	Rows      int                        `json:"rows"`
	Ops       int                        `json:"ops"`
	Seed      int64                      `json:"seed"`
	Target    float64                    `json:"target"`
	Scenarios []RobustnessScenarioResult `json:"scenarios"`
}

// withRobustnessDefaults sizes the suite: the robustness matrix runs 15
// engine setups, so its default scale is smaller than the figure
// benchmarks'.
func (o Options) withRobustnessDefaults() Options {
	if o.Rows <= 0 {
		o.Rows = 4000
	}
	if o.Queries <= 0 {
		o.Queries = 500
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.ScanParallelism == 0 {
		o.ScanParallelism = 1
	}
	return o
}

// robustnessSpec is one scenario family plus the space budget it runs
// under. mk builds a fresh (stateful) scenario per arm.
type robustnessSpec struct {
	name    string
	columns int
	space   core.Config
	mk      func() workload.Scenario
}

// robustnessSpecs builds the five families over the uncovered value
// range [coveredHi()+1, paperDomain] (every query misses the partial
// index, as in the paper's experiments 1–3). Scenario seeds derive from
// o.Seed by fixed offsets per the repo seeding convention.
func robustnessSpecs(o Options) []robustnessSpec {
	lo, hi := coveredHi()+1, int64(paperDomain)
	standard := core.Config{
		IMax:       o.scale(paperIMax),
		P:          o.scale(paperP),
		SpaceLimit: o.scale(paperL),
	}
	// The adversarial war needs a budget that binds: roomy enough that
	// the victim *can* converge once the decoy is worn down, tight
	// enough that displacement starts well before 95% coverage
	// (one column's uncovered entries are ~0.9 rows; 7/6 rows leaves
	// ~25% headroom for two buffers to fight over).
	adversarialSpace := core.Config{
		IMax:       o.scale(paperIMax),
		P:          o.scale(paperP),
		SpaceLimit: o.Rows * 7 / 6,
	}
	period := o.Queries / 8
	if period < 1 {
		period = 1
	}
	mid := (lo + hi) / 2
	seed := func(i int64) int64 { return o.Seed + 2000 + i }
	return []robustnessSpec{
		{"sequential-sweep", 1, standard, func() workload.Scenario {
			return workload.NewSequentialSweep(lo, hi, 137)
		}},
		{"zipf-skew", 1, standard, func() workload.Scenario {
			return workload.NewZipfSkew(1.2, lo, hi, seed(1))
		}},
		{"periodic-shift", 1, standard, func() workload.Scenario {
			return workload.NewPeriodicShift(lo, mid, mid+1, hi, period, seed(2))
		}},
		{"dml-burst", 1, standard, func() workload.Scenario {
			return workload.NewDMLBurst(lo, hi, 12, 4, seed(3))
		}},
		{"adversarial-displacement", 2, adversarialSpace, func() workload.Scenario {
			return workload.NewAdversarialDisplacement(workload.AdversarialConfig{
				VictimLo: lo, VictimHi: hi,
				DecoyLo: lo, DecoyHi: hi,
				Warmup: 10, Burst: 3,
				Seed: seed(4),
			})
		}},
	}
}

// RunRobustness runs the full scenario × arm matrix and returns the
// convergence verdicts. Options.Queries is the op budget per cell.
func RunRobustness(o Options) (*RobustnessResult, error) {
	o = o.withRobustnessDefaults()
	if err := o.validate(); err != nil {
		return nil, err
	}
	r := &RobustnessResult{
		Rows:   o.Rows,
		Ops:    o.Queries,
		Seed:   o.Seed,
		Target: timeline.DefaultTarget,
	}
	for _, spec := range robustnessSpecs(o) {
		sr := RobustnessScenarioResult{Scenario: spec.name}
		for _, arm := range DefaultArms() {
			ar, err := runRobustnessArm(o, spec, arm)
			if err != nil {
				return nil, fmt.Errorf("bench: %s/%s: %w", spec.name, arm.Name, err)
			}
			sr.Arms = append(sr.Arms, ar)
		}
		r.Scenarios = append(r.Scenarios, sr)
	}
	return r, nil
}

// bufferColumn maps a span target like "t.b" to its key-column index
// (-1 when the name is not a single-letter column of table t).
func bufferColumn(target string) int {
	suffix, ok := strings.CutPrefix(target, "t.")
	if !ok || len(suffix) != 1 || suffix[0] < 'a' || suffix[0] > 'z' {
		return -1
	}
	return int(suffix[0] - 'a')
}

// runRobustnessArm drives one scenario under one selection arm and
// reports when (if ever) column 0's buffer converged.
func runRobustnessArm(o Options, spec robustnessSpec, arm RobustnessArm) (RobustnessArmResult, error) {
	space := spec.space
	space.Selection = arm.Selection
	space.DisplacementJitter = arm.Jitter
	space.Seed = o.Seed
	eng, tb, err := setup(o, space, spec.columns, false)
	if err != nil {
		return RobustnessArmResult{}, err
	}
	defer eng.Close()
	eng.Timeline().Enable(true)

	// Displacement feedback for reactive scenarios: the tracer's span
	// sink runs on the emitting goroutine with the Space lock held, so
	// it only bumps atomic counters (per the trace package contract).
	displaced := make([]atomic.Uint64, spec.columns)
	eng.Tracer().EnableSpans(true)
	eng.Tracer().SetSpanSink(func(sp trace.Span) {
		if sp.Kind != trace.SpanDisplace {
			return
		}
		if c := bufferColumn(sp.Target); c >= 0 && c < len(displaced) {
			displaced[c].Add(uint64(sp.N))
		}
	})

	sc := spec.mk()
	fb := workload.Feedback{DisplacedEntries: make([]uint64, spec.columns)}
	var rids []storage.RID // FIFO of scenario-inserted rows
	res := RobustnessArmResult{
		Arm:         arm.Name,
		Selection:   arm.Selection.String(),
		Jitter:      arm.Jitter,
		OpsToTarget: o.Queries,
	}
	for q := 0; q < o.Queries; q++ {
		for c := range fb.DisplacedEntries {
			fb.DisplacedEntries[c] = displaced[c].Load()
		}
		op := sc.Next(q, fb)
		switch op.Kind {
		case workload.OpQuery:
			if _, _, err := tb.QueryEqual(op.Column, intVal(op.Key)); err != nil {
				return res, err
			}
		case workload.OpInsert:
			rid, err := tb.Insert(storage.NewTuple(
				intVal(op.Key), intVal(op.Key), intVal(op.Key),
				storage.StringValue("robustness"),
			))
			if err != nil {
				return res, err
			}
			rids = append(rids, rid)
		case workload.OpDelete:
			if len(rids) > 0 {
				if err := tb.Delete(rids[0]); err != nil {
					return res, err
				}
				rids = rids[1:]
			}
		}
		if !res.Achieved {
			if v, ok := convergenceFor(eng.Convergence(), "t.a"); ok && v.Achieved {
				res.Achieved = true
				res.OpsToTarget = q + 1
			}
		}
	}
	if v, ok := convergenceFor(eng.Convergence(), "t.a"); ok {
		res.FinalCoverage = v.Coverage
		res.MaxCoverage = v.MaxCoverage
		res.Regressed = v.Regressed
	}
	res.DisplacedEntries = displaced[0].Load()
	return res, nil
}

// convergenceFor picks the verdict of one buffer out of an engine's
// convergence report.
func convergenceFor(vs []timeline.Convergence, buffer string) (timeline.Convergence, bool) {
	for _, v := range vs {
		if v.Buffer == buffer {
			return v, true
		}
	}
	return timeline.Convergence{}, false
}

// opsOrCap returns the arm's effective queries-to-target (the op budget
// when it never converged).
func (r *RobustnessResult) opsOrCap(a RobustnessArmResult) int {
	if !a.Achieved || a.OpsToTarget <= 0 {
		return r.Ops
	}
	return a.OpsToTarget
}

// scenario finds a scenario's result by family name.
func (r *RobustnessResult) scenario(name string) *RobustnessScenarioResult {
	for i := range r.Scenarios {
		if r.Scenarios[i].Scenario == name {
			return &r.Scenarios[i]
		}
	}
	return nil
}

// CheckAdversarial enforces the suite's acceptance criterion: on the
// adversarial just-displaced scenario, the best stochastic arm must
// reach the coverage target in at most half the ops of the
// deterministic ascending-counter arm.
func (r *RobustnessResult) CheckAdversarial() error {
	sc := r.scenario("adversarial-displacement")
	if sc == nil {
		return fmt.Errorf("bench: no adversarial-displacement scenario in result")
	}
	asc := -1
	best := -1
	bestArm := ""
	bestAchieved := false
	for _, a := range sc.Arms {
		eff := r.opsOrCap(a)
		if a.Arm == "ascending" {
			asc = eff
			continue
		}
		if best < 0 || eff < best {
			best, bestArm, bestAchieved = eff, a.Arm, a.Achieved
		}
	}
	if asc < 0 || best < 0 {
		return fmt.Errorf("bench: adversarial scenario is missing arms")
	}
	if !bestAchieved {
		return fmt.Errorf("bench: no stochastic arm converged on the adversarial scenario within %d ops (ascending: %d)", r.Ops, asc)
	}
	if best*2 > asc {
		return fmt.Errorf("bench: stochastic advantage too small on the adversarial scenario: best arm %s took %d ops, ascending %d (want ≤ half)", bestArm, best, asc)
	}
	return nil
}

// CompareBaseline diffs r against a committed baseline and returns one
// message per regression (empty means the gate passes). A regression is
// an arm that lost convergence, or whose queries-to-target grew by more
// than 25% plus a 10-op absolute slack. Improvements never fail the
// gate — CI refreshes the baseline artifact instead.
func (r *RobustnessResult) CompareBaseline(base *RobustnessResult) []string {
	var regressions []string
	if base == nil {
		return []string{"no baseline to compare against"}
	}
	for _, bs := range base.Scenarios {
		cs := r.scenario(bs.Scenario)
		if cs == nil {
			regressions = append(regressions, fmt.Sprintf("%s: scenario missing from current run", bs.Scenario))
			continue
		}
		for _, ba := range bs.Arms {
			var ca *RobustnessArmResult
			for i := range cs.Arms {
				if cs.Arms[i].Arm == ba.Arm {
					ca = &cs.Arms[i]
					break
				}
			}
			if ca == nil {
				regressions = append(regressions, fmt.Sprintf("%s/%s: arm missing from current run", bs.Scenario, ba.Arm))
				continue
			}
			if ba.Achieved && !ca.Achieved {
				regressions = append(regressions, fmt.Sprintf("%s/%s: no longer converges (baseline: %d ops)", bs.Scenario, ba.Arm, ba.OpsToTarget))
				continue
			}
			if !ba.Achieved {
				continue
			}
			allowed := base.opsOrCap(ba)*5/4 + 10
			if got := r.opsOrCap(*ca); got > allowed {
				regressions = append(regressions,
					fmt.Sprintf("%s/%s: queries-to-target regressed %d → %d (allowed ≤ %d)", bs.Scenario, ba.Arm, ba.OpsToTarget, got, allowed))
			}
		}
	}
	return regressions
}
