package bench

import (
	"math/rand"

	"repro/internal/metrics"
	"repro/internal/tuning"
	"repro/internal/workload"
)

// Fig1Options configures the control-loop-delay simulation. The paper's
// run: 500 queries over one integer column, focus shifting from values
// <15 to >15 between queries 200 and 300; promotion window and threshold
// per its Figure 1 caption.
type Fig1Options struct {
	Queries     int   // total queries (paper: 500)
	ShiftStart  int   // first query of the focus shift (paper: 200)
	ShiftEnd    int   // last query of the focus shift (paper: 300)
	Window      int   // monitoring window; see EXPERIMENTS.md for calibration
	Threshold   int   // promotions need this many observations in the window
	Capacity    int   // LRU capacity of the simulated partial index (values)
	HitRateOver int   // rolling window for the hit-rate series
	Seed        int64 // query draw seed
}

// DefaultFig1Options returns the calibrated reproduction parameters.
// Window is 100 rather than the paper's literal 20: under a uniform
// 14-value workload, 6 occurrences within 20 queries is a ~0.2% event, so
// nothing would ever be promoted; with 100 the tuner exhibits exactly the
// ~200-query adaptation delay the paper's Figure 1 shows.
func DefaultFig1Options() Fig1Options {
	return Fig1Options{
		Queries:     500,
		ShiftStart:  200,
		ShiftEnd:    300,
		Window:      100,
		Threshold:   tuning.DefaultThreshold,
		Capacity:    15,
		HitRateOver: 25,
		Seed:        1,
	}
}

// Fig1Result carries the series of the paper's Figure 1.
type Fig1Result struct {
	QueriedValue *metrics.Series // the value each query asked for
	IndexedLo    *metrics.Series // lower edge of the indexed value range
	IndexedHi    *metrics.Series // upper edge of the indexed value range
	Hit          *metrics.Series // 1 when the partial index answered
	HitRate      *metrics.Series // rolling hit rate over HitRateOver queries
}

// Frame renders the result for tables and plots.
func (r *Fig1Result) Frame() *metrics.Frame {
	return metrics.NewFrame("query", r.QueriedValue, r.IndexedLo, r.IndexedHi, r.HitRate)
}

// RunFig1 reproduces Figure 1: the control loop delay of adaptive partial
// indexing. Queries draw uniformly from a value range that shifts from
// [1, 14] to [16, 30] between ShiftStart and ShiftEnd; the tuner promotes
// and evicts values; the indexed range visibly lags the queried range and
// the hit rate collapses during the shift.
func RunFig1(o Fig1Options) *Fig1Result {
	rng := rand.New(rand.NewSource(o.Seed))
	tuner := tuning.New(o.Window, o.Threshold, o.Capacity)
	drawAt := workload.ShiftingRange(1, 14, 16, 30, o.ShiftStart, o.ShiftEnd)

	r := &Fig1Result{
		QueriedValue: metrics.NewSeries("queried_value"),
		IndexedLo:    metrics.NewSeries("indexed_lo"),
		IndexedHi:    metrics.NewSeries("indexed_hi"),
		Hit:          metrics.NewSeries("hit"),
		HitRate:      metrics.NewSeries("hit_rate"),
	}
	window := make([]float64, 0, o.HitRateOver)
	for q := 0; q < o.Queries; q++ {
		v := drawAt(q, rng)
		hit := tuner.OnQuery(intVal(v))
		r.QueriedValue.Add(float64(v))
		h := 0.0
		if hit {
			h = 1
		}
		r.Hit.Add(h)
		window = append(window, h)
		if len(window) > o.HitRateOver {
			window = window[1:]
		}
		sum := 0.0
		for _, x := range window {
			sum += x
		}
		r.HitRate.Add(sum / float64(len(window)))

		lo, hi, ok := tuner.IndexedRange()
		if ok {
			r.IndexedLo.Add(float64(lo.Int64()))
			r.IndexedHi.Add(float64(hi.Int64()))
		} else {
			r.IndexedLo.Add(0)
			r.IndexedHi.Add(0)
		}
	}
	return r
}
