package bench

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestRobustnessReplayDeterminism pins the repo seeding convention for
// the whole suite: two runs with the same options must serialize to
// byte-identical JSON (the property the committed CI baseline relies
// on — the result carries no timestamps or wall-clock).
func TestRobustnessReplayDeterminism(t *testing.T) {
	o := Options{Rows: 4000, Queries: 120, Seed: 7}
	a, err := RunRobustness(o)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunRobustness(o)
	if err != nil {
		t.Fatal(err)
	}
	aj, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	bj, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if string(aj) != string(bj) {
		t.Fatalf("same options did not replay identically:\n%s\n---\n%s", aj, bj)
	}
}

// TestRobustnessMatrixShape checks every scenario family runs every arm
// and that the easy (non-adversarial) families converge in all arms —
// stochastic selection must not cost convergence on benign workloads.
func TestRobustnessMatrixShape(t *testing.T) {
	r, err := RunRobustness(Options{Rows: 4000, Queries: 120})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Scenarios) != 5 {
		t.Fatalf("suite ran %d scenario families, want 5", len(r.Scenarios))
	}
	for _, sc := range r.Scenarios {
		if len(sc.Arms) != 3 {
			t.Fatalf("%s ran %d arms, want 3", sc.Scenario, len(sc.Arms))
		}
		if sc.Scenario == "adversarial-displacement" {
			continue
		}
		for _, a := range sc.Arms {
			if !a.Achieved {
				t.Errorf("%s/%s did not converge on a benign workload (max coverage %.2f)",
					sc.Scenario, a.Arm, a.MaxCoverage)
			}
		}
	}
}

// TestRobustnessAdversarialCriterion is the issue's acceptance
// criterion: under the just-displaced adversary, a stochastic arm must
// reach 95% coverage in at most half the ops of the deterministic
// ascending-counter arm. This is the Halim-style collapse the
// DisplacementJitter knob exists to break, measured end to end through
// the engine and the convergence detector.
func TestRobustnessAdversarialCriterion(t *testing.T) {
	r, err := RunRobustness(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.CheckAdversarial(); err != nil {
		t.Fatal(err)
	}
	sc := r.scenario("adversarial-displacement")
	for _, a := range sc.Arms {
		if a.Arm == "ascending" && a.Achieved {
			t.Errorf("deterministic arm escaped the adversary in %d ops — the starvation scenario has lost its teeth", a.OpsToTarget)
		}
	}
}

// mkResult builds a synthetic two-arm result for gate-logic tests.
func mkResult(ops int, ascOps, jitOps int, ascAchieved, jitAchieved bool) *RobustnessResult {
	return &RobustnessResult{
		Ops: ops,
		Scenarios: []RobustnessScenarioResult{{
			Scenario: "adversarial-displacement",
			Arms: []RobustnessArmResult{
				{Arm: "ascending", OpsToTarget: ascOps, Achieved: ascAchieved},
				{Arm: "random+jitter", OpsToTarget: jitOps, Achieved: jitAchieved},
			},
		}},
	}
}

func TestCheckAdversarial(t *testing.T) {
	cases := []struct {
		name    string
		r       *RobustnessResult
		wantErr string
	}{
		{"passes", mkResult(500, 500, 40, false, true), ""},
		{"exact half passes", mkResult(500, 80, 40, true, true), ""},
		{"margin too small", mkResult(500, 79, 40, true, true), "advantage too small"},
		{"stochastic never converges", mkResult(500, 500, 500, false, false), "no stochastic arm converged"},
		{"missing scenario", &RobustnessResult{Ops: 10}, "no adversarial-displacement scenario"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.r.CheckAdversarial()
			if c.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("error %v, want substring %q", err, c.wantErr)
			}
		})
	}
}

func TestCompareBaseline(t *testing.T) {
	base := mkResult(500, 100, 40, true, true)
	if regs := mkResult(500, 100, 40, true, true).CompareBaseline(base); len(regs) != 0 {
		t.Fatalf("identical result flagged: %v", regs)
	}
	// Within tolerance: 25% + 10 ops slack.
	if regs := mkResult(500, 135, 50, true, true).CompareBaseline(base); len(regs) != 0 {
		t.Fatalf("in-tolerance drift flagged: %v", regs)
	}
	// Improvements never fail the gate.
	if regs := mkResult(500, 20, 5, true, true).CompareBaseline(base); len(regs) != 0 {
		t.Fatalf("improvement flagged: %v", regs)
	}
	if regs := mkResult(500, 200, 40, true, true).CompareBaseline(base); len(regs) != 1 ||
		!strings.Contains(regs[0], "regressed 100 → 200") {
		t.Fatalf("slowdown not flagged: %v", regs)
	}
	if regs := mkResult(500, 500, 40, false, true).CompareBaseline(base); len(regs) != 1 ||
		!strings.Contains(regs[0], "no longer converges") {
		t.Fatalf("lost convergence not flagged: %v", regs)
	}
	if regs := (&RobustnessResult{Ops: 500}).CompareBaseline(base); len(regs) != 1 ||
		!strings.Contains(regs[0], "scenario missing") {
		t.Fatalf("missing scenario not flagged: %v", regs)
	}
	if regs := mkResult(500, 100, 40, true, true).CompareBaseline(nil); len(regs) != 1 {
		t.Fatalf("nil baseline not flagged: %v", regs)
	}
	// An arm the baseline never converged on cannot regress.
	neverBase := mkResult(500, 500, 40, false, true)
	if regs := mkResult(500, 500, 45, false, true).CompareBaseline(neverBase); len(regs) != 0 {
		t.Fatalf("never-converged arm flagged: %v", regs)
	}
}

func TestBufferColumn(t *testing.T) {
	cases := map[string]int{
		"t.a": 0, "t.b": 1, "t.c": 2, "t.z": 25,
		"x.a": -1, "t.ab": -1, "t.": -1, "t": -1, "t.A": -1,
	}
	for in, want := range cases {
		if got := bufferColumn(in); got != want {
			t.Errorf("bufferColumn(%q) = %d, want %d", in, got, want)
		}
	}
}
