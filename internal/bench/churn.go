package bench

import (
	"math/rand"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/storage"
	"repro/internal/workload"
)

// The churn experiment exercises the paper's Table I in anger: a stream
// that interleaves uncovered queries with inserts, updates and deletes.
// Inserts land on fresh pages (raising their counters), updates move
// tuples across the covered/uncovered boundary and between pages, and
// deletes shrink postings — all while scans keep skipping. The
// measurement is the per-query cost staying near the index-scan level
// despite the churn, with the buffer's maintenance keeping every skip
// safe (correctness is asserted separately by the engine's randomized
// ground-truth tests).

// ChurnOptions configures the experiment.
type ChurnOptions struct {
	Rows       int     // initial table size; 0 = 20,000
	Operations int     // total operations; 0 = 400
	DMLShare   float64 // fraction of operations that are DML; 0 = 0.5
	Seed       int64
}

func (o ChurnOptions) withDefaults() ChurnOptions {
	if o.Rows <= 0 {
		o.Rows = 20000
	}
	if o.Operations <= 0 {
		o.Operations = 400
	}
	if o.DMLShare <= 0 {
		o.DMLShare = 0.5
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// ChurnResult carries the series.
type ChurnResult struct {
	QueryPages *metrics.Series // per-query pages read
	Skipped    *metrics.Series // per-query pages skipped
	Entries    *metrics.Series // buffer entries after each operation
	TablePages *metrics.Series // heap size over time (inserts grow it)
	Queries    int
	DML        int
}

// Frame renders the series.
func (r *ChurnResult) Frame() *metrics.Frame {
	return metrics.NewFrame("query", r.QueryPages, r.Skipped, r.Entries, r.TablePages)
}

// RunChurn runs the mixed query/DML stream.
func RunChurn(o ChurnOptions) (*ChurnResult, error) {
	o = o.withDefaults()
	spaceCfg := core.Config{
		IMax: (&Options{Rows: o.Rows}).scale(paperIMax),
		P:    (&Options{Rows: o.Rows}).scale(paperP),
	}
	_, tb, err := setup(Options{Rows: o.Rows, Seed: o.Seed}, spaceCfg, 1, false)
	if err != nil {
		return nil, err
	}
	buf := tb.Buffer(0)

	r := &ChurnResult{
		QueryPages: metrics.NewSeries("query_pages"),
		Skipped:    metrics.NewSeries("pages_skipped"),
		Entries:    metrics.NewSeries("buffer_entries"),
		TablePages: metrics.NewSeries("table_pages"),
	}

	var rids []storage.RID
	if err := tb.Scan(func(rid storage.RID, _ storage.Tuple) error {
		rids = append(rids, rid)
		return nil
	}); err != nil {
		return nil, err
	}

	rng := rand.New(rand.NewSource(o.Seed + 5))
	anyKey := workload.Uniform(1, paperDomain)
	uncovered := uncoveredDraw()
	payload := func() storage.Value {
		n := 1 + rng.Intn(512)
		b := make([]byte, n)
		for i := range b {
			b[i] = byte('a' + rng.Intn(26))
		}
		return storage.StringValue(string(b))
	}
	row := func() storage.Tuple {
		return storage.NewTuple(intVal(anyKey(rng)), intVal(anyKey(rng)), intVal(anyKey(rng)), payload())
	}

	for op := 0; op < o.Operations; op++ {
		if rng.Float64() < o.DMLShare && len(rids) > 0 {
			r.DML++
			switch rng.Intn(3) {
			case 0:
				rid, err := tb.Insert(row())
				if err != nil {
					return nil, err
				}
				rids = append(rids, rid)
			case 1:
				i := rng.Intn(len(rids))
				if err := tb.Delete(rids[i]); err != nil {
					return nil, err
				}
				rids[i] = rids[len(rids)-1]
				rids = rids[:len(rids)-1]
			default:
				i := rng.Intn(len(rids))
				nr, err := tb.Update(rids[i], row())
				if err != nil {
					return nil, err
				}
				rids[i] = nr
			}
		} else {
			r.Queries++
			_, stats, err := tb.QueryEqual(0, intVal(uncovered(rng)))
			if err != nil {
				return nil, err
			}
			r.QueryPages.Add(float64(stats.PagesRead))
			r.Skipped.Add(float64(stats.PagesSkipped))
		}
		r.Entries.Add(float64(buf.EntryCount()))
		r.TablePages.Add(float64(tb.NumPages()))
	}
	return r, nil
}
