package bench

import (
	"testing"

	"repro/internal/engine"
)

// TestFig6ConvergenceTimeline runs the paper's experiment-1 workload
// (uncovered uniform draws, unlimited space — the Fig. 5/6 setting) with
// the adaptation timeline enabled and checks the convergence detector
// reports what the figure shows: coverage reaches the 95% target within
// the run, monotonically, with no regression.
func TestFig6ConvergenceTimeline(t *testing.T) {
	var captured *engine.Engine
	SetEngineObserver(func(e *engine.Engine) {
		captured = e
		e.Timeline().Enable(true)
	})
	defer SetEngineObserver(nil)

	o := Options{Rows: 5000, Queries: 60, Seed: 1}
	if _, err := RunFig6(o); err != nil {
		t.Fatal(err)
	}
	if captured == nil {
		t.Fatal("engine observer never fired")
	}

	convs := captured.Convergence()
	if len(convs) != 1 {
		t.Fatalf("convergence verdicts = %d, want 1", len(convs))
	}
	c := convs[0]
	if c.Buffer != "t.a" {
		t.Errorf("buffer = %q, want t.a", c.Buffer)
	}
	if !c.Achieved {
		t.Fatalf("coverage never reached %g: %+v", c.Target, c)
	}
	if c.QueriesToTarget == 0 || c.QueriesToTarget > uint64(o.Queries) {
		t.Errorf("queries-to-target = %d, want within (0, %d]", c.QueriesToTarget, o.Queries)
	}
	if c.Regressed {
		t.Errorf("query-only workload regressed: %+v", c)
	}
	if c.Queries != uint64(o.Queries) {
		t.Errorf("series queries = %d, want %d", c.Queries, o.Queries)
	}

	// With unlimited space the Fig. 6 buffer ends fully built: the
	// coverage curve must be non-decreasing and end at 1.
	ser, ok := captured.Timeline().SeriesFor("t.a")
	if !ok {
		t.Fatal("series t.a missing")
	}
	prev := -1.0
	for i, sm := range ser.Samples {
		if sm.Coverage < prev {
			t.Fatalf("coverage regressed at sample %d: %g -> %g", i, prev, sm.Coverage)
		}
		prev = sm.Coverage
	}
	if prev != 1.0 {
		t.Errorf("final coverage = %g, want 1.0 (unlimited space)", prev)
	}
}
