package bench

import (
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/index"
	"repro/internal/metrics"
	"repro/internal/workload"
)

// The bridge experiment is this reproduction's synthesis of the paper's
// overall argument (its Figures 1 and 6 combined): a workload shift hits
// a partially indexed column; the disk-based partial index eventually
// adapts (modelled as a monitored redefinition with a realistic control
// loop delay), and the Index Buffer covers the gap in between. Three
// systems run the identical query stream:
//
//	baseline   — partial index never adapts, no Index Buffer
//	adapt      — partial index redefines after the monitor trips
//	adapt+buf  — the same adaptation plus the Adaptive Index Buffer
//
// The paper's claim is that adapt+buf turns the long expensive window
// between the shift and the adaptation into a short one, at no loss
// afterwards.

// BridgeOptions configures the experiment.
type BridgeOptions struct {
	Rows    int // table size; 0 = 20,000
	Queries int // total queries; 0 = 150
	ShiftAt int // query index of the workload shift; 0 = Queries/5

	// MonitorWindow and MissThreshold model the tuning facility's
	// control loop: the index redefines once misses within the window
	// reach the threshold. Defaults 50 and 40.
	MonitorWindow int
	MissThreshold int

	Seed int64
}

func (o BridgeOptions) withDefaults() BridgeOptions {
	if o.Rows <= 0 {
		o.Rows = 20000
	}
	if o.Queries <= 0 {
		o.Queries = 150
	}
	if o.ShiftAt <= 0 {
		o.ShiftAt = o.Queries / 5
	}
	if o.MonitorWindow <= 0 {
		o.MonitorWindow = 50
	}
	if o.MissThreshold <= 0 {
		o.MissThreshold = 40
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// BridgeResult carries per-query logical cost for the three systems.
type BridgeResult struct {
	Baseline  *metrics.Series // no adaptation, no buffer
	Adapt     *metrics.Series // adaptation only
	AdaptBuf  *metrics.Series // adaptation + Index Buffer
	AdaptedAt int             // query index at which the redefinition ran (-1 if never)
}

// Frame renders the three cost curves.
func (r *BridgeResult) Frame() *metrics.Frame {
	return metrics.NewFrame("query", r.Baseline, r.Adapt, r.AdaptBuf)
}

// Cumulative returns total pages read by each system.
func (r *BridgeResult) Cumulative() (baseline, adapt, adaptBuf float64) {
	sum := func(s *metrics.Series) float64 {
		t := 0.0
		for _, v := range s.Y {
			t += v
		}
		return t
	}
	return sum(r.Baseline), sum(r.Adapt), sum(r.AdaptBuf)
}

// bridgeSystem is one engine under test.
type bridgeSystem struct {
	tb      *engine.Table
	adapts  bool
	adapted bool
	misses  []bool // ring of recent miss flags
	next    int
	series  *metrics.Series
}

// RunBridge runs the bridge experiment. Before the shift, queries draw
// from the covered range [1, 5000]; after it, from a narrow uncovered
// hot range. Adaptation redefines the partial index to cover the new hot
// range, charging the rebuild's full-scan cost to the query that
// triggered it — the paper's "adaptation adds to the total execution
// costs" (§I).
func RunBridge(o BridgeOptions) (*BridgeResult, error) {
	o = o.withDefaults()

	const hotLo, hotHi = 40000, 45000 // post-shift hot range (uncovered)
	build := func(disableBuffer bool, adapts bool, name string) (*bridgeSystem, error) {
		spaceCfg := core.Config{
			IMax: (&Options{Rows: o.Rows}).scale(paperIMax),
			P:    (&Options{Rows: o.Rows}).scale(paperP),
		}
		_, tb, err := setup(Options{Rows: o.Rows, Queries: o.Queries, Seed: o.Seed}, spaceCfg, 1, disableBuffer)
		if err != nil {
			return nil, err
		}
		return &bridgeSystem{
			tb:     tb,
			adapts: adapts,
			misses: make([]bool, o.MonitorWindow),
			series: metrics.NewSeries(name),
		}, nil
	}

	baseline, err := build(true, false, "baseline")
	if err != nil {
		return nil, err
	}
	adapt, err := build(true, true, "adapt_only")
	if err != nil {
		return nil, err
	}
	adaptBuf, err := build(false, true, "adapt_plus_buffer")
	if err != nil {
		return nil, err
	}
	systems := []*bridgeSystem{baseline, adapt, adaptBuf}

	r := &BridgeResult{
		Baseline: baseline.series,
		Adapt:    adapt.series,
		AdaptBuf: adaptBuf.series,
	}
	r.AdaptedAt = -1

	rng := (Options{Seed: o.Seed}).queryRng()
	covered, hot := coveredDraw(), workload.Uniform(hotLo, hotHi)
	for q := 0; q < o.Queries; q++ {
		var key int64
		if q < o.ShiftAt {
			key = covered(rng)
		} else {
			key = hot(rng)
		}
		for _, sys := range systems {
			_, stats, err := sys.tb.QueryEqual(0, intVal(key))
			if err != nil {
				return nil, err
			}
			cost := float64(stats.PagesRead)

			if sys.adapts && !sys.adapted {
				sys.misses[sys.next] = !stats.PartialHit
				sys.next = (sys.next + 1) % len(sys.misses)
				missCount := 0
				for _, m := range sys.misses {
					if m {
						missCount++
					}
				}
				if missCount >= o.MissThreshold {
					// The control loop trips: redefine the partial index
					// to cover both the old and the new hot range,
					// charging the rebuild scan.
					if err := sys.tb.RedefineIndex(0, index.UnionCoverage{
						index.IntRange(1, coveredHi()),
						index.IntRange(hotLo, hotHi),
					}); err != nil {
						return nil, err
					}
					cost += float64(sys.tb.NumPages())
					sys.adapted = true
					if sys == adapt {
						r.AdaptedAt = q
					}
				}
			}
			sys.series.Add(cost)
		}
	}
	return r, nil
}
