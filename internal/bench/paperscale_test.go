package bench

import (
	"os"
	"testing"
)

// TestPaperScaleFig6 runs experiment 1 at the paper's full 500,000-row
// size. It is skipped in -short mode and unless AIB_PAPER_SCALE is set,
// since it allocates a ~150 MB table; `AIB_PAPER_SCALE=1 go test -run
// PaperScale ./internal/bench` runs it (a few seconds).
func TestPaperScaleFig6(t *testing.T) {
	if testing.Short() || os.Getenv("AIB_PAPER_SCALE") == "" {
		t.Skip("set AIB_PAPER_SCALE=1 to run the full-size experiment")
	}
	r, err := RunFig6(Options{Rows: 500000, Queries: 50, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// The paper's anchors at full scale: I^MAX = 5,000 pages per scan on
	// a ~17k-page table reaches full build-out within ~5 queries
	// (paper: "after 20"), and the final cost is index-scan level.
	if r.TablePages < 15000 {
		t.Errorf("table pages = %d, expected paper-scale ~17k", r.TablePages)
	}
	if got := int(r.Entries.Y[r.Entries.Len()-1]); got != r.TotalUncov {
		t.Errorf("final entries %d, want %d", got, r.TotalUncov)
	}
	if r.TotalUncov < 400000 {
		t.Errorf("uncovered tuples = %d, expected ~450k (90%% of 500k)", r.TotalUncov)
	}
	late := r.PagesRead.MeanRange(25, 50)
	if late > 50 {
		t.Errorf("late cost %.1f pages/query, want index-scan level", late)
	}
}
