package bench

import (
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/workload"
)

// Fig8Result carries the series of the paper's Figure 8 (experiment 3):
// three Index Buffers competing for a bounded Index Buffer Space under a
// shifting query mix.
type Fig8Result struct {
	Entries    [3]*metrics.Series // per-query entry counts of buffers A, B, C
	SpaceUsed  *metrics.Series
	SpaceLimit int
}

// Frame renders the three entry curves.
func (r *Fig8Result) Frame() *metrics.Frame {
	return metrics.NewFrame("query", r.Entries[0], r.Entries[1], r.Entries[2], r.SpaceUsed)
}

// RunFig8 reproduces Figure 8. The Index Buffer Space is limited to
// 800,000 entries (scaled), I^MAX = 5,000 and P = 10,000 pages (scaled).
// The first half of the workload queries columns (A, B, C) with weights
// (1/2, 1/3, 1/6); the second half flips to (1/6, 1/3, 1/2). All queries
// target uncovered values. Expected shape: A dominates the space in the
// first half; after the flip C rapidly grows to over half the space and
// A shrinks toward zero.
func RunFig8(o Options) (*Fig8Result, error) {
	o = o.withDefaults()
	if err := o.validate(); err != nil {
		return nil, err
	}
	spaceCfg := core.Config{
		IMax:       o.scale(paperIMax),
		P:          o.scale(paperP),
		SpaceLimit: o.scale(paperL),
	}
	eng, tb, err := setup(o, spaceCfg, 3, false)
	if err != nil {
		return nil, err
	}

	r := &Fig8Result{
		SpaceUsed:  metrics.NewSeries("space_used"),
		SpaceLimit: spaceCfg.SpaceLimit,
	}
	for c, name := range []string{"entries_a", "entries_b", "entries_c"} {
		r.Entries[c] = metrics.NewSeries(name)
	}

	firstMix := workload.MustMix(0.5, 1.0/3, 1.0/6)
	secondMix := workload.MustMix(1.0/6, 1.0/3, 0.5)
	rng := o.queryRng()
	draw := uncoveredDraw()
	for q := 0; q < o.Queries; q++ {
		mix := firstMix
		if q >= o.Queries/2 {
			mix = secondMix
		}
		col := mix.Pick(rng)
		key := intVal(draw(rng))
		if _, _, err := tb.QueryEqual(col, key); err != nil {
			return nil, err
		}
		for c := 0; c < 3; c++ {
			r.Entries[c].Add(float64(tb.Buffer(c).EntryCount()))
		}
		r.SpaceUsed.Add(float64(eng.Space().Used()))
	}
	return r, nil
}
