package bench

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/workload"
)

// testOpts is a fast configuration that still has enough pages (~380) to
// show skip behaviour.
func testOpts() Options {
	return Options{Rows: 10000, Queries: 100, Seed: 1}
}

func TestRunFig1Shapes(t *testing.T) {
	o := DefaultFig1Options()
	r := RunFig1(o)
	if r.QueriedValue.Len() != o.Queries {
		t.Fatalf("series length %d", r.QueriedValue.Len())
	}
	// Steady state before the shift: hit rate recovers to a high level.
	warm := r.HitRate.MeanRange(150, 200)
	if warm < 0.5 {
		t.Errorf("pre-shift hit rate %.2f, want > 0.5", warm)
	}
	// Control loop delay: right after the shift the hit rate collapses.
	during := r.HitRate.MeanRange(300, 340)
	if during > warm/2 {
		t.Errorf("post-shift hit rate %.2f did not collapse from %.2f", during, warm)
	}
	// Recovery at the end.
	late := r.HitRate.MeanRange(450, 500)
	if late < 0.5 {
		t.Errorf("late hit rate %.2f, want > 0.5", late)
	}
	// Indexed range lags the queried range: early it tracks the low
	// values, at the end the high values.
	if hi := r.IndexedHi.MeanRange(150, 200); hi > 15 {
		t.Errorf("pre-shift indexed hi %.1f, want <= 15", hi)
	}
	// A stale low value may survive in the LRU tail, so check that the
	// bulk of the index moved: the upper edge reached the new range and
	// the lower edge rose substantially from the old range's floor.
	if hi := r.IndexedHi.MeanRange(480, 500); hi < 25 {
		t.Errorf("late indexed hi %.1f, want >= 25", hi)
	}
	if lo := r.IndexedLo.MeanRange(480, 500); lo < 10 {
		t.Errorf("late indexed lo %.1f, want >= 10 (index should have followed)", lo)
	}
}

func TestRunFig3Shapes(t *testing.T) {
	o := Fig3Options{Tuples: 20000, Steps: 150, SwapsPerStep: 60, Seed: 1}
	r, err := RunFig3(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Curves) != 6 {
		t.Fatalf("curves = %d", len(r.Curves))
	}
	for _, c := range r.Curves {
		first := c.Points[0]
		if first.Correlation < 0.999 {
			t.Errorf("%v: initial correlation %v", c.Scenario, first.Correlation)
		}
		// Clustered share equals coverage (paper's Figure 3 anchor).
		if diff := first.FullyIndexedShare - c.Scenario.Coverage; diff > 0.02 || diff < -0.02 {
			t.Errorf("%v: clustered share %v, want ~%v", c.Scenario, first.FullyIndexedShare, c.Scenario.Coverage)
		}
	}
	// Headline claim: >= 10 tuples/page at correlation 0.8 -> < 5%.
	for _, c := range r.Curves {
		if c.Scenario.TuplesPerPage < 10 {
			continue
		}
		share := shareAtCorrelation(c, 0.8)
		if share >= 0.05 {
			t.Errorf("%v: share %.3f at correlation 0.8, want < 0.05", c.Scenario, share)
		}
	}
	// Frame renders one row per grid step.
	var buf bytes.Buffer
	if err := r.Frame().WriteTSV(&buf); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != 22 { // header + 21 grid points
		t.Errorf("frame rows = %d", lines)
	}
}

func shareAtCorrelation(c Fig3Curve, corr float64) float64 {
	best := c.Points[0]
	for _, p := range c.Points {
		if abs(p.Correlation-corr) < abs(best.Correlation-corr) {
			best = p
		}
	}
	return best.FullyIndexedShare
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

func TestRunFig6Shapes(t *testing.T) {
	r, err := RunFig6(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if r.PagesRead.Len() != 100 {
		t.Fatalf("series length %d", r.PagesRead.Len())
	}
	// First query pays roughly a full scan.
	if first := r.PagesRead.Y[0]; first < float64(r.TablePages) {
		t.Errorf("first query read %.0f of %d pages", first, r.TablePages)
	}
	// Unlimited space: the buffer reaches full build-out...
	if got := int(r.Entries.Y[r.Entries.Len()-1]); got != r.TotalUncov {
		t.Errorf("final entries %d, want full build-out %d", got, r.TotalUncov)
	}
	// ...quickly (paper: "all pages were completely indexed after 20
	// queries" — our scaled I^MAX reaches it in comparable query counts).
	byQuery := -1
	for i, v := range r.Entries.Y {
		if int(v) == r.TotalUncov {
			byQuery = i
			break
		}
	}
	if byQuery < 0 || byQuery > 25 {
		t.Errorf("full build-out at query %d, want within 25", byQuery)
	}
	// Late queries skip everything and cost index-scan level.
	if skipped := r.Skipped.MeanRange(50, 100); skipped < float64(r.TablePages) {
		t.Errorf("late skipped %.1f of %d pages", skipped, r.TablePages)
	}
	lateCost := r.PagesRead.MeanRange(50, 100)
	lateIndexRef := r.IndexRef.MeanRange(50, 100)
	if lateCost > lateIndexRef+1 {
		t.Errorf("late cost %.2f pages vs index ref %.2f", lateCost, lateIndexRef)
	}
	if lateCost > float64(r.TablePages)/20 {
		t.Errorf("late cost %.2f did not collapse vs %d-page scans", lateCost, r.TablePages)
	}
}

func TestRunFig7Shapes(t *testing.T) {
	o := testOpts()
	configs := []Fig7Config{
		{IMax: 1000, L: 0},
		{IMax: 5000, L: 0},
		{IMax: 5000, L: 100000},
	}
	r, err := RunFig7(o, configs)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Curves) != 3 {
		t.Fatalf("curves = %d", len(r.Curves))
	}
	slow, fast, capped := r.Curves[0], r.Curves[1], r.Curves[2]

	// Aggressiveness: after a few queries the high-I^MAX curve is
	// cheaper.
	if s, f := slow.PagesRead.MeanRange(2, 10), fast.PagesRead.MeanRange(2, 10); f >= s {
		t.Errorf("early cost: imax=5000 %.1f >= imax=1000 %.1f", f, s)
	}
	// Ceiling: the capped configuration ends with fewer entries and a
	// higher late cost than unlimited.
	lastEntries := func(c Fig7Curve) float64 { return c.Entries.Y[c.Entries.Len()-1] }
	if lastEntries(capped) >= lastEntries(fast) {
		t.Errorf("capped entries %.0f >= unlimited %.0f", lastEntries(capped), lastEntries(fast))
	}
	cappedLimit := (&Options{Rows: o.Rows}).scale(100000)
	if int(lastEntries(capped)) > cappedLimit {
		t.Errorf("capped entries %.0f exceed limit %d", lastEntries(capped), cappedLimit)
	}
	if c, u := capped.PagesRead.MeanRange(50, 100), fast.PagesRead.MeanRange(50, 100); c <= u {
		t.Errorf("late cost: capped %.1f <= unlimited %.1f (limit should leave a floor)", c, u)
	}
}

func TestRunFig8Shapes(t *testing.T) {
	o := testOpts()
	o.Queries = 200
	r, err := RunFig8(o)
	if err != nil {
		t.Fatal(err)
	}
	// Space bound respected throughout.
	if r.SpaceUsed.Max() > float64(r.SpaceLimit) {
		t.Errorf("space used %.0f exceeds limit %d", r.SpaceUsed.Max(), r.SpaceLimit)
	}
	// First period: A (half the queries) out-occupies C (a sixth).
	aFirst := r.Entries[0].MeanRange(60, 100)
	cFirst := r.Entries[2].MeanRange(60, 100)
	if aFirst <= cFirst {
		t.Errorf("first period: A %.0f <= C %.0f", aFirst, cFirst)
	}
	// Second period: the situation flips.
	aSecond := r.Entries[0].MeanRange(170, 200)
	cSecond := r.Entries[2].MeanRange(170, 200)
	if cSecond <= aSecond {
		t.Errorf("second period: C %.0f <= A %.0f", cSecond, aSecond)
	}
	// A shrinks substantially from its first-period occupancy.
	if aSecond > aFirst/2 {
		t.Errorf("A did not shrink: %.0f -> %.0f", aFirst, aSecond)
	}
	// C grows substantially.
	if cSecond < 2*cFirst {
		t.Errorf("C did not grow: %.0f -> %.0f", cFirst, cSecond)
	}
}

func TestRunFig9Shapes(t *testing.T) {
	o := testOpts()
	o.Queries = 200
	r, err := RunFig9(o)
	if err != nil {
		t.Fatal(err)
	}
	if r.SpaceUsed.Max() > float64(r.SpaceLimit) {
		t.Errorf("space used %.0f exceeds limit %d", r.SpaceUsed.Max(), r.SpaceLimit)
	}
	// First period: high hit rate on A starves its buffer relative to B,
	// even though A receives 3x B's queries... the misses still trickle
	// in, so compare occupancy per miss: A gets ~10% misses of 50% share
	// = 5% of queries; B gets 33%. B should out-occupy A.
	aFirst := r.Entries[0].MeanRange(60, 100)
	bFirst := r.Entries[1].MeanRange(60, 100)
	if aFirst >= bFirst {
		t.Errorf("first period: A %.0f >= B %.0f despite 80%% hit rate on A", aFirst, bFirst)
	}
	// Second period: A's hit rate drops to 20%; its buffer grows quickly.
	aSecond := r.Entries[0].MeanRange(170, 200)
	if aSecond <= 2*aFirst {
		t.Errorf("A did not grow after hit-rate drop: %.0f -> %.0f", aFirst, aSecond)
	}
	// B shrinks (or at least stops dominating A).
	bSecond := r.Entries[1].MeanRange(170, 200)
	if aSecond <= bSecond {
		t.Errorf("second period: A %.0f <= B %.0f", aSecond, bSecond)
	}
	// Observed hit rate on A actually moved from ~0.8 toward ~0.5
	// cumulative (0.8 then 0.2 averages to ~0.5).
	finalRate := r.HitsA.Y[r.HitsA.Len()-1]
	if finalRate < 0.35 || finalRate > 0.65 {
		t.Errorf("cumulative hit rate on A = %.2f, want ~0.5", finalRate)
	}
}

func TestOptionsValidate(t *testing.T) {
	if _, err := RunFig6(Options{Rows: 10}); err == nil {
		t.Error("tiny row count should fail validation")
	}
}

func TestRunBridgeShapes(t *testing.T) {
	o := BridgeOptions{Rows: 8000, Queries: 120, ShiftAt: 20, MonitorWindow: 40, MissThreshold: 32, Seed: 1}
	r, err := RunBridge(o)
	if err != nil {
		t.Fatal(err)
	}
	if r.Baseline.Len() != o.Queries {
		t.Fatalf("series length %d", r.Baseline.Len())
	}
	// Adaptation must actually have happened, after the shift plus the
	// monitor delay.
	if r.AdaptedAt < o.ShiftAt+o.MissThreshold-5 {
		t.Errorf("adapted at query %d, expected >= ~%d", r.AdaptedAt, o.ShiftAt+o.MissThreshold)
	}
	base, adapt, adaptBuf := r.Cumulative()
	// The paper's ordering: buffer+adaptation beats adaptation-only
	// beats never-adapting, by a wide margin.
	if !(adaptBuf < adapt && adapt < base) {
		t.Errorf("cumulative cost ordering wrong: buf=%.0f adapt=%.0f base=%.0f", adaptBuf, adapt, base)
	}
	if adaptBuf > base/2 {
		t.Errorf("buffer saved too little: %.0f vs baseline %.0f", adaptBuf, base)
	}
	// During the gap (post-shift, pre-adaptation) the buffered system is
	// already cheap while adapt-only still pays scans.
	gapFrom, gapTo := o.ShiftAt+5, r.AdaptedAt-5
	if gapTo > gapFrom {
		bufGap := r.AdaptBuf.MeanRange(gapFrom, gapTo)
		adaptGap := r.Adapt.MeanRange(gapFrom, gapTo)
		if bufGap >= adaptGap/2 {
			t.Errorf("gap: buffered %.1f vs adapt-only %.1f pages/query; no bridge effect", bufGap, adaptGap)
		}
	}
	// After adaptation both adapt systems are cheap (hits).
	lateAdapt := r.Adapt.MeanRange(r.AdaptedAt+10, o.Queries)
	if lateAdapt > 50 {
		t.Errorf("adapt-only still expensive after adaptation: %.1f pages/query", lateAdapt)
	}
}

func TestRunCorrelationShapes(t *testing.T) {
	o := CorrelationOptions{Rows: 8000, Correlations: []float64{1.0, 0.8, 0.0}, Seed: 1}
	r, err := RunCorrelation(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 3 {
		t.Fatalf("points = %d", len(r.Points))
	}
	clustered, mid, shuffled := r.Points[0], r.Points[1], r.Points[2]

	// Measured correlations near targets.
	if clustered.Measured < 0.999 {
		t.Errorf("clustered measured %.3f", clustered.Measured)
	}
	if abs(mid.Measured-0.8) > 0.05 {
		t.Errorf("mid measured %.3f, want ~0.8", mid.Measured)
	}
	if shuffled.Measured > 0.1 {
		t.Errorf("shuffled measured %.3f", shuffled.Measured)
	}

	// Fig. 3 inside the engine: clustered tables skip ~coverage share of
	// pages naturally; decorrelated tables skip almost nothing.
	if clustered.NaturalSkipShare < 0.07 {
		t.Errorf("clustered natural skips %.3f, want ~coverage 0.1", clustered.NaturalSkipShare)
	}
	if mid.NaturalSkipShare >= 0.05 {
		t.Errorf("corr 0.8 natural skips %.3f, want < 0.05 (paper's claim)", mid.NaturalSkipShare)
	}
	if shuffled.NaturalSkipShare > 0.01 {
		t.Errorf("shuffled natural skips %.3f", shuffled.NaturalSkipShare)
	}

	// The buffer restores full skip coverage regardless of layout...
	for _, p := range r.Points {
		if p.SteadyMissPages > float64(p.TablePages)/20 {
			t.Errorf("corr %.1f: steady cost %.1f of %d pages", p.TargetCorrelation, p.SteadyMissPages, p.TablePages)
		}
		// ...at a memory cost that grows as clustering decays.
		if p.BufferEntries <= 0 {
			t.Errorf("corr %.1f: no buffer entries", p.TargetCorrelation)
		}
	}
	if clustered.BufferedPages >= shuffled.BufferedPages {
		t.Errorf("clustered needed %d buffered pages vs shuffled %d; decay should cost more",
			clustered.BufferedPages, shuffled.BufferedPages)
	}
	// Frame renders one row per level.
	if got := r.Frame().Series[0].Len(); got != 3 {
		t.Errorf("frame rows = %d", got)
	}
}

func TestRunChurnShapes(t *testing.T) {
	o := ChurnOptions{Rows: 8000, Operations: 300, DMLShare: 0.5, Seed: 1}
	r, err := RunChurn(o)
	if err != nil {
		t.Fatal(err)
	}
	if r.Queries+r.DML != o.Operations {
		t.Fatalf("queries %d + dml %d != %d", r.Queries, r.DML, o.Operations)
	}
	if r.DML < 100 || r.Queries < 100 {
		t.Fatalf("unbalanced mix: %d queries, %d dml", r.Queries, r.DML)
	}
	// The table grows (inserts outpace nothing — deletes free slots but
	// pages never shrink without vacuum).
	if r.TablePages.Y[r.TablePages.Len()-1] < r.TablePages.Y[0] {
		t.Error("table shrank without vacuum")
	}
	// After warm-up, query cost stays near index-scan level despite DML:
	// the buffer absorbs inserts on buffered pages and counters track the
	// rest.
	n := r.QueryPages.Len()
	late := r.QueryPages.MeanRange(n/2, n)
	first := r.QueryPages.Y[0]
	if late > first/10 {
		t.Errorf("late query cost %.1f vs first %.0f; churn broke the buffer's benefit", late, first)
	}
	// Entries keep tracking the maintained state (never negative or
	// wildly divergent from the final count).
	if r.Entries.Min() < 0 {
		t.Error("negative entries")
	}
}

// TestBufferSkewInsensitive pins down a property the paper leaves
// implicit: because the Index Buffer indexes *pages* (physical units),
// its benefit is independent of the key distribution of the miss stream
// — a zipf-skewed workload converges to the same cheap steady state as a
// uniform one. (A value-granular mechanism like the Fig. 1 tuner is, by
// contrast, highly skew-sensitive.)
func TestBufferSkewInsensitive(t *testing.T) {
	run := func(skewed bool) float64 {
		o := Options{Rows: 8000, Queries: 60, Seed: 1}
		spaceCfg := core.Config{IMax: o.scale(paperIMax), P: o.scale(paperP)}
		_, tb, err := setup(o, spaceCfg, 1, false)
		if err != nil {
			t.Fatal(err)
		}
		rng := o.queryRng()
		uniform := uncoveredDraw()
		zipf := workload.Zipf(1.4, paperDomain-coveredHi(), 7)
		pages := metrics.NewSeries("pages")
		for q := 0; q < o.Queries; q++ {
			var key int64
			if skewed {
				key = coveredHi() + zipf(rng) // skewed over the uncovered range
			} else {
				key = uniform(rng)
			}
			_, stats, err := tb.QueryEqual(0, intVal(key))
			if err != nil {
				t.Fatal(err)
			}
			pages.Add(float64(stats.PagesRead))
		}
		return pages.MeanRange(30, 60)
	}
	uniformLate := run(false)
	zipfLate := run(true)
	// Both steady states are index-scan level; neither is more than a few
	// pages from the other.
	if uniformLate > 10 || zipfLate > 10 {
		t.Errorf("late costs: uniform %.1f, zipf %.1f — buffer did not converge", uniformLate, zipfLate)
	}
	diff := uniformLate - zipfLate
	if diff < 0 {
		diff = -diff
	}
	if diff > 5 {
		t.Errorf("skew sensitivity: uniform %.1f vs zipf %.1f pages/query", uniformLate, zipfLate)
	}
}
