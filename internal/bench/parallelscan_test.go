package bench

import (
	"testing"
	"time"
)

// runPS is a shorthand for one RunParallelScan pass at the given
// parallelism, small enough to run in the ordinary test suite.
func runPS(t *testing.T, parallelism, goroutines int, latency time.Duration) *ParallelScanResult {
	t.Helper()
	r, err := RunParallelScan(ParallelScanOptions{
		Options: Options{
			Rows:            1000,
			Queries:         4,
			Seed:            7,
			PoolPages:       32,
			ReadLatency:     latency,
			ScanParallelism: parallelism,
		},
		Goroutines: goroutines,
	})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestParallelScanCounters checks the runner's attribution: serial runs
// never report a fanned-out scan, parallel runs report at least one with
// more than one worker per scan on average.
func TestParallelScanCounters(t *testing.T) {
	if s := runPS(t, 1, 1, 0); s.ParallelScans != 0 {
		t.Errorf("serial run reported %d parallel scans", s.ParallelScans)
	}
	p := runPS(t, 4, 1, 0)
	if p.ParallelScans == 0 {
		t.Fatal("parallel run reported no fanned-out scans")
	}
	if p.Workers <= p.ParallelScans {
		t.Errorf("workers %d not above scans %d: mean fan-out <= 1", p.Workers, p.ParallelScans)
	}
}

// TestParallelScanSpeedup pins the point of the whole exercise: with
// device-bound scans (simulated read latency), the parallel path beats
// the serial one on wall-clock time. The latency sleeps overlap across
// workers even on a single-core runner, so this holds regardless of
// GOMAXPROCS; the 3/4 bound is loose enough to absorb scheduler noise
// (the expected ratio at 8 workers is well under 1/2).
func TestParallelScanSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock speedup test")
	}
	const latency = 2 * time.Millisecond
	serial := runPS(t, 1, 1, latency)
	parallel := runPS(t, 8, 1, latency)
	if parallel.Wall >= serial.Wall*3/4 {
		t.Errorf("parallel wall %v not under 3/4 of serial wall %v", parallel.Wall, serial.Wall)
	}
}
