package bench

import "testing"

// TestEpochSpeedup runs the contended-read benchmark at a reduced size
// and holds it to the acceptance criterion: the epoch read path ≥ 2×
// the RWMutex baseline with a synchronous writer active.
func TestEpochSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive benchmark")
	}
	r, err := RunEpoch(Options{Queries: 150})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Check(); err != nil {
		t.Fatalf("%v (result: %+v)", err, r)
	}
	t.Logf("speedup %.2fx (epoch %.0f reads/sec vs rwmutex %.0f reads/sec, %d/%d writer commits)",
		r.ReadSpeedup, r.arm("epoch").ReadsPerSec, r.arm("rwmutex").ReadsPerSec,
		r.arm("epoch").Writes, r.arm("rwmutex").Writes)
}

// TestEpochCompareBaseline covers the gate's regression arms.
func TestEpochCompareBaseline(t *testing.T) {
	base := &EpochResult{
		ReadSpeedup: 10,
		Arms: []EpochArmResult{
			{Arm: "rwmutex"},
			{Arm: "epoch", Reads: 100, FastHits: 100},
		},
	}
	good := &EpochResult{
		ReadSpeedup: 8,
		Arms: []EpochArmResult{
			{Arm: "rwmutex"},
			{Arm: "epoch", Reads: 100, FastHits: 98},
		},
	}
	if msgs := good.CompareBaseline(base); len(msgs) != 0 {
		t.Fatalf("good run flagged: %v", msgs)
	}
	slow := &EpochResult{
		ReadSpeedup: 3, // above the criterion, but under half the baseline
		Arms: []EpochArmResult{
			{Arm: "rwmutex"},
			{Arm: "epoch", Reads: 100, FastHits: 95},
		},
	}
	if msgs := slow.CompareBaseline(base); len(msgs) == 0 {
		t.Fatal("regressed run passed the gate")
	}
	locked := &EpochResult{
		ReadSpeedup: 9,
		Arms: []EpochArmResult{
			{Arm: "rwmutex"},
			{Arm: "epoch", Reads: 100, FastHits: 50},
		},
	}
	if msgs := locked.CompareBaseline(base); len(msgs) == 0 {
		t.Fatal("a run whose reads were not lock-free passed the gate")
	}
	if msgs := good.CompareBaseline(nil); len(msgs) == 0 {
		t.Fatal("missing baseline passed the gate")
	}
}
