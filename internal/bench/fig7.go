package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/metrics"
)

// Fig7Config is one curve of the paper's Figure 7 sweep: a choice of
// I^MAX and space bound L (both at paper scale; runners rescale to the
// configured row count). L == 0 means unlimited.
type Fig7Config struct {
	IMax int
	L    int
}

// Label renders the configuration for legends.
func (c Fig7Config) Label() string {
	if c.L == 0 {
		return fmt.Sprintf("imax=%d,L=inf", c.IMax)
	}
	return fmt.Sprintf("imax=%d,L=%d", c.IMax, c.L)
}

// DefaultFig7Configs returns the sweep of the paper's experiment 2: the
// I^MAX dimension (aggressiveness) at unlimited space, and the L
// dimension (ceiling) at the paper's I^MAX.
func DefaultFig7Configs() []Fig7Config {
	return []Fig7Config{
		{IMax: 500, L: 0},
		{IMax: 1000, L: 0},
		{IMax: 5000, L: 0},
		{IMax: 5000, L: 100000},
		{IMax: 5000, L: 300000},
	}
}

// Fig7Curve is one configuration's per-query cost series.
type Fig7Curve struct {
	Config    Fig7Config
	PagesRead *metrics.Series
	Entries   *metrics.Series
}

// Fig7Result carries all sweep curves.
type Fig7Result struct {
	Curves     []Fig7Curve
	TablePages int
}

// Frame renders the cost curves.
func (r *Fig7Result) Frame() *metrics.Frame {
	series := make([]*metrics.Series, len(r.Curves))
	for i, c := range r.Curves {
		series[i] = c.PagesRead
	}
	return metrics.NewFrame("query", series...)
}

// RunFig7 reproduces Figure 7 (experiment 2): the influence of I^MAX and
// the Index Buffer Space bound L on a single buffer. Each configuration
// replays the identical query stream on a fresh engine. Expected shape:
// higher I^MAX drops the cost curve faster within the first ~15 queries;
// smaller L leaves a higher cost floor.
func RunFig7(o Options, configs []Fig7Config) (*Fig7Result, error) {
	o = o.withDefaults()
	if err := o.validate(); err != nil {
		return nil, err
	}
	if configs == nil {
		configs = DefaultFig7Configs()
	}
	r := &Fig7Result{}
	for _, cfg := range configs {
		spaceCfg := core.Config{
			IMax:       o.scale(cfg.IMax),
			P:          o.scale(paperP),
			SpaceLimit: o.scale(cfg.L),
		}
		if cfg.L == 0 {
			spaceCfg.SpaceLimit = 0 // unlimited stays unlimited
		}
		_, tb, err := setup(o, spaceCfg, 1, false)
		if err != nil {
			return nil, err
		}
		r.TablePages = tb.NumPages()
		curve := Fig7Curve{
			Config:    cfg,
			PagesRead: metrics.NewSeries(cfg.Label()),
			Entries:   metrics.NewSeries("entries:" + cfg.Label()),
		}
		rng := o.queryRng() // same stream for every configuration
		draw := uncoveredDraw()
		buf := tb.Buffer(0)
		for q := 0; q < o.Queries; q++ {
			key := intVal(draw(rng))
			_, stats, err := tb.QueryEqual(0, key)
			if err != nil {
				return nil, err
			}
			curve.PagesRead.Add(float64(stats.PagesRead))
			curve.Entries.Add(float64(buf.EntryCount()))
		}
		r.Curves = append(r.Curves, curve)
	}
	return r, nil
}
