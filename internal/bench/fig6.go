package bench

import (
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/metrics"
	"repro/internal/storage"
)

// intVal wraps an int64 as a storage value.
func intVal(v int64) storage.Value { return storage.Int64Value(v) }

// Fig6Result carries the series of the paper's Figure 6 (experiment 1):
// a single Index Buffer with unlimited space, queried only on uncovered
// values of column A.
type Fig6Result struct {
	PagesRead  *metrics.Series // per-query logical page reads ("runtime")
	ScanRef    *metrics.Series // reference: full scan cost (pages in table)
	IndexRef   *metrics.Series // reference: pure index scan cost (match pages only)
	Entries    *metrics.Series // Index Buffer entries after the query
	Skipped    *metrics.Series // pages skipped by the query
	WallMicros *metrics.Series // measured wall-clock per query, microseconds
	TablePages int
	TotalUncov int // total uncovered tuples == entries at full build-out
}

// Frame renders the main cost curves.
func (r *Fig6Result) Frame() *metrics.Frame {
	return metrics.NewFrame("query", r.PagesRead, r.ScanRef, r.IndexRef, r.Skipped)
}

// WallSummary reports the wall-clock latency distribution across the
// run's queries.
func (r *Fig6Result) WallSummary() string {
	h := metrics.NewHistogram()
	for _, v := range r.WallMicros.Y {
		h.Observe(v)
	}
	return h.Summary("us")
}

// RunFig6 reproduces Figure 6. Space is unlimited, I^MAX = 5,000 pages
// (scaled), P = 10,000 pages (scaled). Expected shape: the first queries
// cost a little above a plain scan (they build the buffer), cost then
// collapses; with unlimited space the table is fully indexed after a few
// queries and the per-query cost reaches the index-scan level.
func RunFig6(o Options) (*Fig6Result, error) {
	o = o.withDefaults()
	if err := o.validate(); err != nil {
		return nil, err
	}
	spaceCfg := core.Config{
		IMax: o.scale(paperIMax),
		P:    o.scale(paperP),
	}
	_, tb, err := setup(o, spaceCfg, 1, false)
	if err != nil {
		return nil, err
	}

	r := &Fig6Result{
		PagesRead:  metrics.NewSeries("pages_read"),
		ScanRef:    metrics.NewSeries("full_scan_ref"),
		IndexRef:   metrics.NewSeries("index_scan_ref"),
		Entries:    metrics.NewSeries("buffer_entries"),
		Skipped:    metrics.NewSeries("pages_skipped"),
		WallMicros: metrics.NewSeries("wall_us"),
		TablePages: tb.NumPages(),
	}

	// Total uncovered tuples: the ceiling the buffer grows to.
	buf := tb.Buffer(0)
	for p := 0; p < tb.NumPages(); p++ {
		r.TotalUncov += buf.Uncovered(storage.PageID(p))
	}

	rng := o.queryRng()
	draw := uncoveredDraw()
	for q := 0; q < o.Queries; q++ {
		key := intVal(draw(rng))
		matches, stats, err := tb.QueryEqual(0, key)
		if err != nil {
			return nil, err
		}
		r.PagesRead.Add(float64(stats.PagesRead))
		r.ScanRef.Add(float64(tb.NumPages()))
		r.IndexRef.Add(float64(distinctPages(matches)))
		r.Entries.Add(float64(buf.EntryCount()))
		r.Skipped.Add(float64(stats.PagesSkipped))
		r.WallMicros.Add(float64(stats.Duration.Microseconds()))
	}
	return r, nil
}

// distinctPages counts the pages a pure index scan would fetch for the
// matches.
func distinctPages(matches []exec.Match) int {
	seen := map[storage.PageID]bool{}
	for _, m := range matches {
		seen[m.RID.Page] = true
	}
	return len(seen)
}
