package bench

import "testing"

// TestDurabilitySpeedup runs the benchmark at a reduced size and holds
// it to the acceptance criterion: group commit ≥ 2× fsync-per-commit.
func TestDurabilitySpeedup(t *testing.T) {
	r, err := RunDurability(Options{Queries: 40})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Check(); err != nil {
		t.Fatalf("%v (result: %+v)", err, r)
	}
	t.Logf("speedup %.2fx, batch factor %.2f", r.BatchSpeedup, r.arm("group-commit").BatchFactor)
}

// TestDurabilityCompareBaseline covers the gate's regression arms.
func TestDurabilityCompareBaseline(t *testing.T) {
	base := &DurabilityResult{
		BatchSpeedup: 3.0,
		Arms: []DurabilityArmResult{
			{Arm: "fsync-per-commit", BatchFactor: 1.0},
			{Arm: "group-commit", BatchFactor: 3.5},
		},
	}
	good := &DurabilityResult{
		BatchSpeedup: 2.8,
		Arms: []DurabilityArmResult{
			{Arm: "fsync-per-commit", BatchFactor: 1.0},
			{Arm: "group-commit", BatchFactor: 3.0},
		},
	}
	if msgs := good.CompareBaseline(base); len(msgs) != 0 {
		t.Fatalf("good run flagged: %v", msgs)
	}
	bad := &DurabilityResult{
		BatchSpeedup: 1.2,
		Arms: []DurabilityArmResult{
			{Arm: "fsync-per-commit", BatchFactor: 1.0},
			{Arm: "group-commit", BatchFactor: 1.1},
		},
	}
	if msgs := bad.CompareBaseline(base); len(msgs) == 0 {
		t.Fatal("regressed run passed the gate")
	}
	if msgs := good.CompareBaseline(nil); len(msgs) == 0 {
		t.Fatal("missing baseline passed the gate")
	}
}
