// Group-commit durability benchmark: measures what the WAL's batched
// fsync protocol buys over fsync-per-commit under concurrent writers.
// Both arms run the same insert workload — W workers, each committing
// to its own table so commits genuinely overlap (same-table DML
// serializes on the table lock and could not batch) — with every log
// fsync charged a simulated device latency, the repo's SimDisk
// convention, so the ratio is stable on fast filesystems. RunDurability
// emits a baseline-comparable result (BENCH_durability.json in CI); the
// acceptance criterion is the group-commit arm at ≥ 2× the throughput
// of fsync-per-commit.
package bench

import (
	"fmt"
	"os"
	"strings"
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/storage"
	"repro/internal/wal"
)

// durabilitySyncDelay is the simulated fsync latency. Real devices sit
// between ~50µs (NVMe) and ~10ms (spinning rust); 200µs keeps the run
// short while dwarfing tmpfs fsync noise.
const durabilitySyncDelay = 200 * time.Microsecond

// durabilityWorkers is the writer concurrency of both arms. Group
// commit's steady state alternates a 1-record fsync (the first signal
// fires immediately) with one covering everyone who arrived during it,
// so the batch factor approaches W/2 — 8 writers give the gate
// comfortable headroom over the 2x criterion.
const durabilityWorkers = 8

// DurabilityArmResult is one sync-policy arm's measurement.
type DurabilityArmResult struct {
	Arm           string  `json:"arm"`
	Policy        string  `json:"policy"`
	ElapsedMicros int64   `json:"elapsed_micros"`
	OpsPerSec     float64 `json:"ops_per_sec"`
	// Commits and Syncs are the log writer's counters for the workload;
	// BatchFactor = Commits/Syncs is how many commits the average fsync
	// amortized (1.0 for fsync-per-commit by construction).
	Commits     uint64  `json:"commits"`
	Syncs       uint64  `json:"syncs"`
	BatchFactor float64 `json:"batch_factor"`
}

// DurabilityResult is the benchmark's output, shaped for
// BENCH_durability.json. ElapsedMicros and OpsPerSec are wall-clock and
// vary run to run; BatchSpeedup and BatchFactor are the gated,
// comparison-stable quantities.
type DurabilityResult struct {
	Workers         int                   `json:"workers"`
	OpsPerWorker    int                   `json:"ops_per_worker"`
	SyncDelayMicros int64                 `json:"sync_delay_micros"`
	Arms            []DurabilityArmResult `json:"arms"`
	// BatchSpeedup is group-commit throughput over fsync-per-commit
	// throughput — the headline number.
	BatchSpeedup float64 `json:"batch_speedup"`
}

// withDurabilityDefaults sizes the benchmark: Queries is the per-worker
// commit count.
func (o Options) withDurabilityDefaults() Options {
	if o.Queries <= 0 {
		o.Queries = 60
	}
	if o.PoolPages <= 0 {
		o.PoolPages = 64
	}
	return o
}

// RunDurability measures both sync-policy arms and returns the speedup.
func RunDurability(o Options) (*DurabilityResult, error) {
	o = o.withDurabilityDefaults()
	r := &DurabilityResult{
		Workers:         durabilityWorkers,
		OpsPerWorker:    o.Queries,
		SyncDelayMicros: durabilitySyncDelay.Microseconds(),
	}
	always, err := runDurabilityArm(o, "fsync-per-commit", wal.SyncAlways)
	if err != nil {
		return nil, err
	}
	batch, err := runDurabilityArm(o, "group-commit", wal.SyncBatch)
	if err != nil {
		return nil, err
	}
	r.Arms = []DurabilityArmResult{always, batch}
	if batch.ElapsedMicros > 0 {
		r.BatchSpeedup = float64(always.ElapsedMicros) / float64(batch.ElapsedMicros)
	}
	return r, nil
}

// runDurabilityArm times the insert workload under one sync policy on a
// throwaway DataDir.
func runDurabilityArm(o Options, name string, policy wal.SyncPolicy) (DurabilityArmResult, error) {
	res := DurabilityArmResult{Arm: name, Policy: policy.String()}
	dir, err := os.MkdirTemp("", "aib-durability-*")
	if err != nil {
		return res, err
	}
	defer os.RemoveAll(dir)

	eng := engine.New(engine.Config{
		DataDir:   dir,
		PoolPages: o.PoolPages,
		WAL: engine.WALConfig{
			SyncPolicy: policy,
			SyncDelay:  durabilitySyncDelay,
		},
	})
	defer eng.Close()

	schema := storage.MustSchema(
		storage.Column{Name: "k", Kind: storage.KindInt64},
		storage.Column{Name: "payload", Kind: storage.KindString},
	)
	tables := make([]*engine.Table, durabilityWorkers)
	for w := range tables {
		tb, err := eng.CreateTable(fmt.Sprintf("w%d", w), schema)
		if err != nil {
			return res, err
		}
		tables[w] = tb
	}

	before := eng.WALStats()
	payload := storage.StringValue(strings.Repeat("d", 64))
	errs := make([]error, durabilityWorkers)
	var wg sync.WaitGroup
	start := time.Now()
	for w, tb := range tables {
		wg.Add(1)
		go func(w int, tb *engine.Table) {
			defer wg.Done()
			for i := 0; i < o.Queries; i++ {
				tu := storage.NewTuple(storage.Int64Value(int64(w*o.Queries+i)), payload)
				if _, err := tb.Insert(tu); err != nil {
					errs[w] = err
					return
				}
			}
		}(w, tb)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return res, err
		}
	}

	after := eng.WALStats()
	res.ElapsedMicros = elapsed.Microseconds()
	res.Commits = after.Commits - before.Commits
	res.Syncs = after.Syncs - before.Syncs
	if res.Syncs > 0 {
		res.BatchFactor = float64(res.Commits) / float64(res.Syncs)
	}
	if elapsed > 0 {
		res.OpsPerSec = float64(durabilityWorkers*o.Queries) / elapsed.Seconds()
	}
	return res, nil
}

// arm finds one arm's result by name.
func (r *DurabilityResult) arm(name string) *DurabilityArmResult {
	for i := range r.Arms {
		if r.Arms[i].Arm == name {
			return &r.Arms[i]
		}
	}
	return nil
}

// Check enforces the acceptance criterion: group commit at least twice
// the throughput of fsync-per-commit under concurrent writers.
func (r *DurabilityResult) Check() error {
	if r.BatchSpeedup < 2 {
		return fmt.Errorf("bench: group-commit speedup %.2fx is below the 2x criterion", r.BatchSpeedup)
	}
	b := r.arm("group-commit")
	if b == nil {
		return fmt.Errorf("bench: no group-commit arm in result")
	}
	if b.BatchFactor < 1.5 {
		return fmt.Errorf("bench: group-commit batch factor %.2f shows fsyncs are not batching", b.BatchFactor)
	}
	return nil
}

// CompareBaseline diffs r against a committed baseline and returns one
// message per regression (empty means the gate passes). Wall-clock
// numbers are noisy across machines, so the gate compares the
// dimensionless ratios only: the speedup criterion must still hold, and
// neither the speedup nor the batch factor may fall below half the
// baseline's.
func (r *DurabilityResult) CompareBaseline(base *DurabilityResult) []string {
	var regressions []string
	if base == nil {
		return []string{"no baseline to compare against"}
	}
	if err := r.Check(); err != nil {
		regressions = append(regressions, err.Error())
	}
	if base.BatchSpeedup > 0 && r.BatchSpeedup < base.BatchSpeedup/2 {
		regressions = append(regressions,
			fmt.Sprintf("batch speedup regressed %.2fx → %.2fx (allowed ≥ half of baseline)", base.BatchSpeedup, r.BatchSpeedup))
	}
	if bb, cb := base.arm("group-commit"), r.arm("group-commit"); bb != nil && cb != nil &&
		bb.BatchFactor > 0 && cb.BatchFactor < bb.BatchFactor/2 {
		regressions = append(regressions,
			fmt.Sprintf("batch factor regressed %.2f → %.2f (allowed ≥ half of baseline)", bb.BatchFactor, cb.BatchFactor))
	}
	return regressions
}
