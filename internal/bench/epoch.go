// Contended-read benchmark for the epoch-based lock-free read path:
// measures what taking index hits off the table RWMutex buys when a
// writer is committing through a synchronous WAL at the same time. Both
// arms run the identical workload — NumCPU-bounded readers hammering
// covered point queries while one writer inserts through an fsync
// charged a simulated device latency — differing only in the
// DisableEpochReadPath switch. Under the RWMutex the writer holds the
// table lock across its fsync, so every read convoys behind every
// commit; on the epoch path a hit never touches the lock. RunEpoch
// emits a baseline-comparable result (BENCH_epoch.json in CI); the
// acceptance criterion is the epoch arm at ≥ 2× the read throughput of
// the RWMutex arm.
package bench

import (
	"fmt"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/index"
	"repro/internal/storage"
	"repro/internal/wal"
)

// epochSyncDelay is the simulated fsync latency the active writer pays
// per commit — the window the RWMutex arm's readers wait out and the
// epoch arm's readers never see.
const epochSyncDelay = 1 * time.Millisecond

// Workload shape: a small table whose covered keys are fully indexed
// and buffered after warm-up, so steady-state reads are pure index
// hits — the case the lock-free path serves.
const (
	epochRows      = 600
	epochKeyDomain = 50
	epochCovered   = 20
)

// EpochArmResult is one read-path arm's measurement.
type EpochArmResult struct {
	Arm           string  `json:"arm"`
	ElapsedMicros int64   `json:"elapsed_micros"`
	Reads         int64   `json:"reads"`
	ReadsPerSec   float64 `json:"reads_per_sec"`
	// Writes is how many commits the concurrent writer landed during the
	// read phase — evidence the reads were actually contended.
	Writes int64 `json:"writes"`
	// FastHits and Fallbacks are the engine's lock-free path counters
	// for the read phase (zero by construction on the rwmutex arm).
	FastHits  uint64 `json:"fast_hits"`
	Fallbacks uint64 `json:"fallbacks"`
}

// EpochResult is the benchmark's output, shaped for BENCH_epoch.json.
// Wall-clock numbers vary run to run; ReadSpeedup is the gated,
// comparison-stable quantity.
type EpochResult struct {
	Readers         int              `json:"readers"`
	ReadsPerReader  int              `json:"reads_per_reader"`
	SyncDelayMicros int64            `json:"sync_delay_micros"`
	Arms            []EpochArmResult `json:"arms"`
	// ReadSpeedup is epoch-arm read throughput over rwmutex-arm read
	// throughput with the writer active — the headline number.
	ReadSpeedup float64 `json:"read_speedup"`
}

// withEpochDefaults sizes the benchmark: Queries is the per-reader read
// count.
func (o Options) withEpochDefaults() Options {
	if o.Queries <= 0 {
		o.Queries = 300
	}
	if o.PoolPages <= 0 {
		o.PoolPages = 64
	}
	return o
}

// epochReaders bounds reader concurrency: enough parallelism to form a
// convoy, capped so small CI runners aren't pure scheduler noise.
func epochReaders() int {
	n := runtime.NumCPU()
	if n < 2 {
		n = 2
	}
	if n > 8 {
		n = 8
	}
	return n
}

// RunEpoch measures both read-path arms under an active writer and
// returns the speedup.
func RunEpoch(o Options) (*EpochResult, error) {
	o = o.withEpochDefaults()
	r := &EpochResult{
		Readers:         epochReaders(),
		ReadsPerReader:  o.Queries,
		SyncDelayMicros: epochSyncDelay.Microseconds(),
	}
	locked, err := runEpochArm(o, "rwmutex", true)
	if err != nil {
		return nil, err
	}
	epoch, err := runEpochArm(o, "epoch", false)
	if err != nil {
		return nil, err
	}
	r.Arms = []EpochArmResult{locked, epoch}
	if locked.ReadsPerSec > 0 {
		r.ReadSpeedup = epoch.ReadsPerSec / locked.ReadsPerSec
	}
	return r, nil
}

// runEpochArm times the contended read workload with the lock-free
// path on or off. The table is loaded and warmed through a no-fsync
// WAL, then reopened with the slow synchronous policy so only the
// measured phase pays the simulated device.
func runEpochArm(o Options, name string, disable bool) (EpochArmResult, error) {
	res := EpochArmResult{Arm: name}
	dir, err := os.MkdirTemp("", "aib-epoch-*")
	if err != nil {
		return res, err
	}
	defer os.RemoveAll(dir)

	cfg := engine.Config{
		DataDir:              dir,
		PoolPages:            o.PoolPages,
		DisableEpochReadPath: disable,
		WAL:                  engine.WALConfig{SyncPolicy: wal.SyncNever},
	}
	loader := engine.New(cfg)
	schema := storage.MustSchema(
		storage.Column{Name: "k", Kind: storage.KindInt64},
		storage.Column{Name: "payload", Kind: storage.KindString},
	)
	tb, err := loader.CreateTable("data", schema)
	if err != nil {
		loader.Close()
		return res, err
	}
	payload := storage.StringValue(strings.Repeat("e", 160))
	for i := 0; i < epochRows; i++ {
		tu := storage.NewTuple(storage.Int64Value(int64(i%epochKeyDomain)), payload)
		if _, err := tb.Insert(tu); err != nil {
			loader.Close()
			return res, err
		}
	}
	if err := tb.CreatePartialIndex(0, index.IntRange(0, epochCovered-1)); err != nil {
		loader.Close()
		return res, err
	}
	if err := loader.Close(); err != nil {
		return res, err
	}

	cfg.WAL = engine.WALConfig{SyncPolicy: wal.SyncAlways, SyncDelay: epochSyncDelay}
	eng, err := engine.Load(cfg)
	if err != nil {
		return res, err
	}
	defer eng.Close()
	tb = eng.Table("data")
	if tb == nil {
		return res, fmt.Errorf("bench: table not recovered for %s arm", name)
	}
	// Warm: after this every covered key is an index hit.
	for k := 0; k < epochCovered; k++ {
		if _, _, err := tb.QueryEqual(0, storage.Int64Value(int64(k))); err != nil {
			return res, err
		}
	}

	readers := epochReaders()
	statsBefore := eng.EpochStats()
	var (
		stop     atomic.Bool
		writes   atomic.Int64
		writeErr atomic.Value
		wg       sync.WaitGroup
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for n := epochRows; !stop.Load(); n++ {
			tu := storage.NewTuple(storage.Int64Value(int64(epochCovered+n%(epochKeyDomain-epochCovered))), payload)
			if _, err := tb.Insert(tu); err != nil {
				writeErr.Store(err)
				return
			}
			writes.Add(1)
		}
	}()

	errs := make([]error, readers)
	start := time.Now()
	var rg sync.WaitGroup
	for w := 0; w < readers; w++ {
		rg.Add(1)
		go func(w int) {
			defer rg.Done()
			for i := 0; i < o.Queries; i++ {
				key := storage.Int64Value(int64((w + i) % epochCovered))
				if _, _, err := tb.QueryEqual(0, key); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	rg.Wait()
	elapsed := time.Since(start)
	stop.Store(true)
	wg.Wait()
	if err := writeErr.Load(); err != nil {
		return res, err.(error)
	}
	for _, err := range errs {
		if err != nil {
			return res, err
		}
	}

	statsAfter := eng.EpochStats()
	res.ElapsedMicros = elapsed.Microseconds()
	res.Reads = int64(readers) * int64(o.Queries)
	res.Writes = writes.Load()
	res.FastHits = statsAfter.FastHits - statsBefore.FastHits
	res.Fallbacks = statsAfter.Fallbacks - statsBefore.Fallbacks
	if elapsed > 0 {
		res.ReadsPerSec = float64(res.Reads) / elapsed.Seconds()
	}
	return res, nil
}

// arm finds one arm's result by name.
func (r *EpochResult) arm(name string) *EpochArmResult {
	for i := range r.Arms {
		if r.Arms[i].Arm == name {
			return &r.Arms[i]
		}
	}
	return nil
}

// Check enforces the acceptance criterion: the epoch read path at least
// doubles contended read throughput, and actually serves the reads
// lock-free rather than winning on noise.
func (r *EpochResult) Check() error {
	if r.ReadSpeedup < 2 {
		return fmt.Errorf("bench: epoch read speedup %.2fx is below the 2x criterion", r.ReadSpeedup)
	}
	e := r.arm("epoch")
	if e == nil {
		return fmt.Errorf("bench: no epoch arm in result")
	}
	if e.Reads > 0 && e.FastHits < uint64(e.Reads)*9/10 {
		return fmt.Errorf("bench: only %d of %d epoch-arm reads were lock-free fast hits", e.FastHits, e.Reads)
	}
	if l := r.arm("rwmutex"); l != nil && l.FastHits != 0 {
		return fmt.Errorf("bench: rwmutex arm recorded %d fast hits; the baseline arm is not a baseline", l.FastHits)
	}
	return nil
}

// CompareBaseline diffs r against a committed baseline and returns one
// message per regression (empty means the gate passes). Wall-clock
// numbers are noisy across machines, so the gate compares the
// dimensionless speedup only: the criterion must still hold, and the
// speedup may not fall below half the baseline's.
func (r *EpochResult) CompareBaseline(base *EpochResult) []string {
	var regressions []string
	if base == nil {
		return []string{"no baseline to compare against"}
	}
	if err := r.Check(); err != nil {
		regressions = append(regressions, err.Error())
	}
	if base.ReadSpeedup > 0 && r.ReadSpeedup < base.ReadSpeedup/2 {
		regressions = append(regressions,
			fmt.Sprintf("read speedup regressed %.2fx → %.2fx (allowed ≥ half of baseline)", base.ReadSpeedup, r.ReadSpeedup))
	}
	return regressions
}
