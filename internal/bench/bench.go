// Package bench regenerates every figure of the paper's evaluation (§V)
// plus the two motivating simulations (Fig. 1 and Fig. 3). Each RunFigN
// function builds the paper's data setup at a configurable scale, drives
// the paper's workload, and returns per-query series shaped like the
// published curves. The CLI (cmd/aibench) and the repository's benchmark
// suite (bench_test.go) are thin wrappers over these runners.
//
// Scaling: the paper uses 500,000 rows (~27k pages of ~18 tuples) with
// I^MAX = 5,000–10,000 pages, P = 10,000 pages and L = 800,000 entries.
// Runners scale these knobs linearly with the configured row count, so a
// 50,000-row run keeps the same page-to-budget ratios and therefore the
// same curve shapes.
package bench

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/index"
	"repro/internal/storage"
	"repro/internal/workload"
)

// engineObserver, when set, receives every engine an experiment creates.
// cmd/aibench uses it to point its -listen /metrics endpoint at the
// engine of the currently running experiment.
var engineObserver atomic.Pointer[func(*engine.Engine)]

// SetEngineObserver registers fn to be called with each experiment
// engine as it is created (nil unregisters). Safe for concurrent use.
func SetEngineObserver(fn func(*engine.Engine)) {
	if fn == nil {
		engineObserver.Store(nil)
		return
	}
	engineObserver.Store(&fn)
}

// observeEngine notifies the registered observer, if any.
func observeEngine(eng *engine.Engine) {
	if fn := engineObserver.Load(); fn != nil {
		(*fn)(eng)
	}
}

// Options configures the common experiment setup.
type Options struct {
	// Rows is the table size; the paper uses 500,000. Zero means 50,000
	// (a laptop-friendly 1/10 scale).
	Rows int

	// Queries is the workload length; the paper uses 200 per experiment.
	// Zero means 200.
	Queries int

	// Seed drives data generation, query draws, and victim selection.
	Seed int64

	// PoolPages is the buffer-pool size per table. Zero means the engine
	// default (small relative to the table, as in the paper).
	PoolPages int

	// ReadLatency, when positive, charges each simulated device read with
	// a sleep so the wall-clock series (Fig. 6's WallMicros) take the
	// shape of the paper's per-query milliseconds.
	ReadLatency time.Duration

	// ScanParallelism bounds the worker fan-out of every table-scan
	// stage: 1 forces the serial scan, 0 uses GOMAXPROCS. Results are
	// identical across settings; only wall-clock time changes.
	ScanParallelism int
}

// paper-scale constants; see §V.
const (
	paperRows     = 500000
	paperDomain   = 50000
	paperCoverage = 0.1 // partial index covers values 1..5,000
	paperIMax     = 5000
	paperP        = 10000
	paperL        = 800000
	paperIMax4    = 10000 // experiment 4 uses I^MAX = 10,000
)

func (o Options) withDefaults() Options {
	if o.Rows <= 0 {
		o.Rows = paperRows / 10
	}
	if o.Queries <= 0 {
		o.Queries = 200
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// scale converts a paper-scale knob to this run's row count, keeping at
// least 1.
func (o Options) scale(paperValue int) int {
	v := paperValue * o.Rows / paperRows
	if v < 1 {
		v = 1
	}
	return v
}

// coveredHi returns the top covered value: the paper's partial indexes
// cover [1, Domain/10].
func coveredHi() int64 { return int64(float64(paperDomain) * paperCoverage) }

// setup builds an engine with the paper's table and partial indexes on
// the first columns key columns.
func setup(o Options, spaceCfg core.Config, columns int, disableBuffer bool) (*engine.Engine, *engine.Table, error) {
	ds := workload.PaperDataset(o.Rows)
	ds.Seed = o.Seed
	schema, err := ds.Schema()
	if err != nil {
		return nil, nil, err
	}
	eng := engine.New(engine.Config{
		PoolPages:          o.PoolPages,
		ScanParallelism:    o.ScanParallelism,
		Space:              spaceCfg,
		DisableIndexBuffer: disableBuffer,
		ReadLatency:        o.ReadLatency,
	})
	observeEngine(eng)
	tb, err := eng.CreateTable("t", schema)
	if err != nil {
		return nil, nil, err
	}
	if err := ds.Generate(func(tu storage.Tuple) error {
		_, err := tb.Insert(tu)
		return err
	}); err != nil {
		return nil, nil, err
	}
	for c := 0; c < columns; c++ {
		if err := tb.CreatePartialIndex(c, index.IntRange(1, coveredHi())); err != nil {
			return nil, nil, err
		}
	}
	return eng, tb, nil
}

// uncoveredDraw draws query keys from the uncovered value range — the
// paper's experiments 1–3 "queried the unindexed values randomly".
func uncoveredDraw() workload.Draw {
	return workload.Uniform(coveredHi()+1, paperDomain)
}

// coveredDraw draws from the covered range.
func coveredDraw() workload.Draw {
	return workload.Uniform(1, coveredHi())
}

// queryRng returns the RNG for the query stream, independent of the data
// seed so workloads are identical across engine configurations.
func (o Options) queryRng() *rand.Rand {
	return rand.New(rand.NewSource(o.Seed + 1000))
}

// checkQueries guards against pathological option combinations.
func (o Options) validate() error {
	if o.Rows < 1000 {
		return fmt.Errorf("bench: %d rows is below the minimum of 1000 (pages would be too few to show skip behaviour)", o.Rows)
	}
	return nil
}
