package bench

import (
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/workload"
)

// Fig9Result carries the series of the paper's Figure 9 (experiment 4):
// buffer-space allocation under a changing partial-index hit rate on
// column A.
type Fig9Result struct {
	Entries    [3]*metrics.Series
	SpaceUsed  *metrics.Series
	HitsA      *metrics.Series // rolling hit rate actually observed on A
	SpaceLimit int
}

// Frame renders the three entry curves.
func (r *Fig9Result) Frame() *metrics.Frame {
	return metrics.NewFrame("query", r.Entries[0], r.Entries[1], r.Entries[2], r.SpaceUsed)
}

// RunFig9 reproduces Figure 9. The query mix over (A, B, C) is fixed at
// (1/2, 1/3, 1/6) for the whole run; queries on B and C always target
// uncovered values; queries on A hit the partial index with probability
// 80% during the first half and 20% during the second (the paper
// implements this by switching the index definition; drawing covered vs
// uncovered keys with the same probabilities produces the identical hit
// sequence without the rebuild side effects). I^MAX = 10,000 (scaled),
// space limited as in experiment 3. Expected shape: while A's hit rate
// is high its buffer is starved despite A's large query share — hits
// never use the buffer, so its LRU-K intervals stretch; when the hit
// rate drops, A's buffer grows quickly and B/C shrink.
func RunFig9(o Options) (*Fig9Result, error) {
	o = o.withDefaults()
	if err := o.validate(); err != nil {
		return nil, err
	}
	spaceCfg := core.Config{
		IMax:       o.scale(paperIMax4),
		P:          o.scale(paperP),
		SpaceLimit: o.scale(paperL),
	}
	eng, tb, err := setup(o, spaceCfg, 3, false)
	if err != nil {
		return nil, err
	}

	r := &Fig9Result{
		SpaceUsed:  metrics.NewSeries("space_used"),
		HitsA:      metrics.NewSeries("hit_rate_a"),
		SpaceLimit: spaceCfg.SpaceLimit,
	}
	for c, name := range []string{"entries_a", "entries_b", "entries_c"} {
		r.Entries[c] = metrics.NewSeries(name)
	}

	mix := workload.MustMix(0.5, 1.0/3, 1.0/6)
	rng := o.queryRng()
	covered, uncovered := coveredDraw(), uncoveredDraw()
	var hitsA, queriesA int
	for q := 0; q < o.Queries; q++ {
		col := mix.Pick(rng)
		var key int64
		if col == 0 {
			p := 0.8
			if q >= o.Queries/2 {
				p = 0.2
			}
			key = workload.WithHitRate(p, covered, uncovered)(rng)
		} else {
			key = uncovered(rng)
		}
		_, stats, err := tb.QueryEqual(col, intVal(key))
		if err != nil {
			return nil, err
		}
		if col == 0 {
			queriesA++
			if stats.PartialHit {
				hitsA++
			}
		}
		for c := 0; c < 3; c++ {
			r.Entries[c].Add(float64(tb.Buffer(c).EntryCount()))
		}
		r.SpaceUsed.Add(float64(eng.Space().Used()))
		if queriesA > 0 {
			r.HitsA.Add(float64(hitsA) / float64(queriesA))
		} else {
			r.HitsA.Add(0)
		}
	}
	return r, nil
}
