// Package obs mounts the engine's observability surface on HTTP: a
// Prometheus /metrics endpoint rendered by engine.WriteMetrics, a
// /timeline JSON endpoint over the adaptation-timeline recorder, a
// /healthz liveness probe, and the standard net/http/pprof profiling
// handlers under /debug/pprof/. It is opt-in — nothing listens unless a
// cmd tool is started with -listen — and it registers on a private mux,
// never on http.DefaultServeMux, so importing this package has no
// global side effects.
package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"
	"time"

	"repro/internal/engine"
	"repro/internal/flight"
	"repro/internal/metrics"
	"repro/internal/timeline"
)

// Server is the observability surface bound to one (possibly moving)
// engine. It implements http.Handler and additionally exposes its
// scrape counters, so tools and tests can assert that no /metrics
// response failed mid-stream.
//
//	/metrics            Prometheus text exposition (v0.0.4)
//	/timeline           adaptation timeline + convergence as JSON,
//	                    filtered by ?table=, ?column= and ?tenant=
//	/healthz            build info + durability health JSON; 503 when
//	                    the WAL or checkpointer is unhealthy
//	/debug/queries      flight records as JSON, filtered by ?trace=,
//	                    ?tenant=, ?min_ms= and bounded by ?n=
//	/debug/pprof/       pprof index, plus cmdline, profile, symbol, trace
type Server struct {
	current func() *engine.Engine
	mux     *http.ServeMux
	scrapes metrics.ScrapeCounters
}

// NewServer builds the surface for a moving target: current resolves
// the engine per request, so a tool that builds a fresh engine per
// experiment (cmd/aibench) can expose whichever one is running. A nil
// engine turns /metrics and /timeline into 503; /healthz and pprof
// always work — they describe the process, not an engine.
func NewServer(current func() *engine.Engine) *Server {
	s := &Server{current: current, mux: http.NewServeMux()}
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/timeline", s.handleTimeline)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/debug/queries", s.handleQueries)
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return s
}

// ServeHTTP dispatches to the surface's endpoints.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// ScrapeStats reads the /metrics scrape counters.
func (s *Server) ScrapeStats() metrics.ScrapeStats {
	return s.scrapes.Snapshot()
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	eng := s.current()
	if eng == nil {
		http.Error(w, "no engine running", http.StatusServiceUnavailable)
		return
	}
	s.scrapes.Scrapes.Add(1)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	err := eng.WriteMetrics(w)
	if err == nil {
		// Append the scrape families after the engine's. The snapshot
		// was taken after this scrape's Scrapes bump, so the pair is
		// consistent; a failure of this scrape necessarily surfaces on
		// the *next* successful one (its own response is already dead).
		err = writeScrapeMetrics(w, s.scrapes.Snapshot())
	}
	if err != nil {
		// Headers are already out, so the client cannot be signaled
		// with a status code — count the failure instead and let the
		// aib_scrape_errors_total family report it.
		s.scrapes.Errors.Add(1)
	}
}

// writeScrapeMetrics renders the scrape counters in the exposition
// format, matching engine.WriteMetrics' conventions.
func writeScrapeMetrics(w http.ResponseWriter, st metrics.ScrapeStats) error {
	const text = "# HELP aib_scrapes_total Scrape attempts against a live engine, including this one.\n" +
		"# TYPE aib_scrapes_total counter\n" +
		"aib_scrapes_total %d\n" +
		"# HELP aib_scrape_errors_total Scrapes whose response write failed after headers were sent.\n" +
		"# TYPE aib_scrape_errors_total counter\n" +
		"aib_scrape_errors_total %d\n"
	_, err := fmt.Fprintf(w, text, st.Scrapes, st.Errors)
	return err
}

// timelineResponse is the /timeline JSON document.
type timelineResponse struct {
	Series      []timeline.Series      `json:"series"`
	Convergence []timeline.Convergence `json:"convergence"`
	Enabled     bool                   `json:"enabled"`
}

func (s *Server) handleTimeline(w http.ResponseWriter, r *http.Request) {
	eng := s.current()
	if eng == nil {
		http.Error(w, "no engine running", http.StatusServiceUnavailable)
		return
	}
	table := r.URL.Query().Get("table")
	column := r.URL.Query().Get("column")
	// ?tenant= keeps only series of the named tenant's tables, whose
	// catalog names are "<tenant>:<table>"; tenant=<default> (the
	// literal) keeps unqualified tables only.
	tenant := r.URL.Query().Get("tenant")
	match := func(t, c string) bool {
		if (table != "" && t != table) || (column != "" && c != column) {
			return false
		}
		switch tenant {
		case "":
			return true
		case "<default>":
			return !strings.Contains(t, ":")
		default:
			return strings.HasPrefix(t, tenant+":")
		}
	}
	resp := timelineResponse{
		Series:      []timeline.Series{},
		Convergence: []timeline.Convergence{},
		Enabled:     eng.Timeline().Enabled(),
	}
	for _, ser := range eng.Timeline().Series() {
		if match(ser.Table, ser.Column) {
			resp.Series = append(resp.Series, ser)
		}
	}
	for _, c := range eng.Convergence() {
		if match(c.Table, c.Column) {
			resp.Convergence = append(resp.Convergence, c)
		}
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(resp)
}

// queriesResponse is the /debug/queries JSON document.
type queriesResponse struct {
	Enabled     bool            `json:"enabled"`
	ThresholdMS float64         `json:"slow_threshold_ms"`
	Records     []flight.Record `json:"records"`
}

// handleQueries serves the flight recorder's retained records:
// ?trace= / ?tenant= filter exactly, ?min_ms= keeps statements at least
// that slow, and ?n= bounds the result (default 100). Matching records
// come back newest first.
func (s *Server) handleQueries(w http.ResponseWriter, r *http.Request) {
	eng := s.current()
	if eng == nil {
		http.Error(w, "no engine running", http.StatusServiceUnavailable)
		return
	}
	q := r.URL.Query()
	var minDur time.Duration
	if v := q.Get("min_ms"); v != "" {
		ms, err := strconv.ParseFloat(v, 64)
		if err != nil || ms < 0 {
			http.Error(w, "bad min_ms: want a non-negative number", http.StatusBadRequest)
			return
		}
		minDur = time.Duration(ms * float64(time.Millisecond))
	}
	n := 100
	if v := q.Get("n"); v != "" {
		i, err := strconv.Atoi(v)
		if err != nil || i <= 0 {
			http.Error(w, "bad n: want a positive integer", http.StatusBadRequest)
			return
		}
		n = i
	}
	fr := eng.Flight()
	recs := fr.Find(q.Get("trace"), q.Get("tenant"), minDur, n)
	if recs == nil {
		recs = []flight.Record{}
	}
	resp := queriesResponse{
		Enabled:     fr.Enabled(),
		ThresholdMS: float64(fr.SlowThreshold()) / float64(time.Millisecond),
		Records:     recs,
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(resp)
}

// healthResponse is the /healthz JSON document: build identity plus the
// engine's durability health and flight-recorder counters. Status is
// "ok" (200) or "unhealthy" (503, with Reason naming the failing
// durability condition); a server with no engine stays 200 — the probe
// then only asserts process liveness.
type healthResponse struct {
	Status     string                   `json:"status"`
	Reason     string                   `json:"reason,omitempty"`
	GoVersion  string                   `json:"go_version"`
	Module     string                   `json:"module,omitempty"`
	Revision   string                   `json:"revision,omitempty"`
	Engine     bool                     `json:"engine"`
	Durability *engine.DurabilityHealth `json:"durability,omitempty"`
	Flight     *flight.Stats            `json:"flight,omitempty"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	eng := s.current()
	resp := healthResponse{
		Status:    "ok",
		GoVersion: runtime.Version(),
		Engine:    eng != nil,
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		resp.Module = bi.Main.Path
		for _, kv := range bi.Settings {
			if kv.Key == "vcs.revision" {
				resp.Revision = kv.Value
			}
		}
	}
	status := http.StatusOK
	if eng != nil {
		dh := eng.DurabilityHealth()
		resp.Durability = &dh
		fs := eng.Flight().Stats()
		resp.Flight = &fs
		if !dh.Healthy {
			resp.Status = "unhealthy"
			resp.Reason = dh.Reason
			status = http.StatusServiceUnavailable
		}
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(resp)
}

// Handler returns the observability surface for one fixed engine.
func Handler(eng *engine.Engine) http.Handler {
	return NewServer(func() *engine.Engine { return eng })
}

// DynamicHandler is Handler for a moving target; see NewServer.
func DynamicHandler(current func() *engine.Engine) http.Handler {
	return NewServer(current)
}

// Serve binds addr (e.g. "localhost:9090", or ":0" for an ephemeral
// port) and serves Handler(eng) on it in a background goroutine. It
// returns the server and the bound address so callers can print where
// the endpoints landed; shut down with srv.Close or srv.Shutdown.
func Serve(addr string, eng *engine.Engine) (*http.Server, string, error) {
	return serve(addr, Handler(eng))
}

// ServeDynamic is Serve over a DynamicHandler.
func ServeDynamic(addr string, current func() *engine.Engine) (*http.Server, string, error) {
	return serve(addr, DynamicHandler(current))
}

// Start is Serve over this Server, keeping a handle on the scrape
// counters (unlike ServeDynamic, which hides the Server value).
func (s *Server) Start(addr string) (*http.Server, string, error) {
	return serve(addr, s)
}

func serve(addr string, h http.Handler) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", err
	}
	srv := &http.Server{Handler: h}
	go func() {
		// ErrServerClosed (and any late accept error) is deliberate
		// shutdown noise; the process-level caller owns the lifecycle.
		_ = srv.Serve(ln)
	}()
	return srv, ln.Addr().String(), nil
}
