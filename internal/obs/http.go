// Package obs mounts the engine's observability surface on HTTP: a
// Prometheus /metrics endpoint rendered by engine.WriteMetrics, and the
// standard net/http/pprof profiling handlers under /debug/pprof/. It is
// opt-in — nothing listens unless a cmd tool is started with -listen —
// and it registers on a private mux, never on http.DefaultServeMux, so
// importing this package has no global side effects.
package obs

import (
	"net"
	"net/http"
	"net/http/pprof"

	"repro/internal/engine"
)

// Handler returns an http.Handler serving the engine's observability
// endpoints:
//
//	/metrics            Prometheus text exposition (v0.0.4)
//	/debug/pprof/       pprof index, plus cmdline, profile, symbol, trace
func Handler(eng *engine.Engine) http.Handler {
	return DynamicHandler(func() *engine.Engine { return eng })
}

// DynamicHandler is Handler for a moving target: current resolves the
// engine per request, so a tool that builds a fresh engine per
// experiment (cmd/aibench) can expose whichever one is running. A nil
// engine turns /metrics into 503; pprof always works — it profiles the
// process, not an engine.
func DynamicHandler(current func() *engine.Engine) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		eng := current()
		if eng == nil {
			http.Error(w, "no engine running", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := eng.WriteMetrics(w); err != nil {
			// Headers are already out; nothing useful to do but stop.
			return
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve binds addr (e.g. "localhost:9090", or ":0" for an ephemeral
// port) and serves Handler(eng) on it in a background goroutine. It
// returns the server and the bound address so callers can print where
// the endpoints landed; shut down with srv.Close or srv.Shutdown.
func Serve(addr string, eng *engine.Engine) (*http.Server, string, error) {
	return serve(addr, Handler(eng))
}

// ServeDynamic is Serve over a DynamicHandler.
func ServeDynamic(addr string, current func() *engine.Engine) (*http.Server, string, error) {
	return serve(addr, DynamicHandler(current))
}

func serve(addr string, h http.Handler) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", err
	}
	srv := &http.Server{Handler: h}
	go func() {
		// ErrServerClosed (and any late accept error) is deliberate
		// shutdown noise; the process-level caller owns the lifecycle.
		_ = srv.Serve(ln)
	}()
	return srv, ln.Addr().String(), nil
}
