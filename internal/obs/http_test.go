package obs

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/internal/engine"
	"repro/internal/flight"
	"repro/internal/index"
	"repro/internal/storage"
)

func newEngine(t *testing.T) *engine.Engine {
	t.Helper()
	e := engine.New(engine.Config{})
	schema := storage.MustSchema(storage.Column{Name: "a", Kind: storage.KindInt64})
	tb, err := e.CreateTable("t", schema)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 200; i++ {
		if _, err := tb.Insert(storage.NewTuple(storage.Int64Value(i % 50))); err != nil {
			t.Fatal(err)
		}
	}
	if err := tb.CreatePartialIndex(0, index.IntRange(1, 10)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := tb.QueryEqual(0, storage.Int64Value(5)); err != nil { // hit
		t.Fatal(err)
	}
	if _, _, err := tb.QueryEqual(0, storage.Int64Value(30)); err != nil { // miss
		t.Fatal(err)
	}
	return e
}

func get(t *testing.T, h http.Handler, path string) (*http.Response, string) {
	t.Helper()
	srv := httptest.NewServer(h)
	defer srv.Close()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(body)
}

func TestMetricsEndpoint(t *testing.T) {
	h := Handler(newEngine(t))
	resp, body := get(t, h, "/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q", ct)
	}
	for _, want := range []string{
		"aib_shared_scan_misses_total 1",
		`aib_queries_total{table="t",column="a"} 2`,
		`aib_query_latency_microseconds_count{mechanism="hit"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q\n---\n%s", want, body)
		}
	}
}

func TestPprofEndpoint(t *testing.T) {
	h := Handler(newEngine(t))
	resp, body := get(t, h, "/debug/pprof/")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if !strings.Contains(body, "goroutine") {
		t.Error("pprof index does not list profiles")
	}
}

func TestServeBindsEphemeralPort(t *testing.T) {
	srv, addr, err := Serve("127.0.0.1:0", newEngine(t))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "aib_space_entries_used") {
		t.Errorf("GET /metrics over TCP: status %d, body %.200s", resp.StatusCode, body)
	}
}

func TestHealthzEndpoint(t *testing.T) {
	h := Handler(newEngine(t))
	resp, body := get(t, h, "/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}
	var hr struct {
		Status    string `json:"status"`
		GoVersion string `json:"go_version"`
		Engine    bool   `json:"engine"`
	}
	if err := json.Unmarshal([]byte(body), &hr); err != nil {
		t.Fatalf("healthz body not JSON: %v\n%s", err, body)
	}
	if hr.Status != "ok" || !hr.Engine || hr.GoVersion == "" {
		t.Errorf("healthz = %+v", hr)
	}
}

// TestNilEngineEndpoints pins the moving-target contract: without an
// engine, the data endpoints refuse while the liveness probe answers.
func TestNilEngineEndpoints(t *testing.T) {
	h := DynamicHandler(func() *engine.Engine { return nil })
	for _, path := range []string{"/metrics", "/timeline"} {
		if resp, _ := get(t, h, path); resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("GET %s with nil engine = %d, want 503", path, resp.StatusCode)
		}
	}
	resp, body := get(t, h, "/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz with nil engine = %d, want 200", resp.StatusCode)
	}
	if !strings.Contains(body, `"engine":false`) {
		t.Errorf("healthz does not report missing engine: %s", body)
	}
}

func TestTimelineEndpointFilters(t *testing.T) {
	e := newEngine(t)
	e.Timeline().Enable(true)
	tb := e.Table("t")
	for i := int64(0); i < 5; i++ {
		if _, _, err := tb.QueryEqual(0, storage.Int64Value(20+i)); err != nil {
			t.Fatal(err)
		}
	}
	h := Handler(e)

	decode := func(body string) (series []map[string]any, enabled bool) {
		t.Helper()
		var resp struct {
			Series      []map[string]any `json:"series"`
			Convergence []map[string]any `json:"convergence"`
			Enabled     bool             `json:"enabled"`
		}
		if err := json.Unmarshal([]byte(body), &resp); err != nil {
			t.Fatalf("timeline body not JSON: %v\n%s", err, body)
		}
		return resp.Series, resp.Enabled
	}

	_, body := get(t, h, "/timeline")
	series, enabled := decode(body)
	if !enabled || len(series) != 1 {
		t.Fatalf("unfiltered: enabled=%v series=%d", enabled, len(series))
	}
	if series[0]["buffer"] != "t.a" {
		t.Errorf("series buffer = %v", series[0]["buffer"])
	}

	if _, body = get(t, h, "/timeline?table=t&column=a"); len(firstOf(decode(body))) != 1 {
		t.Error("matching filter dropped the series")
	}
	if _, body = get(t, h, "/timeline?table=nope"); len(firstOf(decode(body))) != 0 {
		t.Error("non-matching table filter kept the series")
	}
	if _, body = get(t, h, "/timeline?column=zz"); len(firstOf(decode(body))) != 0 {
		t.Error("non-matching column filter kept the series")
	}
}

func firstOf(series []map[string]any, _ bool) []map[string]any { return series }

// failAfterWriter fails every response write after the first n bytes,
// simulating a scraper hanging up mid-body.
type failAfterWriter struct {
	header  http.Header
	n       int
	written int
}

func (f *failAfterWriter) Header() http.Header { return f.header }
func (f *failAfterWriter) WriteHeader(int)     {}
func (f *failAfterWriter) Write(p []byte) (int, error) {
	if f.written+len(p) > f.n {
		return 0, errors.New("client went away")
	}
	f.written += len(p)
	return len(p), nil
}

// TestScrapeErrorCounted is the satellite regression test: a mid-stream
// /metrics write failure cannot be signaled by status code (headers are
// already out), so it must land in aib_scrape_errors_total on the next
// successful scrape.
func TestScrapeErrorCounted(t *testing.T) {
	eng := newEngine(t)
	s := NewServer(func() *engine.Engine { return eng })

	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	s.ServeHTTP(&failAfterWriter{header: http.Header{}, n: 64}, req)
	if st := s.ScrapeStats(); st.Scrapes != 1 || st.Errors != 1 {
		t.Fatalf("after failed scrape: %+v", st)
	}

	_, body := get(t, s, "/metrics")
	if !strings.Contains(body, "aib_scrape_errors_total 1") {
		t.Errorf("error not exported on next scrape:\n%s", body)
	}
	if !strings.Contains(body, "aib_scrapes_total 2") {
		t.Errorf("scrape counter wrong:\n%s", body)
	}
	if st := s.ScrapeStats(); st.Scrapes != 2 || st.Errors != 1 {
		t.Errorf("after good scrape: %+v", st)
	}
}

// TestConcurrentScrapeTimelineE2E races a miss-heavy workload against
// pollers of /metrics and /timeline over real TCP: every scrape must
// parse and every observed gauge must stay in range. Run with -race this
// doubles as the data-race check for the whole scrape path.
func TestConcurrentScrapeTimelineE2E(t *testing.T) {
	e := newEngine(t)
	e.Timeline().Enable(true)
	e.Tracer().EnableSpans(true)
	tb := e.Table("t")
	s := NewServer(func() *engine.Engine { return e })
	srv, addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	covRe := regexp.MustCompile(`(?m)^aib_coverage_ratio\{[^}]*\} (\S+)$`)
	var work, poll sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 3; g++ {
		work.Add(1)
		go func(g int) {
			defer work.Done()
			for i := 0; i < 80; i++ {
				k := int64(11 + (g*13+i)%39) // outside the covered [1,10] range: all misses
				if _, _, err := tb.QueryEqual(0, storage.Int64Value(k)); err != nil {
					t.Error(err)
				}
			}
		}(g)
	}
	for g := 0; g < 2; g++ {
		poll.Add(1)
		go func() {
			defer poll.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, path := range []string{"/metrics", "/timeline?table=t"} {
					resp, err := http.Get("http://" + addr + path)
					if err != nil {
						t.Error(err)
						return
					}
					body, err := io.ReadAll(resp.Body)
					resp.Body.Close()
					if err != nil || resp.StatusCode != http.StatusOK {
						t.Errorf("GET %s: status %d, err %v", path, resp.StatusCode, err)
						continue
					}
					if path == "/metrics" {
						for _, mm := range covRe.FindAllStringSubmatch(string(body), -1) {
							cov, err := strconv.ParseFloat(mm[1], 64)
							if err != nil || cov < 0 || cov > 1 {
								t.Errorf("coverage gauge out of range: %q (%v)", mm[1], err)
							}
						}
					} else {
						var tl struct {
							Series []struct {
								Samples []struct {
									Coverage  float64 `json:"coverage"`
									Skippable int     `json:"skippable_pages"`
									Total     int     `json:"total_pages"`
								} `json:"samples"`
							} `json:"series"`
						}
						if err := json.Unmarshal(body, &tl); err != nil {
							t.Errorf("timeline scrape not JSON: %v", err)
							continue
						}
						for _, ser := range tl.Series {
							for _, sm := range ser.Samples {
								if sm.Coverage < 0 || sm.Coverage > 1 || sm.Skippable > sm.Total {
									t.Errorf("insane sample: %+v", sm)
								}
							}
						}
					}
				}
			}
		}()
	}
	work.Wait() // workload done
	close(stop)
	poll.Wait()

	if st := s.ScrapeStats(); st.Errors != 0 || st.Scrapes == 0 {
		t.Errorf("scrape stats after run: %+v", st)
	}
	if e.Timeline().SampleCount() == 0 {
		t.Error("no timeline samples despite sampled workload")
	}
}

// TestQueriesEndpoint exercises /debug/queries: the enabled flag, the
// trace/tenant/min_ms/n filters and the 400s on malformed parameters.
func TestQueriesEndpoint(t *testing.T) {
	e := newEngine(t)
	h := Handler(e)

	// Recorder off: the endpoint answers with enabled=false, no records.
	resp, body := get(t, h, "/debug/queries")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var qr struct {
		Enabled bool `json:"enabled"`
		Records []struct {
			Trace  string `json:"trace"`
			Tenant string `json:"tenant"`
			Stmt   string `json:"stmt"`
		} `json:"records"`
	}
	if err := json.Unmarshal([]byte(body), &qr); err != nil {
		t.Fatalf("not JSON: %v\n%s", err, body)
	}
	if qr.Enabled || len(qr.Records) != 0 {
		t.Fatalf("disabled recorder served %+v", qr)
	}

	// Complete two records through the recorder, one with a known trace.
	fr := e.Flight()
	fr.Enable(1)
	a, _ := fr.Begin(context.Background(), "acme", "SELECT 1")
	fr.Complete(a, nil)
	b, _ := fr.Begin(flight.WithTrace(context.Background(), "tr-obs"), "tiny", "SELECT 2")
	fr.Complete(b, nil)

	_, body = get(t, h, "/debug/queries?trace=tr-obs")
	if err := json.Unmarshal([]byte(body), &qr); err != nil {
		t.Fatal(err)
	}
	if !qr.Enabled || len(qr.Records) != 1 || qr.Records[0].Stmt != "SELECT 2" {
		t.Errorf("trace filter = %+v", qr)
	}
	_, body = get(t, h, "/debug/queries?tenant=acme")
	if err := json.Unmarshal([]byte(body), &qr); err != nil {
		t.Fatal(err)
	}
	if len(qr.Records) != 1 || qr.Records[0].Tenant != "acme" {
		t.Errorf("tenant filter = %+v", qr)
	}
	_, body = get(t, h, "/debug/queries?min_ms=3600000")
	if err := json.Unmarshal([]byte(body), &qr); err != nil {
		t.Fatal(err)
	}
	if len(qr.Records) != 0 {
		t.Errorf("min_ms=1h returned %+v", qr.Records)
	}
	_, body = get(t, h, "/debug/queries?n=1")
	if err := json.Unmarshal([]byte(body), &qr); err != nil {
		t.Fatal(err)
	}
	if len(qr.Records) != 1 {
		t.Errorf("n=1 returned %d records", len(qr.Records))
	}

	for _, bad := range []string{"?min_ms=-1", "?min_ms=x", "?n=0", "?n=x"} {
		if resp, _ := get(t, h, "/debug/queries"+bad); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("GET /debug/queries%s = %d, want 400", bad, resp.StatusCode)
		}
	}
	if resp, _ := get(t, DynamicHandler(func() *engine.Engine { return nil }), "/debug/queries"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("nil engine /debug/queries = %d, want 503", resp.StatusCode)
	}
}

// TestHealthzUnhealthyDurability pins the liveness-vs-durability split:
// an engine whose WAL failed to initialize answers 503 with the failure
// in the durability section, while a healthy WAL-less engine stays 200.
func TestHealthzUnhealthyDurability(t *testing.T) {
	// A regular file where the WAL directory must go forces init failure.
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "wal"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	e := engine.New(engine.Config{DataDir: dir})
	resp, body := get(t, Handler(e), "/healthz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("unhealthy engine /healthz = %d, want 503\n%s", resp.StatusCode, body)
	}
	var hr struct {
		Status     string `json:"status"`
		Reason     string `json:"reason"`
		Durability struct {
			Healthy      bool   `json:"healthy"`
			WALInitError string `json:"wal_init_error"`
		} `json:"durability"`
		Flight struct {
			Enabled bool `json:"enabled"`
		} `json:"flight"`
	}
	if err := json.Unmarshal([]byte(body), &hr); err != nil {
		t.Fatalf("not JSON: %v\n%s", err, body)
	}
	if hr.Status != "unhealthy" || hr.Reason == "" {
		t.Errorf("health = %+v", hr)
	}
	if hr.Durability.Healthy || hr.Durability.WALInitError == "" {
		t.Errorf("durability section = %+v", hr.Durability)
	}

	// Healthy in-memory engine: 200 with a healthy durability section.
	resp, body = get(t, Handler(newEngine(t)), "/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy engine /healthz = %d\n%s", resp.StatusCode, body)
	}
	if !strings.Contains(body, `"healthy":true`) {
		t.Errorf("healthz lacks durability verdict: %s", body)
	}
}
