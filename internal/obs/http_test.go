package obs

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/index"
	"repro/internal/storage"
)

func newEngine(t *testing.T) *engine.Engine {
	t.Helper()
	e := engine.New(engine.Config{})
	schema := storage.MustSchema(storage.Column{Name: "a", Kind: storage.KindInt64})
	tb, err := e.CreateTable("t", schema)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 200; i++ {
		if _, err := tb.Insert(storage.NewTuple(storage.Int64Value(i % 50))); err != nil {
			t.Fatal(err)
		}
	}
	if err := tb.CreatePartialIndex(0, index.IntRange(1, 10)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := tb.QueryEqual(0, storage.Int64Value(5)); err != nil { // hit
		t.Fatal(err)
	}
	if _, _, err := tb.QueryEqual(0, storage.Int64Value(30)); err != nil { // miss
		t.Fatal(err)
	}
	return e
}

func get(t *testing.T, h http.Handler, path string) (*http.Response, string) {
	t.Helper()
	srv := httptest.NewServer(h)
	defer srv.Close()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(body)
}

func TestMetricsEndpoint(t *testing.T) {
	h := Handler(newEngine(t))
	resp, body := get(t, h, "/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q", ct)
	}
	for _, want := range []string{
		"aib_shared_scan_misses_total 1",
		`aib_queries_total{table="t",column="a"} 2`,
		`aib_query_latency_microseconds_count{mechanism="hit"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q\n---\n%s", want, body)
		}
	}
}

func TestPprofEndpoint(t *testing.T) {
	h := Handler(newEngine(t))
	resp, body := get(t, h, "/debug/pprof/")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if !strings.Contains(body, "goroutine") {
		t.Error("pprof index does not list profiles")
	}
}

func TestServeBindsEphemeralPort(t *testing.T) {
	srv, addr, err := Serve("127.0.0.1:0", newEngine(t))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "aib_space_entries_used") {
		t.Errorf("GET /metrics over TCP: status %d, body %.200s", resp.StatusCode, body)
	}
}
