// Package storage defines the primitive data model shared by every layer
// of the engine: typed values, column schemas, tuples, and record
// identifiers. It also owns the byte-level encoding of tuples so that the
// heap layer can treat tuple payloads as opaque slices.
package storage

import (
	"encoding/binary"
	"fmt"
	"strconv"
)

// Kind enumerates the value types supported by the engine. The paper's
// evaluation schema uses INTEGER key columns and a VARCHAR payload, so
// these two kinds cover the full reproduction; the enum leaves room for
// growth without changing the tuple wire format.
type Kind uint8

const (
	// KindInvalid is the zero Kind; it marks an uninitialized Value.
	KindInvalid Kind = iota
	// KindInt64 is a 64-bit signed integer.
	KindInt64
	// KindString is a variable-length UTF-8 string (VARCHAR).
	KindString
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindInt64:
		return "INTEGER"
	case KindString:
		return "VARCHAR"
	default:
		return fmt.Sprintf("INVALID(%d)", uint8(k))
	}
}

// Value is a single typed column value. Values are immutable and safe to
// copy; the zero Value has KindInvalid.
type Value struct {
	kind Kind
	i    int64
	s    string
}

// Int64Value returns an integer value.
func Int64Value(v int64) Value { return Value{kind: KindInt64, i: v} }

// StringValue returns a string value.
func StringValue(v string) Value { return Value{kind: KindString, s: v} }

// Kind reports the value's type.
func (v Value) Kind() Kind { return v.kind }

// IsValid reports whether the value carries a type.
func (v Value) IsValid() bool { return v.kind != KindInvalid }

// Int64 returns the integer payload. It panics if the value is not an
// integer; callers are expected to have validated against the schema.
func (v Value) Int64() int64 {
	if v.kind != KindInt64 {
		panic(fmt.Sprintf("storage: Int64 called on %s value", v.kind))
	}
	return v.i
}

// Str returns the string payload. It panics if the value is not a string.
func (v Value) Str() string {
	if v.kind != KindString {
		panic(fmt.Sprintf("storage: Str called on %s value", v.kind))
	}
	return v.s
}

// Compare orders v against o: -1 if v < o, 0 if equal, +1 if v > o.
// Values of different kinds order by kind, which gives indexes a total
// order without requiring homogeneous input (schemas enforce homogeneity
// anyway).
func (v Value) Compare(o Value) int {
	if v.kind != o.kind {
		if v.kind < o.kind {
			return -1
		}
		return 1
	}
	switch v.kind {
	case KindInt64:
		switch {
		case v.i < o.i:
			return -1
		case v.i > o.i:
			return 1
		default:
			return 0
		}
	case KindString:
		switch {
		case v.s < o.s:
			return -1
		case v.s > o.s:
			return 1
		default:
			return 0
		}
	default:
		return 0
	}
}

// Equal reports v == o under Compare semantics.
func (v Value) Equal(o Value) bool { return v.Compare(o) == 0 }

// String renders the value for logs and test failures.
func (v Value) String() string {
	switch v.kind {
	case KindInt64:
		return strconv.FormatInt(v.i, 10)
	case KindString:
		return strconv.Quote(v.s)
	default:
		return "<invalid>"
	}
}

// EncodedSize returns the number of bytes AppendEncode will add.
func (v Value) EncodedSize() int {
	switch v.kind {
	case KindInt64:
		return 8
	case KindString:
		return 2 + len(v.s)
	default:
		return 0
	}
}

// AppendEncode appends the value's wire form to buf. Integers are fixed
// 8-byte little-endian; strings are a 16-bit length prefix followed by
// the bytes. The kind itself is not encoded — the schema dictates it.
func (v Value) AppendEncode(buf []byte) []byte {
	switch v.kind {
	case KindInt64:
		var tmp [8]byte
		binary.LittleEndian.PutUint64(tmp[:], uint64(v.i))
		return append(buf, tmp[:]...)
	case KindString:
		if len(v.s) > maxStringLen {
			panic(fmt.Sprintf("storage: string value of %d bytes exceeds max %d", len(v.s), maxStringLen))
		}
		var tmp [2]byte
		binary.LittleEndian.PutUint16(tmp[:], uint16(len(v.s)))
		buf = append(buf, tmp[:]...)
		return append(buf, v.s...)
	default:
		panic("storage: encode of invalid value")
	}
}

// maxStringLen bounds string values to what a 16-bit length prefix can
// carry. The paper's payload column is VARCHAR(512), far below this.
const maxStringLen = 1<<16 - 1

// decodeValue reads one value of the given kind from buf, returning the
// value and the number of bytes consumed.
func decodeValue(kind Kind, buf []byte) (Value, int, error) {
	switch kind {
	case KindInt64:
		if len(buf) < 8 {
			return Value{}, 0, fmt.Errorf("storage: short buffer decoding INTEGER: have %d bytes", len(buf))
		}
		return Int64Value(int64(binary.LittleEndian.Uint64(buf))), 8, nil
	case KindString:
		if len(buf) < 2 {
			return Value{}, 0, fmt.Errorf("storage: short buffer decoding VARCHAR length: have %d bytes", len(buf))
		}
		n := int(binary.LittleEndian.Uint16(buf))
		if len(buf) < 2+n {
			return Value{}, 0, fmt.Errorf("storage: short buffer decoding VARCHAR body: want %d, have %d", n, len(buf)-2)
		}
		return StringValue(string(buf[2 : 2+n])), 2 + n, nil
	default:
		return Value{}, 0, fmt.Errorf("storage: cannot decode kind %v", kind)
	}
}
