package storage

import "fmt"

// Column describes one attribute of a table.
type Column struct {
	Name string
	Kind Kind
}

// Schema is an ordered, immutable set of columns. Construct with
// NewSchema; the zero Schema has no columns.
type Schema struct {
	cols   []Column
	byName map[string]int
}

// NewSchema builds a schema from the given columns. Column names must be
// non-empty and unique.
func NewSchema(cols ...Column) (*Schema, error) {
	if len(cols) == 0 {
		return nil, fmt.Errorf("storage: schema needs at least one column")
	}
	s := &Schema{
		cols:   append([]Column(nil), cols...),
		byName: make(map[string]int, len(cols)),
	}
	for i, c := range cols {
		if c.Name == "" {
			return nil, fmt.Errorf("storage: column %d has empty name", i)
		}
		if c.Kind != KindInt64 && c.Kind != KindString {
			return nil, fmt.Errorf("storage: column %q has invalid kind %v", c.Name, c.Kind)
		}
		if _, dup := s.byName[c.Name]; dup {
			return nil, fmt.Errorf("storage: duplicate column name %q", c.Name)
		}
		s.byName[c.Name] = i
	}
	return s, nil
}

// MustSchema is NewSchema for statically known-good schemas; it panics on
// error and is intended for tests and examples.
func MustSchema(cols ...Column) *Schema {
	s, err := NewSchema(cols...)
	if err != nil {
		panic(err)
	}
	return s
}

// NumColumns returns the number of columns.
func (s *Schema) NumColumns() int { return len(s.cols) }

// Column returns the i-th column descriptor.
func (s *Schema) Column(i int) Column { return s.cols[i] }

// ColumnIndex resolves a column name to its position, or -1 if absent.
func (s *Schema) ColumnIndex(name string) int {
	i, ok := s.byName[name]
	if !ok {
		return -1
	}
	return i
}

// Validate checks that t conforms to the schema (arity and kinds).
func (s *Schema) Validate(t Tuple) error {
	if t.Len() != len(s.cols) {
		return fmt.Errorf("storage: tuple has %d values, schema has %d columns", t.Len(), len(s.cols))
	}
	for i, c := range s.cols {
		if got := t.Value(i).Kind(); got != c.Kind {
			return fmt.Errorf("storage: column %q: tuple value is %v, schema wants %v", c.Name, got, c.Kind)
		}
	}
	return nil
}

// String renders the schema as "(name KIND, ...)".
func (s *Schema) String() string {
	out := "("
	for i, c := range s.cols {
		if i > 0 {
			out += ", "
		}
		out += c.Name + " " + c.Kind.String()
	}
	return out + ")"
}
