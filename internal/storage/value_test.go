package storage

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	t.Parallel()
	if got := KindInt64.String(); got != "INTEGER" {
		t.Errorf("KindInt64.String() = %q, want INTEGER", got)
	}
	if got := KindString.String(); got != "VARCHAR" {
		t.Errorf("KindString.String() = %q, want VARCHAR", got)
	}
	if got := KindInvalid.String(); !strings.Contains(got, "INVALID") {
		t.Errorf("KindInvalid.String() = %q, want INVALID(...)", got)
	}
}

func TestValueAccessors(t *testing.T) {
	t.Parallel()
	v := Int64Value(42)
	if v.Kind() != KindInt64 || v.Int64() != 42 {
		t.Errorf("Int64Value(42) = kind %v value %d", v.Kind(), v.Int64())
	}
	s := StringValue("ORD")
	if s.Kind() != KindString || s.Str() != "ORD" {
		t.Errorf("StringValue(ORD) = kind %v value %q", s.Kind(), s.Str())
	}
	var zero Value
	if zero.IsValid() {
		t.Error("zero Value should be invalid")
	}
	if !v.IsValid() || !s.IsValid() {
		t.Error("constructed values should be valid")
	}
}

func TestValueAccessorPanics(t *testing.T) {
	t.Parallel()
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("Int64 on string", func() { StringValue("x").Int64() })
	mustPanic("Str on int", func() { Int64Value(1).Str() })
	mustPanic("encode invalid", func() { (Value{}).AppendEncode(nil) })
}

func TestValueCompare(t *testing.T) {
	t.Parallel()
	cases := []struct {
		a, b Value
		want int
	}{
		{Int64Value(1), Int64Value(2), -1},
		{Int64Value(2), Int64Value(1), 1},
		{Int64Value(7), Int64Value(7), 0},
		{Int64Value(math.MinInt64), Int64Value(math.MaxInt64), -1},
		{StringValue("a"), StringValue("b"), -1},
		{StringValue("b"), StringValue("a"), 1},
		{StringValue("FRA"), StringValue("FRA"), 0},
		{Int64Value(0), StringValue(""), -1}, // cross-kind orders by kind
		{StringValue(""), Int64Value(0), 1},
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
		if got := c.a.Equal(c.b); got != (c.want == 0) {
			t.Errorf("Equal(%v, %v) = %v, want %v", c.a, c.b, got, c.want == 0)
		}
	}
}

func TestValueString(t *testing.T) {
	t.Parallel()
	if got := Int64Value(-3).String(); got != "-3" {
		t.Errorf("Int64Value(-3).String() = %q", got)
	}
	if got := StringValue("a\"b").String(); got != `"a\"b"` {
		t.Errorf("StringValue.String() = %q", got)
	}
	if got := (Value{}).String(); got != "<invalid>" {
		t.Errorf("invalid Value String() = %q", got)
	}
}

func TestValueEncodeDecodeRoundTrip(t *testing.T) {
	t.Parallel()
	vals := []Value{
		Int64Value(0), Int64Value(-1), Int64Value(math.MaxInt64), Int64Value(math.MinInt64),
		StringValue(""), StringValue("FRA"), StringValue(strings.Repeat("x", 512)),
	}
	for _, v := range vals {
		buf := v.AppendEncode(nil)
		if len(buf) != v.EncodedSize() {
			t.Errorf("%v: encoded %d bytes, EncodedSize says %d", v, len(buf), v.EncodedSize())
		}
		got, n, err := decodeValue(v.Kind(), buf)
		if err != nil {
			t.Fatalf("decodeValue(%v): %v", v, err)
		}
		if n != len(buf) {
			t.Errorf("%v: decode consumed %d of %d bytes", v, n, len(buf))
		}
		if !got.Equal(v) {
			t.Errorf("round trip: got %v, want %v", got, v)
		}
	}
}

func TestValueDecodeErrors(t *testing.T) {
	t.Parallel()
	if _, _, err := decodeValue(KindInt64, []byte{1, 2, 3}); err == nil {
		t.Error("short INTEGER decode should fail")
	}
	if _, _, err := decodeValue(KindString, []byte{9}); err == nil {
		t.Error("short VARCHAR length decode should fail")
	}
	// Length prefix claims 5 bytes but only 2 follow.
	if _, _, err := decodeValue(KindString, []byte{5, 0, 'a', 'b'}); err == nil {
		t.Error("short VARCHAR body decode should fail")
	}
	if _, _, err := decodeValue(KindInvalid, []byte{0}); err == nil {
		t.Error("invalid kind decode should fail")
	}
}

func TestValueCompareProperties(t *testing.T) {
	t.Parallel()
	// Antisymmetry and consistency with Equal over random int pairs.
	f := func(a, b int64) bool {
		va, vb := Int64Value(a), Int64Value(b)
		return va.Compare(vb) == -vb.Compare(va) &&
			(va.Compare(vb) == 0) == (a == b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// Round trip over random strings.
	g := func(s string) bool {
		if len(s) > maxStringLen {
			s = s[:maxStringLen]
		}
		v := StringValue(s)
		got, _, err := decodeValue(KindString, v.AppendEncode(nil))
		return err == nil && got.Equal(v)
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}
