package storage

import (
	"strings"
	"testing"
)

func flightsSchema() *Schema {
	return MustSchema(
		Column{Name: "airport", Kind: KindString},
		Column{Name: "delay", Kind: KindInt64},
	)
}

func TestNewSchemaValidation(t *testing.T) {
	t.Parallel()
	if _, err := NewSchema(); err == nil {
		t.Error("empty schema should fail")
	}
	if _, err := NewSchema(Column{Name: "", Kind: KindInt64}); err == nil {
		t.Error("empty column name should fail")
	}
	if _, err := NewSchema(Column{Name: "a", Kind: KindInvalid}); err == nil {
		t.Error("invalid kind should fail")
	}
	if _, err := NewSchema(
		Column{Name: "a", Kind: KindInt64},
		Column{Name: "a", Kind: KindString},
	); err == nil {
		t.Error("duplicate column name should fail")
	}
}

func TestMustSchemaPanics(t *testing.T) {
	t.Parallel()
	defer func() {
		if recover() == nil {
			t.Error("MustSchema on bad input should panic")
		}
	}()
	MustSchema()
}

func TestSchemaAccessors(t *testing.T) {
	t.Parallel()
	s := flightsSchema()
	if s.NumColumns() != 2 {
		t.Fatalf("NumColumns = %d, want 2", s.NumColumns())
	}
	if c := s.Column(0); c.Name != "airport" || c.Kind != KindString {
		t.Errorf("Column(0) = %+v", c)
	}
	if i := s.ColumnIndex("delay"); i != 1 {
		t.Errorf("ColumnIndex(delay) = %d, want 1", i)
	}
	if i := s.ColumnIndex("missing"); i != -1 {
		t.Errorf("ColumnIndex(missing) = %d, want -1", i)
	}
	if got := s.String(); !strings.Contains(got, "airport VARCHAR") || !strings.Contains(got, "delay INTEGER") {
		t.Errorf("String() = %q", got)
	}
}

func TestSchemaValidate(t *testing.T) {
	t.Parallel()
	s := flightsSchema()
	ok := NewTuple(StringValue("ORD"), Int64Value(12))
	if err := s.Validate(ok); err != nil {
		t.Errorf("Validate(ok) = %v", err)
	}
	if err := s.Validate(NewTuple(StringValue("ORD"))); err == nil {
		t.Error("wrong arity should fail")
	}
	if err := s.Validate(NewTuple(Int64Value(1), Int64Value(2))); err == nil {
		t.Error("wrong kind should fail")
	}
}
