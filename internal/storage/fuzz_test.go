package storage

import "testing"

// FuzzDecodeTuple feeds arbitrary bytes to the tuple decoder; it must
// return an error or a valid tuple, never panic.
func FuzzDecodeTuple(f *testing.F) {
	s := MustSchema(
		Column{Name: "a", Kind: KindInt64},
		Column{Name: "s", Kind: KindString},
		Column{Name: "b", Kind: KindInt64},
	)
	good, _ := EncodeTuple(s, NewTuple(Int64Value(42), StringValue("FRA"), Int64Value(-1)), nil)
	f.Add(good)
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3})

	f.Fuzz(func(t *testing.T, data []byte) {
		tu, err := DecodeTuple(s, data)
		if err != nil {
			return
		}
		// A successful decode must round-trip to the same bytes.
		out, err := EncodeTuple(s, tu, nil)
		if err != nil {
			t.Fatalf("re-encode of decoded tuple failed: %v", err)
		}
		if string(out) != string(data) {
			t.Fatalf("round trip mismatch: %x -> %x", data, out)
		}
	})
}
