package storage

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestRIDBasics(t *testing.T) {
	t.Parallel()
	r := RID{Page: 3, Slot: 7}
	if !r.IsValid() {
		t.Error("real RID should be valid")
	}
	if r.String() != "3:7" {
		t.Errorf("String() = %q", r.String())
	}
	if InvalidRID.IsValid() {
		t.Error("InvalidRID should be invalid")
	}
	if got := InvalidRID.String(); got != "<invalid-rid>" {
		t.Errorf("InvalidRID.String() = %q", got)
	}
}

func TestRIDLess(t *testing.T) {
	t.Parallel()
	cases := []struct {
		a, b RID
		want bool
	}{
		{RID{1, 0}, RID{2, 0}, true},
		{RID{2, 0}, RID{1, 9}, false},
		{RID{1, 3}, RID{1, 4}, true},
		{RID{1, 4}, RID{1, 4}, false},
	}
	for _, c := range cases {
		if got := c.a.Less(c.b); got != c.want {
			t.Errorf("%v.Less(%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestTupleBasics(t *testing.T) {
	t.Parallel()
	tu := NewTuple(StringValue("FRA"), Int64Value(30))
	if tu.Len() != 2 {
		t.Fatalf("Len = %d", tu.Len())
	}
	if tu.Value(0).Str() != "FRA" || tu.Value(1).Int64() != 30 {
		t.Errorf("values = %v", tu)
	}
	if got := tu.String(); got != `("FRA", 30)` {
		t.Errorf("String() = %q", got)
	}
	tu2 := tu.WithValue(1, Int64Value(99))
	if tu.Value(1).Int64() != 30 {
		t.Error("WithValue mutated original")
	}
	if tu2.Value(1).Int64() != 99 {
		t.Error("WithValue did not replace")
	}
}

func TestTupleEncodeDecodeRoundTrip(t *testing.T) {
	t.Parallel()
	s := flightsSchema()
	tuples := []Tuple{
		NewTuple(StringValue("ORD"), Int64Value(0)),
		NewTuple(StringValue(""), Int64Value(-42)),
		NewTuple(StringValue(strings.Repeat("p", 512)), Int64Value(1<<40)),
	}
	for _, tu := range tuples {
		buf, err := EncodeTuple(s, tu, nil)
		if err != nil {
			t.Fatalf("EncodeTuple(%v): %v", tu, err)
		}
		if len(buf) != EncodedSize(s, tu) {
			t.Errorf("%v: encoded %d bytes, EncodedSize says %d", tu, len(buf), EncodedSize(s, tu))
		}
		got, err := DecodeTuple(s, buf)
		if err != nil {
			t.Fatalf("DecodeTuple: %v", err)
		}
		for i := 0; i < s.NumColumns(); i++ {
			if !got.Value(i).Equal(tu.Value(i)) {
				t.Errorf("column %d: got %v, want %v", i, got.Value(i), tu.Value(i))
			}
		}
	}
}

func TestTupleEncodeRejectsSchemaMismatch(t *testing.T) {
	t.Parallel()
	s := flightsSchema()
	if _, err := EncodeTuple(s, NewTuple(Int64Value(1), Int64Value(2)), nil); err == nil {
		t.Error("kind mismatch should fail")
	}
}

func TestTupleDecodeErrors(t *testing.T) {
	t.Parallel()
	s := flightsSchema()
	good, err := EncodeTuple(s, NewTuple(StringValue("ORD"), Int64Value(5)), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeTuple(s, good[:len(good)-1]); err == nil {
		t.Error("truncated tuple should fail")
	}
	if _, err := DecodeTuple(s, append(good, 0)); err == nil {
		t.Error("trailing bytes should fail")
	}
}

func TestTupleRoundTripProperty(t *testing.T) {
	t.Parallel()
	s := MustSchema(
		Column{Name: "a", Kind: KindInt64},
		Column{Name: "b", Kind: KindInt64},
		Column{Name: "c", Kind: KindInt64},
		Column{Name: "payload", Kind: KindString},
	)
	rng := rand.New(rand.NewSource(1))
	f := func(a, b, c int64, payload string) bool {
		if len(payload) > 512 {
			payload = payload[:512]
		}
		tu := NewTuple(Int64Value(a), Int64Value(b), Int64Value(c), StringValue(payload))
		buf, err := EncodeTuple(s, tu, nil)
		if err != nil {
			return false
		}
		got, err := DecodeTuple(s, buf)
		if err != nil {
			return false
		}
		for i := 0; i < 4; i++ {
			if !got.Value(i).Equal(tu.Value(i)) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
