package storage

import (
	"fmt"
	"strings"
)

// PageID identifies a page within a table's heap file. Page numbering is
// dense and starts at 0.
type PageID uint32

// InvalidPageID marks "no page".
const InvalidPageID = PageID(^uint32(0))

// RID is a record identifier: the physical address of a tuple. The Index
// Buffer stores RIDs as postings, and page counters are keyed by
// RID.Page.
type RID struct {
	Page PageID
	Slot uint16
}

// InvalidRID is the zero-meaningful sentinel RID.
var InvalidRID = RID{Page: InvalidPageID, Slot: ^uint16(0)}

// IsValid reports whether the RID addresses a real slot.
func (r RID) IsValid() bool { return r.Page != InvalidPageID }

// String renders the RID as "page:slot".
func (r RID) String() string {
	if !r.IsValid() {
		return "<invalid-rid>"
	}
	return fmt.Sprintf("%d:%d", r.Page, r.Slot)
}

// Less orders RIDs by page then slot; posting lists keep this order so
// scans touch pages sequentially.
func (r RID) Less(o RID) bool {
	if r.Page != o.Page {
		return r.Page < o.Page
	}
	return r.Slot < o.Slot
}

// Tuple is an ordered list of values conforming to some schema. Tuples
// are immutable once constructed.
type Tuple struct {
	values []Value
}

// NewTuple builds a tuple from the given values.
func NewTuple(values ...Value) Tuple {
	return Tuple{values: append([]Value(nil), values...)}
}

// Len returns the number of values.
func (t Tuple) Len() int { return len(t.values) }

// Value returns the i-th value.
func (t Tuple) Value(i int) Value { return t.values[i] }

// WithValue returns a copy of t with column i replaced by v.
func (t Tuple) WithValue(i int, v Value) Tuple {
	vals := append([]Value(nil), t.values...)
	vals[i] = v
	return Tuple{values: vals}
}

// String renders the tuple as "(v1, v2, ...)".
func (t Tuple) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, v := range t.values {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(v.String())
	}
	b.WriteByte(')')
	return b.String()
}

// EncodedSize returns the number of bytes EncodeTuple will produce for t
// under schema s.
func EncodedSize(s *Schema, t Tuple) int {
	n := 0
	for i := 0; i < t.Len(); i++ {
		n += t.Value(i).EncodedSize()
	}
	_ = s
	return n
}

// EncodeTuple appends the wire form of t to buf. The layout is the
// concatenation of each value's encoding in schema order; the schema is
// required to decode.
func EncodeTuple(s *Schema, t Tuple, buf []byte) ([]byte, error) {
	if err := s.Validate(t); err != nil {
		return nil, err
	}
	for i := 0; i < t.Len(); i++ {
		buf = t.Value(i).AppendEncode(buf)
	}
	return buf, nil
}

// DecodeTuple parses a tuple of schema s from buf. The buffer must
// contain exactly one tuple (trailing bytes are an error), matching how
// slotted pages store one tuple per slot.
func DecodeTuple(s *Schema, buf []byte) (Tuple, error) {
	values := make([]Value, s.NumColumns())
	off := 0
	for i := 0; i < s.NumColumns(); i++ {
		v, n, err := decodeValue(s.Column(i).Kind, buf[off:])
		if err != nil {
			return Tuple{}, fmt.Errorf("storage: column %q: %w", s.Column(i).Name, err)
		}
		values[i] = v
		off += n
	}
	if off != len(buf) {
		return Tuple{}, fmt.Errorf("storage: %d trailing bytes after tuple", len(buf)-off)
	}
	return Tuple{values: values}, nil
}
