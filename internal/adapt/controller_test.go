package adapt

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/index"
	"repro/internal/storage"
)

func iv(v int64) storage.Value { return storage.Int64Value(v) }

// intTable builds a single-int-column table with rows keys uniform in
// [1, domain] and a partial index covering [1, covHi].
func intTable(t *testing.T, rows int, domain, covHi int64) *engine.Table {
	t.Helper()
	eng := engine.New(engine.Config{Space: core.Config{IMax: 5000, P: 1000}})
	schema := storage.MustSchema(
		storage.Column{Name: "k", Kind: storage.KindInt64},
		storage.Column{Name: "pad", Kind: storage.KindString},
	)
	tb, err := eng.CreateTable("t", schema)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	pad := strings.Repeat("a", 300)
	for i := 0; i < rows; i++ {
		tu := storage.NewTuple(iv(1+rng.Int63n(domain)), storage.StringValue(pad))
		if _, err := tb.Insert(tu); err != nil {
			t.Fatal(err)
		}
	}
	if err := tb.CreatePartialIndex(0, index.IntRange(1, covHi)); err != nil {
		t.Fatal(err)
	}
	return tb
}

func TestNewRequiresIndex(t *testing.T) {
	eng := engine.New(engine.Config{})
	schema := storage.MustSchema(storage.Column{Name: "k", Kind: storage.KindInt64})
	tb, err := eng.CreateTable("t", schema)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(tb, 0, Policy{}); err == nil {
		t.Error("controller without an index should fail")
	}
}

func TestNoAdaptationWhileHitting(t *testing.T) {
	tb := intTable(t, 3000, 10000, 2000)
	c, err := New(tb, 0, Policy{Window: 30, MissRate: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for q := 0; q < 100; q++ {
		_, _, adapted, err := c.Query(iv(1 + rng.Int63n(2000))) // always covered
		if err != nil {
			t.Fatal(err)
		}
		if adapted {
			t.Fatal("adapted under an all-hit workload")
		}
	}
	if c.Stats().Adaptations != 0 || c.Stats().Misses != 0 {
		t.Errorf("stats = %+v", c.Stats())
	}
}

func TestAdaptsToShiftedHotRange(t *testing.T) {
	tb := intTable(t, 3000, 10000, 2000)
	c, err := New(tb, 0, Policy{Window: 30, MissRate: 0.7, BucketWidth: 500, TopK: 4})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	// The workload shifts entirely to [7000, 7999] — uncovered.
	adaptedAt := -1
	for q := 0; q < 120; q++ {
		_, _, adapted, err := c.Query(iv(7000 + rng.Int63n(1000)))
		if err != nil {
			t.Fatal(err)
		}
		if adapted && adaptedAt == -1 {
			adaptedAt = q
		}
	}
	if adaptedAt == -1 {
		t.Fatal("controller never adapted")
	}
	// The control loop delay: adaptation needs a full window of misses.
	if adaptedAt < 29 {
		t.Errorf("adapted at query %d, before the window filled", adaptedAt)
	}
	if c.Stats().Adaptations != 1 {
		t.Errorf("adaptations = %d, want exactly 1 (hysteresis)", c.Stats().Adaptations)
	}
	// The new coverage serves the hot range.
	ix := tb.Index(0)
	if !ix.Covers(iv(7500)) {
		t.Errorf("adapted coverage %s does not cover the hot range", ix.Coverage())
	}
	_, stats, err := tb.QueryEqual(0, iv(7123))
	if err != nil {
		t.Fatal(err)
	}
	if !stats.PartialHit {
		t.Error("post-adaptation query should hit")
	}
}

func TestAdaptsToTwoHotRegions(t *testing.T) {
	tb := intTable(t, 3000, 10000, 1000)
	c, err := New(tb, 0, Policy{Window: 40, MissRate: 0.6, BucketWidth: 500, TopK: 4})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for q := 0; q < 150; q++ {
		var key int64
		if rng.Intn(2) == 0 {
			key = 4000 + rng.Int63n(500)
		} else {
			key = 8000 + rng.Int63n(500)
		}
		if _, _, _, err := c.Query(iv(key)); err != nil {
			t.Fatal(err)
		}
	}
	if c.Stats().Adaptations == 0 {
		t.Fatal("never adapted")
	}
	ix := tb.Index(0)
	if !ix.Covers(iv(4100)) || !ix.Covers(iv(8100)) {
		t.Errorf("coverage %s misses a hot region", ix.Coverage())
	}
	// The cold gap between the regions stays uncovered (partial!).
	if ix.Covers(iv(6000)) {
		t.Errorf("coverage %s covers the cold gap", ix.Coverage())
	}
}

func TestAdaptsStringColumnToSetCoverage(t *testing.T) {
	eng := engine.New(engine.Config{Space: core.Config{IMax: 5000, P: 1000}})
	schema := storage.MustSchema(
		storage.Column{Name: "airport", Kind: storage.KindString},
		storage.Column{Name: "pad", Kind: storage.KindString},
	)
	tb, err := eng.CreateTable("t", schema)
	if err != nil {
		t.Fatal(err)
	}
	airports := []string{"ORD", "JFK", "FRA", "MUC", "HEL"}
	pad := strings.Repeat("b", 200)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 1500; i++ {
		tu := storage.NewTuple(
			storage.StringValue(airports[rng.Intn(len(airports))]),
			storage.StringValue(pad),
		)
		if _, err := tb.Insert(tu); err != nil {
			t.Fatal(err)
		}
	}
	if err := tb.CreatePartialIndex(0, index.NewSetCoverage(
		storage.StringValue("ORD"), storage.StringValue("JFK"))); err != nil {
		t.Fatal(err)
	}
	c, err := New(tb, 0, Policy{Window: 20, MissRate: 0.7, TopK: 2})
	if err != nil {
		t.Fatal(err)
	}
	// German reports take over.
	for q := 0; q < 60; q++ {
		key := "FRA"
		if q%2 == 1 {
			key = "MUC"
		}
		if _, _, _, err := c.Query(storage.StringValue(key)); err != nil {
			t.Fatal(err)
		}
	}
	if c.Stats().Adaptations == 0 {
		t.Fatal("never adapted")
	}
	ix := tb.Index(0)
	if !ix.Covers(storage.StringValue("FRA")) || !ix.Covers(storage.StringValue("MUC")) {
		t.Errorf("coverage %s misses the hot airports", ix.Coverage())
	}
}

func TestHysteresisPreventsThrash(t *testing.T) {
	tb := intTable(t, 2000, 10000, 1000)
	c, err := New(tb, 0, Policy{Window: 20, MissRate: 0.5, MinGap: 100, BucketWidth: 1000, TopK: 1})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	// Alternate between two uncovered ranges every query — a pathological
	// oscillation. MinGap must bound the adaptations.
	for q := 0; q < 200; q++ {
		key := int64(5000)
		if q%2 == 1 {
			key = 9000
		}
		if _, _, _, err := c.Query(iv(key + rng.Int63n(500))); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.Stats().Adaptations; got > 2 {
		t.Errorf("adaptations = %d, hysteresis should keep it <= 2", got)
	}
}

// TestBufferBridgesControllerGap is the end-to-end story: with the Index
// Buffer on, the expensive window between shift and adaptation is cheap.
func TestBufferBridgesControllerGap(t *testing.T) {
	tb := intTable(t, 3000, 10000, 2000)
	c, err := New(tb, 0, Policy{Window: 40, MissRate: 0.8, BucketWidth: 500})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	var gapCosts []int
	adapted := false
	for q := 0; q < 120 && !adapted; q++ {
		_, stats, a, err := c.Query(iv(7000 + rng.Int63n(1000)))
		if err != nil {
			t.Fatal(err)
		}
		adapted = a
		if q >= 2 && !a {
			gapCosts = append(gapCosts, stats.PagesRead)
		}
	}
	if !adapted {
		t.Fatal("never adapted")
	}
	// From the third query on, the buffer has the hot pages indexed:
	// mean gap cost must be far below a full scan.
	total := 0
	for _, c := range gapCosts {
		total += c
	}
	mean := float64(total) / float64(len(gapCosts))
	if mean > float64(tb.NumPages())/4 {
		t.Errorf("gap cost %.1f pages/query of %d-page table; buffer did not bridge", mean, tb.NumPages())
	}
}
