// Package adapt implements the disk-side half of the paper's vision of
// "self-tuned adaptive partial indexing" (§VII): an online controller
// that watches one column's query stream, detects a sustained workload
// shift through its miss rate, and redefines the partial index to cover
// the newly hot regions. The Index Buffer (internal/core) is the fast,
// volatile half that bridges the gap while this deliberately slow
// control loop converges — run together, they reproduce the paper's
// architecture end to end (see the bridge experiment and the selftuning
// example).
package adapt

import (
	"fmt"
	"sort"

	"repro/internal/engine"
	"repro/internal/exec"
	"repro/internal/index"
	"repro/internal/storage"
)

// Policy configures the control loop.
type Policy struct {
	// Window is the number of recent queries monitored. Zero means 64.
	Window int
	// MissRate trips adaptation when the miss fraction over the window
	// reaches it. Zero means 0.7.
	MissRate float64
	// MinGap is the minimum number of queries between adaptations
	// (hysteresis, so one shift causes one rebuild). Zero means Window.
	MinGap int
	// BucketWidth groups integer keys into histogram buckets when
	// choosing the new coverage. Zero means 1000.
	BucketWidth int64
	// TopK is how many hottest buckets (or, for string columns, exact
	// values) the new coverage includes. Zero means 4.
	TopK int
}

func (p Policy) withDefaults() Policy {
	if p.Window <= 0 {
		p.Window = 64
	}
	if p.MissRate <= 0 {
		p.MissRate = 0.7
	}
	if p.MinGap <= 0 {
		p.MinGap = p.Window
	}
	if p.BucketWidth <= 0 {
		p.BucketWidth = 1000
	}
	if p.TopK <= 0 {
		p.TopK = 4
	}
	return p
}

// Stats counts controller activity.
type Stats struct {
	Queries     uint64
	Misses      uint64
	Adaptations uint64
}

// observation is one monitored query.
type observation struct {
	key    storage.Value
	missed bool
}

// Controller adapts one column's partial index. Not safe for concurrent
// use; serialize with the query stream it observes.
type Controller struct {
	table  *engine.Table
	column int
	policy Policy

	ring     []observation
	next     int
	filled   int
	sinceAdp int

	stats Stats
}

// New creates a controller for the column's partial index, which must
// already exist.
func New(table *engine.Table, column int, policy Policy) (*Controller, error) {
	if table.Index(column) == nil {
		return nil, fmt.Errorf("adapt: column %d of %s has no partial index", column, table.Name())
	}
	p := policy.withDefaults()
	return &Controller{
		table:    table,
		column:   column,
		policy:   p,
		ring:     make([]observation, p.Window),
		sinceAdp: p.MinGap, // allow an immediate first adaptation
	}, nil
}

// Stats returns a snapshot of the counters.
func (c *Controller) Stats() Stats { return c.stats }

// Query answers column = key through the engine and feeds the
// observation to the control loop, adapting the index when it trips.
// adapted reports whether this query triggered a redefinition (whose
// rebuild cost the caller may want to charge to it).
func (c *Controller) Query(key storage.Value) (matches []exec.Match, stats exec.QueryStats, adapted bool, err error) {
	matches, stats, err = c.table.QueryEqual(c.column, key)
	if err != nil {
		return nil, stats, false, err
	}
	adapted, err = c.Observe(key, stats.PartialHit)
	return matches, stats, adapted, err
}

// Observe records one query outcome (for callers that run queries
// themselves) and adapts the index when the policy trips.
func (c *Controller) Observe(key storage.Value, hit bool) (adapted bool, err error) {
	c.stats.Queries++
	if !hit {
		c.stats.Misses++
	}
	c.ring[c.next] = observation{key: key, missed: !hit}
	c.next = (c.next + 1) % len(c.ring)
	if c.filled < len(c.ring) {
		c.filled++
	}
	c.sinceAdp++

	if c.filled < len(c.ring) || c.sinceAdp < c.policy.MinGap {
		return false, nil
	}
	misses := 0
	for i := 0; i < c.filled; i++ {
		if c.ring[i].missed {
			misses++
		}
	}
	if float64(misses)/float64(c.filled) < c.policy.MissRate {
		return false, nil
	}

	cov, err := c.chooseCoverage()
	if err != nil {
		return false, err
	}
	if err := c.table.RedefineIndex(c.column, cov); err != nil {
		return false, err
	}
	c.stats.Adaptations++
	c.sinceAdp = 0
	// Restart monitoring: the old window described the old coverage.
	c.filled = 0
	c.next = 0
	return true, nil
}

// chooseCoverage derives the new defining predicate from the missed keys
// in the window: integer keys are grouped into BucketWidth-wide buckets
// and the TopK hottest buckets become covered ranges; string keys are
// covered individually (TopK most-missed values).
func (c *Controller) chooseCoverage() (index.Coverage, error) {
	type bucket struct {
		key   storage.Value // representative (strings) or bucket base (ints)
		count int
	}
	counts := map[int64]int{}  // int buckets
	values := map[string]int{} // string values
	isString := false
	for i := 0; i < c.filled; i++ {
		o := c.ring[i]
		if !o.missed {
			continue
		}
		switch o.key.Kind() {
		case storage.KindInt64:
			counts[o.key.Int64()/c.policy.BucketWidth]++
		case storage.KindString:
			isString = true
			values[o.key.Str()]++
		}
	}

	if isString {
		var items []bucket
		for v, n := range values {
			items = append(items, bucket{key: storage.StringValue(v), count: n})
		}
		sort.Slice(items, func(i, j int) bool {
			if items[i].count != items[j].count {
				return items[i].count > items[j].count
			}
			return items[i].key.Compare(items[j].key) < 0
		})
		if len(items) > c.policy.TopK {
			items = items[:c.policy.TopK]
		}
		vals := make([]storage.Value, len(items))
		for i, it := range items {
			vals[i] = it.key
		}
		return index.NewSetCoverage(vals...), nil
	}

	type ib struct {
		base  int64
		count int
	}
	var items []ib
	for b, n := range counts {
		items = append(items, ib{base: b, count: n})
	}
	if len(items) == 0 {
		return nil, fmt.Errorf("adapt: window tripped with no missed keys")
	}
	sort.Slice(items, func(i, j int) bool {
		if items[i].count != items[j].count {
			return items[i].count > items[j].count
		}
		return items[i].base < items[j].base
	})
	if len(items) > c.policy.TopK {
		items = items[:c.policy.TopK]
	}
	// Merge adjacent buckets into ranges.
	bases := make([]int64, len(items))
	for i, it := range items {
		bases[i] = it.base
	}
	sort.Slice(bases, func(i, j int) bool { return bases[i] < bases[j] })
	var union index.UnionCoverage
	w := c.policy.BucketWidth
	start := bases[0]
	prev := bases[0]
	for _, b := range bases[1:] {
		if b == prev+1 {
			prev = b
			continue
		}
		union = append(union, index.IntRange(start*w, (prev+1)*w-1))
		start, prev = b, b
	}
	union = append(union, index.IntRange(start*w, (prev+1)*w-1))
	if len(union) == 1 {
		return union[0], nil
	}
	return union, nil
}
