package engine

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/index"
	"repro/internal/trace"
)

// runMixedQueries drives hits (covered keys) and misses (uncovered keys,
// triggering indexing scans) through the table so every monitor has data.
func runMixedQueries(t *testing.T, tb *Table) {
	t.Helper()
	for k := int64(1); k <= 10; k++ {
		if _, _, err := tb.QueryEqual(0, iv(k)); err != nil { // covered: hit
			t.Fatal(err)
		}
	}
	for k := int64(60); k <= 70; k++ {
		if _, _, err := tb.QueryEqual(0, iv(k)); err != nil { // miss: indexing scan
			t.Fatal(err)
		}
	}
}

func TestWriteMetrics(t *testing.T) {
	e, tb := newABC(t, Config{}, 2000, 100)
	if err := tb.CreatePartialIndex(0, index.IntRange(1, 50)); err != nil {
		t.Fatal(err)
	}
	runMixedQueries(t, tb)

	var sb strings.Builder
	if err := e.WriteMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	for _, want := range []string{
		"# TYPE aib_shared_scan_misses_total counter",
		"aib_shared_scan_misses_total 11",
		"aib_shared_scan_passes_total 11",
		"# TYPE aib_space_entries_used gauge",
		`aib_buffer_entries{buffer="flights.a",tenant=""}`,
		`aib_buffer_benefit{buffer="flights.a",tenant=""}`,
		`aib_queries_total{table="flights",column="a"} 21`,
		`aib_query_hits_total{table="flights",column="a"} 10`,
		"# TYPE aib_query_latency_microseconds summary",
		`aib_query_latency_microseconds{mechanism="hit",quantile="0.5"}`,
		`aib_query_latency_microseconds{mechanism="indexing-scan",quantile="0.99"}`,
		`aib_query_latency_microseconds_count{mechanism="hit"} 10`,
		`aib_query_latency_microseconds_count{mechanism="indexing-scan"} 11`,
		"aib_trace_spans_enabled 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %q\n---\n%s", want, out)
		}
	}
}

func TestMetricsLabelEscaping(t *testing.T) {
	if got := escapeLabel("a\\b\"c\nd"); got != `a\\b\"c\nd` {
		t.Errorf("escapeLabel = %q", got)
	}
}

func TestSpansThroughEngine(t *testing.T) {
	e, tb := newABC(t, Config{}, 2000, 100)
	if err := tb.CreatePartialIndex(0, index.IntRange(1, 50)); err != nil {
		t.Fatal(err)
	}
	e.Tracer().EnableSpans(true)
	runMixedQueries(t, tb)

	kinds := make(map[string]int)
	var target string
	for _, s := range e.Tracer().Spans(1 << 20) {
		kinds[s.Kind]++
		if s.Kind == trace.SpanMissAdmit {
			target = s.Target
		}
	}
	if kinds[trace.SpanMissAdmit] != 11 {
		t.Errorf("miss-admit spans = %d, want 11", kinds[trace.SpanMissAdmit])
	}
	if kinds[trace.SpanScanLead] != 11 {
		t.Errorf("scan-lead spans = %d, want 11", kinds[trace.SpanScanLead])
	}
	// Each indexing scan selects at least one page and completes it.
	if kinds[trace.SpanPageSelect] == 0 {
		t.Error("no page-select spans recorded")
	}
	if kinds[trace.SpanPageComplete] == 0 {
		t.Error("no page-complete spans recorded")
	}
	if target != "flights.a" {
		t.Errorf("miss-admit target = %q, want flights.a", target)
	}
	if e.Tracer().SpanCount() == 0 {
		t.Error("SpanCount is zero after recorded spans")
	}
}

// TestSharedScanRecordsFollowers checks that queries riding another
// query's scan land in the shared-follower latency bucket while the
// leader is recorded under its real mechanism.
func TestSharedScanRecordsFollowers(t *testing.T) {
	e, tb := newABC(t, Config{}, 4000, 100)
	if err := tb.CreatePartialIndex(0, index.IntRange(1, 10)); err != nil {
		t.Fatal(err)
	}
	const n = 8
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(k int64) {
			defer wg.Done()
			if _, _, err := tb.QueryEqual(0, iv(50+k)); err != nil {
				t.Error(err)
			}
		}(int64(i))
	}
	wg.Wait()

	byMech := make(map[string]int)
	for _, l := range e.Tracer().LatencyStats() {
		byMech[l.Mechanism] = l.Count
	}
	scans := int(e.SharedScanStats().Scans)
	if byMech["indexing-scan"] != scans {
		t.Errorf("indexing-scan latencies = %d, want %d (one per pass)",
			byMech["indexing-scan"], scans)
	}
	if byMech["shared-follower"] != n-scans {
		t.Errorf("shared-follower latencies = %d, want %d",
			byMech["shared-follower"], n-scans)
	}
}

// TestTracerStressWithQueries races real queries against every tracer
// and metrics reader under -race: Recent, Aggregates, LatencyStats,
// Spans, Reset, EnableSpans and WriteMetrics all run while indexing
// scans mutate the buffers and record events.
func TestTracerStressWithQueries(t *testing.T) {
	e, tb := newABC(t, Config{}, 2000, 200)
	if err := tb.CreatePartialIndex(0, index.IntRange(1, 20)); err != nil {
		t.Fatal(err)
	}
	e.Tracer().EnableSpans(true)

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				k := int64(1 + (g*31+i*7)%200)
				if _, _, err := tb.QueryEqual(0, iv(k)); err != nil {
					t.Error(err)
				}
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var sink strings.Builder
			for i := 0; i < 50; i++ {
				switch i % 6 {
				case 0:
					e.Tracer().Recent(16)
				case 1:
					e.Tracer().Aggregates()
				case 2:
					e.Tracer().LatencyStats()
				case 3:
					e.Tracer().Spans(32)
				case 4:
					sink.Reset()
					if err := e.WriteMetrics(&sink); err != nil {
						t.Error(err)
					}
				case 5:
					if g == 0 && i == 29 {
						e.Tracer().Reset()
					}
				}
			}
		}(g)
	}
	wg.Wait()
}
