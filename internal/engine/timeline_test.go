package engine

import (
	"bytes"
	"fmt"
	"math/rand"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/storage"
	"repro/internal/timeline"
)

// TestTimelineThroughEngine drives the paper's mixed workload and checks
// the timeline subsystem end to end: query-boundary samples accumulate,
// coverage ramps as indexing scans complete pages, the mechanism mix
// matches the workload, and the convergence detector issues a verdict.
func TestTimelineThroughEngine(t *testing.T) {
	e, tb := newABC(t, Config{}, 2000, 100)
	if err := tb.CreatePartialIndex(0, index.IntRange(1, 50)); err != nil {
		t.Fatal(err)
	}
	e.Timeline().Enable(true)
	runMixedQueries(t, tb)

	all := e.Timeline().Series()
	if len(all) != 1 {
		t.Fatalf("series = %d, want 1", len(all))
	}
	s := all[0]
	if s.Buffer != "flights.a" || s.Table != "flights" || s.Column != "a" {
		t.Fatalf("series identity = %+v", s)
	}
	if len(s.Samples) < 21 {
		t.Fatalf("samples = %d, want >= 21 (one per query)", len(s.Samples))
	}
	last := s.Samples[len(s.Samples)-1]
	if last.Hits != 10 {
		t.Errorf("hits = %d, want 10", last.Hits)
	}
	if last.IndexingScans != 11 {
		t.Errorf("indexing scans = %d, want 11", last.IndexingScans)
	}
	// The miss range [60, 70] is repeatedly scanned, so coverage must
	// grow from the first miss sample to the last.
	first := s.Samples[0]
	if last.Coverage <= first.Coverage {
		t.Errorf("coverage did not grow: %g -> %g", first.Coverage, last.Coverage)
	}
	if last.TotalPages == 0 || last.Entries == 0 || last.Bytes == 0 {
		t.Errorf("occupancy not sampled: %+v", last)
	}

	convs := e.Convergence()
	if len(convs) != 1 {
		t.Fatalf("convergence verdicts = %d, want 1", len(convs))
	}
	c := convs[0]
	if c.Buffer != "flights.a" || c.Queries != 21 {
		t.Errorf("verdict = %+v", c)
	}
	if c.MaxCoverage != last.Coverage {
		t.Errorf("max coverage %g != last coverage %g (monotone workload)", c.MaxCoverage, last.Coverage)
	}
}

// TestTimelineDisabledByDefaultInEngine pins the opt-in contract: a
// fresh engine answers queries without taking a single sample.
func TestTimelineDisabledByDefaultInEngine(t *testing.T) {
	e, tb := newABC(t, Config{}, 500, 50)
	if err := tb.CreatePartialIndex(0, index.IntRange(1, 20)); err != nil {
		t.Fatal(err)
	}
	for k := int64(1); k <= 30; k++ {
		if _, _, err := tb.QueryEqual(0, iv(k)); err != nil {
			t.Fatal(err)
		}
	}
	if n := e.Timeline().SampleCount(); n != 0 {
		t.Errorf("disabled timeline took %d samples", n)
	}
	if len(e.Convergence()) != 0 {
		t.Error("disabled timeline produced convergence verdicts")
	}
}

// TestTimelineDisplacementResample forces displacement with a tight
// space limit across two indexed columns and checks that the victim
// buffer's churn reaches its series — including the event-driven
// resample taken at the next query boundary.
func TestTimelineDisplacementResample(t *testing.T) {
	cfg := Config{Space: core.Config{
		IMax: 20, P: 5, K: 2, SpaceLimit: 400,
		Rand: rand.New(rand.NewSource(3)),
	}}
	e, tb := newABC(t, cfg, 1500, 60)
	for col, hi := range map[int]int64{0: 20, 1: 30} {
		if err := tb.CreatePartialIndex(col, index.IntRange(1, hi)); err != nil {
			t.Fatal(err)
		}
	}
	e.Timeline().Enable(true)

	// Alternate misses on both columns so each column's scans displace
	// the other's partitions once the 400-entry limit binds.
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 120; i++ {
		col := i % 2
		if _, _, err := tb.QueryEqual(col, iv(35+rng.Int63n(25))); err != nil {
			t.Fatal(err)
		}
	}
	if dropped := e.Space().Stats().PartitionsDropped; dropped == 0 {
		t.Fatal("workload produced no displacement; test premise broken")
	}

	var displacements uint64
	resamples := 0
	for _, s := range e.Timeline().Series() {
		for _, sm := range s.Samples {
			if sm.Event == timeline.EventResample {
				resamples++
			}
		}
		if n := len(s.Samples); n > 0 {
			displacements += s.Samples[n-1].Displacements
		}
	}
	if displacements == 0 {
		t.Error("displacement churn never reached the timeline")
	}
	if resamples == 0 {
		t.Error("no resample events despite displacement")
	}
}

// TestTimelineShiftingWorkloadReset reproduces the shifting-workload
// false positive: a column converges, the workload shifts and the
// partial index is redefined for the new range (dropping the buffer),
// and the detector must open a fresh episode — not keep reporting the
// dead buffer's "converged" verdict with a regression flag. The second
// convergence then gets its own crossing ordinal.
func TestTimelineShiftingWorkloadReset(t *testing.T) {
	e, tb := newABC(t, Config{}, 1200, 120)
	if err := tb.CreatePartialIndex(0, index.IntRange(1, 30)); err != nil {
		t.Fatal(err)
	}
	e.Timeline().Enable(true)

	// Phase 1: misses in [31, 60]; the default I^MAX covers the whole
	// table, so the first indexing scan converges the buffer.
	for k := int64(31); k <= 40; k++ {
		if _, _, err := tb.QueryEqual(0, iv(k)); err != nil {
			t.Fatal(err)
		}
	}
	c := e.Convergence()[0]
	if !c.Achieved || c.Resets != 0 {
		t.Fatalf("phase 1 did not converge: %+v", c)
	}
	firstCrossing := c.QueriesToTarget

	// The workload shifts: redefine the index for the new hot range.
	// RedefineIndex drops and recreates the buffer from scratch.
	if err := tb.RedefineIndex(0, index.IntRange(61, 90)); err != nil {
		t.Fatal(err)
	}
	c = e.Convergence()[0]
	if c.Achieved || c.Regressed {
		t.Fatalf("stale converged verdict survived the shift: %+v", c)
	}
	if c.Resets != 1 {
		t.Errorf("Resets = %d, want 1", c.Resets)
	}

	// Phase 2: misses in [91, 120] re-converge the fresh buffer; the
	// new crossing ordinal must postdate the first episode's.
	for k := int64(91); k <= 100; k++ {
		if _, _, err := tb.QueryEqual(0, iv(k)); err != nil {
			t.Fatal(err)
		}
	}
	c = e.Convergence()[0]
	if !c.Achieved {
		t.Fatalf("phase 2 did not re-converge: %+v", c)
	}
	if c.QueriesToTarget <= firstCrossing {
		t.Errorf("second crossing at query %d, not after the first (%d)", c.QueriesToTarget, firstCrossing)
	}
	if c.Regressed {
		t.Errorf("re-converged column still flagged regressed: %+v", c)
	}
}

// TestMetricsTimelineFamilies checks the new exposition families are
// present and coherent once the timeline has data.
func TestMetricsTimelineFamilies(t *testing.T) {
	e, tb := newABC(t, Config{}, 2000, 100)
	if err := tb.CreatePartialIndex(0, index.IntRange(1, 50)); err != nil {
		t.Fatal(err)
	}
	e.Timeline().Enable(true)
	runMixedQueries(t, tb)

	var sb strings.Builder
	if err := e.WriteMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`aib_buffer_bytes{buffer="flights.a",tenant=""}`,
		`aib_coverage_ratio{buffer="flights.a",tenant=""}`,
		`aib_convergence_achieved{buffer="flights.a",target="0.95"}`,
		"aib_timeline_enabled 1",
		"# TYPE aib_timeline_samples_total counter",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
	if strings.Contains(out, "aib_timeline_samples_total 0\n") {
		t.Error("sample counter still zero after sampled queries")
	}
}

// Prometheus text exposition v0.0.4 line shapes for the lint below.
var (
	helpRe   = regexp.MustCompile(`^# HELP ([a-zA-Z_:][a-zA-Z0-9_:]*) (.+)$`)
	typeRe   = regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|summary|histogram|untyped)$`)
	sampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{([^}]*)\})? (\S+)$`)
	labelRe  = regexp.MustCompile(`^([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\\\|\\"|\\n)*)"$`)
)

// lintExposition is a strict structural parser for WriteMetrics output:
// every sample must follow a HELP+TYPE preamble for its family, no
// family may be declared twice, samples of one family must be
// contiguous, label syntax must be valid, and values must parse.
// Summary families also own their _sum and _count series.
func lintExposition(t *testing.T, out string) {
	t.Helper()
	declared := map[string]string{} // family -> type
	helped := map[string]bool{}
	current := "" // family whose sample block we are inside
	for i, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		lineNo := i + 1
		switch {
		case strings.HasPrefix(line, "# HELP "):
			mm := helpRe.FindStringSubmatch(line)
			if mm == nil {
				t.Fatalf("line %d: malformed HELP: %q", lineNo, line)
			}
			if helped[mm[1]] {
				t.Errorf("line %d: duplicate HELP for family %s", lineNo, mm[1])
			}
			helped[mm[1]] = true
		case strings.HasPrefix(line, "# TYPE "):
			mm := typeRe.FindStringSubmatch(line)
			if mm == nil {
				t.Fatalf("line %d: malformed TYPE: %q", lineNo, line)
			}
			fam := mm[1]
			if _, dup := declared[fam]; dup {
				t.Errorf("line %d: duplicate TYPE for family %s", lineNo, fam)
			}
			if !helped[fam] {
				t.Errorf("line %d: TYPE for %s without preceding HELP", lineNo, fam)
			}
			declared[fam] = mm[2]
			current = fam
		case strings.HasPrefix(line, "#"):
			t.Errorf("line %d: unexpected comment %q", lineNo, line)
		default:
			mm := sampleRe.FindStringSubmatch(line)
			if mm == nil {
				t.Fatalf("line %d: malformed sample: %q", lineNo, line)
			}
			name, labels, value := mm[1], mm[3], mm[4]
			fam := name
			if typ, ok := declared[fam]; !ok || typ == "summary" {
				// _sum/_count belong to the summary family that declared
				// them; a bare unknown name is an undeclared family.
				for _, suffix := range []string{"_sum", "_count"} {
					base := strings.TrimSuffix(name, suffix)
					if base != name && declared[base] == "summary" {
						fam = base
						break
					}
				}
			}
			if _, ok := declared[fam]; !ok {
				t.Errorf("line %d: sample %s has no TYPE declaration", lineNo, name)
				continue
			}
			if fam != current {
				t.Errorf("line %d: sample of family %s outside its contiguous block (current %s)", lineNo, fam, current)
			}
			if labels != "" {
				for _, pair := range splitLabels(labels) {
					if !labelRe.MatchString(pair) {
						t.Errorf("line %d: bad label syntax %q", lineNo, pair)
					}
				}
			}
			if _, err := strconv.ParseFloat(value, 64); err != nil {
				t.Errorf("line %d: unparseable value %q: %v", lineNo, value, err)
			}
		}
	}
	if len(declared) == 0 {
		t.Fatal("exposition declared no families at all")
	}
}

// splitLabels splits a label block on commas that are outside quoted
// values (label values may contain escaped quotes, never raw commas in
// our writer, but the splitter stays escape-aware regardless).
func splitLabels(s string) []string {
	var out []string
	var cur strings.Builder
	inQuotes, escaped := false, false
	for _, r := range s {
		switch {
		case escaped:
			escaped = false
			cur.WriteRune(r)
		case r == '\\':
			escaped = true
			cur.WriteRune(r)
		case r == '"':
			inQuotes = !inQuotes
			cur.WriteRune(r)
		case r == ',' && !inQuotes:
			out = append(out, cur.String())
			cur.Reset()
		default:
			cur.WriteRune(r)
		}
	}
	if cur.Len() > 0 {
		out = append(out, cur.String())
	}
	return out
}

// TestMetricsExpositionLint runs the strict parser over a fully loaded
// exposition — every monitor populated, spans and timeline on, and a
// table name exercising every escapeLabel case.
func TestMetricsExpositionLint(t *testing.T) {
	e, tb := newABC(t, Config{}, 2000, 100)
	if err := tb.CreatePartialIndex(0, index.IntRange(1, 50)); err != nil {
		t.Fatal(err)
	}
	// A second table whose name needs escaping in every label position.
	nasty, err := e.CreateTable("we\"ird\\ta\nble", tb.schema)
	if err != nil {
		t.Fatal(err)
	}
	if err := nasty.CreatePartialIndex(1, index.IntRange(1, 10)); err != nil {
		t.Fatal(err)
	}
	e.Tracer().EnableSpans(true)
	e.Timeline().Enable(true)
	runMixedQueries(t, tb)
	if _, _, err := nasty.QueryEqual(1, iv(5)); err != nil {
		t.Fatal(err)
	}

	var sb strings.Builder
	if err := e.WriteMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lintExposition(t, out)
	if !strings.Contains(out, `table="we\"ird\\ta\nble"`) {
		t.Error("escaped table name missing from exposition")
	}
}

// TestTelemetrySinkThroughEngine checks SetTelemetrySink end to end:
// samples and spans stream as decodable JSONL, and detaching stops the
// stream without disabling recording.
func TestTelemetrySinkThroughEngine(t *testing.T) {
	e, tb := newABC(t, Config{}, 2000, 100)
	if err := tb.CreatePartialIndex(0, index.IntRange(1, 50)); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	sink := timeline.NewSink(&out)
	e.SetTelemetrySink(sink)
	if !e.Tracer().SpansEnabled() || !e.Timeline().Enabled() {
		t.Fatal("SetTelemetrySink did not enable recording")
	}
	runMixedQueries(t, tb)

	st := sink.Stats()
	if st.Errors != 0 || st.Lines == 0 {
		t.Fatalf("sink stats = %+v", st)
	}
	samples, spans := 0, 0
	n, err := timeline.ScanRecords(bytes.NewReader(out.Bytes()),
		func(rec timeline.SampleRecord) error {
			if rec.Buffer == "" {
				return fmt.Errorf("sample without buffer: %+v", rec)
			}
			samples++
			return nil
		},
		func(rec timeline.SpanRecord) error {
			if rec.Kind == "" {
				return fmt.Errorf("span without kind: %+v", rec)
			}
			spans++
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if uint64(n) != st.Lines {
		t.Errorf("decoded %d records, sink wrote %d", n, st.Lines)
	}
	if samples < 21 || spans == 0 {
		t.Errorf("decoded %d samples, %d spans", samples, spans)
	}

	// Detach: recording continues, stream does not.
	e.SetTelemetrySink(nil)
	lines := st.Lines
	runMixedQueries(t, tb)
	if sink.Stats().Lines != lines {
		t.Error("sink still receiving after detach")
	}
	if !e.Timeline().Enabled() {
		t.Error("detach disabled the timeline")
	}
}

// TestMetricsWALFamiliesLint extends the strict exposition lint to a
// WAL-backed engine: the aib_wal_* / aib_checkpoint_* / aib_recovery_*
// families must parse cleanly, and the fsync summary's count must equal
// the writer's own sync counter (they are bumped at the same sites).
func TestMetricsWALFamiliesLint(t *testing.T) {
	e := New(crashConfig(t.TempDir()))
	defer e.Close()
	schema := storage.MustSchema(storage.Column{Name: "a", Kind: storage.KindInt64})
	tb, err := e.CreateTable("t", schema)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 64; i++ {
		if _, err := tb.Insert(storage.NewTuple(storage.Int64Value(i % 10))); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	var sb strings.Builder
	if err := e.WriteMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lintExposition(t, out)
	for _, want := range []string{
		"# TYPE aib_wal_appends_total counter",
		"# TYPE aib_wal_syncs_total counter",
		"# TYPE aib_wal_fsync_seconds summary",
		"# TYPE aib_wal_commit_batch_records summary",
		"aib_wal_sync_error 0",
		"# TYPE aib_checkpoint_completed_total counter",
		"aib_checkpoint_age_seconds",
		"aib_recovery_redo_records 0",
		"# TYPE aib_flight_enabled gauge",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("WAL exposition missing %q", want)
		}
	}

	tel, ok := e.WALTelemetry()
	if !ok {
		t.Fatal("WAL-backed engine has no telemetry")
	}
	countRe := regexp.MustCompile(`(?m)^aib_wal_fsync_seconds_count (\d+)$`)
	m := countRe.FindStringSubmatch(out)
	if m == nil {
		t.Fatal("no aib_wal_fsync_seconds_count sample")
	}
	if got, _ := strconv.ParseUint(m[1], 10, 64); got != tel.Syncs {
		t.Errorf("fsync summary count %d != WAL sync counter %d", got, tel.Syncs)
	}
	batchRe := regexp.MustCompile(`(?m)^aib_wal_commit_batch_records_sum (\S+)$`)
	if m := batchRe.FindStringSubmatch(out); m == nil {
		t.Error("no aib_wal_commit_batch_records_sum sample")
	} else if sum, _ := strconv.ParseFloat(m[1], 64); uint64(sum) != uint64(tel.DurableLSN) {
		t.Errorf("commit-batch sum %v != durable LSN %d", sum, tel.DurableLSN)
	}

	// An in-memory engine must not expose the WAL families at all —
	// absent, not zero, like the other per-subsystem families.
	mem, _ := newABC(t, Config{}, 100, 10)
	defer mem.Close()
	sb.Reset()
	if err := mem.WriteMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "aib_wal_") || strings.Contains(sb.String(), "aib_checkpoint_") {
		t.Error("in-memory engine exposes WAL families")
	}
}
