package engine

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/buffer"
	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/heap"
	"repro/internal/index"
	"repro/internal/storage"
	"repro/internal/wal"
)

// Save persists the engine's catalog and flushes every table's pages.
// On WAL-backed engines Save is a checkpoint: the log is fsynced first
// (write-ahead rule), the flushed state is named by a checkpoint LSN in
// the catalog, and the log is truncated behind it. The engine must have
// been created with a DataDir; in-memory engines have nothing durable
// to save. Index Buffers are not persisted — they are volatile by
// design (paper §III) and start empty after Load.
func (e *Engine) Save() error {
	if err := e.checkOpen(); err != nil {
		return err
	}
	if e.cfg.DataDir == "" {
		return fmt.Errorf("engine: Save requires a DataDir-backed engine")
	}
	if e.wal != nil {
		return e.checkpoint()
	}

	e.mu.RLock()
	defer e.mu.RUnlock()
	var cat catalog.Catalog
	names := make([]string, 0, len(e.tables))
	for n := range e.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		t := e.tables[n]
		t.mu.RLock()
		err := t.saveMetaLocked(&cat)
		t.mu.RUnlock()
		if err != nil {
			return err
		}
	}
	return catalog.Save(e.cfg.DataDir, cat)
}

// saveMetaLocked flushes one table and appends its catalog entry; the
// caller holds the table's lock (shared suffices: the pool is internally
// synchronized and the schema/index set cannot change underneath).
func (t *Table) saveMetaLocked(cat *catalog.Catalog) error {
	n := t.name
	if err := t.pool.FlushAll(); err != nil {
		return fmt.Errorf("engine: flushing %s: %w", n, err)
	}
	if s, ok := t.store.(interface{ Sync() error }); ok {
		if err := s.Sync(); err != nil {
			return fmt.Errorf("engine: syncing %s: %w", n, err)
		}
	}
	tm := catalog.TableMeta{Name: n, NumPages: t.heap.NumPages()}
	for c := 0; c < t.schema.NumColumns(); c++ {
		col := t.schema.Column(c)
		kind, err := catalog.EncodeKind(col.Kind)
		if err != nil {
			return err
		}
		tm.Columns = append(tm.Columns, catalog.ColumnMeta{Name: col.Name, Kind: kind})
	}
	cols := make([]int, 0, len(t.indexes))
	for c := range t.indexes {
		cols = append(cols, c)
	}
	sort.Ints(cols)
	for _, c := range cols {
		cov, err := catalog.EncodeCoverage(t.indexes[c].Coverage())
		if err != nil {
			return fmt.Errorf("engine: index on %s column %d: %w", n, c, err)
		}
		tm.Indexes = append(tm.Indexes, catalog.IndexMeta{Column: c, Coverage: cov})
	}
	cat.Tables = append(cat.Tables, tm)
	return nil
}

// loadingTable is one table mid-recovery: its store is open (and
// repaired) but redo has not finished, so pool/heap/indexes do not
// exist yet.
type loadingTable struct {
	tm     catalog.TableMeta
	schema *storage.Schema
	fs     *buffer.FileStore
	pages  int // heap page count after redo (starts at tm.NumPages)
}

// Load opens a previously saved database from cfg.DataDir. Recovery is
// ARIES-style redo, physical variant:
//
//  1. Each table's page file is reopened, repairing a torn trailing
//     partial page and truncating any whole pages past the catalog's
//     checkpointed extent (either tail is an append that was never
//     acknowledged — keeping it would leave garbage for redo to build
//     on).
//  2. The log is replayed from the catalog's checkpoint LSN, writing
//     each record's full page images straight into the page files —
//     idempotent regardless of which dirty pages the buffer pool had
//     flushed before the crash. A torn record at the log's tail is
//     repaired the same way.
//  3. Heaps are reattached at their post-redo extents and the partial
//     indexes rebuilt by scanning, with fresh, empty Index Buffers —
//     volatile by design. The logged query tail is kept for Rewarm,
//     which replays it through the normal query path so the buffers
//     re-warm without waiting for live traffic.
//
// A post-recovery checkpoint then makes the redone state durable and
// truncates the log. On any error every file opened so far is closed
// before returning. RecoveryStats reports what recovery did.
func Load(cfg Config) (*Engine, error) {
	if cfg.DataDir == "" {
		return nil, fmt.Errorf("engine: Load requires a DataDir")
	}
	cat, err := catalog.Load(cfg.DataDir)
	if err != nil {
		return nil, err
	}
	e := newEngine(cfg)
	e.recovery.CheckpointLSN = cat.CheckpointLSN

	// Phase 1: reattach and repair page files. Track every opened store
	// so any failure below releases them all (nothing leaks on a partial
	// Load).
	loading := make([]*loadingTable, 0, len(cat.Tables))
	byName := make(map[string]*loadingTable, len(cat.Tables))
	closeAll := func() {
		for _, lt := range loading {
			lt.fs.Close()
		}
	}
	for _, tm := range cat.Tables {
		cols := make([]storage.Column, len(tm.Columns))
		for i, cm := range tm.Columns {
			kind, err := catalog.DecodeKind(cm.Kind)
			if err != nil {
				closeAll()
				return nil, err
			}
			cols[i] = storage.Column{Name: cm.Name, Kind: kind}
		}
		schema, err := storage.NewSchema(cols...)
		if err != nil {
			closeAll()
			return nil, fmt.Errorf("engine: loading %s: %w", tm.Name, err)
		}
		fs, torn, err := buffer.RecoverFileStore(filepath.Join(cfg.DataDir, tm.Name+".pages"))
		if err != nil {
			closeAll()
			return nil, err
		}
		// A vacuum-commit marker means a vacuum crashed after swapping
		// its rewritten page file into place but before republishing the
		// catalog. The swapped file is complete and synced at exactly the
		// marker's extent; accept it rather than refusing (smaller file)
		// or truncating a vacuumed file as surplus (larger catalog
		// count). A marker whose count does not match the file predates
		// the swap and is ignored.
		if mp, ok := readVacuumMarker(cfg.DataDir, tm.Name); ok && fs.NumPages() == mp && tm.NumPages != mp {
			tm.NumPages = mp
			e.recovery.VacuumRepairs++
		}
		lt := &loadingTable{tm: tm, schema: schema, fs: fs, pages: tm.NumPages}
		loading = append(loading, lt)
		byName[tm.Name] = lt
		e.recovery.TornPageBytes += torn
		if fs.NumPages() < tm.NumPages {
			closeAll()
			return nil, fmt.Errorf("engine: table %s: catalog says %d pages, file has %d", tm.Name, tm.NumPages, fs.NumPages())
		}
		if surplus := fs.NumPages() - tm.NumPages; surplus > 0 {
			// The file ran past the checkpointed extent: pages allocated
			// by operations that never reached a durable checkpoint or
			// log record. Drop them — redo below re-extends the file for
			// every logged allocation.
			if err := fs.Truncate(tm.NumPages); err != nil {
				closeAll()
				return nil, fmt.Errorf("engine: table %s: %w", tm.Name, err)
			}
			e.recovery.TruncatedPages += surplus
		}
	}

	// Phase 2: redo. Replay every record past the checkpoint, writing
	// page images directly to the stores (pools do not exist yet), and
	// collect the query tail for Rewarm.
	if !cfg.WAL.Disable || walDirExists(cfg.DataDir) {
		info, err := wal.Replay(walDir(cfg.DataDir), wal.LSN(cat.CheckpointLSN), func(rec *wal.Record) error {
			if rec.Kind == wal.KindQuery {
				lt := byName[rec.Table]
				if lt == nil || rec.Column < 0 || rec.Column >= lt.schema.NumColumns() {
					return nil // tail for a table/column dropped since logging
				}
				e.rewarm = append(e.rewarm, rewarmQuery{
					table: rec.Table, column: rec.Column, equal: rec.Equal, lo: rec.Lo, hi: rec.Hi,
				})
				return nil
			}
			lt := byName[rec.Table]
			if lt == nil {
				// DDL forces a checkpoint, so post-checkpoint DML always
				// names a cataloged table; anything else is corruption.
				return fmt.Errorf("engine: redo record %d names unknown table %q", rec.LSN, rec.Table)
			}
			for _, im := range rec.Images {
				for int(im.Page) >= lt.fs.NumPages() {
					if _, err := lt.fs.Allocate(); err != nil {
						return err
					}
				}
				if err := lt.fs.Write(im.Page, im.Data); err != nil {
					return err
				}
				e.recovery.RedoPages++
			}
			lt.pages = rec.Pages
			e.recovery.RedoRecords++
			return nil
		})
		if err != nil {
			closeAll()
			return nil, fmt.Errorf("engine: redo: %w", err)
		}
		e.recovery.TornWALBytes = info.TornBytes
		e.recovery.QueryTail = len(e.rewarm)

		if !cfg.WAL.Disable {
			w, err := wal.Open(walDir(cfg.DataDir), walOptions(cfg), info.Next)
			if err != nil {
				closeAll()
				return nil, err
			}
			e.wal = w
		} else {
			// The log has been applied; with the WAL disabled going
			// forward nothing will keep it consistent with new writes, so
			// a stale replay later would corrupt. Remove it.
			if err := os.RemoveAll(walDir(cfg.DataDir)); err != nil {
				closeAll()
				return nil, fmt.Errorf("engine: clearing wal: %w", err)
			}
		}
	}

	// Phase 3: reattach heaps at their post-redo extents and rebuild
	// indexes and (empty, volatile) Index Buffers.
	fail := func(err error) (*Engine, error) {
		if e.wal != nil {
			e.wal.Close()
		}
		closeAll()
		return nil, err
	}
	for _, lt := range loading {
		var store pageStore = lt.fs
		if cfg.wrapStore != nil {
			store = cfg.wrapStore(lt.tm.Name, store)
		}
		pool, err := buffer.NewPool(store, e.cfg.PoolPages)
		if err != nil {
			return fail(err)
		}
		hp, err := heap.OpenTable(lt.schema, pool, lt.pages)
		if err != nil {
			return fail(fmt.Errorf("engine: reopening heap %s: %w", lt.tm.Name, err))
		}
		t := &Table{
			engine:  e,
			name:    lt.tm.Name,
			schema:  lt.schema,
			store:   store,
			pool:    pool,
			heap:    hp,
			indexes: make(map[int]*index.Partial),
			buffers: make(map[int]*core.IndexBuffer),
		}
		t.publishReadLocked() // unshared until the map insert below
		e.tables[lt.tm.Name] = t

		for _, im := range lt.tm.Indexes {
			cov, err := im.Coverage.DecodeCoverage()
			if err != nil {
				return fail(fmt.Errorf("engine: index on %s column %d: %w", lt.tm.Name, im.Column, err))
			}
			// createPartialIndex rebuilds the tree by scanning and wires
			// up a fresh, empty Index Buffer with new counters — the
			// buffer is volatile and never survives a restart.
			if err := t.createPartialIndex(im.Column, cov); err != nil {
				return fail(fmt.Errorf("engine: rebuilding index on %s column %d: %w", lt.tm.Name, im.Column, err))
			}
		}
	}

	// Make the recovered state durable and reclaim the log. The
	// WAL-disabled path rewrites the catalog snapshot instead, so
	// repairs made above — truncated tails, vacuum-commit extents — are
	// published rather than re-derived (or refused) on the next Load.
	if e.wal != nil {
		if err := e.checkpoint(); err != nil {
			ce := e.Close()
			_ = ce
			return nil, fmt.Errorf("engine: post-recovery checkpoint: %w", err)
		}
		e.startCheckpointer()
	} else {
		if err := e.Save(); err != nil {
			ce := e.Close()
			_ = ce
			return nil, fmt.Errorf("engine: post-recovery save: %w", err)
		}
	}
	// The catalog now names every table's true extent; retire any
	// vacuum-commit markers (consumed above, or stale from a vacuum
	// whose catalog update did land).
	for _, lt := range loading {
		removeVacuumMarker(cfg.DataDir, lt.tm.Name)
	}
	return e, nil
}

// walDirExists reports whether a log directory is present — the
// WAL-disabled Load still applies and then clears an existing log, so
// acknowledged operations are not silently dropped.
func walDirExists(dataDir string) bool {
	fi, err := os.Stat(walDir(dataDir))
	return err == nil && fi.IsDir()
}
