package engine

import (
	"fmt"
	"path/filepath"
	"sort"

	"repro/internal/buffer"
	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/heap"
	"repro/internal/index"
	"repro/internal/storage"
)

// Save persists the engine's catalog and flushes every table's pages.
// The engine must have been created with a DataDir; in-memory engines
// have nothing durable to save. Index Buffers are not persisted — they
// are volatile by design (paper §III) and start empty after Load.
func (e *Engine) Save() error {
	if err := e.checkOpen(); err != nil {
		return err
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.cfg.DataDir == "" {
		return fmt.Errorf("engine: Save requires a DataDir-backed engine")
	}

	var cat catalog.Catalog
	names := make([]string, 0, len(e.tables))
	for n := range e.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		t := e.tables[n]
		t.mu.RLock()
		err := t.saveMetaLocked(&cat)
		t.mu.RUnlock()
		if err != nil {
			return err
		}
	}
	return catalog.Save(e.cfg.DataDir, cat)
}

// saveMetaLocked flushes one table and appends its catalog entry; the
// caller holds the table's lock (shared suffices: the pool is internally
// synchronized and the schema/index set cannot change underneath).
func (t *Table) saveMetaLocked(cat *catalog.Catalog) error {
	n := t.name
	if err := t.pool.FlushAll(); err != nil {
		return fmt.Errorf("engine: flushing %s: %w", n, err)
	}
	if fs, ok := t.store.(*buffer.FileStore); ok {
		if err := fs.Sync(); err != nil {
			return fmt.Errorf("engine: syncing %s: %w", n, err)
		}
	}
	tm := catalog.TableMeta{Name: n, NumPages: t.heap.NumPages()}
	for c := 0; c < t.schema.NumColumns(); c++ {
		col := t.schema.Column(c)
		kind, err := catalog.EncodeKind(col.Kind)
		if err != nil {
			return err
		}
		tm.Columns = append(tm.Columns, catalog.ColumnMeta{Name: col.Name, Kind: kind})
	}
	cols := make([]int, 0, len(t.indexes))
	for c := range t.indexes {
		cols = append(cols, c)
	}
	sort.Ints(cols)
	for _, c := range cols {
		cov, err := catalog.EncodeCoverage(t.indexes[c].Coverage())
		if err != nil {
			return fmt.Errorf("engine: index on %s column %d: %w", n, c, err)
		}
		tm.Indexes = append(tm.Indexes, catalog.IndexMeta{Column: c, Coverage: cov})
	}
	cat.Tables = append(cat.Tables, tm)
	return nil
}

// Load opens a previously saved database from cfg.DataDir: it reattaches
// every table's page file, rebuilds the partial indexes by scanning, and
// creates fresh, empty Index Buffers with counters initialized against
// the loaded indexes.
func Load(cfg Config) (*Engine, error) {
	if cfg.DataDir == "" {
		return nil, fmt.Errorf("engine: Load requires a DataDir")
	}
	cat, err := catalog.Load(cfg.DataDir)
	if err != nil {
		return nil, err
	}
	e := New(cfg)

	for _, tm := range cat.Tables {
		cols := make([]storage.Column, len(tm.Columns))
		for i, cm := range tm.Columns {
			kind, err := catalog.DecodeKind(cm.Kind)
			if err != nil {
				return nil, err
			}
			cols[i] = storage.Column{Name: cm.Name, Kind: kind}
		}
		schema, err := storage.NewSchema(cols...)
		if err != nil {
			return nil, fmt.Errorf("engine: loading %s: %w", tm.Name, err)
		}
		store, err := buffer.OpenFileStoreExisting(filepath.Join(cfg.DataDir, tm.Name+".pages"))
		if err != nil {
			return nil, err
		}
		if store.NumPages() < tm.NumPages {
			store.Close()
			return nil, fmt.Errorf("engine: table %s: catalog says %d pages, file has %d", tm.Name, tm.NumPages, store.NumPages())
		}
		pool, err := buffer.NewPool(store, e.cfg.PoolPages)
		if err != nil {
			store.Close()
			return nil, err
		}
		hp, err := heap.OpenTable(schema, pool, tm.NumPages)
		if err != nil {
			store.Close()
			return nil, fmt.Errorf("engine: reopening heap %s: %w", tm.Name, err)
		}
		t := &Table{
			engine:  e,
			name:    tm.Name,
			schema:  schema,
			store:   store,
			pool:    pool,
			heap:    hp,
			indexes: make(map[int]*index.Partial),
			buffers: make(map[int]*core.IndexBuffer),
		}
		e.tables[tm.Name] = t

		for _, im := range tm.Indexes {
			cov, err := im.Coverage.DecodeCoverage()
			if err != nil {
				return nil, fmt.Errorf("engine: index on %s column %d: %w", tm.Name, im.Column, err)
			}
			// CreatePartialIndex rebuilds the tree by scanning and wires
			// up a fresh, empty Index Buffer with new counters — the
			// buffer is volatile and never survives a restart.
			if err := t.CreatePartialIndex(im.Column, cov); err != nil {
				return nil, fmt.Errorf("engine: rebuilding index on %s column %d: %w", tm.Name, im.Column, err)
			}
		}
	}
	return e, nil
}
