package engine

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/buffer"
	"repro/internal/heap"
	"repro/internal/storage"
)

// vacuumMarker is the durable commit record a file-backed vacuum writes
// just before renaming the rewritten page file into place. Until the
// catalog is republished, the marker is what tells Load that a page
// file smaller than the catalog's extent is a complete vacuumed file,
// not corruption — without it, a crash in that window would make the
// database permanently unopenable.
type vacuumMarker struct {
	Pages int `json:"pages"`
}

func vacuumMarkerPath(dataDir, table string) string {
	return filepath.Join(dataDir, table+".vacuum-commit")
}

// writeVacuumMarker persists the marker durably (fsync file, then dir).
func writeVacuumMarker(dataDir, table string, pages int) error {
	data, err := json.Marshal(vacuumMarker{Pages: pages})
	if err != nil {
		return fmt.Errorf("engine: vacuum marker: %w", err)
	}
	path := vacuumMarkerPath(dataDir, table)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("engine: vacuum marker: %w", err)
	}
	_, err = f.Write(data)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = syncDirPath(dataDir)
	}
	if err != nil {
		os.Remove(path)
		return fmt.Errorf("engine: vacuum marker: %w", err)
	}
	return nil
}

// readVacuumMarker returns the marker's page count if a well-formed
// marker exists. A missing or torn marker reads as absent: the marker is
// only meaningful once fully durable, and a torn one means the crash
// happened before the file swap, when the old state was still valid.
func readVacuumMarker(dataDir, table string) (pages int, ok bool) {
	data, err := os.ReadFile(vacuumMarkerPath(dataDir, table))
	if err != nil {
		return 0, false
	}
	var m vacuumMarker
	if json.Unmarshal(data, &m) != nil || m.Pages < 0 {
		return 0, false
	}
	return m.Pages, true
}

// removeVacuumMarker retires a marker, best-effort: a marker that
// outlives its catalog update is ignored by Load's consistency check
// and swept on the next successful recovery.
func removeVacuumMarker(dataDir, table string) {
	if dataDir == "" {
		return
	}
	if err := os.Remove(vacuumMarkerPath(dataDir, table)); err == nil {
		_ = syncDirPath(dataDir)
	}
}

// syncDirPath fsyncs a directory so renames and removals inside it are
// durable.
func syncDirPath(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("engine: open dir for sync: %w", err)
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("engine: sync dir: %w", err)
	}
	return nil
}

// Vacuum rewrites the table's heap densely — live tuples packed into
// fresh pages with no dead slots — and rebuilds every partial index and
// Index Buffer against the new layout. It reclaims the space of deleted
// and relocated tuples after heavy DML.
//
// All RIDs change; external holders of RIDs must re-query. The Index
// Buffers restart empty (their entries referenced old RIDs), with
// counters initialized against the new pages — the same volatile restart
// the paper's design permits. For file-backed tables the page file is
// rewritten via a temporary file renamed into place. Vacuum returns the
// page counts before and after.
func (t *Table) Vacuum() (pagesBefore, pagesAfter int, err error) {
	// On WAL-backed engines, drain the log first: records appended
	// before the vacuum carry images of the old page layout, and redoing
	// them onto the rewritten file would smear garbage. The catalog is
	// republished after the swap; until that lands, the on-disk
	// vacuum-commit marker written just before the rename is what lets
	// Load accept the swapped file's smaller extent after a crash.
	if err := t.engine.checkpointIfWAL(); err != nil {
		return 0, 0, fmt.Errorf("engine: checkpoint before vacuum of %s: %w", t.name, err)
	}
	pagesBefore, pagesAfter, err = t.vacuum()
	if err != nil {
		return pagesBefore, pagesAfter, err
	}
	if t.engine.wal != nil {
		if err := t.engine.checkpoint(); err != nil {
			return pagesBefore, pagesAfter, fmt.Errorf("engine: checkpoint after vacuum of %s: %w", t.name, err)
		}
	} else if t.engine.cfg.DataDir != "" {
		// Snapshot-only engines have the same crash window between the
		// file swap and the next Save; publish the catalog now.
		if err := t.engine.Save(); err != nil {
			return pagesBefore, pagesAfter, fmt.Errorf("engine: save after vacuum of %s: %w", t.name, err)
		}
	}
	removeVacuumMarker(t.engine.cfg.DataDir, t.name)
	return pagesBefore, pagesAfter, nil
}

func (t *Table) vacuum() (pagesBefore, pagesAfter int, err error) {
	if err := t.engine.checkOpen(); err != nil {
		return 0, 0, err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	// The whole vacuum is one seqlock write window: the store/pool/heap
	// swap and the index/buffer rebuilds below are far from atomic, and
	// a lock-free reader racing them must retry (then fall back to the
	// lock, where it waits the vacuum out like any reader did before).
	t.beginMutate()
	defer t.endMutate()

	pagesBefore = t.heap.NumPages()

	// Stage the replacement heap on a fresh store.
	var newStore pageStore
	var newFS *buffer.FileStore
	var tmpPath string
	if t.engine.cfg.DataDir != "" {
		tmpPath = filepath.Join(t.engine.cfg.DataDir, t.name+".pages.vacuum")
		fs, err := buffer.OpenFileStore(tmpPath)
		if err != nil {
			return pagesBefore, 0, err
		}
		newFS = fs
		newStore = fs
	} else {
		newStore = buffer.NewSimDisk()
	}
	if t.engine.cfg.wrapStore != nil {
		newStore = t.engine.cfg.wrapStore(t.name, newStore)
	}
	cleanupTmp := func() {
		if tmpPath != "" {
			newFS.Close()
			os.Remove(tmpPath)
		}
	}

	newPool, err := buffer.NewPool(newStore, t.engine.cfg.PoolPages)
	if err != nil {
		cleanupTmp()
		return pagesBefore, 0, err
	}
	newHeap := heap.NewTable(t.schema, newPool)
	err = t.heap.Scan(func(_ storage.RID, tu storage.Tuple) error {
		_, err := newHeap.Insert(tu)
		return err
	})
	if err != nil {
		cleanupTmp()
		return pagesBefore, 0, fmt.Errorf("engine: vacuum copy of %s: %w", t.name, err)
	}

	// For file-backed tables, persist the staged pages and move the file
	// into place; the open descriptor stays valid across the rename.
	if tmpPath != "" {
		if err := newPool.FlushAll(); err != nil {
			cleanupTmp()
			return pagesBefore, 0, err
		}
		if err := newFS.Sync(); err != nil {
			cleanupTmp()
			return pagesBefore, 0, err
		}
		// Commit point: once the marker is durable, a crash anywhere up
		// to the catalog republication resolves cleanly at Load — file
		// still old (marker ignored) or file swapped (marker names its
		// complete extent).
		if err := writeVacuumMarker(t.engine.cfg.DataDir, t.name, newHeap.NumPages()); err != nil {
			cleanupTmp()
			return pagesBefore, 0, err
		}
		if old, ok := t.store.(interface{ Close() error }); ok {
			_ = old.Close()
		}
		final := filepath.Join(t.engine.cfg.DataDir, t.name+".pages")
		if err := os.Rename(tmpPath, final); err != nil {
			cleanupTmp()
			return pagesBefore, 0, fmt.Errorf("engine: vacuum swap of %s: %w", t.name, err)
		}
		if err := syncDirPath(t.engine.cfg.DataDir); err != nil {
			return pagesBefore, 0, fmt.Errorf("engine: vacuum swap of %s: %w", t.name, err)
		}
	}

	// Swap the heap in, then rebuild index contents and buffers against
	// the new RIDs.
	t.store = newStore
	t.pool = newPool
	t.heap = newHeap

	for col, ix := range t.indexes {
		if _, err := ix.Rebuild(ix.Coverage(), t.heap); err != nil {
			return pagesBefore, 0, fmt.Errorf("engine: vacuum reindex of %s: %w", t.name, err)
		}
		if t.buffers[col] == nil {
			continue
		}
		t.engine.space.DropBuffer(t.bufferName(col))
		uncovered := make([]int, t.heap.NumPages())
		err := t.heap.Scan(func(rid storage.RID, tu storage.Tuple) error {
			if !ix.Covers(tu.Value(col)) {
				uncovered[rid.Page]++
			}
			return nil
		})
		if err != nil {
			return pagesBefore, 0, err
		}
		b, err := t.engine.space.CreateBuffer(t.bufferName(col), uncovered)
		if err != nil {
			return pagesBefore, 0, err
		}
		t.buffers[col] = b
	}
	t.publishReadLocked() // readers must resolve against the new heap
	return pagesBefore, t.heap.NumPages(), nil
}
