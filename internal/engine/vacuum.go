package engine

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/buffer"
	"repro/internal/heap"
	"repro/internal/storage"
)

// Vacuum rewrites the table's heap densely — live tuples packed into
// fresh pages with no dead slots — and rebuilds every partial index and
// Index Buffer against the new layout. It reclaims the space of deleted
// and relocated tuples after heavy DML.
//
// All RIDs change; external holders of RIDs must re-query. The Index
// Buffers restart empty (their entries referenced old RIDs), with
// counters initialized against the new pages — the same volatile restart
// the paper's design permits. For file-backed tables the page file is
// rewritten via a temporary file renamed into place. Vacuum returns the
// page counts before and after.
func (t *Table) Vacuum() (pagesBefore, pagesAfter int, err error) {
	// On WAL-backed engines, drain the log first: records appended
	// before the vacuum carry images of the old page layout, and redoing
	// them onto the rewritten file would smear garbage. The closing
	// checkpoint then aligns the catalog with the swapped file. A crash
	// between the file swap and that final checkpoint is detected at
	// Load (page counts disagree) rather than silently corrupting.
	if err := t.engine.checkpointIfWAL(); err != nil {
		return 0, 0, fmt.Errorf("engine: checkpoint before vacuum of %s: %w", t.name, err)
	}
	pagesBefore, pagesAfter, err = t.vacuum()
	if err != nil {
		return pagesBefore, pagesAfter, err
	}
	if err := t.engine.checkpointIfWAL(); err != nil {
		return pagesBefore, pagesAfter, fmt.Errorf("engine: checkpoint after vacuum of %s: %w", t.name, err)
	}
	return pagesBefore, pagesAfter, nil
}

func (t *Table) vacuum() (pagesBefore, pagesAfter int, err error) {
	if err := t.engine.checkOpen(); err != nil {
		return 0, 0, err
	}
	t.mu.Lock()
	defer t.mu.Unlock()

	pagesBefore = t.heap.NumPages()

	// Stage the replacement heap on a fresh store.
	var newStore pageStore
	var newFS *buffer.FileStore
	var tmpPath string
	if t.engine.cfg.DataDir != "" {
		tmpPath = filepath.Join(t.engine.cfg.DataDir, t.name+".pages.vacuum")
		fs, err := buffer.OpenFileStore(tmpPath)
		if err != nil {
			return pagesBefore, 0, err
		}
		newFS = fs
		newStore = fs
	} else {
		newStore = buffer.NewSimDisk()
	}
	if t.engine.cfg.wrapStore != nil {
		newStore = t.engine.cfg.wrapStore(t.name, newStore)
	}
	cleanupTmp := func() {
		if tmpPath != "" {
			newFS.Close()
			os.Remove(tmpPath)
		}
	}

	newPool, err := buffer.NewPool(newStore, t.engine.cfg.PoolPages)
	if err != nil {
		cleanupTmp()
		return pagesBefore, 0, err
	}
	newHeap := heap.NewTable(t.schema, newPool)
	err = t.heap.Scan(func(_ storage.RID, tu storage.Tuple) error {
		_, err := newHeap.Insert(tu)
		return err
	})
	if err != nil {
		cleanupTmp()
		return pagesBefore, 0, fmt.Errorf("engine: vacuum copy of %s: %w", t.name, err)
	}

	// For file-backed tables, persist the staged pages and move the file
	// into place; the open descriptor stays valid across the rename.
	if tmpPath != "" {
		if err := newPool.FlushAll(); err != nil {
			cleanupTmp()
			return pagesBefore, 0, err
		}
		if err := newFS.Sync(); err != nil {
			cleanupTmp()
			return pagesBefore, 0, err
		}
		if old, ok := t.store.(interface{ Close() error }); ok {
			_ = old.Close()
		}
		final := filepath.Join(t.engine.cfg.DataDir, t.name+".pages")
		if err := os.Rename(tmpPath, final); err != nil {
			cleanupTmp()
			return pagesBefore, 0, fmt.Errorf("engine: vacuum swap of %s: %w", t.name, err)
		}
	}

	// Swap the heap in, then rebuild index contents and buffers against
	// the new RIDs.
	t.store = newStore
	t.pool = newPool
	t.heap = newHeap

	for col, ix := range t.indexes {
		if _, err := ix.Rebuild(ix.Coverage(), t.heap); err != nil {
			return pagesBefore, 0, fmt.Errorf("engine: vacuum reindex of %s: %w", t.name, err)
		}
		if t.buffers[col] == nil {
			continue
		}
		t.engine.space.DropBuffer(t.bufferName(col))
		uncovered := make([]int, t.heap.NumPages())
		err := t.heap.Scan(func(rid storage.RID, tu storage.Tuple) error {
			if !ix.Covers(tu.Value(col)) {
				uncovered[rid.Page]++
			}
			return nil
		})
		if err != nil {
			return pagesBefore, 0, err
		}
		b, err := t.engine.space.CreateBuffer(t.bufferName(col), uncovered)
		if err != nil {
			return pagesBefore, 0, err
		}
		t.buffers[col] = b
	}
	return pagesBefore, t.heap.NumPages(), nil
}
