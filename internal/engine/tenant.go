package engine

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/storage"
)

// This file is the engine's multi-tenancy surface: a registry of budget
// domains (core.Tenant) and a tenant-scoped view of the catalog. Each
// tenant's tables live in the shared catalog under a qualified name
// ("<tenant>:<table>"), so the tracer, the timeline, and the metrics
// families distinguish tenants for free; buffers created for a tenant's
// indexes are charged against the tenant's entry quota (see
// core.Space.SelectPagesForBuffer for the two-level displacement
// competition, and QueryEqualCtx for over-quota admission).

// CreateTenant registers a budget domain carved from the Index Buffer
// Space. quota is the tenant's entry budget (<= 0 = unlimited); strict
// makes over-quota misses fail with ErrQuotaExceeded instead of
// degrading to unindexed scans.
func (e *Engine) CreateTenant(name string, quota int, strict bool) (*core.Tenant, error) {
	if err := e.checkOpen(); err != nil {
		return nil, err
	}
	return e.space.CreateTenant(name, quota, strict)
}

// TenantFor resolves a tenant name. The empty name is the default
// (unlimited, unnamed) tenant and resolves to nil; an unregistered name
// fails with ErrTenantUnknown.
func (e *Engine) TenantFor(name string) (*core.Tenant, error) {
	if name == "" {
		return nil, nil
	}
	if tn := e.space.Tenant(name); tn != nil {
		return tn, nil
	}
	return nil, fmt.Errorf("engine: tenant %q: %w", name, ErrTenantUnknown)
}

// Tenants returns every registered tenant in creation order.
func (e *Engine) Tenants() []*core.Tenant { return e.space.Tenants() }

// qualifiedName is a table's key in the shared catalog: tenant-prefixed
// for tenant tables, bare for the default tenant. The qualifier is also
// the name the tracer and the metrics families see, which is what keys
// per-tenant observability.
func qualifiedName(tn *core.Tenant, name string) string {
	if tn == nil {
		return name
	}
	return tn.Name() + ":" + name
}

// CreateTableFor registers a new empty table owned by tn (nil = the
// default tenant). Index Buffers later created for the table's indexes
// charge tn's quota.
func (e *Engine) CreateTableFor(tn *core.Tenant, name string, schema *storage.Schema) (*Table, error) {
	return e.createTable(tn, qualifiedName(tn, name), schema)
}

// TableFor returns tn's table with the given (unqualified) name, or nil.
func (e *Engine) TableFor(tn *core.Tenant, name string) *Table {
	return e.Table(qualifiedName(tn, name))
}

// TableNamesFor returns tn's table names (unqualified), sorted. A nil tn
// lists the default tenant's tables only; use TableNames for the whole
// catalog.
func (e *Engine) TableNamesFor(tn *core.Tenant) []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	var out []string
	for _, t := range e.tables {
		if t.tenant == tn {
			out = append(out, t.DisplayName())
		}
	}
	sort.Strings(out)
	return out
}

// admitMiss is the quota admission gate for a miss that needs an
// indexing scan. With quota headroom (or no tenant) the miss proceeds to
// the scan-sharing layer (false, nil). An over-quota tenant's miss
// degrades: the access is flipped read-only — Algorithm 1 with I = ∅,
// which consults the buffer but never mutates it, so it may run right
// here under the table's read lock instead of queueing for the write
// lock (true, nil). Strict tenants fail instead with ErrQuotaExceeded.
//
// The gate is advisory — DML maintenance and a concurrent scan admitted
// a moment earlier can still move usage — but the hard invariant
// (tenant used never grows past quota through scans) is enforced by
// SelectPagesForBuffer's budget cap regardless of this check.
func (t *Table) admitMiss(a *exec.Access) (degrade bool, err error) {
	tn := t.tenant
	if tn == nil || !tn.OverQuota() {
		return false, nil
	}
	if tn.Strict() {
		return false, fmt.Errorf("engine: tenant %q: %w", tn.Name(), ErrQuotaExceeded)
	}
	a.ReadOnly = true
	tn.NoteDegraded()
	return true, nil
}

// Tenant returns the table's owning tenant (nil for the default tenant).
func (t *Table) Tenant() *core.Tenant { return t.tenant }

// DisplayName returns the table's name without the tenant qualifier —
// the name the owning tenant's sessions use.
func (t *Table) DisplayName() string {
	if t.tenant == nil {
		return t.name
	}
	return strings.TrimPrefix(t.name, t.tenant.Name()+":")
}
