package engine

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/core"
)

// This file renders the engine's monitors — scan-sharing counters, Index
// Buffer Space occupancy, per-buffer gauges, per-column query aggregates
// and per-mechanism latency summaries — in the Prometheus text exposition
// format (version 0.0.4), so a standard scraper pointed at the obs
// package's /metrics endpoint sees the adaptive machinery live.
//
// Naming follows the Prometheus conventions: every metric is prefixed
// aib_, counters end in _total, and units are spelled out
// (microseconds, entries). All values are snapshots taken through the
// same accessors the rest of the engine uses, so rendering never blocks
// queries beyond the brief per-structure locks those accessors take.

// metricsWriter accumulates Fprintf errors so the renderer can be written
// straight-line; the first error wins and later writes are skipped.
type metricsWriter struct {
	w   io.Writer
	err error
}

func (m *metricsWriter) printf(format string, args ...any) {
	if m.err != nil {
		return
	}
	_, m.err = fmt.Fprintf(m.w, format, args...)
}

// head emits the # HELP / # TYPE preamble of one metric family.
func (m *metricsWriter) head(name, help, typ string) {
	m.printf("# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// escapeLabel escapes a label value per the exposition format: backslash,
// double quote and newline.
func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// WriteMetrics renders every engine monitor to w in the Prometheus text
// exposition format v0.0.4. It is safe to call concurrently with queries;
// the values are per-structure snapshots, not a global consistent cut.
func (e *Engine) WriteMetrics(w io.Writer) error {
	m := &metricsWriter{w: w}

	// Scan-sharing admission counters.
	ss := e.SharedScanStats()
	m.head("aib_shared_scan_misses_total", "Miss queries admitted to the scan-sharing layer.", "counter")
	m.printf("aib_shared_scan_misses_total %d\n", ss.Misses)
	m.head("aib_shared_scan_passes_total", "Algorithm-1 indexing passes actually executed.", "counter")
	m.printf("aib_shared_scan_passes_total %d\n", ss.Scans)
	m.head("aib_shared_scan_attached_total", "Queries that rode along on another query's scan.", "counter")
	m.printf("aib_shared_scan_attached_total %d\n", ss.Attached)
	m.head("aib_shared_scan_saved_total", "Scans avoided by sharing (misses - passes).", "counter")
	m.printf("aib_shared_scan_saved_total %d\n", ss.Saved)

	// Parallel scan-execution counters.
	ps := e.ParallelScanStats()
	m.head("aib_parallel_scans_total", "Table-scan stages that fanned out to more than one worker.", "counter")
	m.printf("aib_parallel_scans_total %d\n", ps.Scans)
	m.head("aib_parallel_scan_workers_total", "Total workers used across parallel table-scan stages.", "counter")
	m.printf("aib_parallel_scan_workers_total %d\n", ps.Workers)

	// Index Buffer Space occupancy and management counters.
	m.head("aib_space_entries_used", "Index Buffer entries currently held across all buffers.", "gauge")
	m.printf("aib_space_entries_used %d\n", e.space.Used())
	m.head("aib_space_entries_limit", "Configured Index Buffer Space entry limit L (0 = unlimited).", "gauge")
	m.printf("aib_space_entries_limit %d\n", e.space.Config().SpaceLimit)
	sp := e.space.Stats()
	m.head("aib_space_partitions_dropped_total", "Partitions displaced from the Index Buffer Space.", "counter")
	m.printf("aib_space_partitions_dropped_total %d\n", sp.PartitionsDropped)
	m.head("aib_space_entries_dropped_total", "Entries discarded by displacement.", "counter")
	m.printf("aib_space_entries_dropped_total %d\n", sp.EntriesDropped)
	m.head("aib_space_pages_selected_total", "Pages chosen for indexing by Algorithm 2.", "counter")
	m.printf("aib_space_pages_selected_total %d\n", sp.PagesSelected)
	m.head("aib_space_cross_tenant_entries_dropped_total", "Entries one tenant's scans displaced from other tenants' buffers.", "counter")
	m.printf("aib_space_cross_tenant_entries_dropped_total %d\n", sp.CrossTenantEntriesDropped)

	// Per-tenant quota gauges and degradation counters.
	tenants := e.space.Tenants()
	if len(tenants) > 0 {
		m.head("aib_tenant_entries_used", "Index Buffer entries currently held by one tenant's buffers.", "gauge")
		for _, tn := range tenants {
			m.printf("aib_tenant_entries_used{tenant=\"%s\"} %d\n", escapeLabel(tn.Name()), tn.Used())
		}
		m.head("aib_tenant_entries_quota", "Configured entry quota of one tenant (0 = unlimited).", "gauge")
		for _, tn := range tenants {
			q := tn.Quota()
			if q < 0 {
				q = 0
			}
			m.printf("aib_tenant_entries_quota{tenant=\"%s\"} %d\n", escapeLabel(tn.Name()), q)
		}
		m.head("aib_tenant_degraded_total", "Misses degraded to unindexed scans because the tenant was over quota.", "counter")
		for _, tn := range tenants {
			m.printf("aib_tenant_degraded_total{tenant=\"%s\"} %d\n", escapeLabel(tn.Name()), tn.Degraded())
		}
		m.head("aib_tenant_entries_evicted_total", "Entries one tenant lost to other tenants' scans.", "counter")
		for _, tn := range tenants {
			m.printf("aib_tenant_entries_evicted_total{tenant=\"%s\"} %d\n", escapeLabel(tn.Name()), tn.Evicted())
		}
	}

	// Per-buffer gauges, labeled with the owning tenant ("" = default).
	// Buffers() returns a creation-ordered snapshot.
	lbl := func(b *core.IndexBuffer) string {
		return fmt.Sprintf("buffer=\"%s\",tenant=\"%s\"", escapeLabel(b.Name()), escapeLabel(b.TenantName()))
	}
	m.head("aib_buffer_entries", "Entries held by one Index Buffer.", "gauge")
	bufs := e.space.Buffers()
	for _, b := range bufs {
		m.printf("aib_buffer_entries{%s} %d\n", lbl(b), b.EntryCount())
	}
	m.head("aib_buffer_partitions", "Partitions held by one Index Buffer.", "gauge")
	for _, b := range bufs {
		m.printf("aib_buffer_partitions{%s} %d\n", lbl(b), b.PartitionCount())
	}
	m.head("aib_buffer_buffered_pages", "Table pages fully indexed by one Index Buffer (C[p] = 0).", "gauge")
	for _, b := range bufs {
		m.printf("aib_buffer_buffered_pages{%s} %d\n", lbl(b), b.BufferedPages())
	}
	m.head("aib_buffer_benefit", "Benefit estimate of one Index Buffer (entries per interval).", "gauge")
	for _, b := range bufs {
		m.printf("aib_buffer_benefit{%s} %g\n", lbl(b), b.Benefit())
	}
	m.head("aib_buffer_mean_interval", "Mean LRU-K reference interval of one Index Buffer.", "gauge")
	for _, b := range bufs {
		m.printf("aib_buffer_mean_interval{%s} %g\n", lbl(b), b.History().Mean())
	}
	m.head("aib_buffer_bytes", "Encoded payload bytes held by one Index Buffer.", "gauge")
	for _, b := range bufs {
		m.printf("aib_buffer_bytes{%s} %d\n", lbl(b), b.EntryBytes())
	}
	m.head("aib_coverage_ratio", "Fraction of one buffer's table pages that are skippable (C[p] = 0).", "gauge")
	for _, b := range bufs {
		zero, total := b.Skippable()
		cov := 0.0
		if total > 0 {
			cov = float64(zero) / float64(total)
		}
		m.printf("aib_coverage_ratio{%s} %g\n", lbl(b), cov)
	}

	// Adaptation-timeline convergence verdicts. Queries-to-target is
	// only defined for series that reached the target; the achieved
	// gauge lets a scraper tell "not yet" from "never sampled".
	convs := e.timeline.Convergence()
	m.head("aib_convergence_achieved", "Whether the buffer's coverage ever reached the convergence target (1 = yes).", "gauge")
	for _, c := range convs {
		v := 0
		if c.Achieved {
			v = 1
		}
		m.printf("aib_convergence_achieved{buffer=\"%s\",target=\"%g\"} %d\n",
			escapeLabel(c.Buffer), c.Target, v)
	}
	m.head("aib_convergence_queries", "Queries until the buffer's coverage first reached the convergence target.", "gauge")
	for _, c := range convs {
		if !c.Achieved {
			continue
		}
		m.printf("aib_convergence_queries{buffer=\"%s\",target=\"%g\"} %d\n",
			escapeLabel(c.Buffer), c.Target, c.QueriesToTarget)
	}

	// Per-column query aggregates from the tracer.
	aggs := e.tracer.Aggregates()
	m.head("aib_queries_total", "Queries answered, by table and column.", "counter")
	for _, a := range aggs {
		m.printf("aib_queries_total{table=\"%s\",column=\"%s\"} %d\n",
			escapeLabel(a.Table), escapeLabel(a.Column), a.Queries)
	}
	m.head("aib_query_hits_total", "Queries answered by the partial index alone.", "counter")
	for _, a := range aggs {
		m.printf("aib_query_hits_total{table=\"%s\",column=\"%s\"} %d\n",
			escapeLabel(a.Table), escapeLabel(a.Column), a.Hits)
	}
	m.head("aib_pages_read_total", "Heap pages fetched by queries.", "counter")
	for _, a := range aggs {
		m.printf("aib_pages_read_total{table=\"%s\",column=\"%s\"} %d\n",
			escapeLabel(a.Table), escapeLabel(a.Column), a.PagesRead)
	}
	m.head("aib_pages_skipped_total", "Pages skipped by indexing scans because C[p] = 0.", "counter")
	for _, a := range aggs {
		m.printf("aib_pages_skipped_total{table=\"%s\",column=\"%s\"} %d\n",
			escapeLabel(a.Table), escapeLabel(a.Column), a.PagesSkipped)
	}
	m.head("aib_query_wall_microseconds_total", "Wall-clock time spent answering queries.", "counter")
	for _, a := range aggs {
		m.printf("aib_query_wall_microseconds_total{table=\"%s\",column=\"%s\"} %d\n",
			escapeLabel(a.Table), escapeLabel(a.Column), a.WallMicros)
	}

	// Per-mechanism latency, rendered as a Prometheus summary: quantile
	// lines plus _sum and _count. Quantiles are reservoir-sampled; sum and
	// count are exact.
	m.head("aib_query_latency_microseconds", "Query latency by execution mechanism.", "summary")
	for _, l := range e.tracer.LatencyStats() {
		mech := escapeLabel(l.Mechanism)
		m.printf("aib_query_latency_microseconds{mechanism=\"%s\",quantile=\"0.5\"} %g\n", mech, l.P50)
		m.printf("aib_query_latency_microseconds{mechanism=\"%s\",quantile=\"0.95\"} %g\n", mech, l.P95)
		m.printf("aib_query_latency_microseconds{mechanism=\"%s\",quantile=\"0.99\"} %g\n", mech, l.P99)
		m.printf("aib_query_latency_microseconds_sum{mechanism=\"%s\"} %g\n", mech, l.Sum)
		m.printf("aib_query_latency_microseconds_count{mechanism=\"%s\"} %d\n", mech, l.Count)
	}

	// Epoch-based read path: domain reclamation state and fast-path
	// counters. EpochStats advances the domain first, so a quiescent
	// engine scrapes with a drained backlog.
	es := e.EpochStats()
	m.head("aib_epoch_current", "Current global epoch of the engine's reclamation domain.", "gauge")
	m.printf("aib_epoch_current %d\n", es.Epoch)
	m.head("aib_epoch_pinned_readers", "Readers currently pinned in the epoch domain.", "gauge")
	m.printf("aib_epoch_pinned_readers %d\n", es.PinnedReaders)
	m.head("aib_epoch_retired_backlog", "Retired snapshots awaiting reclamation.", "gauge")
	m.printf("aib_epoch_retired_backlog %d\n", es.RetiredBacklog)
	m.head("aib_epoch_reclaimed_total", "Retired snapshots freed since the engine started.", "counter")
	m.printf("aib_epoch_reclaimed_total %d\n", es.Reclaimed)
	m.head("aib_epoch_reclamation_lag", "Age in epochs of the oldest unreclaimed retirement (0 = drained).", "gauge")
	m.printf("aib_epoch_reclamation_lag %d\n", es.ReclamationLag)
	m.head("aib_epoch_fast_hits_total", "Queries fully served by the lock-free read path.", "counter")
	m.printf("aib_epoch_fast_hits_total %d\n", es.FastHits)
	m.head("aib_epoch_fallbacks_total", "Lock-free read attempts that fell back to the locked path.", "counter")
	m.printf("aib_epoch_fallbacks_total %d\n", es.Fallbacks)

	// Span machinery state.
	m.head("aib_trace_spans_total", "Span events emitted since the engine started (survives Reset).", "counter")
	m.printf("aib_trace_spans_total %d\n", e.tracer.SpanCount())
	m.head("aib_trace_spans_enabled", "Whether span recording is currently on.", "gauge")
	enabled := 0
	if e.tracer.SpansEnabled() {
		enabled = 1
	}
	m.printf("aib_trace_spans_enabled %d\n", enabled)

	// Timeline machinery state.
	m.head("aib_timeline_samples_total", "Timeline samples taken since the engine started (survives ring eviction and Reset).", "counter")
	m.printf("aib_timeline_samples_total %d\n", e.timeline.SampleCount())
	m.head("aib_timeline_enabled", "Whether adaptation-timeline sampling is currently on.", "gauge")
	tlOn := 0
	if e.timeline.Enabled() {
		tlOn = 1
	}
	m.printf("aib_timeline_enabled %d\n", tlOn)

	// Flight recorder state.
	fs := e.flight.Stats()
	m.head("aib_flight_enabled", "Whether the per-statement flight recorder is currently on.", "gauge")
	frOn := 0
	if fs.Enabled {
		frOn = 1
	}
	m.printf("aib_flight_enabled %d\n", frOn)
	m.head("aib_flight_completed_total", "Statements the flight recorder completed a record for.", "counter")
	m.printf("aib_flight_completed_total %d\n", fs.Completed)
	m.head("aib_flight_slow_total", "Statements captured by the slow-query ring.", "counter")
	m.printf("aib_flight_slow_total %d\n", fs.Slow)
	m.head("aib_flight_slow_threshold_seconds", "Current slow-query capture threshold.", "gauge")
	m.printf("aib_flight_slow_threshold_seconds %g\n", fs.Threshold.Seconds())

	// Durability telemetry: WAL writer counters and distributions,
	// checkpoint progress and the recovery facts of this engine's
	// startup. The families appear only on WAL-backed engines, the same
	// convention as the per-tenant families (absent, not zero, when the
	// subsystem is off).
	if tel, ok := e.WALTelemetry(); ok {
		m.head("aib_wal_appends_total", "Records appended to the write-ahead log.", "counter")
		m.printf("aib_wal_appends_total %d\n", tel.Appends)
		m.head("aib_wal_commits_total", "Commit calls acknowledged durable.", "counter")
		m.printf("aib_wal_commits_total %d\n", tel.Commits)
		m.head("aib_wal_syncs_total", "fsyncs issued by the log writer.", "counter")
		m.printf("aib_wal_syncs_total %d\n", tel.Syncs)
		m.head("aib_wal_bytes_total", "Payload and frame bytes appended to the log.", "counter")
		m.printf("aib_wal_bytes_total %d\n", tel.Bytes)
		m.head("aib_wal_segments_created_total", "Log segment files created.", "counter")
		m.printf("aib_wal_segments_created_total %d\n", tel.Segments)
		m.head("aib_wal_segments_removed_total", "Log segment files reclaimed by checkpoint truncation.", "counter")
		m.printf("aib_wal_segments_removed_total %d\n", tel.Removed)
		m.head("aib_wal_active_segments", "Live log segment files (grows while checkpoints stall).", "gauge")
		m.printf("aib_wal_active_segments %d\n", tel.ActiveSegments)
		m.head("aib_wal_appended_lsn", "LSN of the last appended record.", "gauge")
		m.printf("aib_wal_appended_lsn %d\n", tel.AppendedLSN)
		m.head("aib_wal_durable_lsn", "LSN up to which the log is known durable.", "gauge")
		m.printf("aib_wal_durable_lsn %d\n", tel.DurableLSN)
		m.head("aib_wal_sync_error", "Whether the log writer holds a sticky fsync error (1 = failed).", "gauge")
		syncErr := 0
		if tel.SyncErr != "" {
			syncErr = 1
		}
		m.printf("aib_wal_sync_error %d\n", syncErr)
		m.head("aib_wal_fsync_seconds", "fsync wall time, including any simulated device delay.", "summary")
		fl := tel.FsyncLatency
		m.printf("aib_wal_fsync_seconds{quantile=\"0.5\"} %g\n", fl.P50)
		m.printf("aib_wal_fsync_seconds{quantile=\"0.95\"} %g\n", fl.P95)
		m.printf("aib_wal_fsync_seconds{quantile=\"0.99\"} %g\n", fl.P99)
		m.printf("aib_wal_fsync_seconds_sum %g\n", fl.Sum)
		m.printf("aib_wal_fsync_seconds_count %d\n", fl.Count)
		m.head("aib_wal_commit_batch_records", "Group-commit batch sizes: records made durable per watermark advance.", "summary")
		cb := tel.CommitBatch
		m.printf("aib_wal_commit_batch_records{quantile=\"0.5\"} %g\n", cb.P50)
		m.printf("aib_wal_commit_batch_records{quantile=\"0.95\"} %g\n", cb.P95)
		m.printf("aib_wal_commit_batch_records{quantile=\"0.99\"} %g\n", cb.P99)
		m.printf("aib_wal_commit_batch_records_sum %g\n", cb.Sum)
		m.printf("aib_wal_commit_batch_records_count %d\n", cb.Count)

		cs := e.CheckpointStats()
		m.head("aib_checkpoint_completed_total", "Checkpoints completed since the engine started.", "counter")
		m.printf("aib_checkpoint_completed_total %d\n", cs.Completed)
		m.head("aib_checkpoint_last_duration_seconds", "Wall time of the most recent checkpoint.", "gauge")
		m.printf("aib_checkpoint_last_duration_seconds %g\n", cs.LastDuration.Seconds())
		m.head("aib_checkpoint_age_seconds", "Time since the last checkpoint completed (since start when none has).", "gauge")
		m.printf("aib_checkpoint_age_seconds %g\n", cs.Age.Seconds())

		rs := e.RecoveryStats()
		m.head("aib_recovery_redo_records", "DML records replayed by this engine's recovery pass.", "gauge")
		m.printf("aib_recovery_redo_records %d\n", rs.RedoRecords)
		m.head("aib_recovery_redo_pages", "Page images written by this engine's recovery pass.", "gauge")
		m.printf("aib_recovery_redo_pages %d\n", rs.RedoPages)
		m.head("aib_recovery_truncated_pages", "Surplus heap pages truncated during recovery.", "gauge")
		m.printf("aib_recovery_truncated_pages %d\n", rs.TruncatedPages)
		m.head("aib_recovery_torn_bytes", "Torn page and log bytes repaired during recovery.", "gauge")
		m.printf("aib_recovery_torn_bytes %d\n", rs.TornPageBytes+rs.TornWALBytes)
		m.head("aib_recovery_query_tail", "Logged query descriptors recovered for Rewarm.", "gauge")
		m.printf("aib_recovery_query_tail %d\n", rs.QueryTail)
	}

	return m.err
}
