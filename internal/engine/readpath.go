package engine

import (
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/epoch"
	"repro/internal/exec"
	"repro/internal/heap"
	"repro/internal/index"
	"repro/internal/storage"
)

// This file is the epoch-based lock-free read path: partial-index hits
// — the hot case once the Index Buffer has adapted — answered without
// touching the table's RWMutex at all. The classic convoy this removes:
// DML holds the table lock exclusive across its WAL fsync, so under the
// old protocol every index-covered read on the table stalled behind
// every synchronous write. Now a read pins an epoch, resolves the probe
// against immutable snapshots (the partial index's atomic
// coverage+tree state, the heap via the published readState), and
// validates a per-table sequence counter; only probes the snapshots
// cannot answer — buffer misses needing an indexing scan, torn reads —
// fall back to the locked path.
//
// The protocol is a seqlock over immutable snapshots:
//
//   - Table.seq is even at rest and odd strictly while a mutator is
//     changing reader-visible in-memory state. DML makes its window as
//     small as possible: seq goes even again *before* the WAL append +
//     fsync, which is safe because the log write publishes nothing a
//     reader can observe — the heap, indexes and buffers already carry
//     the final state. That ordering is the whole throughput win: the
//     fsync (hundreds of microseconds to milliseconds) no longer sits
//     inside any window a reader waits on.
//   - Table.read holds the readState: the heap handle and the
//     index/buffer sets, republished (atomically, copy-on-write) by
//     every DDL, vacuum and Load — never by DML, which mutates in
//     place behind seq.
//   - A reader loads seq (retrying while odd), loads the readState and
//     the index snapshot, resolves the probe, then re-checks seq. An
//     unchanged even seq proves no mutator ran concurrently, so the
//     probe is identical to one executed under the read lock — at
//     which point the side effects (probe counter, LRU-K history,
//     tracer, timeline) are applied exactly once, through the same
//     internally synchronized structures the locked path uses.
//   - The epoch pin (Space.PinEpoch) covers reclamation, not
//     atomicity: retired snapshots — displaced counter arrays, and any
//     other epoch-retired object — are freed only after every reader
//     epoch has advanced past their retirement, so a pinned reader can
//     never observe reclaimed memory. See internal/epoch.
//
// The serial-oracle guarantee is preserved: for a serially driven
// stream the fast path performs the same probes and the same side
// effects in the same order as the locked path, so results and every
// counter are bit-identical (parallel_oracle_test.go checks exactly
// this with the fast path enabled against a disabled oracle).

// readState is the copy-on-write table state the lock-free read path
// resolves against. All fields are immutable after publication: DDL
// builds a fresh readState rather than mutating the published one. The
// heap and pool are internally synchronized, so DML mutating the
// current heap's pages in place is safe to race with readers — the
// seqlock validation decides whether what a reader saw was consistent.
type readState struct {
	heap    *heap.Table
	indexes map[int]*index.Partial
	buffers map[int]*core.IndexBuffer
}

// publishReadLocked snapshots the table's access-path state into a
// fresh readState. Called under t.mu (exclusive) by every DDL path,
// vacuum, and table construction.
func (t *Table) publishReadLocked() {
	rs := &readState{
		heap:    t.heap,
		indexes: make(map[int]*index.Partial, len(t.indexes)),
		buffers: make(map[int]*core.IndexBuffer, len(t.buffers)),
	}
	for c, ix := range t.indexes {
		rs.indexes[c] = ix
	}
	for c, b := range t.buffers {
		rs.buffers[c] = b
	}
	t.read.Store(rs)
}

// beginMutate opens a seqlock write window (seq goes odd). Callers hold
// t.mu exclusive; the window must span exactly the in-memory mutations
// of reader-visible state — in particular, DML closes it before the WAL
// append so readers never wait out an fsync.
func (t *Table) beginMutate() { t.seq.Add(1) }

// endMutate closes the seqlock write window (seq goes even).
func (t *Table) endMutate() { t.seq.Add(1) }

// fastAttempts bounds the fast path's probe retries — restarts after a
// mutator overlapped the probe — before giving up and taking the locked
// path; a table under sustained DML makes the locked path the right
// place to wait anyway.
const fastAttempts = 8

// fastSpins bounds how long the fast path waits out an odd seq before
// falling back. It is deliberately much larger than fastAttempts: a
// DML mutator's in-memory window is microseconds (the window closes
// before the WAL fsync), so re-reading is vastly cheaper than the
// fallback, which queues on the table lock the mutator still holds
// across its fsync — the exact convoy this path exists to avoid. Only
// a long writer window (DDL, vacuum) exhausts the budget, and waiting
// on the lock is then correct.
const fastSpins = 4096

// spinYieldEvery paces the odd-seq wait: mostly busy re-reads (matching
// the microsecond scale of a DML window), with an occasional yield so a
// GOMAXPROCS=1 mutator can finish its window. The wait must not lean on
// runtime.Gosched every iteration — when every P is running a reader, a
// yielded goroutine sits in the run queue for whole scheduler slices
// (~10ms), turning a microsecond wait into a worse stall than the lock.
const spinYieldEvery = 1024

// awaitEven spins until the seq is even, returning false once the spin
// budget says the window is long and the lock is the right wait.
func (t *Table) awaitEven(spins *int) bool {
	*spins++
	if *spins > fastSpins {
		return false
	}
	if *spins%spinYieldEvery == 0 {
		runtime.Gosched()
	}
	return true
}

// EpochStats reports the epoch-based read path's health: the domain's
// reclamation state plus the engine-wide fast-path counters.
type EpochStats struct {
	// Epoch is the domain's current global epoch.
	Epoch uint64 `json:"epoch"`
	// PinnedReaders is the number of readers currently pinned.
	PinnedReaders int64 `json:"pinned_readers"`
	// RetiredBacklog is the number of retired snapshots not yet
	// reclaimed.
	RetiredBacklog int `json:"retired_backlog"`
	// Reclaimed is the total number of retired snapshots freed.
	Reclaimed uint64 `json:"reclaimed"`
	// ReclamationLag is the age in epochs of the oldest unreclaimed
	// retire (0 when the limbo list is empty).
	ReclamationLag uint64 `json:"reclamation_lag"`
	// FastHits counts queries fully served by the lock-free path.
	FastHits uint64 `json:"fast_hits"`
	// Fallbacks counts queries that attempted the lock-free path and
	// fell back to the locked path for a reason other than needing an
	// indexing scan (seqlock contention, heap fault).
	Fallbacks uint64 `json:"fallbacks"`
}

// EpochStats returns the engine's epoch read-path statistics. It first
// advances the domain opportunistically, so a quiescent engine reports
// a drained backlog.
func (e *Engine) EpochStats() EpochStats {
	s := e.epochs.Stats()
	return EpochStats{
		Epoch:          s.Epoch,
		PinnedReaders:  s.Pinned,
		RetiredBacklog: s.RetiredBacklog,
		Reclaimed:      s.Reclaimed,
		ReclamationLag: s.ReclamationLag,
		FastHits:       e.fastHits.Load(),
		Fallbacks:      e.fastFallbacks.Load(),
	}
}

// EpochDomain exposes the engine's epoch domain (tests advance it to
// assert reclamation).
func (e *Engine) EpochDomain() *epoch.Domain { return e.epochs }

// fastEqual attempts column = key on the lock-free read path. ok
// reports success; on false the caller runs the locked path, which
// also owns all error reporting (the fast path never surfaces errors —
// a validated heap fault falls back so the locked path reproduces it
// under the lock).
func (t *Table) fastEqual(column int, key storage.Value) (m []exec.Match, stats exec.QueryStats, ok bool) {
	e := t.engine
	start := time.Now()
	unpin := e.space.PinEpoch()
	defer unpin()
	for attempt, spins := 0, 0; attempt < fastAttempts; {
		s1 := t.seq.Load()
		if s1&1 != 0 {
			if !t.awaitEven(&spins) {
				break // long window (DDL, vacuum): wait on the lock
			}
			continue
		}
		rs := t.read.Load()
		if rs == nil {
			return nil, exec.QueryStats{}, false
		}
		ix := rs.indexes[column]
		if ix == nil {
			return nil, exec.QueryStats{}, false // no index (or bad column): locked path decides
		}
		snap := ix.Snapshot()
		if !snap.Covers(key) {
			return nil, exec.QueryStats{}, false // miss: needs the indexing-scan machinery
		}
		matches, stats, err := exec.FetchHit(exec.Access{Table: rs.heap, Column: column}, key, snap.Lookup(key))
		if t.seq.Load() != s1 {
			attempt++
			continue // a mutator overlapped the probe; everything read is suspect
		}
		if err != nil {
			// Validated fault (e.g. vacuum closed the store between
			// publications): no side effects were applied, so the locked
			// path re-executes and reports cleanly.
			e.fastFallbacks.Add(1)
			return nil, exec.QueryStats{}, false
		}
		t.commitFastHit(column, &stats, snap, rs, start)
		return matches, stats, true
	}
	e.fastFallbacks.Add(1)
	return nil, exec.QueryStats{}, false
}

// fastRange is fastEqual for lo <= column <= hi, including the empty
// range answered for free (mirroring ExecuteShared's early continue:
// stats carry only the key, no history advance, no probe).
func (t *Table) fastRange(column int, lo, hi storage.Value) (m []exec.Match, stats exec.QueryStats, ok bool) {
	e := t.engine
	if t.checkColumn(column) != nil {
		return nil, exec.QueryStats{}, false // locked path owns the error
	}
	start := time.Now()
	unpin := e.space.PinEpoch()
	defer unpin()
	for attempt, spins := 0, 0; attempt < fastAttempts; {
		s1 := t.seq.Load()
		if s1&1 != 0 {
			if !t.awaitEven(&spins) {
				break
			}
			continue
		}
		rs := t.read.Load()
		if rs == nil {
			return nil, exec.QueryStats{}, false
		}
		if hi.Compare(lo) < 0 {
			if t.seq.Load() != s1 {
				attempt++
				continue
			}
			stats := exec.QueryStats{Key: lo, Duration: time.Since(start)}
			e.tracer.Record(t.name, t.schema.Column(column).Name, stats)
			t.sampleTimeline(column, stats, false, rs.buffers[column])
			e.fastHits.Add(1)
			return nil, stats, true
		}
		ix := rs.indexes[column]
		if ix == nil {
			return nil, exec.QueryStats{}, false
		}
		snap := ix.Snapshot()
		if !snap.CoversRange(lo, hi) {
			return nil, exec.QueryStats{}, false
		}
		matches, stats, err := exec.FetchHit(exec.Access{Table: rs.heap, Column: column}, lo, snap.LookupRange(lo, hi))
		if t.seq.Load() != s1 {
			attempt++
			continue
		}
		if err != nil {
			e.fastFallbacks.Add(1)
			return nil, exec.QueryStats{}, false
		}
		t.commitFastHit(column, &stats, snap, rs, start)
		return matches, stats, true
	}
	e.fastFallbacks.Add(1)
	return nil, exec.QueryStats{}, false
}

// commitFastHit applies a validated hit's side effects — exactly the
// ones the locked hit path performs, through the same internally
// synchronized structures, exactly once.
func (t *Table) commitFastHit(column int, stats *exec.QueryStats, snap index.Snapshot, rs *readState, start time.Time) {
	e := t.engine
	snap.NoteProbe()
	buf := rs.buffers[column]
	e.space.OnQuery(buf, true) // Table II: a hit only advances the query clock
	stats.Duration = time.Since(start)
	e.tracer.Record(t.name, t.schema.Column(column).Name, *stats)
	t.sampleTimeline(column, *stats, false, buf)
	e.fastHits.Add(1)
}
