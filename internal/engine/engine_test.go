package engine

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/index"
	"repro/internal/storage"
)

func iv(v int64) storage.Value { return storage.Int64Value(v) }

// newABC builds the paper's evaluation schema: three integer columns and
// a payload, with rows rows of deterministic pseudo-random content and
// values in [1, domain].
func newABC(t *testing.T, cfg Config, rows, domain int) (*Engine, *Table) {
	t.Helper()
	e := New(cfg)
	schema := storage.MustSchema(
		storage.Column{Name: "a", Kind: storage.KindInt64},
		storage.Column{Name: "b", Kind: storage.KindInt64},
		storage.Column{Name: "c", Kind: storage.KindInt64},
		storage.Column{Name: "payload", Kind: storage.KindString},
	)
	tb, err := e.CreateTable("flights", schema)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < rows; i++ {
		tu := storage.NewTuple(
			iv(1+rng.Int63n(int64(domain))),
			iv(1+rng.Int63n(int64(domain))),
			iv(1+rng.Int63n(int64(domain))),
			storage.StringValue(strings.Repeat("x", 1+rng.Intn(256))),
		)
		if _, err := tb.Insert(tu); err != nil {
			t.Fatal(err)
		}
	}
	return e, tb
}

func TestCreateTableDuplicate(t *testing.T) {
	e := New(Config{})
	s := storage.MustSchema(storage.Column{Name: "a", Kind: storage.KindInt64})
	if _, err := e.CreateTable("t", s); err != nil {
		t.Fatal(err)
	}
	if _, err := e.CreateTable("t", s); err == nil {
		t.Error("duplicate table should fail")
	}
	if e.Table("t") == nil || e.Table("missing") != nil {
		t.Error("Table lookup wrong")
	}
}

func TestCreatePartialIndexInitializesCounters(t *testing.T) {
	_, tb := newABC(t, Config{}, 500, 100)
	if err := tb.CreatePartialIndex(0, index.IntRange(1, 50)); err != nil {
		t.Fatal(err)
	}
	if err := tb.CreatePartialIndex(0, index.IntRange(1, 50)); err == nil {
		t.Error("duplicate index should fail")
	}
	if err := tb.CreatePartialIndex(99, index.IntRange(1, 50)); err == nil {
		t.Error("bad column should fail")
	}
	b := tb.Buffer(0)
	if b == nil {
		t.Fatal("no index buffer created")
	}
	// Verify counters: uncovered live tuples per page.
	want := make([]int, tb.NumPages())
	total := 0
	_ = tb.Scan(func(rid storage.RID, tu storage.Tuple) error {
		if tu.Value(0).Int64() > 50 {
			want[rid.Page]++
			total++
		}
		return nil
	})
	for p := range want {
		if got := b.Counter(storage.PageID(p)); got != want[p] {
			t.Errorf("C[%d] = %d, want %d", p, got, want[p])
		}
	}
	if total == 0 {
		t.Fatal("test setup produced no uncovered tuples")
	}
	// Index contents: exactly the covered tuples.
	ix := tb.Index(0)
	covered := 0
	_ = tb.Scan(func(rid storage.RID, tu storage.Tuple) error {
		if tu.Value(0).Int64() <= 50 {
			covered++
			if !ix.Contains(tu.Value(0), rid) {
				t.Errorf("covered tuple %v missing from index", rid)
			}
		}
		return nil
	})
	if ix.EntryCount() != covered {
		t.Errorf("index entries = %d, want %d", ix.EntryCount(), covered)
	}
}

func TestQueryHitUsesIndex(t *testing.T) {
	_, tb := newABC(t, Config{}, 1000, 100)
	if err := tb.CreatePartialIndex(0, index.IntRange(1, 50)); err != nil {
		t.Fatal(err)
	}
	matches, stats, err := tb.QueryEqual(0, iv(25))
	if err != nil {
		t.Fatal(err)
	}
	if !stats.PartialHit {
		t.Error("covered query should hit the partial index")
	}
	if stats.PagesRead >= tb.NumPages()/2 {
		t.Errorf("index hit read %d of %d pages", stats.PagesRead, tb.NumPages())
	}
	for _, m := range matches {
		if m.Tuple.Value(0).Int64() != 25 {
			t.Errorf("wrong tuple in result: %v", m.Tuple)
		}
	}
}

func TestQueryMissBuildsBufferAndSpeedsUp(t *testing.T) {
	_, tb := newABC(t, Config{Space: core.Config{IMax: 100000, P: 1000}}, 2000, 100)
	if err := tb.CreatePartialIndex(0, index.IntRange(1, 10)); err != nil {
		t.Fatal(err)
	}
	numPages := tb.NumPages()

	_, s1, err := tb.QueryEqual(0, iv(90))
	if err != nil {
		t.Fatal(err)
	}
	if s1.PartialHit || s1.FullScan {
		t.Errorf("miss with buffer: hit=%v fullscan=%v", s1.PartialHit, s1.FullScan)
	}
	if s1.PagesRead < numPages {
		t.Errorf("first miss read %d pages, want full %d", s1.PagesRead, numPages)
	}
	if s1.EntriesAdded == 0 || s1.PagesSelected == 0 {
		t.Error("first miss did not build the buffer")
	}

	// With unlimited space and IMax >= pages, one scan fully indexes the
	// table; the second miss reads only match pages.
	_, s2, err := tb.QueryEqual(0, iv(91))
	if err != nil {
		t.Fatal(err)
	}
	if s2.PagesSkipped != numPages {
		t.Errorf("second miss skipped %d of %d pages", s2.PagesSkipped, numPages)
	}
	if s2.PagesRead >= s1.PagesRead/2 {
		t.Errorf("second miss read %d pages vs first %d; no speedup", s2.PagesRead, s1.PagesRead)
	}
	if s2.BufferMatches != s2.Matches {
		t.Errorf("all matches should come from the buffer: %d of %d", s2.BufferMatches, s2.Matches)
	}
}

func TestQueryMissWithoutBufferFullScans(t *testing.T) {
	_, tb := newABC(t, Config{DisableIndexBuffer: true}, 500, 100)
	if err := tb.CreatePartialIndex(0, index.IntRange(1, 10)); err != nil {
		t.Fatal(err)
	}
	if tb.Buffer(0) != nil {
		t.Fatal("buffer created despite DisableIndexBuffer")
	}
	_, stats, err := tb.QueryEqual(0, iv(90))
	if err != nil {
		t.Fatal(err)
	}
	if !stats.FullScan || stats.PagesRead != tb.NumPages() {
		t.Errorf("stats = %+v, want full scan of %d pages", stats, tb.NumPages())
	}
	// Repeat is just as expensive: nothing adapted.
	_, stats2, _ := tb.QueryEqual(0, iv(90))
	if stats2.PagesRead != stats.PagesRead {
		t.Error("baseline engine should not speed up")
	}
}

// queryGroundTruth computes matches by raw scan.
func queryGroundTruth(t *testing.T, tb *Table, column int, key storage.Value) map[storage.RID]bool {
	t.Helper()
	want := map[storage.RID]bool{}
	err := tb.Scan(func(rid storage.RID, tu storage.Tuple) error {
		if tu.Value(column).Equal(key) {
			want[rid] = true
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return want
}

func sameMatches(t *testing.T, got []exec.Match, want map[storage.RID]bool, ctx string) {
	t.Helper()
	if len(got) != len(want) {
		t.Errorf("%s: got %d matches, want %d", ctx, len(got), len(want))
		return
	}
	for _, m := range got {
		if !want[m.RID] {
			t.Errorf("%s: unexpected match %v", ctx, m.RID)
		}
	}
}

// TestQueryCorrectnessUnderRandomWorkload is the central integration
// property: whatever the buffer state — partially built, displaced,
// maintained through DML — every query returns exactly the ground-truth
// matches.
func TestQueryCorrectnessUnderRandomWorkload(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	cfg := Config{Space: core.Config{
		IMax: 20, P: 5, K: 2, SpaceLimit: 400,
		Rand: rand.New(rand.NewSource(2)),
	}}
	_, tb := newABC(t, cfg, 1500, 60)
	for col, hi := range map[int]int64{0: 20, 1: 30, 2: 10} {
		if err := tb.CreatePartialIndex(col, index.IntRange(1, hi)); err != nil {
			t.Fatal(err)
		}
	}

	var rids []storage.RID
	_ = tb.Scan(func(rid storage.RID, _ storage.Tuple) error {
		rids = append(rids, rid)
		return nil
	})

	for step := 0; step < 400; step++ {
		switch rng.Intn(10) {
		case 0: // insert
			tu := storage.NewTuple(
				iv(1+rng.Int63n(60)), iv(1+rng.Int63n(60)), iv(1+rng.Int63n(60)),
				storage.StringValue(strings.Repeat("y", 1+rng.Intn(200))),
			)
			rid, err := tb.Insert(tu)
			if err != nil {
				t.Fatal(err)
			}
			rids = append(rids, rid)
		case 1: // delete
			if len(rids) == 0 {
				continue
			}
			i := rng.Intn(len(rids))
			if err := tb.Delete(rids[i]); err != nil {
				t.Fatal(err)
			}
			rids[i] = rids[len(rids)-1]
			rids = rids[:len(rids)-1]
		case 2: // update
			if len(rids) == 0 {
				continue
			}
			i := rng.Intn(len(rids))
			tu := storage.NewTuple(
				iv(1+rng.Int63n(60)), iv(1+rng.Int63n(60)), iv(1+rng.Int63n(60)),
				storage.StringValue(strings.Repeat("z", 1+rng.Intn(400))),
			)
			nr, err := tb.Update(rids[i], tu)
			if err != nil {
				t.Fatal(err)
			}
			rids[i] = nr
		default: // query
			col := rng.Intn(3)
			key := iv(1 + rng.Int63n(60))
			want := queryGroundTruth(t, tb, col, key)
			got, _, err := tb.QueryEqual(col, key)
			if err != nil {
				t.Fatal(err)
			}
			sameMatches(t, got, want, fmt.Sprintf("step %d col %d key %v", step, col, key))
		}
	}
}

func TestRedefineIndexResetsBuffer(t *testing.T) {
	_, tb := newABC(t, Config{Space: core.Config{IMax: 100000, P: 1000}}, 1000, 100)
	if err := tb.CreatePartialIndex(0, index.IntRange(1, 80)); err != nil {
		t.Fatal(err)
	}
	// Build up the buffer with a miss.
	if _, _, err := tb.QueryEqual(0, iv(90)); err != nil {
		t.Fatal(err)
	}
	if tb.Buffer(0).EntryCount() == 0 {
		t.Fatal("buffer empty before redefinition")
	}

	if err := tb.RedefineIndex(0, index.IntRange(50, 100)); err != nil {
		t.Fatal(err)
	}
	b := tb.Buffer(0)
	if b.EntryCount() != 0 {
		t.Error("buffer survived redefinition")
	}
	// New coverage answers 90 from the index now.
	_, stats, err := tb.QueryEqual(0, iv(90))
	if err != nil {
		t.Fatal(err)
	}
	if !stats.PartialHit {
		t.Error("redefined index should cover 90")
	}
	// And a miss on the new uncovered range is still correct.
	want := queryGroundTruth(t, tb, 0, iv(10))
	got, _, err := tb.QueryEqual(0, iv(10))
	if err != nil {
		t.Fatal(err)
	}
	sameMatches(t, got, want, "post-redefine miss")

	if err := tb.RedefineIndex(1, index.IntRange(1, 2)); err == nil {
		t.Error("redefining a nonexistent index should fail")
	}
}

func TestQueryEqualBadColumn(t *testing.T) {
	_, tb := newABC(t, Config{}, 10, 10)
	if _, _, err := tb.QueryEqual(99, iv(1)); err == nil {
		t.Error("bad column should fail")
	}
}

func TestEngineStatsSurfaces(t *testing.T) {
	// A 2-frame pool forces evictions, so scans hit the simulated disk.
	_, tb := newABC(t, Config{PoolPages: 2}, 200, 50)
	if err := tb.CreatePartialIndex(0, index.IntRange(1, 10)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := tb.QueryEqual(0, iv(40)); err != nil {
		t.Fatal(err)
	}
	if tb.DiskStats().Reads == 0 {
		t.Error("no device reads recorded")
	}
	if tb.PoolStats().Misses == 0 {
		t.Error("no pool misses recorded")
	}
	if got, err := tb.Count(); err != nil || got != 200 {
		t.Errorf("count = %d, %v", got, err)
	}
	if tb.Name() != "flights" || tb.Schema().NumColumns() != 4 {
		t.Error("metadata accessors wrong")
	}
}

func TestQueryRangeThroughEngine(t *testing.T) {
	_, tb := newABC(t, Config{Space: core.Config{IMax: 100000, P: 1000}}, 1500, 100)
	if err := tb.CreatePartialIndex(0, index.IntRange(1, 50)); err != nil {
		t.Fatal(err)
	}
	groundTruth := func(lo, hi int64) map[storage.RID]bool {
		want := map[storage.RID]bool{}
		_ = tb.Scan(func(rid storage.RID, tu storage.Tuple) error {
			v := tu.Value(0).Int64()
			if v >= lo && v <= hi {
				want[rid] = true
			}
			return nil
		})
		return want
	}

	// Covered range: partial index hit.
	got, stats, err := tb.QueryRange(0, iv(10), iv(20))
	if err != nil {
		t.Fatal(err)
	}
	if !stats.PartialHit {
		t.Error("covered range should hit")
	}
	sameMatches(t, got, groundTruth(10, 20), "covered range")

	// Straddling range: miss that builds the buffer, result complete.
	got, stats, err = tb.QueryRange(0, iv(40), iv(70))
	if err != nil {
		t.Fatal(err)
	}
	if stats.PartialHit {
		t.Error("straddling range should miss")
	}
	sameMatches(t, got, groundTruth(40, 70), "straddling range")

	// Second straddling range skips everything yet stays complete.
	got, stats, err = tb.QueryRange(0, iv(30), iv(80))
	if err != nil {
		t.Fatal(err)
	}
	if stats.PagesSkipped != tb.NumPages() {
		t.Errorf("skipped %d of %d", stats.PagesSkipped, tb.NumPages())
	}
	sameMatches(t, got, groundTruth(30, 80), "post-buildout range")

	// Bad column surfaces an error.
	if _, _, err := tb.QueryRange(99, iv(1), iv(2)); err == nil {
		t.Error("bad column should fail")
	}
}

// TestRangeAndDMLInterleaved mixes range queries with DML and checks
// ground truth continuously.
func TestRangeAndDMLInterleaved(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	cfg := Config{Space: core.Config{IMax: 30, P: 10, SpaceLimit: 800, Rand: rand.New(rand.NewSource(8))}}
	_, tb := newABC(t, cfg, 1200, 60)
	if err := tb.CreatePartialIndex(0, index.IntRange(1, 20)); err != nil {
		t.Fatal(err)
	}
	var rids []storage.RID
	_ = tb.Scan(func(rid storage.RID, _ storage.Tuple) error {
		rids = append(rids, rid)
		return nil
	})
	for step := 0; step < 150; step++ {
		if step%5 == 0 && len(rids) > 0 { // mutate
			i := rng.Intn(len(rids))
			tu := storage.NewTuple(
				iv(1+rng.Int63n(60)), iv(1+rng.Int63n(60)), iv(1+rng.Int63n(60)),
				storage.StringValue(strings.Repeat("m", 1+rng.Intn(300))),
			)
			nr, err := tb.Update(rids[i], tu)
			if err != nil {
				t.Fatal(err)
			}
			rids[i] = nr
			continue
		}
		lo := 1 + rng.Int63n(60)
		hi := lo + rng.Int63n(15)
		want := map[storage.RID]bool{}
		_ = tb.Scan(func(rid storage.RID, tu storage.Tuple) error {
			v := tu.Value(0).Int64()
			if v >= lo && v <= hi {
				want[rid] = true
			}
			return nil
		})
		got, _, err := tb.QueryRange(0, iv(lo), iv(hi))
		if err != nil {
			t.Fatal(err)
		}
		sameMatches(t, got, want, fmt.Sprintf("step %d range [%d,%d]", step, lo, hi))
	}
}

// TestEngineFileBackedStore runs the full query/buffer path over real
// files instead of the simulated disk.
func TestEngineFileBackedStore(t *testing.T) {
	dir := t.TempDir()
	e := New(Config{DataDir: dir, PoolPages: 4, Space: core.Config{IMax: 100000, P: 1000}})
	schema := storage.MustSchema(
		storage.Column{Name: "a", Kind: storage.KindInt64},
		storage.Column{Name: "payload", Kind: storage.KindString},
	)
	tb, err := e.CreateTable("disk", schema)
	if err != nil {
		t.Fatal(err)
	}
	pad := strings.Repeat("f", 400)
	for i := 0; i < 500; i++ {
		tu := storage.NewTuple(iv(int64(i%100)), storage.StringValue(pad))
		if _, err := tb.Insert(tu); err != nil {
			t.Fatal(err)
		}
	}
	if err := tb.CreatePartialIndex(0, index.IntRange(0, 49)); err != nil {
		t.Fatal(err)
	}
	got, s1, err := tb.QueryEqual(0, iv(80))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Errorf("matches = %d, want 5", len(got))
	}
	_, s2, err := tb.QueryEqual(0, iv(81))
	if err != nil {
		t.Fatal(err)
	}
	if s2.PagesSkipped != tb.NumPages() || s2.PagesRead >= s1.PagesRead {
		t.Errorf("file-backed buffer gave no speedup: %+v then %+v", s1, s2)
	}
	if tb.DiskStats().Reads == 0 {
		t.Error("no real file reads recorded")
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	// The page file exists and has the right size.
	fi, err := os.Stat(filepath.Join(dir, "disk.pages"))
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != int64(tb.NumPages())*buffer.PageSize {
		t.Errorf("file size %d, want %d pages", fi.Size(), tb.NumPages())
	}
}

// TestEngineConcurrentUse hammers one table with parallel queries and
// DML; run under -race this verifies the engine's locking story.
func TestEngineConcurrentUse(t *testing.T) {
	_, tb := newABC(t, Config{Space: core.Config{IMax: 50, P: 20, SpaceLimit: 2000}}, 800, 50)
	if err := tb.CreatePartialIndex(0, index.IntRange(1, 20)); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 60; i++ {
				switch rng.Intn(4) {
				case 0:
					tu := storage.NewTuple(
						iv(1+rng.Int63n(50)), iv(1+rng.Int63n(50)), iv(1+rng.Int63n(50)),
						storage.StringValue(strings.Repeat("c", 1+rng.Intn(100))),
					)
					if _, err := tb.Insert(tu); err != nil {
						errs <- err
						return
					}
				default:
					if _, _, err := tb.QueryEqual(0, iv(1+rng.Int63n(50))); err != nil {
						errs <- err
						return
					}
				}
			}
		}(int64(g))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	// Final consistency: ground truth still matches.
	want := queryGroundTruth(t, tb, 0, iv(30))
	got, _, err := tb.QueryEqual(0, iv(30))
	if err != nil {
		t.Fatal(err)
	}
	sameMatches(t, got, want, "post-concurrency")
}

// TestSaveAndLoadRoundTrip persists a populated, indexed database and
// reopens it: rows, index hits and Index Buffer behaviour must all be
// intact (with the buffer itself starting fresh, as the paper's
// volatility story requires).
func TestSaveAndLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{DataDir: dir, PoolPages: 8, Space: core.Config{IMax: 100000, P: 1000}}
	e := New(cfg)
	schema := storage.MustSchema(
		storage.Column{Name: "a", Kind: storage.KindInt64},
		storage.Column{Name: "name", Kind: storage.KindString},
	)
	tb, err := e.CreateTable("flights", schema)
	if err != nil {
		t.Fatal(err)
	}
	pad := strings.Repeat("n", 300)
	for i := 0; i < 700; i++ {
		tu := storage.NewTuple(iv(int64(i%100)), storage.StringValue(pad))
		if _, err := tb.Insert(tu); err != nil {
			t.Fatal(err)
		}
	}
	if err := tb.CreatePartialIndex(0, index.IntRange(0, 49)); err != nil {
		t.Fatal(err)
	}
	// Build up some buffer state that must NOT survive the restart.
	if _, _, err := tb.QueryEqual(0, iv(90)); err != nil {
		t.Fatal(err)
	}
	if tb.Buffer(0).EntryCount() == 0 {
		t.Fatal("setup: buffer empty")
	}
	wantPages := tb.NumPages()

	if err := e.Save(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen.
	e2, err := Load(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	tb2 := e2.Table("flights")
	if tb2 == nil {
		t.Fatal("table missing after load")
	}
	if tb2.NumPages() != wantPages {
		t.Errorf("pages = %d, want %d", tb2.NumPages(), wantPages)
	}
	n, err := tb2.Count()
	if err != nil {
		t.Fatal(err)
	}
	if n != 700 {
		t.Errorf("rows = %d, want 700", n)
	}
	// Index definition and contents restored.
	got, stats, err := tb2.QueryEqual(0, iv(25))
	if err != nil {
		t.Fatal(err)
	}
	if !stats.PartialHit || len(got) != 7 {
		t.Errorf("hit=%v rows=%d", stats.PartialHit, len(got))
	}
	// Buffer restarted empty (volatile), with correct counters: the
	// first miss scans, the second skips.
	if tb2.Buffer(0).EntryCount() != 0 {
		t.Error("buffer survived restart; it must be volatile")
	}
	// Keys are i%100, so physically clustered: pages whose tuples are all
	// covered skip naturally (the Fig. 3 effect); the rest are read.
	_, s1, err := tb2.QueryEqual(0, iv(90))
	if err != nil {
		t.Fatal(err)
	}
	if s1.PagesRead+s1.PagesSkipped != wantPages {
		t.Errorf("first miss: read %d + skipped %d != %d pages", s1.PagesRead, s1.PagesSkipped, wantPages)
	}
	if s1.PagesRead < wantPages/2 {
		t.Errorf("first miss after load read only %d of %d pages", s1.PagesRead, wantPages)
	}
	_, s2, err := tb2.QueryEqual(0, iv(91))
	if err != nil {
		t.Fatal(err)
	}
	if s2.PagesSkipped != wantPages {
		t.Errorf("second miss skipped %d of %d", s2.PagesSkipped, wantPages)
	}
	// DML still works after reload (free hints rebuilt).
	rid, err := tb2.Insert(storage.NewTuple(iv(25), storage.StringValue("tail")))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tb2.Get(rid); err != nil {
		t.Fatal(err)
	}
	got, _, err = tb2.QueryEqual(0, iv(25))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 8 {
		t.Errorf("rows after post-load insert = %d, want 8", len(got))
	}
}

func TestSaveRequiresDataDir(t *testing.T) {
	e := New(Config{})
	if err := e.Save(); err == nil {
		t.Error("Save on in-memory engine should fail")
	}
	if _, err := Load(Config{}); err == nil {
		t.Error("Load without DataDir should fail")
	}
	if _, err := Load(Config{DataDir: t.TempDir()}); err == nil {
		t.Error("Load from empty dir should fail")
	}
}

func TestEngineExplainAndIntrospection(t *testing.T) {
	e, tb := newABC(t, Config{}, 600, 100)
	if err := tb.CreatePartialIndex(0, index.IntRange(1, 50)); err != nil {
		t.Fatal(err)
	}
	if got := e.TableNames(); len(got) != 1 || got[0] != "flights" {
		t.Errorf("TableNames = %v", got)
	}
	if e.Space() == nil {
		t.Error("Space accessor nil")
	}
	plan, err := tb.ExplainEqual(0, iv(25))
	if err != nil {
		t.Fatal(err)
	}
	if !plan.PartialHit {
		t.Errorf("plan = %+v", plan)
	}
	plan, err = tb.ExplainEqual(0, iv(90))
	if err != nil {
		t.Fatal(err)
	}
	if plan.Mechanism != "indexing scan" {
		t.Errorf("plan = %+v", plan)
	}
	if _, err := tb.ExplainEqual(99, iv(1)); err == nil {
		t.Error("bad column should fail")
	}
	rp, err := tb.ExplainRange(0, iv(10), iv(20))
	if err != nil {
		t.Fatal(err)
	}
	if !rp.PartialHit {
		t.Errorf("range plan = %+v", rp)
	}
	if _, err := tb.ExplainRange(99, iv(1), iv(2)); err == nil {
		t.Error("bad column should fail")
	}
	// Explain is free of side effects on the buffer.
	if tb.Buffer(0).EntryCount() != 0 {
		t.Error("explain mutated buffer")
	}
}

// TestCrossTableBufferSpace verifies the paper's Fig. 5 note: buffers of
// columns from *different* tables share one Index Buffer Space and
// compete for it.
func TestCrossTableBufferSpace(t *testing.T) {
	e := New(Config{Space: core.Config{
		IMax: 30, P: 60, K: 2, SpaceLimit: 2500,
		Rand: rand.New(rand.NewSource(3)),
	}})
	mkTable := func(name string) *Table {
		schema := storage.MustSchema(
			storage.Column{Name: "k", Kind: storage.KindInt64},
			storage.Column{Name: "pad", Kind: storage.KindString},
		)
		tb, err := e.CreateTable(name, schema)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(len(name))))
		pad := strings.Repeat("q", 300)
		for i := 0; i < 2000; i++ {
			tu := storage.NewTuple(iv(1+rng.Int63n(100)), storage.StringValue(pad))
			if _, err := tb.Insert(tu); err != nil {
				t.Fatal(err)
			}
		}
		if err := tb.CreatePartialIndex(0, index.IntRange(1, 10)); err != nil {
			t.Fatal(err)
		}
		return tb
	}
	t1, t2 := mkTable("one"), mkTable("two")

	if got := len(e.Space().Buffers()); got != 2 {
		t.Fatalf("buffers in shared space = %d", got)
	}
	// Hammer table one until its buffer saturates the shared space.
	rng := rand.New(rand.NewSource(9))
	for q := 0; q < 25; q++ {
		if _, _, err := t1.QueryEqual(0, iv(11+rng.Int63n(89))); err != nil {
			t.Fatal(err)
		}
	}
	used1 := t1.Buffer(0).EntryCount()
	if used1 == 0 {
		t.Fatal("table one never buffered")
	}
	if e.Space().Used() > 2500 {
		t.Fatalf("space used %d exceeds shared limit", e.Space().Used())
	}
	// Shift entirely to table two: it must claw space away from one.
	for q := 0; q < 60; q++ {
		if _, _, err := t2.QueryEqual(0, iv(11+rng.Int63n(89))); err != nil {
			t.Fatal(err)
		}
	}
	if t2.Buffer(0).EntryCount() == 0 {
		t.Error("table two never gained space")
	}
	if got := t1.Buffer(0).EntryCount(); got >= used1 {
		t.Errorf("table one kept %d entries (was %d); cross-table displacement failed", got, used1)
	}
	if e.Space().Used() > 2500 {
		t.Fatalf("space used %d exceeds shared limit after shift", e.Space().Used())
	}
}

func TestDropIndex(t *testing.T) {
	e, tb := newABC(t, Config{}, 500, 100)
	if err := tb.DropIndex(0); err == nil {
		t.Error("drop of nonexistent index should fail")
	}
	if err := tb.CreatePartialIndex(0, index.IntRange(1, 50)); err != nil {
		t.Fatal(err)
	}
	// Build the buffer.
	if _, _, err := tb.QueryEqual(0, iv(90)); err != nil {
		t.Fatal(err)
	}
	if e.Space().Used() == 0 {
		t.Fatal("setup: no buffer entries")
	}
	if err := tb.DropIndex(0); err != nil {
		t.Fatal(err)
	}
	if tb.Index(0) != nil || tb.Buffer(0) != nil {
		t.Error("index/buffer survived drop")
	}
	if e.Space().Used() != 0 {
		t.Errorf("space not released: %d", e.Space().Used())
	}
	// Queries fall back to full scans.
	_, stats, err := tb.QueryEqual(0, iv(25))
	if err != nil {
		t.Fatal(err)
	}
	if !stats.FullScan {
		t.Error("query after drop should full-scan")
	}
	// The column can be re-indexed.
	if err := tb.CreatePartialIndex(0, index.IntRange(1, 10)); err != nil {
		t.Fatal(err)
	}
}
