package engine

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"repro/internal/buffer"
	"repro/internal/index"
	"repro/internal/storage"
	"repro/internal/wal"
	"repro/internal/workload"
)

// The crash harness: a seeded operation stream runs against a
// WAL-backed engine that is abandoned ("crashed") at some boundary,
// reopened via Load, and diffed — RIDs, tuples, counts, and query
// results — against a never-crashed in-memory oracle that executed the
// same acknowledged prefix.

const (
	opInsert = iota
	opUpdate
	opDelete
	opQueryEqual
	opQueryRange
	opCheckpoint
	opKinds
)

type crashOp struct {
	kind  int
	table int
	k, k2 int64 // value draws
	pick  int64 // live-RID selector for update/delete
	pad   int   // payload size
}

// crashScript derives a deterministic op stream: a seeded bulk-load
// prefix, then a DML/query/checkpoint mix with values from the
// workload package's draws.
func crashScript(seed int64, loads, mixed int) []crashOp {
	rng := rand.New(rand.NewSource(seed))
	draw := workload.Uniform(1, 200)
	var ops []crashOp
	for i := 0; i < loads; i++ {
		ops = append(ops, crashOp{
			kind: opInsert, table: i % 2,
			k: draw(rng), k2: draw(rng), pad: 1 + rng.Intn(900),
		})
	}
	for i := 0; i < mixed; i++ {
		op := crashOp{
			table: rng.Intn(2),
			k:     draw(rng), k2: draw(rng),
			pick: rng.Int63(), pad: 1 + rng.Intn(900),
		}
		switch r := rng.Intn(10); {
		case r < 3:
			op.kind = opInsert
		case r < 5:
			op.kind = opUpdate
		case r < 6:
			op.kind = opDelete
		case r < 8:
			op.kind = opQueryEqual
		case r < 9:
			op.kind = opQueryRange
		default:
			op.kind = opCheckpoint
		}
		ops = append(ops, op)
	}
	return ops
}

// crashRig is one engine under the harness plus the live-RID book the
// driver uses to pick update/delete targets deterministically.
type crashRig struct {
	eng    *Engine
	tables []*Table
	rids   [][]storage.RID
}

func newCrashRig(t *testing.T, eng *Engine) *crashRig {
	t.Helper()
	schema := storage.MustSchema(
		storage.Column{Name: "k", Kind: storage.KindInt64},
		storage.Column{Name: "v", Kind: storage.KindInt64},
		storage.Column{Name: "payload", Kind: storage.KindString},
	)
	rig := &crashRig{eng: eng}
	for _, name := range []string{"orders", "events"} {
		tb, err := eng.CreateTable(name, schema)
		if err != nil {
			t.Fatal(err)
		}
		// A narrow coverage so most queries miss and exercise indexing
		// scans (and, post-crash, re-warming).
		if err := tb.CreatePartialIndex(0, index.IntRange(1, 20)); err != nil {
			t.Fatal(err)
		}
		rig.tables = append(rig.tables, tb)
		rig.rids = append(rig.rids, nil)
	}
	return rig
}

// apply executes one op. It returns the op's error; the rid book is
// only advanced on success, so an oracle replaying the acknowledged
// prefix evolves the identical book.
func (r *crashRig) apply(op crashOp) error {
	tb := r.tables[op.table]
	rids := &r.rids[op.table]
	switch op.kind {
	case opInsert:
		tu := storage.NewTuple(
			storage.Int64Value(op.k), storage.Int64Value(op.k2),
			storage.StringValue(strings.Repeat("p", op.pad)),
		)
		rid, err := tb.Insert(tu)
		if err != nil {
			return err
		}
		*rids = append(*rids, rid)
	case opUpdate:
		if len(*rids) == 0 {
			return nil
		}
		i := int(op.pick % int64(len(*rids)))
		tu := storage.NewTuple(
			storage.Int64Value(op.k), storage.Int64Value(op.k2),
			storage.StringValue(strings.Repeat("q", op.pad)),
		)
		newRID, err := tb.Update((*rids)[i], tu)
		if err != nil {
			return err
		}
		(*rids)[i] = newRID
	case opDelete:
		if len(*rids) == 0 {
			return nil
		}
		i := int(op.pick % int64(len(*rids)))
		if err := tb.Delete((*rids)[i]); err != nil {
			return err
		}
		*rids = append((*rids)[:i], (*rids)[i+1:]...)
	case opQueryEqual:
		_, _, err := tb.QueryEqual(0, storage.Int64Value(op.k))
		return err
	case opQueryRange:
		lo, hi := op.k, op.k+10
		_, _, err := tb.QueryRange(0, storage.Int64Value(lo), storage.Int64Value(hi))
		return err
	case opCheckpoint:
		if r.eng.wal != nil {
			return r.eng.Checkpoint()
		}
	}
	return nil
}

// contents returns the table's full (RID, tuple) listing, sorted — the
// bit-identical comparison unit.
func contents(t *testing.T, tb *Table) []string {
	t.Helper()
	var out []string
	err := tb.Scan(func(rid storage.RID, tu storage.Tuple) error {
		out = append(out, fmt.Sprintf("%d:%d|%s", rid.Page, rid.Slot, tu.String()))
		return nil
	})
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	sort.Strings(out)
	return out
}

func diffRigs(t *testing.T, label string, got, want *crashRig) {
	t.Helper()
	for i := range want.tables {
		name := want.tables[i].Name()
		g := contents(t, got.eng.Table(name))
		w := contents(t, want.tables[i])
		if len(g) != len(w) {
			t.Fatalf("%s: table %s has %d tuples, oracle has %d", label, name, len(g), len(w))
		}
		for j := range g {
			if g[j] != w[j] {
				t.Fatalf("%s: table %s row %d:\n  got  %s\n  want %s", label, name, j, g[j], w[j])
			}
		}
		// Query results must agree too (probe both the covered range and
		// the miss range).
		for _, key := range []int64{5, 50, 150} {
			gm, _, err := got.eng.Table(name).QueryEqual(0, storage.Int64Value(key))
			if err != nil {
				t.Fatalf("%s: recovered query: %v", label, err)
			}
			wm, _, err := want.tables[i].QueryEqual(0, storage.Int64Value(key))
			if err != nil {
				t.Fatalf("%s: oracle query: %v", label, err)
			}
			if len(gm) != len(wm) {
				t.Fatalf("%s: table %s key %d: %d matches, oracle %d", label, name, key, len(gm), len(wm))
			}
		}
	}
}

// oracleRig replays the first n ops on a fresh in-memory engine.
func oracleRig(t *testing.T, ops []crashOp, n int) *crashRig {
	t.Helper()
	rig := newCrashRig(t, New(Config{PoolPages: 64}))
	for _, op := range ops[:n] {
		if err := rig.apply(op); err != nil {
			t.Fatalf("oracle op failed: %v", err)
		}
	}
	return rig
}

func crashConfig(dir string) Config {
	return Config{
		DataDir:   dir,
		PoolPages: 4, // tiny pool: evictions write pages between checkpoints
		WAL: WALConfig{
			SyncPolicy:   wal.SyncBatch,
			SegmentBytes: 4 << 10, // force segment rotation mid-run
		},
	}
}

// TestCrashRecoveryAtEveryOpBoundary abandons the engine — no Close, no
// flush; the surviving files hold exactly what was physically written —
// after every prefix of the op stream, reopens via Load, and requires
// bit-identical contents against the oracle. Under the default sync
// policies every acknowledged op must survive.
func TestCrashRecoveryAtEveryOpBoundary(t *testing.T) {
	ops := crashScript(7, 24, 28)
	for k := 0; k <= len(ops); k += 1 + k%3 {
		k := k
		t.Run(fmt.Sprintf("boundary=%d", k), func(t *testing.T) {
			t.Parallel()
			dir := t.TempDir()
			rig := newCrashRig(t, New(crashConfig(dir)))
			for i := 0; i < k; i++ {
				if err := rig.apply(ops[i]); err != nil {
					t.Fatalf("op %d: %v", i, err)
				}
			}
			// Crash: walk away mid-flight. Nothing is flushed or closed.
			recovered, err := Load(crashConfig(dir))
			if err != nil {
				t.Fatalf("Load after crash at %d: %v", k, err)
			}
			defer recovered.Close()
			got := &crashRig{eng: recovered}
			diffRigs(t, fmt.Sprintf("crash at %d", k), got, oracleRig(t, ops, k))
		})
	}
}

// TestCrashDuringFlush injects store-level write faults so the "crash"
// lands inside a page writeback or checkpoint flush, at a sweep of
// countdown positions. Acknowledged ops must still recover exactly.
func TestCrashDuringFlush(t *testing.T) {
	ops := crashScript(11, 24, 140)
	for _, writesLeft := range []int{0, 1, 2, 4, 7, 12} {
		writesLeft := writesLeft
		t.Run(fmt.Sprintf("writesLeft=%d", writesLeft), func(t *testing.T) {
			t.Parallel()
			dir := t.TempDir()
			cfg := crashConfig(dir)
			var faults []*buffer.FaultStore
			cfg.wrapStore = func(_ string, s pageStore) pageStore {
				fs := buffer.NewFaultStore(s)
				fs.SetWritesLeft(writesLeft)
				faults = append(faults, fs)
				return fs
			}
			rig := newCrashRig(t, New(cfg))
			acked := 0
			for _, op := range ops {
				if err := rig.apply(op); err != nil {
					if !errors.Is(err, buffer.ErrInjected) {
						t.Fatalf("op %d: unexpected error: %v", acked, err)
					}
					break
				}
				acked++
			}
			if acked == len(ops) {
				t.Fatalf("fault never fired (writesLeft=%d)", writesLeft)
			}
			recovered, err := Load(crashConfig(dir))
			if err != nil {
				t.Fatalf("Load after mid-flush crash: %v", err)
			}
			defer recovered.Close()
			got := &crashRig{eng: recovered}
			diffRigs(t, fmt.Sprintf("mid-flush, %d acked", acked), got, oracleRig(t, ops, acked))
		})
	}
}

// TestTornWALTailRecovery scribbles garbage onto the end of the last
// log segment — a record torn mid-write — and requires recovery to
// repair it and keep every acknowledged op.
func TestTornWALTailRecovery(t *testing.T) {
	dir := t.TempDir()
	ops := crashScript(13, 20, 12)
	rig := newCrashRig(t, New(crashConfig(dir)))
	for i, op := range ops {
		if err := rig.apply(op); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}
	// Abandon, then tear the log tail.
	segs, err := filepath.Glob(filepath.Join(dir, "wal", "wal-*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no wal segments: %v", err)
	}
	sort.Strings(segs)
	f, err := os.OpenFile(segs[len(segs)-1], os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("torn-mid-write-garbage")); err != nil {
		t.Fatal(err)
	}
	f.Close()

	recovered, err := Load(crashConfig(dir))
	if err != nil {
		t.Fatalf("Load with torn wal tail: %v", err)
	}
	defer recovered.Close()
	if recovered.RecoveryStats().TornWALBytes == 0 {
		t.Error("TornWALBytes = 0, want > 0")
	}
	got := &crashRig{eng: recovered}
	diffRigs(t, "torn wal tail", got, oracleRig(t, ops, len(ops)))
}

// TestTornPageTailRecovery appends a partial page to a table's page
// file — a heap append torn mid-write — and requires Load to trim it.
func TestTornPageTailRecovery(t *testing.T) {
	dir := t.TempDir()
	ops := crashScript(17, 16, 0)
	rig := newCrashRig(t, New(crashConfig(dir)))
	for i, op := range ops {
		if err := rig.apply(op); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}
	if err := rig.eng.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(filepath.Join(dir, "orders.pages"), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(make([]byte, buffer.PageSize/3)); err != nil {
		t.Fatal(err)
	}
	f.Close()

	recovered, err := Load(crashConfig(dir))
	if err != nil {
		t.Fatalf("Load with torn page tail: %v", err)
	}
	defer recovered.Close()
	if got := recovered.RecoveryStats().TornPageBytes; got != int64(buffer.PageSize/3) {
		t.Errorf("TornPageBytes = %d, want %d", got, buffer.PageSize/3)
	}
	got := &crashRig{eng: recovered}
	diffRigs(t, "torn page tail", got, oracleRig(t, ops, len(ops)))
}

// TestSurplusPagesTruncated appends whole pages of garbage past the
// checkpointed extent; Load must drop them instead of silently keeping
// unreachable garbage for redo to build on (the old behavior).
func TestSurplusPagesTruncated(t *testing.T) {
	dir := t.TempDir()
	ops := crashScript(19, 16, 0)
	rig := newCrashRig(t, New(crashConfig(dir)))
	for i, op := range ops {
		if err := rig.apply(op); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}
	if err := rig.eng.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(filepath.Join(dir, "events.pages"), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(make([]byte, 2*buffer.PageSize)); err != nil {
		t.Fatal(err)
	}
	f.Close()

	recovered, err := Load(crashConfig(dir))
	if err != nil {
		t.Fatalf("Load with surplus pages: %v", err)
	}
	defer recovered.Close()
	if got := recovered.RecoveryStats().TruncatedPages; got != 2 {
		t.Errorf("TruncatedPages = %d, want 2", got)
	}
	got := &crashRig{eng: recovered}
	diffRigs(t, "surplus pages", got, oracleRig(t, ops, len(ops)))
}

// openFDs counts this process's open file descriptors (linux-style
// /proc; skipped elsewhere).
func openFDs(t *testing.T) int {
	t.Helper()
	ents, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		t.Skipf("no /proc/self/fd: %v", err)
	}
	return len(ents)
}

// TestLoadFailureClosesFiles fails Load midway — the last table's page
// file is shorter than the catalog demands — and asserts no file
// descriptors leak from the tables attached before the failure.
func TestLoadFailureClosesFiles(t *testing.T) {
	dir := t.TempDir()
	ops := crashScript(23, 20, 0)
	rig := newCrashRig(t, New(crashConfig(dir)))
	for i, op := range ops {
		if err := rig.apply(op); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}
	if err := rig.eng.Close(); err != nil {
		t.Fatal(err)
	}
	// "orders" sorts before "events" is false ("events" < "orders"), so
	// truncate orders — the second table Load attaches — to force the
	// failure after events is already open.
	if err := os.Truncate(filepath.Join(dir, "orders.pages"), 0); err != nil {
		t.Fatal(err)
	}

	before := openFDs(t)
	if _, err := Load(crashConfig(dir)); err == nil {
		t.Fatal("Load of truncated page file should fail")
	}
	if after := openFDs(t); after != before {
		t.Errorf("fd leak across failed Load: %d -> %d", before, after)
	}
}

// TestRewarmRegistersConvergenceEpisode crashes an engine mid-workload,
// reloads it, and replays the recovered query tail: the buffers re-warm
// through the normal query path and the restart registers as a fresh
// convergence episode (Resets increments) on the adaptation timeline.
func TestRewarmRegistersConvergenceEpisode(t *testing.T) {
	dir := t.TempDir()
	rig := newCrashRig(t, New(crashConfig(dir)))
	rng := rand.New(rand.NewSource(29))
	for i := 0; i < 30; i++ {
		tu := storage.NewTuple(
			storage.Int64Value(1+rng.Int63n(200)), storage.Int64Value(rng.Int63n(100)),
			storage.StringValue(strings.Repeat("w", 200)),
		)
		if err := rig.apply(crashOp{kind: opInsert, table: 0, k: 1 + rng.Int63n(200), k2: rng.Int63n(100), pad: 120}); err != nil {
			t.Fatal(err)
		}
		_ = tu
	}
	// Queries beyond the indexed range miss and are logged; the final
	// insert's group commit flushes their records to disk.
	for i := 0; i < 12; i++ {
		if _, _, err := rig.tables[0].QueryEqual(0, storage.Int64Value(30+int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := rig.apply(crashOp{kind: opInsert, table: 0, k: 3, k2: 4, pad: 10}); err != nil {
		t.Fatal(err)
	}

	recovered, err := Load(crashConfig(dir)) // crash: no Close
	if err != nil {
		t.Fatal(err)
	}
	defer recovered.Close()
	if got := recovered.RecoveryStats().QueryTail; got < 12 {
		t.Fatalf("QueryTail = %d, want >= 12", got)
	}

	recovered.Timeline().Enable(true)
	n, err := recovered.Rewarm(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if n < 12 {
		t.Fatalf("Rewarm replayed %d queries, want >= 12", n)
	}
	var found bool
	for _, c := range recovered.Convergence() {
		if c.Table == "orders" && c.Resets == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no convergence entry with Resets=1 after Rewarm: %+v", recovered.Convergence())
	}
	// The tail is consumed: a second Rewarm is a no-op.
	if n2, err := recovered.Rewarm(context.Background()); err != nil || n2 != 0 {
		t.Fatalf("second Rewarm = (%d, %v), want (0, nil)", n2, err)
	}
}

// TestCrashLoopRestartKeepsAcknowledgedOps crashes, recovers, crashes
// again immediately (no ops in between), recovers again, and then runs
// acknowledged DML. The second Load reopens the WAL at a tail segment
// whose first LSN equals the resume point; a duplicate segment entry
// there let the post-recovery checkpoint unlink the live segment, so
// the DML's fsynced commits vanished on the next crash.
func TestCrashLoopRestartKeepsAcknowledgedOps(t *testing.T) {
	dir := t.TempDir()
	// Large segments: every post-restart append must stay in the first
	// (wrongly unlinked) segment — a rotation would start a fresh disk
	// file and full-page-image redo would mask the loss.
	cfg := func() Config {
		c := crashConfig(dir)
		c.WAL.SegmentBytes = 1 << 20
		return c
	}
	ops := crashScript(31, 20, 12)
	rig := newCrashRig(t, New(cfg()))
	for i, op := range ops {
		if err := rig.apply(op); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}

	// Crash 1: abandon. Restart 1: recover, then crash again with no
	// appends — leaves an empty tail segment at the resume LSN.
	if _, err := Load(cfg()); err != nil {
		t.Fatalf("Load 1: %v", err)
	}

	// Restart 2: recover at the same LSN and run more acknowledged DML.
	e2, err := Load(cfg())
	if err != nil {
		t.Fatalf("Load 2: %v", err)
	}
	rig2 := &crashRig{
		eng:    e2,
		tables: []*Table{e2.Table("orders"), e2.Table("events")},
		rids:   make([][]storage.RID, 2),
	}
	extra := crashScript(37, 10, 0)
	for i, op := range extra {
		if err := rig2.apply(op); err != nil {
			t.Fatalf("extra op %d: %v", i, err)
		}
	}

	// Crash 3: abandon again. Every acknowledged op — original stream
	// and the post-restart extras — must survive.
	recovered, err := Load(cfg())
	if err != nil {
		t.Fatalf("Load 3: %v", err)
	}
	defer recovered.Close()
	all := append(append([]crashOp(nil), ops...), extra...)
	got := &crashRig{eng: recovered}
	diffRigs(t, "crash loop", got, oracleRig(t, all, len(all)))
}

// TestVacuumCrashBeforeCatalogRepublish crashes in vacuum's window
// between the page-file swap and the catalog republication. The old
// behavior left catalog NumPages > file pages and Load refused forever;
// the vacuum-commit marker must let Load accept the swapped file.
func TestVacuumCrashBeforeCatalogRepublish(t *testing.T) {
	dir := t.TempDir()
	rig := newCrashRig(t, New(crashConfig(dir)))
	tb := rig.tables[0]
	var rids []storage.RID
	want := map[string]int{}
	for i := 0; i < 60; i++ {
		tu := storage.NewTuple(
			storage.Int64Value(int64(i%200+1)), storage.Int64Value(int64(i)),
			storage.StringValue(strings.Repeat("x", 300)),
		)
		rid, err := tb.Insert(tu)
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
		if i >= 45 {
			want[tu.String()]++
		}
	}
	for i := 0; i < 45; i++ {
		if err := tb.Delete(rids[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := rig.eng.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// The swap itself, without Vacuum's closing checkpoint — then crash.
	before, after, err := tb.vacuum()
	if err != nil {
		t.Fatal(err)
	}
	if after >= before {
		t.Fatalf("vacuum did not shrink the heap: %d -> %d pages", before, after)
	}

	recovered, err := Load(crashConfig(dir))
	if err != nil {
		t.Fatalf("Load after vacuum crash: %v", err)
	}
	defer recovered.Close()
	if got := recovered.RecoveryStats().VacuumRepairs; got != 1 {
		t.Errorf("VacuumRepairs = %d, want 1", got)
	}
	got := map[string]int{}
	n := 0
	err = recovered.Table("orders").Scan(func(_ storage.RID, tu storage.Tuple) error {
		got[tu.String()]++
		n++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 15 {
		t.Fatalf("recovered %d tuples, want 15", n)
	}
	for k, c := range want {
		if got[k] != c {
			t.Fatalf("tuple %q: got %d, want %d", k, got[k], c)
		}
	}
	// The marker is consumed and the repaired extent republished: the
	// marker file is gone and a clean reopen succeeds.
	if _, err := os.Stat(vacuumMarkerPath(dir, "orders")); !os.IsNotExist(err) {
		t.Errorf("vacuum marker not retired: %v", err)
	}
	if err := recovered.Close(); err != nil {
		t.Fatal(err)
	}
	again, err := Load(crashConfig(dir))
	if err != nil {
		t.Fatalf("reopen after repair: %v", err)
	}
	again.Close()
}

// TestStaleVacuumMarkerIgnored: a marker whose page count does not
// match the file predates the swap (vacuum crashed before the rename);
// Load must ignore it, keep the old state, and sweep the marker.
func TestStaleVacuumMarkerIgnored(t *testing.T) {
	dir := t.TempDir()
	ops := crashScript(41, 16, 0)
	rig := newCrashRig(t, New(crashConfig(dir)))
	for i, op := range ops {
		if err := rig.apply(op); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}
	if err := rig.eng.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(vacuumMarkerPath(dir, "orders"), []byte(`{"pages": 999}`), 0o644); err != nil {
		t.Fatal(err)
	}

	recovered, err := Load(crashConfig(dir))
	if err != nil {
		t.Fatalf("Load with stale marker: %v", err)
	}
	defer recovered.Close()
	if got := recovered.RecoveryStats().VacuumRepairs; got != 0 {
		t.Errorf("VacuumRepairs = %d, want 0", got)
	}
	gotRig := &crashRig{eng: recovered}
	diffRigs(t, "stale marker", gotRig, oracleRig(t, ops, len(ops)))
	if _, err := os.Stat(vacuumMarkerPath(dir, "orders")); !os.IsNotExist(err) {
		t.Errorf("stale marker not swept: %v", err)
	}
}
