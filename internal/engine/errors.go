package engine

import "errors"

// Sentinel errors for the engine's public surface. Call sites wrap them
// with %w and situational detail (table, column), so callers match with
// errors.Is rather than string comparison; the repro facade re-exports
// them as repro.ErrNoColumn etc.
var (
	// ErrNoColumn marks a reference to a column the table does not have.
	ErrNoColumn = errors.New("no such column")
	// ErrNoIndex marks an index operation on a column without one.
	ErrNoIndex = errors.New("column has no index")
	// ErrDuplicateIndex marks index creation on an already-indexed column.
	ErrDuplicateIndex = errors.New("column already indexed")
	// ErrDuplicateTable marks creation of a table whose name is taken.
	ErrDuplicateTable = errors.New("table already exists")
	// ErrClosed marks any operation on an engine after Close.
	ErrClosed = errors.New("database is closed")
	// ErrQuotaExceeded marks a strict tenant's miss rejected because the
	// tenant's Index-Buffer quota is exhausted (non-strict tenants degrade
	// to unindexed scans instead).
	ErrQuotaExceeded = errors.New("tenant quota exceeded")
	// ErrTenantUnknown marks a reference to an unregistered tenant.
	ErrTenantUnknown = errors.New("unknown tenant")
)
