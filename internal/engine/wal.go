package engine

import (
	"context"
	"fmt"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/buffer"
	"repro/internal/catalog"
	"repro/internal/flight"
	"repro/internal/storage"
	"repro/internal/wal"
)

// WALConfig configures the engine's write-ahead log. It only takes
// effect on DataDir-backed engines; in-memory engines have nothing
// durable to log.
type WALConfig struct {
	// Disable turns the WAL off, reverting to PR-era snapshot-only
	// persistence: Save/Close write a point-in-time image and anything
	// after the last Save is lost on a crash.
	Disable bool

	// SyncPolicy selects the Commit durability protocol (group commit by
	// default); see wal.SyncPolicy.
	SyncPolicy wal.SyncPolicy

	// SegmentBytes overrides the log segment rotation threshold.
	SegmentBytes int

	// SyncDelay charges every log fsync with an extra sleep, the same
	// simulated-device convention as Config.ReadLatency, so group-commit
	// experiments keep a real device's shape on fast filesystems.
	SyncDelay time.Duration

	// CheckpointEvery, when positive, runs a background checkpoint loop
	// at this period. Zero means checkpoints happen only on DDL, Save,
	// Close, and explicit Checkpoint calls.
	CheckpointEvery time.Duration

	// DisableQueryLog stops logging query descriptors. Queries are never
	// needed for redo correctness — they only feed post-recovery buffer
	// re-warming — so this trades restart warmth for log volume.
	DisableQueryLog bool
}

// walSubdir is the log's directory under DataDir.
const walSubdir = "wal"

func walDir(dataDir string) string { return filepath.Join(dataDir, walSubdir) }

func walOptions(cfg Config) wal.Options {
	return wal.Options{
		Policy:       cfg.WAL.SyncPolicy,
		SegmentBytes: cfg.WAL.SegmentBytes,
		SyncDelay:    cfg.WAL.SyncDelay,
	}
}

// RecoveryStats describes what Load's recovery pass did.
type RecoveryStats struct {
	// CheckpointLSN is the catalog's checkpoint position redo started
	// from.
	CheckpointLSN uint64 `json:"checkpoint_lsn"`
	// RedoRecords and RedoPages count replayed DML records and the page
	// images they wrote.
	RedoRecords int `json:"redo_records"`
	RedoPages   int `json:"redo_pages"`
	// TruncatedPages counts heap pages dropped because the page file ran
	// past the catalog's extent — an append that never reached a durable
	// checkpoint or log record.
	TruncatedPages int `json:"truncated_pages"`
	// VacuumRepairs counts tables whose extent was taken from a
	// vacuum-commit marker: a vacuum swapped its rewritten page file in
	// but crashed before republishing the catalog.
	VacuumRepairs int `json:"vacuum_repairs"`
	// TornPageBytes counts partial-page bytes trimmed from page files;
	// TornWALBytes counts bytes of a mid-write log record truncated from
	// the final segment.
	TornPageBytes int64 `json:"torn_page_bytes"`
	TornWALBytes  int64 `json:"torn_wal_bytes"`
	// QueryTail is the number of logged query descriptors recovered for
	// Rewarm.
	QueryTail int `json:"query_tail"`
}

// RecoveryStats returns what the Load that produced this engine did
// during redo. Zero for engines created with New.
func (e *Engine) RecoveryStats() RecoveryStats { return e.recovery }

// WALStats returns log-writer counters, or zeros when the WAL is off.
func (e *Engine) WALStats() wal.Stats {
	if e.wal == nil {
		return wal.Stats{}
	}
	return e.wal.Stats()
}

// WALTelemetry returns the log writer's full observability snapshot;
// ok is false when the WAL is off (in-memory or disabled engines).
func (e *Engine) WALTelemetry() (wal.Telemetry, bool) {
	if e.wal == nil {
		return wal.Telemetry{}, false
	}
	return e.wal.Telemetry(), true
}

// CheckpointStats is the checkpoint-telemetry snapshot.
type CheckpointStats struct {
	// Completed counts finished checkpoints over the engine's lifetime.
	Completed uint64 `json:"completed"`
	// LastDuration is the wall time of the most recent checkpoint (0
	// before the first completes).
	LastDuration time.Duration `json:"last_duration_ns"`
	// Age is the time since the last checkpoint completed — or since the
	// engine started, when none has.
	Age time.Duration `json:"age_ns"`
}

// CheckpointStats returns the engine's checkpoint telemetry (zero Age
// basis is engine start for engines that never checkpointed).
func (e *Engine) CheckpointStats() CheckpointStats {
	s := CheckpointStats{
		Completed:    e.ckptCount.Load(),
		LastDuration: time.Duration(e.ckptLastNanos.Load()),
	}
	if end := e.ckptLastEnd.Load(); end > 0 {
		s.Age = time.Since(time.Unix(0, end))
	} else {
		s.Age = time.Since(e.started)
	}
	return s
}

// checkpointStallFactor: with a periodic checkpointer configured, an
// age beyond this many periods while log work is pending means the
// loop is stuck (wedged fsync, starved goroutine) — the health surface
// flips unhealthy rather than letting the segment backlog grow quietly.
const checkpointStallFactor = 4

// DurabilityHealth is the WAL/checkpoint health summary `/healthz`
// serves — and the condition under which it returns 503.
type DurabilityHealth struct {
	// WALEnabled is false for in-memory or WAL-disabled engines; all
	// other fields are zero then and the engine counts as healthy (there
	// is no durability to be unhealthy about).
	WALEnabled bool   `json:"wal_enabled"`
	SyncPolicy string `json:"sync_policy,omitempty"`
	// SyncError is the writer's sticky fsync error ("" while healthy).
	SyncError string `json:"sync_error,omitempty"`
	// WALInitError reports a WAL that failed to initialize (the engine
	// is refusing DML).
	WALInitError string `json:"wal_init_error,omitempty"`

	AppendedLSN   uint64 `json:"appended_lsn"`
	DurableLSN    uint64 `json:"durable_lsn"`
	CheckpointLSN uint64 `json:"checkpoint_lsn"`
	// SegmentBacklog is the live segment-file count; it grows while
	// checkpoints stall.
	SegmentBacklog int `json:"segment_backlog"`

	Checkpoints          uint64  `json:"checkpoints"`
	LastCheckpointMillis float64 `json:"last_checkpoint_ms"`
	CheckpointAgeSeconds float64 `json:"checkpoint_age_seconds"`
	// CheckpointStalled is set when a periodic checkpointer is
	// configured, log work is pending, and the age exceeds
	// checkpointStallFactor periods.
	CheckpointStalled bool `json:"checkpoint_stalled,omitempty"`

	// Healthy is false on a sticky sync error, a failed WAL init, or a
	// stalled checkpointer; Reason names the first failing condition.
	Healthy bool   `json:"healthy"`
	Reason  string `json:"reason,omitempty"`
}

// DurabilityHealth evaluates the engine's durability health.
func (e *Engine) DurabilityHealth() DurabilityHealth {
	h := DurabilityHealth{Healthy: true}
	if e.walErr != nil {
		h.WALInitError = e.walErr.Error()
		h.Healthy = false
		h.Reason = "wal failed to initialize"
		return h
	}
	if e.wal == nil {
		return h
	}
	h.WALEnabled = true
	h.SyncPolicy = e.cfg.WAL.SyncPolicy.String()
	h.AppendedLSN = uint64(e.wal.AppendedLSN())
	h.DurableLSN = uint64(e.wal.DurableLSN())
	h.CheckpointLSN = e.lastCkpt.Load()
	t := e.wal.Telemetry()
	h.SegmentBacklog = t.ActiveSegments
	ck := e.CheckpointStats()
	h.Checkpoints = ck.Completed
	h.LastCheckpointMillis = float64(ck.LastDuration) / float64(time.Millisecond)
	h.CheckpointAgeSeconds = ck.Age.Seconds()
	if err := e.wal.SyncError(); err != nil {
		h.SyncError = err.Error()
		h.Healthy = false
		h.Reason = "wal sync error: " + err.Error()
		return h
	}
	if every := e.cfg.WAL.CheckpointEvery; every > 0 &&
		h.AppendedLSN > h.CheckpointLSN &&
		ck.Age > checkpointStallFactor*every {
		h.CheckpointStalled = true
		h.Healthy = false
		h.Reason = fmt.Sprintf("checkpointer stalled: %.1fs since last checkpoint (period %s)",
			ck.Age.Seconds(), every)
	}
	return h
}

// walError surfaces a WAL that failed to initialize: the engine stays
// queryable but refuses DML rather than silently running non-durable.
func (e *Engine) walError() error {
	if e.walErr != nil {
		return fmt.Errorf("engine: wal unavailable: %w", e.walErr)
	}
	return nil
}

// capturePage copies the current image of one heap page. Called with
// the table lock exclusive; the page is resident (just dirtied by the
// operation being logged, or pinned by the caller), so this is a pool
// hit, not device I/O.
func (t *Table) capturePage(p storage.PageID) (wal.PageImage, error) {
	f, err := t.pool.Fetch(p)
	if err != nil {
		return wal.PageImage{}, err
	}
	img := make([]byte, buffer.PageSize)
	copy(img, f.Data())
	t.pool.Unpin(f)
	return wal.PageImage{Page: p, Data: img}, nil
}

// logDML appends one DML record — logical fields plus full images of
// the dirtied pages — and blocks until it is durable per the sync
// policy. Called with the table lock exclusive, after the heap
// operation and index maintenance succeeded. Pages may repeat (an
// in-place update names the same page twice); duplicates are captured
// once.
func (t *Table) logDML(fa *flight.Active, kind wal.Kind, rid, oldRID storage.RID, pages ...storage.PageID) error {
	w := t.engine.wal
	if w == nil {
		return nil
	}
	var start time.Time
	if fa != nil {
		start = time.Now()
	}
	rec := &wal.Record{
		Kind:   kind,
		Table:  t.name,
		Pages:  t.heap.NumPages(),
		RID:    rid,
		OldRID: oldRID,
	}
	for _, p := range pages {
		dup := false
		for _, im := range rec.Images {
			if im.Page == p {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		im, err := t.capturePage(p)
		if err != nil {
			return fmt.Errorf("engine: wal image of %s page %d: %w", t.name, p, err)
		}
		rec.Images = append(rec.Images, im)
	}
	lsn, err := w.Append(rec)
	if err != nil {
		return fmt.Errorf("engine: wal append: %w", err)
	}
	if err := w.Commit(lsn); err != nil {
		return fmt.Errorf("engine: wal commit: %w", err)
	}
	if fa != nil {
		// Append+Commit wall time is the statement's durability cost; the
		// batch is the group the covering fsync made durable with it.
		fa.WAL(time.Since(start), w.LastBatch())
	}
	return nil
}

// logQuery appends one query descriptor for post-recovery re-warming.
// Best-effort and async: the record rides the next fsync (a lost query
// record costs a little restart warmth, never correctness), and errors
// are swallowed for the same reason.
func (t *Table) logQuery(column int, equal bool, lo, hi storage.Value) {
	w := t.engine.wal
	if w == nil || t.engine.cfg.WAL.DisableQueryLog {
		return
	}
	_, _ = w.Append(&wal.Record{
		Kind:   wal.KindQuery,
		Table:  t.name,
		Column: column,
		Equal:  equal,
		Lo:     lo,
		Hi:     hi,
	})
}

// Checkpoint flushes every table's dirty pages, writes a catalog
// consistent with them, and truncates the log up to the captured
// position. Readers are not blocked: only shared table locks are taken
// (the pool is internally synchronized), so queries proceed while the
// checkpoint runs; DML on a table briefly waits for that table's flush.
func (e *Engine) Checkpoint() error {
	if err := e.checkOpen(); err != nil {
		return err
	}
	if e.wal == nil {
		return fmt.Errorf("engine: Checkpoint requires a WAL-backed engine")
	}
	return e.checkpoint()
}

// checkpointIfWAL checkpoints when a WAL is active — the DDL epilogue.
// DDL forcing a synchronous checkpoint keeps the log free of schema
// records: everything in the log is DML or queries against a catalog
// that already reflects all DDL.
func (e *Engine) checkpointIfWAL() error {
	if e.wal == nil {
		return nil
	}
	return e.checkpoint()
}

// checkpoint is the internal variant without the closed check, used by
// Close for the final checkpoint. Ordering is the write-ahead rule run
// backwards: capture the log position, make the log durable up to it,
// then flush pages, then publish a catalog naming the position, then
// reclaim the log. Records appended mid-checkpoint are beyond the
// captured position and simply replay on top after a crash — redo by
// full page images is idempotent.
func (e *Engine) checkpoint() error {
	start := time.Now()
	e.ckptMu.Lock()
	defer e.ckptMu.Unlock()
	e.mu.RLock()
	defer e.mu.RUnlock()

	lsn := e.wal.AppendedLSN()
	if err := e.wal.Sync(); err != nil {
		return err
	}

	var cat catalog.Catalog
	names := make([]string, 0, len(e.tables))
	for n := range e.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		t := e.tables[n]
		t.mu.RLock()
		err := t.saveMetaLocked(&cat)
		t.mu.RUnlock()
		if err != nil {
			return err
		}
	}
	cat.CheckpointLSN = uint64(lsn)
	if err := catalog.Save(e.cfg.DataDir, cat); err != nil {
		return err
	}
	e.lastCkpt.Store(uint64(lsn))
	if err := e.wal.TruncateTo(lsn); err != nil {
		return err
	}
	e.ckptCount.Add(1)
	e.ckptLastNanos.Store(int64(time.Since(start)))
	e.ckptLastEnd.Store(time.Now().UnixNano())
	return nil
}

// startCheckpointer launches the periodic checkpoint loop when
// configured.
func (e *Engine) startCheckpointer() {
	if e.wal == nil || e.cfg.WAL.CheckpointEvery <= 0 {
		return
	}
	e.ckptStop = make(chan struct{})
	e.ckptDone = make(chan struct{})
	go func() {
		defer close(e.ckptDone)
		tick := time.NewTicker(e.cfg.WAL.CheckpointEvery)
		defer tick.Stop()
		for {
			select {
			case <-e.ckptStop:
				return
			case <-tick.C:
				// Skip when nothing was logged since the last checkpoint.
				if uint64(e.wal.AppendedLSN()) == e.lastCkpt.Load() {
					continue
				}
				_ = e.checkpoint() // surfaced again by the Close checkpoint
			}
		}
	}()
}

// stopCheckpointer halts the periodic loop and waits for it.
func (e *Engine) stopCheckpointer() {
	if e.ckptStop == nil {
		return
	}
	close(e.ckptStop)
	<-e.ckptDone
	e.ckptStop = nil
}

// rewarmQuery is one recovered query descriptor awaiting replay.
type rewarmQuery struct {
	table  string
	column int
	equal  bool
	lo, hi storage.Value
}

// Rewarm replays the query tail recovered from the log through the
// normal query path, so the volatile Index Buffers — which never
// survive a restart by design (paper §III) — converge back toward
// their pre-crash state without waiting for live traffic. Each
// affected buffer gets one "buffer-reset" event first, so the restart
// registers as a fresh convergence episode on the adaptation timeline
// (enable the timeline before calling Rewarm to record it).
//
// The tail is consumed: a second call replays nothing. Returns the
// number of queries replayed; unknown tables or columns in the tail
// (dropped since logging) are skipped.
func (e *Engine) Rewarm(ctx context.Context) (int, error) {
	if err := e.checkOpen(); err != nil {
		return 0, err
	}
	e.rewarmMu.Lock()
	tail := e.rewarm
	e.rewarm = nil
	e.rewarmMu.Unlock()

	obs := spaceSpans{tr: e.tracer, tl: e.timeline}
	reset := make(map[string]bool)
	n := 0
	for _, q := range tail {
		if err := ctx.Err(); err != nil {
			return n, err
		}
		t := e.Table(q.table)
		if t == nil || q.column < 0 || q.column >= t.schema.NumColumns() {
			continue
		}
		if t.Index(q.column) == nil {
			continue
		}
		if name := t.bufferName(q.column); t.Buffer(q.column) != nil && !reset[name] {
			reset[name] = true
			obs.SpaceEvent("buffer-reset", name, -1, 0)
		}
		var err error
		if q.equal {
			_, _, err = t.QueryEqualCtx(ctx, q.column, q.lo)
		} else {
			_, _, err = t.QueryRangeCtx(ctx, q.column, q.lo, q.hi)
		}
		if err != nil {
			return n, fmt.Errorf("engine: rewarm replay on %s: %w", q.table, err)
		}
		n++
	}
	return n, nil
}
