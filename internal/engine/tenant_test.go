package engine

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/storage"
)

// newTenantTable creates a tenant-owned two-column table with rows rows,
// values cycling over [1, domain], and a partial index covering
// [1, covered]. The payload pads rows so a page holds only a handful.
func newTenantTable(t *testing.T, e *Engine, tn *core.Tenant, rows, domain, covered int) *Table {
	t.Helper()
	schema := storage.MustSchema(
		storage.Column{Name: "a", Kind: storage.KindInt64},
		storage.Column{Name: "payload", Kind: storage.KindString},
	)
	tb, err := e.CreateTableFor(tn, "t", schema)
	if err != nil {
		t.Fatal(err)
	}
	pad := strings.Repeat("x", 200)
	for i := 0; i < rows; i++ {
		tu := storage.NewTuple(iv(int64(i%domain)+1), storage.StringValue(pad))
		if _, err := tb.Insert(tu); err != nil {
			t.Fatal(err)
		}
	}
	if err := tb.CreatePartialIndex(0, index.RangeCoverage{Lo: iv(1), Hi: iv(int64(covered))}); err != nil {
		t.Fatal(err)
	}
	return tb
}

func TestTenantCatalogIsolation(t *testing.T) {
	e := New(Config{Space: core.Config{IMax: 100, P: 100}})
	defer e.Close()
	tn, err := e.CreateTenant("acme", 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.CreateTenant("acme", 0, false); err == nil {
		t.Error("duplicate tenant accepted")
	}
	if _, err := e.TenantFor("ghost"); !errors.Is(err, ErrTenantUnknown) {
		t.Errorf("TenantFor(ghost) = %v, want ErrTenantUnknown", err)
	}
	if got, err := e.TenantFor(""); got != nil || err != nil {
		t.Errorf("TenantFor(\"\") = %v, %v, want nil, nil", got, err)
	}

	tb := newTenantTable(t, e, tn, 50, 20, 5)
	if got := tb.Name(); got != "acme:t" {
		t.Errorf("catalog name = %q, want acme:t", got)
	}
	if got := tb.DisplayName(); got != "t" {
		t.Errorf("display name = %q, want t", got)
	}
	if e.Table("t") != nil {
		t.Error("tenant table visible under its bare name")
	}
	if e.TableFor(tn, "t") != tb {
		t.Error("TableFor(tn) did not resolve the tenant table")
	}
	if e.TableFor(nil, "t") != nil {
		t.Error("default-tenant lookup leaked into the tenant namespace")
	}
	names := e.TableNamesFor(tn)
	if len(names) != 1 || names[0] != "t" {
		t.Errorf("TableNamesFor = %v, want [t]", names)
	}
	if len(e.TableNamesFor(nil)) != 0 {
		t.Errorf("default tenant sees %v", e.TableNamesFor(nil))
	}
}

// TestTenantDegradedScan drives a non-strict tenant past its quota and
// checks the degrade path end to end: correct rows, QuotaDegraded set,
// no buffer mutation, Degraded counted.
func TestTenantDegradedScan(t *testing.T) {
	e := New(Config{Space: core.Config{IMax: 100, P: 100, SpaceLimit: 10000}})
	defer e.Close()
	tn, err := e.CreateTenant("tiny", 3, false)
	if err != nil {
		t.Fatal(err)
	}
	tb := newTenantTable(t, e, tn, 200, 50, 5)

	ctx := context.Background()
	sawDegraded := false
	for k := int64(6); k <= 50; k++ {
		rows, stats, err := tb.QueryEqualCtx(ctx, 0, iv(k))
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if len(rows) != 4 { // 200 rows over domain 50
			t.Fatalf("k=%d: %d rows, want 4", k, len(rows))
		}
		if stats.QuotaDegraded {
			sawDegraded = true
			if stats.EntriesAdded != 0 || stats.PagesSelected != 0 {
				t.Fatalf("degraded scan mutated the buffer: %+v", stats)
			}
		}
	}
	if !sawDegraded {
		t.Fatal("tenant with a 3-entry quota never degraded")
	}
	if tn.Degraded() == 0 {
		t.Error("Degraded counter not bumped")
	}
	if used, q := tn.Used(), tn.Quota(); used > q {
		t.Errorf("used %d > quota %d", used, q)
	}
}

// TestTenantStrictQuota checks that a strict tenant's over-quota miss
// fails with ErrQuotaExceeded instead of degrading.
func TestTenantStrictQuota(t *testing.T) {
	e := New(Config{Space: core.Config{IMax: 100, P: 100, SpaceLimit: 10000}})
	defer e.Close()
	tn, err := e.CreateTenant("hard", 3, true)
	if err != nil {
		t.Fatal(err)
	}
	tb := newTenantTable(t, e, tn, 200, 50, 5)

	ctx := context.Background()
	var quotaErr error
	for k := int64(6); k <= 50; k++ {
		if _, _, err := tb.QueryEqualCtx(ctx, 0, iv(k)); err != nil {
			quotaErr = err
			break
		}
	}
	if !errors.Is(quotaErr, ErrQuotaExceeded) {
		t.Fatalf("strict tenant error = %v, want ErrQuotaExceeded", quotaErr)
	}
	if tn.Degraded() != 0 {
		t.Errorf("strict tenant counted %d degraded misses", tn.Degraded())
	}
	// Covered queries still work — the quota gates indexing scans only.
	if _, _, err := tb.QueryEqualCtx(ctx, 0, iv(1)); err != nil {
		t.Errorf("covered query failed under exhausted quota: %v", err)
	}
}

// TestTenantRangeDegrades covers the range-query admission path.
func TestTenantRangeDegrades(t *testing.T) {
	e := New(Config{Space: core.Config{IMax: 100, P: 100, SpaceLimit: 10000}})
	defer e.Close()
	tn, err := e.CreateTenant("tiny", 3, false)
	if err != nil {
		t.Fatal(err)
	}
	tb := newTenantTable(t, e, tn, 200, 50, 5)

	ctx := context.Background()
	sawDegraded := false
	for lo := int64(6); lo <= 40; lo += 2 {
		rows, stats, err := tb.QueryRangeCtx(ctx, 0, iv(lo), iv(lo+1))
		if err != nil {
			t.Fatalf("lo=%d: %v", lo, err)
		}
		if len(rows) != 8 {
			t.Fatalf("lo=%d: %d rows, want 8", lo, len(rows))
		}
		if stats.QuotaDegraded {
			sawDegraded = true
		}
	}
	if !sawDegraded {
		t.Fatal("range misses never degraded")
	}
}

// TestTenantMetricsFamilies checks the per-tenant exposition: ledger
// families present, and buffer families labeled with the tenant.
func TestTenantMetricsFamilies(t *testing.T) {
	e := New(Config{Space: core.Config{IMax: 100, P: 100, SpaceLimit: 10000}})
	defer e.Close()
	tn, err := e.CreateTenant("tiny", 3, false)
	if err != nil {
		t.Fatal(err)
	}
	tb := newTenantTable(t, e, tn, 200, 50, 5)
	ctx := context.Background()
	for k := int64(6); k <= 20; k++ {
		if _, _, err := tb.QueryEqualCtx(ctx, 0, iv(k)); err != nil {
			t.Fatal(err)
		}
	}

	var sb strings.Builder
	if err := e.WriteMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	for _, want := range []string{
		`aib_tenant_entries_used{tenant="tiny"}`,
		`aib_tenant_entries_quota{tenant="tiny"} 3`,
		`aib_tenant_degraded_total{tenant="tiny"}`,
		`aib_tenant_entries_evicted_total{tenant="tiny"} 0`,
		`aib_buffer_entries{buffer="tiny:t.a",tenant="tiny"}`,
		"aib_space_cross_tenant_entries_dropped_total 0",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	if tn.Degraded() > 0 {
		want := fmt.Sprintf(`aib_tenant_degraded_total{tenant="tiny"} %d`, tn.Degraded())
		if !strings.Contains(got, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}
