package engine

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/buffer"
	"repro/internal/storage"
	"repro/internal/workload"
)

// Torn-publication battery for the epoch-based read path: store faults
// are injected at a sweep of countdown positions so that operations die
// between their in-memory publication (the seqlock window has closed,
// the mutation is reader-visible) and their WAL record becoming
// durable. Three properties must hold at every position:
//
//  1. The write-ahead invariant: no WAL image capture ever needs a
//     store read. A capture that reads means a mutated page was evicted
//     — written to the store — before its record existed; a crash in
//     that window exposes the half-published page with no record to
//     heal it (see the pinned pre-image page in Table.Update and the
//     relocation pin in heap.Update).
//  2. The live engine stays coherent after a mid-operation fault: the
//     seqlock window is closed (error paths call endMutate), so the
//     lock-free fast path keeps serving covered hits instead of
//     spinning against an odd sequence forever.
//  3. Recovery exposes exactly the acknowledged prefix: a crash after
//     the fault must come back bit-identical to an oracle that ran only
//     the acked ops — never the faulted op's half-state.

// tornScript is crashScript biased toward relocating updates: the
// replacement payloads outgrow their slots, so updates routinely
// delete-then-reinsert across pages — the multi-page window where a
// torn publication can escape. Checkpoints are kept in the mix because
// they truncate the log: a torn page whose last record predates the
// checkpoint has nothing left to heal it, which is exactly the state
// property 3 must never see.
func tornScript(seed int64, loads, mixed int) []crashOp {
	rng := rand.New(rand.NewSource(seed))
	draw := workload.Uniform(1, 200)
	var ops []crashOp
	for i := 0; i < loads; i++ {
		ops = append(ops, crashOp{
			kind: opInsert, table: i % 2,
			k: draw(rng), k2: draw(rng), pad: 1 + rng.Intn(900),
		})
	}
	for i := 0; i < mixed; i++ {
		op := crashOp{
			table: rng.Intn(2),
			k:     draw(rng), k2: draw(rng),
			pick: rng.Int63(), pad: 1 + rng.Intn(900),
		}
		switch r := rng.Intn(10); {
		case r < 4:
			op.kind = opUpdate
			op.pad = 1200 + rng.Intn(900)
		case r < 6:
			op.kind = opInsert
		case r < 7:
			op.kind = opDelete
		case r < 9:
			op.kind = opQueryEqual
		default:
			op.kind = opCheckpoint
		}
		ops = append(ops, op)
	}
	return ops
}

func TestTornPublicationFaultSweep(t *testing.T) {
	// The load is sized to outgrow the 4-frame pool several times over,
	// so the mixed phase constantly reads (fetch misses) and writes
	// (dirty evictions) through the store — every countdown position
	// lands somewhere real.
	ops := tornScript(17, 240, 160)
	arms := []struct {
		name string
		arm  func(*buffer.FaultStore, int)
	}{
		{"reads", func(fs *buffer.FaultStore, n int) { fs.SetReadsLeft(n) }},
		{"writes", func(fs *buffer.FaultStore, n int) { fs.SetWritesLeft(n) }},
	}
	for _, arm := range arms {
		for _, left := range []int{0, 1, 3, 6, 11, 19, 33} {
			arm, left := arm, left
			t.Run(fmt.Sprintf("%s=%d", arm.name, left), func(t *testing.T) {
				t.Parallel()
				dir := t.TempDir()
				cfg := crashConfig(dir)
				var faults []*buffer.FaultStore
				cfg.wrapStore = func(_ string, s pageStore) pageStore {
					fs := buffer.NewFaultStore(s)
					arm.arm(fs, left)
					faults = append(faults, fs)
					return fs
				}
				rig := newCrashRig(t, New(cfg))
				acked := 0
				var opErr error
				for _, op := range ops {
					if err := rig.apply(op); err != nil {
						opErr = err
						break
					}
					acked++
				}
				if opErr == nil {
					t.Fatalf("fault never fired (%s=%d)", arm.name, left)
				}
				if !errors.Is(opErr, buffer.ErrInjected) {
					t.Fatalf("op %d: unexpected error: %v", acked, opErr)
				}
				// Property 1: the faulted op must not have died inside a WAL
				// image capture — captures are pool hits by construction.
				if strings.Contains(opErr.Error(), "wal image") {
					t.Fatalf("op %d died capturing a WAL image — a mutated page was evicted before its record existed: %v", acked, opErr)
				}
				for _, fs := range faults {
					fs.SetReadsLeft(-1)
					fs.SetWritesLeft(-1)
				}
				// Property 2: the fast path survives the mid-op failure. A
				// seqlock window left open by an error path would strand
				// every reader on the fallback, so covered hits must keep
				// landing lock-free.
				before := rig.eng.EpochStats()
				for i := 0; i < 60; i++ {
					if _, _, err := rig.tables[0].QueryEqual(0, storage.Int64Value(5)); err != nil {
						t.Fatalf("live query after mid-op fault: %v", err)
					}
					if rig.eng.EpochStats().FastHits > before.FastHits {
						break
					}
				}
				if after := rig.eng.EpochStats(); after.FastHits == before.FastHits {
					t.Errorf("fast path dead after mid-op fault (fallbacks +%d): seqlock window left open?",
						after.Fallbacks-before.Fallbacks)
				}
				// Property 3: crash (abandon, no close, no flush) and
				// recover; the faulted op's half-state must not exist.
				recovered, err := Load(crashConfig(dir))
				if err != nil {
					t.Fatalf("Load after mid-op fault: %v", err)
				}
				defer recovered.Close()
				got := &crashRig{eng: recovered}
				diffRigs(t, fmt.Sprintf("%s=%d, %d acked", arm.name, left, acked), got, oracleRig(t, ops, acked))
			})
		}
	}
}

// TestTornPublicationRecoveryAfterFailedRelocation drives the exact
// worst case end to end: checkpoint, then a relocating update that dies
// mid-relocation with its target page unreadable, then more traffic
// that forces the dirtied pages through eviction, then a crash. The
// checkpoint means nothing in the log can heal the victim page, so the
// recovered table is correct only if the failed update never let its
// half-state reach the store — the undo in heap.Update plus the
// pre-image pin are what guarantee that.
func TestTornPublicationRecoveryAfterFailedRelocation(t *testing.T) {
	dir := t.TempDir()
	cfg := crashConfig(dir)
	var faults []*buffer.FaultStore
	cfg.wrapStore = func(_ string, s pageStore) pageStore {
		fs := buffer.NewFaultStore(s)
		faults = append(faults, fs)
		return fs
	}
	rig := newCrashRig(t, New(cfg))
	ops := tornScript(23, 240, 0)
	for i, op := range ops {
		if err := rig.apply(op); err != nil {
			t.Fatalf("load op %d: %v", i, err)
		}
	}
	oracle := oracleRig(t, ops, len(ops))
	// Give the heap a fresh last page with room for the relocations
	// below: two 5500-byte rows cannot share any page, so the second one
	// provably allocates, leaving ~2.6 KB free. The relocation walk
	// tries the last page first, which is what lets the fault below land
	// inside a relocation deterministically.
	for _, pad := range []int{5500, 5500} {
		tu := storage.NewTuple(storage.Int64Value(3), storage.Int64Value(int64(pad)), storage.StringValue(strings.Repeat("h", pad)))
		rid, err := rig.tables[0].Insert(tu)
		if err != nil {
			t.Fatal(err)
		}
		orid, err := oracle.tables[0].Insert(tu)
		if err != nil {
			t.Fatal(err)
		}
		rig.rids[0] = append(rig.rids[0], rid)
		oracle.rids[0] = append(oracle.rids[0], orid)
	}
	if err := rig.eng.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	heapPages := rig.tables[0].heap.NumPages()
	lastPage := storage.PageID(heapPages - 1)

	// A growing update against each loaded row until one dies inside its
	// relocation. Before each attempt the last page is pushed out of the
	// 4-frame pool (clean — the checkpoint flushed it) and the victim
	// page is primed resident; arming a zero-read countdown then means a
	// fault can only land after the in-place attempt — on the walk's
	// fetch of the cold last page, with the victim slot already dead.
	// Attempts that fit in place never read and are acked to the oracle.
	faulted := false
	big := strings.Repeat("z", 2100)
	for i := 0; i < len(rig.rids[0]) && !faulted; i++ {
		target := rig.rids[0][i]
		if target.Page == lastPage {
			continue
		}
		evicted := 0
		for p := 0; p < heapPages-1 && evicted < 4; p++ {
			if storage.PageID(p) == target.Page {
				continue
			}
			if _, err := rig.tables[0].heap.PageLiveCount(storage.PageID(p)); err != nil {
				t.Fatalf("touch page %d: %v", p, err)
			}
			evicted++
		}
		if _, err := rig.tables[0].Get(target); err != nil {
			t.Fatalf("priming get %d: %v", i, err)
		}
		tu := storage.NewTuple(storage.Int64Value(7), storage.Int64Value(int64(i)), storage.StringValue(big))
		faults[0].SetReadsLeft(0)
		newRID, err := rig.tables[0].Update(target, tu)
		faults[0].SetReadsLeft(-1)
		if err == nil {
			if newRID.Page != target.Page {
				t.Fatalf("update %d relocated (%v -> %v) without reading the cold last page", i, target, newRID)
			}
			if _, oerr := oracle.tables[0].Update(oracle.rids[0][i], tu); oerr != nil {
				t.Fatalf("oracle update diverged: %v", oerr)
			}
			rig.rids[0][i] = newRID
			continue
		}
		if !errors.Is(err, buffer.ErrInjected) {
			t.Fatalf("update %d: unexpected error: %v", i, err)
		}
		if strings.Contains(err.Error(), "wal image") {
			t.Fatalf("update %d died capturing a WAL image: %v", i, err)
		}
		faulted = true
	}
	if !faulted {
		t.Fatal("no update ever died mid-flight; the scenario exercised nothing")
	}
	// Push every dirtied page through eviction: with a 4-frame pool a
	// table scan cycles the whole heap through the frames.
	if _, err := rig.tables[0].Count(); err != nil {
		t.Fatal(err)
	}
	// Crash and recover. The failed update must have left no trace.
	recovered, err := Load(crashConfig(dir))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	defer recovered.Close()
	got := &crashRig{eng: recovered}
	diffRigs(t, "post-checkpoint failed relocation", got, oracle)
}
