package engine

import (
	"context"
	"sync"
	"sync/atomic"

	"repro/internal/exec"
	"repro/internal/storage"
	"repro/internal/trace"
)

// This file is the admission layer of scan sharing. A query that misses
// the partial index needs an indexing scan — the one execution path that
// mutates the Index Buffer and therefore takes the table lock exclusive.
// Under a miss burst those scans would serialize, each re-reading the
// same heap. Instead, misses on the same table and column form batches:
// the first miss becomes the batch leader and queues for the write lock;
// every miss arriving while the leader waits attaches its predicate to
// the batch (the attach window). Once the leader holds the lock it seals
// the batch and runs one exec.ExecuteShared pass for all attached
// predicates; later misses start a fresh batch behind it.
//
// scanAdmission.mu sits below Table.mu in the lock order: attach is
// called with no table lock held, seal under the table's write lock, and
// the admission lock is never held while waiting on anything.

// scanAdmission groups a table's concurrent miss queries into per-column
// batches. The zero value is ready to use.
type scanAdmission struct {
	mu      sync.Mutex
	pending map[int]*scanBatch // forming batch by column ordinal
}

// scanBatch is one forming (then executing) shared scan.
type scanBatch struct {
	queries []*attachedQuery
	done    chan struct{} // closed by the leader after results are written
}

// attachedQuery is one query riding a batch. The result fields are
// written by the leader before it closes done and read by the owning
// goroutine after <-done; the channel close orders the two.
type attachedQuery struct {
	ctx      context.Context
	lo, hi   storage.Value
	equality bool

	// canceled is set by a follower that gave up on ctx cancellation; the
	// leader then skips tracing the query's outcome (its caller already
	// returned an error and never saw the result).
	canceled atomic.Bool

	out   []exec.Match
	stats exec.QueryStats
	err   error
}

// attach joins q to the column's forming batch, creating one if none is
// pending. It reports whether q created the batch — that query is the
// leader and must run the scan and close done.
func (s *scanAdmission) attach(column int, q *attachedQuery) (*scanBatch, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if b := s.pending[column]; b != nil {
		b.queries = append(b.queries, q)
		return b, false
	}
	if s.pending == nil {
		s.pending = make(map[int]*scanBatch)
	}
	b := &scanBatch{queries: []*attachedQuery{q}, done: make(chan struct{})}
	s.pending[column] = b
	return b, true
}

// seal closes the batch's attach window: no later miss can join, and the
// next miss on the column starts a fresh batch that queues behind this
// one. Returns the attached queries. Called by the leader with the
// table's write lock held.
func (s *scanAdmission) seal(column int, b *scanBatch) []*attachedQuery {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.pending[column] == b {
		delete(s.pending, column)
	}
	return b.queries
}

// queryShared answers one miss query through the scan-sharing admission
// layer. The caller has planned the query under the read lock and found
// it needs an indexing scan; no lock is held on entry.
//
// Cancellation: a follower whose ctx expires stops waiting immediately
// and returns ctx.Err() — the scan drops its demux slot at the next page
// boundary and keeps serving the rest of the batch. The leader cannot
// abandon the wait for the write lock, but its own predicate is dropped
// the same way once the scan starts, and the scan aborts early only if
// every attached query is canceled.
func (t *Table) queryShared(ctx context.Context, column int, lo, hi storage.Value, equality bool) ([]exec.Match, exec.QueryStats, error) {
	counters := &t.engine.sharedScans
	counters.Misses.Add(1)
	fa := t.engine.flightActive(ctx)
	t.noteSpan(fa, trace.SpanMissAdmit, column, -1, 0)

	q := &attachedQuery{ctx: ctx, lo: lo, hi: hi, equality: equality}
	batch, leader := t.scans.attach(column, q)
	if !leader {
		counters.Attached.Add(1)
		t.noteSpan(fa, trace.SpanScanAttach, column, -1, 0)
		select {
		case <-batch.done:
			if q.err == nil && !q.canceled.Load() {
				// The follower's own flight record: its stats, its wait-
				// dominated wall time, attributed on its own goroutine.
				t.noteFlight(ctx, column, q.stats, true)
			}
			return q.out, q.stats, q.err
		case <-ctx.Done():
			q.canceled.Store(true)
			return nil, exec.QueryStats{}, ctx.Err()
		}
	}

	// Leader: the wait for the write lock below IS the attach window —
	// misses arriving while we queue here join the batch for free.
	t.mu.Lock()
	attached := t.scans.seal(column, batch)
	// Re-resolve the access path under the write lock: an index
	// redefinition may have slipped in between planning and execution.
	// ExecuteShared re-dispatches per query on the state it finds, so
	// attached predicates the new index covers are served as hits.
	a, err := t.accessLocked(ctx, column)
	if err != nil {
		for _, aq := range attached {
			aq.err = err
		}
	} else {
		counters.Scans.Add(1)
		t.noteSpan(fa, trace.SpanScanLead, column, -1, len(attached))
		t.runShared(a, column, attached)
	}
	t.mu.Unlock()
	close(batch.done)
	if q.err == nil {
		t.noteFlight(ctx, column, q.stats, false)
	}
	return q.out, q.stats, q.err
}

// runShared executes one shared pass for the sealed batch and publishes
// each query's outcome. Runs with the table's write lock held.
func (t *Table) runShared(a exec.Access, column int, attached []*attachedQuery) {
	qs := make([]exec.SharedQuery, len(attached))
	for i, aq := range attached {
		qs[i] = exec.SharedQuery{Lo: aq.lo, Hi: aq.hi, Equality: aq.equality, Ctx: aq.ctx}
	}
	outs := exec.ExecuteShared(a, qs)
	// The batch's first scanning query carries the scan-stage fan-out.
	for _, o := range outs {
		if o.Stats.ScanWorkers > 0 {
			t.engine.noteScanWorkers(o.Stats)
			break
		}
	}
	col := t.schema.Column(column).Name
	for i, aq := range attached {
		o := outs[i]
		aq.out, aq.stats, aq.err = o.Matches, o.Stats, o.Err
		if o.Err == nil && !aq.canceled.Load() {
			// attached[0] is the query that created the batch — the leader
			// whose wall time is the scan itself. Followers spent their time
			// waiting on the leader, so their latency is tracked under a
			// separate mechanism to keep the scan histograms honest.
			if i == 0 {
				t.engine.tracer.Record(t.name, col, o.Stats)
			} else {
				t.engine.tracer.RecordFollower(t.name, col, o.Stats)
			}
			t.sampleTimeline(column, o.Stats, i != 0, a.Buffer)
		}
	}
}
