// Package engine assembles the substrates into a small database engine:
// heap tables on a simulated disk behind a buffer pool, at most one
// partial secondary index per column, and an Index Buffer Space shared by
// every partial index. It exposes the DML and query surface the paper's
// experiments run against.
//
// Concurrency model (see DESIGN.md for the full treatment): the engine
// holds no global operation lock. A catalog RWMutex guards only table
// creation and lookup; each table carries its own RWMutex. Queries
// answered by the partial index or by a plain full scan take the table
// lock shared — they read the heap and advance only internally
// synchronized state (LRU-K histories, tracer) — so index-covered reads
// on different tables, and on different columns of the same table, run
// fully in parallel. Indexing scans (which mutate C[p] counters and
// insert buffer entries, paper Algorithms 1/2) and all DML take the
// table lock exclusive — but concurrent misses on the same table and
// column do not each run their own scan: a per-table admission layer
// coalesces them into one shared Algorithm-1 pass (see sharedscan.go).
// Lock order: Engine.mu → Table.mu → scanAdmission.mu → Space.mu →
// IndexBuffer.mu → History.mu.
package engine

import (
	"context"
	"fmt"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/epoch"
	"repro/internal/exec"
	"repro/internal/flight"
	"repro/internal/heap"
	"repro/internal/index"
	"repro/internal/metrics"
	"repro/internal/storage"
	"repro/internal/timeline"
	"repro/internal/trace"
	"repro/internal/wal"
)

// Config configures a new engine.
type Config struct {
	// PoolPages is the buffer-pool capacity in pages per table. The
	// default (256 = 2 MiB) is far below the experiment table sizes, so
	// scans are disk-bound as in the paper. Zero means the default.
	PoolPages int

	// Space configures the Index Buffer Space (I^MAX, P, K, L, structure,
	// rand); see core.Config.
	Space core.Config

	// ScanParallelism bounds the worker pool of every table-scan stage
	// (indexing scans and full scans): 1 forces the serial path, n > 1
	// fans page-range chunks out to at most n goroutines, 0 defaults to
	// GOMAXPROCS. Results and Index Buffer state are identical across
	// settings; see exec's parallel scan. Parallel scans pin one pool
	// page per worker, so PoolPages should comfortably exceed the
	// parallelism.
	ScanParallelism int

	// DisableIndexBuffer turns the Index Buffer machinery off: partial
	// index misses degrade to full table scans. This is the paper's
	// baseline system.
	DisableIndexBuffer bool

	// DisableEpochReadPath forces every query through the table-lock
	// read path, turning the epoch-based lock-free hit path off. The
	// benchmark's RWMutex baseline arm; results are identical either
	// way (see readpath.go).
	DisableEpochReadPath bool

	// DataDir, when non-empty, backs each table with a real file
	// (<DataDir>/<table>.pages) instead of the in-memory simulated disk.
	// The files are truncated on creation; Close releases them.
	DataDir string

	// ReadLatency and WriteLatency, when positive, charge each simulated
	// device access with a sleep so wall-clock curves take a real
	// device's shape. Ignored for file-backed tables (they have real
	// latency).
	ReadLatency  time.Duration
	WriteLatency time.Duration

	// TimelineCapacity bounds each adaptation-timeline series' sample
	// ring. Zero means timeline.DefaultCapacity.
	TimelineCapacity int

	// ConvergenceTarget is the coverage fraction the timeline's
	// convergence detector watches for (queries-to-target). Zero means
	// timeline.DefaultTarget (0.95).
	ConvergenceTarget float64

	// WAL configures crash-consistent durability for DataDir-backed
	// engines; see WALConfig. Ignored without a DataDir.
	WAL WALConfig

	// wrapStore, when set, wraps every table's page store as it is
	// created or reopened — the crash-test hook for interposing a
	// buffer.FaultStore. The string is the table name.
	wrapStore func(string, pageStore) pageStore
}

const defaultPoolPages = 256

// Engine is the top-level database object. Safe for concurrent use.
type Engine struct {
	mu       sync.RWMutex // catalog lock: guards tables (create/lookup only)
	closed   atomic.Bool
	cfg      Config
	space    *core.Space
	tables   map[string]*Table
	tracer   *trace.Tracer
	timeline *timeline.Recorder
	flight   *flight.Recorder
	started  time.Time

	// Epoch-based read path (readpath.go): the reclamation domain every
	// retired snapshot goes through, and the fast-path counters.
	epochs        *epoch.Domain
	fastHits      atomic.Uint64
	fastFallbacks atomic.Uint64

	sharedScans   metrics.SharedScanCounters
	parallelScans metrics.ParallelScanCounters

	// Durability (nil / zero for in-memory or WAL-disabled engines).
	wal      *wal.Writer
	walErr   error         // WAL failed to initialize; DML refuses
	ckptMu   sync.Mutex    // serializes checkpoints
	lastCkpt atomic.Uint64 // LSN of the last completed checkpoint
	ckptStop chan struct{} // periodic checkpointer lifecycle
	ckptDone chan struct{}

	// Checkpoint telemetry: completions, last duration, last completion
	// instant (unix nanos; 0 until the first checkpoint finishes).
	ckptCount     atomic.Uint64
	ckptLastNanos atomic.Int64
	ckptLastEnd   atomic.Int64

	rewarmMu sync.Mutex
	rewarm   []rewarmQuery // recovered query tail, consumed by Rewarm
	recovery RecoveryStats
}

// ParallelScanStats reads the engine-wide parallel-scan counters: how
// many table-scan stages fanned out to more than one worker and the
// total workers they used.
func (e *Engine) ParallelScanStats() metrics.ParallelScanStats {
	return e.parallelScans.Snapshot()
}

// noteScanWorkers attributes one executed scan's fan-out to the
// engine-wide counters. Serial scans (0 or 1 workers) are not counted.
func (e *Engine) noteScanWorkers(stats exec.QueryStats) {
	if stats.ScanWorkers > 1 {
		e.parallelScans.Scans.Add(1)
		e.parallelScans.Workers.Add(uint64(stats.ScanWorkers))
	}
}

// SharedScanStats reads the engine-wide scan-sharing counters: how many
// miss queries entered the admission layer, how many Algorithm-1 passes
// actually ran, and how many queries rode along on another's scan.
func (e *Engine) SharedScanStats() metrics.SharedScanStats {
	return e.sharedScans.Snapshot()
}

// traceCapacity is the query-event ring size of the built-in tracer.
const traceCapacity = 512

// flightRecentCap and flightSlowCap size the flight recorder's rings:
// the recent ring matches the tracer's event ring, the slow ring is
// smaller because slow captures are meant to survive much longer than
// their surrounding traffic.
const (
	flightRecentCap = 512
	flightSlowCap   = 128
)

// New creates an empty engine. With a DataDir and the WAL enabled (the
// default), a fresh log is initialized under <DataDir>/wal — any
// existing segments there are cleared, mirroring how table page files
// are truncated on creation. A WAL that fails to initialize does not
// fail New (its signature predates durability); instead the engine
// refuses DML with the initialization error, so nothing runs silently
// non-durable.
func New(cfg Config) *Engine {
	e := newEngine(cfg)
	if cfg.DataDir != "" && !cfg.WAL.Disable {
		w, err := wal.Create(walDir(cfg.DataDir), walOptions(cfg))
		if err != nil {
			e.walErr = err
		} else {
			e.wal = w
			e.startCheckpointer()
		}
	}
	return e
}

// newEngine builds the engine skeleton shared by New and Load; it never
// touches the WAL directory (Load must replay it before a writer may
// start a new segment).
func newEngine(cfg Config) *Engine {
	if cfg.PoolPages <= 0 {
		cfg.PoolPages = defaultPoolPages
	}
	e := &Engine{
		cfg:      cfg,
		space:    core.NewSpace(cfg.Space),
		tables:   make(map[string]*Table),
		tracer:   trace.New(traceCapacity),
		timeline: timeline.New(cfg.TimelineCapacity, cfg.ConvergenceTarget),
		flight:   flight.NewRecorder(flightRecentCap, flightSlowCap),
		started:  time.Now(),
		epochs:   epoch.NewDomain(),
	}
	// Retired counter snapshots flow through the engine's epoch domain,
	// reclaimed only once every pinned reader has moved on.
	e.space.SetEpochDomain(e.epochs)
	// Route the Space's management events (Algorithm-2 page selection,
	// displacement) into the tracer's span ring and the adaptation
	// timeline; both consumers gate on their own atomic enable flag, so
	// the attached observer is free while recording is off.
	e.space.SetObserver(spaceSpans{tr: e.tracer, tl: e.timeline})
	return e
}

// spaceSpans fans core.Observer events out to the tracer's span ring
// and the adaptation-timeline recorder. Both sides honor the Observer
// contract: they only touch their own internally synchronized state
// (the timeline merely bumps churn counters and marks the buffer dirty
// for resampling at the next query boundary), never the Space or a
// buffer — the callback runs with Space.mu held.
type spaceSpans struct {
	tr *trace.Tracer
	tl *timeline.Recorder
}

func (s spaceSpans) SpaceEvent(kind, buffer string, page, n int) {
	s.tr.Span(kind, buffer, page, n)
	s.tl.NoteEvent(kind, buffer, page, n)
}

// Tracer exposes the engine's query monitor.
func (e *Engine) Tracer() *trace.Tracer { return e.tracer }

// Flight exposes the engine's per-statement flight recorder. Recording
// is off by default and costs one atomic load per gated site while off.
func (e *Engine) Flight() *flight.Recorder { return e.flight }

// flightActive resolves the calling statement's in-progress flight
// record: nil while the recorder is disabled (one atomic load — the
// 0-alloc contract) or when the context carries no statement.
func (e *Engine) flightActive(ctx context.Context) *flight.Active {
	if !e.flight.Enabled() {
		return nil
	}
	return flight.FromContext(ctx)
}

// flightSpans adapts an in-progress flight record to core.Observer, so
// Algorithm-2 page selection can attribute its management events
// (displace, page-select) to the statement that triggered them. The
// Active only touches its own leaf mutex, honoring the Observer
// contract (called with Space.mu held).
type flightSpans struct{ a *flight.Active }

func (f flightSpans) SpaceEvent(kind, buffer string, page, n int) {
	f.a.Span(kind, buffer, page, n)
}

// Timeline exposes the engine's adaptation-timeline recorder. Enable it
// with Timeline().Enable(true); sampling is off by default and costs
// one atomic load per query while off.
func (e *Engine) Timeline() *timeline.Recorder { return e.timeline }

// Convergence returns the timeline's convergence verdicts — queries to
// the configured coverage target per (table, column), regression flags
// — sorted by buffer name. Empty until the timeline is enabled and
// queries run.
func (e *Engine) Convergence() []timeline.Convergence {
	return e.timeline.Convergence()
}

// SetTelemetrySink streams structured telemetry — every trace span and
// every timeline sample — to s as JSONL, enabling span recording and
// timeline sampling as a side effect. A nil s detaches the sink and
// leaves recording on (turn it off via Tracer().EnableSpans and
// Timeline().Enable if desired).
func (e *Engine) SetTelemetrySink(s *timeline.Sink) {
	if s == nil {
		e.tracer.SetSpanSink(nil)
		e.timeline.SetSink(nil)
		e.flight.SetSink(nil)
		return
	}
	e.timeline.SetSink(s)
	e.tracer.SetSpanSink(func(sp trace.Span) {
		s.WriteSpan(timeline.SpanRecord{Seq: sp.Seq, Kind: sp.Kind, Target: sp.Target, Page: sp.Page, N: sp.N, Trace: sp.Trace})
	})
	// Completed flight records ride the same stream (the recorder still
	// gates: nothing completes while it is disabled).
	e.flight.SetSink(func(r flight.Record) { s.WriteFlight(r) })
	e.tracer.EnableSpans(true)
	e.timeline.Enable(true)
}

// Space exposes the Index Buffer Space for inspection (entry counts,
// stats). Callers must not mutate it.
func (e *Engine) Space() *core.Space { return e.space }

// checkOpen fails with ErrClosed once Close has run.
func (e *Engine) checkOpen() error {
	if e.closed.Load() {
		return fmt.Errorf("engine: %w", ErrClosed)
	}
	return nil
}

// Close flushes every table's buffer pool and closes file-backed stores.
// Subsequent operations fail with ErrClosed. Close waits for in-flight
// operations by taking every table's exclusive lock; it is a no-op for
// the stores of purely in-memory engines. WAL-backed engines take a
// final checkpoint first, so a clean shutdown leaves an empty log and
// the next Load has no redo work.
func (e *Engine) Close() error {
	if !e.closed.CompareAndSwap(false, true) {
		return nil // already closed
	}
	var first error
	if e.wal != nil {
		e.stopCheckpointer()
		first = e.checkpoint()
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, t := range e.tables {
		t.mu.Lock()
		if err := t.pool.FlushAll(); err != nil && first == nil {
			first = err
		}
		if c, ok := t.store.(interface{ Close() error }); ok {
			if err := c.Close(); err != nil && first == nil {
				first = err
			}
		}
		t.mu.Unlock()
	}
	if e.wal != nil {
		if err := e.wal.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// pageStore is the store surface the engine needs: device ops plus the
// logical I/O counters both backends expose.
type pageStore interface {
	buffer.Store
	Stats() buffer.IOStats
}

// Table is one heap table with its indexes and Index Buffers.
//
// The table's RWMutex is the unit of isolation for everything hanging
// off the table: DML, index DDL, vacuum, and indexing scans take it
// exclusive; index-hit queries, full scans, explains and raw scans take
// it shared. The Index Buffer and Space carry their own locks underneath
// because displacement on behalf of *another* table's scan may reach
// into this table's buffers without holding this table's lock.
type Table struct {
	engine *Engine
	name   string // qualified catalog name ("<tenant>:<table>" for tenant tables)
	tenant *core.Tenant
	schema *storage.Schema

	mu      sync.RWMutex
	store   pageStore
	pool    *buffer.Pool
	heap    *heap.Table
	indexes map[int]*index.Partial    // by column ordinal
	buffers map[int]*core.IndexBuffer // by column ordinal

	// Epoch-based read path (readpath.go): seq is the table's seqlock —
	// even at rest, odd strictly while a mutator changes reader-visible
	// in-memory state (never across a WAL fsync); read is the published
	// copy-on-write access-path state lock-free readers resolve against.
	seq  atomic.Uint64
	read atomic.Pointer[readState]

	scans scanAdmission // per-column batching of concurrent miss queries
}

// CreateTable registers a new empty table under the default tenant.
// On WAL-backed engines every DDL statement ends with a synchronous
// checkpoint, so the log never carries schema changes — recovery
// replays DML against a catalog that already reflects all DDL.
func (e *Engine) CreateTable(name string, schema *storage.Schema) (*Table, error) {
	t, err := e.createTable(nil, name, schema)
	if err != nil {
		return nil, err
	}
	if err := e.checkpointIfWAL(); err != nil {
		return nil, fmt.Errorf("engine: checkpoint after creating %s: %w", name, err)
	}
	return t, nil
}

// createTable registers a table under its qualified catalog name; tn is
// the owning tenant (nil = default).
func (e *Engine) createTable(tn *core.Tenant, name string, schema *storage.Schema) (*Table, error) {
	if err := e.checkOpen(); err != nil {
		return nil, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, dup := e.tables[name]; dup {
		return nil, fmt.Errorf("engine: table %q: %w", name, ErrDuplicateTable)
	}
	var store pageStore
	if e.cfg.DataDir != "" {
		fs, err := buffer.OpenFileStore(filepath.Join(e.cfg.DataDir, name+".pages"))
		if err != nil {
			return nil, err
		}
		store = fs
	} else {
		sd := buffer.NewSimDisk()
		if e.cfg.ReadLatency > 0 || e.cfg.WriteLatency > 0 {
			sd.SetLatency(e.cfg.ReadLatency, e.cfg.WriteLatency)
		}
		store = sd
	}
	if e.cfg.wrapStore != nil {
		store = e.cfg.wrapStore(name, store)
	}
	pool, err := buffer.NewPool(store, e.cfg.PoolPages)
	if err != nil {
		return nil, err
	}
	t := &Table{
		engine:  e,
		name:    name,
		tenant:  tn,
		schema:  schema,
		store:   store,
		pool:    pool,
		heap:    heap.NewTable(schema, pool),
		indexes: make(map[int]*index.Partial),
		buffers: make(map[int]*core.IndexBuffer),
	}
	t.publishReadLocked() // t is unshared until the map insert below
	e.tables[name] = t
	return t, nil
}

// Table returns the named table, or nil.
func (e *Engine) Table(name string) *Table {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.tables[name]
}

// TableNames returns all table names, sorted.
func (e *Engine) TableNames() []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]string, 0, len(e.tables))
	for n := range e.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Schema returns the table schema.
func (t *Table) Schema() *storage.Schema { return t.schema }

// NumPages returns the heap page count.
func (t *Table) NumPages() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.heap.NumPages()
}

// DiskStats returns device-level I/O counters for the table's store.
func (t *Table) DiskStats() buffer.IOStats {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.store.Stats()
}

// PoolStats returns the table's buffer-pool counters.
func (t *Table) PoolStats() buffer.PoolStats {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.pool.Stats()
}

// Index returns the partial index on the column, or nil.
func (t *Table) Index(column int) *index.Partial {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.indexes[column]
}

// Buffer returns the Index Buffer on the column, or nil.
func (t *Table) Buffer(column int) *core.IndexBuffer {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.buffers[column]
}

// checkColumn validates a column ordinal.
func (t *Table) checkColumn(column int) error {
	if column < 0 || column >= t.schema.NumColumns() {
		return fmt.Errorf("engine: table %s column %d: %w", t.name, column, ErrNoColumn)
	}
	return nil
}

// bufferName is the Index Buffer's key in the Space.
func (t *Table) bufferName(column int) string {
	return fmt.Sprintf("%s.%s", t.name, t.schema.Column(column).Name)
}

// CreatePartialIndex builds a partial index over the column with the
// given coverage, scanning the table once. Unless the engine disables
// Index Buffers, it also creates the column's Index Buffer and
// initializes the page counters — "the number of tuples in the page minus
// the tuples covered by the partial index" (paper §III). Like all DDL
// it ends with a checkpoint on WAL-backed engines.
func (t *Table) CreatePartialIndex(column int, cov index.Coverage) error {
	if err := t.createPartialIndex(column, cov); err != nil {
		return err
	}
	if err := t.engine.checkpointIfWAL(); err != nil {
		return fmt.Errorf("engine: checkpoint after indexing %s: %w", t.name, err)
	}
	return nil
}

func (t *Table) createPartialIndex(column int, cov index.Coverage) error {
	if err := t.engine.checkOpen(); err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.checkColumn(column); err != nil {
		return err
	}
	if _, dup := t.indexes[column]; dup {
		return fmt.Errorf("engine: column %d of %s: %w", column, t.name, ErrDuplicateIndex)
	}
	ix := index.NewPartial(t.bufferName(column), column, cov)
	uncovered := make([]int, t.heap.NumPages())
	err := t.heap.Scan(func(rid storage.RID, tu storage.Tuple) error {
		v := tu.Value(column)
		if !ix.Add(v, rid) {
			uncovered[rid.Page]++
		}
		return nil
	})
	if err != nil {
		return fmt.Errorf("engine: building index on %s: %w", t.bufferName(column), err)
	}
	t.beginMutate()
	defer t.endMutate()
	defer t.publishReadLocked()
	t.indexes[column] = ix

	if !t.engine.cfg.DisableIndexBuffer {
		b, err := t.engine.space.CreateBufferFor(t.bufferName(column), uncovered, t.tenant)
		if err != nil {
			return err
		}
		t.buffers[column] = b
	}
	return nil
}

// DropIndex removes the column's partial index and its Index Buffer,
// releasing the buffer's Index Buffer Space.
func (t *Table) DropIndex(column int) error {
	if err := t.dropIndex(column); err != nil {
		return err
	}
	if err := t.engine.checkpointIfWAL(); err != nil {
		return fmt.Errorf("engine: checkpoint after dropping index on %s: %w", t.name, err)
	}
	return nil
}

func (t *Table) dropIndex(column int) error {
	if err := t.engine.checkOpen(); err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.indexes[column] == nil {
		return fmt.Errorf("engine: column %d of %s: %w", column, t.name, ErrNoIndex)
	}
	t.beginMutate()
	defer t.endMutate()
	delete(t.indexes, column)
	if t.buffers[column] != nil {
		t.engine.space.DropBuffer(t.bufferName(column))
		delete(t.buffers, column)
	}
	t.publishReadLocked()
	return nil
}

// RedefineIndex changes the partial index's coverage (the expensive
// disk-side adaptation step). The column's Index Buffer is discarded and
// recreated with counters matching the new coverage, since its contents
// were defined relative to the old predicate.
func (t *Table) RedefineIndex(column int, cov index.Coverage) error {
	if err := t.redefineIndex(column, cov); err != nil {
		return err
	}
	if err := t.engine.checkpointIfWAL(); err != nil {
		return fmt.Errorf("engine: checkpoint after redefining index on %s: %w", t.name, err)
	}
	return nil
}

func (t *Table) redefineIndex(column int, cov index.Coverage) error {
	if err := t.engine.checkOpen(); err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	ix := t.indexes[column]
	if ix == nil {
		return fmt.Errorf("engine: column %d of %s: %w", column, t.name, ErrNoIndex)
	}
	t.beginMutate()
	defer t.endMutate()
	defer t.publishReadLocked()
	if _, err := ix.Rebuild(cov, t.heap); err != nil {
		return err
	}
	if t.buffers[column] == nil {
		return nil
	}
	t.engine.space.DropBuffer(t.bufferName(column))
	uncovered := make([]int, t.heap.NumPages())
	err := t.heap.Scan(func(rid storage.RID, tu storage.Tuple) error {
		if !cov.Covers(tu.Value(column)) {
			uncovered[rid.Page]++
		}
		return nil
	})
	if err != nil {
		return err
	}
	b, err := t.engine.space.CreateBufferFor(t.bufferName(column), uncovered, t.tenant)
	if err != nil {
		return err
	}
	t.buffers[column] = b
	return nil
}

// Insert adds a tuple, maintaining every index and Index Buffer. On
// WAL-backed engines the operation is durable when Insert returns (per
// the sync policy): the record carries the dirtied page's full image,
// and Commit blocks until the log reaches stable storage.
func (t *Table) Insert(tu storage.Tuple) (storage.RID, error) {
	return t.InsertCtx(context.Background(), tu)
}

// InsertCtx is Insert carrying statement context: a flight-recorded
// statement attributes the WAL commit latency and group-commit batch to
// its record. The insert itself does not honor cancellation (a started
// mutation always completes and commits).
func (t *Table) InsertCtx(ctx context.Context, tu storage.Tuple) (storage.RID, error) {
	if err := t.engine.checkOpen(); err != nil {
		return storage.InvalidRID, err
	}
	if err := t.engine.walError(); err != nil {
		return storage.InvalidRID, err
	}
	fa := t.engine.flightActive(ctx)
	t.mu.Lock()
	defer t.mu.Unlock()
	t.beginMutate()
	rid, err := t.heap.Insert(tu)
	if err != nil {
		t.endMutate()
		return storage.InvalidRID, err
	}
	for col, ix := range t.indexes {
		v := tu.Value(col)
		inIX := ix.Covers(v)
		if inIX {
			ix.Add(v, rid)
		}
		if b := t.buffers[col]; b != nil {
			b.MaintainInsert(v, rid, inIX)
		}
	}
	// The seqlock window closes here, before the WAL append: the heap,
	// indexes and buffers already carry the final state, so lock-free
	// readers may proceed while this operation waits out its fsync —
	// exactly the reader/writer convoy the epoch read path removes.
	t.endMutate()
	// The dirtied page is still resident (nothing fetched since the heap
	// write), so the image capture is a pool hit; see wal.go for why the
	// record must precede any eviction of that page.
	if err := t.logDML(fa, wal.KindInsert, rid, storage.InvalidRID, rid.Page); err != nil {
		return rid, err
	}
	return rid, nil
}

// Get fetches the tuple at rid.
func (t *Table) Get(rid storage.RID) (storage.Tuple, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.heap.Get(rid)
}

// Delete removes the tuple at rid, maintaining indexes and buffers.
// Durable on return for WAL-backed engines, like Insert.
func (t *Table) Delete(rid storage.RID) error {
	return t.DeleteCtx(context.Background(), rid)
}

// DeleteCtx is Delete carrying statement context; see InsertCtx.
func (t *Table) DeleteCtx(ctx context.Context, rid storage.RID) error {
	if err := t.engine.checkOpen(); err != nil {
		return err
	}
	if err := t.engine.walError(); err != nil {
		return err
	}
	fa := t.engine.flightActive(ctx)
	t.mu.Lock()
	defer t.mu.Unlock()
	old, err := t.heap.Get(rid)
	if err != nil {
		return err
	}
	t.beginMutate()
	if err := t.heap.Delete(rid); err != nil {
		t.endMutate()
		return err
	}
	for col, ix := range t.indexes {
		v := old.Value(col)
		wasInIX := ix.Covers(v)
		if wasInIX {
			ix.Remove(v, rid)
		}
		if b := t.buffers[col]; b != nil {
			b.MaintainDelete(v, rid, wasInIX)
		}
	}
	t.endMutate() // before the WAL append; see Insert
	return t.logDML(fa, wal.KindDelete, rid, storage.InvalidRID, rid.Page)
}

// Update replaces the tuple at rid, returning the possibly relocated RID
// and maintaining indexes and buffers per the paper's Table I. Durable
// on return for WAL-backed engines.
func (t *Table) Update(rid storage.RID, tu storage.Tuple) (storage.RID, error) {
	return t.UpdateCtx(context.Background(), rid, tu)
}

// UpdateCtx is Update carrying statement context; see InsertCtx.
func (t *Table) UpdateCtx(ctx context.Context, rid storage.RID, tu storage.Tuple) (storage.RID, error) {
	if err := t.engine.checkOpen(); err != nil {
		return storage.InvalidRID, err
	}
	if err := t.engine.walError(); err != nil {
		return storage.InvalidRID, err
	}
	fa := t.engine.flightActive(ctx)
	t.mu.Lock()
	defer t.mu.Unlock()
	old, err := t.heap.Get(rid)
	if err != nil {
		return storage.InvalidRID, err
	}
	// Pin the pre-image page for the duration of the operation. A
	// relocating update dirties the old page and then allocates into
	// others; without the pin those fetches could evict the dirty old
	// page — writing it to the store before its log record exists, the
	// one ordering the write-ahead rule forbids (a crash in that window
	// would lose the tuple: gone from the old page, never logged into
	// the new one).
	var oldFrame *buffer.Frame
	if t.engine.wal != nil {
		oldFrame, err = t.pool.Fetch(rid.Page)
		if err != nil {
			return storage.InvalidRID, err
		}
		defer t.pool.Unpin(oldFrame)
	}
	t.beginMutate()
	newRID, err := t.heap.Update(rid, tu)
	if err != nil {
		t.endMutate()
		return storage.InvalidRID, err
	}
	for col, ix := range t.indexes {
		oldV, newV := old.Value(col), tu.Value(col)
		oldIn, newIn := ix.Covers(oldV), ix.Covers(newV)
		ix.Update(oldV, newV, rid, newRID)
		if b := t.buffers[col]; b != nil {
			b.MaintainUpdate(oldV, newV, rid, newRID, oldIn, newIn)
		}
	}
	t.endMutate() // before the WAL append; see Insert
	if err := t.logDML(fa, wal.KindUpdate, newRID, rid, rid.Page, newRID.Page); err != nil {
		return newRID, err
	}
	return newRID, nil
}

// Scan iterates every live tuple (a raw full scan, no buffer effects).
func (t *Table) Scan(fn func(storage.RID, storage.Tuple) error) error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.heap.Scan(fn)
}

// Count returns the live tuple count.
func (t *Table) Count() (int, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	n := 0
	err := t.heap.Scan(func(storage.RID, storage.Tuple) error { n++; return nil })
	return n, err
}

// QueryEqual answers column = key through the best available access
// path, maintaining the Index Buffer machinery as a side effect.
func (t *Table) QueryEqual(column int, key storage.Value) ([]exec.Match, exec.QueryStats, error) {
	return t.QueryEqualCtx(context.Background(), column, key)
}

// QueryEqualCtx is QueryEqual honoring ctx: a long indexing or full scan
// checks for cancellation between page reads and returns ctx.Err().
//
// Locking: the query is first planned under the table's read lock. A
// partial-index hit or a plain full scan executes right there — multiple
// such readers run in parallel, and no engine-wide exclusive lock is
// taken. Only a buffer miss that needs an indexing scan (a mutation of
// the Index Buffer) goes through the scan-sharing admission layer, where
// it either leads its own exclusive-lock scan or attaches to one already
// forming on the same column (see queryShared); the plan is implicitly
// re-validated because exec.ExecuteShared re-dispatches on the state it
// finds under the write lock.
func (t *Table) QueryEqualCtx(ctx context.Context, column int, key storage.Value) ([]exec.Match, exec.QueryStats, error) {
	matches, stats, err := t.queryEqualCtx(ctx, column, key)
	if err == nil {
		// Best-effort query record (no Commit; rides the next fsync) so
		// recovery can replay the workload tail and re-warm the buffers.
		t.logQuery(column, true, key, key)
	}
	return matches, stats, err
}

func (t *Table) queryEqualCtx(ctx context.Context, column int, key storage.Value) ([]exec.Match, exec.QueryStats, error) {
	if err := t.engine.checkOpen(); err != nil {
		return nil, exec.QueryStats{}, err
	}

	// Epoch-based lock-free hit path first; only probes the immutable
	// snapshots cannot answer fall through to the lock (readpath.go).
	if !t.engine.cfg.DisableEpochReadPath {
		if m, stats, ok := t.fastEqual(column, key); ok {
			t.noteFlight(ctx, column, stats, false)
			return m, stats, nil
		}
	}

	t.mu.RLock()
	a, err := t.accessLocked(ctx, column)
	if err != nil {
		t.mu.RUnlock()
		return nil, exec.QueryStats{}, err
	}
	if !a.NeedsIndexingScan(key) {
		defer t.mu.RUnlock()
		return t.runEqual(ctx, a, column, key)
	}
	if degrade, err := t.admitMiss(&a); err != nil {
		t.mu.RUnlock()
		return nil, exec.QueryStats{}, err
	} else if degrade {
		defer t.mu.RUnlock()
		return t.runEqual(ctx, a, column, key)
	}
	t.mu.RUnlock()

	return t.queryShared(ctx, column, key, key, true)
}

func (t *Table) runEqual(ctx context.Context, a exec.Access, column int, key storage.Value) ([]exec.Match, exec.QueryStats, error) {
	matches, stats, err := exec.Equal(ctx, a, key)
	if err == nil {
		t.engine.noteScanWorkers(stats)
		t.engine.tracer.Record(t.name, t.schema.Column(column).Name, stats)
		t.sampleTimeline(column, stats, false, a.Buffer)
		t.noteFlight(ctx, column, stats, false)
	}
	return matches, stats, err
}

// QueryRange answers lo <= column <= hi. The partial index serves the
// query only when its predicate covers the whole interval; otherwise the
// query runs through the same indexing-scan machinery as a point miss.
func (t *Table) QueryRange(column int, lo, hi storage.Value) ([]exec.Match, exec.QueryStats, error) {
	return t.QueryRangeCtx(context.Background(), column, lo, hi)
}

// QueryRangeCtx is QueryRange honoring ctx; see QueryEqualCtx for the
// locking protocol.
func (t *Table) QueryRangeCtx(ctx context.Context, column int, lo, hi storage.Value) ([]exec.Match, exec.QueryStats, error) {
	matches, stats, err := t.queryRangeCtx(ctx, column, lo, hi)
	if err == nil {
		t.logQuery(column, false, lo, hi)
	}
	return matches, stats, err
}

func (t *Table) queryRangeCtx(ctx context.Context, column int, lo, hi storage.Value) ([]exec.Match, exec.QueryStats, error) {
	if err := t.engine.checkOpen(); err != nil {
		return nil, exec.QueryStats{}, err
	}

	if !t.engine.cfg.DisableEpochReadPath {
		if m, stats, ok := t.fastRange(column, lo, hi); ok {
			t.noteFlight(ctx, column, stats, false)
			return m, stats, nil
		}
	}

	t.mu.RLock()
	a, err := t.accessLocked(ctx, column)
	if err != nil {
		t.mu.RUnlock()
		return nil, exec.QueryStats{}, err
	}
	if !a.NeedsIndexingScanRange(lo, hi) {
		defer t.mu.RUnlock()
		return t.runRange(ctx, a, column, lo, hi)
	}
	if degrade, err := t.admitMiss(&a); err != nil {
		t.mu.RUnlock()
		return nil, exec.QueryStats{}, err
	} else if degrade {
		defer t.mu.RUnlock()
		return t.runRange(ctx, a, column, lo, hi)
	}
	t.mu.RUnlock()

	return t.queryShared(ctx, column, lo, hi, false)
}

func (t *Table) runRange(ctx context.Context, a exec.Access, column int, lo, hi storage.Value) ([]exec.Match, exec.QueryStats, error) {
	matches, stats, err := exec.Range(ctx, a, lo, hi)
	if err == nil {
		t.engine.noteScanWorkers(stats)
		t.engine.tracer.Record(t.name, t.schema.Column(column).Name, stats)
		t.sampleTimeline(column, stats, false, a.Buffer)
		t.noteFlight(ctx, column, stats, false)
	}
	return matches, stats, err
}

// ExplainEqual plans column = key without executing or mutating state.
func (t *Table) ExplainEqual(column int, key storage.Value) (exec.Plan, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	a, err := t.accessLocked(context.Background(), column)
	if err != nil {
		return exec.Plan{}, err
	}
	return exec.ExplainEqual(a, key), nil
}

// ExplainRange plans lo <= column <= hi without executing.
func (t *Table) ExplainRange(column int, lo, hi storage.Value) (exec.Plan, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	a, err := t.accessLocked(context.Background(), column)
	if err != nil {
		return exec.Plan{}, err
	}
	return exec.ExplainRange(a, lo, hi), nil
}

func (t *Table) accessLocked(ctx context.Context, column int) (exec.Access, error) {
	if err := t.checkColumn(column); err != nil {
		return exec.Access{}, err
	}
	a := exec.Access{
		Table:       t.heap,
		Column:      column,
		Index:       t.indexes[column],
		Buffer:      t.buffers[column],
		Space:       t.engine.space,
		Parallelism: t.engine.cfg.ScanParallelism,
	}
	// The span callback (and the buffer-name string it captures) is built
	// only while a consumer is on — the tracer's span ring, the
	// adaptation timeline, or the statement's flight record — so with all
	// disabled the access path costs three atomic loads and zero
	// allocations. Inside the callback each consumer re-checks its own
	// gate; flight-record calls are nil-receiver no-ops.
	tr, tl := t.engine.tracer, t.engine.timeline
	fa := t.engine.flightActive(ctx)
	if tr.SpansEnabled() || tl.Enabled() || fa != nil {
		target := t.bufferName(column)
		traceID := fa.Trace()
		a.Span = func(kind string, page, n int) {
			tr.SpanTraced(kind, target, page, n, traceID)
			tl.NoteEvent(kind, target, page, n)
			fa.Span(kind, target, page, n)
		}
		if fa != nil {
			// Algorithm-2 page selection attributes its displace /
			// page-select events to this statement (exec threads the
			// observer through core.Space per selection call).
			a.SpaceObs = flightSpans{fa}
		}
	}
	return a, nil
}

// sampleTimeline records one query boundary in the adaptation timeline:
// the queried column's mechanism mix and buffer state, plus a resample
// of any buffer dirtied by adaptive events (e.g. a displacement victim
// on another table) since the last boundary. buf is the queried
// column's buffer as the caller resolved it — under the table lock
// (t.buffers) or from a published readState (the lock-free hit path,
// which holds no table lock at all). The timeline recorder's lock is a
// strict leaf and dirty buffers are resolved through the Space
// (Space.mu is below Table.mu in the documented order, and safe with
// no table lock held). Gated on one atomic load, so the disabled path
// allocates nothing.
func (t *Table) sampleTimeline(column int, stats exec.QueryStats, follower bool, buf *core.IndexBuffer) {
	tl := t.engine.timeline
	if !tl.Enabled() {
		return
	}
	var mech timeline.Mechanism
	switch {
	case stats.PartialHit:
		mech = timeline.MechHit
	case follower:
		mech = timeline.MechFollower
	case stats.FullScan, stats.QuotaDegraded:
		// A quota-degraded pass is a non-indexing scan: for the timeline's
		// mechanism mix it counts with the full scans, since it adapts
		// nothing (the tenant's degraded counter tracks it separately).
		mech = timeline.MechFullScan
	default:
		mech = timeline.MechIndexingScan
	}
	tl.ObserveQuery(t.name, t.schema.Column(column).Name, mech, buf, t.engine.space.Buffer)
}

// noteFlight contributes one executed query's outcome to the calling
// statement's flight record: attribution, mechanism (the tracer's
// vocabulary), matches and the paper's page accounting. Gated on one
// atomic load while the recorder is off.
func (t *Table) noteFlight(ctx context.Context, column int, stats exec.QueryStats, follower bool) {
	fa := t.engine.flightActive(ctx)
	if fa == nil {
		return
	}
	mech := flight.Mechanism(stats.PartialHit, follower, stats.FullScan, stats.QuotaDegraded)
	fa.Query(t.name, t.schema.Column(column).Name, mech, stats.Matches, stats.PagesRead, stats.PagesSkipped, stats.QuotaDegraded)
}

// noteSpan emits one admission-layer span to the global stream (stamped
// with the statement's trace ID) and to the statement's flight record.
// The target name is built only when a consumer is on.
func (t *Table) noteSpan(fa *flight.Active, kind string, column, page, n int) {
	tr := t.engine.tracer
	if !tr.SpansEnabled() && fa == nil {
		return
	}
	target := t.bufferName(column)
	tr.SpanTraced(kind, target, page, n, fa.Trace())
	fa.Span(kind, target, page, n)
}
