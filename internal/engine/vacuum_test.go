package engine

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/storage"
)

// churn deletes roughly half the rows and updates a quarter, fragmenting
// the heap. It returns the surviving RIDs.
func churn(t *testing.T, tb *Table) []storage.RID {
	t.Helper()
	rng := rand.New(rand.NewSource(5))
	var rids []storage.RID
	_ = tb.Scan(func(rid storage.RID, _ storage.Tuple) error {
		rids = append(rids, rid)
		return nil
	})
	var live []storage.RID
	for i, rid := range rids {
		switch {
		case i%2 == 0:
			if err := tb.Delete(rid); err != nil {
				t.Fatal(err)
			}
		case i%4 == 1:
			tu := storage.NewTuple(
				iv(1+rng.Int63n(100)), iv(1+rng.Int63n(100)), iv(1+rng.Int63n(100)),
				storage.StringValue(strings.Repeat("u", 1+rng.Intn(500))),
			)
			nr, err := tb.Update(rid, tu)
			if err != nil {
				t.Fatal(err)
			}
			live = append(live, nr)
		default:
			live = append(live, rid)
		}
	}
	return live
}

func TestVacuumCompactsAndStaysCorrect(t *testing.T) {
	_, tb := newABC(t, Config{Space: core.Config{IMax: 100000, P: 1000}}, 2000, 100)
	if err := tb.CreatePartialIndex(0, index.IntRange(1, 50)); err != nil {
		t.Fatal(err)
	}
	// Warm the buffer, then fragment the heap.
	if _, _, err := tb.QueryEqual(0, iv(90)); err != nil {
		t.Fatal(err)
	}
	churn(t, tb)
	wantCount, err := tb.Count()
	if err != nil {
		t.Fatal(err)
	}
	// Ground truth per key before vacuum (RIDs will change; count only).
	wantPerKey := map[int64]int{}
	_ = tb.Scan(func(_ storage.RID, tu storage.Tuple) error {
		wantPerKey[tu.Value(0).Int64()]++
		return nil
	})

	before, after, err := tb.Vacuum()
	if err != nil {
		t.Fatal(err)
	}
	if after >= before {
		t.Errorf("vacuum did not shrink: %d -> %d pages", before, after)
	}
	gotCount, err := tb.Count()
	if err != nil {
		t.Fatal(err)
	}
	if gotCount != wantCount {
		t.Errorf("rows = %d, want %d", gotCount, wantCount)
	}
	// Index answers covered queries; buffer restarted empty and works.
	if tb.Buffer(0).EntryCount() != 0 {
		t.Error("buffer survived vacuum")
	}
	for _, key := range []int64{10, 25, 90, 99} {
		got, stats, err := tb.QueryEqual(0, iv(key))
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != wantPerKey[key] {
			t.Errorf("key %d: %d rows, want %d", key, len(got), wantPerKey[key])
		}
		if key <= 50 && !stats.PartialHit {
			t.Errorf("key %d should hit the rebuilt index", key)
		}
	}
	// The buffer rebuilds via misses as usual.
	if _, _, err := tb.QueryEqual(0, iv(80)); err != nil {
		t.Fatal(err)
	}
	_, s2, err := tb.QueryEqual(0, iv(81))
	if err != nil {
		t.Fatal(err)
	}
	if s2.PagesSkipped != tb.NumPages() {
		t.Errorf("post-vacuum skips = %d of %d", s2.PagesSkipped, tb.NumPages())
	}
}

func TestVacuumFileBackedPersists(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{DataDir: dir, PoolPages: 8, Space: core.Config{IMax: 100000, P: 1000}}
	e := New(cfg)
	schema := storage.MustSchema(
		storage.Column{Name: "a", Kind: storage.KindInt64},
		storage.Column{Name: "pad", Kind: storage.KindString},
	)
	tb, err := e.CreateTable("t", schema)
	if err != nil {
		t.Fatal(err)
	}
	pad := strings.Repeat("f", 350)
	var rids []storage.RID
	for i := 0; i < 600; i++ {
		rid, err := tb.Insert(storage.NewTuple(iv(int64(i%50)), storage.StringValue(pad)))
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	if err := tb.CreatePartialIndex(0, index.IntRange(0, 24)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(rids); i += 2 {
		if err := tb.Delete(rids[i]); err != nil {
			t.Fatal(err)
		}
	}
	before, after, err := tb.Vacuum()
	if err != nil {
		t.Fatal(err)
	}
	if after >= before {
		t.Errorf("no shrink: %d -> %d", before, after)
	}
	if err := e.Save(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	// Reload: the vacuumed file must carry exactly the survivors.
	e2, err := Load(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	tb2 := e2.Table("t")
	n, err := tb2.Count()
	if err != nil {
		t.Fatal(err)
	}
	if n != 300 {
		t.Errorf("rows after reload = %d, want 300", n)
	}
	got, stats, err := tb2.QueryEqual(0, iv(1)) // odd keys survive
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 12 || !stats.PartialHit {
		t.Errorf("rows=%d hit=%v", len(got), stats.PartialHit)
	}
}
