package engine

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/index"
	"repro/internal/storage"
)

// newKeyed builds a table with rows tuples, key = i % domain, padded so
// a few tuples fit per page, with a partial index covering [0, cover].
func newKeyed(t *testing.T, rows, domain int, cover int64) (*Engine, *Table) {
	t.Helper()
	e := New(Config{Space: core.Config{IMax: 10000, P: 100}})
	schema := storage.MustSchema(
		storage.Column{Name: "k", Kind: storage.KindInt64},
		storage.Column{Name: "pad", Kind: storage.KindString},
	)
	tb, err := e.CreateTable("t", schema)
	if err != nil {
		t.Fatal(err)
	}
	pad := strings.Repeat("p", 700)
	for i := 0; i < rows; i++ {
		tu := storage.NewTuple(iv(int64(i%domain)), storage.StringValue(pad))
		if _, err := tb.Insert(tu); err != nil {
			t.Fatal(err)
		}
	}
	if err := tb.CreatePartialIndex(0, index.IntRange(0, cover)); err != nil {
		t.Fatal(err)
	}
	return e, tb
}

// TestSharedScanCoalescesConcurrentMisses pins the attach window open by
// occupying the column's batch slot directly, so all 8 concurrent misses
// deterministically join one batch; the test then performs the leader's
// duty and asserts exactly one shared pass answered all of them.
func TestSharedScanCoalescesConcurrentMisses(t *testing.T) {
	e, tb := newKeyed(t, 300, 50, 9)

	blocker := &attachedQuery{ctx: context.Background(), lo: iv(10), hi: iv(10), equality: true}
	batch, leader := tb.scans.attach(0, blocker)
	if !leader {
		t.Fatal("fresh table already has a pending batch")
	}

	const n = 8
	var wg sync.WaitGroup
	results := make([][]exec.Match, n)
	errs := make([]error, n)
	for g := 0; g < n; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			results[g], _, errs[g] = tb.QueryEqual(0, iv(int64(10+g))) // uncovered keys 10..17
		}(g)
	}

	// Wait until every miss has attached to the pinned batch.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if s := e.SharedScanStats(); s.Misses == n && s.Attached == n {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("batch never assembled: %+v", s)
		}
		time.Sleep(time.Millisecond)
	}

	// The leader's duty: seal, run one shared pass, publish.
	tb.mu.Lock()
	attached := tb.scans.seal(0, batch)
	a, err := tb.accessLocked(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	e.sharedScans.Scans.Add(1)
	tb.runShared(a, 0, attached)
	tb.mu.Unlock()
	close(batch.done)
	wg.Wait()

	if len(attached) != n+1 {
		t.Fatalf("batch holds %d queries, want %d", len(attached), n+1)
	}
	for g := 0; g < n; g++ {
		if errs[g] != nil {
			t.Errorf("query %d: %v", g, errs[g])
		}
		if len(results[g]) != 6 {
			t.Errorf("query %d: %d matches, want 6", g, len(results[g]))
		}
	}
	if blocker.err != nil || len(blocker.out) != 6 {
		t.Errorf("blocker outcome: err=%v matches=%d", blocker.err, len(blocker.out))
	}
	s := e.SharedScanStats()
	if s.Scans != 1 {
		t.Errorf("Scans = %d, want 1 (one pass for %d misses)", s.Scans, n)
	}
	if s.Saved != n-1 {
		t.Errorf("Saved = %d, want %d", s.Saved, n-1)
	}
	// The shared pass built the buffer: a later miss skips every page and
	// only fetches the pages holding its buffered matches.
	_, stats, err := tb.QueryEqual(0, iv(30))
	if err != nil {
		t.Fatal(err)
	}
	if stats.PagesSkipped != tb.NumPages() || stats.BufferMatches != 6 || stats.PagesRead > 6 {
		t.Errorf("follow-up miss: skipped=%d bufferMatches=%d read=%d of %d pages",
			stats.PagesSkipped, stats.BufferMatches, stats.PagesRead, tb.NumPages())
	}
}

// TestSharedScanFollowerCancellation pins a batch open and cancels an
// attached follower: it must return ctx.Err() immediately, without
// waiting for the scan.
func TestSharedScanFollowerCancellation(t *testing.T) {
	e, tb := newKeyed(t, 300, 50, 9)

	blocker := &attachedQuery{ctx: context.Background(), lo: iv(10), hi: iv(10), equality: true}
	batch, leader := tb.scans.attach(0, blocker)
	if !leader {
		t.Fatal("fresh table already has a pending batch")
	}

	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, _, err := tb.QueryEqualCtx(ctx, 0, iv(11))
		errCh <- err
	}()

	deadline := time.Now().Add(5 * time.Second)
	for e.SharedScanStats().Attached != 1 {
		if time.Now().After(deadline) {
			t.Fatal("follower never attached")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case err := <-errCh:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("follower err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("canceled follower still waiting on the batch")
	}

	// The batch still runs for its remaining queries.
	tb.mu.Lock()
	attached := tb.scans.seal(0, batch)
	a, err := tb.accessLocked(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	e.sharedScans.Scans.Add(1)
	tb.runShared(a, 0, attached)
	tb.mu.Unlock()
	close(batch.done)

	if blocker.err != nil || len(blocker.out) != 6 {
		t.Errorf("blocker outcome after follower cancel: err=%v matches=%d", blocker.err, len(blocker.out))
	}
}
