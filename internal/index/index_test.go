package index

import (
	"testing"

	"repro/internal/storage"
)

func iv(v int64) storage.Value { return storage.Int64Value(v) }
func rid(p, s int) storage.RID { return storage.RID{Page: storage.PageID(p), Slot: uint16(s)} }

func TestRangeCoverage(t *testing.T) {
	t.Parallel()
	c := IntRange(1, 5000)
	cases := []struct {
		v    int64
		want bool
	}{
		{0, false}, {1, true}, {2500, true}, {5000, true}, {5001, false},
	}
	for _, cs := range cases {
		if got := c.Covers(iv(cs.v)); got != cs.want {
			t.Errorf("Covers(%d) = %v, want %v", cs.v, got, cs.want)
		}
	}
	if c.String() != "BETWEEN 1 AND 5000" {
		t.Errorf("String() = %q", c.String())
	}
}

func TestSetCoverage(t *testing.T) {
	t.Parallel()
	c := NewSetCoverage(iv(3), iv(7), storage.StringValue("ORD"))
	if !c.Covers(iv(3)) || !c.Covers(storage.StringValue("ORD")) {
		t.Error("member not covered")
	}
	if c.Covers(iv(4)) || c.Covers(storage.StringValue("FRA")) {
		t.Error("non-member covered")
	}
	if c.Len() != 3 {
		t.Errorf("Len = %d", c.Len())
	}
}

func TestNoneAllCoverage(t *testing.T) {
	t.Parallel()
	if (NoneCoverage{}).Covers(iv(1)) {
		t.Error("NoneCoverage covered something")
	}
	if !(AllCoverage{}).Covers(iv(1)) {
		t.Error("AllCoverage missed something")
	}
	if (NoneCoverage{}).String() != "NONE" || (AllCoverage{}).String() != "ALL" {
		t.Error("String() wrong")
	}
}

func TestPartialAddRespectsCoverage(t *testing.T) {
	t.Parallel()
	p := NewPartial("ix_a", 0, IntRange(1, 100))
	if !p.Add(iv(50), rid(0, 0)) {
		t.Error("covered add should succeed")
	}
	if p.Add(iv(200), rid(0, 1)) {
		t.Error("uncovered add should be refused")
	}
	if p.Add(iv(50), rid(0, 0)) {
		t.Error("duplicate add should be refused")
	}
	if p.EntryCount() != 1 {
		t.Errorf("entries = %d", p.EntryCount())
	}
	if got := p.Stats().Adds; got != 1 {
		t.Errorf("adds = %d", got)
	}
}

func TestPartialLookup(t *testing.T) {
	t.Parallel()
	p := NewPartial("ix_a", 0, IntRange(1, 100))
	p.Add(iv(10), rid(1, 0))
	p.Add(iv(10), rid(2, 0))
	post := p.Lookup(iv(10))
	if len(post) != 2 {
		t.Errorf("posting = %v", post)
	}
	if p.Stats().Probes != 1 {
		t.Errorf("probes = %d", p.Stats().Probes)
	}
	defer func() {
		if recover() == nil {
			t.Error("lookup of uncovered value should panic")
		}
	}()
	p.Lookup(iv(9999))
}

func TestPartialContains(t *testing.T) {
	t.Parallel()
	p := NewPartial("ix_a", 0, IntRange(1, 100))
	p.Add(iv(10), rid(1, 0))
	if !p.Contains(iv(10), rid(1, 0)) {
		t.Error("present pair not found")
	}
	if p.Contains(iv(10), rid(9, 9)) {
		t.Error("absent rid found")
	}
	// Uncovered values are queryable via Contains (needed by Table I
	// maintenance) and always absent.
	if p.Contains(iv(9999), rid(1, 0)) {
		t.Error("uncovered value reported present")
	}
}

func TestPartialRemove(t *testing.T) {
	t.Parallel()
	p := NewPartial("ix_a", 0, IntRange(1, 100))
	p.Add(iv(10), rid(1, 0))
	if !p.Remove(iv(10), rid(1, 0)) {
		t.Error("remove should succeed")
	}
	if p.Remove(iv(10), rid(1, 0)) {
		t.Error("re-remove should fail")
	}
	if p.EntryCount() != 0 || p.Stats().Removes != 1 {
		t.Errorf("entries=%d removes=%d", p.EntryCount(), p.Stats().Removes)
	}
}

func TestPartialUpdateMatrix(t *testing.T) {
	t.Parallel()
	// The four IX cases of the paper's Table I.
	cov := IntRange(1, 100)
	r1, r2 := rid(1, 0), rid(2, 0)

	t.Run("in->in", func(t *testing.T) {
		p := NewPartial("ix", 0, cov)
		p.Add(iv(10), r1)
		p.Update(iv(10), iv(20), r1, r2)
		if p.Contains(iv(10), r1) || !p.Contains(iv(20), r2) {
			t.Error("update did not move entry")
		}
	})
	t.Run("in->out", func(t *testing.T) {
		p := NewPartial("ix", 0, cov)
		p.Add(iv(10), r1)
		p.Update(iv(10), iv(500), r1, r2)
		if p.Contains(iv(10), r1) || p.EntryCount() != 0 {
			t.Error("update did not remove entry")
		}
	})
	t.Run("out->in", func(t *testing.T) {
		p := NewPartial("ix", 0, cov)
		p.Update(iv(500), iv(20), r1, r2)
		if !p.Contains(iv(20), r2) {
			t.Error("update did not add entry")
		}
	})
	t.Run("out->out", func(t *testing.T) {
		p := NewPartial("ix", 0, cov)
		p.Update(iv(500), iv(600), r1, r2)
		if p.EntryCount() != 0 {
			t.Error("out->out update touched index")
		}
	})
	t.Run("same value same rid is noop", func(t *testing.T) {
		p := NewPartial("ix", 0, cov)
		p.Add(iv(10), r1)
		before := p.Stats()
		p.Update(iv(10), iv(10), r1, r1)
		if p.Stats() != before {
			t.Error("no-op update changed stats")
		}
		if !p.Contains(iv(10), r1) {
			t.Error("no-op update lost entry")
		}
	})
}

// fakeSource is an in-memory TupleSource.
type fakeSource struct {
	rows []struct {
		rid storage.RID
		tu  storage.Tuple
	}
}

func (f *fakeSource) add(r storage.RID, tu storage.Tuple) {
	f.rows = append(f.rows, struct {
		rid storage.RID
		tu  storage.Tuple
	}{r, tu})
}

func (f *fakeSource) Scan(fn func(storage.RID, storage.Tuple) error) error {
	for _, row := range f.rows {
		if err := fn(row.rid, row.tu); err != nil {
			return err
		}
	}
	return nil
}

func TestPartialRebuild(t *testing.T) {
	t.Parallel()
	src := &fakeSource{}
	for i := 0; i < 100; i++ {
		src.add(rid(i/10, i%10), storage.NewTuple(iv(int64(i))))
	}
	p := NewPartial("ix", 0, IntRange(0, 49))
	for i := 0; i < 50; i++ {
		p.Add(iv(int64(i)), rid(i/10, i%10))
	}
	n, err := p.Rebuild(IntRange(50, 99), src)
	if err != nil {
		t.Fatal(err)
	}
	if n != 50 || p.EntryCount() != 50 {
		t.Errorf("rebuilt entries = %d / %d", n, p.EntryCount())
	}
	if p.Covers(iv(10)) {
		t.Error("old coverage survived rebuild")
	}
	if !p.Contains(iv(75), rid(7, 5)) {
		t.Error("rebuilt index missing entry")
	}
	if p.Contains(iv(10), rid(1, 0)) {
		t.Error("rebuilt index kept stale entry")
	}
}

func TestPartialAscend(t *testing.T) {
	t.Parallel()
	p := NewPartial("ix", 0, IntRange(1, 100))
	for _, k := range []int64{30, 10, 20} {
		p.Add(iv(k), rid(int(k), 0))
	}
	var got []int64
	p.Ascend(func(v storage.Value, _ []storage.RID) bool {
		got = append(got, v.Int64())
		return true
	})
	want := []int64{10, 20, 30}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v", got)
		}
	}
}

func TestNewPartialNilCoverage(t *testing.T) {
	t.Parallel()
	p := NewPartial("ix", 0, nil)
	if p.Covers(iv(1)) {
		t.Error("nil coverage should behave as NONE")
	}
}

func TestCoversWholeRange(t *testing.T) {
	t.Parallel()
	r := IntRange(10, 100)
	if !CoversWholeRange(r, iv(10), iv(100)) || !CoversWholeRange(r, iv(50), iv(60)) {
		t.Error("nested range should be covered")
	}
	if CoversWholeRange(r, iv(5), iv(60)) || CoversWholeRange(r, iv(50), iv(101)) {
		t.Error("straddling range should not be covered")
	}
	// SetCoverage has no RangeCoverer: only degenerate ranges hit.
	s := NewSetCoverage(iv(7))
	if !CoversWholeRange(s, iv(7), iv(7)) {
		t.Error("degenerate covered range should hit")
	}
	if CoversWholeRange(s, iv(7), iv(8)) {
		t.Error("non-degenerate range on set coverage should miss")
	}
	if !CoversWholeRange(AllCoverage{}, iv(-1000), iv(1000)) {
		t.Error("ALL should cover any range")
	}
	if CoversWholeRange(NoneCoverage{}, iv(1), iv(1)) {
		t.Error("NONE should cover nothing")
	}
}

func TestPartialLookupRange(t *testing.T) {
	t.Parallel()
	p := NewPartial("ix", 0, IntRange(0, 99))
	for k := int64(0); k < 100; k += 2 {
		p.Add(iv(k), rid(int(k), 0))
	}
	got := p.LookupRange(iv(10), iv(20))
	if len(got) != 6 { // 10 12 14 16 18 20
		t.Errorf("range postings = %d, want 6", len(got))
	}
	defer func() {
		if recover() == nil {
			t.Error("uncovered range lookup should panic")
		}
	}()
	p.LookupRange(iv(90), iv(150))
}

func TestPartialScanRange(t *testing.T) {
	t.Parallel()
	p := NewPartial("ix", 0, IntRange(0, 49))
	for k := int64(0); k < 100; k++ {
		p.Add(iv(k), rid(int(k), 0)) // only 0..49 accepted
	}
	// ScanRange over an uncovered-straddling interval returns only what
	// the index holds, without panicking.
	got := p.ScanRange(iv(40), iv(60))
	if len(got) != 10 { // 40..49
		t.Errorf("scan postings = %d, want 10", len(got))
	}
}

func TestUnionCoverage(t *testing.T) {
	t.Parallel()
	u := UnionCoverage{IntRange(1, 10), IntRange(50, 60)}
	for _, c := range []struct {
		v    int64
		want bool
	}{{0, false}, {1, true}, {10, true}, {11, false}, {49, false}, {55, true}, {61, false}} {
		if got := u.Covers(iv(c.v)); got != c.want {
			t.Errorf("Covers(%d) = %v, want %v", c.v, got, c.want)
		}
	}
	if !u.CoversRange(iv(2), iv(9)) {
		t.Error("nested range should be covered")
	}
	if u.CoversRange(iv(5), iv(55)) {
		t.Error("range spanning the gap must not be covered")
	}
	if u.String() != "UNION of 2 ranges" {
		t.Errorf("String() = %q", u.String())
	}
}

func TestSetCoverageForEach(t *testing.T) {
	t.Parallel()
	c := NewSetCoverage(iv(1), iv(2), iv(3))
	seen := map[int64]bool{}
	c.ForEach(func(v storage.Value) { seen[v.Int64()] = true })
	if len(seen) != 3 || !seen[1] || !seen[2] || !seen[3] {
		t.Errorf("ForEach visited %v", seen)
	}
}

func TestPartialAccessors(t *testing.T) {
	t.Parallel()
	p := NewPartial("flights.airport", 2, IntRange(1, 5))
	if p.Name() != "flights.airport" || p.Column() != 2 {
		t.Errorf("accessors: %q, %d", p.Name(), p.Column())
	}
	if p.Coverage().String() != "BETWEEN 1 AND 5" {
		t.Errorf("coverage = %v", p.Coverage())
	}
}
