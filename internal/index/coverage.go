// Package index implements partial secondary indexes: B+-tree indexes
// that cover only a predicate-defined subset of a column's values (paper
// §II; Stonebraker 1989, Seshadri & Swami 1995). A query for a covered
// value is a "partial index hit" and is answered from the index; a query
// for an uncovered value degrades to a table scan — the situation the
// Index Buffer exists to soften.
package index

import (
	"fmt"

	"repro/internal/storage"
)

// Coverage is the defining predicate of a partial index: which column
// values the index contains. Implementations must be immutable.
type Coverage interface {
	// Covers reports whether value v belongs in the partial index.
	Covers(v storage.Value) bool
	// String renders the predicate for logs and EXPLAIN-style output.
	String() string
}

// RangeCoverer is an optional Coverage extension: predicates that can
// decide whether they cover a whole closed interval, which lets the
// executor answer range queries from the partial index. Predicates
// without it are treated conservatively (only degenerate single-value
// ranges can hit).
type RangeCoverer interface {
	// CoversRange reports whether every value in [lo, hi] is covered.
	CoversRange(lo, hi storage.Value) bool
}

// CoversWholeRange reports whether cov covers every value in [lo, hi],
// using RangeCoverer when available and falling back to the single-value
// case.
func CoversWholeRange(cov Coverage, lo, hi storage.Value) bool {
	if rc, ok := cov.(RangeCoverer); ok {
		return rc.CoversRange(lo, hi)
	}
	return lo.Equal(hi) && cov.Covers(lo)
}

// RangeCoverage covers the closed interval [Lo, Hi]. The paper's
// evaluation indexes "the top 10% of the value range ... values from 1 to
// 5,000" of each column — a RangeCoverage{1, 5000}.
type RangeCoverage struct {
	Lo, Hi storage.Value
}

// Covers implements Coverage.
func (c RangeCoverage) Covers(v storage.Value) bool {
	return v.Compare(c.Lo) >= 0 && v.Compare(c.Hi) <= 0
}

// CoversRange implements RangeCoverer: [lo, hi] must nest in [Lo, Hi].
func (c RangeCoverage) CoversRange(lo, hi storage.Value) bool {
	return lo.Compare(c.Lo) >= 0 && hi.Compare(c.Hi) <= 0
}

// String implements Coverage.
func (c RangeCoverage) String() string {
	return fmt.Sprintf("BETWEEN %v AND %v", c.Lo, c.Hi)
}

// IntRange is shorthand for a RangeCoverage over integers.
func IntRange(lo, hi int64) RangeCoverage {
	return RangeCoverage{Lo: storage.Int64Value(lo), Hi: storage.Int64Value(hi)}
}

// SetCoverage covers an explicit set of values — the shape produced by a
// value-granular online tuning facility (each indexed value was promoted
// individually, like the paper's Fig. 1 simulation).
type SetCoverage struct {
	values map[storage.Value]struct{}
}

// NewSetCoverage builds a SetCoverage over the given values.
func NewSetCoverage(values ...storage.Value) SetCoverage {
	m := make(map[storage.Value]struct{}, len(values))
	for _, v := range values {
		m[v] = struct{}{}
	}
	return SetCoverage{values: m}
}

// Covers implements Coverage.
func (c SetCoverage) Covers(v storage.Value) bool {
	_, ok := c.values[v]
	return ok
}

// Len returns the number of covered values.
func (c SetCoverage) Len() int { return len(c.values) }

// ForEach visits every covered value in unspecified order (used by the
// catalog to persist the set).
func (c SetCoverage) ForEach(fn func(storage.Value)) {
	for v := range c.values {
		fn(v)
	}
}

// String implements Coverage.
func (c SetCoverage) String() string {
	return fmt.Sprintf("IN (%d values)", len(c.values))
}

// UnionCoverage covers the union of several ranges — the shape an
// adaptation controller produces when the workload has several hot
// regions.
type UnionCoverage []RangeCoverage

// Covers implements Coverage.
func (u UnionCoverage) Covers(v storage.Value) bool {
	for _, r := range u {
		if r.Covers(v) {
			return true
		}
	}
	return false
}

// CoversRange implements RangeCoverer: the interval must nest within a
// single member range (a union of disjoint ranges cannot vouch for the
// gaps between them).
func (u UnionCoverage) CoversRange(lo, hi storage.Value) bool {
	for _, r := range u {
		if r.CoversRange(lo, hi) {
			return true
		}
	}
	return false
}

// String implements Coverage.
func (u UnionCoverage) String() string {
	return fmt.Sprintf("UNION of %d ranges", len(u))
}

// NoneCoverage covers nothing — a freshly created, still-empty partial
// index.
type NoneCoverage struct{}

// Covers implements Coverage.
func (NoneCoverage) Covers(storage.Value) bool { return false }

// String implements Coverage.
func (NoneCoverage) String() string { return "NONE" }

// AllCoverage covers everything — a conventional full secondary index,
// useful as a reference access path in the benchmarks.
type AllCoverage struct{}

// Covers implements Coverage.
func (AllCoverage) Covers(storage.Value) bool { return true }

// CoversRange implements RangeCoverer.
func (AllCoverage) CoversRange(lo, hi storage.Value) bool { return true }

// String implements Coverage.
func (AllCoverage) String() string { return "ALL" }
