package index

import (
	"fmt"
	"sync/atomic"

	"repro/internal/btree"
	"repro/internal/storage"
)

// Stats counts maintenance and probe activity on a partial index. The
// paper's premise is that partial-index adaptation "is not for free"
// (§I); these counters are what the benchmarks charge for it.
type Stats struct {
	Adds    uint64 // entries added
	Removes uint64 // entries removed
	Updates uint64 // entries updated in place
	Probes  uint64 // lookups served
}

// partialState is one immutable (coverage, tree) pair. Mutators derive
// a new state from the current one and publish it with a single atomic
// store; the persistent B+-tree shares all unchanged nodes with its
// predecessor, so a published state never mutates and a reader that
// loaded it may keep probing it for as long as it likes.
type partialState struct {
	cov  Coverage
	tree *btree.PTree
}

// Partial is a partial secondary index over one column of a table. The
// index contains exactly the (value, rid) pairs of live tuples whose
// value satisfies the coverage predicate.
//
// Concurrency: the index state (coverage predicate + persistent B+-tree)
// lives behind one atomic pointer. Probes (Lookup, LookupRange,
// ScanRange, Contains, Covers, Ascend, Snapshot) load it and need no
// lock at all — they may run concurrently with each other and with a
// mutator, observing either the old or the new state in full, never a
// mix. Mutations (Add, Remove, Update, Rebuild) are load-derive-store
// and require exclusive access among themselves; the engine provides it
// via the table lock.
type Partial struct {
	name   string
	column int
	state  atomic.Pointer[partialState]

	adds    atomic.Uint64
	removes atomic.Uint64
	updates atomic.Uint64
	probes  atomic.Uint64
}

// NewPartial creates an empty partial index named name over column
// ordinal column with the given coverage predicate.
func NewPartial(name string, column int, cov Coverage) *Partial {
	if cov == nil {
		cov = NoneCoverage{}
	}
	p := &Partial{name: name, column: column}
	p.state.Store(&partialState{cov: cov, tree: btree.NewPTreeDefault()})
	return p
}

// Name returns the index name.
func (p *Partial) Name() string { return p.name }

// Column returns the indexed column's ordinal.
func (p *Partial) Column() int { return p.column }

// Coverage returns the current defining predicate.
func (p *Partial) Coverage() Coverage { return p.state.Load().cov }

// Covers reports whether v is within the index's defining predicate —
// i.e. whether a query for v is a partial index hit.
func (p *Partial) Covers(v storage.Value) bool { return p.state.Load().cov.Covers(v) }

// EntryCount returns the number of (value, rid) entries.
func (p *Partial) EntryCount() int { return p.state.Load().tree.EntryCount() }

// Stats returns a snapshot of the maintenance counters.
func (p *Partial) Stats() Stats {
	return Stats{
		Adds:    p.adds.Load(),
		Removes: p.removes.Load(),
		Updates: p.updates.Load(),
		Probes:  p.probes.Load(),
	}
}

// Snapshot is a stable view of the index at one instant: a coverage
// predicate and a persistent tree that no later mutation will touch.
// The epoch-based read path resolves a whole probe against one Snapshot
// and defers the only side effect (the probe counter) to NoteProbe, so
// a validation failure can retry or fall back without having counted
// anything.
type Snapshot struct {
	st *partialState
	p  *Partial
}

// Snapshot returns the current index state without taking any lock.
func (p *Partial) Snapshot() Snapshot { return Snapshot{st: p.state.Load(), p: p} }

// Covers reports whether v is covered by the snapshot's predicate.
func (s Snapshot) Covers(v storage.Value) bool { return s.st.cov.Covers(v) }

// CoversRange reports whether [lo, hi] is entirely covered.
func (s Snapshot) CoversRange(lo, hi storage.Value) bool {
	return CoversWholeRange(s.st.cov, lo, hi)
}

// EntryCount returns the snapshot's entry count.
func (s Snapshot) EntryCount() int { return s.st.tree.EntryCount() }

// Lookup returns the posting list for v. The caller must have checked
// Covers; no probe is counted — call NoteProbe once the result is
// actually used. The returned slice aliases the immutable tree and must
// not be modified.
func (s Snapshot) Lookup(v storage.Value) []storage.RID { return s.st.tree.Lookup(v) }

// LookupRange returns the RIDs with values in [lo, hi]. The caller must
// have checked CoversRange; no probe is counted.
func (s Snapshot) LookupRange(lo, hi storage.Value) []storage.RID {
	var out []storage.RID
	s.st.tree.AscendRange(lo, hi, func(_ storage.Value, post []storage.RID) bool {
		out = append(out, post...)
		return true
	})
	return out
}

// NoteProbe counts one served probe against the owning index.
func (s Snapshot) NoteProbe() { s.p.probes.Add(1) }

// Lookup returns the RIDs of tuples with the given value. Callers must
// only ask for covered values; probing for an uncovered value is a logic
// error in the access-path selection and panics.
func (p *Partial) Lookup(v storage.Value) []storage.RID {
	st := p.state.Load()
	if !st.cov.Covers(v) {
		panic(fmt.Sprintf("index %s: lookup of uncovered value %v", p.name, v))
	}
	p.probes.Add(1)
	return st.tree.Lookup(v)
}

// CoversRange reports whether the whole interval [lo, hi] is inside the
// index's defining predicate — whether a range query over it is a
// partial index hit.
func (p *Partial) CoversRange(lo, hi storage.Value) bool {
	return CoversWholeRange(p.state.Load().cov, lo, hi)
}

// LookupRange returns the RIDs of tuples with values in [lo, hi]. The
// whole range must be covered; probing an uncovered range panics, as in
// Lookup.
func (p *Partial) LookupRange(lo, hi storage.Value) []storage.RID {
	st := p.state.Load()
	if !CoversWholeRange(st.cov, lo, hi) {
		panic(fmt.Sprintf("index %s: range lookup of uncovered range [%v, %v]", p.name, lo, hi))
	}
	p.probes.Add(1)
	var out []storage.RID
	st.tree.AscendRange(lo, hi, func(_ storage.Value, post []storage.RID) bool {
		out = append(out, post...)
		return true
	})
	return out
}

// ScanRange returns the postings of all index entries with values in
// [lo, hi], with no coverage requirement — the index simply reports what
// it contains. Range scans over partially covered intervals use this to
// recover covered matches sitting on pages the Index Buffer lets them
// skip.
func (p *Partial) ScanRange(lo, hi storage.Value) []storage.RID {
	p.probes.Add(1)
	var out []storage.RID
	p.state.Load().tree.AscendRange(lo, hi, func(_ storage.Value, post []storage.RID) bool {
		out = append(out, post...)
		return true
	})
	return out
}

// Contains reports whether (v, rid) is present. Unlike Lookup it may be
// asked about uncovered values (it then reports false), because the
// Index Buffer's maintenance logic tests membership for arbitrary
// tuples.
func (p *Partial) Contains(v storage.Value, rid storage.RID) bool {
	st := p.state.Load()
	if !st.cov.Covers(v) {
		return false
	}
	return st.tree.Contains(v, rid)
}

// Add inserts (v, rid) if v is covered; it reports whether an entry was
// added. Mutators require exclusive access (the table lock).
func (p *Partial) Add(v storage.Value, rid storage.RID) bool {
	st := p.state.Load()
	if !st.cov.Covers(v) {
		return false
	}
	tree, added := st.tree.Insert(v, rid)
	if !added {
		return false
	}
	p.state.Store(&partialState{cov: st.cov, tree: tree})
	p.adds.Add(1)
	return true
}

// Remove deletes (v, rid); it reports whether an entry was removed.
func (p *Partial) Remove(v storage.Value, rid storage.RID) bool {
	st := p.state.Load()
	tree, removed := st.tree.Delete(v, rid)
	if !removed {
		return false
	}
	p.state.Store(&partialState{cov: st.cov, tree: tree})
	p.removes.Add(1)
	return true
}

// Update adjusts the index for a tuple whose indexed value changed from
// old to new and whose RID changed from oldRID to newRID (they may be
// equal). It implements the IX column of the paper's Table I:
//
//	old covered, new covered  -> IX.Update
//	old covered, new not      -> IX.Remove(old)
//	old not, new covered      -> IX.Add(new)
//	old not, new not          -> nothing
func (p *Partial) Update(old, new storage.Value, oldRID, newRID storage.RID) {
	st := p.state.Load()
	oldIn, newIn := st.cov.Covers(old), st.cov.Covers(new)
	switch {
	case oldIn && newIn:
		if old.Equal(new) && oldRID == newRID {
			return
		}
		tree, _ := st.tree.Delete(old, oldRID)
		tree, _ = tree.Insert(new, newRID)
		p.state.Store(&partialState{cov: st.cov, tree: tree})
		p.updates.Add(1)
	case oldIn && !newIn:
		if tree, ok := st.tree.Delete(old, oldRID); ok {
			p.state.Store(&partialState{cov: st.cov, tree: tree})
			p.removes.Add(1)
		}
	case !oldIn && newIn:
		if tree, ok := st.tree.Insert(new, newRID); ok {
			p.state.Store(&partialState{cov: st.cov, tree: tree})
			p.adds.Add(1)
		}
	}
}

// Ascend iterates the index contents in value order.
func (p *Partial) Ascend(fn func(v storage.Value, post []storage.RID) bool) {
	p.state.Load().tree.Ascend(fn)
}

// TupleSource yields the tuples of a table page by page; the heap table
// satisfies it. It is the minimal surface Rebuild needs, kept as an
// interface so index does not depend on heap.
type TupleSource interface {
	Scan(fn func(storage.RID, storage.Tuple) error) error
}

// Rebuild redefines the index's coverage and repopulates it with a full
// scan of the table — the (expensive) adaptation step of the disk-based
// partial index that the Index Buffer papers over. It returns the number
// of entries in the rebuilt index. The new coverage and the new tree
// become visible to lock-free probes in one atomic publication.
func (p *Partial) Rebuild(cov Coverage, table TupleSource) (int, error) {
	if cov == nil {
		cov = NoneCoverage{}
	}
	var entries []btree.Entry
	err := table.Scan(func(rid storage.RID, tu storage.Tuple) error {
		v := tu.Value(p.column)
		if cov.Covers(v) {
			entries = append(entries, btree.Entry{Key: v, RID: rid})
		}
		return nil
	})
	if err != nil {
		return 0, fmt.Errorf("index %s: rebuild: %w", p.name, err)
	}
	fresh := btree.PBulk(btree.DefaultOrder, entries)
	p.adds.Add(uint64(fresh.EntryCount()))
	p.state.Store(&partialState{cov: cov, tree: fresh})
	return fresh.EntryCount(), nil
}
