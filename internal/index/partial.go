package index

import (
	"fmt"
	"sync/atomic"

	"repro/internal/btree"
	"repro/internal/storage"
)

// Stats counts maintenance and probe activity on a partial index. The
// paper's premise is that partial-index adaptation "is not for free"
// (§I); these counters are what the benchmarks charge for it.
type Stats struct {
	Adds    uint64 // entries added
	Removes uint64 // entries removed
	Updates uint64 // entries updated in place
	Probes  uint64 // lookups served
}

// Partial is a partial secondary index over one column of a table. The
// index contains exactly the (value, rid) pairs of live tuples whose
// value satisfies the coverage predicate.
//
// Concurrency: probes (Lookup, LookupRange, ScanRange, Contains, Covers,
// Ascend) may run concurrently with each other — the probe counter is
// atomic and the tree is not mutated by them. Mutations (Add, Remove,
// Update, Rebuild) require exclusive access; the engine provides it via
// the table lock.
type Partial struct {
	name   string
	column int
	cov    Coverage
	tree   *btree.Tree

	adds    atomic.Uint64
	removes atomic.Uint64
	updates atomic.Uint64
	probes  atomic.Uint64
}

// NewPartial creates an empty partial index named name over column
// ordinal column with the given coverage predicate.
func NewPartial(name string, column int, cov Coverage) *Partial {
	if cov == nil {
		cov = NoneCoverage{}
	}
	return &Partial{name: name, column: column, cov: cov, tree: btree.NewDefault()}
}

// Name returns the index name.
func (p *Partial) Name() string { return p.name }

// Column returns the indexed column's ordinal.
func (p *Partial) Column() int { return p.column }

// Coverage returns the current defining predicate.
func (p *Partial) Coverage() Coverage { return p.cov }

// Covers reports whether v is within the index's defining predicate —
// i.e. whether a query for v is a partial index hit.
func (p *Partial) Covers(v storage.Value) bool { return p.cov.Covers(v) }

// EntryCount returns the number of (value, rid) entries.
func (p *Partial) EntryCount() int { return p.tree.EntryCount() }

// Stats returns a snapshot of the maintenance counters.
func (p *Partial) Stats() Stats {
	return Stats{
		Adds:    p.adds.Load(),
		Removes: p.removes.Load(),
		Updates: p.updates.Load(),
		Probes:  p.probes.Load(),
	}
}

// Lookup returns the RIDs of tuples with the given value. Callers must
// only ask for covered values; probing for an uncovered value is a logic
// error in the access-path selection and panics.
func (p *Partial) Lookup(v storage.Value) []storage.RID {
	if !p.cov.Covers(v) {
		panic(fmt.Sprintf("index %s: lookup of uncovered value %v", p.name, v))
	}
	p.probes.Add(1)
	return p.tree.Lookup(v)
}

// CoversRange reports whether the whole interval [lo, hi] is inside the
// index's defining predicate — whether a range query over it is a
// partial index hit.
func (p *Partial) CoversRange(lo, hi storage.Value) bool {
	return CoversWholeRange(p.cov, lo, hi)
}

// LookupRange returns the RIDs of tuples with values in [lo, hi]. The
// whole range must be covered; probing an uncovered range panics, as in
// Lookup.
func (p *Partial) LookupRange(lo, hi storage.Value) []storage.RID {
	if !p.CoversRange(lo, hi) {
		panic(fmt.Sprintf("index %s: range lookup of uncovered range [%v, %v]", p.name, lo, hi))
	}
	p.probes.Add(1)
	var out []storage.RID
	p.tree.AscendRange(lo, hi, func(_ storage.Value, post []storage.RID) bool {
		out = append(out, post...)
		return true
	})
	return out
}

// ScanRange returns the postings of all index entries with values in
// [lo, hi], with no coverage requirement — the index simply reports what
// it contains. Range scans over partially covered intervals use this to
// recover covered matches sitting on pages the Index Buffer lets them
// skip.
func (p *Partial) ScanRange(lo, hi storage.Value) []storage.RID {
	p.probes.Add(1)
	var out []storage.RID
	p.tree.AscendRange(lo, hi, func(_ storage.Value, post []storage.RID) bool {
		out = append(out, post...)
		return true
	})
	return out
}

// Contains reports whether (v, rid) is present. Unlike Lookup it may be
// asked about uncovered values (it then reports false), because the
// Index Buffer's maintenance logic tests membership for arbitrary
// tuples.
func (p *Partial) Contains(v storage.Value, rid storage.RID) bool {
	if !p.cov.Covers(v) {
		return false
	}
	return p.tree.Contains(v, rid)
}

// Add inserts (v, rid) if v is covered; it reports whether an entry was
// added.
func (p *Partial) Add(v storage.Value, rid storage.RID) bool {
	if !p.cov.Covers(v) {
		return false
	}
	if p.tree.Insert(v, rid) {
		p.adds.Add(1)
		return true
	}
	return false
}

// Remove deletes (v, rid); it reports whether an entry was removed.
func (p *Partial) Remove(v storage.Value, rid storage.RID) bool {
	if p.tree.Delete(v, rid) {
		p.removes.Add(1)
		return true
	}
	return false
}

// Update adjusts the index for a tuple whose indexed value changed from
// old to new and whose RID changed from oldRID to newRID (they may be
// equal). It implements the IX column of the paper's Table I:
//
//	old covered, new covered  -> IX.Update
//	old covered, new not      -> IX.Remove(old)
//	old not, new covered      -> IX.Add(new)
//	old not, new not          -> nothing
func (p *Partial) Update(old, new storage.Value, oldRID, newRID storage.RID) {
	oldIn, newIn := p.cov.Covers(old), p.cov.Covers(new)
	switch {
	case oldIn && newIn:
		if old.Equal(new) && oldRID == newRID {
			return
		}
		p.tree.Delete(old, oldRID)
		p.tree.Insert(new, newRID)
		p.updates.Add(1)
	case oldIn && !newIn:
		if p.tree.Delete(old, oldRID) {
			p.removes.Add(1)
		}
	case !oldIn && newIn:
		if p.tree.Insert(new, newRID) {
			p.adds.Add(1)
		}
	}
}

// Ascend iterates the index contents in value order.
func (p *Partial) Ascend(fn func(v storage.Value, post []storage.RID) bool) {
	p.tree.Ascend(fn)
}

// TupleSource yields the tuples of a table page by page; the heap table
// satisfies it. It is the minimal surface Rebuild needs, kept as an
// interface so index does not depend on heap.
type TupleSource interface {
	Scan(fn func(storage.RID, storage.Tuple) error) error
}

// Rebuild redefines the index's coverage and repopulates it with a full
// scan of the table — the (expensive) adaptation step of the disk-based
// partial index that the Index Buffer papers over. It returns the number
// of entries in the rebuilt index.
func (p *Partial) Rebuild(cov Coverage, table TupleSource) (int, error) {
	if cov == nil {
		cov = NoneCoverage{}
	}
	var entries []btree.Entry
	err := table.Scan(func(rid storage.RID, tu storage.Tuple) error {
		v := tu.Value(p.column)
		if cov.Covers(v) {
			entries = append(entries, btree.Entry{Key: v, RID: rid})
		}
		return nil
	})
	if err != nil {
		return 0, fmt.Errorf("index %s: rebuild: %w", p.name, err)
	}
	fresh := btree.Bulk(btree.DefaultOrder, entries)
	p.adds.Add(uint64(fresh.EntryCount()))
	p.cov = cov
	p.tree = fresh
	return fresh.EntryCount(), nil
}
