package tuning

import (
	"math/rand"
	"testing"

	"repro/internal/storage"
)

func iv(v int64) storage.Value { return storage.Int64Value(v) }

func TestPromotionAtThreshold(t *testing.T) {
	tu := New(20, 6, 0)
	for i := 0; i < 5; i++ {
		if tu.OnQuery(iv(7)) {
			t.Fatalf("query %d hit before promotion", i)
		}
		if tu.Contains(iv(7)) {
			t.Fatalf("promoted after %d queries, threshold is 6", i+1)
		}
	}
	// 6th query triggers promotion but itself still pays the scan.
	if tu.OnQuery(iv(7)) {
		t.Error("promoting query should not count as a hit")
	}
	if !tu.Contains(iv(7)) {
		t.Error("value not promoted at threshold")
	}
	if !tu.OnQuery(iv(7)) {
		t.Error("query after promotion should hit")
	}
	s := tu.Stats()
	if s.Queries != 7 || s.Hits != 1 || s.Adds != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestWindowForgets(t *testing.T) {
	tu := New(4, 3, 0) // tiny window
	tu.OnQuery(iv(1))
	tu.OnQuery(iv(1))
	// Push the two observations out of the window.
	tu.OnQuery(iv(2))
	tu.OnQuery(iv(3))
	tu.OnQuery(iv(4))
	tu.OnQuery(iv(5))
	// A third query for 1 now sees only itself in the window.
	tu.OnQuery(iv(1))
	if tu.Contains(iv(1)) {
		t.Error("stale window observations counted toward the threshold")
	}
}

func TestLRUEviction(t *testing.T) {
	tu := New(10, 2, 2) // capacity 2
	promote := func(v int64) {
		tu.OnQuery(iv(v))
		tu.OnQuery(iv(v))
		if !tu.Contains(iv(v)) {
			t.Fatalf("value %d not promoted", v)
		}
	}
	promote(1)
	promote(2)
	// Touch 1 so 2 becomes LRU.
	tu.OnQuery(iv(1))
	promote(3)
	if tu.Contains(iv(2)) {
		t.Error("LRU value 2 not evicted")
	}
	if !tu.Contains(iv(1)) || !tu.Contains(iv(3)) {
		t.Error("wrong value evicted")
	}
	if tu.Len() != 2 {
		t.Errorf("len = %d", tu.Len())
	}
	if tu.Stats().Removes != 1 {
		t.Errorf("removes = %d", tu.Stats().Removes)
	}
}

func TestIndexedRange(t *testing.T) {
	tu := New(10, 1, 0) // threshold 1: promote immediately
	if _, _, ok := tu.IndexedRange(); ok {
		t.Error("empty tuner should report no range")
	}
	for _, v := range []int64{5, 12, 3, 9} {
		tu.OnQuery(iv(v))
	}
	lo, hi, ok := tu.IndexedRange()
	if !ok || lo.Int64() != 3 || hi.Int64() != 12 {
		t.Errorf("range = %v..%v ok=%v", lo, hi, ok)
	}
	if got := len(tu.Indexed()); got != 4 {
		t.Errorf("indexed = %d values", got)
	}
}

func TestCoverageView(t *testing.T) {
	tu := New(10, 1, 0)
	cov := tu.Coverage()
	if cov.Covers(iv(5)) {
		t.Error("fresh coverage covers nothing")
	}
	tu.OnQuery(iv(5))
	if !cov.Covers(iv(5)) {
		t.Error("coverage view is not live")
	}
	if cov.String() != "TUNED" {
		t.Errorf("String() = %q", cov.String())
	}
}

func TestDefaults(t *testing.T) {
	tu := New(0, 0, 0)
	if len(tu.window) != DefaultWindow || tu.threshold != DefaultThreshold {
		t.Errorf("defaults not applied: window=%d threshold=%d", len(tu.window), tu.threshold)
	}
}

// TestControlLoopDelayShape reproduces the core finding of the paper's
// Figure 1 at unit-test scale: after a workload shift, the hit rate
// collapses and takes many queries to recover.
//
// Window/threshold are calibrated to 100/6: with the paper's literal
// 20/6 a uniform 14-value workload essentially never promotes (P[6+
// occurrences of one value in 20 draws] ≈ 0.2%), while 100/6 yields the
// ~200-query adaptation delay the paper reports. See EXPERIMENTS.md.
func TestControlLoopDelayShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tu := New(100, 6, 15)

	hitRate := func(from, to int64, n int) float64 {
		hits := 0
		for i := 0; i < n; i++ {
			if tu.OnQuery(iv(from + rng.Int63n(to-from+1))) {
				hits++
			}
		}
		return float64(hits) / float64(n)
	}

	warm := hitRate(1, 14, 200) // phase 1: values < 15
	if warm < 0.5 {
		t.Errorf("steady-state hit rate = %.2f, want > 0.5", warm)
	}
	early := hitRate(16, 30, 40) // right after the shift
	if early > 0.3 {
		t.Errorf("post-shift hit rate = %.2f, want collapse below 0.3", early)
	}
	late := hitRate(16, 30, 300) // after adaptation
	if late < 0.5 {
		t.Errorf("recovered hit rate = %.2f, want > 0.5", late)
	}
	if late <= early {
		t.Error("hit rate did not recover after adaptation")
	}
}
