// Package tuning implements the baseline the Index Buffer is measured
// against: a value-granular online tuning facility for partial indexes,
// exactly as simulated in the paper's Figure 1. The tuner watches a
// sliding window of recent queries, promotes a value into the partial
// index once it has been queried often enough within the window (enough
// "potential query cost reduction during the last twenty queries"), and
// evicts values least-recently-used when the index outgrows its capacity.
//
// Its defining weakness — the reason the Index Buffer exists — is the
// control loop delay: after a workload shift, a value needs Threshold
// observations inside the window before it is indexed, so the hit rate
// collapses for an adaptation period roughly Window · Domain / Threshold
// queries long.
package tuning

import (
	"container/list"

	"repro/internal/storage"
)

// Defaults matching the paper's Figure 1 simulation.
const (
	DefaultWindow    = 20 // monitoring window: last twenty queries
	DefaultThreshold = 6  // queried at least six times in the window
)

// Stats counts tuner activity; adds and removes are the adaptation cost
// the paper charges against online tuning (§I: "Index adaptation is not
// for free").
type Stats struct {
	Queries uint64 // queries observed
	Hits    uint64 // queries answered by the partial index
	Adds    uint64 // values promoted into the index
	Removes uint64 // values evicted (LRU)
}

// Tuner is the adaptive partial-index tuning facility. Not safe for
// concurrent use.
type Tuner struct {
	window    []storage.Value // ring buffer of the last Window queries
	next      int             // ring position of the next write
	filled    int             // observations in the ring (≤ len(window))
	threshold int
	capacity  int // max indexed values; <= 0 means unlimited

	indexed map[storage.Value]*list.Element
	lru     *list.List // front = most recently used

	stats Stats
}

// New creates a tuner with the given monitoring window size, promotion
// threshold and index capacity (values). Non-positive window/threshold
// fall back to the paper's defaults.
func New(window, threshold, capacity int) *Tuner {
	if window <= 0 {
		window = DefaultWindow
	}
	if threshold <= 0 {
		threshold = DefaultThreshold
	}
	return &Tuner{
		window:    make([]storage.Value, window),
		threshold: threshold,
		capacity:  capacity,
		indexed:   make(map[storage.Value]*list.Element),
		lru:       list.New(),
	}
}

// Contains reports whether v is currently in the (simulated) partial
// index.
func (t *Tuner) Contains(v storage.Value) bool {
	_, ok := t.indexed[v]
	return ok
}

// Len returns the number of indexed values.
func (t *Tuner) Len() int { return len(t.indexed) }

// Stats returns a snapshot of the counters.
func (t *Tuner) Stats() Stats { return t.stats }

// OnQuery observes one query for value v, adapts the index, and reports
// whether the query hit the partial index (before any promotion this
// query may have triggered — a just-promoted value still paid the scan).
func (t *Tuner) OnQuery(v storage.Value) (hit bool) {
	t.stats.Queries++

	// Record in the monitoring window.
	t.window[t.next] = v
	t.next = (t.next + 1) % len(t.window)
	if t.filled < len(t.window) {
		t.filled++
	}

	if el, ok := t.indexed[v]; ok {
		t.lru.MoveToFront(el)
		t.stats.Hits++
		return true
	}

	// Promotion check: occurrences of v in the window (incl. this query).
	count := 0
	for i := 0; i < t.filled; i++ {
		if t.window[i].Equal(v) {
			count++
		}
	}
	if count >= t.threshold {
		t.promote(v)
	}
	return false
}

// promote adds v to the index, evicting LRU values over capacity.
func (t *Tuner) promote(v storage.Value) {
	t.indexed[v] = t.lru.PushFront(v)
	t.stats.Adds++
	for t.capacity > 0 && len(t.indexed) > t.capacity {
		back := t.lru.Back()
		evicted := back.Value.(storage.Value)
		t.lru.Remove(back)
		delete(t.indexed, evicted)
		t.stats.Removes++
	}
}

// Indexed returns the indexed values in most-recently-used order.
func (t *Tuner) Indexed() []storage.Value {
	out := make([]storage.Value, 0, t.lru.Len())
	for el := t.lru.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(storage.Value))
	}
	return out
}

// IndexedRange returns the smallest and largest indexed values — the
// "indexed value range" band of the paper's Figure 1. ok is false when
// the index is empty.
func (t *Tuner) IndexedRange() (lo, hi storage.Value, ok bool) {
	for el := t.lru.Front(); el != nil; el = el.Next() {
		v := el.Value.(storage.Value)
		if !ok {
			lo, hi, ok = v, v, true
			continue
		}
		if v.Compare(lo) < 0 {
			lo = v
		}
		if v.Compare(hi) > 0 {
			hi = v
		}
	}
	return lo, hi, ok
}

// Coverage adapts the tuner's current value set to the index.Coverage
// shape used by the engine's partial indexes (a live view: it reflects
// future adaptation).
type Coverage struct{ t *Tuner }

// Coverage returns a live coverage view over the tuner's indexed set.
func (t *Tuner) Coverage() Coverage { return Coverage{t: t} }

// Covers implements the index.Coverage predicate.
func (c Coverage) Covers(v storage.Value) bool { return c.t.Contains(v) }

// String implements the index.Coverage interface.
func (c Coverage) String() string { return "TUNED" }
