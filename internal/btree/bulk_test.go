package btree

import (
	"math/rand"
	"testing"

	"repro/internal/storage"
)

func TestBulkEmpty(t *testing.T) {
	t.Parallel()
	tr := Bulk(8, nil)
	if tr.Len() != 0 || tr.EntryCount() != 0 {
		t.Error("empty bulk not empty")
	}
	if tr.Lookup(iv(1)) != nil {
		t.Error("lookup on empty bulk")
	}
	// Still fully usable for inserts.
	tr.Insert(iv(1), rid(0, 0))
	if tr.Len() != 1 {
		t.Error("insert after empty bulk failed")
	}
}

func TestBulkSmall(t *testing.T) {
	t.Parallel()
	entries := []Entry{
		{iv(3), rid(3, 0)},
		{iv(1), rid(1, 0)},
		{iv(2), rid(2, 0)},
		{iv(1), rid(1, 1)}, // duplicate key
		{iv(2), rid(2, 0)}, // exact duplicate pair: collapsed
	}
	tr := Bulk(4, entries)
	if tr.Len() != 3 {
		t.Fatalf("Len = %d, want 3", tr.Len())
	}
	if tr.EntryCount() != 4 {
		t.Fatalf("EntryCount = %d, want 4", tr.EntryCount())
	}
	if post := tr.Lookup(iv(1)); len(post) != 2 {
		t.Errorf("posting for 1 = %v", post)
	}
	prev := int64(-1)
	tr.Ascend(func(k storage.Value, _ []storage.RID) bool {
		if k.Int64() <= prev {
			t.Fatalf("out of order: %d after %d", k.Int64(), prev)
		}
		prev = k.Int64()
		return true
	})
}

func TestBulkMatchesIncremental(t *testing.T) {
	t.Parallel()
	for _, n := range []int{1, 3, 63, 64, 65, 1000, 5000} {
		rng := rand.New(rand.NewSource(int64(n)))
		var entries []Entry
		inc := New(8)
		for i := 0; i < n; i++ {
			k := iv(rng.Int63n(int64(n)))
			r := rid(i, 0)
			entries = append(entries, Entry{k, r})
			inc.Insert(k, r)
		}
		bulk := Bulk(8, entries)
		if bulk.Len() != inc.Len() || bulk.EntryCount() != inc.EntryCount() {
			t.Fatalf("n=%d: bulk Len/Entries %d/%d vs incremental %d/%d",
				n, bulk.Len(), bulk.EntryCount(), inc.Len(), inc.EntryCount())
		}
		// Identical contents via parallel iteration.
		type pair struct {
			k    int64
			post int
		}
		collect := func(tr *Tree) []pair {
			var out []pair
			tr.Ascend(func(k storage.Value, post []storage.RID) bool {
				out = append(out, pair{k.Int64(), len(post)})
				return true
			})
			return out
		}
		a, b := collect(bulk), collect(inc)
		if len(a) != len(b) {
			t.Fatalf("n=%d: %d vs %d keys", n, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("n=%d: key %d differs: %+v vs %+v", n, i, a[i], b[i])
			}
		}
	}
}

// TestBulkThenMutate verifies the bulk-built structure behaves correctly
// under subsequent inserts and deletes (structural invariants hold).
func TestBulkThenMutate(t *testing.T) {
	t.Parallel()
	var entries []Entry
	for i := 0; i < 2000; i++ {
		entries = append(entries, Entry{iv(int64(i * 2)), rid(i, 0)})
	}
	tr := Bulk(6, entries)
	checkInvariants(t, tr)
	rng := rand.New(rand.NewSource(7))
	for step := 0; step < 3000; step++ {
		k := iv(rng.Int63n(4000))
		r := rid(rng.Intn(2000), rng.Intn(4))
		if rng.Intn(2) == 0 {
			tr.Insert(k, r)
		} else {
			tr.Delete(k, r)
		}
	}
	checkInvariants(t, tr)
}

func BenchmarkBulkVsIncremental(b *testing.B) {
	const n = 100000
	rng := rand.New(rand.NewSource(1))
	entries := make([]Entry, n)
	for i := range entries {
		entries[i] = Entry{iv(rng.Int63n(n)), rid(i, 0)}
	}
	b.Run("bulk", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			Bulk(DefaultOrder, append([]Entry(nil), entries...))
		}
	})
	b.Run("incremental", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tr := NewDefault()
			for _, e := range entries {
				tr.Insert(e.Key, e.RID)
			}
		}
	})
}
