package btree

import (
	"fmt"
	"sort"

	"repro/internal/storage"
)

// PTree is an immutable (persistent) B+-tree from storage.Value keys to
// RID posting lists — the lock-free-read counterpart of Tree. Mutating
// operations return a new tree sharing all unchanged nodes with the
// receiver (path copying), so a reader holding an old root keeps a
// fully consistent view while a serialized writer publishes new roots
// with one atomic pointer store. The partial secondary index uses it so
// the epoch-based read path can probe without locks.
//
// Differences from Tree, both invisible to callers:
//
//   - There is no leaf chain (a chained leaf cannot be path-copied
//     without copying every leaf to its left); iteration descends from
//     the root instead.
//   - Delete prunes emptied leaves but never rebalances. Rebalancing
//     under path copying buys nothing — nodes are not reused in place —
//     and a sparse tree still descends in O(height). The worst case is
//     a tree built tall by inserts and thinned by deletes, which
//     matches the partial index's DML mix fine; Rebuild re-packs.
//
// The zero PTree is an empty tree of DefaultOrder.
type PTree struct {
	order    int
	root     pnode // nil means empty
	distinct int
	entries  int
}

type pnode interface {
	isPNode()
}

// pleaf mirrors leaf without the next pointer. keys[i] corresponds to
// posts[i]; postings are sorted by RID and non-empty. Nodes reachable
// from a published root are immutable.
type pleaf struct {
	keys  []storage.Value
	posts [][]storage.RID
}

// pinner mirrors inner: children[i] covers keys < keys[i], and keys[i]
// equals the smallest key reachable under children[i+1].
type pinner struct {
	keys     []storage.Value
	children []pnode
}

func (*pleaf) isPNode()  {}
func (*pinner) isPNode() {}

// NewPTree creates an empty persistent tree. Order must be at least 4,
// as for New.
func NewPTree(order int) *PTree {
	if order < 4 {
		panic(fmt.Sprintf("btree: order %d, want >= 4", order))
	}
	return &PTree{order: order}
}

// NewPTreeDefault creates an empty persistent tree with DefaultOrder.
func NewPTreeDefault() *PTree { return NewPTree(DefaultOrder) }

func (t *PTree) ord() int {
	if t.order == 0 {
		return DefaultOrder
	}
	return t.order
}

// Len returns the number of distinct keys.
func (t *PTree) Len() int { return t.distinct }

// EntryCount returns the number of (key, rid) entries.
func (t *PTree) EntryCount() int { return t.entries }

// Lookup returns the posting list for key, or nil. The returned slice
// is shared with the tree; callers must not mutate it.
func (t *PTree) Lookup(key storage.Value) []storage.RID {
	n := t.root
	for n != nil {
		switch nd := n.(type) {
		case *pleaf:
			if i, found := leafSlot(nd.keys, key); found {
				return nd.posts[i]
			}
			return nil
		case *pinner:
			n = nd.children[searchKeys(nd.keys, key)]
		}
	}
	return nil
}

// Contains reports whether (key, rid) is in the tree.
func (t *PTree) Contains(key storage.Value, rid storage.RID) bool {
	for _, r := range t.Lookup(key) {
		if r == rid {
			return true
		}
	}
	return false
}

// Insert returns a tree containing (key, rid) plus everything in t.
// Inserting a present pair returns the receiver unchanged with added
// false. The receiver is never modified.
func (t *PTree) Insert(key storage.Value, rid storage.RID) (*PTree, bool) {
	if !key.IsValid() {
		panic("btree: insert of invalid key")
	}
	if t.root == nil {
		nt := &PTree{order: t.ord(), distinct: 1, entries: 1}
		nt.root = &pleaf{keys: []storage.Value{key}, posts: [][]storage.RID{{rid}}}
		return nt, true
	}
	root, sepKey, sibling, added, newKey := t.pinsert(t.root, key, rid)
	if !added {
		return t, false
	}
	if sibling != nil {
		root = &pinner{keys: []storage.Value{sepKey}, children: []pnode{root, sibling}}
	}
	nt := &PTree{order: t.ord(), root: root, distinct: t.distinct, entries: t.entries + 1}
	if newKey {
		nt.distinct++
	}
	return nt, true
}

// pinsert returns a copied path with (key, rid) inserted. When the
// copied node splits, sepKey/sibling carry the new right sibling up.
func (t *PTree) pinsert(n pnode, key storage.Value, rid storage.RID) (repl pnode, sepKey storage.Value, sibling pnode, added, newKey bool) {
	switch nd := n.(type) {
	case *pleaf:
		i, found := leafSlot(nd.keys, key)
		if found {
			post := nd.posts[i]
			j := sort.Search(len(post), func(j int) bool { return !post[j].Less(rid) })
			if j < len(post) && post[j] == rid {
				return n, storage.Value{}, nil, false, false
			}
			np := make([]storage.RID, 0, len(post)+1)
			np = append(np, post[:j]...)
			np = append(np, rid)
			np = append(np, post[j:]...)
			cp := &pleaf{keys: nd.keys, posts: copyPosts(nd.posts)}
			cp.posts[i] = np
			return cp, storage.Value{}, nil, true, false
		}
		cp := &pleaf{
			keys:  insertValue(nd.keys, i, key),
			posts: insertPost(nd.posts, i, []storage.RID{rid}),
		}
		if len(cp.keys) > t.ord() {
			mid := len(cp.keys) / 2
			right := &pleaf{keys: cp.keys[mid:], posts: cp.posts[mid:]}
			left := &pleaf{keys: cp.keys[:mid:mid], posts: cp.posts[:mid:mid]}
			return left, right.keys[0], right, true, true
		}
		return cp, storage.Value{}, nil, true, true

	case *pinner:
		ci := searchKeys(nd.keys, key)
		child, sk, sib, ok, nk := t.pinsert(nd.children[ci], key, rid)
		if !ok {
			return n, storage.Value{}, nil, false, false
		}
		cp := &pinner{
			keys:     append([]storage.Value(nil), nd.keys...),
			children: append([]pnode(nil), nd.children...),
		}
		cp.children[ci] = child
		if sib != nil {
			cp.keys = insertValue(cp.keys, ci, sk)
			cp.children = insertNode(cp.children, ci+1, sib)
			if len(cp.children) > t.ord() {
				mid := len(cp.keys) / 2
				sep := cp.keys[mid]
				right := &pinner{
					keys:     append([]storage.Value(nil), cp.keys[mid+1:]...),
					children: append([]pnode(nil), cp.children[mid+1:]...),
				}
				cp.keys = cp.keys[:mid:mid]
				cp.children = cp.children[: mid+1 : mid+1]
				return cp, sep, right, true, nk
			}
		}
		return cp, storage.Value{}, nil, true, nk
	default:
		panic("btree: unknown node type")
	}
}

// Delete returns a tree without (key, rid). When the pair was absent it
// returns the receiver unchanged with removed false.
func (t *PTree) Delete(key storage.Value, rid storage.RID) (*PTree, bool) {
	if t.root == nil {
		return t, false
	}
	root, removed, emptiedKey := t.pdelete(t.root, key, rid)
	if !removed {
		return t, false
	}
	// Collapse a root inner node with a single child; an emptied root
	// becomes the nil (empty) root.
	for {
		if in, ok := root.(*pinner); ok && len(in.children) == 1 {
			root = in.children[0]
			continue
		}
		break
	}
	if emptyPNode(root) {
		root = nil
	}
	nt := &PTree{order: t.ord(), root: root, distinct: t.distinct, entries: t.entries - 1}
	if emptiedKey {
		nt.distinct--
	}
	return nt, true
}

// pdelete returns a copied path with (key, rid) removed. A leaf that
// empties is pruned by its parent; separator bookkeeping preserves the
// "keys[i] = min under children[i+1]" invariant.
func (t *PTree) pdelete(n pnode, key storage.Value, rid storage.RID) (repl pnode, removed, emptiedKey bool) {
	switch nd := n.(type) {
	case *pleaf:
		i, found := leafSlot(nd.keys, key)
		if !found {
			return n, false, false
		}
		post := nd.posts[i]
		j := sort.Search(len(post), func(j int) bool { return !post[j].Less(rid) })
		if j >= len(post) || post[j] != rid {
			return n, false, false
		}
		if len(post) > 1 {
			np := make([]storage.RID, 0, len(post)-1)
			np = append(np, post[:j]...)
			np = append(np, post[j+1:]...)
			cp := &pleaf{keys: nd.keys, posts: copyPosts(nd.posts)}
			cp.posts[i] = np
			return cp, true, false
		}
		cp := &pleaf{
			keys:  removeValue(nd.keys, i),
			posts: removePost(nd.posts, i),
		}
		return cp, true, true

	case *pinner:
		ci := searchKeys(nd.keys, key)
		child, ok, ek := t.pdelete(nd.children[ci], key, rid)
		if !ok {
			return n, false, false
		}
		if emptyPNode(child) {
			// Prune the emptied child; the prune cascades when this was
			// the last child. Dropping children[ci] drops keys[ci-1]
			// (its separator), or keys[0] for the first child.
			if len(nd.children) == 1 {
				return &pinner{}, true, ek
			}
			cp := &pinner{
				keys:     append([]storage.Value(nil), nd.keys...),
				children: append([]pnode(nil), nd.children...),
			}
			ki := ci - 1
			if ci == 0 {
				ki = 0
			}
			cp.keys = removeValue(cp.keys, ki)
			cp.children = removeNode(cp.children, ci)
			return cp, true, ek
		}
		cp := &pinner{
			keys:     nd.keys,
			children: append([]pnode(nil), nd.children...),
		}
		cp.children[ci] = child
		return cp, true, ek
	default:
		panic("btree: unknown node type")
	}
}

// emptyPNode reports whether n holds nothing: an emptied leaf or an
// inner whose children were all pruned away.
func emptyPNode(n pnode) bool {
	switch nd := n.(type) {
	case *pleaf:
		return len(nd.keys) == 0
	case *pinner:
		return len(nd.children) == 0
	}
	return n == nil
}

// Ascend calls fn for every (key, posting) in key order until fn
// returns false.
func (t *PTree) Ascend(fn func(key storage.Value, post []storage.RID) bool) {
	t.AscendRange(storage.Value{}, storage.Value{}, fn)
}

// AscendRange calls fn for every key in [lo, hi] in order until fn
// returns false. An invalid lo means "from the minimum"; an invalid hi
// means "to the maximum".
func (t *PTree) AscendRange(lo, hi storage.Value, fn func(key storage.Value, post []storage.RID) bool) {
	if t.root != nil {
		ascendRange(t.root, lo, hi, fn)
	}
}

// ascendRange walks the subtree in order; it returns false once fn
// stopped the iteration or a key passed hi, which unwinds the whole
// walk.
func ascendRange(n pnode, lo, hi storage.Value, fn func(key storage.Value, post []storage.RID) bool) bool {
	switch nd := n.(type) {
	case *pleaf:
		start := 0
		if lo.IsValid() {
			start, _ = leafSlot(nd.keys, lo)
		}
		for i := start; i < len(nd.keys); i++ {
			if hi.IsValid() && nd.keys[i].Compare(hi) > 0 {
				return false
			}
			if !fn(nd.keys[i], nd.posts[i]) {
				return false
			}
		}
		return true
	case *pinner:
		start := 0
		if lo.IsValid() {
			start = searchKeys(nd.keys, lo)
		}
		for i := start; i < len(nd.children); i++ {
			if !ascendRange(nd.children[i], lo, hi, fn) {
				return false
			}
		}
		return true
	default:
		panic("btree: unknown node type")
	}
}

// Min returns the smallest key, or an invalid Value when empty.
func (t *PTree) Min() storage.Value {
	n := t.root
	for n != nil {
		switch nd := n.(type) {
		case *pleaf:
			if len(nd.keys) > 0 {
				return nd.keys[0]
			}
			return storage.Value{}
		case *pinner:
			n = nd.children[0]
		}
	}
	return storage.Value{}
}

// Max returns the largest key, or an invalid Value when empty.
func (t *PTree) Max() storage.Value {
	n := t.root
	for n != nil {
		switch nd := n.(type) {
		case *pleaf:
			if len(nd.keys) > 0 {
				return nd.keys[len(nd.keys)-1]
			}
			return storage.Value{}
		case *pinner:
			n = nd.children[len(nd.children)-1]
		}
	}
	return storage.Value{}
}

// Height returns the number of levels (1 for a lone leaf, 0 when
// empty). Exposed for tests.
func (t *PTree) Height() int {
	h := 0
	n := t.root
	for n != nil {
		h++
		in, ok := n.(*pinner)
		if !ok {
			return h
		}
		n = in.children[0]
	}
	return h
}

// PBulk builds a persistent tree from entries bottom-up — the same
// cheap-construction convention as Bulk, used by index creation and
// Rebuild where per-insert path copying would allocate O(n log n)
// nodes.
func PBulk(order int, entries []Entry) *PTree {
	t := NewPTree(order)
	if len(entries) == 0 {
		return t
	}
	sort.Slice(entries, func(i, j int) bool {
		if c := entries[i].Key.Compare(entries[j].Key); c != 0 {
			return c < 0
		}
		return entries[i].RID.Less(entries[j].RID)
	})

	type kp struct {
		key  storage.Value
		post []storage.RID
	}
	var pairs []kp
	for _, e := range entries {
		if n := len(pairs); n > 0 && pairs[n-1].key.Equal(e.Key) {
			post := pairs[n-1].post
			if post[len(post)-1] == e.RID {
				continue // exact duplicate pair
			}
			pairs[n-1].post = append(post, e.RID)
			continue
		}
		pairs = append(pairs, kp{key: e.Key, post: []storage.RID{e.RID}})
	}
	t.distinct = len(pairs)
	for _, p := range pairs {
		t.entries += len(p.post)
	}

	// Leaf level: no chain and no rebalancing invariant to maintain, so
	// simple chunking suffices.
	var level []pnode
	var mins []storage.Value
	for start := 0; start < len(pairs); start += order {
		end := start + order
		if end > len(pairs) {
			end = len(pairs)
		}
		lf := &pleaf{}
		for _, p := range pairs[start:end] {
			lf.keys = append(lf.keys, p.key)
			lf.posts = append(lf.posts, p.post)
		}
		level = append(level, lf)
		mins = append(mins, lf.keys[0])
	}

	// Inner levels bottom-up; separators are the minimum keys of
	// children 1..n-1.
	for len(level) > 1 {
		var nextLevel []pnode
		var nextMins []storage.Value
		for start := 0; start < len(level); start += order {
			end := start + order
			if end > len(level) {
				end = len(level)
			}
			in := &pinner{}
			for i := start; i < end; i++ {
				in.children = append(in.children, level[i])
				if i > start {
					in.keys = append(in.keys, mins[i])
				}
			}
			nextLevel = append(nextLevel, in)
			nextMins = append(nextMins, mins[start])
		}
		level = nextLevel
		mins = nextMins
	}
	t.root = level[0]
	return t
}

// Slice-copy helpers. Inserts and removals always produce fresh backing
// arrays so published nodes stay immutable.

func copyPosts(posts [][]storage.RID) [][]storage.RID {
	return append([][]storage.RID(nil), posts...)
}

func insertValue(s []storage.Value, i int, v storage.Value) []storage.Value {
	out := make([]storage.Value, 0, len(s)+1)
	out = append(out, s[:i]...)
	out = append(out, v)
	out = append(out, s[i:]...)
	return out
}

func insertPost(s [][]storage.RID, i int, p []storage.RID) [][]storage.RID {
	out := make([][]storage.RID, 0, len(s)+1)
	out = append(out, s[:i]...)
	out = append(out, p)
	out = append(out, s[i:]...)
	return out
}

func insertNode(s []pnode, i int, n pnode) []pnode {
	out := make([]pnode, 0, len(s)+1)
	out = append(out, s[:i]...)
	out = append(out, n)
	out = append(out, s[i:]...)
	return out
}

func removeValue(s []storage.Value, i int) []storage.Value {
	out := make([]storage.Value, 0, len(s)-1)
	out = append(out, s[:i]...)
	out = append(out, s[i+1:]...)
	return out
}

func removePost(s [][]storage.RID, i int) [][]storage.RID {
	out := make([][]storage.RID, 0, len(s)-1)
	out = append(out, s[:i]...)
	out = append(out, s[i+1:]...)
	return out
}

func removeNode(s []pnode, i int) []pnode {
	out := make([]pnode, 0, len(s)-1)
	out = append(out, s[:i]...)
	out = append(out, s[i+1:]...)
	return out
}
