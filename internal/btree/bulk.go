package btree

import (
	"sort"

	"repro/internal/storage"
)

// Entry is one (key, rid) pair for bulk loading.
type Entry struct {
	Key storage.Value
	RID storage.RID
}

// Bulk builds a tree from entries in O(n log n) for the sort plus O(n)
// construction — far cheaper than n individual inserts with their splits.
// Duplicate keys merge into posting lists; exact duplicate pairs
// collapse. Index creation and rebuild use it (the paper charges these
// as the expensive disk-side adaptation; cheap construction keeps the
// reproduction's emphasis on the scan costs).
func Bulk(order int, entries []Entry) *Tree {
	t := New(order)
	if len(entries) == 0 {
		return t
	}
	sort.Slice(entries, func(i, j int) bool {
		if c := entries[i].Key.Compare(entries[j].Key); c != 0 {
			return c < 0
		}
		return entries[i].RID.Less(entries[j].RID)
	})

	// Group into (key, posting) pairs.
	type kp struct {
		key  storage.Value
		post []storage.RID
	}
	var pairs []kp
	for _, e := range entries {
		if n := len(pairs); n > 0 && pairs[n-1].key.Equal(e.Key) {
			post := pairs[n-1].post
			if post[len(post)-1] == e.RID {
				continue // exact duplicate pair
			}
			pairs[n-1].post = append(post, e.RID)
			continue
		}
		pairs = append(pairs, kp{key: e.Key, post: []storage.RID{e.RID}})
	}
	t.distinct = len(pairs)
	for _, p := range pairs {
		t.entries += len(p.post)
	}

	// Build the leaf level, filling each leaf to `order` keys and
	// rebalancing the final pair so no leaf underflows.
	perLeaf := order
	numLeaves := (len(pairs) + perLeaf - 1) / perLeaf
	leaves := make([]*leaf, 0, numLeaves)
	for start := 0; start < len(pairs); start += perLeaf {
		end := start + perLeaf
		if end > len(pairs) {
			end = len(pairs)
		}
		lf := &leaf{}
		for _, p := range pairs[start:end] {
			lf.keys = append(lf.keys, p.key)
			lf.posts = append(lf.posts, p.post)
		}
		leaves = append(leaves, lf)
	}
	if n := len(leaves); n >= 2 {
		last := leaves[n-1]
		if len(last.keys) < t.minLeafKeys() {
			// Shift keys from the second-to-last leaf to fix underflow.
			prev := leaves[n-2]
			need := t.minLeafKeys() - len(last.keys)
			cut := len(prev.keys) - need
			last.keys = append(append([]storage.Value{}, prev.keys[cut:]...), last.keys...)
			last.posts = append(append([][]storage.RID{}, prev.posts[cut:]...), last.posts...)
			prev.keys = prev.keys[:cut:cut]
			prev.posts = prev.posts[:cut:cut]
		}
	}
	for i := 0; i+1 < len(leaves); i++ {
		leaves[i].next = leaves[i+1]
	}
	t.first = leaves[0]

	// Build inner levels bottom-up. Each inner node takes up to `order`
	// children; separators are the minimum keys of children 1..n-1.
	level := make([]node, len(leaves))
	mins := make([]storage.Value, len(leaves))
	for i, lf := range leaves {
		level[i] = lf
		mins[i] = lf.keys[0]
	}
	for len(level) > 1 {
		var nextLevel []node
		var nextMins []storage.Value
		for start := 0; start < len(level); start += order {
			end := start + order
			if end > len(level) {
				end = len(level)
			}
			// Avoid a single-child final inner node: steal one from the
			// previous group.
			if end-start == 1 && len(nextLevel) > 0 {
				prev := nextLevel[len(nextLevel)-1].(*inner)
				stolen := prev.children[len(prev.children)-1]
				stolenMin := prev.keys[len(prev.keys)-1]
				prev.children = prev.children[:len(prev.children)-1]
				prev.keys = prev.keys[:len(prev.keys)-1]
				in := &inner{
					keys:     []storage.Value{mins[start]},
					children: []node{stolen, level[start]},
				}
				nextLevel[len(nextLevel)-1] = prev
				nextLevel = append(nextLevel, in)
				nextMins = append(nextMins, stolenMin)
				continue
			}
			in := &inner{}
			for i := start; i < end; i++ {
				in.children = append(in.children, level[i])
				if i > start {
					in.keys = append(in.keys, mins[i])
				}
			}
			nextLevel = append(nextLevel, in)
			nextMins = append(nextMins, mins[start])
		}
		level = nextLevel
		mins = nextMins
	}
	t.root = level[0]
	return t
}
