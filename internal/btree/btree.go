// Package btree implements an in-memory B+-tree mapping column values to
// posting lists of record identifiers. It is the index structure behind
// both the partial secondary indexes and (by default) the Index Buffer —
// the paper builds on "a normal B*-Tree" and notes the concrete structure
// is interchangeable (§III); see internal/csbtree and internal/hashindex
// for the alternatives it names.
//
// The tree supports duplicate keys via per-key posting lists kept in RID
// order, ordered iteration, and full delete rebalancing (borrow/merge).
package btree

import (
	"fmt"
	"sort"

	"repro/internal/storage"
)

// DefaultOrder is the default maximum number of children per inner node
// (and keys per leaf).
const DefaultOrder = 64

// Tree is a B+-tree from storage.Value keys to RID posting lists.
// The zero Tree is not usable; construct with New.
//
// Tree is not safe for concurrent use; callers serialize access (the
// engine holds its own locks).
type Tree struct {
	order    int
	root     node
	first    *leaf // leftmost leaf, head of the leaf chain
	distinct int   // number of keys with non-empty postings
	entries  int   // number of (key, rid) pairs
}

type node interface {
	isNode()
}

// leaf holds keys and their posting lists. keys[i] corresponds to
// posts[i]; postings are sorted by RID and non-empty.
type leaf struct {
	keys  []storage.Value
	posts [][]storage.RID
	next  *leaf
}

// inner holds separator keys and children. children[i] covers keys <
// keys[i]; children[len(keys)] covers the rest. Each keys[i] equals the
// smallest key reachable under children[i+1].
type inner struct {
	keys     []storage.Value
	children []node
}

func (*leaf) isNode()  {}
func (*inner) isNode() {}

// New creates an empty tree. Order must be at least 4 to keep splits and
// merges well-formed; New panics otherwise (a static misconfiguration).
func New(order int) *Tree {
	if order < 4 {
		panic(fmt.Sprintf("btree: order %d, want >= 4", order))
	}
	lf := &leaf{}
	return &Tree{order: order, root: lf, first: lf}
}

// NewDefault creates an empty tree with DefaultOrder.
func NewDefault() *Tree { return New(DefaultOrder) }

// Len returns the number of distinct keys.
func (t *Tree) Len() int { return t.distinct }

// EntryCount returns the number of (key, rid) entries — the unit the
// Index Buffer Space budget is expressed in.
func (t *Tree) EntryCount() int { return t.entries }

// minLeafKeys is the underflow bound for leaves.
func (t *Tree) minLeafKeys() int { return t.order / 2 }

// minInnerChildren is the underflow bound for inner nodes.
func (t *Tree) minInnerChildren() int { return (t.order + 1) / 2 }

// searchKeys returns the number of keys in ks strictly less than k — the
// child index to descend into for inner nodes.
func searchKeys(ks []storage.Value, k storage.Value) int {
	return sort.Search(len(ks), func(i int) bool { return ks[i].Compare(k) > 0 })
}

// leafSlot returns the position of k in the leaf and whether it is
// present.
func leafSlot(ks []storage.Value, k storage.Value) (int, bool) {
	i := sort.Search(len(ks), func(i int) bool { return ks[i].Compare(k) >= 0 })
	return i, i < len(ks) && ks[i].Equal(k)
}

// Insert adds (key, rid) to the tree. Inserting a duplicate (key, rid)
// pair is a no-op returning false; otherwise it returns true.
func (t *Tree) Insert(key storage.Value, rid storage.RID) bool {
	if !key.IsValid() {
		panic("btree: insert of invalid key")
	}
	added, sepKey, sibling := t.insert(t.root, key, rid)
	if sibling != nil {
		t.root = &inner{
			keys:     []storage.Value{sepKey},
			children: []node{t.root, sibling},
		}
	}
	return added
}

// insert descends to the leaf. When a child splits, it returns the
// separator key and new right sibling for the caller to absorb.
func (t *Tree) insert(n node, key storage.Value, rid storage.RID) (added bool, sepKey storage.Value, sibling node) {
	switch nd := n.(type) {
	case *leaf:
		i, found := leafSlot(nd.keys, key)
		if found {
			post := nd.posts[i]
			j := sort.Search(len(post), func(j int) bool { return !post[j].Less(rid) })
			if j < len(post) && post[j] == rid {
				return false, storage.Value{}, nil
			}
			nd.posts[i] = append(post, storage.RID{})
			copy(nd.posts[i][j+1:], nd.posts[i][j:])
			nd.posts[i][j] = rid
			t.entries++
			return true, storage.Value{}, nil
		}
		nd.keys = append(nd.keys, storage.Value{})
		copy(nd.keys[i+1:], nd.keys[i:])
		nd.keys[i] = key
		nd.posts = append(nd.posts, nil)
		copy(nd.posts[i+1:], nd.posts[i:])
		nd.posts[i] = []storage.RID{rid}
		t.distinct++
		t.entries++
		if len(nd.keys) > t.order {
			sk, sib := t.splitLeaf(nd)
			return true, sk, sib
		}
		return true, storage.Value{}, nil

	case *inner:
		ci := searchKeys(nd.keys, key)
		added, sk, sib := t.insert(nd.children[ci], key, rid)
		if sib != nil {
			nd.keys = append(nd.keys, storage.Value{})
			copy(nd.keys[ci+1:], nd.keys[ci:])
			nd.keys[ci] = sk
			nd.children = append(nd.children, nil)
			copy(nd.children[ci+2:], nd.children[ci+1:])
			nd.children[ci+1] = sib
			if len(nd.children) > t.order {
				sk2, sib2 := t.splitInner(nd)
				return added, sk2, sib2
			}
		}
		return added, storage.Value{}, nil
	default:
		panic("btree: unknown node type")
	}
}

// splitLeaf splits nd in half, returning the separator (first key of the
// right half) and the new right leaf.
func (t *Tree) splitLeaf(nd *leaf) (storage.Value, node) {
	mid := len(nd.keys) / 2
	right := &leaf{
		keys:  append([]storage.Value(nil), nd.keys[mid:]...),
		posts: append([][]storage.RID(nil), nd.posts[mid:]...),
		next:  nd.next,
	}
	nd.keys = nd.keys[:mid:mid]
	nd.posts = nd.posts[:mid:mid]
	nd.next = right
	return right.keys[0], right
}

// splitInner splits nd, promoting the middle key.
func (t *Tree) splitInner(nd *inner) (storage.Value, node) {
	mid := len(nd.keys) / 2
	sep := nd.keys[mid]
	right := &inner{
		keys:     append([]storage.Value(nil), nd.keys[mid+1:]...),
		children: append([]node(nil), nd.children[mid+1:]...),
	}
	nd.keys = nd.keys[:mid:mid]
	nd.children = nd.children[: mid+1 : mid+1]
	return sep, right
}

// Lookup returns the posting list for key, or nil. The returned slice is
// owned by the tree; callers must not mutate it.
func (t *Tree) Lookup(key storage.Value) []storage.RID {
	n := t.root
	for {
		switch nd := n.(type) {
		case *leaf:
			if i, found := leafSlot(nd.keys, key); found {
				return nd.posts[i]
			}
			return nil
		case *inner:
			n = nd.children[searchKeys(nd.keys, key)]
		}
	}
}

// Contains reports whether (key, rid) is in the tree.
func (t *Tree) Contains(key storage.Value, rid storage.RID) bool {
	for _, r := range t.Lookup(key) {
		if r == rid {
			return true
		}
	}
	return false
}

// Delete removes (key, rid). It returns false when the pair was absent.
func (t *Tree) Delete(key storage.Value, rid storage.RID) bool {
	removed := t.delete(t.root, key, rid)
	if !removed {
		return false
	}
	// Collapse a root inner node with a single child.
	if in, ok := t.root.(*inner); ok && len(in.children) == 1 {
		t.root = in.children[0]
	}
	return true
}

func (t *Tree) delete(n node, key storage.Value, rid storage.RID) bool {
	switch nd := n.(type) {
	case *leaf:
		i, found := leafSlot(nd.keys, key)
		if !found {
			return false
		}
		post := nd.posts[i]
		j := sort.Search(len(post), func(j int) bool { return !post[j].Less(rid) })
		if j >= len(post) || post[j] != rid {
			return false
		}
		nd.posts[i] = append(post[:j], post[j+1:]...)
		t.entries--
		if len(nd.posts[i]) == 0 {
			nd.keys = append(nd.keys[:i], nd.keys[i+1:]...)
			nd.posts = append(nd.posts[:i], nd.posts[i+1:]...)
			t.distinct--
		}
		return true

	case *inner:
		ci := searchKeys(nd.keys, key)
		if !t.delete(nd.children[ci], key, rid) {
			return false
		}
		t.rebalance(nd, ci)
		return true
	default:
		panic("btree: unknown node type")
	}
}

// rebalance fixes a potential underflow of nd.children[ci] by borrowing
// from or merging with a sibling.
func (t *Tree) rebalance(nd *inner, ci int) {
	switch child := nd.children[ci].(type) {
	case *leaf:
		if len(child.keys) >= t.minLeafKeys() {
			return
		}
		// Borrow from right sibling.
		if ci+1 < len(nd.children) {
			r := nd.children[ci+1].(*leaf)
			if len(r.keys) > t.minLeafKeys() {
				child.keys = append(child.keys, r.keys[0])
				child.posts = append(child.posts, r.posts[0])
				r.keys = r.keys[1:]
				r.posts = r.posts[1:]
				nd.keys[ci] = r.keys[0]
				return
			}
		}
		// Borrow from left sibling.
		if ci > 0 {
			l := nd.children[ci-1].(*leaf)
			if len(l.keys) > t.minLeafKeys() {
				last := len(l.keys) - 1
				child.keys = append([]storage.Value{l.keys[last]}, child.keys...)
				child.posts = append([][]storage.RID{l.posts[last]}, child.posts...)
				l.keys = l.keys[:last]
				l.posts = l.posts[:last]
				nd.keys[ci-1] = child.keys[0]
				return
			}
		}
		// Merge with a sibling.
		if ci+1 < len(nd.children) {
			t.mergeLeaves(nd, ci)
		} else if ci > 0 {
			t.mergeLeaves(nd, ci-1)
		}

	case *inner:
		if len(child.children) >= t.minInnerChildren() {
			return
		}
		if ci+1 < len(nd.children) {
			r := nd.children[ci+1].(*inner)
			if len(r.children) > t.minInnerChildren() {
				// Rotate left through the separator.
				child.keys = append(child.keys, nd.keys[ci])
				child.children = append(child.children, r.children[0])
				nd.keys[ci] = r.keys[0]
				r.keys = r.keys[1:]
				r.children = r.children[1:]
				return
			}
		}
		if ci > 0 {
			l := nd.children[ci-1].(*inner)
			if len(l.children) > t.minInnerChildren() {
				// Rotate right through the separator.
				child.keys = append([]storage.Value{nd.keys[ci-1]}, child.keys...)
				child.children = append([]node{l.children[len(l.children)-1]}, child.children...)
				nd.keys[ci-1] = l.keys[len(l.keys)-1]
				l.keys = l.keys[:len(l.keys)-1]
				l.children = l.children[:len(l.children)-1]
				return
			}
		}
		if ci+1 < len(nd.children) {
			t.mergeInners(nd, ci)
		} else if ci > 0 {
			t.mergeInners(nd, ci-1)
		}
	}
}

// mergeLeaves merges nd.children[i+1] into nd.children[i].
func (t *Tree) mergeLeaves(nd *inner, i int) {
	l := nd.children[i].(*leaf)
	r := nd.children[i+1].(*leaf)
	l.keys = append(l.keys, r.keys...)
	l.posts = append(l.posts, r.posts...)
	l.next = r.next
	nd.keys = append(nd.keys[:i], nd.keys[i+1:]...)
	nd.children = append(nd.children[:i+1], nd.children[i+2:]...)
}

// mergeInners merges nd.children[i+1] into nd.children[i], pulling down
// the separator.
func (t *Tree) mergeInners(nd *inner, i int) {
	l := nd.children[i].(*inner)
	r := nd.children[i+1].(*inner)
	l.keys = append(append(l.keys, nd.keys[i]), r.keys...)
	l.children = append(l.children, r.children...)
	nd.keys = append(nd.keys[:i], nd.keys[i+1:]...)
	nd.children = append(nd.children[:i+1], nd.children[i+2:]...)
}

// Ascend calls fn for every (key, posting) in key order until fn returns
// false.
func (t *Tree) Ascend(fn func(key storage.Value, post []storage.RID) bool) {
	for lf := t.first; lf != nil; lf = lf.next {
		for i, k := range lf.keys {
			if !fn(k, lf.posts[i]) {
				return
			}
		}
	}
}

// AscendRange calls fn for every key in [lo, hi] in order until fn
// returns false. An invalid lo means "from the minimum"; an invalid hi
// means "to the maximum".
func (t *Tree) AscendRange(lo, hi storage.Value, fn func(key storage.Value, post []storage.RID) bool) {
	lf, start := t.seek(lo)
	for ; lf != nil; lf = lf.next {
		for i := start; i < len(lf.keys); i++ {
			if hi.IsValid() && lf.keys[i].Compare(hi) > 0 {
				return
			}
			if !fn(lf.keys[i], lf.posts[i]) {
				return
			}
		}
		start = 0
	}
}

// seek positions at the first key >= lo (or the first key overall when lo
// is invalid).
func (t *Tree) seek(lo storage.Value) (*leaf, int) {
	if !lo.IsValid() {
		return t.first, 0
	}
	n := t.root
	for {
		switch nd := n.(type) {
		case *leaf:
			i, _ := leafSlot(nd.keys, lo)
			if i == len(nd.keys) {
				return nd.next, 0
			}
			return nd, i
		case *inner:
			n = nd.children[searchKeys(nd.keys, lo)]
		}
	}
}

// Min returns the smallest key, or an invalid Value when empty.
func (t *Tree) Min() storage.Value {
	for lf := t.first; lf != nil; lf = lf.next {
		if len(lf.keys) > 0 {
			return lf.keys[0]
		}
	}
	return storage.Value{}
}

// Max returns the largest key, or an invalid Value when empty.
func (t *Tree) Max() storage.Value {
	var out storage.Value
	n := t.root
	for {
		switch nd := n.(type) {
		case *leaf:
			if len(nd.keys) > 0 {
				out = nd.keys[len(nd.keys)-1]
			}
			return out
		case *inner:
			n = nd.children[len(nd.children)-1]
		}
	}
}

// Height returns the number of levels (1 for a lone leaf). Exposed for
// tests and stats.
func (t *Tree) Height() int {
	h := 1
	n := t.root
	for {
		in, ok := n.(*inner)
		if !ok {
			return h
		}
		h++
		n = in.children[0]
	}
}
