package btree

import (
	"math/rand"
	"testing"

	"repro/internal/storage"
)

func pv(i int64) storage.Value { return storage.Int64Value(i) }

func prid(p, s int) storage.RID {
	return storage.RID{Page: storage.PageID(p), Slot: uint16(s)}
}

// dumpP flattens a persistent tree into (key, rids...) sequences.
func dumpP(t *PTree) []string {
	var out []string
	t.Ascend(func(k storage.Value, post []storage.RID) bool {
		s := k.String()
		for _, r := range post {
			s += "|" + r.String()
		}
		out = append(out, s)
		return true
	})
	return out
}

// dumpM does the same for the mutable tree.
func dumpM(t *Tree) []string {
	var out []string
	t.Ascend(func(k storage.Value, post []storage.RID) bool {
		s := k.String()
		for _, r := range post {
			s += "|" + r.String()
		}
		out = append(out, s)
		return true
	})
	return out
}

func equalDump(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestPTreeMatchesTree runs the same randomized insert/delete stream
// through both implementations and diffs contents, counters and range
// scans after every operation.
func TestPTreeMatchesTree(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	mt := New(4) // tiny order forces deep trees, splits and prunes
	pt := NewPTree(4)

	type pair struct {
		k storage.Value
		r storage.RID
	}
	var live []pair

	for op := 0; op < 4000; op++ {
		if rng.Intn(3) != 0 || len(live) == 0 {
			k := pv(int64(rng.Intn(60)))
			r := prid(rng.Intn(20), rng.Intn(8))
			ma := mt.Insert(k, r)
			var pa bool
			pt, pa = pt.Insert(k, r)
			if ma != pa {
				t.Fatalf("op %d: insert added mutable=%v persistent=%v", op, ma, pa)
			}
			if ma {
				live = append(live, pair{k, r})
			}
		} else {
			i := rng.Intn(len(live))
			p := live[i]
			mr := mt.Delete(p.k, p.r)
			var pr bool
			pt, pr = pt.Delete(p.k, p.r)
			if mr != pr {
				t.Fatalf("op %d: delete removed mutable=%v persistent=%v", op, mr, pr)
			}
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
		}

		if mt.EntryCount() != pt.EntryCount() || mt.Len() != pt.Len() {
			t.Fatalf("op %d: entries %d/%d distinct %d/%d",
				op, mt.EntryCount(), pt.EntryCount(), mt.Len(), pt.Len())
		}
		if op%97 == 0 {
			if !equalDump(dumpM(mt), dumpP(pt)) {
				t.Fatalf("op %d: contents diverged", op)
			}
			lo, hi := pv(int64(rng.Intn(40))), pv(int64(20+rng.Intn(40)))
			var mscan, pscan []string
			mt.AscendRange(lo, hi, func(k storage.Value, post []storage.RID) bool {
				mscan = append(mscan, k.String())
				return true
			})
			pt.AscendRange(lo, hi, func(k storage.Value, post []storage.RID) bool {
				pscan = append(pscan, k.String())
				return true
			})
			if !equalDump(mscan, pscan) {
				t.Fatalf("op %d: range [%v,%v] diverged: %v vs %v", op, lo, hi, mscan, pscan)
			}
			if mt.Min().String() != pt.Min().String() || mt.Max().String() != pt.Max().String() {
				t.Fatalf("op %d: min/max diverged", op)
			}
		}
	}
}

// TestPTreePersistence checks path copying: a snapshot taken before a
// batch of mutations is bit-for-bit unchanged afterwards.
func TestPTreePersistence(t *testing.T) {
	pt := NewPTree(4)
	for i := 0; i < 200; i++ {
		pt, _ = pt.Insert(pv(int64(i%37)), prid(i%11, i%5))
	}
	before := dumpP(pt)
	entries, distinct := pt.EntryCount(), pt.Len()

	mutated := pt
	for i := 0; i < 200; i++ {
		if i%2 == 0 {
			mutated, _ = mutated.Insert(pv(int64(100+i)), prid(i%7, i%3))
		} else {
			mutated, _ = mutated.Delete(pv(int64(i%37)), prid(i%11, i%5))
		}
	}
	if equalDump(before, dumpP(mutated)) {
		t.Fatal("mutations had no effect")
	}
	if !equalDump(before, dumpP(pt)) {
		t.Fatal("snapshot changed under mutation: path copying is broken")
	}
	if pt.EntryCount() != entries || pt.Len() != distinct {
		t.Fatal("snapshot counters changed under mutation")
	}
}

// TestPTreeDeleteToEmpty drains a tree through the no-rebalance delete
// path, exercising cascading prunes down to the nil root.
func TestPTreeDeleteToEmpty(t *testing.T) {
	pt := NewPTree(4)
	const n = 300
	for i := 0; i < n; i++ {
		pt, _ = pt.Insert(pv(int64(i)), prid(i, 0))
	}
	for i := n - 1; i >= 0; i-- {
		var ok bool
		pt, ok = pt.Delete(pv(int64(i)), prid(i, 0))
		if !ok {
			t.Fatalf("delete %d failed", i)
		}
		if pt.EntryCount() != i {
			t.Fatalf("entries = %d after deleting down to %d", pt.EntryCount(), i)
		}
	}
	if pt.Height() != 0 || pt.Len() != 0 {
		t.Fatalf("drained tree: height %d distinct %d", pt.Height(), pt.Len())
	}
	if pt.Lookup(pv(3)) != nil {
		t.Fatal("lookup on drained tree")
	}
	pt, ok := pt.Insert(pv(9), prid(1, 1))
	if !ok || pt.EntryCount() != 1 {
		t.Fatal("reinsert after drain failed")
	}
}

// TestPTreeDuplicateSemantics mirrors the mutable tree's posting-list
// rules: duplicate pairs are no-ops, same-key rids accumulate in RID
// order.
func TestPTreeDuplicateSemantics(t *testing.T) {
	pt := NewPTreeDefault()
	pt, a1 := pt.Insert(pv(7), prid(3, 1))
	pt, a2 := pt.Insert(pv(7), prid(1, 2))
	pt, a3 := pt.Insert(pv(7), prid(3, 1)) // duplicate
	if !a1 || !a2 || a3 {
		t.Fatalf("added = %v %v %v", a1, a2, a3)
	}
	post := pt.Lookup(pv(7))
	if len(post) != 2 || !post[0].Less(post[1]) {
		t.Fatalf("posting = %v, want 2 rids in order", post)
	}
	if !pt.Contains(pv(7), prid(1, 2)) || pt.Contains(pv(7), prid(9, 9)) {
		t.Fatal("contains wrong")
	}
	if pt.EntryCount() != 2 || pt.Len() != 1 {
		t.Fatalf("entries=%d distinct=%d", pt.EntryCount(), pt.Len())
	}
}

// TestPBulkMatchesIncremental cross-checks bulk construction against
// one-at-a-time inserts and against the mutable Bulk.
func TestPBulkMatchesIncremental(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var entries []Entry
	for i := 0; i < 1500; i++ {
		entries = append(entries, Entry{Key: pv(int64(rng.Intn(200))), RID: prid(rng.Intn(40), rng.Intn(6))})
	}
	// Bulk sorts its input in place; give each builder its own copy.
	bulkP := PBulk(8, append([]Entry(nil), entries...))
	bulkM := Bulk(8, append([]Entry(nil), entries...))
	inc := NewPTree(8)
	for _, e := range entries {
		inc, _ = inc.Insert(e.Key, e.RID)
	}
	if bulkP.EntryCount() != inc.EntryCount() || bulkP.Len() != inc.Len() {
		t.Fatalf("bulk entries=%d distinct=%d, incremental %d/%d",
			bulkP.EntryCount(), bulkP.Len(), inc.EntryCount(), inc.Len())
	}
	if !equalDump(dumpP(bulkP), dumpP(inc)) {
		t.Fatal("bulk and incremental contents diverged")
	}
	if !equalDump(dumpP(bulkP), dumpM(bulkM)) {
		t.Fatal("persistent and mutable bulk contents diverged")
	}
}

func TestPBulkEmpty(t *testing.T) {
	pt := PBulk(4, nil)
	if pt.EntryCount() != 0 || pt.Height() != 0 {
		t.Fatal("empty bulk not empty")
	}
	pt.Ascend(func(storage.Value, []storage.RID) bool {
		t.Fatal("ascend on empty tree called fn")
		return false
	})
}
