package btree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/storage"
)

func iv(v int64) storage.Value { return storage.Int64Value(v) }
func rid(p, s int) storage.RID { return storage.RID{Page: storage.PageID(p), Slot: uint16(s)} }

func TestNewPanicsOnTinyOrder(t *testing.T) {
	t.Parallel()
	defer func() {
		if recover() == nil {
			t.Error("order < 4 should panic")
		}
	}()
	New(3)
}

func TestInsertLookupBasic(t *testing.T) {
	t.Parallel()
	tr := New(4)
	if !tr.Insert(iv(10), rid(1, 0)) {
		t.Error("first insert should report added")
	}
	if tr.Insert(iv(10), rid(1, 0)) {
		t.Error("duplicate (key, rid) should report not added")
	}
	if !tr.Insert(iv(10), rid(2, 0)) {
		t.Error("same key, new rid should report added")
	}
	post := tr.Lookup(iv(10))
	if len(post) != 2 || post[0] != rid(1, 0) || post[1] != rid(2, 0) {
		t.Errorf("posting = %v", post)
	}
	if tr.Lookup(iv(11)) != nil {
		t.Error("missing key should return nil")
	}
	if tr.Len() != 1 || tr.EntryCount() != 2 {
		t.Errorf("Len=%d EntryCount=%d, want 1, 2", tr.Len(), tr.EntryCount())
	}
	if !tr.Contains(iv(10), rid(2, 0)) || tr.Contains(iv(10), rid(3, 0)) {
		t.Error("Contains wrong")
	}
}

func TestInsertInvalidKeyPanics(t *testing.T) {
	t.Parallel()
	tr := NewDefault()
	defer func() {
		if recover() == nil {
			t.Error("invalid key should panic")
		}
	}()
	tr.Insert(storage.Value{}, rid(0, 0))
}

func TestPostingStaysRIDSorted(t *testing.T) {
	t.Parallel()
	tr := New(4)
	rids := []storage.RID{rid(5, 1), rid(1, 2), rid(3, 0), rid(1, 0), rid(5, 0)}
	for _, r := range rids {
		tr.Insert(iv(7), r)
	}
	post := tr.Lookup(iv(7))
	for i := 1; i < len(post); i++ {
		if !post[i-1].Less(post[i]) {
			t.Fatalf("posting not sorted: %v", post)
		}
	}
}

func TestSplitsAndOrderedIteration(t *testing.T) {
	t.Parallel()
	tr := New(4) // tiny order forces deep trees
	const n = 1000
	perm := rand.New(rand.NewSource(3)).Perm(n)
	for _, k := range perm {
		tr.Insert(iv(int64(k)), rid(k, 0))
	}
	if tr.Len() != n {
		t.Fatalf("Len = %d, want %d", tr.Len(), n)
	}
	if tr.Height() < 3 {
		t.Errorf("height = %d, expected a deep tree at order 4", tr.Height())
	}
	var keys []int64
	tr.Ascend(func(k storage.Value, post []storage.RID) bool {
		keys = append(keys, k.Int64())
		return true
	})
	if len(keys) != n {
		t.Fatalf("iterated %d keys", len(keys))
	}
	for i, k := range keys {
		if k != int64(i) {
			t.Fatalf("position %d has key %d", i, k)
		}
	}
	if tr.Min().Int64() != 0 || tr.Max().Int64() != n-1 {
		t.Errorf("Min=%v Max=%v", tr.Min(), tr.Max())
	}
}

func TestAscendEarlyStop(t *testing.T) {
	t.Parallel()
	tr := New(4)
	for k := 0; k < 100; k++ {
		tr.Insert(iv(int64(k)), rid(k, 0))
	}
	count := 0
	tr.Ascend(func(storage.Value, []storage.RID) bool {
		count++
		return count < 10
	})
	if count != 10 {
		t.Errorf("early stop saw %d keys, want 10", count)
	}
}

func TestAscendRange(t *testing.T) {
	t.Parallel()
	tr := New(4)
	for k := 0; k < 100; k += 2 { // even keys only
		tr.Insert(iv(int64(k)), rid(k, 0))
	}
	var got []int64
	tr.AscendRange(iv(11), iv(21), func(k storage.Value, _ []storage.RID) bool {
		got = append(got, k.Int64())
		return true
	})
	want := []int64{12, 14, 16, 18, 20}
	if len(got) != len(want) {
		t.Fatalf("range got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("range got %v, want %v", got, want)
		}
	}
	// Open-ended ranges.
	var lo []int64
	tr.AscendRange(storage.Value{}, iv(5), func(k storage.Value, _ []storage.RID) bool {
		lo = append(lo, k.Int64())
		return true
	})
	if len(lo) != 3 { // 0 2 4
		t.Errorf("open-lo range = %v", lo)
	}
	n := 0
	tr.AscendRange(iv(90), storage.Value{}, func(storage.Value, []storage.RID) bool {
		n++
		return true
	})
	if n != 5 { // 90 92 94 96 98
		t.Errorf("open-hi range counted %d", n)
	}
}

func TestDeleteBasic(t *testing.T) {
	t.Parallel()
	tr := New(4)
	tr.Insert(iv(1), rid(1, 0))
	tr.Insert(iv(1), rid(2, 0))
	if !tr.Delete(iv(1), rid(1, 0)) {
		t.Error("delete of present pair should succeed")
	}
	if tr.Delete(iv(1), rid(1, 0)) {
		t.Error("delete of absent rid should fail")
	}
	if tr.Delete(iv(9), rid(0, 0)) {
		t.Error("delete of absent key should fail")
	}
	if tr.Len() != 1 || tr.EntryCount() != 1 {
		t.Errorf("Len=%d EntryCount=%d", tr.Len(), tr.EntryCount())
	}
	if !tr.Delete(iv(1), rid(2, 0)) {
		t.Error("second delete should succeed")
	}
	if tr.Len() != 0 || tr.EntryCount() != 0 {
		t.Errorf("after emptying: Len=%d EntryCount=%d", tr.Len(), tr.EntryCount())
	}
	if tr.Min().IsValid() || tr.Max().IsValid() {
		t.Error("Min/Max of empty tree should be invalid")
	}
}

func TestDeleteRebalancing(t *testing.T) {
	t.Parallel()
	tr := New(4)
	const n = 2000
	for k := 0; k < n; k++ {
		tr.Insert(iv(int64(k)), rid(k, 0))
	}
	// Delete in an order that exercises left/right borrows and merges:
	// front, back, then every other.
	order := make([]int, 0, n)
	for i := 0; i < n/4; i++ {
		order = append(order, i, n-1-i)
	}
	for k := 0; k < n; k++ {
		order = append(order, k) // duplicates are fine; deletes fail silently
	}
	deleted := map[int]bool{}
	for _, k := range order {
		want := !deleted[k]
		got := tr.Delete(iv(int64(k)), rid(k, 0))
		if got != want {
			t.Fatalf("delete %d: got %v, want %v", k, got, want)
		}
		deleted[k] = true
	}
	if tr.Len() != 0 {
		t.Fatalf("tree not empty: %d keys", tr.Len())
	}
}

// checkInvariants walks the tree verifying structural invariants.
func checkInvariants(t *testing.T, tr *Tree) {
	t.Helper()
	var walk func(n node, depth int) (min, max storage.Value, leafDepth int)
	walk = func(n node, depth int) (storage.Value, storage.Value, int) {
		switch nd := n.(type) {
		case *leaf:
			for i := 1; i < len(nd.keys); i++ {
				if nd.keys[i-1].Compare(nd.keys[i]) >= 0 {
					t.Fatalf("leaf keys out of order: %v, %v", nd.keys[i-1], nd.keys[i])
				}
			}
			for i, post := range nd.posts {
				if len(post) == 0 {
					t.Fatalf("empty posting for key %v", nd.keys[i])
				}
				for j := 1; j < len(post); j++ {
					if !post[j-1].Less(post[j]) {
						t.Fatalf("posting unsorted for key %v", nd.keys[i])
					}
				}
			}
			if len(nd.keys) == 0 {
				return storage.Value{}, storage.Value{}, depth
			}
			return nd.keys[0], nd.keys[len(nd.keys)-1], depth
		case *inner:
			if len(nd.children) != len(nd.keys)+1 {
				t.Fatalf("inner has %d children for %d keys", len(nd.children), len(nd.keys))
			}
			var lo, hi storage.Value
			leafDepth := -1
			for i, c := range nd.children {
				cmin, cmax, d := walk(c, depth+1)
				if leafDepth == -1 {
					leafDepth = d
				} else if d != leafDepth {
					t.Fatal("leaves at different depths")
				}
				if i > 0 && cmin.IsValid() && cmin.Compare(nd.keys[i-1]) < 0 {
					t.Fatalf("child %d min %v < separator %v", i, cmin, nd.keys[i-1])
				}
				if i < len(nd.keys) && cmax.IsValid() && cmax.Compare(nd.keys[i]) >= 0 {
					t.Fatalf("child %d max %v >= separator %v", i, cmax, nd.keys[i])
				}
				if i == 0 {
					lo = cmin
				}
				if i == len(nd.children)-1 {
					hi = cmax
				}
			}
			return lo, hi, leafDepth
		default:
			t.Fatal("unknown node")
			return storage.Value{}, storage.Value{}, 0
		}
	}
	walk(tr.root, 0)

	// The leaf chain must visit exactly the keys, in order.
	var chainKeys []storage.Value
	entries := 0
	for lf := tr.first; lf != nil; lf = lf.next {
		for i, k := range lf.keys {
			chainKeys = append(chainKeys, k)
			entries += len(lf.posts[i])
		}
	}
	if len(chainKeys) != tr.Len() {
		t.Fatalf("leaf chain has %d keys, Len says %d", len(chainKeys), tr.Len())
	}
	if entries != tr.EntryCount() {
		t.Fatalf("leaf chain has %d entries, EntryCount says %d", entries, tr.EntryCount())
	}
	if !sort.SliceIsSorted(chainKeys, func(i, j int) bool { return chainKeys[i].Compare(chainKeys[j]) < 0 }) {
		t.Fatal("leaf chain out of order")
	}
}

// TestRandomizedAgainstModel drives the tree with random ops against a
// map model, checking invariants and content periodically.
func TestRandomizedAgainstModel(t *testing.T) {
	t.Parallel()
	for _, order := range []int{4, 5, 16, 64} {
		order := order
		t.Run("order", func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(order)))
			tr := New(order)
			model := map[int64]map[storage.RID]bool{}
			modelEntries := 0

			for step := 0; step < 8000; step++ {
				k := rng.Int63n(500)
				r := rid(rng.Intn(50), rng.Intn(4))
				if rng.Intn(2) == 0 {
					added := tr.Insert(iv(k), r)
					wasThere := model[k][r]
					if added == wasThere {
						t.Fatalf("step %d: insert(%d,%v) added=%v model=%v", step, k, r, added, wasThere)
					}
					if model[k] == nil {
						model[k] = map[storage.RID]bool{}
					}
					if !wasThere {
						model[k][r] = true
						modelEntries++
					}
				} else {
					removed := tr.Delete(iv(k), r)
					wasThere := model[k][r]
					if removed != wasThere {
						t.Fatalf("step %d: delete(%d,%v) removed=%v model=%v", step, k, r, removed, wasThere)
					}
					if wasThere {
						delete(model[k], r)
						if len(model[k]) == 0 {
							delete(model, k)
						}
						modelEntries--
					}
				}
				if step%500 == 0 {
					checkInvariants(t, tr)
				}
			}
			checkInvariants(t, tr)
			if tr.EntryCount() != modelEntries {
				t.Fatalf("EntryCount=%d model=%d", tr.EntryCount(), modelEntries)
			}
			if tr.Len() != len(model) {
				t.Fatalf("Len=%d model=%d", tr.Len(), len(model))
			}
			// Full content check.
			for k, rids := range model {
				post := tr.Lookup(iv(k))
				if len(post) != len(rids) {
					t.Fatalf("key %d: posting %v, model %v", k, post, rids)
				}
				for _, r := range post {
					if !rids[r] {
						t.Fatalf("key %d: unexpected rid %v", k, r)
					}
				}
			}
		})
	}
}

func TestQuickInsertDeleteRoundTrip(t *testing.T) {
	t.Parallel()
	// Property: inserting a batch then deleting it leaves an empty tree,
	// regardless of key distribution.
	f := func(keys []int64) bool {
		tr := New(6)
		for i, k := range keys {
			tr.Insert(iv(k), rid(i, 0))
		}
		for i, k := range keys {
			if !tr.Delete(iv(k), rid(i, 0)) {
				return false
			}
		}
		return tr.Len() == 0 && tr.EntryCount() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestStringKeys(t *testing.T) {
	t.Parallel()
	tr := New(4)
	airports := []string{"ORD", "FRA", "HEL", "JFK", "LAX", "MUC", "TXL", "SFO"}
	for i, a := range airports {
		tr.Insert(storage.StringValue(a), rid(i, 0))
	}
	var got []string
	tr.Ascend(func(k storage.Value, _ []storage.RID) bool {
		got = append(got, k.Str())
		return true
	})
	want := append([]string(nil), airports...)
	sort.Strings(want)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order: got %v, want %v", got, want)
		}
	}
	if post := tr.Lookup(storage.StringValue("FRA")); len(post) != 1 || post[0] != rid(1, 0) {
		t.Errorf("FRA posting = %v", post)
	}
}
