package btree

import (
	"math/rand"
	"testing"

	"repro/internal/storage"
)

// benchTree builds a tree with n random keys for lookup benchmarks.
func benchTree(n int) (*Tree, []storage.Value) {
	tr := NewDefault()
	rng := rand.New(rand.NewSource(1))
	keys := make([]storage.Value, n)
	for i := 0; i < n; i++ {
		k := storage.Int64Value(rng.Int63n(int64(n) * 4))
		keys[i] = k
		tr.Insert(k, storage.RID{Page: storage.PageID(i), Slot: 0})
	}
	return tr, keys
}

func BenchmarkInsert(b *testing.B) {
	tr := NewDefault()
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Insert(storage.Int64Value(rng.Int63n(1<<30)), storage.RID{Page: storage.PageID(i), Slot: 0})
	}
}

func BenchmarkLookup(b *testing.B) {
	tr, keys := benchTree(100000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Lookup(keys[i%len(keys)])
	}
}

func BenchmarkDelete(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	b.StopTimer()
	for i := 0; i < b.N; i += 100000 {
		tr := NewDefault()
		n := 100000
		if b.N-i < n {
			n = b.N - i
		}
		rids := make([]storage.RID, n)
		keys := make([]storage.Value, n)
		for j := 0; j < n; j++ {
			keys[j] = storage.Int64Value(rng.Int63n(1 << 30))
			rids[j] = storage.RID{Page: storage.PageID(j), Slot: 0}
			tr.Insert(keys[j], rids[j])
		}
		b.StartTimer()
		for j := 0; j < n; j++ {
			tr.Delete(keys[j], rids[j])
		}
		b.StopTimer()
	}
}

func BenchmarkAscendRange(b *testing.B) {
	tr, _ := benchTree(100000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := storage.Int64Value(int64(i % 100000))
		hi := storage.Int64Value(int64(i%100000) + 1000)
		count := 0
		tr.AscendRange(lo, hi, func(storage.Value, []storage.RID) bool {
			count++
			return true
		})
	}
}
