// Package workload generates the paper's evaluation data and query
// streams (§V): a table with three INTEGER columns uniformly distributed
// over [1, 50000] plus a VARCHAR(512) payload of uniform random length,
// and query mixes over the columns with controllable partial-index hit
// rates and mid-run shifts.
//
// Everything is seeded and deterministic, so experiment runs are
// reproducible.
//
// Seeding convention (repo-wide): no code in this repository draws from
// the global math/rand source — every random stream is created with
// rand.New(rand.NewSource(seed)) from an explicit seed. Tests and
// benchmarks hard-code their seeds so failures replay bit-for-bit;
// experiment runners derive independent streams from one user-facing
// seed by fixed offsets (e.g. data at Seed, queries at Seed+1000), so
// changing one stream's consumption never perturbs another. New code
// must follow the same pattern: accept a seed, derive sub-streams by
// distinct offsets, never call rand.Intn or friends at package level.
package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/storage"
)

// Dataset describes the synthetic table of the paper's common setup.
type Dataset struct {
	Rows       int   // number of tuples (paper: 500,000)
	Columns    int   // integer key columns (paper: 3 — A, B, C)
	Domain     int64 // values uniform in [1, Domain] (paper: 50,000)
	PayloadMax int   // payload length uniform in [1, PayloadMax] (paper: 512)
	Seed       int64 // RNG seed
}

// PaperDataset returns the paper's exact data setup, scaled to the given
// row count (pass 500000 for the original size).
func PaperDataset(rows int) Dataset {
	return Dataset{Rows: rows, Columns: 3, Domain: 50000, PayloadMax: 512, Seed: 1}
}

// Schema returns the dataset's table schema: columns "a", "b", "c", ...
// followed by "payload".
func (d Dataset) Schema() (*storage.Schema, error) {
	if d.Columns < 1 || d.Columns > 26 {
		return nil, fmt.Errorf("workload: %d key columns, want 1..26", d.Columns)
	}
	cols := make([]storage.Column, 0, d.Columns+1)
	for i := 0; i < d.Columns; i++ {
		cols = append(cols, storage.Column{
			Name: string(rune('a' + i)),
			Kind: storage.KindInt64,
		})
	}
	cols = append(cols, storage.Column{Name: "payload", Kind: storage.KindString})
	return storage.NewSchema(cols...)
}

// Generate streams the dataset's tuples to fn in insertion order.
func (d Dataset) Generate(fn func(storage.Tuple) error) error {
	if d.Rows < 0 || d.Domain < 1 || d.PayloadMax < 1 {
		return fmt.Errorf("workload: invalid dataset %+v", d)
	}
	if _, err := d.Schema(); err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(d.Seed))
	payload := make([]byte, d.PayloadMax)
	for i := range payload {
		payload[i] = byte('a' + rng.Intn(26))
	}
	for i := 0; i < d.Rows; i++ {
		vals := make([]storage.Value, 0, d.Columns+1)
		for c := 0; c < d.Columns; c++ {
			vals = append(vals, storage.Int64Value(1+rng.Int63n(d.Domain)))
		}
		n := 1 + rng.Intn(d.PayloadMax)
		vals = append(vals, storage.StringValue(string(payload[:n])))
		if err := fn(storage.NewTuple(vals...)); err != nil {
			return err
		}
	}
	return nil
}

// Draw produces a query key given an RNG — one step of a query stream.
type Draw func(*rand.Rand) int64

// Uniform draws uniformly from [lo, hi].
func Uniform(lo, hi int64) Draw {
	if hi < lo {
		panic(fmt.Sprintf("workload: uniform range [%d, %d]", lo, hi))
	}
	return func(rng *rand.Rand) int64 { return lo + rng.Int63n(hi-lo+1) }
}

// WithHitRate draws from covered with probability p, else from uncovered
// — the paper's experiment 4 controls the partial-index hit rate this
// way.
func WithHitRate(p float64, covered, uncovered Draw) Draw {
	return func(rng *rand.Rand) int64 {
		if rng.Float64() < p {
			return covered(rng)
		}
		return uncovered(rng)
	}
}

// Zipf draws zipf-distributed values over [1, n] with the given skew
// (s > 1); an extension generator for skewed-workload ablations.
// A degenerate domain (n <= 1) always draws 1 — rand.NewZipf's imax is
// unsigned, so uint64(n-1) would otherwise underflow for n <= 0 and
// produce values far outside the domain.
func Zipf(s float64, n int64, seed int64) Draw {
	if n <= 1 {
		return func(*rand.Rand) int64 { return 1 }
	}
	z := rand.NewZipf(rand.New(rand.NewSource(seed)), s, 1, uint64(n-1))
	return func(*rand.Rand) int64 { return 1 + int64(z.Uint64()) }
}

// ShiftingRange reproduces the paper's Figure 1 workload: queries draw
// uniformly from a range that moves linearly from [lo1, hi1] to
// [lo2, hi2] between query numbers start and end (before start: range 1;
// after end: range 2). The returned function takes the query number.
func ShiftingRange(lo1, hi1, lo2, hi2 int64, start, end int) func(q int, rng *rand.Rand) int64 {
	return func(q int, rng *rand.Rand) int64 {
		var frac float64
		switch {
		case q < start:
			frac = 0
		case q >= end:
			frac = 1
		default:
			frac = float64(q-start) / float64(end-start)
		}
		lo := lo1 + int64(frac*float64(lo2-lo1))
		hi := hi1 + int64(frac*float64(hi2-hi1))
		return Uniform(lo, hi)(rng)
	}
}

// Mix selects a column for each query according to weights — the paper's
// experiment 3 uses (1/2, 1/3, 1/6) over columns (A, B, C), flipping to
// (1/6, 1/3, 1/2) mid-run.
type Mix struct {
	weights []float64
	total   float64
}

// NewMix builds a column mix from non-negative weights.
func NewMix(weights ...float64) (Mix, error) {
	total := 0.0
	for _, w := range weights {
		if w < 0 {
			return Mix{}, fmt.Errorf("workload: negative weight %v", w)
		}
		total += w
	}
	if total <= 0 {
		return Mix{}, fmt.Errorf("workload: all-zero mix")
	}
	return Mix{weights: append([]float64(nil), weights...), total: total}, nil
}

// MustMix is NewMix for static known-good weights.
func MustMix(weights ...float64) Mix {
	m, err := NewMix(weights...)
	if err != nil {
		panic(err)
	}
	return m
}

// Pick returns a column index with probability proportional to its
// weight.
func (m Mix) Pick(rng *rand.Rand) int {
	r := rng.Float64() * m.total
	for i, w := range m.weights {
		r -= w
		if r < 0 {
			return i
		}
	}
	return len(m.weights) - 1
}

// Columns returns the number of columns in the mix.
func (m Mix) Columns() int { return len(m.weights) }
