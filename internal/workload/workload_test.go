package workload

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/storage"
)

func TestDatasetSchema(t *testing.T) {
	t.Parallel()
	d := PaperDataset(100)
	s, err := d.Schema()
	if err != nil {
		t.Fatal(err)
	}
	if s.NumColumns() != 4 {
		t.Fatalf("columns = %d", s.NumColumns())
	}
	for i, name := range []string{"a", "b", "c", "payload"} {
		if s.Column(i).Name != name {
			t.Errorf("column %d = %q, want %q", i, s.Column(i).Name, name)
		}
	}
	bad := Dataset{Rows: 1, Columns: 0, Domain: 10, PayloadMax: 10}
	if _, err := bad.Schema(); err == nil {
		t.Error("0 columns should fail")
	}
}

func TestDatasetGenerate(t *testing.T) {
	t.Parallel()
	d := PaperDataset(2000)
	var minV, maxV int64 = math.MaxInt64, 0
	payloads := map[int]bool{}
	n := 0
	err := d.Generate(func(tu storage.Tuple) error {
		n++
		for c := 0; c < 3; c++ {
			v := tu.Value(c).Int64()
			if v < minV {
				minV = v
			}
			if v > maxV {
				maxV = v
			}
		}
		payloads[len(tu.Value(3).Str())] = true
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 2000 {
		t.Fatalf("generated %d rows", n)
	}
	if minV < 1 || maxV > 50000 {
		t.Errorf("value range [%d, %d] outside [1, 50000]", minV, maxV)
	}
	if maxV < 40000 {
		t.Errorf("max value %d suspiciously low for uniform draw", maxV)
	}
	if len(payloads) < 100 {
		t.Errorf("only %d distinct payload lengths", len(payloads))
	}
}

func TestDatasetDeterminism(t *testing.T) {
	t.Parallel()
	d := PaperDataset(50)
	var first []int64
	_ = d.Generate(func(tu storage.Tuple) error {
		first = append(first, tu.Value(0).Int64())
		return nil
	})
	i := 0
	_ = d.Generate(func(tu storage.Tuple) error {
		if tu.Value(0).Int64() != first[i] {
			t.Fatalf("row %d differs between runs", i)
		}
		i++
		return nil
	})
}

func TestDatasetInvalid(t *testing.T) {
	t.Parallel()
	if err := (Dataset{Rows: -1, Columns: 1, Domain: 10, PayloadMax: 5}).Generate(nil); err == nil {
		t.Error("negative rows should fail")
	}
	if err := (Dataset{Rows: 1, Columns: 1, Domain: 0, PayloadMax: 5}).Generate(nil); err == nil {
		t.Error("zero domain should fail")
	}
}

func TestUniform(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(1))
	draw := Uniform(10, 20)
	for i := 0; i < 1000; i++ {
		v := draw(rng)
		if v < 10 || v > 20 {
			t.Fatalf("draw %d out of range", v)
		}
	}
	// Degenerate single-value range.
	one := Uniform(5, 5)
	if one(rng) != 5 {
		t.Error("single-value range wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("inverted range should panic")
		}
	}()
	Uniform(20, 10)
}

func TestWithHitRate(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(2))
	draw := WithHitRate(0.8, Uniform(1, 100), Uniform(1000, 2000))
	hits := 0
	const n = 10000
	for i := 0; i < n; i++ {
		if draw(rng) <= 100 {
			hits++
		}
	}
	rate := float64(hits) / n
	if rate < 0.77 || rate > 0.83 {
		t.Errorf("hit rate = %.3f, want ~0.8", rate)
	}
}

func TestZipfSkew(t *testing.T) {
	t.Parallel()
	draw := Zipf(1.5, 1000, 3)
	rng := rand.New(rand.NewSource(0))
	low := 0
	const n = 10000
	for i := 0; i < n; i++ {
		v := draw(rng)
		if v < 1 || v > 1000 {
			t.Fatalf("zipf draw %d out of range", v)
		}
		if v <= 10 {
			low++
		}
	}
	if float64(low)/n < 0.5 {
		t.Errorf("zipf not skewed: only %.2f of draws in top 10 values", float64(low)/n)
	}
}

func TestShiftingRange(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(4))
	f := ShiftingRange(1, 14, 16, 30, 200, 300)
	for q := 0; q < 200; q++ {
		if v := f(q, rng); v < 1 || v > 14 {
			t.Fatalf("pre-shift query %d drew %d", q, v)
		}
	}
	for q := 300; q < 500; q++ {
		if v := f(q, rng); v < 16 || v > 30 {
			t.Fatalf("post-shift query %d drew %d", q, v)
		}
	}
	// Mid-shift values stay in the convex hull.
	for q := 200; q < 300; q++ {
		if v := f(q, rng); v < 1 || v > 30 {
			t.Fatalf("mid-shift query %d drew %d", q, v)
		}
	}
}

func TestMix(t *testing.T) {
	t.Parallel()
	m := MustMix(0.5, 1.0/3, 1.0/6) // paper experiment 3
	if m.Columns() != 3 {
		t.Fatalf("columns = %d", m.Columns())
	}
	rng := rand.New(rand.NewSource(5))
	counts := make([]int, 3)
	const n = 30000
	for i := 0; i < n; i++ {
		counts[m.Pick(rng)]++
	}
	for i, want := range []float64{0.5, 1.0 / 3, 1.0 / 6} {
		got := float64(counts[i]) / n
		if math.Abs(got-want) > 0.02 {
			t.Errorf("column %d frequency = %.3f, want %.3f", i, got, want)
		}
	}
	if _, err := NewMix(); err == nil {
		t.Error("empty mix should fail")
	}
	if _, err := NewMix(-1, 2); err == nil {
		t.Error("negative weight should fail")
	}
	if _, err := NewMix(0, 0); err == nil {
		t.Error("all-zero mix should fail")
	}
}

func TestMustMixPanics(t *testing.T) {
	t.Parallel()
	defer func() {
		if recover() == nil {
			t.Error("MustMix on bad input should panic")
		}
	}()
	MustMix()
}
