package workload

import (
	"math/rand"
	"reflect"
	"testing"
)

// collect replays n ops of a freshly built scenario, feeding it a
// scripted displacement trajectory (fire(q) returns the cumulative
// displaced-entries view before op q; nil means static zero feedback).
func collect(s Scenario, n int, fire func(q int) []uint64) []Op {
	ops := make([]Op, 0, n)
	for q := 0; q < n; q++ {
		fb := Feedback{}
		if fire != nil {
			fb.DisplacedEntries = fire(q)
		}
		ops = append(ops, s.Next(q, fb))
	}
	return ops
}

// TestScenarioGoldenReplay pins the repo seeding convention for every
// scenario family: the same constructor parameters (and the same
// feedback trajectory) must replay the op stream bit-identically.
func TestScenarioGoldenReplay(t *testing.T) {
	t.Parallel()
	fire := func(q int) []uint64 {
		// A scripted displacement trajectory for the reactive scenario:
		// the decoy column loses entries at ops 20 and 40.
		d := uint64(0)
		if q >= 40 {
			d = 2
		} else if q >= 20 {
			d = 1
		}
		return []uint64{0, d}
	}
	families := []struct {
		name string
		mk   func() Scenario
		fire func(int) []uint64
	}{
		{"sequential-sweep", func() Scenario { return NewSequentialSweep(10, 99, 3) }, nil},
		{"zipf-skew", func() Scenario { return NewZipfSkew(1.3, 100, 999, 7) }, nil},
		{"periodic-shift", func() Scenario { return NewPeriodicShift(1, 50, 51, 100, 25, 7) }, nil},
		{"dml-burst", func() Scenario { return NewDMLBurst(1, 200, 10, 4, 7) }, nil},
		{"adversarial-displacement", func() Scenario {
			return NewAdversarialDisplacement(AdversarialConfig{
				VictimLo: 1, VictimHi: 100, DecoyLo: 101, DecoyHi: 200,
				Warmup: 5, Burst: 3, Seed: 7,
			})
		}, fire},
	}
	seen := map[string]bool{}
	for _, f := range families {
		s := f.mk()
		if s.Name() != f.name {
			t.Errorf("scenario name %q, want %q", s.Name(), f.name)
		}
		seen[s.Name()] = true
		a := collect(s, 80, f.fire)
		b := collect(f.mk(), 80, f.fire)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: same seed did not replay bit-identically", f.name)
		}
		for i, op := range a {
			if op.Column < 0 || op.Column >= s.Columns() {
				t.Fatalf("%s op %d: column %d outside [0, %d)", f.name, i, op.Column, s.Columns())
			}
		}
	}
	if len(seen) != 5 {
		t.Fatalf("suite covers %d scenario families, want 5", len(seen))
	}
}

// TestSequentialSweepLiteral pins the deterministic sweep literally —
// it involves no RNG, so the exact stream is part of the contract.
func TestSequentialSweepLiteral(t *testing.T) {
	t.Parallel()
	s := NewSequentialSweep(5, 11, 3)
	want := []int64{5, 8, 11, 5, 8, 11}
	for q, w := range want {
		op := s.Next(q, Feedback{})
		if op.Kind != OpQuery || op.Column != 0 || op.Key != w {
			t.Fatalf("op %d = %+v, want query col 0 key %d", q, op, w)
		}
	}
}

// TestDMLBurstShape checks the query/insert/delete cadence and that
// every op consumes exactly one draw (so the stream stays replayable
// regardless of op kind).
func TestDMLBurstShape(t *testing.T) {
	t.Parallel()
	s := NewDMLBurst(1, 100, 4, 2, 3)
	kinds := make([]OpKind, 12)
	for q := range kinds {
		kinds[q] = s.Next(q, Feedback{}).Kind
	}
	want := []OpKind{OpQuery, OpQuery, OpQuery, OpQuery, OpInsert, OpDelete,
		OpQuery, OpQuery, OpQuery, OpQuery, OpInsert, OpDelete}
	if !reflect.DeepEqual(kinds, want) {
		t.Fatalf("cadence = %v, want %v", kinds, want)
	}
}

// TestAdversarialReactsToDisplacement drives the adversary with and
// without displacement feedback: without it the post-warmup stream is
// all victim queries; with it each displacement event triggers exactly
// one burst of decoy queries.
func TestAdversarialReactsToDisplacement(t *testing.T) {
	t.Parallel()
	mk := func() Scenario {
		return NewAdversarialDisplacement(AdversarialConfig{
			VictimLo: 1, VictimHi: 100, DecoyLo: 101, DecoyHi: 200,
			Warmup: 4, Burst: 2, Seed: 11,
		})
	}
	quiet := collect(mk(), 20, nil)
	for q, op := range quiet {
		wantCol := 0
		if q < 4 {
			wantCol = 1
		}
		if op.Column != wantCol {
			t.Fatalf("quiet op %d on column %d, want %d", q, op.Column, wantCol)
		}
	}
	// One displacement of the decoy before op 10: ops 10 and 11 attack.
	attacked := collect(mk(), 20, func(q int) []uint64 {
		if q >= 10 {
			return []uint64{0, 5}
		}
		return []uint64{0, 0}
	})
	for q := 10; q < 12; q++ {
		if attacked[q].Column != 1 {
			t.Errorf("op %d: column %d, want decoy attack", q, attacked[q].Column)
		}
	}
	if attacked[12].Column != 0 {
		t.Errorf("burst did not end: op 12 on column %d", attacked[12].Column)
	}
}

// --- Edge cases the robustness issue calls out ---------------------------

// TestZipfDegenerateDomain pins the n <= 1 guard: uint64(n-1) would
// underflow and draw values far outside [1, n].
func TestZipfDegenerateDomain(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int64{-3, 0, 1} {
		draw := Zipf(1.5, n, 2)
		for i := 0; i < 50; i++ {
			if v := draw(rng); v != 1 {
				t.Fatalf("Zipf(n=%d) drew %d, want constant 1", n, v)
			}
		}
	}
}

// TestShiftingRangeBoundaries checks the exact start/end query numbers:
// q == start is the first shifting query (fraction 0, still range 1)
// and q == end is fully shifted (fraction 1, range 2).
func TestShiftingRangeBoundaries(t *testing.T) {
	t.Parallel()
	f := ShiftingRange(1, 10, 101, 110, 50, 60)
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 100; i++ {
		if v := f(50, rng); v < 1 || v > 10 {
			t.Fatalf("q=start drew %d, want range 1 [1, 10]", v)
		}
		if v := f(60, rng); v < 101 || v > 110 {
			t.Fatalf("q=end drew %d, want range 2 [101, 110]", v)
		}
		if v := f(49, rng); v < 1 || v > 10 {
			t.Fatalf("q=start-1 drew %d, want range 1", v)
		}
		if v := f(61, rng); v < 101 || v > 110 {
			t.Fatalf("q=end+1 drew %d, want range 2", v)
		}
	}
}

// TestMixPickEdgeCases: zero-weight entries are never picked, and a
// single-entry mix always returns index 0.
func TestMixPickEdgeCases(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(9))
	m := MustMix(0, 1, 0)
	for i := 0; i < 1000; i++ {
		if got := m.Pick(rng); got != 1 {
			t.Fatalf("zero-weight column picked: %d", got)
		}
	}
	single := MustMix(2.5)
	if single.Columns() != 1 {
		t.Fatalf("single-entry columns = %d", single.Columns())
	}
	for i := 0; i < 100; i++ {
		if got := single.Pick(rng); got != 0 {
			t.Fatalf("single-entry mix picked %d", got)
		}
	}
}

// TestOpKindString covers the op vocabulary.
func TestOpKindString(t *testing.T) {
	t.Parallel()
	want := map[OpKind]string{OpQuery: "query", OpInsert: "insert", OpDelete: "delete", OpKind(9): "unknown"}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("OpKind(%d).String() = %q, want %q", k, k.String(), s)
		}
	}
}
