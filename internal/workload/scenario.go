// Scenario streams for the workload-robustness suite: five access
// patterns under which deterministic adaptive indexing is known (or
// suspected) to behave very differently from its average-case curves —
// sequential sweeps, Zipf skew, periodic range shift, DML bursts
// mid-convergence, and an adversary that preferentially re-misses
// just-displaced state (cf. Halim et al., "Stochastic Database
// Cracking": deterministic cracking collapses under sequential and
// adversarial patterns). Every scenario is seeded and replays
// bit-identically per the repo seeding convention; a scenario never
// touches the engine itself — it emits Ops that a runner (see
// internal/bench.RunRobustness) applies, and receives adaptive-state
// Feedback before each step so reactive patterns can key off
// displacement events.
package workload

import (
	"fmt"
	"math/rand"
)

// OpKind classifies one scenario step.
type OpKind int

const (
	// OpQuery is a point query: Column = Key.
	OpQuery OpKind = iota
	// OpInsert adds one row whose key columns all hold Key.
	OpInsert
	// OpDelete removes the oldest row this scenario inserted (a no-op
	// while none remain); Column and Key are ignored.
	OpDelete
)

// String renders the op kind.
func (k OpKind) String() string {
	switch k {
	case OpQuery:
		return "query"
	case OpInsert:
		return "insert"
	case OpDelete:
		return "delete"
	default:
		return "unknown"
	}
}

// Op is one scenario step.
type Op struct {
	Kind   OpKind
	Column int   // key column index (OpQuery)
	Key    int64 // query key or inserted key value
}

// Feedback carries the runner's observation of the engine's adaptive
// state back into the scenario before each step. Reactive scenarios
// (AdversarialDisplacement) key off it; the others ignore it.
type Feedback struct {
	// DisplacedEntries[c] is the cumulative number of Index Buffer
	// entries displaced from column c's buffer so far.
	DisplacedEntries []uint64
}

// Scenario produces a seeded, replayable statement stream. Next is
// called with q = 0, 1, 2, ... in order; calling a fresh scenario
// constructed with the same parameters replays the identical stream
// given identical feedback.
type Scenario interface {
	// Name identifies the scenario family in results and baselines.
	Name() string
	// Columns is the number of key columns the scenario touches; the
	// runner indexes exactly that many.
	Columns() int
	// Next returns the q-th op.
	Next(q int, fb Feedback) Op
}

// --- 1. Sequential sweep -------------------------------------------------

// sequentialSweep queries column 0 with keys lo, lo+step, ..., wrapping
// at hi — the fully deterministic pattern stochastic cracking was built
// against. No randomness at all: the replay test pins it literally.
type sequentialSweep struct {
	lo, hi, step int64
}

// NewSequentialSweep sweeps keys over [lo, hi] in step increments,
// wrapping around.
func NewSequentialSweep(lo, hi, step int64) Scenario {
	if hi < lo || step < 1 {
		panic(fmt.Sprintf("workload: sequential sweep [%d, %d] step %d", lo, hi, step))
	}
	return &sequentialSweep{lo: lo, hi: hi, step: step}
}

func (s *sequentialSweep) Name() string { return "sequential-sweep" }
func (s *sequentialSweep) Columns() int { return 1 }
func (s *sequentialSweep) Next(q int, _ Feedback) Op {
	span := (s.hi-s.lo)/s.step + 1
	return Op{Kind: OpQuery, Column: 0, Key: s.lo + (int64(q)%span)*s.step}
}

// --- 2. Zipf skew --------------------------------------------------------

// zipfSkew queries column 0 with Zipf-distributed keys over [lo, hi]:
// a few keys dominate, the tail is long — convergence must come from
// the rare tail misses.
type zipfSkew struct {
	lo   int64
	draw Draw
	rng  *rand.Rand
}

// NewZipfSkew draws keys lo-1+Zipf(skew) over [lo, hi]; skew > 1.
func NewZipfSkew(skew float64, lo, hi int64, seed int64) Scenario {
	return &zipfSkew{lo: lo, draw: Zipf(skew, hi-lo+1, seed), rng: rand.New(rand.NewSource(seed + 1))}
}

func (z *zipfSkew) Name() string { return "zipf-skew" }
func (z *zipfSkew) Columns() int { return 1 }
func (z *zipfSkew) Next(int, Feedback) Op {
	return Op{Kind: OpQuery, Column: 0, Key: z.lo - 1 + z.draw(z.rng)}
}

// --- 3. Periodic range shift --------------------------------------------

// periodicShift alternates uniform draws between two ranges every
// period queries — Fig. 1's shifting workload, but oscillating instead
// of shifting once, so "converged" state keeps being invalidated.
type periodicShift struct {
	a, b   Draw
	period int
	rng    *rand.Rand
}

// NewPeriodicShift queries uniform [lo1, hi1] for period queries, then
// uniform [lo2, hi2] for the next period, and so on.
func NewPeriodicShift(lo1, hi1, lo2, hi2 int64, period int, seed int64) Scenario {
	if period < 1 {
		panic(fmt.Sprintf("workload: periodic shift period %d", period))
	}
	return &periodicShift{
		a: Uniform(lo1, hi1), b: Uniform(lo2, hi2),
		period: period, rng: rand.New(rand.NewSource(seed)),
	}
}

func (p *periodicShift) Name() string { return "periodic-shift" }
func (p *periodicShift) Columns() int { return 1 }
func (p *periodicShift) Next(q int, _ Feedback) Op {
	draw := p.a
	if (q/p.period)%2 == 1 {
		draw = p.b
	}
	return Op{Kind: OpQuery, Column: 0, Key: draw(p.rng)}
}

// --- 4. DML bursts mid-convergence --------------------------------------

// dmlBurst runs uniform queries with periodic insert/delete bursts:
// inserts land on never-buffered pages and deletes invalidate buffered
// entries, so each burst dents coverage mid-convergence.
type dmlBurst struct {
	draw  Draw
	every int
	burst int
	rng   *rand.Rand
}

// NewDMLBurst queries uniform [lo, hi]; after every `every` ops it
// emits a burst of `burst` DML ops (alternating insert and delete, keys
// uniform over the same range).
func NewDMLBurst(lo, hi int64, every, burst int, seed int64) Scenario {
	if every < 1 || burst < 1 {
		panic(fmt.Sprintf("workload: dml burst every %d burst %d", every, burst))
	}
	return &dmlBurst{draw: Uniform(lo, hi), every: every, burst: burst, rng: rand.New(rand.NewSource(seed))}
}

func (d *dmlBurst) Name() string { return "dml-burst" }
func (d *dmlBurst) Columns() int { return 1 }
func (d *dmlBurst) Next(q int, _ Feedback) Op {
	// Positions cycle: `every` queries, then `burst` DML ops.
	pos := q % (d.every + d.burst)
	key := d.draw(d.rng) // always consume exactly one draw per op: replayable
	if pos < d.every {
		return Op{Kind: OpQuery, Column: 0, Key: key}
	}
	if (pos-d.every)%2 == 0 {
		return Op{Kind: OpInsert, Column: 0, Key: key}
	}
	return Op{Kind: OpDelete}
}

// --- 5. Adversarial displacement ----------------------------------------

// AdversarialConfig parameterizes the displacement adversary.
type AdversarialConfig struct {
	// VictimLo/VictimHi is the victim query range on column 0 (keys
	// should miss the partial index so every query is an indexing scan).
	VictimLo, VictimHi int64
	// DecoyLo/DecoyHi is the attack range on column 1.
	DecoyLo, DecoyHi int64
	// Warmup is the number of initial decoy queries that build the decoy
	// buffer before the war starts — without it the victim converges
	// before the space budget binds and no displacement ever happens.
	Warmup int
	// Burst is the number of consecutive decoy queries fired per attack.
	// Bursts keep the decoy buffer hot enough (LRU-K) to win the benefit
	// competition against the victim's partitions.
	Burst int
	// Seed drives the key draws.
	Seed int64
}

// adversarial implements the just-displaced attack: it queries the
// victim column (whose scans must displace the warmed-up decoy buffer
// to make space), and the moment the feedback shows decoy entries were
// displaced it re-misses the decoy — a burst of queries against exactly
// the just-displaced partitions. Rebuilding them forces displacement
// back onto the victim, and against the paper's deterministic stage-2
// victim choice (incomplete partition first) every such displacement
// kills the victim's frontier partition — the very pages the victim's
// scans just rebuilt — so the victim's coverage plateaus indefinitely.
// Randomized victim picks (core.Config.DisplacementJitter) break the
// fixed cycle and let the victim converge.
type adversarial struct {
	cfg    AdversarialConfig
	victim Draw
	decoy  Draw
	rng    *rand.Rand

	seenDisplaced uint64 // last observed decoy displaced-entries count
	pendingBurst  int    // decoy queries still owed for the last attack
}

// NewAdversarialDisplacement builds the displacement adversary; it
// drives two columns (0 = victim, 1 = decoy).
func NewAdversarialDisplacement(cfg AdversarialConfig) Scenario {
	if cfg.Warmup < 0 || cfg.Burst < 1 {
		panic(fmt.Sprintf("workload: adversarial warmup %d burst %d", cfg.Warmup, cfg.Burst))
	}
	return &adversarial{
		cfg:    cfg,
		victim: Uniform(cfg.VictimLo, cfg.VictimHi),
		decoy:  Uniform(cfg.DecoyLo, cfg.DecoyHi),
		rng:    rand.New(rand.NewSource(cfg.Seed)),
	}
}

func (a *adversarial) Name() string { return "adversarial-displacement" }
func (a *adversarial) Columns() int { return 2 }
func (a *adversarial) Next(q int, fb Feedback) Op {
	if q < a.cfg.Warmup {
		return Op{Kind: OpQuery, Column: 1, Key: a.decoy(a.rng)}
	}
	if len(fb.DisplacedEntries) > 1 && fb.DisplacedEntries[1] > a.seenDisplaced {
		// Decoy partitions were just displaced (the victim's scan stole
		// their space): re-miss them immediately. The rebuild displaces
		// the victim's freshly built frontier right back.
		a.seenDisplaced = fb.DisplacedEntries[1]
		a.pendingBurst = a.cfg.Burst
	}
	if a.pendingBurst > 0 {
		a.pendingBurst--
		return Op{Kind: OpQuery, Column: 1, Key: a.decoy(a.rng)}
	}
	return Op{Kind: OpQuery, Column: 0, Key: a.victim(a.rng)}
}
