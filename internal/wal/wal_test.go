package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/storage"
)

func dmlRecord(table string, lsnHint int) *Record {
	img := make([]byte, 64)
	for i := range img {
		img[i] = byte(lsnHint + i)
	}
	return &Record{
		Kind:   KindInsert,
		Table:  table,
		Pages:  lsnHint + 1,
		RID:    storage.RID{Page: storage.PageID(lsnHint), Slot: 3},
		OldRID: storage.InvalidRID,
		Images: []PageImage{{Page: storage.PageID(lsnHint), Data: img}},
	}
}

func TestRoundTrip(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	w, err := Create(dir, Options{Policy: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	var want []Record
	for i := 0; i < 20; i++ {
		var rec *Record
		if i%4 == 3 {
			rec = &Record{
				Kind: KindQuery, Table: "t", Column: 2, Equal: i%2 == 0,
				Lo: storage.Int64Value(int64(i)), Hi: storage.StringValue(fmt.Sprintf("v%d", i)),
			}
		} else {
			rec = dmlRecord("t", i)
		}
		lsn, err := w.Append(rec)
		if err != nil {
			t.Fatal(err)
		}
		if lsn != LSN(i+1) {
			t.Fatalf("lsn = %d, want %d", lsn, i+1)
		}
		if err := w.Commit(lsn); err != nil {
			t.Fatal(err)
		}
		want = append(want, *rec)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	var got []Record
	info, err := Replay(dir, 0, func(r *Record) error {
		got = append(got, *r)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if info.Records != 20 || info.Last != 20 || info.Next != 21 || info.TornBytes != 0 {
		t.Fatalf("info = %+v", info)
	}
	for i := range want {
		g, wnt := got[i], want[i]
		if g.LSN != LSN(i+1) || g.Kind != wnt.Kind || g.Table != wnt.Table ||
			g.Pages != wnt.Pages || g.RID != wnt.RID || g.OldRID != wnt.OldRID ||
			g.Column != wnt.Column || g.Equal != wnt.Equal ||
			!g.Lo.Equal(wnt.Lo) && g.Lo.IsValid() != wnt.Lo.IsValid() {
			t.Fatalf("record %d: got %+v want %+v", i, g, wnt)
		}
		if len(g.Images) != len(wnt.Images) {
			t.Fatalf("record %d: %d images, want %d", i, len(g.Images), len(wnt.Images))
		}
		for j := range g.Images {
			if g.Images[j].Page != wnt.Images[j].Page || string(g.Images[j].Data) != string(wnt.Images[j].Data) {
				t.Fatalf("record %d image %d mismatch", i, j)
			}
		}
	}
}

func TestReplayWatermarkSkips(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	w, err := Create(dir, Options{Policy: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := w.Append(dmlRecord("t", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	var first LSN
	info, err := Replay(dir, 6, func(r *Record) error {
		if first == 0 {
			first = r.LSN
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if first != 7 || info.Records != 4 || info.Skipped != 6 {
		t.Fatalf("first=%d info=%+v", first, info)
	}
}

// TestTornTailRepair crashes mid-record: the log's last frame is cut at
// every possible byte boundary and replay must deliver exactly the
// records before it, truncating the garbage.
func TestTornTailRepair(t *testing.T) {
	t.Parallel()
	build := func(dir string) string {
		w, err := Create(dir, Options{Policy: SyncNever})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			if _, err := w.Append(dmlRecord("t", i)); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		segs, err := listSegments(dir)
		if err != nil || len(segs) != 1 {
			t.Fatalf("segments: %v %v", segs, err)
		}
		return segs[0].path
	}

	ref := t.TempDir()
	path := build(ref)
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Find the offset of the third record by replaying two.
	sizes := []int{}
	off := 0
	for off < len(whole) {
		size := int(uint32(whole[off+4]) | uint32(whole[off+5])<<8 | uint32(whole[off+6])<<16 | uint32(whole[off+7])<<24)
		sizes = append(sizes, 8+size)
		off += 8 + size
	}
	if len(sizes) != 3 {
		t.Fatalf("found %d frames", len(sizes))
	}
	rec3Start := sizes[0] + sizes[1]

	for cut := rec3Start + 1; cut < len(whole); cut += 7 {
		dir := t.TempDir()
		p := build(dir)
		if err := os.Truncate(p, int64(cut)); err != nil {
			t.Fatal(err)
		}
		n := 0
		info, err := Replay(dir, 0, func(*Record) error { n++; return nil })
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if n != 2 || info.Last != 2 || info.TornBytes != int64(cut-rec3Start) {
			t.Fatalf("cut %d: n=%d info=%+v", cut, n, info)
		}
		// The repair is durable: a second replay sees a clean log.
		info2, err := Replay(dir, 0, func(*Record) error { return nil })
		if err != nil || info2.TornBytes != 0 || info2.Last != 2 {
			t.Fatalf("cut %d second replay: %+v %v", cut, info2, err)
		}
	}
}

// TestCorruptTailRepair flips bytes inside the final record — the CRC
// must reject it and replay must truncate.
func TestCorruptTailRepair(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	w, err := Create(dir, Options{Policy: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := w.Append(dmlRecord("t", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := listSegments(dir)
	data, err := os.ReadFile(segs[0].path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-5] ^= 0xff
	if err := os.WriteFile(segs[0].path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	n := 0
	info, err := Replay(dir, 0, func(*Record) error { n++; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 || info.Last != 2 || info.TornBytes == 0 {
		t.Fatalf("n=%d info=%+v", n, info)
	}
}

// TestCorruptMiddleSegmentFails: corruption before the final segment
// would lose acknowledged records — replay must refuse, not repair.
func TestCorruptMiddleSegmentFails(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	w, err := Create(dir, Options{Policy: SyncNever, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if _, err := w.Append(dmlRecord("t", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := listSegments(dir)
	if len(segs) < 3 {
		t.Fatalf("only %d segments; rotation broken?", len(segs))
	}
	data, err := os.ReadFile(segs[0].path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(segs[0].path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Replay(dir, 0, func(*Record) error { return nil }); err == nil {
		t.Fatal("replay of corrupt middle segment should fail")
	}
}

func TestSegmentRotationAndTruncate(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	w, err := Create(dir, Options{Policy: SyncNever, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if _, err := w.Append(dmlRecord("t", i)); err != nil {
			t.Fatal(err)
		}
	}
	segs, _ := listSegments(dir)
	if len(segs) < 4 {
		t.Fatalf("%d segments, want >= 4", len(segs))
	}
	// Truncating to LSN 20 must keep every record > 20 replayable.
	if err := w.TruncateTo(20); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	after, _ := listSegments(dir)
	if len(after) >= len(segs) {
		t.Fatalf("truncate removed nothing: %d -> %d segments", len(segs), len(after))
	}
	var lsns []LSN
	if _, err := Replay(dir, 20, func(r *Record) error { lsns = append(lsns, r.LSN); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(lsns) != 20 || lsns[0] != 21 || lsns[len(lsns)-1] != 40 {
		t.Fatalf("replayed %v", lsns)
	}
}

func TestOpenContinuesLSNs(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	w, err := Create(dir, Options{Policy: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := w.Append(dmlRecord("t", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	info, err := Replay(dir, 0, func(*Record) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	w2, err := Open(dir, Options{Policy: SyncNever}, info.Next)
	if err != nil {
		t.Fatal(err)
	}
	lsn, err := w2.Append(dmlRecord("t", 99))
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 6 {
		t.Fatalf("continued lsn = %d, want 6", lsn)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	n := 0
	if _, err := Replay(dir, 0, func(*Record) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 6 {
		t.Fatalf("replayed %d records, want 6", n)
	}
}

// TestGroupCommitDurability: concurrent committers under SyncBatch all
// return with their record durable, and the fsync count stays well
// below one per commit.
func TestGroupCommitDurability(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	w, err := Create(dir, Options{Policy: SyncBatch, SyncDelay: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	const workers, per = 8, 25
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				lsn, err := w.Append(dmlRecord("t", g*per+i))
				if err != nil {
					t.Error(err)
					return
				}
				if err := w.Commit(lsn); err != nil {
					t.Error(err)
					return
				}
				if w.DurableLSN() < lsn {
					t.Errorf("commit returned before durable: %d < %d", w.DurableLSN(), lsn)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	st := w.Stats()
	if st.Appends != workers*per {
		t.Fatalf("appends = %d", st.Appends)
	}
	if st.Syncs >= st.Commits {
		t.Errorf("group commit did not batch: %d syncs for %d commits", st.Syncs, st.Commits)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	n := 0
	if _, err := Replay(dir, 0, func(*Record) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != workers*per {
		t.Fatalf("replayed %d, want %d", n, workers*per)
	}
}

func TestSyncAlwaysOneFsyncPerCommit(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	w, err := Create(dir, Options{Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		lsn, err := w.Append(dmlRecord("t", i))
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Commit(lsn); err != nil {
			t.Fatal(err)
		}
	}
	if st := w.Stats(); st.Syncs < 10 {
		t.Errorf("SyncAlways issued %d fsyncs for 10 commits", st.Syncs)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestCreateClearsStaleSegments(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	stale := filepath.Join(dir, segName(1))
	if err := os.WriteFile(stale, []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	w, err := Create(dir, Options{Policy: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	info, err := Replay(dir, 0, func(*Record) error { return nil })
	if err != nil || info.Records != 0 {
		t.Fatalf("stale log not cleared: %+v %v", info, err)
	}
}

// TestCrashLoopReopenKeepsAcknowledgedRecords is the crash / restart /
// no-appends / crash / restart sequence: the second Open lands on a
// tail segment whose first LSN equals the resume point. A duplicate
// w.segs entry there let TruncateTo read the duplicate as a successor
// and unlink the live segment, so every later acknowledged commit went
// to an unlinked inode and vanished on the next replay.
func TestCrashLoopReopenKeepsAcknowledgedRecords(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	opts := Options{Policy: SyncAlways}
	w, err := Create(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		lsn, err := w.Append(dmlRecord("t", i))
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Commit(lsn); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart 1: replay, reopen, crash again without appending — the
	// fresh tail segment stays empty with first LSN == next.
	info, err := Replay(dir, 0, func(*Record) error { return nil })
	if err != nil || info.Next != 4 {
		t.Fatalf("replay 1: %+v %v", info, err)
	}
	w, err = Open(dir, opts, info.Next)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart 2: reopen at the same LSN, checkpoint-truncate at the
	// replayed watermark, then append and acknowledge more records.
	info, err = Replay(dir, 0, func(*Record) error { return nil })
	if err != nil || info.Records != 3 || info.Next != 4 {
		t.Fatalf("replay 2: %+v %v", info, err)
	}
	w, err = Open(dir, opts, info.Next)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.TruncateTo(info.Next - 1); err != nil {
		t.Fatal(err)
	}
	for i := 3; i < 5; i++ {
		lsn, err := w.Append(dmlRecord("t", i))
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Commit(lsn); err != nil {
			t.Fatal(err)
		}
	}
	// Crash: no Close. The acknowledged records must be on disk.
	var lsns []LSN
	info, err = Replay(dir, 3, func(r *Record) error {
		lsns = append(lsns, r.LSN)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(lsns) != 2 || lsns[0] != 4 || lsns[1] != 5 {
		t.Fatalf("replay after crash loop delivered %v, want [4 5] (info %+v)", lsns, info)
	}
}

// TestSyncDuringRotationNotSticky hammers explicit Syncs and group
// commits against appends that constantly rotate segments. A Sync that
// loses the race — its captured file is rotated away and closed before
// the fsync — must not record the resulting ErrClosed as the sticky
// syncErr: the rotation already made those bytes durable.
func TestSyncDuringRotationNotSticky(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	w, err := Create(dir, Options{Policy: SyncBatch, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errCh := make(chan error, 64)
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 300; i++ {
			lsn, err := w.Append(dmlRecord("t", i))
			if err != nil {
				errCh <- err
				return
			}
			if err := w.Commit(lsn); err != nil {
				errCh <- err
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 300; i++ {
			if err := w.Sync(); err != nil {
				errCh <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatalf("sync/rotation race surfaced an error: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	info, err := Replay(dir, 0, func(*Record) error { return nil })
	if err != nil || info.Records != 300 {
		t.Fatalf("replay: %+v %v", info, err)
	}
}

// TestSyncNeverCommitReachesOSCache: SyncNever's contract is that a
// committed record survives a process crash (only an OS crash may lose
// it), so Commit must at least flush the user-space buffer.
func TestSyncNeverCommitReachesOSCache(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	w, err := Create(dir, Options{Policy: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	lsn, err := w.Append(dmlRecord("t", 0))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(lsn); err != nil {
		t.Fatal(err)
	}
	// Crash: no Close, no Sync. The record must be visible in the file.
	var got int
	info, err := Replay(dir, 0, func(*Record) error { got++; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 || info.Last != 1 {
		t.Fatalf("after SyncNever commit + process crash: %d records (info %+v), want 1", got, info)
	}
	w.Close()
}

// TestTelemetryCountsMatchStats pins the /metrics acceptance contract:
// under group commit the fsync-latency histogram observes exactly once
// per counted fsync, and the batch-size histogram's total equals the
// records made durable.
func TestTelemetryCountsMatchStats(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	w, err := Create(dir, Options{Policy: SyncBatch, SyncDelay: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	const workers, per = 8, 25
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				lsn, err := w.Append(dmlRecord("t", g*per+i))
				if err != nil {
					t.Error(err)
					return
				}
				if err := w.Commit(lsn); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	tel := w.Telemetry()
	if tel.Appends != workers*per || tel.Commits != workers*per {
		t.Fatalf("counters wrong: %+v", tel.Stats)
	}
	if got, want := tel.FsyncLatency.Count, int(tel.Syncs); got != want {
		t.Errorf("fsync histogram observed %d times, Stats.Syncs = %d", got, want)
	}
	if tel.FsyncLatency.Max < (time.Millisecond).Seconds() {
		t.Errorf("fsync latency max %.6fs below the simulated 1ms device delay", tel.FsyncLatency.Max)
	}
	if got := uint64(tel.CommitBatch.Sum); got != uint64(tel.DurableLSN) {
		t.Errorf("batch-size histogram sums to %d, durable LSN is %d", got, tel.DurableLSN)
	}
	if tel.CommitBatch.Count == 0 || tel.LastBatch == 0 {
		t.Errorf("batch telemetry empty: %+v", tel)
	}
	if tel.SyncErr != "" {
		t.Errorf("healthy writer reports sync error %q", tel.SyncErr)
	}
	if tel.ActiveSegments < 1 {
		t.Errorf("active segments = %d, want >= 1", tel.ActiveSegments)
	}
	if w.SyncError() != nil {
		t.Errorf("SyncError = %v on a healthy writer", w.SyncError())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}
