// Package wal is the engine's write-ahead log: segmented append-only
// files of CRC-framed records that make DataDir-backed tables
// crash-consistent. Every DML operation appends a record carrying both
// its logical description and the full images of the heap pages it
// dirtied; recovery (ARIES-style redo, physical variant) replays the
// images in LSN order on top of the last checkpoint, so redo is
// idempotent regardless of which dirty pages the buffer pool had
// flushed before the crash. Query records — logical descriptors with no
// images — ride along so recovery can replay the recent workload tail
// through the normal query path and re-warm the volatile Index Buffers
// (the paper keeps them recovery-free by design; the log merely
// remembers what the workload was asking for).
//
// Durability is governed by a SyncPolicy: SyncBatch (the default) is
// group commit — concurrent committers share one fsync issued by a
// background flusher, so throughput scales with the commit concurrency
// — while SyncAlways pays one fsync per commit and SyncNever leaves
// syncing to the OS (and to checkpoints, which always fsync).
//
// On-disk format, little-endian throughout:
//
//	segment file  <dir>/wal-<firstLSN:016x>.seg
//	frame         crc32c(u32) | payloadLen(u32) | payload
//	payload       lsn(u64) | kind(u8) | tableLen(u16) | table | body
//
// The CRC covers the payload only; a torn or corrupt frame at the tail
// of the last segment is repaired (truncated) during replay, which is
// exactly the crash case: the record was never acknowledged.
package wal

import (
	"encoding/binary"
	"fmt"

	"repro/internal/storage"
)

// LSN is a log sequence number. LSNs start at 1 and increase by one per
// appended record; 0 means "before the first record" (an empty log's
// checkpoint position).
type LSN uint64

// Kind discriminates record types.
type Kind uint8

const (
	// KindInsert logs one tuple insert: RID is the assigned location,
	// Images holds the dirtied heap page.
	KindInsert Kind = 1
	// KindDelete logs one tuple delete at RID.
	KindDelete Kind = 2
	// KindUpdate logs one tuple update: OldRID is the pre-image
	// location, RID the (possibly relocated) result; Images holds one
	// or two dirtied pages.
	KindUpdate Kind = 3
	// KindQuery logs one query descriptor (equal or range) for
	// post-recovery buffer re-warming. Query records carry no page
	// images and are never needed for redo correctness.
	KindQuery Kind = 4
)

func (k Kind) String() string {
	switch k {
	case KindInsert:
		return "insert"
	case KindDelete:
		return "delete"
	case KindUpdate:
		return "update"
	case KindQuery:
		return "query"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// PageImage is the full post-operation image of one heap page.
type PageImage struct {
	Page storage.PageID
	Data []byte
}

// Record is one log record. DML kinds use Pages/RID/OldRID/Images;
// KindQuery uses Column/Equal/Lo/Hi.
type Record struct {
	LSN   LSN
	Kind  Kind
	Table string

	// Pages is the table's heap page count after the operation, so
	// recovery knows the final heap extent without probing the file.
	Pages  int
	RID    storage.RID
	OldRID storage.RID
	Images []PageImage

	Column int
	Equal  bool
	Lo, Hi storage.Value
}

// maxPayload bounds a decoded frame's claimed payload size, so a torn
// length field cannot trigger a giant allocation. Two 8 KiB page images
// plus slack is the largest legitimate record by far.
const maxPayload = 1 << 20

// value kind tags in the payload encoding.
const (
	valInvalid = 0
	valInt64   = 1
	valString  = 2
)

// appendValue encodes a storage.Value.
func appendValue(buf []byte, v storage.Value) []byte {
	switch v.Kind() {
	case storage.KindInt64:
		buf = append(buf, valInt64)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(v.Int64()))
	case storage.KindString:
		s := v.Str()
		buf = append(buf, valString)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s)))
		buf = append(buf, s...)
	default:
		buf = append(buf, valInvalid)
	}
	return buf
}

// readValue decodes a storage.Value, returning the remaining buffer.
func readValue(buf []byte) (storage.Value, []byte, error) {
	if len(buf) < 1 {
		return storage.Value{}, nil, fmt.Errorf("wal: truncated value")
	}
	tag := buf[0]
	buf = buf[1:]
	switch tag {
	case valInvalid:
		return storage.Value{}, buf, nil
	case valInt64:
		if len(buf) < 8 {
			return storage.Value{}, nil, fmt.Errorf("wal: truncated int64 value")
		}
		v := storage.Int64Value(int64(binary.LittleEndian.Uint64(buf)))
		return v, buf[8:], nil
	case valString:
		if len(buf) < 4 {
			return storage.Value{}, nil, fmt.Errorf("wal: truncated string length")
		}
		n := int(binary.LittleEndian.Uint32(buf))
		buf = buf[4:]
		if n < 0 || len(buf) < n {
			return storage.Value{}, nil, fmt.Errorf("wal: truncated string value")
		}
		return storage.StringValue(string(buf[:n])), buf[n:], nil
	default:
		return storage.Value{}, nil, fmt.Errorf("wal: unknown value tag %d", tag)
	}
}

func appendRID(buf []byte, rid storage.RID) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(rid.Page))
	return binary.LittleEndian.AppendUint16(buf, rid.Slot)
}

func readRID(buf []byte) (storage.RID, []byte, error) {
	if len(buf) < 6 {
		return storage.RID{}, nil, fmt.Errorf("wal: truncated RID")
	}
	rid := storage.RID{
		Page: storage.PageID(binary.LittleEndian.Uint32(buf)),
		Slot: binary.LittleEndian.Uint16(buf[4:]),
	}
	return rid, buf[6:], nil
}

// encodePayload appends the record's payload (everything the CRC
// covers) to buf.
func encodePayload(buf []byte, r *Record) ([]byte, error) {
	if len(r.Table) > 1<<16-1 {
		return nil, fmt.Errorf("wal: table name of %d bytes", len(r.Table))
	}
	buf = binary.LittleEndian.AppendUint64(buf, uint64(r.LSN))
	buf = append(buf, byte(r.Kind))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(r.Table)))
	buf = append(buf, r.Table...)
	switch r.Kind {
	case KindInsert, KindDelete, KindUpdate:
		buf = binary.LittleEndian.AppendUint32(buf, uint32(r.Pages))
		buf = appendRID(buf, r.RID)
		buf = appendRID(buf, r.OldRID)
		if len(r.Images) > 1<<16-1 {
			return nil, fmt.Errorf("wal: %d page images in one record", len(r.Images))
		}
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(r.Images)))
		for _, im := range r.Images {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(im.Page))
			buf = binary.LittleEndian.AppendUint32(buf, uint32(len(im.Data)))
			buf = append(buf, im.Data...)
		}
	case KindQuery:
		buf = binary.LittleEndian.AppendUint32(buf, uint32(r.Column))
		if r.Equal {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
		buf = appendValue(buf, r.Lo)
		buf = appendValue(buf, r.Hi)
	default:
		return nil, fmt.Errorf("wal: cannot encode record of kind %d", r.Kind)
	}
	return buf, nil
}

// decodePayload parses one payload into r.
func decodePayload(buf []byte, r *Record) error {
	if len(buf) < 11 {
		return fmt.Errorf("wal: payload of %d bytes is too short", len(buf))
	}
	r.LSN = LSN(binary.LittleEndian.Uint64(buf))
	r.Kind = Kind(buf[8])
	nameLen := int(binary.LittleEndian.Uint16(buf[9:]))
	buf = buf[11:]
	if len(buf) < nameLen {
		return fmt.Errorf("wal: truncated table name")
	}
	r.Table = string(buf[:nameLen])
	buf = buf[nameLen:]
	switch r.Kind {
	case KindInsert, KindDelete, KindUpdate:
		if len(buf) < 4+6+6+2 {
			return fmt.Errorf("wal: truncated DML record")
		}
		r.Pages = int(binary.LittleEndian.Uint32(buf))
		buf = buf[4:]
		var err error
		if r.RID, buf, err = readRID(buf); err != nil {
			return err
		}
		if r.OldRID, buf, err = readRID(buf); err != nil {
			return err
		}
		n := int(binary.LittleEndian.Uint16(buf))
		buf = buf[2:]
		r.Images = make([]PageImage, 0, n)
		for i := 0; i < n; i++ {
			if len(buf) < 8 {
				return fmt.Errorf("wal: truncated page image header")
			}
			page := storage.PageID(binary.LittleEndian.Uint32(buf))
			size := int(binary.LittleEndian.Uint32(buf[4:]))
			buf = buf[8:]
			if size < 0 || len(buf) < size {
				return fmt.Errorf("wal: truncated page image")
			}
			img := make([]byte, size)
			copy(img, buf[:size])
			buf = buf[size:]
			r.Images = append(r.Images, PageImage{Page: page, Data: img})
		}
	case KindQuery:
		if len(buf) < 5 {
			return fmt.Errorf("wal: truncated query record")
		}
		r.Column = int(binary.LittleEndian.Uint32(buf))
		r.Equal = buf[4] != 0
		buf = buf[5:]
		var err error
		if r.Lo, buf, err = readValue(buf); err != nil {
			return err
		}
		if r.Hi, buf, err = readValue(buf); err != nil {
			return err
		}
	default:
		return fmt.Errorf("wal: unknown record kind %d", r.Kind)
	}
	if len(buf) != 0 {
		return fmt.Errorf("wal: %d trailing bytes after record", len(buf))
	}
	return nil
}
