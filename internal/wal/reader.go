package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
)

// ReplayInfo summarizes one recovery pass over the log.
type ReplayInfo struct {
	// Last is the highest valid LSN seen (0 if the log is empty).
	Last LSN
	// Next is the LSN the writer should continue from.
	Next LSN
	// Records is the number of records delivered to the callback
	// (records at or below the after watermark are validated but not
	// delivered).
	Records int
	// Skipped counts validated records at or below the watermark.
	Skipped int
	// TornBytes is the size of the invalid tail truncated from the last
	// segment — a record that was mid-write at the crash.
	TornBytes int64
}

// Replay scans every segment in dir in LSN order, validates frames, and
// invokes fn for each record with LSN > after. A torn or corrupt tail
// in the final segment is truncated away (the record was never
// acknowledged — this is the crash case Replay exists for); corruption
// anywhere else is an error, since acknowledged records would be lost.
// A missing directory is an empty log.
func Replay(dir string, after LSN, fn func(*Record) error) (ReplayInfo, error) {
	info := ReplayInfo{Last: after, Next: after + 1}
	segs, err := listSegments(dir)
	if err != nil {
		return info, err
	}
	for i, s := range segs {
		last := i == len(segs)-1
		// A segment is entirely below the watermark when its successor
		// starts at or before it; skip without reading.
		if !last && segs[i+1].first <= after+1 {
			continue
		}
		if err := replaySegment(s, after, last, fn, &info); err != nil {
			return info, err
		}
	}
	if info.Next <= info.Last {
		info.Next = info.Last + 1
	}
	return info, nil
}

// replaySegment validates and applies one segment file.
func replaySegment(s segment, after LSN, allowTorn bool, fn func(*Record) error, info *ReplayInfo) error {
	data, err := os.ReadFile(s.path)
	if err != nil {
		return fmt.Errorf("wal: read segment: %w", err)
	}
	off := 0
	truncateAt := -1
	for off < len(data) {
		rest := data[off:]
		if len(rest) < 8 {
			truncateAt = off
			break
		}
		wantCRC := binary.LittleEndian.Uint32(rest[0:])
		size := int(binary.LittleEndian.Uint32(rest[4:]))
		if size <= 0 || size > maxPayload || len(rest) < 8+size {
			truncateAt = off
			break
		}
		payload := rest[8 : 8+size]
		if crc32.Checksum(payload, crcTable) != wantCRC {
			truncateAt = off
			break
		}
		var rec Record
		if err := decodePayload(payload, &rec); err != nil {
			// The frame passed its CRC but does not parse: structural
			// corruption, not a torn write. Never repair silently.
			return fmt.Errorf("wal: segment %s offset %d: %w", s.path, off, err)
		}
		if rec.LSN <= info.Last && rec.LSN > after {
			return fmt.Errorf("wal: segment %s: LSN %d out of order (already at %d)", s.path, rec.LSN, info.Last)
		}
		if rec.LSN > after {
			if err := fn(&rec); err != nil {
				return err
			}
			info.Records++
			info.Last = rec.LSN
		} else {
			info.Skipped++
		}
		off += 8 + size
	}
	if truncateAt < 0 {
		return nil
	}
	if !allowTorn {
		return fmt.Errorf("wal: segment %s: invalid frame at offset %d in a non-final segment", s.path, truncateAt)
	}
	info.TornBytes += int64(len(data) - truncateAt)
	f, err := os.OpenFile(s.path, os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: repair torn tail: %w", err)
	}
	err = f.Truncate(int64(truncateAt))
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("wal: repair torn tail: %w", err)
	}
	return nil
}
