package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
)

// SyncPolicy selects how Commit makes appended records durable.
type SyncPolicy int

const (
	// SyncBatch is group commit: Commit wakes a background flusher and
	// waits for the one fsync that covers every record appended so far.
	// While an fsync is in flight, arriving commits pile onto the next
	// one, so the fsync cost amortizes over the commit concurrency.
	SyncBatch SyncPolicy = iota
	// SyncAlways issues one fsync per Commit — the classical
	// durability-first policy, and the benchmark's contrast arm.
	SyncAlways
	// SyncNever leaves syncing to the OS and to explicit Sync calls
	// (checkpoints always fsync). Commit returns as soon as the record
	// is in the OS page cache; an OS crash can lose the tail.
	SyncNever
)

func (p SyncPolicy) String() string {
	switch p {
	case SyncBatch:
		return "batch"
	case SyncAlways:
		return "always"
	case SyncNever:
		return "never"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// Options configures a Writer. The zero value is usable: group commit,
// 4 MiB segments, no artificial sync latency.
type Options struct {
	// Policy selects the Commit durability protocol.
	Policy SyncPolicy
	// SegmentBytes rotates to a fresh segment file once the current one
	// exceeds this size. Zero means DefaultSegmentBytes.
	SegmentBytes int
	// SyncDelay, when positive, charges every fsync with an additional
	// sleep — the same simulated-device convention as buffer.SimDisk's
	// latencies, so group-commit benchmarks take a real device's shape
	// even on a RAM-backed filesystem.
	SyncDelay time.Duration
}

// DefaultSegmentBytes is the segment rotation threshold.
const DefaultSegmentBytes = 4 << 20

// Stats is a snapshot of writer activity.
type Stats struct {
	Appends  uint64 // records appended
	Commits  uint64 // Commit calls
	Syncs    uint64 // fsyncs issued
	Bytes    uint64 // payload+frame bytes appended
	Segments uint64 // segment files created
	Removed  uint64 // segment files removed by TruncateTo
}

// Telemetry is the writer's full observability snapshot: the raw
// counters plus the latency/batch distributions and the health facts
// the /healthz and /metrics surfaces expose.
type Telemetry struct {
	Stats
	// ActiveSegments is the number of live segment files (the open one
	// plus any not yet reclaimed by TruncateTo) — the segment backlog a
	// stalled checkpointer lets grow.
	ActiveSegments int
	// AppendedLSN / DurableLSN bound the volume of acknowledged-but-not-
	// yet-durable records (zero under SyncAlways, the group under
	// SyncBatch while a flush is in flight).
	AppendedLSN LSN
	DurableLSN  LSN
	// LastBatch is the size (in records) of the most recent durable
	// advance — the latest group-commit batch.
	LastBatch uint64
	// FsyncLatency summarizes the distribution of fsync wall times
	// (including any simulated SyncDelay). Count matches Stats.Syncs.
	FsyncLatency metrics.HistogramStats
	// CommitBatch summarizes the group-commit batch sizes: records made
	// durable per fsync-driven watermark advance.
	CommitBatch metrics.HistogramStats
	// SyncErr is the sticky sync error, if any ("" when healthy). Once
	// set the writer refuses further syncs; commits fail fast.
	SyncErr string
}

// Writer appends records to the segmented log. It is safe for
// concurrent use: Append serializes on an internal mutex, Commit blocks
// only on durability (per the policy), and fsyncs never hold the append
// lock, so appends proceed while a sync is in flight — the property
// group commit is built on.
type Writer struct {
	dir  string
	opts Options

	mu       sync.Mutex // guards the fields below: append order, rotation
	f        *os.File
	buf      *bufio.Writer
	segBytes int
	nextLSN  LSN
	appended LSN
	scratch  []byte
	segs     []segment // live segments, oldest first; last is open
	closed   bool

	closeOnce atomic.Bool

	syncMu  sync.Mutex // serializes fsyncs; never held with mu or condMu
	durable atomic.Uint64

	// group commit: Commit signals flushCh (capacity 1) and waits on
	// cond until durable covers its LSN; the flusher loops on flushCh.
	flushCh chan struct{}
	quit    chan struct{}
	done    chan struct{}
	condMu  sync.Mutex
	cond    *sync.Cond
	syncErr error // sticky; guarded by condMu

	appends  atomic.Uint64
	commits  atomic.Uint64
	syncs    atomic.Uint64
	bytes    atomic.Uint64
	segsMade atomic.Uint64
	removed  atomic.Uint64

	// lastBatch is the record count of the most recent durable advance;
	// fsyncLat and batchSize are bounded reservoirs (internally
	// synchronized) feeding the aib_wal_* summary families.
	lastBatch atomic.Uint64
	fsyncLat  *metrics.Histogram
	batchSize *metrics.Histogram
}

// segment is one live log file.
type segment struct {
	path  string
	first LSN // LSN of the first record the segment may contain
}

const segPrefix = "wal-"
const segSuffix = ".seg"

func segName(first LSN) string {
	return fmt.Sprintf("%s%016x%s", segPrefix, uint64(first), segSuffix)
}

// parseSegName extracts the first-LSN from a segment file name.
func parseSegName(name string) (LSN, bool) {
	if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	hex := strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix)
	v, err := strconv.ParseUint(hex, 16, 64)
	if err != nil {
		return 0, false
	}
	return LSN(v), true
}

// listSegments returns dir's segment files sorted by first LSN.
func listSegments(dir string) ([]segment, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("wal: list segments: %w", err)
	}
	var segs []segment
	for _, e := range ents {
		if first, ok := parseSegName(e.Name()); ok {
			segs = append(segs, segment{path: filepath.Join(dir, e.Name()), first: first})
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].first < segs[j].first })
	return segs, nil
}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Create initializes a fresh log in dir, removing any existing
// segments — the "new database" path, mirroring how table page files
// are truncated on creation.
func Create(dir string, opts Options) (*Writer, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: create dir: %w", err)
	}
	old, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	for _, s := range old {
		if err := os.Remove(s.path); err != nil {
			return nil, fmt.Errorf("wal: clear stale segment: %w", err)
		}
	}
	return newWriter(dir, opts, 1)
}

// Open attaches a writer to an existing log directory, appending from
// next (one past the last replayed LSN). A fresh segment is started;
// earlier segments stay in place until a checkpoint truncates them.
func Open(dir string, opts Options, next LSN) (*Writer, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: open dir: %w", err)
	}
	if next < 1 {
		next = 1
	}
	return newWriter(dir, opts, next)
}

func newWriter(dir string, opts Options, next LSN) (*Writer, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	w := &Writer{
		dir:     dir,
		opts:    opts,
		nextLSN: next,
		flushCh: make(chan struct{}, 1),
		quit:    make(chan struct{}),
		done:    make(chan struct{}),
		// Bounded reservoirs so a long-lived writer's memory stays flat;
		// fixed seeds keep runs reproducible (repo seeding convention).
		fsyncLat:  metrics.NewReservoirHistogram(4096, 41),
		batchSize: metrics.NewReservoirHistogram(4096, 43),
	}
	w.cond = sync.NewCond(&w.condMu)
	w.appended = next - 1
	w.durable.Store(uint64(next - 1))
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	// Drop tail segments that start at or past the resume point: they
	// hold no acknowledged records (replay advances next past every
	// valid LSN, so anything left in them is a torn tail). Reusing the
	// same first-LSN file would also put a duplicate entry in w.segs,
	// which TruncateTo would read as a successor and unlink the live
	// segment — the crash / reopen-with-no-appends / crash loop case.
	for len(segs) > 0 && segs[len(segs)-1].first >= next {
		s := segs[len(segs)-1]
		if err := os.Remove(s.path); err != nil && !os.IsNotExist(err) {
			return nil, fmt.Errorf("wal: remove stale tail segment: %w", err)
		}
		segs = segs[:len(segs)-1]
	}
	w.segs = segs
	if err := w.openSegmentLocked(next); err != nil {
		return nil, err
	}
	go w.flusher()
	return w, nil
}

// openSegmentLocked starts a fresh segment whose first record will be
// first. Caller holds mu (or is the constructor).
func (w *Writer) openSegmentLocked(first LSN) error {
	path := filepath.Join(w.dir, segName(first))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: open segment: %w", err)
	}
	if err := syncDir(w.dir); err != nil {
		f.Close()
		return err
	}
	w.f = f
	w.buf = bufio.NewWriterSize(f, 64<<10)
	w.segBytes = 0
	w.segs = append(w.segs, segment{path: path, first: first})
	w.segsMade.Add(1)
	return nil
}

// syncDir fsyncs a directory so file creations and removals inside it
// are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: open dir for sync: %w", err)
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("wal: sync dir: %w", err)
	}
	return nil
}

// Append encodes the record, assigns it the next LSN and writes it to
// the current segment (buffered; durability comes from Commit or Sync).
// The assigned LSN is returned and also stored in rec.LSN.
func (w *Writer) Append(rec *Record) (LSN, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return 0, fmt.Errorf("wal: writer is closed")
	}
	if w.segBytes >= w.opts.SegmentBytes {
		if err := w.rotateLocked(); err != nil {
			return 0, err
		}
	}
	rec.LSN = w.nextLSN
	payload, err := encodePayload(w.scratch[:0], rec)
	if err != nil {
		return 0, err
	}
	w.scratch = payload // reuse the grown buffer next time
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], crc32.Checksum(payload, crcTable))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(payload)))
	if _, err := w.buf.Write(hdr[:]); err != nil {
		return 0, fmt.Errorf("wal: append: %w", err)
	}
	if _, err := w.buf.Write(payload); err != nil {
		return 0, fmt.Errorf("wal: append: %w", err)
	}
	w.nextLSN++
	w.appended = rec.LSN
	w.segBytes += len(hdr) + len(payload)
	w.appends.Add(1)
	w.bytes.Add(uint64(len(hdr) + len(payload)))
	return rec.LSN, nil
}

// rotateLocked finishes the current segment (flushed and fsynced, so
// the durable watermark never points past un-synced bytes in an
// abandoned file) and opens the next one.
func (w *Writer) rotateLocked() error {
	if err := w.buf.Flush(); err != nil {
		return fmt.Errorf("wal: rotate flush: %w", err)
	}
	start := time.Now()
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("wal: rotate sync: %w", err)
	}
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("wal: rotate close: %w", err)
	}
	w.syncs.Add(1)
	w.fsyncLat.Observe(time.Since(start).Seconds())
	return w.openSegmentLocked(w.nextLSN)
}

// Commit blocks until the record at lsn is durable per the policy.
func (w *Writer) Commit(lsn LSN) error {
	w.commits.Add(1)
	switch w.opts.Policy {
	case SyncNever:
		// No fsync, but the policy's contract is "in the OS page cache":
		// push the user-space buffer out so only an OS crash — not a mere
		// process crash — can lose the record.
		w.mu.Lock()
		defer w.mu.Unlock()
		if w.closed {
			return fmt.Errorf("wal: writer is closed")
		}
		if err := w.buf.Flush(); err != nil {
			return fmt.Errorf("wal: commit flush: %w", err)
		}
		return nil
	case SyncAlways:
		return w.Sync()
	default: // SyncBatch
		if LSN(w.durable.Load()) >= lsn {
			return nil
		}
		select {
		case w.flushCh <- struct{}{}:
		default: // a flush signal is already pending
		}
		w.condMu.Lock()
		defer w.condMu.Unlock()
		for LSN(w.durable.Load()) < lsn {
			if w.syncErr != nil {
				return w.syncErr
			}
			w.cond.Wait()
		}
		return nil
	}
}

// Sync flushes buffered appends and fsyncs the current segment,
// advancing the durable watermark. Checkpoints call it regardless of
// policy: the log must be durable before page flushes may proceed.
func (w *Writer) Sync() error {
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	w.condMu.Lock()
	stuck := w.syncErr
	w.condMu.Unlock()
	if stuck != nil {
		return stuck
	}

	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return fmt.Errorf("wal: writer is closed")
	}
	target := w.appended
	err := w.buf.Flush()
	f := w.f
	w.mu.Unlock()

	rotated := false
	start := time.Now()
	if err == nil {
		if serr := f.Sync(); serr != nil {
			if errors.Is(serr, os.ErrClosed) {
				// A concurrent Append rotated this segment away after mu
				// was released. rotateLocked flushes and fsyncs before
				// closing, and our own buffered bytes were flushed into f
				// under mu above, so everything up to target is already
				// durable — not a fault, and it must not poison syncErr.
				rotated = true
			} else {
				err = serr
			}
		}
	}
	if err != nil {
		werr := fmt.Errorf("wal: sync: %w", err)
		w.condMu.Lock()
		w.syncErr = werr
		w.cond.Broadcast()
		w.condMu.Unlock()
		return werr
	}
	if !rotated {
		w.syncs.Add(1)
		if d := w.opts.SyncDelay; d > 0 {
			time.Sleep(d)
		}
		// SyncDelay is part of the simulated device, so it belongs in the
		// observed latency just as it does in the benchmark's shape.
		w.fsyncLat.Observe(time.Since(start).Seconds())
	}
	// Monotonic advance; another Sync cannot be concurrent (syncMu).
	if prev := LSN(w.durable.Load()); prev < target {
		w.durable.Store(uint64(target))
		batch := uint64(target - prev)
		w.lastBatch.Store(batch)
		w.batchSize.Observe(float64(batch))
	}
	w.condMu.Lock()
	w.cond.Broadcast()
	w.condMu.Unlock()
	return nil
}

// flusher is the group-commit daemon: each wakeup issues one fsync
// covering every record appended so far. Commits arriving during the
// fsync pile onto the next wakeup.
func (w *Writer) flusher() {
	defer close(w.done)
	for {
		select {
		case <-w.quit:
			return
		case <-w.flushCh:
			_ = w.Sync() // errors are sticky; waiters observe syncErr
		}
	}
}

// AppendedLSN returns the last appended LSN (0 if none).
func (w *Writer) AppendedLSN() LSN {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.appended
}

// DurableLSN returns the last LSN known to be on stable storage.
func (w *Writer) DurableLSN() LSN { return LSN(w.durable.Load()) }

// TruncateTo removes segments that contain only records at or below
// lsn — the checkpoint's log-reclamation step. The open segment is
// never removed.
func (w *Writer) TruncateTo(lsn LSN) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	kept := w.segs[:0]
	for i, s := range w.segs {
		// Segment i holds LSNs in [s.first, nextSeg.first); disposable
		// when every one of them is <= lsn. The last (open) segment has
		// no successor and always stays.
		if i+1 < len(w.segs) && w.segs[i+1].first <= lsn+1 {
			if err := os.Remove(s.path); err != nil && !os.IsNotExist(err) {
				return fmt.Errorf("wal: truncate: %w", err)
			}
			w.removed.Add(1)
			continue
		}
		kept = append(kept, s)
	}
	w.segs = append([]segment(nil), kept...)
	return syncDir(w.dir)
}

// Stats returns a snapshot of writer counters.
func (w *Writer) Stats() Stats {
	return Stats{
		Appends:  w.appends.Load(),
		Commits:  w.commits.Load(),
		Syncs:    w.syncs.Load(),
		Bytes:    w.bytes.Load(),
		Segments: w.segsMade.Load(),
		Removed:  w.removed.Load(),
	}
}

// SyncError returns the sticky sync error, or nil while the writer is
// healthy. Once set it never clears: the log can no longer promise
// durability, and health surfaces should go unhealthy.
func (w *Writer) SyncError() error {
	w.condMu.Lock()
	defer w.condMu.Unlock()
	return w.syncErr
}

// LastBatch returns the record count of the most recent group-commit
// durable advance (0 before the first fsync-driven advance).
func (w *Writer) LastBatch() uint64 { return w.lastBatch.Load() }

// Telemetry returns the full observability snapshot.
func (w *Writer) Telemetry() Telemetry {
	w.mu.Lock()
	segs := len(w.segs)
	appended := w.appended
	w.mu.Unlock()
	t := Telemetry{
		Stats:          w.Stats(),
		ActiveSegments: segs,
		AppendedLSN:    appended,
		DurableLSN:     LSN(w.durable.Load()),
		LastBatch:      w.lastBatch.Load(),
		FsyncLatency:   w.fsyncLat.Stats(),
		CommitBatch:    w.batchSize.Stats(),
	}
	if err := w.SyncError(); err != nil {
		t.SyncErr = err.Error()
	}
	return t
}

// Close flushes and fsyncs outstanding records and releases the
// segment file. Further Appends fail.
func (w *Writer) Close() error {
	if !w.closeOnce.CompareAndSwap(false, true) {
		return nil
	}
	err := w.Sync()
	close(w.quit)
	<-w.done
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	if cerr := w.f.Close(); err == nil && cerr != nil {
		err = cerr
	}
	// Wake any committer still waiting so it observes closed/syncErr
	// instead of blocking forever.
	w.condMu.Lock()
	w.cond.Broadcast()
	w.condMu.Unlock()
	return err
}
