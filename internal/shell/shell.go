package shell

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/exec"
	"repro/internal/flight"
	"repro/internal/index"
	"repro/internal/storage"
	"repro/internal/timeline"
)

// Aliases keep the rendering helpers readable.
type (
	engineMatch       = exec.Match
	engineStats       = exec.QueryStats
	engineConvergence = timeline.Convergence
)

// Shell evaluates commands against one engine, optionally scoped to one
// tenant: a tenant shell sees only the tenant's tables and buffers, and
// its tables charge the tenant's Index-Buffer quota. A Shell holds no
// mutable state — isolation comes entirely from the engine — so
// concurrent EvalCtx calls on one Shell are safe; the statements race
// exactly as the underlying engine operations would.
type Shell struct {
	eng    *engine.Engine
	tenant *core.Tenant // nil = default tenant
}

// New creates a shell over the engine, scoped to the default tenant.
func New(eng *engine.Engine) *Shell { return &Shell{eng: eng} }

// NewTenant creates a shell scoped to tn (nil = default tenant).
func NewTenant(eng *engine.Engine, tn *core.Tenant) *Shell {
	return &Shell{eng: eng, tenant: tn}
}

// Result is the outcome of one command.
type Result struct {
	Output string           // human-readable response, possibly multi-line
	Rows   int              // rows returned (SELECT) or affected (INSERT/DELETE/UPDATE)
	Stats  *exec.QueryStats // execution stats of a SELECT, else nil
	Quit   bool             // the user asked to leave
}

// Eval parses and executes one command line without a context.
//
// Deprecated: use EvalCtx, which cancels long scans mid-statement. Eval
// remains for callers with no context to thread.
func (s *Shell) Eval(line string) (Result, error) {
	return s.EvalCtx(context.Background(), line)
}

// EvalCtx parses and executes one command line. Empty lines and comments
// (lines starting with --) are no-ops. ctx is checked up front and
// threaded into the query paths (SELECT, the lookups of DELETE and
// UPDATE, and DML WAL commits), so a long scan is abandoned between page
// reads when the caller gives up.
//
// When the engine's flight recorder is enabled, every non-empty
// statement gets a flight record: the trace ID is taken from ctx (a
// wire client may have supplied one) or minted here, and the completed
// record — span tree, mechanism, WAL commit latency, duration, error —
// lands in the recorder's rings when the statement finishes.
func (s *Shell) EvalCtx(ctx context.Context, line string) (Result, error) {
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	trimmed := strings.TrimSpace(line)
	if trimmed == "" || strings.HasPrefix(trimmed, "--") {
		return Result{}, nil
	}
	if fr := s.eng.Flight(); fr.Enabled() {
		var act *flight.Active
		act, ctx = fr.Begin(ctx, s.tenantName(), trimmed)
		res, err := s.evalCtx(ctx, trimmed)
		fr.Complete(act, err)
		return res, err
	}
	return s.evalCtx(ctx, trimmed)
}

// tenantName labels the shell's tenant for flight records.
func (s *Shell) tenantName() string {
	if s.tenant != nil {
		return s.tenant.Name()
	}
	return "default"
}

// evalCtx dispatches one trimmed, non-empty statement.
func (s *Shell) evalCtx(ctx context.Context, trimmed string) (Result, error) {
	toks, err := lex(trimmed)
	if err != nil {
		return Result{}, err
	}
	p := &parser{toks: toks}
	head, err := p.next()
	if err != nil {
		return Result{}, err
	}
	if head.kind != tokWord {
		return Result{}, fmt.Errorf("commands start with a keyword, got %q", head.text)
	}
	switch head.text {
	case "EXIT", "QUIT":
		return Result{Output: "bye", Quit: true}, nil
	case "HELP":
		return Result{Output: helpText}, nil
	case "CREATE":
		return s.evalCreate(p)
	case "INSERT":
		return s.evalInsert(ctx, p)
	case "DELETE":
		return s.evalDelete(ctx, p)
	case "UPDATE":
		return s.evalUpdate(ctx, p)
	case "SELECT":
		return s.evalSelect(ctx, p, false)
	case "EXPLAIN":
		if err := p.word("SELECT"); err != nil {
			return Result{}, err
		}
		return s.evalSelect(ctx, p, true)
	case "DROP":
		if err := p.word("INDEX"); err != nil {
			return Result{}, err
		}
		if err := p.word("ON"); err != nil {
			return Result{}, err
		}
		tname, err := p.ident()
		if err != nil {
			return Result{}, err
		}
		t, err := s.table(tname)
		if err != nil {
			return Result{}, err
		}
		if err := p.punct("("); err != nil {
			return Result{}, err
		}
		cname, err := p.ident()
		if err != nil {
			return Result{}, err
		}
		col, err := column(t, cname)
		if err != nil {
			return Result{}, err
		}
		if err := p.punct(")"); err != nil {
			return Result{}, err
		}
		if err := t.DropIndex(col); err != nil {
			return Result{}, err
		}
		return Result{Output: fmt.Sprintf("dropped index on %s(%s)", tname, cname)}, nil
	case "SHOW":
		return s.evalShow(p)
	case "VACUUM":
		tname, err := p.ident()
		if err != nil {
			return Result{}, err
		}
		t, err := s.table(tname)
		if err != nil {
			return Result{}, err
		}
		before, after, err := t.Vacuum()
		if err != nil {
			return Result{}, err
		}
		return Result{Output: fmt.Sprintf("vacuumed %s: %d -> %d pages", tname, before, after)}, nil
	case "SAVE":
		if err := s.eng.Save(); err != nil {
			return Result{}, err
		}
		return Result{Output: "database saved"}, nil
	default:
		return Result{}, fmt.Errorf("unknown command %q (try HELP)", head.text)
	}
}

const helpText = `commands:
  CREATE TABLE name (col INT|VARCHAR, ...)
  CREATE PARTIAL INDEX ON table (col) COVERING lo TO hi
  CREATE PARTIAL INDEX ON table (col) COVERING (v1, v2, ...)
  DROP INDEX ON table (col)
  INSERT INTO table VALUES (v1, ...) [, (v1, ...) ...]
  DELETE FROM table WHERE col = value
  UPDATE table SET col = value WHERE col = value
  SELECT * FROM table WHERE col = value
  SELECT * FROM table WHERE col BETWEEN lo AND hi
  EXPLAIN SELECT * FROM table WHERE ...
  SHOW TABLES | SHOW BUFFERS | SHOW INDEXES | SHOW STATS | SHOW TIMELINE
  SHOW SLOW [n]   (slowest captured statements from the flight recorder)
  VACUUM table
  SAVE   (persist a DataDir-backed database)
  HELP | EXIT`

// table resolves a table name within the shell's tenant.
func (s *Shell) table(name string) (*engine.Table, error) {
	t := s.eng.TableFor(s.tenant, name)
	if t == nil {
		return nil, fmt.Errorf("no table %q", name)
	}
	return t, nil
}

// column resolves a column name within a table.
func column(t *engine.Table, name string) (int, error) {
	i := t.Schema().ColumnIndex(name)
	if i < 0 {
		return 0, fmt.Errorf("table %s has no column %q", t.Name(), name)
	}
	return i, nil
}

// value parses a literal token into a storage value.
func value(t token) (storage.Value, error) {
	switch t.kind {
	case tokNumber:
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return storage.Value{}, fmt.Errorf("bad number %q", t.text)
		}
		return storage.Int64Value(n), nil
	case tokString:
		return storage.StringValue(t.text), nil
	default:
		return storage.Value{}, fmt.Errorf("expected a literal, got %q", t.text)
	}
}

func (s *Shell) evalCreate(p *parser) (Result, error) {
	t, err := p.next()
	if err != nil {
		return Result{}, err
	}
	switch t.text {
	case "TABLE":
		return s.evalCreateTable(p)
	case "PARTIAL":
		if err := p.word("INDEX"); err != nil {
			return Result{}, err
		}
		return s.evalCreateIndex(p)
	default:
		return Result{}, fmt.Errorf("CREATE %s not supported (want TABLE or PARTIAL INDEX)", t.text)
	}
}

func (s *Shell) evalCreateTable(p *parser) (Result, error) {
	name, err := p.ident()
	if err != nil {
		return Result{}, err
	}
	if err := p.punct("("); err != nil {
		return Result{}, err
	}
	var cols []storage.Column
	for {
		cname, err := p.ident()
		if err != nil {
			return Result{}, err
		}
		kind, err := p.next()
		if err != nil {
			return Result{}, err
		}
		var k storage.Kind
		switch kind.text {
		case "INT", "INTEGER", "BIGINT":
			k = storage.KindInt64
		case "VARCHAR", "TEXT", "STRING":
			k = storage.KindString
		default:
			return Result{}, fmt.Errorf("unknown type %q (want INT or VARCHAR)", kind.text)
		}
		cols = append(cols, storage.Column{Name: cname, Kind: k})
		sep, err := p.next()
		if err != nil {
			return Result{}, err
		}
		if sep.text == ")" {
			break
		}
		if sep.text != "," {
			return Result{}, fmt.Errorf("expected , or ) in column list, got %q", sep.text)
		}
	}
	schema, err := storage.NewSchema(cols...)
	if err != nil {
		return Result{}, err
	}
	if _, err := s.eng.CreateTableFor(s.tenant, name, schema); err != nil {
		return Result{}, err
	}
	return Result{Output: fmt.Sprintf("created table %s %s", name, schema)}, nil
}

func (s *Shell) evalCreateIndex(p *parser) (Result, error) {
	if err := p.word("ON"); err != nil {
		return Result{}, err
	}
	tname, err := p.ident()
	if err != nil {
		return Result{}, err
	}
	t, err := s.table(tname)
	if err != nil {
		return Result{}, err
	}
	if err := p.punct("("); err != nil {
		return Result{}, err
	}
	cname, err := p.ident()
	if err != nil {
		return Result{}, err
	}
	col, err := column(t, cname)
	if err != nil {
		return Result{}, err
	}
	if err := p.punct(")"); err != nil {
		return Result{}, err
	}
	if err := p.word("COVERING"); err != nil {
		return Result{}, err
	}

	// Either "(v1, v2, ...)" or "lo TO hi".
	nxt, ok := p.peek()
	if !ok {
		return Result{}, fmt.Errorf("expected coverage after COVERING")
	}
	var cov index.Coverage
	if nxt.kind == tokPunct && nxt.text == "(" {
		p.pos++
		var vals []storage.Value
		for {
			lt, err := p.next()
			if err != nil {
				return Result{}, err
			}
			v, err := value(lt)
			if err != nil {
				return Result{}, err
			}
			vals = append(vals, v)
			sep, err := p.next()
			if err != nil {
				return Result{}, err
			}
			if sep.text == ")" {
				break
			}
			if sep.text != "," {
				return Result{}, fmt.Errorf("expected , or ) in value list, got %q", sep.text)
			}
		}
		cov = index.NewSetCoverage(vals...)
	} else {
		loTok, err := p.next()
		if err != nil {
			return Result{}, err
		}
		lo, err := value(loTok)
		if err != nil {
			return Result{}, err
		}
		if err := p.word("TO"); err != nil {
			return Result{}, err
		}
		hiTok, err := p.next()
		if err != nil {
			return Result{}, err
		}
		hi, err := value(hiTok)
		if err != nil {
			return Result{}, err
		}
		cov = index.RangeCoverage{Lo: lo, Hi: hi}
	}
	if err := t.CreatePartialIndex(col, cov); err != nil {
		return Result{}, err
	}
	return Result{Output: fmt.Sprintf("created partial index on %s(%s) covering %s", tname, cname, cov)}, nil
}

func (s *Shell) evalInsert(ctx context.Context, p *parser) (Result, error) {
	if err := p.word("INTO"); err != nil {
		return Result{}, err
	}
	tname, err := p.ident()
	if err != nil {
		return Result{}, err
	}
	t, err := s.table(tname)
	if err != nil {
		return Result{}, err
	}
	if err := p.word("VALUES"); err != nil {
		return Result{}, err
	}
	count := 0
	for {
		if err := p.punct("("); err != nil {
			return Result{}, err
		}
		var vals []storage.Value
		for {
			lt, err := p.next()
			if err != nil {
				return Result{}, err
			}
			v, err := value(lt)
			if err != nil {
				return Result{}, err
			}
			vals = append(vals, v)
			sep, err := p.next()
			if err != nil {
				return Result{}, err
			}
			if sep.text == ")" {
				break
			}
			if sep.text != "," {
				return Result{}, fmt.Errorf("expected , or ) in tuple, got %q", sep.text)
			}
		}
		if _, err := t.InsertCtx(ctx, storage.NewTuple(vals...)); err != nil {
			return Result{}, err
		}
		count++
		if p.done() {
			break
		}
		if err := p.punct(","); err != nil {
			return Result{}, err
		}
	}
	return Result{Output: fmt.Sprintf("inserted %d row(s)", count), Rows: count}, nil
}

// wherePredicate parses "WHERE col = literal" and returns the column
// ordinal and key.
func (s *Shell) wherePredicate(p *parser, t *engine.Table) (int, storage.Value, error) {
	if err := p.word("WHERE"); err != nil {
		return 0, storage.Value{}, err
	}
	cname, err := p.ident()
	if err != nil {
		return 0, storage.Value{}, err
	}
	col, err := column(t, cname)
	if err != nil {
		return 0, storage.Value{}, err
	}
	if err := p.punct("="); err != nil {
		return 0, storage.Value{}, err
	}
	lt, err := p.next()
	if err != nil {
		return 0, storage.Value{}, err
	}
	key, err := value(lt)
	if err != nil {
		return 0, storage.Value{}, err
	}
	return col, key, nil
}

func (s *Shell) evalDelete(ctx context.Context, p *parser) (Result, error) {
	if err := p.word("FROM"); err != nil {
		return Result{}, err
	}
	tname, err := p.ident()
	if err != nil {
		return Result{}, err
	}
	t, err := s.table(tname)
	if err != nil {
		return Result{}, err
	}
	col, key, err := s.wherePredicate(p, t)
	if err != nil {
		return Result{}, err
	}
	matches, _, err := t.QueryEqualCtx(ctx, col, key)
	if err != nil {
		return Result{}, err
	}
	for _, m := range matches {
		if err := t.DeleteCtx(ctx, m.RID); err != nil {
			return Result{}, err
		}
	}
	return Result{Output: fmt.Sprintf("deleted %d row(s)", len(matches)), Rows: len(matches)}, nil
}

func (s *Shell) evalUpdate(ctx context.Context, p *parser) (Result, error) {
	tname, err := p.ident()
	if err != nil {
		return Result{}, err
	}
	t, err := s.table(tname)
	if err != nil {
		return Result{}, err
	}
	if err := p.word("SET"); err != nil {
		return Result{}, err
	}
	setName, err := p.ident()
	if err != nil {
		return Result{}, err
	}
	setCol, err := column(t, setName)
	if err != nil {
		return Result{}, err
	}
	if err := p.punct("="); err != nil {
		return Result{}, err
	}
	lt, err := p.next()
	if err != nil {
		return Result{}, err
	}
	newVal, err := value(lt)
	if err != nil {
		return Result{}, err
	}
	col, key, err := s.wherePredicate(p, t)
	if err != nil {
		return Result{}, err
	}
	matches, _, err := t.QueryEqualCtx(ctx, col, key)
	if err != nil {
		return Result{}, err
	}
	for _, m := range matches {
		if err := t.Schema().Validate(m.Tuple.WithValue(setCol, newVal)); err != nil {
			return Result{}, err
		}
		if _, err := t.UpdateCtx(ctx, m.RID, m.Tuple.WithValue(setCol, newVal)); err != nil {
			return Result{}, err
		}
	}
	return Result{Output: fmt.Sprintf("updated %d row(s)", len(matches)), Rows: len(matches)}, nil
}

func (s *Shell) evalSelect(ctx context.Context, p *parser, explain bool) (Result, error) {
	if err := p.punct("*"); err != nil {
		return Result{}, err
	}
	if err := p.word("FROM"); err != nil {
		return Result{}, err
	}
	tname, err := p.ident()
	if err != nil {
		return Result{}, err
	}
	t, err := s.table(tname)
	if err != nil {
		return Result{}, err
	}
	if err := p.word("WHERE"); err != nil {
		return Result{}, err
	}
	cname, err := p.ident()
	if err != nil {
		return Result{}, err
	}
	col, err := column(t, cname)
	if err != nil {
		return Result{}, err
	}
	op, err := p.next()
	if err != nil {
		return Result{}, err
	}

	var rows []rowOut
	var stats exec.QueryStats
	switch {
	case op.kind == tokPunct && op.text == "=":
		lt, err := p.next()
		if err != nil {
			return Result{}, err
		}
		key, err := value(lt)
		if err != nil {
			return Result{}, err
		}
		if explain {
			plan, err := t.ExplainEqual(col, key)
			if err != nil {
				return Result{}, err
			}
			return Result{Output: plan.String()}, nil
		}
		matches, st, err := t.QueryEqualCtx(ctx, col, key)
		if err != nil {
			return Result{}, err
		}
		rows = renderMatches(t, matches)
		stats = st
	case op.kind == tokWord && op.text == "BETWEEN":
		loTok, err := p.next()
		if err != nil {
			return Result{}, err
		}
		lo, err := value(loTok)
		if err != nil {
			return Result{}, err
		}
		if err := p.word("AND"); err != nil {
			return Result{}, err
		}
		hiTok, err := p.next()
		if err != nil {
			return Result{}, err
		}
		hi, err := value(hiTok)
		if err != nil {
			return Result{}, err
		}
		if explain {
			plan, err := t.ExplainRange(col, lo, hi)
			if err != nil {
				return Result{}, err
			}
			return Result{Output: plan.String()}, nil
		}
		matches, st, err := t.QueryRangeCtx(ctx, col, lo, hi)
		if err != nil {
			return Result{}, err
		}
		rows = renderMatches(t, matches)
		stats = st
	default:
		return Result{}, fmt.Errorf("expected = or BETWEEN, got %q", op.text)
	}

	var sb strings.Builder
	for _, r := range rows {
		sb.WriteString(r.line)
		sb.WriteByte('\n')
	}
	fmt.Fprintf(&sb, "%d row(s) | %s", len(rows), statsString(stats))
	return Result{Output: sb.String(), Rows: len(rows), Stats: &stats}, nil
}

type rowOut struct{ line string }

// renderMatches formats result tuples, truncating long strings, in RID
// order for stable output.
func renderMatches(t *engine.Table, matches []engineMatch) []rowOut {
	sorted := append([]engineMatch(nil), matches...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].RID.Less(sorted[j].RID) })
	out := make([]rowOut, len(sorted))
	for i, m := range sorted {
		var sb strings.Builder
		fmt.Fprintf(&sb, "[%v]", m.RID)
		for c := 0; c < t.Schema().NumColumns(); c++ {
			v := m.Tuple.Value(c)
			text := v.String()
			if len(text) > 24 {
				text = text[:21] + `..."`
			}
			sb.WriteByte(' ')
			sb.WriteString(text)
		}
		out[i] = rowOut{line: sb.String()}
	}
	return out
}

func statsString(st engineStats) string {
	mech := "indexing scan"
	switch {
	case st.PartialHit:
		mech = "partial index hit"
	case st.FullScan:
		mech = "full scan"
	case st.QuotaDegraded:
		mech = "degraded scan (tenant over quota)"
	}
	return fmt.Sprintf("%s: %d pages read, %d skipped, %d buffer entries added",
		mech, st.PagesRead, st.PagesSkipped, st.EntriesAdded)
}

func (s *Shell) evalShow(p *parser) (Result, error) {
	what, err := p.next()
	if err != nil {
		return Result{}, err
	}
	switch what.text {
	case "BUFFERS":
		// A tenant session sees only its own buffers and its own ledger;
		// the default session sees everything plus the global occupancy.
		var sb strings.Builder
		n := 0
		for _, b := range s.eng.Space().Buffers() {
			if s.tenant != nil && b.Tenant() != s.tenant {
				continue
			}
			fmt.Fprintf(&sb, "%s: %d entries, %d partitions, %d pages buffered, benefit %.2f\n",
				b.Name(), b.EntryCount(), b.PartitionCount(), b.BufferedPages(), b.Benefit())
			n++
		}
		if n == 0 {
			return Result{Output: "no index buffers"}, nil
		}
		if s.tenant != nil {
			fmt.Fprintf(&sb, "tenant %s used: %d entries (quota %d, degraded %d)",
				s.tenant.Name(), s.tenant.Used(), s.tenant.Quota(), s.tenant.Degraded())
		} else {
			fmt.Fprintf(&sb, "space used: %d entries", s.eng.Space().Used())
		}
		return Result{Output: sb.String(), Rows: n}, nil
	case "TABLES":
		names := s.eng.TableNamesFor(s.tenant)
		if len(names) == 0 {
			return Result{Output: "no tables"}, nil
		}
		var sb strings.Builder
		for i, n := range names {
			if i > 0 {
				sb.WriteByte('\n')
			}
			t := s.eng.TableFor(s.tenant, n)
			fmt.Fprintf(&sb, "%s %s (%d pages)", n, t.Schema(), t.NumPages())
		}
		return Result{Output: sb.String(), Rows: len(names)}, nil
	case "STATS":
		return Result{Output: s.eng.Tracer().Report()}, nil
	case "TIMELINE":
		return s.showTimeline()
	case "SLOW":
		n := 10
		if !p.done() {
			nt, err := p.next()
			if err != nil {
				return Result{}, err
			}
			v, err := strconv.Atoi(nt.text)
			if err != nil || v <= 0 {
				return Result{}, fmt.Errorf("SHOW SLOW wants a positive count, got %q", nt.text)
			}
			n = v
		}
		return s.showSlow(n)
	case "INDEXES":
		var sb strings.Builder
		found := false
		for _, n := range s.eng.TableNamesFor(s.tenant) {
			t := s.eng.TableFor(s.tenant, n)
			for c := 0; c < t.Schema().NumColumns(); c++ {
				if ix := t.Index(c); ix != nil {
					if found {
						sb.WriteByte('\n')
					}
					found = true
					fmt.Fprintf(&sb, "%s: covering %s, %d entries", ix.Name(), ix.Coverage(), ix.EntryCount())
				}
			}
		}
		if !found {
			return Result{Output: "no indexes"}, nil
		}
		return Result{Output: sb.String()}, nil
	default:
		return Result{}, fmt.Errorf("SHOW %s not supported (want TABLES, BUFFERS, INDEXES, STATS, TIMELINE or SLOW)", what.text)
	}
}

// showSlow renders the flight recorder's slow-query capture: the n
// slowest completed statements, slowest first. A tenant shell sees only
// its own statements.
func (s *Shell) showSlow(n int) (Result, error) {
	fr := s.eng.Flight()
	if !fr.Enabled() {
		return Result{Output: "flight recorder is off (start aibserver, or enable it programmatically)"}, nil
	}
	recs := fr.Slow(n)
	if s.tenant != nil {
		kept := recs[:0]
		for _, r := range recs {
			if r.Tenant == s.tenant.Name() {
				kept = append(kept, r)
			}
		}
		recs = kept
	}
	if len(recs) == 0 {
		return Result{Output: fmt.Sprintf("no statements above the slow threshold (%s) yet", fr.SlowThreshold())}, nil
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-24s %-10s %10s %8s %6s %6s %8s  %s\n",
		"trace", "tenant", "ms", "mech", "rows", "pages", "wal_ms", "statement")
	for _, r := range recs {
		stmt := r.Stmt
		if len(stmt) > 48 {
			stmt = stmt[:45] + "..."
		}
		mech := r.Mechanism
		if mech == "" {
			mech = "-"
		}
		fmt.Fprintf(&sb, "%-24s %-10s %10.2f %8s %6d %6d %8.2f  %s\n",
			r.Trace, r.Tenant, float64(r.DurationNanos)/1e6, mech,
			r.Matches, r.PagesRead, float64(r.WALCommitNanos)/1e6, stmt)
	}
	fmt.Fprintf(&sb, "slow threshold %s; %d captured since enable", fr.SlowThreshold(), fr.Stats().Slow)
	return Result{Output: sb.String(), Rows: len(recs)}, nil
}

// showTimeline renders the adaptation timeline: one line per buffer
// with the latest coverage sample and the convergence verdict.
func (s *Shell) showTimeline() (Result, error) {
	tl := s.eng.Timeline()
	if !tl.Enabled() {
		return Result{Output: "timeline sampling is off (start aibshell with -listen, or enable it programmatically)"}, nil
	}
	series := tl.Series()
	if len(series) == 0 {
		return Result{Output: "no timeline samples yet (run some queries)"}, nil
	}
	verdicts := make(map[string]engineConvergence, len(series))
	for _, c := range s.eng.Convergence() {
		verdicts[c.Buffer] = c
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-20s %8s %9s %10s %9s %10s %8s %8s\n",
		"buffer", "queries", "coverage", "converged", "entries", "bytes", "displ", "samples")
	for _, ser := range series {
		var last engineConvergence = verdicts[ser.Buffer]
		conv := "-"
		if last.Achieved {
			conv = fmt.Sprintf("@%d", last.QueriesToTarget)
			if last.Regressed {
				conv += "!"
			}
		}
		entries, bytes := 0, 0
		var displ uint64
		if n := len(ser.Samples); n > 0 {
			latest := ser.Samples[n-1]
			entries, bytes = latest.Entries, latest.Bytes
			displ = latest.Displacements
		}
		fmt.Fprintf(&sb, "%-20s %8d %8.1f%% %10s %9d %10d %8d %8d\n",
			ser.Buffer, last.Queries, 100*last.Coverage, conv, entries, bytes, displ, len(ser.Samples))
	}
	fmt.Fprintf(&sb, "coverage target %.0f%%; '@N' = converged at query N, '!' = regressed below target",
		100*tl.Target())
	return Result{Output: sb.String()}, nil
}
