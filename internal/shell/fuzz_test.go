package shell

import (
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
)

// FuzzEval throws arbitrary command lines at the shell; it must return
// errors for garbage, never panic, and stay usable afterwards.
func FuzzEval(f *testing.F) {
	f.Add("CREATE TABLE t (a INT)")
	f.Add("INSERT INTO t VALUES (1)")
	f.Add("SELECT * FROM t WHERE a = 1")
	f.Add("SELECT * FROM t WHERE a BETWEEN 1 AND 2")
	f.Add("CREATE PARTIAL INDEX ON t (a) COVERING 1 TO 2")
	f.Add("SHOW BUFFERS")
	f.Add("'unterminated")
	f.Add("((((")
	f.Add("insert into values values values")

	f.Fuzz(func(t *testing.T, line string) {
		s := New(engine.New(engine.Config{Space: core.Config{IMax: 10, P: 5}}))
		// Prepare a small table so data-dependent paths are reachable.
		if _, err := s.Eval("CREATE TABLE t (a INT, b VARCHAR)"); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Eval("INSERT INTO t VALUES (1, 'x'), (2, 'y')"); err != nil {
			t.Fatal(err)
		}
		_, _ = s.Eval(line) // must not panic
		// The shell must remain usable after any input.
		if _, err := s.Eval("SELECT * FROM t WHERE a = 1"); err != nil {
			t.Fatalf("shell broken after %q: %v", line, err)
		}
	})
}
