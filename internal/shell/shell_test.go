package shell

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
)

func newShell(t *testing.T) *Shell {
	t.Helper()
	return New(engine.New(engine.Config{Space: core.Config{IMax: 1000, P: 100}}))
}

// mustEval evaluates a command, failing the test on error.
func mustEval(t *testing.T, s *Shell, cmd string) Result {
	t.Helper()
	r, err := s.Eval(cmd)
	if err != nil {
		t.Fatalf("Eval(%q): %v", cmd, err)
	}
	return r
}

func mustFail(t *testing.T, s *Shell, cmd string) {
	t.Helper()
	if _, err := s.Eval(cmd); err == nil {
		t.Fatalf("Eval(%q) should fail", cmd)
	}
}

func TestLex(t *testing.T) {
	toks, err := lex(`INSERT into t VALUES (1, 'it''s', -5)`)
	if err != nil {
		t.Fatal(err)
	}
	want := []token{
		{tokWord, "INSERT"}, {tokWord, "INTO"}, {tokWord, "T"}, {tokWord, "VALUES"},
		{tokPunct, "("}, {tokNumber, "1"}, {tokPunct, ","},
		{tokString, "it's"}, {tokPunct, ","}, {tokNumber, "-5"}, {tokPunct, ")"},
	}
	if len(toks) != len(want) {
		t.Fatalf("tokens = %v", toks)
	}
	for i := range want {
		if toks[i] != want[i] {
			t.Errorf("token %d = %v, want %v", i, toks[i], want[i])
		}
	}
}

func TestLexErrors(t *testing.T) {
	if _, err := lex("'unterminated"); err == nil {
		t.Error("unterminated string should fail")
	}
	if _, err := lex("a - b"); err == nil {
		t.Error("stray minus should fail")
	}
	if _, err := lex("a ! b"); err == nil {
		t.Error("unknown char should fail")
	}
}

func TestNoopsAndHelp(t *testing.T) {
	s := newShell(t)
	if r := mustEval(t, s, ""); r.Output != "" || r.Quit {
		t.Error("empty line should be a no-op")
	}
	if r := mustEval(t, s, "-- just a comment"); r.Output != "" {
		t.Error("comment should be a no-op")
	}
	if r := mustEval(t, s, "help"); !strings.Contains(r.Output, "CREATE TABLE") {
		t.Error("help text missing")
	}
	if r := mustEval(t, s, "exit"); !r.Quit {
		t.Error("exit should quit")
	}
	if r := mustEval(t, s, "QUIT"); !r.Quit {
		t.Error("quit should quit")
	}
	mustFail(t, s, "frobnicate")
	mustFail(t, s, "( weird")
}

func TestCreateInsertSelectRoundTrip(t *testing.T) {
	s := newShell(t)
	r := mustEval(t, s, "CREATE TABLE flights (airport VARCHAR, delay INT)")
	if !strings.Contains(r.Output, "created table flights") {
		t.Errorf("output = %q", r.Output)
	}
	mustEval(t, s, "INSERT INTO flights VALUES ('ORD', 12), ('FRA', 30), ('ORD', 5)")
	r = mustEval(t, s, "SELECT * FROM flights WHERE airport = 'ORD'")
	if !strings.Contains(r.Output, "2 row(s)") {
		t.Errorf("output = %q", r.Output)
	}
	if !strings.Contains(r.Output, `"ORD" 12`) || !strings.Contains(r.Output, `"ORD" 5`) {
		t.Errorf("rows missing: %q", r.Output)
	}
	r = mustEval(t, s, "SELECT * FROM flights WHERE delay BETWEEN 10 AND 40")
	if !strings.Contains(r.Output, "2 row(s)") {
		t.Errorf("between output = %q", r.Output)
	}
	// Full scan is reported before any index exists.
	if !strings.Contains(r.Output, "full scan") {
		t.Errorf("mechanism missing: %q", r.Output)
	}
}

func TestCreateIndexAndBufferLifecycle(t *testing.T) {
	s := newShell(t)
	mustEval(t, s, "CREATE TABLE t (k INT, pad VARCHAR)")
	// Enough rows for several pages.
	var sb strings.Builder
	sb.WriteString("INSERT INTO t VALUES ")
	pad := strings.Repeat("x", 200)
	for i := 0; i < 200; i++ {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString("(")
		sb.WriteString(itoa(i % 50))
		sb.WriteString(", '")
		sb.WriteString(pad)
		sb.WriteString("')")
	}
	mustEval(t, s, sb.String())

	r := mustEval(t, s, "CREATE PARTIAL INDEX ON t (k) COVERING 0 TO 24")
	if !strings.Contains(r.Output, "BETWEEN 0 AND 24") {
		t.Errorf("output = %q", r.Output)
	}

	// Covered query hits.
	r = mustEval(t, s, "SELECT * FROM t WHERE k = 10")
	if !strings.Contains(r.Output, "partial index hit") {
		t.Errorf("expected hit: %q", r.Output)
	}
	// Uncovered query runs the indexing scan and builds the buffer.
	r = mustEval(t, s, "SELECT * FROM t WHERE k = 40")
	if !strings.Contains(r.Output, "indexing scan") {
		t.Errorf("expected indexing scan: %q", r.Output)
	}
	r = mustEval(t, s, "SELECT * FROM t WHERE k = 41")
	if !strings.Contains(r.Output, "skipped") || strings.Contains(r.Output, " 0 skipped") {
		t.Errorf("expected skips on repeat: %q", r.Output)
	}

	// Introspection.
	r = mustEval(t, s, "SHOW BUFFERS")
	if !strings.Contains(r.Output, "t.k:") || !strings.Contains(r.Output, "space used") {
		t.Errorf("SHOW BUFFERS = %q", r.Output)
	}
	r = mustEval(t, s, "SHOW TABLES")
	if !strings.Contains(r.Output, "t (") && !strings.Contains(r.Output, "t (k INTEGER") {
		t.Errorf("SHOW TABLES = %q", r.Output)
	}
	r = mustEval(t, s, "SHOW INDEXES")
	if !strings.Contains(r.Output, "t.k: covering BETWEEN 0 AND 24") {
		t.Errorf("SHOW INDEXES = %q", r.Output)
	}
}

func TestCreateSetCoverageIndex(t *testing.T) {
	s := newShell(t)
	mustEval(t, s, "CREATE TABLE a (airport VARCHAR, pad VARCHAR)")
	mustEval(t, s, "INSERT INTO a VALUES ('ORD', 'x'), ('FRA', 'x'), ('JFK', 'x')")
	r := mustEval(t, s, "CREATE PARTIAL INDEX ON a (airport) COVERING ('ORD', 'JFK')")
	if !strings.Contains(r.Output, "IN (2 values)") {
		t.Errorf("output = %q", r.Output)
	}
	r = mustEval(t, s, "SELECT * FROM a WHERE airport = 'ORD'")
	if !strings.Contains(r.Output, "partial index hit") {
		t.Errorf("hit missing: %q", r.Output)
	}
	r = mustEval(t, s, "SELECT * FROM a WHERE airport = 'FRA'")
	if !strings.Contains(r.Output, "1 row(s)") {
		t.Errorf("FRA row missing: %q", r.Output)
	}
}

func TestShellErrors(t *testing.T) {
	s := newShell(t)
	mustFail(t, s, "CREATE TABLE") // truncated
	mustFail(t, s, "CREATE VIEW v")
	mustFail(t, s, "CREATE TABLE t (a BLOB)")
	mustEval(t, s, "CREATE TABLE t (a INT)")
	mustFail(t, s, "CREATE TABLE t (a INT)") // duplicate
	mustFail(t, s, "INSERT INTO missing VALUES (1)")
	mustFail(t, s, "INSERT INTO t VALUES (1, 2)")  // arity
	mustFail(t, s, "INSERT INTO t VALUES ('x')")   // kind
	mustFail(t, s, "INSERT INTO t VALUES (1) (2)") // missing comma
	mustFail(t, s, "SELECT * FROM missing WHERE a = 1")
	mustFail(t, s, "SELECT * FROM t WHERE nope = 1")
	mustFail(t, s, "SELECT * FROM t WHERE a < 1") // unsupported op
	mustFail(t, s, "SELECT a FROM t WHERE a = 1") // projection unsupported
	mustFail(t, s, "SHOW NONSENSE")
	mustFail(t, s, "CREATE PARTIAL INDEX ON t (nope) COVERING 1 TO 2")
	mustFail(t, s, "CREATE PARTIAL INDEX ON missing (a) COVERING 1 TO 2")
	mustFail(t, s, "CREATE PARTIAL INDEX ON t (a) COVERING")
	mustFail(t, s, "CREATE PARTIAL INDEX ON t (a) COVERING 1 UNTIL 2")
}

func TestShowOnEmptyEngine(t *testing.T) {
	s := newShell(t)
	if r := mustEval(t, s, "SHOW TABLES"); r.Output != "no tables" {
		t.Errorf("SHOW TABLES = %q", r.Output)
	}
	if r := mustEval(t, s, "SHOW BUFFERS"); r.Output != "no index buffers" {
		t.Errorf("SHOW BUFFERS = %q", r.Output)
	}
	if r := mustEval(t, s, "SHOW INDEXES"); r.Output != "no indexes" {
		t.Errorf("SHOW INDEXES = %q", r.Output)
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b []byte
	for v > 0 {
		b = append([]byte{byte('0' + v%10)}, b...)
		v /= 10
	}
	return string(b)
}

func TestExplainCommand(t *testing.T) {
	s := newShell(t)
	mustEval(t, s, "CREATE TABLE t (k INT, pad VARCHAR)")
	mustEval(t, s, "INSERT INTO t VALUES (1, 'x'), (40, 'y')")
	mustEval(t, s, "CREATE PARTIAL INDEX ON t (k) COVERING 0 TO 24")
	r := mustEval(t, s, "EXPLAIN SELECT * FROM t WHERE k = 10")
	if !strings.Contains(r.Output, "partial index hit") {
		t.Errorf("explain hit = %q", r.Output)
	}
	r = mustEval(t, s, "EXPLAIN SELECT * FROM t WHERE k = 40")
	if !strings.Contains(r.Output, "indexing scan") {
		t.Errorf("explain miss = %q", r.Output)
	}
	r = mustEval(t, s, "EXPLAIN SELECT * FROM t WHERE k BETWEEN 10 AND 40")
	if !strings.Contains(r.Output, "indexing scan") {
		t.Errorf("explain range = %q", r.Output)
	}
	mustFail(t, s, "EXPLAIN INSERT INTO t VALUES (1, 'x')")
	mustFail(t, s, "EXPLAIN")
}

func TestSaveCommand(t *testing.T) {
	// In-memory engine: SAVE fails cleanly.
	mustFail(t, newShell(t), "SAVE")

	// DataDir-backed engine: SAVE persists, and a fresh engine loads it.
	dir := t.TempDir()
	cfg := engine.Config{DataDir: dir, Space: core.Config{IMax: 100, P: 50}}
	s := New(engine.New(cfg))
	mustEval(t, s, "CREATE TABLE t (a INT, b VARCHAR)")
	mustEval(t, s, "INSERT INTO t VALUES (7, 'seven')")
	if r := mustEval(t, s, "SAVE"); r.Output != "database saved" {
		t.Errorf("SAVE = %q", r.Output)
	}
	loaded, err := engine.Load(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer loaded.Close()
	s2 := New(loaded)
	r := mustEval(t, s2, "SELECT * FROM t WHERE a = 7")
	if !strings.Contains(r.Output, "1 row(s)") || !strings.Contains(r.Output, `"seven"`) {
		t.Errorf("reloaded select = %q", r.Output)
	}
}

func TestDeleteCommand(t *testing.T) {
	s := newShell(t)
	mustEval(t, s, "CREATE TABLE t (a INT, b VARCHAR)")
	mustEval(t, s, "INSERT INTO t VALUES (1, 'x'), (2, 'y'), (1, 'z')")
	r := mustEval(t, s, "DELETE FROM t WHERE a = 1")
	if !strings.Contains(r.Output, "deleted 2 row(s)") {
		t.Errorf("output = %q", r.Output)
	}
	r = mustEval(t, s, "SELECT * FROM t WHERE a = 2")
	if !strings.Contains(r.Output, "1 row(s)") {
		t.Errorf("survivor missing: %q", r.Output)
	}
	r = mustEval(t, s, "SELECT * FROM t WHERE a = 1")
	if !strings.Contains(r.Output, "0 row(s)") {
		t.Errorf("deleted rows still visible: %q", r.Output)
	}
	mustFail(t, s, "DELETE FROM missing WHERE a = 1")
	mustFail(t, s, "DELETE FROM t WHERE nope = 1")
	mustFail(t, s, "DELETE t WHERE a = 1")
}

func TestUpdateCommand(t *testing.T) {
	s := newShell(t)
	mustEval(t, s, "CREATE TABLE t (a INT, b VARCHAR)")
	mustEval(t, s, "INSERT INTO t VALUES (1, 'x'), (2, 'y')")
	r := mustEval(t, s, "UPDATE t SET b = 'changed' WHERE a = 1")
	if !strings.Contains(r.Output, "updated 1 row(s)") {
		t.Errorf("output = %q", r.Output)
	}
	r = mustEval(t, s, "SELECT * FROM t WHERE a = 1")
	if !strings.Contains(r.Output, `"changed"`) {
		t.Errorf("update not visible: %q", r.Output)
	}
	// Cross-column update through indexes keeps maintenance consistent.
	mustEval(t, s, "CREATE PARTIAL INDEX ON t (a) COVERING 0 TO 10")
	mustEval(t, s, "UPDATE t SET a = 99 WHERE b = 'changed'")
	r = mustEval(t, s, "SELECT * FROM t WHERE a = 99")
	if !strings.Contains(r.Output, "1 row(s)") {
		t.Errorf("moved row missing: %q", r.Output)
	}
	// Kind mismatch is rejected before any row changes.
	mustFail(t, s, "UPDATE t SET a = 'nan' WHERE a = 99")
	mustFail(t, s, "UPDATE t SET nope = 1 WHERE a = 99")
	mustFail(t, s, "UPDATE missing SET a = 1 WHERE a = 1")
}

func TestVacuumCommand(t *testing.T) {
	s := newShell(t)
	mustEval(t, s, "CREATE TABLE t (a INT, b VARCHAR)")
	var sb strings.Builder
	sb.WriteString("INSERT INTO t VALUES ")
	pad := strings.Repeat("w", 400)
	for i := 0; i < 100; i++ {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString("(" + itoa(i%10) + ", '" + pad + "')")
	}
	mustEval(t, s, sb.String())
	mustEval(t, s, "DELETE FROM t WHERE a = 0")
	mustEval(t, s, "DELETE FROM t WHERE a = 1")
	r := mustEval(t, s, "VACUUM t")
	if !strings.Contains(r.Output, "vacuumed t:") {
		t.Errorf("output = %q", r.Output)
	}
	r = mustEval(t, s, "SELECT * FROM t WHERE a = 5")
	if !strings.Contains(r.Output, "10 row(s)") {
		t.Errorf("post-vacuum rows = %q", r.Output)
	}
	mustFail(t, s, "VACUUM missing")
	mustFail(t, s, "VACUUM")
}

func TestShowStats(t *testing.T) {
	s := newShell(t)
	if r := mustEval(t, s, "SHOW STATS"); r.Output != "no queries recorded" {
		t.Errorf("empty stats = %q", r.Output)
	}
	mustEval(t, s, "CREATE TABLE t (a INT, b VARCHAR)")
	mustEval(t, s, "INSERT INTO t VALUES (1, 'x'), (2, 'y')")
	mustEval(t, s, "SELECT * FROM t WHERE a = 1")
	mustEval(t, s, "SELECT * FROM t WHERE a BETWEEN 1 AND 2")
	r := mustEval(t, s, "SHOW STATS")
	if !strings.Contains(r.Output, "t.a") || !strings.Contains(r.Output, "2") {
		t.Errorf("stats = %q", r.Output)
	}
}

func TestDropIndexCommand(t *testing.T) {
	s := newShell(t)
	mustEval(t, s, "CREATE TABLE t (a INT, b VARCHAR)")
	mustEval(t, s, "INSERT INTO t VALUES (1, 'x')")
	mustFail(t, s, "DROP INDEX ON t (a)") // none yet
	mustEval(t, s, "CREATE PARTIAL INDEX ON t (a) COVERING 0 TO 10")
	r := mustEval(t, s, "DROP INDEX ON t (a)")
	if !strings.Contains(r.Output, "dropped index on t(a)") {
		t.Errorf("output = %q", r.Output)
	}
	if r := mustEval(t, s, "SHOW INDEXES"); r.Output != "no indexes" {
		t.Errorf("indexes after drop = %q", r.Output)
	}
	r = mustEval(t, s, "SELECT * FROM t WHERE a = 1")
	if !strings.Contains(r.Output, "full scan") {
		t.Errorf("post-drop mechanism = %q", r.Output)
	}
	mustFail(t, s, "DROP INDEX ON missing (a)")
	mustFail(t, s, "DROP INDEX ON t (nope)")
	mustFail(t, s, "DROP TABLE t")
}

func TestShowTimeline(t *testing.T) {
	s := newShell(t)
	r := mustEval(t, s, "SHOW TIMELINE")
	if !strings.Contains(r.Output, "timeline sampling is off") {
		t.Errorf("disabled timeline = %q", r.Output)
	}

	s.eng.Timeline().Enable(true)
	if r = mustEval(t, s, "SHOW TIMELINE"); !strings.Contains(r.Output, "no timeline samples yet") {
		t.Errorf("empty timeline = %q", r.Output)
	}

	mustEval(t, s, "CREATE TABLE t (a INT, b VARCHAR)")
	mustEval(t, s, "INSERT INTO t VALUES (1, 'x'), (30, 'y'), (31, 'z')")
	mustEval(t, s, "CREATE PARTIAL INDEX ON t (a) COVERING 0 TO 10")
	mustEval(t, s, "SELECT * FROM t WHERE a = 30") // miss: builds the buffer
	mustEval(t, s, "SELECT * FROM t WHERE a = 31")
	r = mustEval(t, s, "SHOW TIMELINE")
	for _, want := range []string{"buffer", "coverage", "t.a", "@1", "coverage target 95%"} {
		if !strings.Contains(r.Output, want) {
			t.Errorf("SHOW TIMELINE missing %q:\n%s", want, r.Output)
		}
	}

	mustFail(t, s, "SHOW NONSENSE")
}
