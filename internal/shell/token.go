// Package shell implements a small interactive command language over the
// engine: CREATE TABLE / CREATE PARTIAL INDEX / INSERT / SELECT with
// equality and BETWEEN predicates / SHOW introspection. It exists so the
// system can be explored by hand (cmd/aibshell) — watching queries
// switch from scans to skips as the Index Buffer builds — and it doubles
// as an integration surface exercised by its own test suite.
package shell

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexer output.
type tokenKind int

const (
	tokWord   tokenKind = iota // bare identifier or keyword
	tokNumber                  // integer literal
	tokString                  // 'quoted string'
	tokPunct                   // single punctuation: ( ) , = *
)

// token is one lexed element.
type token struct {
	kind tokenKind
	text string // keywords are case-folded to upper; strings are unquoted
}

// lex splits a command line into tokens. Strings use single quotes with
// ” as the escape for a literal quote, as in SQL.
func lex(line string) ([]token, error) {
	var out []token
	i := 0
	rs := []rune(line)
	for i < len(rs) {
		r := rs[i]
		switch {
		case unicode.IsSpace(r):
			i++
		case r == '\'':
			i++
			var sb strings.Builder
			closed := false
			for i < len(rs) {
				if rs[i] == '\'' {
					if i+1 < len(rs) && rs[i+1] == '\'' { // escaped quote
						sb.WriteRune('\'')
						i += 2
						continue
					}
					i++
					closed = true
					break
				}
				sb.WriteRune(rs[i])
				i++
			}
			if !closed {
				return nil, fmt.Errorf("unterminated string literal")
			}
			out = append(out, token{kind: tokString, text: sb.String()})
		case strings.ContainsRune("(),=*;", r):
			if r != ';' { // statement terminator is optional noise
				out = append(out, token{kind: tokPunct, text: string(r)})
			}
			i++
		case r == '-' || unicode.IsDigit(r):
			start := i
			i++
			for i < len(rs) && unicode.IsDigit(rs[i]) {
				i++
			}
			text := string(rs[start:i])
			if text == "-" {
				return nil, fmt.Errorf("stray '-'")
			}
			out = append(out, token{kind: tokNumber, text: text})
		case unicode.IsLetter(r) || r == '_':
			start := i
			for i < len(rs) && (unicode.IsLetter(rs[i]) || unicode.IsDigit(rs[i]) || rs[i] == '_' || rs[i] == '.') {
				i++
			}
			out = append(out, token{kind: tokWord, text: strings.ToUpper(string(rs[start:i]))})
		default:
			return nil, fmt.Errorf("unexpected character %q", r)
		}
	}
	return out, nil
}

// parser is a cursor over tokens with convenience expectations.
type parser struct {
	toks []token
	pos  int
}

func (p *parser) done() bool { return p.pos >= len(p.toks) }

func (p *parser) peek() (token, bool) {
	if p.done() {
		return token{}, false
	}
	return p.toks[p.pos], true
}

func (p *parser) next() (token, error) {
	if p.done() {
		return token{}, fmt.Errorf("unexpected end of command")
	}
	t := p.toks[p.pos]
	p.pos++
	return t, nil
}

// word consumes the next token, requiring the given keyword.
func (p *parser) word(kw string) error {
	t, err := p.next()
	if err != nil {
		return fmt.Errorf("expected %s: %w", kw, err)
	}
	if t.kind != tokWord || t.text != kw {
		return fmt.Errorf("expected %s, got %q", kw, t.text)
	}
	return nil
}

// punct consumes the next token, requiring the given punctuation.
func (p *parser) punct(s string) error {
	t, err := p.next()
	if err != nil {
		return fmt.Errorf("expected %q: %w", s, err)
	}
	if t.kind != tokPunct || t.text != s {
		return fmt.Errorf("expected %q, got %q", s, t.text)
	}
	return nil
}

// ident consumes an identifier (any word), returned lowercased for use
// as a table/column name.
func (p *parser) ident() (string, error) {
	t, err := p.next()
	if err != nil {
		return "", fmt.Errorf("expected identifier: %w", err)
	}
	if t.kind != tokWord {
		return "", fmt.Errorf("expected identifier, got %q", t.text)
	}
	return strings.ToLower(t.text), nil
}
