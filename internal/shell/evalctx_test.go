package shell

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
)

func TestEvalCtxCanceled(t *testing.T) {
	s := newShell(t)
	mustEval(t, s, "CREATE TABLE t (a INT, b VARCHAR)")
	mustEval(t, s, "INSERT INTO t VALUES (1, 'x'), (2, 'y')")

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, stmt := range []string{
		"SELECT * FROM t WHERE a = 1",
		"SELECT * FROM t WHERE a BETWEEN 1 AND 2",
		"DELETE FROM t WHERE a = 1",
		"UPDATE t SET b = 'z' WHERE a = 1",
	} {
		if _, err := s.EvalCtx(ctx, stmt); !errors.Is(err, context.Canceled) {
			t.Errorf("EvalCtx(canceled, %q) = %v, want context.Canceled", stmt, err)
		}
	}
	// A live context still works after the canceled ones.
	if r, err := s.EvalCtx(context.Background(), "SELECT * FROM t WHERE a = 2"); err != nil || r.Rows != 1 {
		t.Fatalf("EvalCtx(live) = %+v, %v", r, err)
	}
}

// TestEvalDeprecatedDelegates pins that the legacy Eval entry point is a
// pure wrapper over EvalCtx — same results, no second statement path.
func TestEvalDeprecatedDelegates(t *testing.T) {
	s := newShell(t)
	mustEval(t, s, "CREATE TABLE t (a INT, b VARCHAR)")
	r, err := s.Eval("INSERT INTO t VALUES (7, 'seven')")
	if err != nil || r.Rows != 1 {
		t.Fatalf("Eval insert = %+v, %v", r, err)
	}
	rc, err := s.EvalCtx(context.Background(), "SELECT * FROM t WHERE a = 7")
	if err != nil || rc.Rows != 1 || rc.Stats == nil {
		t.Fatalf("EvalCtx select = %+v, %v", rc, err)
	}
}

// TestTenantShellScopes checks NewTenant's namespacing and the tenant
// ledger line in SHOW BUFFERS.
func TestTenantShellScopes(t *testing.T) {
	eng := engine.New(engine.Config{Space: core.Config{IMax: 1000, P: 100}})
	tn, err := eng.CreateTenant("acme", 50, false)
	if err != nil {
		t.Fatal(err)
	}
	ts := NewTenant(eng, tn)
	mustEval(t, ts, "CREATE TABLE t (a INT, b VARCHAR)")
	mustEval(t, ts, "INSERT INTO t VALUES (1, 'x'), (9, 'y')")
	mustEval(t, ts, "CREATE PARTIAL INDEX ON t (a) COVERING 1 TO 5")
	mustEval(t, ts, "SELECT * FROM t WHERE a = 9")

	ds := New(eng)
	mustFail(t, ds, "SELECT * FROM t WHERE a = 9") // invisible to the default tenant

	r := mustEval(t, ts, "SHOW BUFFERS")
	if want := "tenant acme used:"; !strings.Contains(r.Output, want) {
		t.Errorf("SHOW BUFFERS missing %q:\n%s", want, r.Output)
	}
	if strings.Contains(r.Output, "space used:") {
		t.Errorf("tenant SHOW BUFFERS printed the global ledger:\n%s", r.Output)
	}
}
