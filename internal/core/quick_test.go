package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/storage"
)

// TestSelectPagesProperties checks Algorithm 2's invariants over random
// configurations with testing/quick:
//
//  1. selected pages are distinct, within range, and have C[p] > 0;
//  2. |I| <= I^MAX;
//  3. the entries the selection will add fit the space freed by the
//     displacement plus the previous free budget;
//  4. the selection is returned in ascending page order.
func TestSelectPagesProperties(t *testing.T) {
	type cfg struct {
		Counters []uint8
		IMax     uint8
		P        uint8
		Limit    uint16
		Seed     int64
	}
	f := func(c cfg) bool {
		if len(c.Counters) == 0 {
			return true
		}
		counters := make([]int, len(c.Counters))
		for i, v := range c.Counters {
			counters[i] = int(v % 16)
		}
		imax := int(c.IMax%32) + 1
		p := int(c.P%8) + 1
		limit := int(c.Limit % 2000)

		s := NewSpace(Config{
			IMax: imax, P: p, SpaceLimit: limit,
			Rand: rand.New(rand.NewSource(c.Seed)),
		})
		b, err := s.CreateBuffer("t.x", counters)
		if err != nil {
			return false
		}
		freeBefore := s.Free()
		got := s.SelectPagesForBuffer(b, len(counters))

		if len(got) > imax {
			t.Logf("selected %d > IMax %d", len(got), imax)
			return false
		}
		entries := 0
		seen := map[storage.PageID]bool{}
		for i, pg := range got {
			if int(pg) >= len(counters) {
				t.Logf("page %d out of range", pg)
				return false
			}
			if seen[pg] {
				t.Logf("page %d selected twice", pg)
				return false
			}
			seen[pg] = true
			if b.Counter(pg) <= 0 {
				t.Logf("page %d has counter %d", pg, b.Counter(pg))
				return false
			}
			if i > 0 && got[i-1] >= pg {
				t.Logf("selection not ascending: %v", got)
				return false
			}
			entries += b.Counter(pg)
		}
		// A single buffer never displaces itself, so the budget is the
		// pre-call free space.
		if entries > freeBefore {
			t.Logf("selection of %d entries exceeds free %d", entries, freeBefore)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestMultiBufferSelectionBudgetProperty drives several buffers with
// random select+index rounds and checks the global budget invariant the
// paper's §IV promises: indexing scans never push the space past L, and
// accounting never drifts.
func TestMultiBufferSelectionBudgetProperty(t *testing.T) {
	f := func(seed int64, rounds uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		limit := 100 + rng.Intn(400)
		s := NewSpace(Config{
			IMax: 1 + rng.Intn(10), P: 1 + rng.Intn(4),
			SpaceLimit: limit, K: 1 + rng.Intn(4),
			Rand: rand.New(rand.NewSource(seed + 1)),
		})
		var bufs []*IndexBuffer
		for i := 0; i < 3; i++ {
			counters := make([]int, 30)
			for j := range counters {
				counters[j] = rng.Intn(8)
			}
			b, err := s.CreateBuffer(string(rune('a'+i)), counters)
			if err != nil {
				return false
			}
			bufs = append(bufs, b)
		}
		for r := 0; r < int(rounds%64)+10; r++ {
			b := bufs[rng.Intn(len(bufs))]
			s.OnQuery(b, rng.Intn(3) == 0)
			pages := s.SelectPagesForBuffer(b, 30)
			for _, pg := range pages {
				n := b.Counter(pg)
				if err := b.BeginPage(pg); err != nil {
					t.Logf("BeginPage: %v", err)
					return false
				}
				for k := 0; k < n; k++ {
					if err := b.AddEntry(pg, storage.Int64Value(rng.Int63n(50)), storage.RID{Page: pg, Slot: uint16(r*16 + k)}); err != nil {
						t.Logf("AddEntry: %v", err)
						return false
					}
				}
			}
			if s.Used() > limit {
				t.Logf("used %d > limit %d", s.Used(), limit)
				return false
			}
			total := 0
			for _, bb := range bufs {
				total += bb.EntryCount()
			}
			if total != s.Used() {
				t.Logf("drift: %d vs %d", total, s.Used())
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
