package core

import "repro/internal/storage"

// Partition is one displacement unit of an Index Buffer (paper §IV,
// Fig. 5). Each partition has its own index structure and covers a
// disjoint set of table pages; every buffered entry whose tuple lives in
// one of those pages is in this partition. Discarding always removes
// whole partitions, so a drop cleanly un-indexes a page set without
// leaving useless sibling entries behind.
type Partition struct {
	id        int
	structure Structure
	pages     map[storage.PageID]struct{}

	// bytes is the exact encoded payload size of the partition's
	// entries — Σ (key.EncodedSize() + ridBytes) over live entries —
	// maintained by insert/remove so occupancy-in-bytes is O(1) to
	// read. Structure overhead (tree nodes, hash tables) is not
	// counted; this is the paper's budget unit (entries) expressed in
	// bytes.
	bytes int
}

// ridBytes is the encoded size of one storage.RID: a uint32 page id
// plus a uint16 slot.
const ridBytes = 6

// entryBytes is the encoded payload size of one (key, rid) entry.
func entryBytes(key storage.Value) int { return key.EncodedSize() + ridBytes }

func newPartition(id int, f StructureFactory) *Partition {
	return &Partition{id: id, structure: f(), pages: make(map[storage.PageID]struct{})}
}

// ID returns the partition's identifier, unique within its buffer.
func (p *Partition) ID() int { return p.id }

// PageCount returns X_p — the number of table pages the partition covers.
func (p *Partition) PageCount() int { return len(p.pages) }

// EntryCount returns n_p — the number of (key, rid) entries, the
// partition's size in Index Buffer Space budget units.
func (p *Partition) EntryCount() int { return p.structure.EntryCount() }

// EntryBytes returns the exact encoded payload bytes of the
// partition's entries.
func (p *Partition) EntryBytes() int { return p.bytes }

// insert adds one entry through the structure, keeping the byte count
// in step. Reports whether the entry was actually added (the structure
// dedupes).
func (p *Partition) insert(key storage.Value, rid storage.RID) bool {
	if p.structure.Insert(key, rid) {
		p.bytes += entryBytes(key)
		return true
	}
	return false
}

// remove deletes one entry through the structure, keeping the byte
// count in step. Reports whether the entry was present.
func (p *Partition) remove(key storage.Value, rid storage.RID) bool {
	if p.structure.Delete(key, rid) {
		p.bytes -= entryBytes(key)
		return true
	}
	return false
}

// Covers reports whether the partition covers table page pg.
func (p *Partition) Covers(pg storage.PageID) bool {
	_, ok := p.pages[pg]
	return ok
}

// complete reports whether the partition has reached its page capacity P.
func (p *Partition) complete(P int) bool { return len(p.pages) >= P }

// benefit returns b_p = X_p · T⁻¹ for the given mean access interval of
// the owning buffer.
func (p *Partition) benefit(meanInterval float64) float64 {
	return float64(len(p.pages)) / meanInterval
}
