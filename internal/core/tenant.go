package core

import (
	"fmt"
	"math"
	"sync/atomic"
)

// Tenant is one budget domain of the Index Buffer Space. The paper's
// buffer-space competition (two-stage victim selection, benefit
// b_p = X_p / T_B, §IV) runs per column; tenants generalize it to a
// second level: each tenant's buffers compete among themselves inside
// the tenant's entry quota, and only a tenant with quota headroom may
// take part in the global competition across tenants. A tenant at its
// quota therefore never displaces another tenant's partitions — its
// misses degrade to unindexed scans instead (engine admission).
//
// The used counter is atomic for the same reason the Space's is: buffers
// charge and release entries under their own locks, below Space.mu in
// the lock order, so the tenant ledger must not need any mutex.
type Tenant struct {
	name   string
	quota  int64 // entry budget carved from the Space; <= 0 = unlimited
	strict bool  // over-quota misses error instead of degrading

	used     atomic.Int64  // entries currently held by the tenant's buffers
	degraded atomic.Uint64 // misses degraded to unindexed scans (engine bumps)
	evicted  atomic.Uint64 // entries lost to other tenants' scans

	// exhausted latches when an indexing scan found candidate pages but
	// could not afford even the cheapest one within the tenant's budget
	// (intra-tenant victims included). Page selection is whole-page, so a
	// tenant whose headroom is smaller than every candidate's C[p] would
	// otherwise sit below its quota forever, re-running fruitless
	// indexing scans instead of degrading. The latch clears as soon as
	// any of the tenant's entries are released.
	exhausted atomic.Bool
}

// Name returns the tenant's identifier.
func (t *Tenant) Name() string { return t.name }

// Quota returns the tenant's entry budget (<= 0 means unlimited).
func (t *Tenant) Quota() int { return int(t.quota) }

// Strict reports whether over-quota misses fail with an error instead
// of degrading to unindexed scans.
func (t *Tenant) Strict() bool { return t.strict }

// Used returns the entries currently held across the tenant's buffers.
func (t *Tenant) Used() int { return int(t.used.Load()) }

// Free returns the remaining quota. Like Space.Free it may go negative
// when DML maintenance inserts push usage past the quota (only scans are
// admission-controlled); unlimited tenants report a huge value.
func (t *Tenant) Free() int {
	if t.quota <= 0 {
		return math.MaxInt / 2
	}
	return int(t.quota - t.used.Load())
}

// OverQuota reports whether the tenant has no usable entry budget left —
// the admission condition under which a miss degrades (or, for a strict
// tenant, fails): either the ledger reached the quota, or the last
// indexing scan proved the remaining headroom cannot fit a single page.
func (t *Tenant) OverQuota() bool {
	return t.quota > 0 && (t.used.Load() >= t.quota || t.exhausted.Load())
}

// Exhausted reports the page-granularity latch; see OverQuota.
func (t *Tenant) Exhausted() bool { return t.exhausted.Load() }

// NoteDegraded counts one miss that degraded to an unindexed scan.
func (t *Tenant) NoteDegraded() { t.degraded.Add(1) }

// Degraded returns the number of misses degraded to unindexed scans.
func (t *Tenant) Degraded() uint64 { return t.degraded.Load() }

// Evicted returns the entries this tenant lost to other tenants' scans
// through the global spill of the displacement competition.
func (t *Tenant) Evicted() uint64 { return t.evicted.Load() }

// CreateTenant registers a budget domain with the Space. quota is the
// tenant's entry budget (<= 0 = unlimited); strict makes over-quota
// misses fail instead of degrading. Names must be unique and non-empty.
func (s *Space) CreateTenant(name string, quota int, strict bool) (*Tenant, error) {
	if name == "" {
		return nil, fmt.Errorf("core: tenant name must not be empty")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.tenants[name]; dup {
		return nil, fmt.Errorf("core: tenant %q already exists", name)
	}
	if s.tenants == nil {
		s.tenants = make(map[string]*Tenant)
	}
	t := &Tenant{name: name, quota: int64(quota), strict: strict}
	s.tenants[name] = t
	s.tenantOrder = append(s.tenantOrder, name)
	return t, nil
}

// Tenant returns the named tenant, or nil.
func (s *Space) Tenant(name string) *Tenant {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tenants[name]
}

// Tenants returns all tenants in creation order.
func (s *Space) Tenants() []*Tenant {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Tenant, 0, len(s.tenantOrder))
	for _, n := range s.tenantOrder {
		out = append(out, s.tenants[n])
	}
	return out
}

// tenantFree returns the entry budget the buffer's tenant still has —
// effectively unlimited for buffers of the default (nil) tenant.
func tenantFree(b *IndexBuffer) int {
	if b.tenant == nil {
		return math.MaxInt / 2
	}
	return b.tenant.Free()
}
