package core

import (
	"math/rand"
	"testing"

	"repro/internal/storage"
)

// BenchmarkBufferLookup measures the Index Buffer scan (Algorithm 1
// lines 8–10) across a partitioned buffer.
func BenchmarkBufferLookup(b *testing.B) {
	s := NewSpace(Config{P: 50})
	counters := make([]int, 1000)
	for i := range counters {
		counters[i] = 20
	}
	buf, err := s.CreateBuffer("t.a", counters)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for p := 0; p < 1000; p++ {
		if err := buf.BeginPage(storage.PageID(p)); err != nil {
			b.Fatal(err)
		}
		for k := 0; k < 20; k++ {
			_ = buf.AddEntry(storage.PageID(p), storage.Int64Value(rng.Int63n(50000)),
				storage.RID{Page: storage.PageID(p), Slot: uint16(k)})
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Lookup(storage.Int64Value(rng.Int63n(50000)))
	}
}

// BenchmarkSelectPages measures Algorithm 2 over a large counter array —
// the per-scan page-selection overhead.
func BenchmarkSelectPages(b *testing.B) {
	counters := make([]int, 27000) // the paper's ~27k-page table
	rng := rand.New(rand.NewSource(2))
	for i := range counters {
		counters[i] = 1 + rng.Intn(18)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s := NewSpace(Config{IMax: 5000, P: 10000})
		buf, err := s.CreateBuffer("t.a", counters)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		s.SelectPagesForBuffer(buf, len(counters))
	}
}

// BenchmarkBenefit measures the buffer benefit computation that victim
// selection runs per candidate.
func BenchmarkBenefit(b *testing.B) {
	s := NewSpace(Config{P: 10})
	counters := make([]int, 2000)
	for i := range counters {
		counters[i] = 1
	}
	buf, err := s.CreateBuffer("t.a", counters)
	if err != nil {
		b.Fatal(err)
	}
	for p := 0; p < 2000; p++ {
		_ = buf.BeginPage(storage.PageID(p))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = buf.Benefit()
	}
}
