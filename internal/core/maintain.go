package core

import "repro/internal/storage"

// This file implements the paper's Table I: Index Buffer maintenance
// under inserts, updates and deletes. The four distinguishing conditions
// are whether the old/new tuple value is covered by the partial index
// (t ∈ IX) and whether the old/new page is buffered (p ∈ B).
//
// The partial index's own maintenance (the IX row of Table I) lives in
// internal/index; these methods keep the buffer and the counters
// consistent.
//
// Invariant maintained: for every page p,
//
//	p buffered  ⇒ every uncovered live tuple of p has an entry in p's
//	              partition, and Counter(p) == 0
//	p unbuffered ⇒ Counter(p) == number of uncovered live tuples of p
//
// so a table scan may skip exactly the pages with Counter(p) == 0 without
// missing a match, provided it also consults the buffer.

// MaintainInsert accounts for a newly inserted tuple with the given
// indexed-column value. inIX reports whether the partial index covers the
// value (the index itself was already updated by the caller).
func (b *IndexBuffer) MaintainInsert(v storage.Value, rid storage.RID, inIX bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.maintainInsertLocked(v, rid, inIX)
	b.publishCountersLocked()
}

func (b *IndexBuffer) maintainInsertLocked(v storage.Value, rid storage.RID, inIX bool) {
	b.growPagesLocked(int(rid.Page) + 1)
	if inIX {
		return // covered tuples never concern the buffer
	}
	b.uncovered[rid.Page]++
	if part, ok := b.byPage[rid.Page]; ok {
		// The page stays fully indexed by absorbing the new tuple.
		if part.insert(v, rid) {
			b.charge(1)
		}
	}
}

// MaintainDelete accounts for a deleted tuple. wasInIX reports whether
// the partial index covered the value.
func (b *IndexBuffer) MaintainDelete(v storage.Value, rid storage.RID, wasInIX bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.maintainDeleteLocked(v, rid, wasInIX)
	b.publishCountersLocked()
}

func (b *IndexBuffer) maintainDeleteLocked(v storage.Value, rid storage.RID, wasInIX bool) {
	if wasInIX {
		return
	}
	if int(rid.Page) < len(b.uncovered) && b.uncovered[rid.Page] > 0 {
		b.uncovered[rid.Page]--
	}
	if part, ok := b.byPage[rid.Page]; ok {
		if part.remove(v, rid) {
			b.charge(-1)
		}
	}
}

// MaintainUpdate accounts for an update that changed the tuple's indexed
// value from old to new and/or moved it from oldRID to newRID (a heap
// relocation). oldInIX/newInIX report partial-index coverage of the two
// values. This is the full 4×4 matrix of Table I; the degenerate cases
// where value and RID are unchanged fall through with no effect.
func (b *IndexBuffer) MaintainUpdate(old, new storage.Value, oldRID, newRID storage.RID, oldInIX, newInIX bool) {
	if oldInIX && newInIX {
		// Handled entirely by IX.Update; the buffer never saw the tuple.
		return
	}
	if old.Equal(new) && oldRID == newRID && oldInIX == newInIX {
		return
	}
	// Decompose into the delete of (old, oldRID) and the insert of
	// (new, newRID), under one lock acquisition so concurrent probes never
	// observe the half-applied state; the composition reproduces every
	// Table I cell:
	//
	//	told∈IX, tnew∉IX:  pnew∈B → B.Add(tnew);  pnew∉B → C[pnew]++
	//	told∉IX, tnew∈IX:  pold∈B → B.Remove(told); pold∉B → C[pold]--
	//	told∉IX, tnew∉IX:  both effects, covering the four p∈B cells
	//	                   (B.Update == B.Remove + B.Add when both in B).
	b.mu.Lock()
	defer b.mu.Unlock()
	b.maintainDeleteLocked(old, oldRID, oldInIX)
	b.maintainInsertLocked(new, newRID, newInIX)
	b.publishCountersLocked()
}
