package core

import (
	"math/rand"
	"testing"

	"repro/internal/storage"
)

func TestSelectionOrderString(t *testing.T) {
	cases := map[SelectionOrder]string{
		AscendingCounter:   "ascending",
		DescendingCounter:  "descending",
		RandomOrder:        "random",
		SelectionOrder(99): "unknown",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", k, got, want)
		}
	}
}

func TestSelectionOrderPolicies(t *testing.T) {
	counters := []int{5, 1, 4, 2, 3}

	pick := func(sel SelectionOrder, imax int) []storage.PageID {
		s := NewSpace(Config{IMax: imax, P: 10, Selection: sel, Rand: rand.New(rand.NewSource(3))})
		b, err := s.CreateBuffer("t.a", counters)
		if err != nil {
			t.Fatal(err)
		}
		return s.SelectPagesForBuffer(b, len(counters))
	}

	// Ascending picks the two cheapest pages (C=1 and C=2).
	got := pick(AscendingCounter, 2)
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Errorf("ascending selected %v, want [1 3]", got)
	}
	// Descending picks the two most expensive (C=5 and C=4).
	got = pick(DescendingCounter, 2)
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("descending selected %v, want [0 2]", got)
	}
	// Random selects the requested count from the candidate set.
	got = pick(RandomOrder, 3)
	if len(got) != 3 {
		t.Errorf("random selected %d pages, want 3", len(got))
	}
	seen := map[storage.PageID]bool{}
	for _, p := range got {
		if seen[p] {
			t.Errorf("random selected page %d twice", p)
		}
		seen[p] = true
	}
}

// TestSelectionAscendingMaximizesSkipsPerEntry checks the paper's §III
// argument quantitatively: with a budget of entries, ascending-counter
// selection buys more skippable pages than descending.
func TestSelectionAscendingMaximizesSkipsPerEntry(t *testing.T) {
	counters := make([]int, 100)
	for i := range counters {
		counters[i] = 1 + i%10 // counters 1..10
	}
	run := func(sel SelectionOrder) int {
		s := NewSpace(Config{IMax: 1000, P: 50, SpaceLimit: 60, Selection: sel, Rand: rand.New(rand.NewSource(4))})
		b, err := s.CreateBuffer("t.a", counters)
		if err != nil {
			t.Fatal(err)
		}
		pages := s.SelectPagesForBuffer(b, len(counters))
		return len(pages)
	}
	asc, desc := run(AscendingCounter), run(DescendingCounter)
	if asc <= desc {
		t.Errorf("ascending bought %d pages, descending %d; paper's policy should win", asc, desc)
	}
}

// TestVictimPolicyProtectsHotBuffer compares the paper's benefit-weighted
// victim choice against uniform random: under repeated displacement
// pressure from a third buffer, the hot (frequently used) buffer should
// retain more of its entries under the paper's policy.
func TestVictimPolicyProtectsHotBuffer(t *testing.T) {
	run := func(policy VictimPolicy, seed int64) (hotLost, coldLost int) {
		// I^MAX < P keeps displacement marginal (one scan's new info
		// cannot outbid arbitrarily many partitions), so the victim
		// choice, not wholesale eviction, decides who shrinks.
		s := NewSpace(Config{
			IMax: 4, P: 2, K: 2, SpaceLimit: 40,
			Victims: policy, Rand: rand.New(rand.NewSource(seed)),
		})
		mk := func(name string) *IndexBuffer {
			counters := make([]int, 20)
			for i := range counters {
				counters[i] = 2
			}
			b, err := s.CreateBuffer(name, counters)
			if err != nil {
				t.Fatal(err)
			}
			return b
		}
		hot, cold, grower := mk("hot"), mk("cold"), mk("grower")
		fill := func(b *IndexBuffer, pages int) {
			sel := s.SelectPagesForBuffer(b, pages)
			for _, pg := range sel {
				n := b.Counter(pg)
				_ = b.BeginPage(pg)
				for k := 0; k < n; k++ {
					_ = b.AddEntry(pg, storage.Int64Value(int64(pg)*10+int64(k)), storage.RID{Page: pg, Slot: uint16(k)})
				}
			}
		}
		fill(hot, 10)
		fill(cold, 10)
		hotBefore, coldBefore := hot.EntryCount(), cold.EntryCount()
		// hot stays hot (used every other query); cold never queried; the
		// grower displaces a little every round.
		for i := 0; i < 12; i++ {
			s.OnQuery(hot, false)
			s.OnQuery(grower, false)
			fill(grower, 20)
		}
		return hotBefore - hot.EntryCount(), coldBefore - cold.EntryCount()
	}

	weightedHotLost, weightedColdLost := 0, 0
	uniformHotLost := 0
	for seed := int64(0); seed < 10; seed++ {
		h, c := run(BenefitWeighted, seed)
		weightedHotLost += h
		weightedColdLost += c
		h, _ = run(UniformVictims, seed)
		uniformHotLost += h
	}
	if weightedHotLost > weightedColdLost {
		t.Errorf("benefit-weighted: hot lost %d > cold lost %d", weightedHotLost, weightedColdLost)
	}
	if weightedHotLost >= uniformHotLost {
		t.Errorf("hot buffer lost %d entries under benefit-weighting vs %d under uniform; the paper's policy should protect it",
			weightedHotLost, uniformHotLost)
	}
}

// TestSelectionSeedDeterminism pins the seeding convention for the
// Space's random streams: a Config with only a Seed (nil Rand) must
// replay bit-for-bit, and different seeds must be able to differ.
func TestSelectionSeedDeterminism(t *testing.T) {
	counters := make([]int, 64)
	for i := range counters {
		counters[i] = 1 + i%7
	}
	run := func(seed int64) [][]storage.PageID {
		s := NewSpace(Config{IMax: 8, P: 16, Seed: seed, Selection: RandomOrder})
		b, err := s.CreateBuffer("t.a", counters)
		if err != nil {
			t.Fatal(err)
		}
		var rounds [][]storage.PageID
		for i := 0; i < 5; i++ {
			sel := s.SelectPagesForBuffer(b, len(counters))
			rounds = append(rounds, sel)
			for _, pg := range sel {
				n := b.Counter(pg)
				_ = b.BeginPage(pg)
				for k := 0; k < n; k++ {
					_ = b.AddEntry(pg, storage.Int64Value(int64(pg)), storage.RID{Page: pg, Slot: uint16(k)})
				}
			}
		}
		return rounds
	}
	a, b := run(42), run(42)
	for i := range a {
		if len(a[i]) != len(b[i]) {
			t.Fatalf("round %d: %d vs %d pages for the same seed", i, len(a[i]), len(b[i]))
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("round %d: same seed diverged: %v vs %v", i, a[i], b[i])
			}
		}
	}
	c := run(43)
	same := true
	for i := range a {
		if len(a[i]) != len(c[i]) {
			same = false
			break
		}
		for j := range a[i] {
			if a[i][j] != c[i][j] {
				same = false
			}
		}
	}
	if same {
		t.Error("seeds 42 and 43 produced identical random selections across 5 rounds")
	}
}

// TestSelectionStreamIndependence checks that the RandomOrder shuffle
// consumes a derived sub-stream, not the victim-selection stream: the
// displacement outcome (which buffer lost how many entries) must be
// identical whether the target's candidate order is ascending or
// shuffled, for a setup where every candidate is selected either way.
func TestSelectionStreamIndependence(t *testing.T) {
	run := func(sel SelectionOrder) (victimEntries int, stats SpaceStats) {
		// Two decoy buffers filled to the budget; the target's scan must
		// displace. IMax covers all 6 candidate pages, so ascending vs
		// shuffled order selects the same set and needs the same space —
		// only the victim-stream draws decide who loses.
		s := NewSpace(Config{IMax: 10, P: 2, SpaceLimit: 12, Seed: 9, Selection: sel})
		mk := func(name string) *IndexBuffer {
			b, err := s.CreateBuffer(name, []int{1, 1, 1, 1, 1, 1})
			if err != nil {
				t.Fatal(err)
			}
			return b
		}
		d1, d2, target := mk("t.d1"), mk("t.d2"), mk("t.t")
		fill := func(b *IndexBuffer) {
			for _, pg := range s.SelectPagesForBuffer(b, 6) {
				_ = b.BeginPage(pg)
				_ = b.AddEntry(pg, storage.Int64Value(int64(pg)), storage.RID{Page: pg, Slot: 0})
			}
		}
		fill(d1)
		fill(d2)
		s.OnQuery(target, false) // target hot: displacement accepted
		fill(target)
		return d1.EntryCount() + 10*d2.EntryCount(), s.Stats()
	}
	ascEntries, ascStats := run(AscendingCounter)
	rndEntries, rndStats := run(RandomOrder)
	if ascEntries != rndEntries {
		t.Errorf("victim outcome differs across selection policies: ascending %d vs random %d (shuffle perturbed the victim stream)",
			ascEntries, rndEntries)
	}
	if ascStats != rndStats {
		t.Errorf("space stats differ: %+v vs %+v", ascStats, rndStats)
	}
}

// TestDisplacementJitterDeterminismAndEffect drives repeated
// displacement against one buffer and checks (a) jittered victim picks
// replay bit-for-bit for a fixed seed, and (b) jitter actually changes
// victim choices relative to the deterministic stage-2 order.
func TestDisplacementJitterDeterminismAndEffect(t *testing.T) {
	run := func(jitter float64, seed int64) []int {
		// Asymmetric counters so partitions hold distinct entry totals —
		// the occupancy trajectory then fingerprints which partition each
		// displacement dropped.
		s := NewSpace(Config{IMax: 2, P: 2, SpaceLimit: 30, Seed: seed, DisplacementJitter: jitter})
		counters := []int{1, 2, 3, 4, 5, 1, 2, 3, 4, 5}
		victim, err := s.CreateBuffer("t.v", counters)
		if err != nil {
			t.Fatal(err)
		}
		grower, err := s.CreateBuffer("t.g", counters)
		if err != nil {
			t.Fatal(err)
		}
		fill := func(b *IndexBuffer) {
			for _, pg := range s.SelectPagesForBuffer(b, len(counters)) {
				n := b.Counter(pg)
				_ = b.BeginPage(pg)
				for k := 0; k < n; k++ {
					_ = b.AddEntry(pg, storage.Int64Value(int64(pg)), storage.RID{Page: pg, Slot: uint16(k)})
				}
			}
		}
		// Build the victim to the budget (5 rounds of 2 pages).
		for i := 0; i < 5; i++ {
			fill(victim)
		}
		// The grower repeatedly displaces; record the victim's occupancy
		// trajectory, which fingerprints the partition choices.
		var traj []int
		for i := 0; i < 6; i++ {
			s.OnQuery(grower, false)
			fill(grower)
			traj = append(traj, victim.EntryCount()+100*grower.EntryCount())
		}
		return traj
	}
	j1, j2 := run(1, 5), run(1, 5)
	for i := range j1 {
		if j1[i] != j2[i] {
			t.Fatalf("jittered run diverged for the same seed: %v vs %v", j1, j2)
		}
	}
	det := run(0, 5)
	differs := false
	for seed := int64(5); seed < 10 && !differs; seed++ {
		jit := run(1, seed)
		for i := range det {
			if jit[i] != det[i] {
				differs = true
				break
			}
		}
	}
	if !differs {
		t.Error("DisplacementJitter=1 never changed a victim choice across 5 seeds")
	}
}

func TestVictimPolicyString(t *testing.T) {
	if BenefitWeighted.String() != "benefit-weighted" || UniformVictims.String() != "uniform" {
		t.Error("VictimPolicy names wrong")
	}
	if VictimPolicy(9).String() != "unknown" {
		t.Error("unknown policy name wrong")
	}
}
