package core

import (
	"math/rand"
	"testing"

	"repro/internal/storage"
)

func TestSelectionOrderString(t *testing.T) {
	cases := map[SelectionOrder]string{
		AscendingCounter:   "ascending",
		DescendingCounter:  "descending",
		RandomOrder:        "random",
		SelectionOrder(99): "unknown",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", k, got, want)
		}
	}
}

func TestSelectionOrderPolicies(t *testing.T) {
	counters := []int{5, 1, 4, 2, 3}

	pick := func(sel SelectionOrder, imax int) []storage.PageID {
		s := NewSpace(Config{IMax: imax, P: 10, Selection: sel, Rand: rand.New(rand.NewSource(3))})
		b, err := s.CreateBuffer("t.a", counters)
		if err != nil {
			t.Fatal(err)
		}
		return s.SelectPagesForBuffer(b, len(counters))
	}

	// Ascending picks the two cheapest pages (C=1 and C=2).
	got := pick(AscendingCounter, 2)
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Errorf("ascending selected %v, want [1 3]", got)
	}
	// Descending picks the two most expensive (C=5 and C=4).
	got = pick(DescendingCounter, 2)
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("descending selected %v, want [0 2]", got)
	}
	// Random selects the requested count from the candidate set.
	got = pick(RandomOrder, 3)
	if len(got) != 3 {
		t.Errorf("random selected %d pages, want 3", len(got))
	}
	seen := map[storage.PageID]bool{}
	for _, p := range got {
		if seen[p] {
			t.Errorf("random selected page %d twice", p)
		}
		seen[p] = true
	}
}

// TestSelectionAscendingMaximizesSkipsPerEntry checks the paper's §III
// argument quantitatively: with a budget of entries, ascending-counter
// selection buys more skippable pages than descending.
func TestSelectionAscendingMaximizesSkipsPerEntry(t *testing.T) {
	counters := make([]int, 100)
	for i := range counters {
		counters[i] = 1 + i%10 // counters 1..10
	}
	run := func(sel SelectionOrder) int {
		s := NewSpace(Config{IMax: 1000, P: 50, SpaceLimit: 60, Selection: sel, Rand: rand.New(rand.NewSource(4))})
		b, err := s.CreateBuffer("t.a", counters)
		if err != nil {
			t.Fatal(err)
		}
		pages := s.SelectPagesForBuffer(b, len(counters))
		return len(pages)
	}
	asc, desc := run(AscendingCounter), run(DescendingCounter)
	if asc <= desc {
		t.Errorf("ascending bought %d pages, descending %d; paper's policy should win", asc, desc)
	}
}

// TestVictimPolicyProtectsHotBuffer compares the paper's benefit-weighted
// victim choice against uniform random: under repeated displacement
// pressure from a third buffer, the hot (frequently used) buffer should
// retain more of its entries under the paper's policy.
func TestVictimPolicyProtectsHotBuffer(t *testing.T) {
	run := func(policy VictimPolicy, seed int64) (hotLost, coldLost int) {
		// I^MAX < P keeps displacement marginal (one scan's new info
		// cannot outbid arbitrarily many partitions), so the victim
		// choice, not wholesale eviction, decides who shrinks.
		s := NewSpace(Config{
			IMax: 4, P: 2, K: 2, SpaceLimit: 40,
			Victims: policy, Rand: rand.New(rand.NewSource(seed)),
		})
		mk := func(name string) *IndexBuffer {
			counters := make([]int, 20)
			for i := range counters {
				counters[i] = 2
			}
			b, err := s.CreateBuffer(name, counters)
			if err != nil {
				t.Fatal(err)
			}
			return b
		}
		hot, cold, grower := mk("hot"), mk("cold"), mk("grower")
		fill := func(b *IndexBuffer, pages int) {
			sel := s.SelectPagesForBuffer(b, pages)
			for _, pg := range sel {
				n := b.Counter(pg)
				_ = b.BeginPage(pg)
				for k := 0; k < n; k++ {
					_ = b.AddEntry(pg, storage.Int64Value(int64(pg)*10+int64(k)), storage.RID{Page: pg, Slot: uint16(k)})
				}
			}
		}
		fill(hot, 10)
		fill(cold, 10)
		hotBefore, coldBefore := hot.EntryCount(), cold.EntryCount()
		// hot stays hot (used every other query); cold never queried; the
		// grower displaces a little every round.
		for i := 0; i < 12; i++ {
			s.OnQuery(hot, false)
			s.OnQuery(grower, false)
			fill(grower, 20)
		}
		return hotBefore - hot.EntryCount(), coldBefore - cold.EntryCount()
	}

	weightedHotLost, weightedColdLost := 0, 0
	uniformHotLost := 0
	for seed := int64(0); seed < 10; seed++ {
		h, c := run(BenefitWeighted, seed)
		weightedHotLost += h
		weightedColdLost += c
		h, _ = run(UniformVictims, seed)
		uniformHotLost += h
	}
	if weightedHotLost > weightedColdLost {
		t.Errorf("benefit-weighted: hot lost %d > cold lost %d", weightedHotLost, weightedColdLost)
	}
	if weightedHotLost >= uniformHotLost {
		t.Errorf("hot buffer lost %d entries under benefit-weighting vs %d under uniform; the paper's policy should protect it",
			weightedHotLost, uniformHotLost)
	}
}

func TestVictimPolicyString(t *testing.T) {
	if BenefitWeighted.String() != "benefit-weighted" || UniformVictims.String() != "uniform" {
		t.Error("VictimPolicy names wrong")
	}
	if VictimPolicy(9).String() != "unknown" {
		t.Error("unknown policy name wrong")
	}
}
