package core

import "sync"

// History is the LRU-K access history of one Index Buffer (paper §IV,
// Table II; O'Neil, O'Neil & Weikum's LRU-K). It records the lengths of
// the last K access intervals, where an interval is the number of queries
// between two uses of the buffer. Slot 0 is the running interval.
//
// Per Table II, the history of the queried column's buffer advances to a
// new interval only when the query actually *uses* the buffer (a
// partial-index miss); every other query — hits on the queried column and
// all queries on other columns — just lengthens the running interval.
//
// History carries its own mutex so concurrent queries can advance the
// histories of every buffer (Space.OnQuery) without holding any buffer's
// structural lock; it is the innermost lock of the core package's
// ordering (Space.mu → IndexBuffer.mu → History.mu).
type History struct {
	mu        sync.Mutex
	intervals []int // intervals[0] is the running interval
}

// NewHistory creates a history of depth k (k >= 1). All intervals start
// at zero: a fresh buffer looks recently used, which front-loads benefit
// to new index information — exactly the "quickly of help" goal the
// management strategy balances (§IV).
func NewHistory(k int) *History {
	if k < 1 {
		k = 1
	}
	return &History{intervals: make([]int, k)}
}

// K returns the history depth.
func (h *History) K() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.intervals)
}

// Tick lengthens the running interval by one query — the buffer was not
// used by this query (partial-index hit, or a query on another column).
func (h *History) Tick() {
	h.mu.Lock()
	h.intervals[0]++
	h.mu.Unlock()
}

// Use closes the running interval and starts a new one — the buffer was
// used by this query (partial-index miss on its column). The oldest
// interval falls out of the window.
func (h *History) Use() {
	h.mu.Lock()
	copy(h.intervals[1:], h.intervals)
	h.intervals[0] = 0
	h.mu.Unlock()
}

// Mean returns the mean access interval T_B = K⁻¹ · Σ H_B[i], floored at
// 1 so that benefit values b = X / T_B stay finite for buffers used on
// consecutive queries.
func (h *History) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	sum := 0
	for _, v := range h.intervals {
		sum += v
	}
	m := float64(sum) / float64(len(h.intervals))
	if m < 1 {
		return 1
	}
	return m
}

// Snapshot returns a copy of the intervals, running interval first.
func (h *History) Snapshot() []int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]int(nil), h.intervals...)
}
