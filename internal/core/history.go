package core

import (
	"sync"
	"sync/atomic"
)

// History is the LRU-K access history of one Index Buffer (paper §IV,
// Table II; O'Neil, O'Neil & Weikum's LRU-K). It records the lengths of
// the last K access intervals, where an interval is the number of
// queries between two uses of the buffer.
//
// Per Table II, the history of the queried column's buffer advances to
// a new interval only when the query actually *uses* the buffer (a
// partial-index miss); every other query — hits on the queried column
// and all queries on other columns — just lengthens the running
// interval.
//
// The running interval is not stored: it is derived from a global query
// clock shared by every history of one Space. "This query lengthens
// every unused buffer's running interval" then costs a single atomic
// increment of the clock instead of a per-buffer mutex walk, which is
// what lets the epoch-based read path record its queries without
// taking any lock (Space.OnQuery). Only an actual use — rare, and
// already serialized per buffer by the owning table's write lock —
// touches the history's mutex. The observable values (Mean, Snapshot)
// are identical to the stored-intervals formulation: with lastUse the
// clock value of the buffer's most recent use, the running interval is
// clock−lastUse, and the interval closed by a use at clock g is
// g−lastUse−1 (the queries strictly between the two using queries,
// which are the ones that would have Ticked it).
type History struct {
	clock *atomic.Uint64 // shared query clock; owned by the Space (or private)

	mu      sync.Mutex
	k       int
	lastUse uint64 // clock value of the most recent use
	closed  []int  // k-1 most recently closed intervals, [0] newest
}

// NewHistory creates a standalone history of depth k (k >= 1) with its
// own query clock. All intervals start at zero: a fresh buffer looks
// recently used, which front-loads benefit to new index information —
// exactly the "quickly of help" goal the management strategy balances
// (§IV). Buffers created inside a Space share the Space's clock instead
// (newHistory).
func NewHistory(k int) *History {
	return newHistory(k, new(atomic.Uint64))
}

// newHistory creates a history on an existing clock, starting its
// running interval now.
func newHistory(k int, clock *atomic.Uint64) *History {
	if k < 1 {
		k = 1
	}
	return &History{clock: clock, k: k, lastUse: clock.Load(), closed: make([]int, k-1)}
}

// K returns the history depth.
func (h *History) K() int { return h.k }

// Tick lengthens the running interval by one query — the buffer was not
// used by this query. On a shared clock this advances every sibling
// history's running interval too, exactly as one Space-level query
// would; standalone histories keep the old per-history semantics.
func (h *History) Tick() { h.clock.Add(1) }

// Use records one query that used the buffer: the running interval
// closes and a new one starts.
func (h *History) Use() { h.useAt(h.clock.Add(1)) }

// useAt closes the running interval against a use at clock value g.
// The closed interval excludes both using queries; the oldest interval
// falls out of the window.
func (h *History) useAt(g uint64) {
	h.mu.Lock()
	if g > h.lastUse {
		run := int(g - h.lastUse - 1)
		if len(h.closed) > 0 {
			copy(h.closed[1:], h.closed)
			h.closed[0] = run
		}
		h.lastUse = g
	}
	h.mu.Unlock()
}

// Mean returns the mean access interval T_B = K⁻¹ · Σ H_B[i], floored
// at 1 so that benefit values b = X / T_B stay finite for buffers used
// on consecutive queries.
func (h *History) Mean() float64 {
	g := h.clock.Load()
	h.mu.Lock()
	defer h.mu.Unlock()
	sum := 0
	if g > h.lastUse {
		sum = int(g - h.lastUse)
	}
	for _, v := range h.closed {
		sum += v
	}
	m := float64(sum) / float64(h.k)
	if m < 1 {
		return 1
	}
	return m
}

// Snapshot returns a copy of the intervals, running interval first.
func (h *History) Snapshot() []int {
	g := h.clock.Load()
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]int, h.k)
	if g > h.lastUse {
		out[0] = int(g - h.lastUse)
	}
	copy(out[1:], h.closed)
	return out
}
