package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/storage"
)

// matrixFixture builds a buffer over four pages: pages 0 and 1 are
// buffered (in B), pages 2 and 3 are not. Each page starts with one
// uncovered tuple (value 100+page) already accounted; buffered pages have
// the corresponding buffer entry, per the invariant.
func matrixFixture(t *testing.T) (*Space, *IndexBuffer) {
	t.Helper()
	s, b := newBuf(t, Config{P: 2}, []int{1, 1, 1, 1})
	for p := 0; p < 2; p++ {
		if err := b.BeginPage(storage.PageID(p)); err != nil {
			t.Fatal(err)
		}
		if err := b.AddEntry(storage.PageID(p), iv(int64(100+p)), rid(p, 0)); err != nil {
			t.Fatal(err)
		}
	}
	return s, b
}

// TestMaintenanceMatrixTableI exhaustively checks the 16 cells of the
// paper's Table I: (told ∈ IX) × (tnew ∈ IX) × (pold ∈ B) × (pnew ∈ B).
func TestMaintenanceMatrixTableI(t *testing.T) {
	pageFor := func(inB bool, old bool) storage.PageID {
		// Buffered: old on page 0, new on page 1. Unbuffered: 2 / 3.
		if inB {
			if old {
				return 0
			}
			return 1
		}
		if old {
			return 2
		}
		return 3
	}

	for _, oldInIX := range []bool{true, false} {
		for _, newInIX := range []bool{true, false} {
			for _, pOldInB := range []bool{true, false} {
				for _, pNewInB := range []bool{true, false} {
					name := fmt.Sprintf("told∈IX=%v tnew∈IX=%v pold∈B=%v pnew∈B=%v",
						oldInIX, newInIX, pOldInB, pNewInB)
					t.Run(name, func(t *testing.T) {
						_, b := matrixFixture(t)
						pOld, pNew := pageFor(pOldInB, true), pageFor(pNewInB, false)
						oldRID := rid(int(pOld), 5)
						newRID := rid(int(pNew), 6)
						oldVal, newVal := iv(777), iv(888)

						// Precondition: if the old tuple is uncovered, it
						// must be accounted — in the buffer when its page
						// is buffered, in the counter otherwise.
						if !oldInIX {
							if pOldInB {
								if err := b.AddEntry(pOld, oldVal, oldRID); err != nil {
									t.Fatal(err)
								}
							}
							b.uncovered[pOld]++
						}
						entriesBefore := b.EntryCount()
						uncovNewBefore := b.Uncovered(pNew)
						uncovOldBefore := b.Uncovered(pOld)

						b.MaintainUpdate(oldVal, newVal, oldRID, newRID, oldInIX, newInIX)

						// Expected buffer membership afterwards.
						wantOldEntry := false // (oldVal, oldRID) must be gone in all cells
						wantNewEntry := !newInIX && pNewInB
						if got := containsEntry(b, oldVal, oldRID); got != wantOldEntry {
							t.Errorf("old entry present=%v, want %v", got, wantOldEntry)
						}
						if got := containsEntry(b, newVal, newRID); got != wantNewEntry {
							t.Errorf("new entry present=%v, want %v", got, wantNewEntry)
						}

						// Counter (uncovered) deltas.
						wantOldDelta, wantNewDelta := 0, 0
						if !oldInIX {
							wantOldDelta-- // the uncovered old tuple left pOld
						}
						if !newInIX {
							wantNewDelta++ // an uncovered tuple arrived at pNew
						}
						if pOld == pNew {
							d := wantOldDelta + wantNewDelta
							if got := b.Uncovered(pOld) - uncovOldBefore; got != d {
								t.Errorf("uncovered[%d] delta = %d, want %d", pOld, got, d)
							}
						} else {
							if got := b.Uncovered(pOld) - uncovOldBefore; got != wantOldDelta {
								t.Errorf("uncovered[pold] delta = %d, want %d", got, wantOldDelta)
							}
							if got := b.Uncovered(pNew) - uncovNewBefore; got != wantNewDelta {
								t.Errorf("uncovered[pnew] delta = %d, want %d", got, wantNewDelta)
							}
						}

						// Entry-count delta follows membership changes.
						wantEntryDelta := 0
						if !oldInIX && pOldInB {
							wantEntryDelta--
						}
						if wantNewEntry {
							wantEntryDelta++
						}
						if got := b.EntryCount() - entriesBefore; got != wantEntryDelta {
							t.Errorf("entry delta = %d, want %d", got, wantEntryDelta)
						}

						// Buffered pages always read counter 0; unbuffered
						// pages read their uncovered count.
						for p := 0; p < 4; p++ {
							pg := storage.PageID(p)
							want := b.Uncovered(pg)
							if b.PageBuffered(pg) {
								want = 0
							}
							if got := b.Counter(pg); got != want {
								t.Errorf("Counter(%d) = %d, want %d", p, got, want)
							}
						}
					})
				}
			}
		}
	}
}

// modelTuple is a live (value, rid) pair in the randomized model.
type modelTuple struct {
	v storage.Value
	r storage.RID
}

func containsEntry(b *IndexBuffer, v storage.Value, r storage.RID) bool {
	for _, got := range b.Lookup(v) {
		if got == r {
			return true
		}
	}
	return false
}

func TestMaintainInsert(t *testing.T) {
	t.Run("covered is ignored", func(t *testing.T) {
		s, b := matrixFixture(t)
		used := s.Used()
		b.MaintainInsert(iv(5), rid(2, 9), true)
		if s.Used() != used || b.Uncovered(2) != 1 {
			t.Error("covered insert touched buffer state")
		}
	})
	t.Run("uncovered on buffered page joins buffer", func(t *testing.T) {
		s, b := matrixFixture(t)
		used := s.Used()
		b.MaintainInsert(iv(5), rid(0, 9), false)
		if !containsEntry(b, iv(5), rid(0, 9)) {
			t.Error("entry not added")
		}
		if s.Used() != used+1 {
			t.Error("space not charged")
		}
		if b.Counter(0) != 0 {
			t.Error("buffered page counter should stay 0")
		}
		if b.Uncovered(0) != 2 {
			t.Errorf("uncovered = %d, want 2", b.Uncovered(0))
		}
	})
	t.Run("uncovered on plain page bumps counter", func(t *testing.T) {
		_, b := matrixFixture(t)
		b.MaintainInsert(iv(5), rid(2, 9), false)
		if b.Counter(2) != 2 {
			t.Errorf("counter = %d, want 2", b.Counter(2))
		}
	})
	t.Run("insert on brand-new page grows counters", func(t *testing.T) {
		_, b := matrixFixture(t)
		b.MaintainInsert(iv(5), rid(9, 0), false)
		if b.NumPages() != 10 || b.Counter(9) != 1 {
			t.Errorf("pages=%d C[9]=%d", b.NumPages(), b.Counter(9))
		}
	})
}

func TestMaintainDelete(t *testing.T) {
	t.Run("covered is ignored", func(t *testing.T) {
		_, b := matrixFixture(t)
		b.MaintainDelete(iv(100), rid(0, 0), true)
		if !containsEntry(b, iv(100), rid(0, 0)) {
			t.Error("covered delete removed a buffer entry")
		}
	})
	t.Run("uncovered on buffered page leaves buffer", func(t *testing.T) {
		s, b := matrixFixture(t)
		used := s.Used()
		b.MaintainDelete(iv(100), rid(0, 0), false)
		if containsEntry(b, iv(100), rid(0, 0)) {
			t.Error("entry not removed")
		}
		if s.Used() != used-1 {
			t.Error("space not released")
		}
		if b.Uncovered(0) != 0 {
			t.Errorf("uncovered = %d, want 0", b.Uncovered(0))
		}
	})
	t.Run("uncovered on plain page drops counter", func(t *testing.T) {
		_, b := matrixFixture(t)
		b.MaintainDelete(iv(102), rid(2, 0), false)
		if b.Counter(2) != 0 {
			t.Errorf("counter = %d, want 0", b.Counter(2))
		}
		// Counter never goes negative, even on spurious deletes.
		b.MaintainDelete(iv(1), rid(2, 1), false)
		if b.Counter(2) != 0 {
			t.Errorf("counter went negative: %d", b.Counter(2))
		}
	})
}

func TestMaintainUpdateNoop(t *testing.T) {
	s, b := matrixFixture(t)
	used := s.Used()
	// Same value, same rid, same coverage: nothing changes.
	b.MaintainUpdate(iv(100), iv(100), rid(0, 0), rid(0, 0), false, false)
	if s.Used() != used || !containsEntry(b, iv(100), rid(0, 0)) {
		t.Error("no-op update changed state")
	}
}

// TestMaintenanceInvariantRandomized runs random DML against a model and
// verifies the core skip-safety invariant: for every page, the counter is
// zero iff buffered, and the buffer holds exactly the uncovered tuples of
// buffered pages.
func TestMaintenanceInvariantRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	const pages = 8
	covered := func(v storage.Value) bool { return v.Int64() < 50 } // IX covers < 50

	s, b := newBuf(t, Config{P: 3}, make([]int, pages))
	_ = s

	// Model: per page, the set of live (value, rid). Slots allocated
	// sequentially per page.
	model := map[storage.PageID][]modelTuple{}
	nextSlot := map[storage.PageID]int{}

	// Buffer pages 0..3.
	for p := 0; p < 4; p++ {
		_ = b.BeginPage(storage.PageID(p))
	}

	randVal := func() storage.Value { return iv(rng.Int63n(100)) }
	insert := func(pg storage.PageID) {
		v := randVal()
		r := storage.RID{Page: pg, Slot: uint16(nextSlot[pg])}
		nextSlot[pg]++
		model[pg] = append(model[pg], modelTuple{v, r})
		b.MaintainInsert(v, r, covered(v))
	}
	remove := func(pg storage.PageID) {
		rows := model[pg]
		if len(rows) == 0 {
			return
		}
		i := rng.Intn(len(rows))
		b.MaintainDelete(rows[i].v, rows[i].r, covered(rows[i].v))
		model[pg] = append(rows[:i], rows[i+1:]...)
	}
	update := func(pgOld, pgNew storage.PageID) {
		rows := model[pgOld]
		if len(rows) == 0 {
			return
		}
		i := rng.Intn(len(rows))
		old := rows[i]
		nv := randVal()
		nr := storage.RID{Page: pgNew, Slot: uint16(nextSlot[pgNew])}
		nextSlot[pgNew]++
		b.MaintainUpdate(old.v, nv, old.r, nr, covered(old.v), covered(nv))
		model[pgOld] = append(rows[:i], rows[i+1:]...)
		model[pgNew] = append(model[pgNew], modelTuple{nv, nr})
	}

	for step := 0; step < 4000; step++ {
		pg := storage.PageID(rng.Intn(pages))
		switch rng.Intn(3) {
		case 0:
			insert(pg)
		case 1:
			remove(pg)
		default:
			update(pg, storage.PageID(rng.Intn(pages)))
		}

		if step%250 != 0 {
			continue
		}
		verifyInvariant(t, b, model, covered, step)
	}
	verifyInvariant(t, b, model, covered, -1)
}

func verifyInvariant(t *testing.T, b *IndexBuffer, model map[storage.PageID][]modelTuple, covered func(storage.Value) bool, step int) {
	t.Helper()
	for pg, rows := range model {
		uncov := 0
		for _, row := range rows {
			if !covered(row.v) {
				uncov++
				inBuf := containsEntry(b, row.v, row.r)
				if b.PageBuffered(pg) && !inBuf {
					t.Fatalf("step %d: uncovered tuple %v@%v of buffered page missing from buffer", step, row.v, row.r)
				}
				if !b.PageBuffered(pg) && inBuf {
					t.Fatalf("step %d: tuple %v@%v of unbuffered page present in buffer", step, row.v, row.r)
				}
			}
		}
		if got := b.Uncovered(pg); got != uncov {
			t.Fatalf("step %d: page %d uncovered = %d, model = %d", step, pg, got, uncov)
		}
		wantC := uncov
		if b.PageBuffered(pg) {
			wantC = 0
		}
		if got := b.Counter(pg); got != wantC {
			t.Fatalf("step %d: page %d counter = %d, want %d", step, pg, got, wantC)
		}
	}
}
