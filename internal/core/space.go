package core

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/epoch"
	"repro/internal/storage"
)

// Space is the Index Buffer Space (paper §IV): the bounded share of the
// database buffer that holds all Index Buffers. It owns the entry budget,
// the LRU-K bookkeeping across buffers (Table II), and the page-selection
// / displacement policy (Algorithm 2).
//
// Concurrency: the Space's mutex guards the buffer registry and
// serializes displacement (SelectPagesForBuffer), which is the only path
// that reaches across buffers. The entry budget is an atomic counter so
// buffers can charge and release it under their own locks without
// touching the Space's mutex — the lock order is strictly
// Space.mu → IndexBuffer.mu → History.mu, never the reverse.
type Space struct {
	cfg  Config
	used atomic.Int64 // total entries across all buffers

	// clock is the global query clock behind every buffer's LRU-K
	// history (see History): one atomic increment per query replaces
	// the old under-mutex walk of every buffer, so OnQuery is safe from
	// the engine's lock-free read path.
	clock atomic.Uint64

	// epochs, when set, receives the counter snapshots that buffer
	// mutations displace (publishCountersLocked); nil means retired
	// snapshots are simply dropped for the garbage collector. Set once
	// at engine construction, before any traffic.
	epochs *epoch.Domain

	mu      sync.Mutex
	buffers map[string]*IndexBuffer
	order   []string // creation order, for deterministic iteration
	stats   SpaceStats
	obs     Observer // optional management-event sink; may be nil

	tenants     map[string]*Tenant
	tenantOrder []string
}

// Observer receives buffer-management span events from the Space. The
// kinds mirror internal/trace's span constants (this package cannot
// import trace without a cycle): "page-select" after Algorithm 2 chose
// the page set I (buffer = target, n = |I|), "displace" for each
// victim partition dropped (buffer = victim's owner, n = entries
// released), and "buffer-reset" when a buffer is dropped wholesale
// (partial index dropped or redefined; n = entries released) — a new
// buffer under the same name starts a fresh adaptation episode.
// Implementations are called with Space.mu held and must not call back
// into the Space or its buffers.
type Observer interface {
	SpaceEvent(kind, buffer string, page, n int)
}

// SetObserver attaches the management-event sink (nil detaches). The
// engine points it at the tracer's span ring; emission is gated there,
// so an attached observer costs one interface call per indexing scan.
func (s *Space) SetObserver(o Observer) {
	s.mu.Lock()
	s.obs = o
	s.mu.Unlock()
}

// SetEpochDomain attaches the epoch-reclamation domain that receives
// retired counter snapshots. Must be called before any buffer traffic
// (the engine does it at construction); the field is read without
// synchronization afterwards.
func (s *Space) SetEpochDomain(d *epoch.Domain) { s.epochs = d }

// EpochDomain returns the attached epoch domain, nil when none.
func (s *Space) EpochDomain() *epoch.Domain { return s.epochs }

// PinEpoch pins the Space's epoch domain and returns the unpin
// function. Any reader that holds a CounterSnap (or other
// epoch-retired object) across more than one instant must bracket the
// use with PinEpoch — an indexing scan consulting its scan-start
// snapshot page by page, the engine's lock-free probe path — or
// reclamation may nil the snapshot out from under it. A no-op when no
// domain is attached.
func (s *Space) PinEpoch() func() {
	if s.epochs == nil {
		return func() {}
	}
	g := s.epochs.Pin()
	return g.Unpin
}

// SpaceStats counts management activity. CrossTenantEntriesDropped is
// the subset of EntriesDropped taken from a tenant other than the
// displacing scan's — the global spill of the two-level competition; it
// stays zero as long as every tenant fits its quota.
type SpaceStats struct {
	PartitionsDropped         uint64
	EntriesDropped            uint64
	CrossTenantEntriesDropped uint64
	PagesSelected             uint64
}

// NewSpace creates an Index Buffer Space with the given configuration.
func NewSpace(cfg Config) *Space {
	return &Space{cfg: cfg.withDefaults(), buffers: make(map[string]*IndexBuffer)}
}

// Config returns the effective configuration (defaults applied).
func (s *Space) Config() Config { return s.cfg }

// Used returns the total number of entries currently held.
func (s *Space) Used() int { return int(s.used.Load()) }

// addUsed adjusts the entry budget; called by buffers under their own
// locks, hence atomic rather than guarded by s.mu.
func (s *Space) addUsed(delta int) { s.used.Add(int64(delta)) }

// Free returns the remaining entry budget n_F. It is negative when
// maintenance inserts pushed usage past the limit (only scans trigger
// displacement, per §IV); unlimited spaces report a huge value.
func (s *Space) Free() int {
	if s.cfg.SpaceLimit <= 0 {
		return math.MaxInt / 2
	}
	return s.cfg.SpaceLimit - s.Used()
}

// Stats returns a snapshot of the management counters.
func (s *Space) Stats() SpaceStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// CreateBuffer registers a new Index Buffer. uncovered[p] must hold, for
// each table page, the number of live tuples not covered by the partial
// index — the paper's counter initialization at partial-index creation
// (§III). The name must be unique.
func (s *Space) CreateBuffer(name string, uncovered []int) (*IndexBuffer, error) {
	return s.CreateBufferFor(name, uncovered, nil)
}

// CreateBufferFor is CreateBuffer with the buffer attributed to a budget
// domain: its entries charge tenant's quota alongside the global budget,
// and displacement scopes its competition accordingly. A nil tenant is
// the default domain (global budget only).
func (s *Space) CreateBufferFor(name string, uncovered []int, tenant *Tenant) (*IndexBuffer, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.buffers[name]; dup {
		return nil, fmt.Errorf("core: buffer %q already exists", name)
	}
	b := &IndexBuffer{
		name:      name,
		space:     s,
		cfg:       &s.cfg,
		tenant:    tenant,
		uncovered: append([]int(nil), uncovered...),
		byPage:    make(map[storage.PageID]*Partition),
		hist:      newHistory(s.cfg.K, &s.clock),
	}
	b.publishCountersLocked() // b is unshared here; no lock needed yet
	s.buffers[name] = b
	s.order = append(s.order, name)
	return b, nil
}

// DropBuffer removes a buffer and releases its entries (partial index
// dropped or redefined).
func (s *Space) DropBuffer(name string) {
	s.mu.Lock()
	b, ok := s.buffers[name]
	if ok {
		delete(s.buffers, name)
		for i, n := range s.order {
			if n == name {
				s.order = append(s.order[:i], s.order[i+1:]...)
				break
			}
		}
		if s.obs != nil {
			s.obs.SpaceEvent("buffer-reset", name, -1, b.EntryCount())
		}
	}
	s.mu.Unlock()
	if b != nil {
		b.Reset()
	}
}

// Buffer returns the named buffer, or nil.
func (s *Space) Buffer(name string) *IndexBuffer {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.buffers[name]
}

// Buffers returns all buffers in creation order.
func (s *Space) Buffers() []*IndexBuffer {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*IndexBuffer, 0, len(s.order))
	for _, n := range s.order {
		out = append(out, s.buffers[n])
	}
	return out
}

// OnQuery advances every buffer's LRU-K history for one query, per the
// paper's Table II. queried is the buffer of the queried column (nil when
// the column has no buffer); partialHit reports whether the partial index
// answered the query. Only an actual buffer use — a miss on the queried
// column — closes that buffer's running interval.
//
// The common case — a hit, or a query on an unbuffered column — is one
// atomic increment of the shared query clock and takes no lock at all
// (every history derives its running interval from the clock), which is
// what the engine's epoch-based read path relies on. A use additionally
// touches the used buffer's History mutex; uses are misses, which hold
// the owning table's write lock anyway.
func (s *Space) OnQuery(queried *IndexBuffer, partialHit bool) {
	g := s.clock.Add(1)
	if queried != nil && !partialHit {
		queried.hist.useAt(g)
	}
}

// PinForScan marks the buffer as the subject of an in-flight indexing
// scan and returns the release function. A pinned buffer is never chosen
// as a displacement victim: the scan's skip decisions (C[p] == 0) and its
// already-collected buffer matches assume the buffer's partitions stay
// put, so a concurrent displacement on behalf of another table's scan
// could otherwise duplicate or lose results — the same scan/displacement
// conflict Graefe et al. resolve with latches in "Concurrency Control for
// Adaptive Indexing". The engine pins before SelectPagesForBuffer and
// releases after the scan's last page.
func (s *Space) PinForScan(b *IndexBuffer) (release func()) {
	s.mu.Lock()
	b.scanPins++
	s.mu.Unlock()
	var once sync.Once
	return func() {
		once.Do(func() {
			s.mu.Lock()
			b.scanPins--
			s.mu.Unlock()
		})
	}
}

// SelectPagesForBuffer implements Algorithm 2. For an indexing scan on
// behalf of buffer target, it chooses the set I of pages to index this
// scan — pages with the smallest non-zero counters first, bounded by
// I^MAX and by available space — and displaces victim partitions from
// *other* buffers exactly when the new information's benefit b_I = |I|/T
// exceeds the victims' summed benefit. It performs the drops and returns
// I sorted ascending.
//
// candidates is the scan range R as counter-bearing pages; callers pass
// every table page (the scan range of the query). The Space's mutex is
// held throughout, serializing displacement globally; per-buffer locks
// are taken underneath it for the actual reads and drops.
func (s *Space) SelectPagesForBuffer(target *IndexBuffer, numPages int) []storage.PageID {
	return s.SelectPagesForBufferObserved(target, numPages, nil)
}

// SelectPagesForBufferObserved is SelectPagesForBuffer with a per-call
// observer: perQuery (when non-nil) receives this selection's
// management events — "displace" and "page-select" — in addition to the
// Space-wide observer, so the caller can attribute them to the query
// whose indexing scan triggered the selection. perQuery runs with
// Space.mu held and must honor the Observer contract.
func (s *Space) SelectPagesForBufferObserved(target *IndexBuffer, numPages int, perQuery Observer) []storage.PageID {
	s.mu.Lock()
	defer s.mu.Unlock()

	// Candidate pages: C[p] > 0, ascending counter — cheapest pages
	// first, maximizing skippable pages per buffer entry (§III: pages
	// with many already-indexed tuples are more valuable).
	type cand struct {
		page storage.PageID
		n    int // entries the page would add == C[p]
	}
	var cands []cand
	target.mu.Lock()
	target.growPagesLocked(numPages)
	for p := 0; p < numPages; p++ {
		pg := storage.PageID(p)
		if c := target.counterLocked(pg); c > 0 {
			cands = append(cands, cand{pg, c})
		}
	}
	target.mu.Unlock()
	switch s.cfg.Selection {
	case DescendingCounter:
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].n != cands[j].n {
				return cands[i].n > cands[j].n
			}
			return cands[i].page < cands[j].page
		})
	case RandomOrder:
		// The shuffle draws from its own derived stream, never from the
		// victim-selection stream, so switching policies does not perturb
		// displacement replay.
		s.cfg.selRand.Shuffle(len(cands), func(i, j int) {
			cands[i], cands[j] = cands[j], cands[i]
		})
	default: // AscendingCounter — the paper's policy
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].n != cands[j].n {
				return cands[i].n < cands[j].n
			}
			return cands[i].page < cands[j].page
		})
	}
	if len(cands) > s.cfg.IMax {
		cands = cands[:s.cfg.IMax]
	}
	if len(cands) == 0 {
		return nil
	}

	// fit returns how many candidate pages fit into the given entry
	// budget (prefix of the ascending-counter order, capped by IMax).
	fit := func(budget int) (count, entries int) {
		for _, c := range cands {
			if entries+c.n > budget {
				break
			}
			entries += c.n
			count++
		}
		return count, entries
	}

	tTarget := target.hist.Mean()
	benefitOf := func(pages int) float64 { return float64(pages) / tTarget }

	// Iteratively grow the victim set D while the enlarged page set I is
	// strictly more beneficial than the partitions it displaces. With
	// tenants the scan's entry budget is the tighter of the global pool
	// and the target tenant's quota headroom, and the victim competition
	// runs in two arenas: as long as the tenant's own budget is the
	// binding constraint, victims come from the tenant's own buffers (a
	// tenant never grows past its quota by evicting someone else); only
	// when the global pool is what binds does the competition spill to
	// every buffer — the paper's original global two-stage selection,
	// which resolves quota overcommit. Same-tenant drops refund both
	// ledgers, cross-tenant drops only the global one.
	var victims []victimRef
	victimGlobal := 0 // entries freed toward the global budget (all victims)
	victimTenant := 0 // entries freed toward the tenant budget (same-tenant victims)
	victimBenefit := 0.0
	excluded := map[*Partition]bool{}

	gFree, tFree := s.Free(), tenantFree(target)
	accepted, _ := fit(min(gFree, tFree))
	for accepted < len(cands) {
		intraTenant := target.tenant != nil && tFree+victimTenant <= gFree+victimGlobal
		v := s.selectNextVictim(target, excluded, intraTenant)
		if v == nil {
			break
		}
		excluded[v.part] = true
		nextGlobal := victimGlobal + v.entries
		nextTenant := victimTenant
		if v.owner.tenant == target.tenant {
			nextTenant += v.entries
		}
		nextBenefit := victimBenefit + v.benefit
		nextAccepted, _ := fit(min(gFree+nextGlobal, tFree+nextTenant))
		if benefitOf(nextAccepted) <= nextBenefit || nextAccepted == accepted {
			break // the paper's until-condition: reject the enlargement
		}
		victims = append(victims, *v)
		victimGlobal, victimTenant = nextGlobal, nextTenant
		victimBenefit = nextBenefit
		accepted = nextAccepted
	}

	if accepted == 0 && target.tenant != nil {
		// Candidates exist but not even the cheapest fits what the tenant
		// can muster (headroom plus intra-tenant victims the benefit
		// competition was willing to give up): latch exhaustion so the
		// tenant's next miss degrades at admission rather than re-running
		// this fruitless selection. charge() clears the latch on release.
		minCost := cands[0].n
		for _, c := range cands[1:] {
			if c.n < minCost {
				minCost = c.n
			}
		}
		if minCost > tFree+victimTenant {
			target.tenant.exhausted.Store(true)
		}
	}

	// Perform the accepted drops.
	for _, v := range victims {
		s.stats.PartitionsDropped++
		s.stats.EntriesDropped += uint64(v.entries)
		if v.owner.tenant != target.tenant {
			s.stats.CrossTenantEntriesDropped += uint64(v.entries)
			if v.owner.tenant != nil {
				v.owner.tenant.evicted.Add(uint64(v.entries))
			}
		}
		v.owner.dropPartition(v.part)
		if s.obs != nil {
			s.obs.SpaceEvent("displace", v.owner.name, -1, v.entries)
		}
		if perQuery != nil {
			perQuery.SpaceEvent("displace", v.owner.name, -1, v.entries)
		}
	}

	out := make([]storage.PageID, 0, accepted)
	for _, c := range cands[:accepted] {
		out = append(out, c.page)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	s.stats.PagesSelected += uint64(len(out))
	if s.obs != nil {
		s.obs.SpaceEvent("page-select", target.name, -1, len(out))
	}
	if perQuery != nil {
		perQuery.SpaceEvent("page-select", target.name, -1, len(out))
	}
	return out
}

// victimRef pairs a chosen victim partition with its owning buffer during
// SelectPagesForBuffer, along with the size and benefit observed at
// selection time (read under the owner's lock).
type victimRef struct {
	part    *Partition
	owner   *IndexBuffer
	entries int
	benefit float64
}

// selectNextVictim implements the paper's two-staged victim selection:
// stage 1 picks a buffer other than the target, randomly weighted by
// inverse benefit (low-benefit buffers are likelier); stage 2 picks that
// buffer's incomplete partition first, then complete partitions in
// descending entry count. Partitions in excluded are already chosen.
// Buffers pinned by an in-flight indexing scan are never victims. When
// sameTenant is set, stage 1 only considers buffers of the target's own
// tenant — the intra-tenant arena of the two-level competition.
// Called with s.mu held.
func (s *Space) selectNextVictim(target *IndexBuffer, excluded map[*Partition]bool, sameTenant bool) *victimRef {
	type choice struct {
		buf    *IndexBuffer
		weight float64
	}
	var choices []choice
	total := 0.0
	for _, n := range s.order {
		b := s.buffers[n]
		if b == target || b.scanPins > 0 {
			continue
		}
		if sameTenant && b.tenant != target.tenant {
			continue
		}
		if !b.hasDroppable(excluded) {
			continue
		}
		w := 1.0
		if s.cfg.Victims == BenefitWeighted {
			if ben := b.Benefit(); ben > 0 {
				w = 1.0 / ben
			} else {
				// A zero-benefit buffer (only excluded/empty partitions
				// left would have been filtered) is the cheapest possible
				// victim.
				w = math.MaxFloat64 / 4
			}
		}
		choices = append(choices, choice{b, w})
		total += w
	}
	if len(choices) == 0 {
		return nil
	}
	r := s.cfg.Rand.Float64() * total
	var picked *IndexBuffer
	for _, c := range choices {
		r -= c.weight
		if r <= 0 {
			picked = c.buf
			break
		}
	}
	if picked == nil {
		picked = choices[len(choices)-1].buf
	}
	picked.mu.RLock()
	part := picked.pickVictimPartitionLocked(excluded, &s.cfg)
	var entries int
	var benefit float64
	if part != nil {
		entries = part.EntryCount()
		benefit = part.benefit(picked.hist.Mean())
	}
	picked.mu.RUnlock()
	if part == nil {
		return nil
	}
	return &victimRef{part: part, owner: picked, entries: entries, benefit: benefit}
}

// hasDroppable reports whether the buffer has a partition not yet chosen.
func (b *IndexBuffer) hasDroppable(excluded map[*Partition]bool) bool {
	b.mu.RLock()
	defer b.mu.RUnlock()
	for _, p := range b.parts {
		if !excluded[p] {
			return true
		}
	}
	return false
}

// pickVictimPartitionLocked applies stage 2: the incomplete partition
// (X_p < P) has the lowest benefit and goes first; complete partitions
// follow in descending size n_p (equal benefit, so free the most space).
// With probability cfg.DisplacementJitter the deterministic order is
// replaced by a uniform pick over the droppable partitions — an
// adversary that triggers displacement right after every scan would
// otherwise kill the same frontier partition every round and starve
// convergence indefinitely. Callers hold b.mu; the Space's mutex is
// also held (selectNextVictim), which serializes the jitter stream.
func (b *IndexBuffer) pickVictimPartitionLocked(excluded map[*Partition]bool, cfg *Config) *Partition {
	if j := cfg.DisplacementJitter; j > 0 && cfg.jitterRand.Float64() < j {
		var droppable []*Partition
		for _, p := range b.parts {
			if !excluded[p] {
				droppable = append(droppable, p)
			}
		}
		if len(droppable) == 0 {
			return nil
		}
		return droppable[cfg.jitterRand.Intn(len(droppable))]
	}
	var incomplete *Partition
	var best *Partition
	for _, p := range b.parts {
		if excluded[p] {
			continue
		}
		if !p.complete(cfg.P) {
			if incomplete == nil || p.PageCount() < incomplete.PageCount() {
				incomplete = p
			}
			continue
		}
		if best == nil || p.EntryCount() > best.EntryCount() {
			best = p
		}
	}
	if incomplete != nil {
		return incomplete
	}
	return best
}
