package core

import (
	"math/rand"
	"testing"

	"repro/internal/storage"
)

// indexPages simulates an indexing scan: assigns each selected page to a
// partition and inserts C[p] synthetic entries for it.
func indexPages(t *testing.T, b *IndexBuffer, pages []storage.PageID) {
	t.Helper()
	for _, pg := range pages {
		n := b.Counter(pg)
		if err := b.BeginPage(pg); err != nil {
			t.Fatal(err)
		}
		for s := 0; s < n; s++ {
			if err := b.AddEntry(pg, iv(int64(pg)*100+int64(s)), storage.RID{Page: pg, Slot: uint16(s)}); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestSelectPagesUnlimitedSpace(t *testing.T) {
	s := NewSpace(Config{IMax: 3, P: 10})
	b, _ := s.CreateBuffer("t.a", []int{5, 1, 0, 3, 2})
	got := s.SelectPagesForBuffer(b, 5)
	// Ascending counter: pages 1 (C=1), 4 (C=2), 3 (C=3); page 2 has C=0
	// (already fully indexed) and page 0 is cut by IMax=3.
	want := []storage.PageID{1, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("selected %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("selected %v, want %v", got, want)
		}
	}
}

func TestSelectPagesSkipsBufferedAndZero(t *testing.T) {
	s := NewSpace(Config{IMax: 100, P: 10})
	b, _ := s.CreateBuffer("t.a", []int{2, 2, 2})
	indexPages(t, b, []storage.PageID{1})
	got := s.SelectPagesForBuffer(b, 3)
	for _, pg := range got {
		if pg == 1 {
			t.Error("selected an already-buffered page")
		}
	}
	if len(got) != 2 {
		t.Errorf("selected %v, want pages 0 and 2", got)
	}
}

func TestSelectPagesRespectsSpaceLimitWithoutVictims(t *testing.T) {
	// One buffer only: it is never its own victim, so selection is capped
	// by free space.
	s := NewSpace(Config{IMax: 100, P: 10, SpaceLimit: 5})
	b, _ := s.CreateBuffer("t.a", []int{3, 3, 3})
	got := s.SelectPagesForBuffer(b, 3)
	// 5 entries budget, 3 per page: only one page fits.
	if len(got) != 1 {
		t.Fatalf("selected %d pages, want 1", len(got))
	}
	indexPages(t, b, got)
	if s.Used() != 3 || s.Free() != 2 {
		t.Errorf("used=%d free=%d", s.Used(), s.Free())
	}
	// Next scan: 2 free, no page fits, no victims available.
	got = s.SelectPagesForBuffer(b, 3)
	if len(got) != 0 {
		t.Errorf("selected %v with insufficient space and no victims", got)
	}
}

func TestDisplacementPrefersLowBenefitBuffer(t *testing.T) {
	s := NewSpace(Config{IMax: 100, P: 2, K: 2, SpaceLimit: 8, Rand: rand.New(rand.NewSource(42))})
	cold, _ := s.CreateBuffer("t.cold", []int{2, 2})
	hot, _ := s.CreateBuffer("t.hot", []int{2, 2})
	target, _ := s.CreateBuffer("t.new", []int{2, 2})

	// Fill the space: cold takes 4 entries, hot takes 4.
	indexPages(t, cold, s.SelectPagesForBuffer(cold, 2))
	indexPages(t, hot, s.SelectPagesForBuffer(hot, 2))
	if s.Free() != 0 {
		t.Fatalf("free = %d, want 0", s.Free())
	}

	// Make cold look unused (long intervals) and hot look busy.
	for i := 0; i < 50; i++ {
		s.OnQuery(hot, false) // hot used every query; cold just ticks
	}
	// Now the workload shifts to the target column: two misses in a row
	// drive the target's mean interval to the floor, as in the paper's
	// experiment 3.
	s.OnQuery(target, false)
	s.OnQuery(target, false)

	// The target buffer now wants space; the victim should come from cold
	// (benefit-weighted random strongly favors 1/b of the aged buffer).
	got := s.SelectPagesForBuffer(target, 2)
	if len(got) == 0 {
		t.Fatal("no pages selected despite displaceable victims")
	}
	if cold.EntryCount() >= 4 {
		t.Errorf("cold kept %d entries; expected displacement from cold", cold.EntryCount())
	}
	if hot.EntryCount() != 4 {
		t.Errorf("hot lost entries (%d left); victim choice ignored benefit", hot.EntryCount())
	}
	if s.Stats().PartitionsDropped == 0 {
		t.Error("no partitions dropped recorded")
	}
}

func TestDisplacementNeverEvictsTargetBuffer(t *testing.T) {
	s := NewSpace(Config{IMax: 100, P: 1, SpaceLimit: 4})
	b, _ := s.CreateBuffer("t.a", []int{2, 2, 2})
	indexPages(t, b, s.SelectPagesForBuffer(b, 3)) // fills 4 of 4
	before := b.EntryCount()
	got := s.SelectPagesForBuffer(b, 3)
	if len(got) != 0 {
		t.Errorf("selected %v; target must not displace itself", got)
	}
	if b.EntryCount() != before {
		t.Error("target buffer lost entries")
	}
}

func TestDisplacementBenefitGate(t *testing.T) {
	// A fresh (high-benefit-per-entry) victim should NOT be dropped for
	// low-benefit new information: make the target's history long (cold)
	// so b_I is small, while the victim's buffer is hot.
	s := NewSpace(Config{IMax: 100, P: 2, K: 2, SpaceLimit: 4, Rand: rand.New(rand.NewSource(7))})
	hot, _ := s.CreateBuffer("t.hot", []int{2, 2})
	target, _ := s.CreateBuffer("t.tgt", []int{2, 2})
	indexPages(t, hot, s.SelectPagesForBuffer(hot, 2))
	// hot used constantly; target cold.
	for i := 0; i < 100; i++ {
		s.OnQuery(hot, false)
	}
	got := s.SelectPagesForBuffer(target, 2)
	// Victim benefit: 2 pages / T=1 -> 2. New info: 2 pages / T=50 ->
	// 0.04. The gate b_I > Σb_D must reject the displacement.
	if len(got) != 0 {
		t.Errorf("selected %v; benefit gate should reject displacement", got)
	}
	if hot.EntryCount() != 4 {
		t.Errorf("hot displaced to %d entries", hot.EntryCount())
	}
}

func TestVictimStageTwoOrdering(t *testing.T) {
	// Within a buffer: the incomplete partition goes first, then complete
	// partitions by descending size.
	s := NewSpace(Config{IMax: 100, P: 2, SpaceLimit: 1000})
	b, _ := s.CreateBuffer("t.a", []int{1, 2, 3, 4, 9})
	indexPages(t, b, []storage.PageID{0, 1}) // partition 0: complete, 3 entries
	indexPages(t, b, []storage.PageID{2, 3}) // partition 1: complete, 7 entries
	indexPages(t, b, []storage.PageID{4})    // partition 2: incomplete (1 of 2 pages)

	excluded := map[*Partition]bool{}
	v1 := b.pickVictimPartitionLocked(excluded, b.cfg)
	if v1.PageCount() != 1 {
		t.Fatalf("first victim should be the incomplete partition, got %d pages / %d entries", v1.PageCount(), v1.EntryCount())
	}
	excluded[v1] = true
	v2 := b.pickVictimPartitionLocked(excluded, b.cfg)
	if v2.EntryCount() != 7 {
		t.Fatalf("second victim should be the biggest complete partition, got %d entries", v2.EntryCount())
	}
	excluded[v2] = true
	v3 := b.pickVictimPartitionLocked(excluded, b.cfg)
	if v3.EntryCount() != 3 {
		t.Fatalf("third victim: got %d entries", v3.EntryCount())
	}
	excluded[v3] = true
	if b.pickVictimPartitionLocked(excluded, b.cfg) != nil {
		t.Error("exhausted buffer still yields victims")
	}
}

// recordingObserver collects SpaceEvent calls for assertions.
type recordingObserver struct {
	events []struct {
		kind, buffer string
		n            int
	}
}

func (r *recordingObserver) SpaceEvent(kind, buffer string, page, n int) {
	r.events = append(r.events, struct {
		kind, buffer string
		n            int
	}{kind, buffer, n})
}

// TestObserverSeesSelectionAndDisplacement reuses the displacement
// scenario of TestDisplacementPrefersLowBenefitBuffer and asserts the
// attached observer sees the Algorithm-2 decision: one displace event
// per dropped victim (attributed to the victim's owner) and a final
// page-select for the target.
func TestObserverSeesSelectionAndDisplacement(t *testing.T) {
	s := NewSpace(Config{IMax: 100, P: 2, K: 2, SpaceLimit: 8, Rand: rand.New(rand.NewSource(42))})
	obs := &recordingObserver{}
	s.SetObserver(obs)
	cold, _ := s.CreateBuffer("t.cold", []int{2, 2})
	hot, _ := s.CreateBuffer("t.hot", []int{2, 2})
	target, _ := s.CreateBuffer("t.new", []int{2, 2})
	indexPages(t, cold, s.SelectPagesForBuffer(cold, 2))
	indexPages(t, hot, s.SelectPagesForBuffer(hot, 2))
	for i := 0; i < 50; i++ {
		s.OnQuery(hot, false)
	}
	s.OnQuery(target, false)
	s.OnQuery(target, false)
	obs.events = nil // only observe the displacing selection

	got := s.SelectPagesForBuffer(target, 2)
	var displaced, selected int
	for _, e := range obs.events {
		switch e.kind {
		case "displace":
			displaced++
			if e.buffer != "t.cold" {
				t.Errorf("displace attributed to %q, want t.cold", e.buffer)
			}
			if e.n <= 0 {
				t.Errorf("displace released %d entries", e.n)
			}
		case "page-select":
			selected++
			if e.buffer != "t.new" || e.n != len(got) {
				t.Errorf("page-select event = %+v, want target t.new n=%d", e, len(got))
			}
		default:
			t.Errorf("unexpected event kind %q", e.kind)
		}
	}
	if displaced == 0 {
		t.Error("no displace events despite displacement")
	}
	if selected != 1 {
		t.Errorf("page-select events = %d, want 1", selected)
	}
}

func TestSelectPagesEmptyCandidates(t *testing.T) {
	s := NewSpace(Config{})
	b, _ := s.CreateBuffer("t.a", []int{0, 0})
	if got := s.SelectPagesForBuffer(b, 2); got != nil {
		t.Errorf("selected %v from fully indexed table", got)
	}
}

func TestFreeUnlimited(t *testing.T) {
	s := NewSpace(Config{})
	if s.Free() <= 1<<40 {
		t.Error("unlimited space should report huge free budget")
	}
}

func TestConfigDefaults(t *testing.T) {
	s := NewSpace(Config{})
	cfg := s.Config()
	if cfg.IMax != DefaultIMax || cfg.P != DefaultP || cfg.K != DefaultK {
		t.Errorf("defaults = %+v", cfg)
	}
	if cfg.NewStructure == nil || cfg.Rand == nil {
		t.Error("factory/rand defaults missing")
	}
}

// TestSpaceLimitNeverExceededByScans drives many select+index rounds
// across three buffers and asserts the budget invariant the paper's §IV
// promises: scans never push usage past the limit.
func TestSpaceLimitNeverExceededByScans(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	const limit = 50
	s := NewSpace(Config{IMax: 4, P: 2, SpaceLimit: limit, Rand: rng})
	counters := func() []int {
		u := make([]int, 20)
		for i := range u {
			u[i] = 1 + rng.Intn(5)
		}
		return u
	}
	var bufs []*IndexBuffer
	for _, n := range []string{"a", "b", "c"} {
		b, err := s.CreateBuffer("t."+n, counters())
		if err != nil {
			t.Fatal(err)
		}
		bufs = append(bufs, b)
	}
	for round := 0; round < 300; round++ {
		b := bufs[rng.Intn(len(bufs))]
		s.OnQuery(b, rng.Intn(4) == 0)
		pages := s.SelectPagesForBuffer(b, 20)
		indexPages(t, b, pages)
		if s.Used() > limit {
			t.Fatalf("round %d: used %d exceeds limit %d", round, s.Used(), limit)
		}
		total := 0
		for _, bb := range bufs {
			total += bb.EntryCount()
		}
		if total != s.Used() {
			t.Fatalf("round %d: accounting drift: buffers hold %d, space says %d", round, total, s.Used())
		}
	}
	if s.Stats().PagesSelected == 0 {
		t.Error("no pages were ever selected")
	}
}

// TestMaintenanceOverflowAndRecovery covers §IV's caveat: only scans
// displace, so maintenance inserts can push usage past the limit (Free
// goes negative); the next scan's selection then indexes nothing until
// victims or deletes free space.
func TestMaintenanceOverflowAndRecovery(t *testing.T) {
	s := NewSpace(Config{IMax: 10, P: 2, SpaceLimit: 4})
	b, _ := s.CreateBuffer("t.a", []int{2, 2, 3})
	indexPages(t, b, s.SelectPagesForBuffer(b, 3)) // fills 4 of 4 (pages 0,1)
	if s.Free() != 0 {
		t.Fatalf("free = %d", s.Free())
	}
	// Maintenance inserts on buffered pages exceed the budget.
	b.MaintainInsert(iv(1000), rid(0, 9), false)
	b.MaintainInsert(iv(1001), rid(1, 9), false)
	if s.Free() != -2 {
		t.Fatalf("free after overflow = %d, want -2", s.Free())
	}
	// Selection cannot index anything (no victims: single buffer).
	if got := s.SelectPagesForBuffer(b, 3); len(got) != 0 {
		t.Errorf("selected %v with negative free budget", got)
	}
	// Deletes bring the budget back; selection resumes.
	b.MaintainDelete(iv(1000), rid(0, 9), false)
	b.MaintainDelete(iv(1001), rid(1, 9), false)
	// Free 0: page 2 (C=3) still cannot fit, correctly.
	if got := s.SelectPagesForBuffer(b, 3); len(got) != 0 {
		t.Errorf("selected %v with zero free budget", got)
	}
	// Drop a partition: 4 entries free; page 2 (3 entries) fits now.
	b.dropPartition(b.Partitions()[0])
	got := s.SelectPagesForBuffer(b, 3)
	if len(got) == 0 {
		t.Error("selection did not resume after space freed")
	}
}
