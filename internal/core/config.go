package core

import "math/rand"

// SelectionOrder chooses how the page-selection routine orders candidate
// pages. The paper argues for ascending counters — "pages with many
// already indexed tuples are more valuable for the Index Buffer" (§III)
// because they buy a skippable page for fewer entries; the alternatives
// exist for the ablation benchmarks.
type SelectionOrder int

const (
	// AscendingCounter is the paper's policy: cheapest pages first.
	AscendingCounter SelectionOrder = iota
	// DescendingCounter indexes the most expensive pages first.
	DescendingCounter
	// RandomOrder shuffles the candidates.
	RandomOrder
)

// String renders the policy name.
func (s SelectionOrder) String() string {
	switch s {
	case AscendingCounter:
		return "ascending"
	case DescendingCounter:
		return "descending"
	case RandomOrder:
		return "random"
	default:
		return "unknown"
	}
}

// VictimPolicy chooses the stage-1 victim buffer during displacement.
// The paper weights buffers by inverse benefit; the uniform alternative
// exists for the ablation benchmarks.
type VictimPolicy int

const (
	// BenefitWeighted is the paper's policy: probability ∝ 1/b_B.
	BenefitWeighted VictimPolicy = iota
	// UniformVictims picks any displaceable buffer with equal
	// probability, ignoring benefit.
	UniformVictims
)

// String renders the policy name.
func (v VictimPolicy) String() string {
	switch v {
	case BenefitWeighted:
		return "benefit-weighted"
	case UniformVictims:
		return "uniform"
	default:
		return "unknown"
	}
}

// Config holds the tunables of the Index Buffer Space. The names follow
// the paper's symbols.
type Config struct {
	// IMax (paper I^MAX) caps the pages indexed during one table scan.
	// The paper's experiments use 5,000 and 10,000. Zero means
	// DefaultIMax.
	IMax int

	// P is the maximum number of table pages one Index Buffer partition
	// covers; displacement drops whole partitions (paper §IV, Fig. 5).
	// The paper's experiments use 10,000. Zero means DefaultP.
	P int

	// K is the LRU-K history depth. Zero means DefaultK.
	K int

	// SpaceLimit (paper L) bounds the total number of entries across all
	// Index Buffers. Zero means unlimited — the paper's experiment 1.
	SpaceLimit int

	// NewStructure creates the index structure backing each partition.
	// Nil means NewBTreeStructure (the paper's B*-tree).
	NewStructure StructureFactory

	// Selection orders page candidates during Algorithm 2; the zero
	// value is the paper's ascending-counter policy.
	Selection SelectionOrder

	// Victims picks which buffer loses partitions during displacement;
	// the zero value is the paper's benefit-weighted random policy.
	Victims VictimPolicy

	// Seed drives every random stream of the Space (victim selection,
	// RandomOrder shuffling, displacement jitter) per the repo seeding
	// convention: one explicit seed, sub-streams derived by fixed
	// offsets so one stream's consumption never perturbs another. Zero
	// means DefaultSeed, keeping experiments reproducible by default.
	Seed int64

	// DisplacementJitter is the probability, per victim-partition pick,
	// that stage 2 of Algorithm 2's displacement chooses a uniformly
	// random droppable partition instead of the deterministic
	// incomplete-first order. Nonzero values break the adversarial
	// starvation cycle where a workload keyed on displacement events
	// kills the same frontier partition every round (cf. stochastic
	// cracking); 0 (the default) is the paper's deterministic policy.
	// Values are clamped to [0, 1].
	DisplacementJitter float64

	// Rand drives the benefit-weighted random victim selection. Nil
	// means a stream derived from Seed; set it only to override that
	// stream (the selection and jitter streams always derive from Seed).
	Rand *rand.Rand

	// selRand and jitterRand are the derived sub-streams for the
	// RandomOrder candidate shuffle and the displacement jitter. They
	// are populated by withDefaults and intentionally unexported:
	// deriving them from Seed (rather than sharing Rand) keeps victim
	// selection bit-for-bit identical whether or not the stochastic
	// policies consume randomness.
	selRand    *rand.Rand
	jitterRand *rand.Rand
}

// Defaults for Config fields left zero.
const (
	DefaultIMax = 5000
	DefaultP    = 10000
	DefaultK    = 2
	// DefaultSeed seeds the Space's random streams when Config.Seed is
	// zero — the same constant the nil-Rand fallback has always used.
	DefaultSeed = 1
)

// Fixed offsets deriving the Space's independent sub-streams from one
// seed (the repo seeding convention; see internal/workload's package
// doc). Distinct primes keep the derived seeds distinct for any base.
const (
	seedOffsetSelection = 7919
	seedOffsetJitter    = 104729
)

// withDefaults returns a copy of c with zero fields replaced by defaults
// and the derived random sub-streams populated.
func (c Config) withDefaults() Config {
	if c.IMax <= 0 {
		c.IMax = DefaultIMax
	}
	if c.P <= 0 {
		c.P = DefaultP
	}
	if c.K <= 0 {
		c.K = DefaultK
	}
	if c.NewStructure == nil {
		c.NewStructure = NewBTreeStructure
	}
	if c.Seed == 0 {
		c.Seed = DefaultSeed
	}
	if c.DisplacementJitter < 0 {
		c.DisplacementJitter = 0
	} else if c.DisplacementJitter > 1 {
		c.DisplacementJitter = 1
	}
	if c.Rand == nil {
		c.Rand = rand.New(rand.NewSource(c.Seed))
	}
	c.selRand = rand.New(rand.NewSource(c.Seed + seedOffsetSelection))
	c.jitterRand = rand.New(rand.NewSource(c.Seed + seedOffsetJitter))
	return c
}
