package core

import "math/rand"

// SelectionOrder chooses how the page-selection routine orders candidate
// pages. The paper argues for ascending counters — "pages with many
// already indexed tuples are more valuable for the Index Buffer" (§III)
// because they buy a skippable page for fewer entries; the alternatives
// exist for the ablation benchmarks.
type SelectionOrder int

const (
	// AscendingCounter is the paper's policy: cheapest pages first.
	AscendingCounter SelectionOrder = iota
	// DescendingCounter indexes the most expensive pages first.
	DescendingCounter
	// RandomOrder shuffles the candidates.
	RandomOrder
)

// String renders the policy name.
func (s SelectionOrder) String() string {
	switch s {
	case AscendingCounter:
		return "ascending"
	case DescendingCounter:
		return "descending"
	case RandomOrder:
		return "random"
	default:
		return "unknown"
	}
}

// VictimPolicy chooses the stage-1 victim buffer during displacement.
// The paper weights buffers by inverse benefit; the uniform alternative
// exists for the ablation benchmarks.
type VictimPolicy int

const (
	// BenefitWeighted is the paper's policy: probability ∝ 1/b_B.
	BenefitWeighted VictimPolicy = iota
	// UniformVictims picks any displaceable buffer with equal
	// probability, ignoring benefit.
	UniformVictims
)

// String renders the policy name.
func (v VictimPolicy) String() string {
	switch v {
	case BenefitWeighted:
		return "benefit-weighted"
	case UniformVictims:
		return "uniform"
	default:
		return "unknown"
	}
}

// Config holds the tunables of the Index Buffer Space. The names follow
// the paper's symbols.
type Config struct {
	// IMax (paper I^MAX) caps the pages indexed during one table scan.
	// The paper's experiments use 5,000 and 10,000. Zero means
	// DefaultIMax.
	IMax int

	// P is the maximum number of table pages one Index Buffer partition
	// covers; displacement drops whole partitions (paper §IV, Fig. 5).
	// The paper's experiments use 10,000. Zero means DefaultP.
	P int

	// K is the LRU-K history depth. Zero means DefaultK.
	K int

	// SpaceLimit (paper L) bounds the total number of entries across all
	// Index Buffers. Zero means unlimited — the paper's experiment 1.
	SpaceLimit int

	// NewStructure creates the index structure backing each partition.
	// Nil means NewBTreeStructure (the paper's B*-tree).
	NewStructure StructureFactory

	// Selection orders page candidates during Algorithm 2; the zero
	// value is the paper's ascending-counter policy.
	Selection SelectionOrder

	// Victims picks which buffer loses partitions during displacement;
	// the zero value is the paper's benefit-weighted random policy.
	Victims VictimPolicy

	// Rand drives the benefit-weighted random victim selection. Nil means
	// a deterministic source seeded with 1, keeping experiments
	// reproducible.
	Rand *rand.Rand
}

// Defaults for Config fields left zero.
const (
	DefaultIMax = 5000
	DefaultP    = 10000
	DefaultK    = 2
)

// withDefaults returns a copy of c with zero fields replaced by defaults.
func (c Config) withDefaults() Config {
	if c.IMax <= 0 {
		c.IMax = DefaultIMax
	}
	if c.P <= 0 {
		c.P = DefaultP
	}
	if c.K <= 0 {
		c.K = DefaultK
	}
	if c.NewStructure == nil {
		c.NewStructure = NewBTreeStructure
	}
	if c.Rand == nil {
		c.Rand = rand.New(rand.NewSource(1))
	}
	return c
}
