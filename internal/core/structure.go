// Package core implements the paper's primary contribution: the Adaptive
// Index Buffer. An Index Buffer is a volatile, memory-resident scratch-pad
// index that complements a partial secondary index. During table scans
// caused by partial-index misses it indexes the not-yet-covered tuples of
// selected pages (Algorithm 1), so those pages become fully indexed and
// can be skipped by later scans. All Index Buffers live in the Index
// Buffer Space, a bounded share of the database buffer managed by benefit
// (partition page coverage ÷ LRU-K mean access interval) and size
// (Algorithm 2, Tables I and II of the paper).
package core

import (
	"repro/internal/btree"
	"repro/internal/csbtree"
	"repro/internal/hashindex"
	"repro/internal/storage"
)

// Structure is the index structure backing one Index Buffer partition.
// The paper builds on a B*-tree and notes that main-memory structures
// such as the CSB+-tree or a hash table work equally (§III); all three
// implementations in this repository satisfy the interface.
type Structure interface {
	// Insert adds (key, rid), reporting whether the pair was new.
	Insert(key storage.Value, rid storage.RID) bool
	// Delete removes (key, rid), reporting whether the pair was present.
	Delete(key storage.Value, rid storage.RID) bool
	// Lookup returns the posting list for key (owned by the structure).
	Lookup(key storage.Value) []storage.RID
	// EntryCount returns the number of (key, rid) entries.
	EntryCount() int
	// Len returns the number of distinct keys.
	Len() int
}

// StructureFactory creates an empty Structure for a new partition.
type StructureFactory func() Structure

// NewBTreeStructure is the default factory (paper's B*-tree).
func NewBTreeStructure() Structure { return btree.NewDefault() }

// NewCSBTreeStructure backs partitions with a cache-sensitive B+-tree.
func NewCSBTreeStructure() Structure { return csbtree.NewDefault() }

// NewHashStructure backs partitions with a chained hash index.
func NewHashStructure() Structure { return hashindex.New() }

// Compile-time interface checks for all three structures.
var (
	_ Structure = (*btree.Tree)(nil)
	_ Structure = (*csbtree.Tree)(nil)
	_ Structure = (*hashindex.Index)(nil)
)
