package core

import (
	"testing"

	"repro/internal/storage"
)

func iv(v int64) storage.Value { return storage.Int64Value(v) }
func rid(p, s int) storage.RID { return storage.RID{Page: storage.PageID(p), Slot: uint16(s)} }

func newBuf(t *testing.T, cfg Config, uncovered []int) (*Space, *IndexBuffer) {
	t.Helper()
	s := NewSpace(cfg)
	b, err := s.CreateBuffer("t.a", uncovered)
	if err != nil {
		t.Fatal(err)
	}
	return s, b
}

func TestCreateBufferDuplicate(t *testing.T) {
	s := NewSpace(Config{})
	if _, err := s.CreateBuffer("x", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateBuffer("x", nil); err == nil {
		t.Error("duplicate buffer name should fail")
	}
}

func TestCountersInitialAndGrow(t *testing.T) {
	_, b := newBuf(t, Config{}, []int{3, 0, 5})
	if b.NumPages() != 3 {
		t.Fatalf("NumPages = %d", b.NumPages())
	}
	if b.Counter(0) != 3 || b.Counter(1) != 0 || b.Counter(2) != 5 {
		t.Errorf("counters = %d %d %d", b.Counter(0), b.Counter(1), b.Counter(2))
	}
	// Out-of-range pages read as 0 rather than panicking.
	if b.Counter(99) != 0 {
		t.Errorf("out-of-range counter = %d", b.Counter(99))
	}
	b.GrowPages(5)
	if b.NumPages() != 5 || b.Counter(4) != 0 {
		t.Errorf("after grow: pages=%d C[4]=%d", b.NumPages(), b.Counter(4))
	}
	// Grow never shrinks.
	b.GrowPages(2)
	if b.NumPages() != 5 {
		t.Errorf("grow shrank to %d", b.NumPages())
	}
}

func TestBeginPageAndAddEntry(t *testing.T) {
	s, b := newBuf(t, Config{P: 2}, []int{2, 1, 1, 1})
	if err := b.BeginPage(0); err != nil {
		t.Fatal(err)
	}
	if err := b.BeginPage(0); err == nil {
		t.Error("double BeginPage should fail")
	}
	if err := b.AddEntry(0, iv(10), rid(0, 0)); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEntry(0, iv(20), rid(0, 1)); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEntry(3, iv(30), rid(3, 0)); err == nil {
		t.Error("AddEntry on unassigned page should fail")
	}
	if !b.PageBuffered(0) || b.PageBuffered(1) {
		t.Error("PageBuffered wrong")
	}
	if b.Counter(0) != 0 {
		t.Errorf("buffered page counter = %d, want 0", b.Counter(0))
	}
	if b.Uncovered(0) != 2 {
		t.Errorf("raw uncovered = %d, want 2 (unchanged)", b.Uncovered(0))
	}
	if b.EntryCount() != 2 || s.Used() != 2 {
		t.Errorf("entries=%d used=%d", b.EntryCount(), s.Used())
	}
	if got := b.Lookup(iv(10)); len(got) != 1 || got[0] != rid(0, 0) {
		t.Errorf("lookup = %v", got)
	}
	if b.Lookup(iv(99)) != nil {
		t.Error("missing key should be nil")
	}
}

func TestPartitionFillingRespectsP(t *testing.T) {
	_, b := newBuf(t, Config{P: 2}, []int{1, 1, 1, 1, 1})
	for p := 0; p < 5; p++ {
		if err := b.BeginPage(storage.PageID(p)); err != nil {
			t.Fatal(err)
		}
	}
	// 5 pages at P=2: partitions of 2, 2, 1.
	if b.PartitionCount() != 3 {
		t.Fatalf("partitions = %d, want 3", b.PartitionCount())
	}
	sizes := []int{}
	for _, p := range b.Partitions() {
		sizes = append(sizes, p.PageCount())
	}
	if sizes[0] != 2 || sizes[1] != 2 || sizes[2] != 1 {
		t.Errorf("partition page counts = %v", sizes)
	}
	if b.BufferedPages() != 5 {
		t.Errorf("buffered pages = %d", b.BufferedPages())
	}
	// Disjointness: each page in exactly one partition.
	seen := map[storage.PageID]int{}
	for _, part := range b.Partitions() {
		for pg := range part.pages {
			seen[pg]++
		}
	}
	for pg, n := range seen {
		if n != 1 {
			t.Errorf("page %d in %d partitions", pg, n)
		}
	}
}

func TestLookupSpansPartitions(t *testing.T) {
	_, b := newBuf(t, Config{P: 1}, []int{1, 1})
	_ = b.BeginPage(0)
	_ = b.BeginPage(1)
	_ = b.AddEntry(0, iv(7), rid(0, 0))
	_ = b.AddEntry(1, iv(7), rid(1, 0))
	got := b.Lookup(iv(7))
	if len(got) != 2 {
		t.Fatalf("lookup across partitions = %v", got)
	}
}

func TestDropPartitionRestoresCounters(t *testing.T) {
	s, b := newBuf(t, Config{P: 2}, []int{3, 2, 4})
	_ = b.BeginPage(0)
	_ = b.BeginPage(1)
	_ = b.AddEntry(0, iv(1), rid(0, 0))
	_ = b.AddEntry(0, iv(2), rid(0, 1))
	_ = b.AddEntry(0, iv(3), rid(0, 2))
	_ = b.AddEntry(1, iv(4), rid(1, 0))
	_ = b.AddEntry(1, iv(5), rid(1, 1))
	if s.Used() != 5 {
		t.Fatalf("used = %d", s.Used())
	}
	part := b.Partitions()[0]
	b.dropPartition(part)
	if b.PartitionCount() != 0 {
		t.Errorf("partitions = %d", b.PartitionCount())
	}
	if s.Used() != 0 {
		t.Errorf("used after drop = %d", s.Used())
	}
	// Counters revert to the uncovered counts.
	if b.Counter(0) != 3 || b.Counter(1) != 2 {
		t.Errorf("counters after drop = %d, %d", b.Counter(0), b.Counter(1))
	}
	if b.PageBuffered(0) || b.PageBuffered(1) {
		t.Error("pages still marked buffered after drop")
	}
	// The open partition pointer was cleared; a new BeginPage works.
	if err := b.BeginPage(2); err != nil {
		t.Fatal(err)
	}
}

func TestReset(t *testing.T) {
	s, b := newBuf(t, Config{P: 1}, []int{1, 1, 1})
	for p := 0; p < 3; p++ {
		_ = b.BeginPage(storage.PageID(p))
		_ = b.AddEntry(storage.PageID(p), iv(int64(p)), rid(p, 0))
	}
	b.Reset()
	if b.PartitionCount() != 0 || b.EntryCount() != 0 || s.Used() != 0 {
		t.Errorf("reset left parts=%d entries=%d used=%d", b.PartitionCount(), b.EntryCount(), s.Used())
	}
	for p := 0; p < 3; p++ {
		if b.Counter(storage.PageID(p)) != 1 {
			t.Errorf("counter %d = %d", p, b.Counter(storage.PageID(p)))
		}
	}
}

func TestBenefitUsesHistory(t *testing.T) {
	_, b := newBuf(t, Config{P: 2, K: 2}, []int{1, 1, 1, 1})
	for p := 0; p < 4; p++ {
		_ = b.BeginPage(storage.PageID(p))
	}
	// 2 partitions × 2 pages, fresh history (T=1): benefit = 4.
	if got := b.Benefit(); got != 4 {
		t.Errorf("benefit = %v, want 4", got)
	}
	// Age the buffer: running interval 6, T = (6+0)/2 = 3 -> benefit 4/3.
	for i := 0; i < 6; i++ {
		b.History().Tick()
	}
	want := 4.0 / 3.0
	if got := b.Benefit(); got < want-1e-9 || got > want+1e-9 {
		t.Errorf("benefit = %v, want %v", got, want)
	}
}

func TestDropBuffer(t *testing.T) {
	s := NewSpace(Config{P: 1})
	b, _ := s.CreateBuffer("t.a", []int{1})
	_ = b.BeginPage(0)
	_ = b.AddEntry(0, iv(1), rid(0, 0))
	s.DropBuffer("t.a")
	if s.Buffer("t.a") != nil || s.Used() != 0 || len(s.Buffers()) != 0 {
		t.Error("DropBuffer did not clean up")
	}
	s.DropBuffer("missing") // no-op
}

func TestAbortPageRollsBackAssignment(t *testing.T) {
	s, b := newBuf(t, Config{P: 10}, []int{2, 3})

	// Page 0 fully buffered, page 1 interrupted after two entries.
	if err := b.BeginPage(0); err != nil {
		t.Fatal(err)
	}
	_ = b.AddEntry(0, iv(1), rid(0, 0))
	_ = b.AddEntry(0, iv(2), rid(0, 1))
	if err := b.BeginPage(1); err != nil {
		t.Fatal(err)
	}
	_ = b.AddEntry(1, iv(3), rid(1, 0))
	_ = b.AddEntry(1, iv(4), rid(1, 1))

	b.AbortPage(1, []PageEntry{{Key: iv(3), RID: rid(1, 0)}, {Key: iv(4), RID: rid(1, 1)}})

	// The aborted page reverts; the completed page is untouched.
	if b.Counter(1) != 3 {
		t.Errorf("C[1] = %d, want 3 (uncovered count restored)", b.Counter(1))
	}
	if b.Counter(0) != 0 {
		t.Errorf("C[0] = %d, want 0", b.Counter(0))
	}
	if b.PageBuffered(1) {
		t.Error("aborted page still buffered")
	}
	if got := b.Lookup(iv(3)); len(got) != 0 {
		t.Errorf("aborted entries still visible: %v", got)
	}
	if got := b.Lookup(iv(1)); len(got) != 1 {
		t.Errorf("surviving entries lost: %v", got)
	}
	// The Space budget refunds exactly the aborted entries.
	if s.Used() != b.EntryCount() || s.Used() != 2 {
		t.Errorf("Used = %d, EntryCount = %d, want 2", s.Used(), b.EntryCount())
	}
	// Both pages shared one partition, so it survives with one page.
	if b.PartitionCount() != 1 {
		t.Errorf("partitions = %d, want 1", b.PartitionCount())
	}

	// Aborting the only page of a partition drops the partition.
	s2, b2 := newBuf(t, Config{P: 10}, []int{1})
	if err := b2.BeginPage(0); err != nil {
		t.Fatal(err)
	}
	_ = b2.AddEntry(0, iv(9), rid(0, 0))
	b2.AbortPage(0, []PageEntry{{Key: iv(9), RID: rid(0, 0)}})
	if b2.PartitionCount() != 0 || s2.Used() != 0 || b2.Counter(0) != 1 {
		t.Errorf("empty-partition abort: parts=%d used=%d C[0]=%d", b2.PartitionCount(), s2.Used(), b2.Counter(0))
	}

	// AbortPage on a page never begun is a no-op.
	b2.AbortPage(0, nil)
	if b2.Counter(0) != 1 {
		t.Errorf("no-op abort changed C[0] to %d", b2.Counter(0))
	}
}

// TestEntryBytesAccounting pins the exact-byte occupancy bookkeeping:
// every insert and remove moves EntryBytes by the key's encoded size
// plus the fixed RID width, and displacement releases a partition's
// bytes wholesale.
func TestEntryBytesAccounting(t *testing.T) {
	_, b := newBuf(t, Config{P: 2}, []int{2, 1})
	if b.EntryBytes() != 0 {
		t.Fatalf("fresh buffer holds %d bytes", b.EntryBytes())
	}
	if err := b.BeginPage(0); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEntry(0, iv(10), rid(0, 0)); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEntry(0, iv(20), rid(0, 1)); err != nil {
		t.Fatal(err)
	}
	per := iv(10).EncodedSize() + 6 // key bytes + RID (uint32 page + uint16 slot)
	if got := b.EntryBytes(); got != 2*per {
		t.Errorf("EntryBytes = %d, want %d", got, 2*per)
	}
	// Maintenance delete of a buffered entry returns its bytes.
	b.MaintainDelete(iv(10), rid(0, 0), false)
	if got := b.EntryBytes(); got != per {
		t.Errorf("EntryBytes after delete = %d, want %d", got, per)
	}
	b.Reset()
	if b.EntryBytes() != 0 {
		t.Errorf("EntryBytes after Reset = %d", b.EntryBytes())
	}
}

// TestCounterSummaryAndSkippable covers the sampling accessors the
// timeline recorder is built on.
func TestCounterSummaryAndSkippable(t *testing.T) {
	_, b := newBuf(t, Config{}, []int{0, 4, 1, 0, 9})
	st := b.CounterSummary()
	if st.Pages != 5 || st.Skippable != 2 || st.Remaining != 14 {
		t.Errorf("summary = %+v", st)
	}
	if st.Min != 1 || st.P50 != 4 || st.Max != 9 {
		t.Errorf("distribution = %+v", st)
	}
	if got := st.Coverage(); got != 0.4 {
		t.Errorf("coverage = %g", got)
	}
	zero, total := b.Skippable()
	if zero != 2 || total != 5 {
		t.Errorf("Skippable = %d/%d", zero, total)
	}

	// All-skippable: distribution collapses to zeros, coverage to 1.
	_, full := newBuf(t, Config{}, []int{0, 0})
	st = full.CounterSummary()
	if st.Skippable != 2 || st.Min != 0 || st.Max != 0 || st.Coverage() != 1 {
		t.Errorf("all-skippable summary = %+v", st)
	}

	// Empty counter array: coverage is 0, not NaN.
	if (CounterStats{}).Coverage() != 0 {
		t.Error("zero-page coverage not 0")
	}
}
