package core

import "testing"

func TestHistoryBasics(t *testing.T) {
	h := NewHistory(3)
	if h.K() != 3 {
		t.Fatalf("K = %d", h.K())
	}
	if h.Mean() != 1 {
		t.Errorf("fresh mean = %v, want floor of 1", h.Mean())
	}
	h.Tick()
	h.Tick()
	// Running interval is 2, others 0: mean = 2/3 -> floored to 1.
	if h.Mean() != 1 {
		t.Errorf("mean = %v, want 1 (floored)", h.Mean())
	}
	h.Tick()
	h.Tick()
	h.Tick()
	h.Tick() // running = 6, mean = 2
	if got := h.Mean(); got != 2 {
		t.Errorf("mean = %v, want 2", got)
	}
}

func TestHistoryUseShifts(t *testing.T) {
	h := NewHistory(2)
	h.Tick()
	h.Tick()
	h.Tick() // running = 3
	h.Use()  // history: [0, 3]
	got := h.Snapshot()
	if got[0] != 0 || got[1] != 3 {
		t.Fatalf("after use: %v, want [0 3]", got)
	}
	h.Tick() // [1, 3], mean 2
	if h.Mean() != 2 {
		t.Errorf("mean = %v", h.Mean())
	}
	h.Use() // [0, 1]; the 3 fell out of the window
	got = h.Snapshot()
	if got[0] != 0 || got[1] != 1 {
		t.Fatalf("after second use: %v, want [0 1]", got)
	}
}

func TestHistoryDepthOneClamp(t *testing.T) {
	h := NewHistory(0) // clamped to 1
	if h.K() != 1 {
		t.Fatalf("K = %d, want 1", h.K())
	}
	h.Tick()
	h.Tick()
	if h.Mean() != 2 {
		t.Errorf("mean = %v", h.Mean())
	}
	h.Use()
	if h.Snapshot()[0] != 0 {
		t.Error("use should reset the single slot")
	}
}

// TestHistoryTableII exercises the exact operation mapping of the paper's
// Table II at Space level: hits tick everyone, misses shift only the
// queried buffer.
func TestHistoryTableII(t *testing.T) {
	s := NewSpace(Config{K: 2})
	a, err := s.CreateBuffer("t.a", []int{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.CreateBuffer("t.b", []int{1, 1})
	if err != nil {
		t.Fatal(err)
	}

	// Query on column A that hits the partial index: H[0]++ for both.
	s.OnQuery(a, true)
	if got := a.History().Snapshot(); got[0] != 1 {
		t.Errorf("a after hit: %v", got)
	}
	if got := b.History().Snapshot(); got[0] != 1 {
		t.Errorf("b after hit: %v", got)
	}

	// Query on column A that misses: A shifts to a new interval, B ticks.
	s.OnQuery(a, false)
	if got := a.History().Snapshot(); got[0] != 0 || got[1] != 1 {
		t.Errorf("a after miss: %v, want [0 1]", got)
	}
	if got := b.History().Snapshot(); got[0] != 2 {
		t.Errorf("b after a-miss: %v, want running=2", got)
	}

	// Query on a column with no buffer (queried == nil): everyone ticks.
	s.OnQuery(nil, false)
	if got := a.History().Snapshot(); got[0] != 1 {
		t.Errorf("a after unrelated query: %v", got)
	}
	if got := b.History().Snapshot(); got[0] != 3 {
		t.Errorf("b after unrelated query: %v", got)
	}
}
