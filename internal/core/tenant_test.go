package core

import (
	"math/rand"
	"testing"
)

func TestCreateTenantValidation(t *testing.T) {
	s := NewSpace(Config{IMax: 10, P: 10})
	if _, err := s.CreateTenant("", 10, false); err == nil {
		t.Error("empty tenant name accepted")
	}
	tn, err := s.CreateTenant("acme", 10, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateTenant("acme", 20, false); err == nil {
		t.Error("duplicate tenant name accepted")
	}
	if got := s.Tenant("acme"); got != tn {
		t.Error("Tenant lookup returned a different value")
	}
	if got := s.Tenant("nope"); got != nil {
		t.Errorf("unknown tenant lookup = %v, want nil", got)
	}
	if _, err := s.CreateTenant("beta", 0, true); err != nil {
		t.Fatal(err)
	}
	names := []string{}
	for _, tn := range s.Tenants() {
		names = append(names, tn.Name())
	}
	if len(names) != 2 || names[0] != "acme" || names[1] != "beta" {
		t.Errorf("Tenants() order = %v, want [acme beta]", names)
	}
}

// TestTenantQuotaCapsSelection pins the hard invariant for query
// traffic: page selection never grows a tenant past its quota, and once
// the headroom cannot fit a single page the tenant latches exhausted so
// admission degrades instead of re-running fruitless scans.
func TestTenantQuotaCapsSelection(t *testing.T) {
	s := NewSpace(Config{IMax: 100, P: 10, SpaceLimit: 100})
	tn, err := s.CreateTenant("acme", 5, false)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.CreateBufferFor("acme:t.a", []int{3, 3, 3}, tn)
	if err != nil {
		t.Fatal(err)
	}

	got := s.SelectPagesForBuffer(b, 3)
	if len(got) != 1 {
		t.Fatalf("selected %d pages, want 1 (quota 5, 3 entries per page)", len(got))
	}
	indexPages(t, b, got)
	if tn.Used() != 3 || s.Used() != 3 {
		t.Errorf("tenant used=%d space used=%d, want 3/3", tn.Used(), s.Used())
	}
	if tn.OverQuota() {
		t.Error("tenant over quota at 3/5 before any fruitless scan")
	}

	// 2 entries of headroom, every page costs 3, no intra-tenant victim
	// worth taking: selection is empty and the exhaustion latch flips.
	if got := s.SelectPagesForBuffer(b, 3); len(got) != 0 {
		t.Fatalf("selected %v past the quota", got)
	}
	if tn.Used() != 3 {
		t.Errorf("tenant used=%d after empty selection, want 3", tn.Used())
	}
	if !tn.Exhausted() || !tn.OverQuota() {
		t.Error("tenant not latched exhausted after a fruitless selection")
	}

	// Releasing entries clears the latch: the next miss may scan again.
	b.Reset()
	if tn.Used() != 0 {
		t.Errorf("tenant used=%d after Reset, want 0", tn.Used())
	}
	if tn.Exhausted() || tn.OverQuota() {
		t.Error("exhaustion latch survived the release of every entry")
	}
}

// TestTenantIntraDisplacement pins the two-level competition: while the
// tenant budget is the binding constraint, victims come from the
// tenant's own buffers — never from other tenants or the default pool.
func TestTenantIntraDisplacement(t *testing.T) {
	s := NewSpace(Config{IMax: 100, P: 2, K: 2, SpaceLimit: 100,
		Rand: rand.New(rand.NewSource(42))})
	tn, err := s.CreateTenant("acme", 4, false)
	if err != nil {
		t.Fatal(err)
	}
	other, err := s.CreateTenant("other", 100, false)
	if err != nil {
		t.Fatal(err)
	}

	cold, _ := s.CreateBufferFor("acme:t.cold", []int{2, 2}, tn)
	target, _ := s.CreateBufferFor("acme:t.new", []int{2, 2}, tn)
	foreign, _ := s.CreateBufferFor("other:t.a", []int{2, 2}, other)
	deflt, _ := s.CreateBuffer("t.default", []int{2, 2})

	indexPages(t, cold, s.SelectPagesForBuffer(cold, 2))       // acme: 4/4
	indexPages(t, foreign, s.SelectPagesForBuffer(foreign, 2)) // other: 4
	indexPages(t, deflt, s.SelectPagesForBuffer(deflt, 2))     // default: 4
	if tn.Used() != 4 {
		t.Fatalf("acme used=%d, want 4 (at quota)", tn.Used())
	}

	// Age cold, make the target hot, then let it compete for space. The
	// global pool has 88 entries free — the tenant budget is what binds,
	// so the victim must be acme's own cold buffer.
	for i := 0; i < 50; i++ {
		s.OnQuery(foreign, false)
	}
	s.OnQuery(target, false)
	s.OnQuery(target, false)

	got := s.SelectPagesForBuffer(target, 2)
	if len(got) == 0 {
		t.Fatal("no pages selected despite an intra-tenant victim")
	}
	indexPages(t, target, got)
	if tn.Used() > 4 {
		t.Errorf("acme used=%d, quota 4 breached", tn.Used())
	}
	if cold.EntryCount() >= 4 {
		t.Errorf("cold kept %d entries; expected intra-tenant displacement", cold.EntryCount())
	}
	if foreign.EntryCount() != 4 || deflt.EntryCount() != 4 {
		t.Errorf("foreign=%d default=%d entries; cross-tenant displacement leaked",
			foreign.EntryCount(), deflt.EntryCount())
	}
	if n := s.Stats().CrossTenantEntriesDropped; n != 0 {
		t.Errorf("CrossTenantEntriesDropped = %d, want 0", n)
	}
	if other.Evicted() != 0 {
		t.Errorf("other tenant recorded %d evictions", other.Evicted())
	}
}

// TestTenantOvercommitSpillsGlobally pins the other arena: when quotas
// overcommit SpaceLimit, the global pool binds and the competition may
// displace another tenant — counted on both ledgers.
func TestTenantOvercommitSpillsGlobally(t *testing.T) {
	s := NewSpace(Config{IMax: 100, P: 2, K: 2, SpaceLimit: 4,
		Rand: rand.New(rand.NewSource(7))})
	a, _ := s.CreateTenant("a", 4, false)
	bT, _ := s.CreateTenant("b", 4, false) // 4+4 quota > SpaceLimit 4

	victim, _ := s.CreateBufferFor("a:t.x", []int{2, 2}, a)
	target, _ := s.CreateBufferFor("b:t.y", []int{2, 2}, bT)
	indexPages(t, victim, s.SelectPagesForBuffer(victim, 2)) // fills the space

	// Age the victim, heat the target: the global pool is full, tenant b
	// has full quota headroom, so the spill arena must evict tenant a.
	for i := 0; i < 50; i++ {
		s.OnQuery(target, false)
	}
	s.OnQuery(target, false)

	got := s.SelectPagesForBuffer(target, 2)
	if len(got) == 0 {
		t.Fatal("no pages selected despite a cross-tenant victim under overcommit")
	}
	indexPages(t, target, got)
	if s.Used() > 4 {
		t.Errorf("space used=%d, SpaceLimit 4 breached", s.Used())
	}
	if n := s.Stats().CrossTenantEntriesDropped; n == 0 {
		t.Error("overcommit displacement not counted in CrossTenantEntriesDropped")
	}
	if a.Evicted() == 0 {
		t.Error("victim tenant's Evicted counter not bumped")
	}
}
