package core

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/storage"
)

// IndexBuffer is the scratch-pad index complementing one partial index
// (paper §III). It holds, for a set of fully indexed table pages, every
// tuple of those pages that the partial index does not cover. Pages whose
// uncovered tuples are all buffered have counter C[p] == 0 and can be
// skipped by table scans on this column.
//
// The buffer consists of partitions (its displacement units), the page
// counters, and an LRU-K usage history. It is created and sized through
// a Space.
//
// Concurrency: every exported method takes the buffer's own RWMutex, so
// probes (Lookup, Counter) from index-hit queries and displacement drops
// initiated by scans on *other* tables interleave safely. The mutating
// scan protocol (BeginPage/AddEntry) is not itself serialized here — the
// engine guarantees at most one indexing scan per buffer at a time by
// holding the owning table's write lock, and pins the buffer against
// displacement for the scan's duration (Space.PinForScan). Lock order:
// Space.mu → IndexBuffer.mu → History.mu; the buffer never acquires
// Space.mu (the shared entry budget is atomic).
type IndexBuffer struct {
	name  string
	space *Space
	cfg   *Config
	// tenant is the budget domain the buffer's entries charge, alongside
	// the global Space budget; nil is the default (global-only) domain.
	// Immutable after CreateBufferFor.
	tenant *Tenant

	mu sync.RWMutex

	// uncovered[p] is the number of live tuples in page p not covered by
	// the partial index, maintained under all DML (paper: the counter
	// array "initialized during the creation of the partial index").
	// The effective counter is C[p] = 0 when p is buffered, else
	// uncovered[p]; see Counter.
	uncovered []int

	parts  []*Partition
	open   *Partition // partition currently filling (X_p < P), if any
	byPage map[storage.PageID]*Partition
	nextID int

	// scanPins counts indexing scans currently using this buffer; a
	// pinned buffer is never chosen as a displacement victim. Guarded by
	// space.mu, not b.mu (victim selection runs under space.mu).
	scanPins int

	// snap is the published counter snapshot: an immutable copy of the
	// effective counter array C[p], swapped wholesale at every
	// consistent boundary (page completion, DML maintenance,
	// displacement, reset — never mid-page). Lock-free consumers (the
	// indexing scan's skip decisions) read it inside an epoch
	// Pin/Unpin bracket; the displaced snapshot is retired through the
	// Space's epoch domain and reclaimed only once every such reader
	// has unpinned. See publishCountersLocked.
	snap atomic.Pointer[CounterSnap]

	hist *History
}

// CounterSnap is one immutable published copy of a buffer's effective
// counters. Pages beyond the array read as 0, matching Counter's
// convention for unknown pages.
type CounterSnap struct {
	counters []int32
}

// At returns the snapshot's C[p].
func (s *CounterSnap) At(p storage.PageID) int {
	if s == nil || int(p) >= len(s.counters) {
		return 0
	}
	return int(s.counters[p])
}

// NumPages returns the snapshot's counter-array size.
func (s *CounterSnap) NumPages() int {
	if s == nil {
		return 0
	}
	return len(s.counters)
}

// CounterSnapshot returns the buffer's current published counter
// snapshot without taking any lock. Callers that outlive a single
// load — an indexing scan consulting the snapshot page by page — must
// hold an epoch pin on the Space's domain for as long as they read it;
// reclamation nils the displaced array once every pinned reader left.
func (b *IndexBuffer) CounterSnapshot() *CounterSnap { return b.snap.Load() }

// publishCountersLocked copies the effective counter array into a fresh
// snapshot and swaps it in, retiring the displaced one through the
// epoch domain. Called under b.mu at every consistent boundary; the
// copy is O(pages), the same cost class as the maintenance walks that
// precede it.
func (b *IndexBuffer) publishCountersLocked() {
	c := make([]int32, len(b.uncovered))
	for p := range b.uncovered {
		if _, buffered := b.byPage[storage.PageID(p)]; !buffered {
			c[p] = int32(b.uncovered[p])
		}
	}
	old := b.snap.Swap(&CounterSnap{counters: c})
	if old != nil && b.space != nil && b.space.epochs != nil {
		b.space.epochs.Retire(func() { old.counters = nil })
	}
}

// Name returns the buffer's identifier (typically "table.column").
func (b *IndexBuffer) Name() string { return b.name }

// Tenant returns the buffer's budget domain, or nil for the default.
func (b *IndexBuffer) Tenant() *Tenant { return b.tenant }

// TenantName returns the owning tenant's name ("" for the default).
func (b *IndexBuffer) TenantName() string {
	if b.tenant == nil {
		return ""
	}
	return b.tenant.name
}

// charge moves delta entries on both ledgers the buffer draws from: the
// global Space budget and, when the buffer belongs to a tenant, the
// tenant's quota. Called under b.mu like addUsed.
func (b *IndexBuffer) charge(delta int) {
	b.space.addUsed(delta)
	if b.tenant != nil {
		b.tenant.used.Add(int64(delta))
		if delta < 0 {
			// Freed headroom may now fit a page; let the next miss try a
			// real indexing scan again instead of degrading.
			b.tenant.exhausted.Store(false)
		}
	}
}

// History exposes the LRU-K history (internally synchronized; the Space
// advances it on every query).
func (b *IndexBuffer) History() *History { return b.hist }

// NumPages returns the size of the counter array — the number of table
// pages the buffer knows about.
func (b *IndexBuffer) NumPages() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return len(b.uncovered)
}

// GrowPages extends the counter array for newly allocated table pages.
// New pages start with zero uncovered tuples; inserts bump them.
func (b *IndexBuffer) GrowPages(numPages int) {
	b.mu.Lock()
	b.growPagesLocked(numPages)
	b.publishCountersLocked()
	b.mu.Unlock()
}

func (b *IndexBuffer) growPagesLocked(numPages int) {
	for len(b.uncovered) < numPages {
		b.uncovered = append(b.uncovered, 0)
	}
}

// Counter returns C[p]: 0 when the page is fully indexed (buffered), else
// the number of uncovered live tuples in the page.
func (b *IndexBuffer) Counter(p storage.PageID) int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.counterLocked(p)
}

func (b *IndexBuffer) counterLocked(p storage.PageID) int {
	if int(p) >= len(b.uncovered) {
		return 0
	}
	if _, buffered := b.byPage[p]; buffered {
		return 0
	}
	return b.uncovered[p]
}

// Uncovered returns the raw uncovered-tuple count of page p, independent
// of buffering — what C[p] reverts to when p's partition is dropped.
func (b *IndexBuffer) Uncovered(p storage.PageID) int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	if int(p) >= len(b.uncovered) {
		return 0
	}
	return b.uncovered[p]
}

// PageBuffered reports whether page p is covered by a partition.
func (b *IndexBuffer) PageBuffered(p storage.PageID) bool {
	b.mu.RLock()
	defer b.mu.RUnlock()
	_, ok := b.byPage[p]
	return ok
}

// EntryCount returns the number of entries across all partitions.
func (b *IndexBuffer) EntryCount() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	n := 0
	for _, p := range b.parts {
		n += p.EntryCount()
	}
	return n
}

// EntryBytes returns the exact encoded payload bytes held across all
// partitions — the buffer's occupancy in bytes rather than entries.
func (b *IndexBuffer) EntryBytes() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	n := 0
	for _, p := range b.parts {
		n += p.EntryBytes()
	}
	return n
}

// CounterStats summarizes the effective counter array C[p]: how many
// pages are skippable (C[p] == 0) and the distribution of the non-zero
// counters — the remaining un-buffered work. Remaining is Σ C[p].
type CounterStats struct {
	Pages     int // counter array size (pages the buffer knows about)
	Skippable int // pages with C[p] == 0
	Remaining int // Σ C[p]: uncovered live tuples not yet buffered
	// Min/P50/P95/Max describe the non-zero counters; all zero when
	// every page is skippable.
	Min, P50, P95, Max int
}

// Coverage returns Skippable/Pages, the fraction of table pages a scan
// on this column may skip (0 when the buffer knows no pages).
func (c CounterStats) Coverage() float64 {
	if c.Pages == 0 {
		return 0
	}
	return float64(c.Skippable) / float64(c.Pages)
}

// CounterSummary walks the counter array once and returns its
// distribution summary. O(pages) plus a sort of the non-zero counters;
// intended for sampling paths that are off unless observability asked
// for them, not for per-tuple hot paths.
func (b *IndexBuffer) CounterSummary() CounterStats {
	b.mu.RLock()
	defer b.mu.RUnlock()
	st := CounterStats{Pages: len(b.uncovered)}
	nonzero := make([]int, 0, len(b.uncovered))
	for p := range b.uncovered {
		c := b.counterLocked(storage.PageID(p))
		if c == 0 {
			st.Skippable++
			continue
		}
		st.Remaining += c
		nonzero = append(nonzero, c)
	}
	if len(nonzero) == 0 {
		return st
	}
	sort.Ints(nonzero)
	st.Min = nonzero[0]
	st.Max = nonzero[len(nonzero)-1]
	st.P50 = nonzero[quantileIndex(len(nonzero), 0.50)]
	st.P95 = nonzero[quantileIndex(len(nonzero), 0.95)]
	return st
}

// quantileIndex maps quantile q to an index in a sorted slice of n
// elements (nearest-rank: the smallest element with at least q·n of the
// sample at or below it).
func quantileIndex(n int, q float64) int {
	i := int(math.Ceil(q*float64(n))) - 1
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	return i
}

// Skippable returns (pages with C[p] == 0, total pages) without the
// distribution walk's sort — cheap enough for every /metrics scrape.
func (b *IndexBuffer) Skippable() (zero, total int) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	total = len(b.uncovered)
	for p := range b.uncovered {
		if b.counterLocked(storage.PageID(p)) == 0 {
			zero++
		}
	}
	return zero, total
}

// PartitionCount returns the number of live partitions.
func (b *IndexBuffer) PartitionCount() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return len(b.parts)
}

// Partitions returns a snapshot of the live partitions.
func (b *IndexBuffer) Partitions() []*Partition {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return append([]*Partition(nil), b.parts...)
}

// BufferedPages returns the number of fully indexed pages — Σ X_p.
func (b *IndexBuffer) BufferedPages() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	n := 0
	for _, p := range b.parts {
		n += p.PageCount()
	}
	return n
}

// Benefit returns b_B = Σ_p b_p, the buffer's total benefit under its
// current mean access interval.
func (b *IndexBuffer) Benefit() float64 {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.benefitLocked()
}

func (b *IndexBuffer) benefitLocked() float64 {
	t := b.hist.Mean()
	sum := 0.0
	for _, p := range b.parts {
		sum += p.benefit(t)
	}
	return sum
}

// Lookup returns the RIDs of buffered tuples with the given key,
// collected across all partitions — the "Index Buffer scan" of
// Algorithm 1 (lines 8–10).
func (b *IndexBuffer) Lookup(key storage.Value) []storage.RID {
	b.mu.RLock()
	defer b.mu.RUnlock()
	var out []storage.RID
	for _, p := range b.parts {
		out = append(out, p.structure.Lookup(key)...)
	}
	return out
}

// rangeScanner is the optional Structure extension for ordered range
// iteration (the tree structures); structures without it (hash) fall
// back to the unordered enumerator.
type rangeScanner interface {
	AscendRange(lo, hi storage.Value, fn func(key storage.Value, post []storage.RID) bool)
}

// enumerator is the unordered fallback for range lookups.
type enumerator interface {
	ForEach(fn func(key storage.Value, post []storage.RID) bool)
}

// LookupRange returns the RIDs of buffered tuples with keys in [lo, hi],
// collected across all partitions. Tree-backed partitions use ordered
// range scans; hash-backed partitions filter a full enumeration — the
// structural trade-off the paper alludes to when it permits a hash table
// as the buffer structure.
func (b *IndexBuffer) LookupRange(lo, hi storage.Value) []storage.RID {
	b.mu.RLock()
	defer b.mu.RUnlock()
	var out []storage.RID
	for _, p := range b.parts {
		switch st := p.structure.(type) {
		case rangeScanner:
			st.AscendRange(lo, hi, func(_ storage.Value, post []storage.RID) bool {
				out = append(out, post...)
				return true
			})
		case enumerator:
			st.ForEach(func(k storage.Value, post []storage.RID) bool {
				if k.Compare(lo) >= 0 && k.Compare(hi) <= 0 {
					out = append(out, post...)
				}
				return true
			})
		default:
			panic(fmt.Sprintf("core: structure %T supports neither range scan nor enumeration", p.structure))
		}
	}
	return out
}

// BeginPage assigns page p to the filling partition, opening a new one
// when the current is complete (X_p == P). Called by the indexing scan
// for each page in the selected set I before its tuples are added.
func (b *IndexBuffer) BeginPage(p storage.PageID) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.beginPageLocked(p)
}

func (b *IndexBuffer) beginPageLocked(p storage.PageID) error {
	if _, dup := b.byPage[p]; dup {
		return fmt.Errorf("core: page %d already buffered in %s", p, b.name)
	}
	if b.open == nil || b.open.complete(b.cfg.P) {
		b.open = newPartition(b.nextID, b.cfg.NewStructure)
		b.nextID++
		b.parts = append(b.parts, b.open)
	}
	b.open.pages[p] = struct{}{}
	b.byPage[p] = b.open
	return nil
}

// AddEntry inserts an uncovered tuple of a buffered page into the page's
// partition, charging the Space budget. The page must have been assigned
// via BeginPage.
func (b *IndexBuffer) AddEntry(p storage.PageID, key storage.Value, rid storage.RID) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	part, ok := b.byPage[p]
	if !ok {
		return fmt.Errorf("core: AddEntry on unbuffered page %d in %s", p, b.name)
	}
	if part.insert(key, rid) {
		b.charge(1)
	}
	return nil
}

// ApplyPage is BeginPage plus the page's complete entry set under one
// lock acquisition: the page is assigned to the filling partition and
// every entry inserted atomically with respect to concurrent probes. A
// parallel scan's workers collect each selected page's uncovered tuples
// off-lock and the ordered merge step applies them here, so readers
// (Lookup, Counter) never observe a page that is buffered but only
// partially inserted — the same all-or-nothing view the serial
// BeginPage/AddEntry loop provides under the table's write lock, without
// per-entry lock traffic.
func (b *IndexBuffer) ApplyPage(p storage.PageID, entries []PageEntry) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if err := b.beginPageLocked(p); err != nil {
		return err
	}
	part := b.byPage[p]
	added := 0
	for _, e := range entries {
		if part.insert(e.Key, e.RID) {
			added++
		}
	}
	if added > 0 {
		b.charge(added)
	}
	b.publishCountersLocked()
	return nil
}

// FinishPage publishes a fresh counter snapshot after the serial
// BeginPage/AddEntry loop completes page p — the point where C[p]
// becomes 0 for lock-free skip decisions. BeginPage deliberately does
// not publish: between BeginPage and FinishPage the page is buffered
// but possibly half-inserted, and only the locked probe path (which
// sees the all-or-nothing partition state under b.mu) may treat it as
// covered.
func (b *IndexBuffer) FinishPage(p storage.PageID) {
	b.mu.Lock()
	if _, ok := b.byPage[p]; ok {
		b.publishCountersLocked()
	}
	b.mu.Unlock()
}

// PageEntry records one entry inserted for a page during an indexing
// scan — the undo log AbortPage needs to roll the page back.
type PageEntry struct {
	Key storage.Value
	RID storage.RID
}

// AbortPage rolls back a BeginPage assignment after a mid-page failure:
// the entries inserted so far are removed (refunding the Space budget),
// the page leaves its partition, and C[p] reverts to the uncovered
// count. Without this a page interrupted between BeginPage and the end
// of its scan would read C[p] == 0 while only part of its uncovered
// tuples are buffered, and every later scan would silently skip the
// rest. A partition left with no pages is dropped entirely.
func (b *IndexBuffer) AbortPage(p storage.PageID, added []PageEntry) {
	b.mu.Lock()
	defer b.mu.Unlock()
	part, ok := b.byPage[p]
	if !ok {
		return
	}
	for _, e := range added {
		if part.remove(e.Key, e.RID) {
			b.charge(-1)
		}
	}
	delete(part.pages, p)
	delete(b.byPage, p)
	if len(part.pages) == 0 {
		b.dropPartitionLocked(part)
	}
	b.publishCountersLocked()
}

// dropPartition removes part from the buffer: its pages lose their
// fully-indexed status (C[p] reverts to the uncovered count) and its
// entries leave the Space budget. Callers must hold b.mu.
func (b *IndexBuffer) dropPartitionLocked(part *Partition) {
	for i, p := range b.parts {
		if p == part {
			b.parts = append(b.parts[:i], b.parts[i+1:]...)
			break
		}
	}
	if b.open == part {
		b.open = nil
	}
	for pg := range part.pages {
		delete(b.byPage, pg)
	}
	b.charge(-part.EntryCount())
}

// dropPartition is the locking wrapper around dropPartitionLocked.
func (b *IndexBuffer) dropPartition(part *Partition) {
	b.mu.Lock()
	b.dropPartitionLocked(part)
	b.publishCountersLocked()
	b.mu.Unlock()
}

// Reset drops every partition — used when the partial index is redefined
// (the counters must be rebuilt against the new coverage, so the engine
// re-creates the buffer afterwards).
func (b *IndexBuffer) Reset() {
	b.mu.Lock()
	defer b.mu.Unlock()
	for len(b.parts) > 0 {
		b.dropPartitionLocked(b.parts[0])
	}
	b.publishCountersLocked()
}
