package heap

import (
	"bytes"
	"testing"

	"repro/internal/buffer"
)

// FuzzSlottedPageValidate feeds arbitrary page images through Validate
// and, when a page validates, exercises every read operation. The
// contract under test: Validate-approved pages never cause panics or
// out-of-bounds slices.
func FuzzSlottedPageValidate(f *testing.F) {
	// Seed: an empty page, and one with a few real tuples.
	f.Add(make([]byte, buffer.PageSize))
	seeded := make([]byte, buffer.PageSize)
	sp, _ := AsPage(seeded)
	sp.Insert([]byte("hello"))
	sp.Insert(bytes.Repeat([]byte("x"), 300))
	f.Add(seeded)

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) != buffer.PageSize {
			// Pad/trim to page size so the fuzzer explores headers.
			fixed := make([]byte, buffer.PageSize)
			copy(fixed, data)
			data = fixed
		}
		p, err := AsPage(data)
		if err != nil {
			t.Fatalf("AsPage on full-size buffer: %v", err)
		}
		if err := p.Validate(); err != nil {
			return // corrupt image correctly rejected
		}
		// A validated page must be fully readable without panics.
		n := p.NumSlots()
		live := 0
		for i := 0; i < n; i++ {
			if !p.Live(i) {
				continue
			}
			live++
			if _, err := p.Tuple(i); err != nil {
				t.Errorf("validated page: Tuple(%d) failed: %v", i, err)
			}
		}
		if got := p.LiveCount(); got != live {
			t.Errorf("LiveCount %d != counted %d", got, live)
		}
		_ = p.FreeSpace()
	})
}
