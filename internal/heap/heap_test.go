package heap

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/buffer"
	"repro/internal/storage"
)

func testSchema() *storage.Schema {
	return storage.MustSchema(
		storage.Column{Name: "a", Kind: storage.KindInt64},
		storage.Column{Name: "payload", Kind: storage.KindString},
	)
}

func newTable(t *testing.T, poolPages int) (*Table, *buffer.SimDisk) {
	t.Helper()
	d := buffer.NewSimDisk()
	pool, err := buffer.NewPool(d, poolPages)
	if err != nil {
		t.Fatal(err)
	}
	return NewTable(testSchema(), pool), d
}

func row(a int64, payload string) storage.Tuple {
	return storage.NewTuple(storage.Int64Value(a), storage.StringValue(payload))
}

func TestTableInsertGet(t *testing.T) {
	tb, _ := newTable(t, 8)
	rid, err := tb.Insert(row(42, "hello"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := tb.Get(rid)
	if err != nil {
		t.Fatal(err)
	}
	if got.Value(0).Int64() != 42 || got.Value(1).Str() != "hello" {
		t.Errorf("got %v", got)
	}
	if tb.NumPages() != 1 {
		t.Errorf("pages = %d, want 1", tb.NumPages())
	}
}

func TestTableGetErrors(t *testing.T) {
	tb, _ := newTable(t, 8)
	if _, err := tb.Get(storage.RID{Page: 0, Slot: 0}); err == nil {
		t.Error("get on empty table should fail")
	}
	if _, err := tb.Get(storage.InvalidRID); err == nil {
		t.Error("get of invalid RID should fail")
	}
	rid, _ := tb.Insert(row(1, "x"))
	if err := tb.Delete(rid); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.Get(rid); err == nil {
		t.Error("get of deleted RID should fail")
	}
}

func TestTableSpillsToNewPages(t *testing.T) {
	tb, _ := newTable(t, 8)
	// ~500-byte tuples: ~16 per 8 KiB page.
	payload := strings.Repeat("p", 490)
	const n = 100
	rids := make([]storage.RID, n)
	for i := 0; i < n; i++ {
		rid, err := tb.Insert(row(int64(i), payload))
		if err != nil {
			t.Fatal(err)
		}
		rids[i] = rid
	}
	if tb.NumPages() < 4 {
		t.Errorf("pages = %d, want >= 4", tb.NumPages())
	}
	for i, rid := range rids {
		got, err := tb.Get(rid)
		if err != nil {
			t.Fatalf("row %d: %v", i, err)
		}
		if got.Value(0).Int64() != int64(i) {
			t.Errorf("row %d: key %d", i, got.Value(0).Int64())
		}
	}
	cnt, err := tb.Count()
	if err != nil {
		t.Fatal(err)
	}
	if cnt != n {
		t.Errorf("count = %d, want %d", cnt, n)
	}
}

func TestTableUpdateInPlaceAndMove(t *testing.T) {
	tb, _ := newTable(t, 8)
	rid, _ := tb.Insert(row(1, "short"))
	// In-place: same size.
	rid2, err := tb.Update(rid, row(2, "shart"))
	if err != nil {
		t.Fatal(err)
	}
	if rid2 != rid {
		t.Errorf("same-size update moved tuple: %v -> %v", rid, rid2)
	}
	got, _ := tb.Get(rid2)
	if got.Value(0).Int64() != 2 {
		t.Errorf("update not applied: %v", got)
	}

	// Force a move: fill the page, then grow a tuple beyond its room.
	big := strings.Repeat("b", 2000)
	for tb.NumPages() == 1 {
		if _, err := tb.Insert(row(9, big)); err != nil {
			t.Fatal(err)
		}
	}
	// Grow the first tuple to more than a page's remaining space: find a
	// tuple on page 0 and grow it hugely.
	var victim storage.RID
	_ = tb.ScanPage(0, func(r storage.RID, _ storage.Tuple) error {
		victim = r
		return fmt.Errorf("stop")
	})
	huge := strings.Repeat("H", 7000)
	newRID, err := tb.Update(victim, row(77, huge))
	if err != nil {
		t.Fatal(err)
	}
	if newRID.Page == victim.Page {
		// The move is only guaranteed when the origin page lacks space;
		// page 0 was filled with big tuples so 7000 bytes cannot fit.
		t.Errorf("expected relocation off page %d, got %v", victim.Page, newRID)
	}
	got, err = tb.Get(newRID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Value(0).Int64() != 77 || got.Value(1).Str() != huge {
		t.Error("moved tuple content mismatch")
	}
	if _, err := tb.Get(victim); err == nil {
		t.Error("old RID should be dead after move")
	}
}

func TestTableScanOrder(t *testing.T) {
	tb, _ := newTable(t, 8)
	payload := strings.Repeat("p", 400)
	const n = 60
	for i := 0; i < n; i++ {
		if _, err := tb.Insert(row(int64(i), payload)); err != nil {
			t.Fatal(err)
		}
	}
	var rids []storage.RID
	var keys []int64
	err := tb.Scan(func(r storage.RID, tu storage.Tuple) error {
		rids = append(rids, r)
		keys = append(keys, tu.Value(0).Int64())
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rids) != n {
		t.Fatalf("scan saw %d tuples, want %d", len(rids), n)
	}
	for i := 1; i < len(rids); i++ {
		if !rids[i-1].Less(rids[i]) {
			t.Errorf("scan order violated at %d: %v then %v", i, rids[i-1], rids[i])
		}
	}
	// Append-only inserts preserve key order under page/slot order.
	for i, k := range keys {
		if k != int64(i) {
			t.Errorf("key order: position %d has key %d", i, k)
			break
		}
	}
}

func TestTableScanPageErrors(t *testing.T) {
	tb, _ := newTable(t, 8)
	if err := tb.ScanPage(0, func(storage.RID, storage.Tuple) error { return nil }); err == nil {
		t.Error("scan of nonexistent page should fail")
	}
	if _, err := tb.PageLiveCount(0); err == nil {
		t.Error("live count of nonexistent page should fail")
	}
}

func TestTablePageLiveCount(t *testing.T) {
	tb, _ := newTable(t, 8)
	payload := strings.Repeat("p", 400)
	var rids []storage.RID
	for i := 0; i < 10; i++ {
		rid, _ := tb.Insert(row(int64(i), payload))
		rids = append(rids, rid)
	}
	n, err := tb.PageLiveCount(0)
	if err != nil {
		t.Fatal(err)
	}
	if n != 10 {
		t.Fatalf("live = %d, want 10", n)
	}
	_ = tb.Delete(rids[3])
	_ = tb.Delete(rids[7])
	n, _ = tb.PageLiveCount(0)
	if n != 8 {
		t.Errorf("live after deletes = %d, want 8", n)
	}
}

func TestTableWorksThroughTinyPool(t *testing.T) {
	// A 2-frame pool forces constant eviction and writeback; data must
	// survive round trips through the simulated disk.
	tb, d := newTable(t, 2)
	payload := strings.Repeat("q", 450)
	const n = 200
	rids := make([]storage.RID, n)
	for i := 0; i < n; i++ {
		rid, err := tb.Insert(row(int64(i), payload))
		if err != nil {
			t.Fatal(err)
		}
		rids[i] = rid
	}
	for i, rid := range rids {
		got, err := tb.Get(rid)
		if err != nil {
			t.Fatalf("row %d after eviction churn: %v", i, err)
		}
		if got.Value(0).Int64() != int64(i) {
			t.Errorf("row %d corrupted", i)
		}
	}
	if d.Stats().Writes == 0 {
		t.Error("expected dirty writebacks through tiny pool")
	}
}

// TestTableRandomizedDML compares the table against a map model under
// random inserts, updates, deletes with varying payload sizes.
func TestTableRandomizedDML(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tb, _ := newTable(t, 4)
	model := map[storage.RID]int64{}
	var live []storage.RID

	removeRID := func(r storage.RID) {
		for i, x := range live {
			if x == r {
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
				return
			}
		}
	}

	for step := 0; step < 2000; step++ {
		switch op := rng.Intn(4); {
		case op <= 1 || len(live) == 0: // insert (50%)
			key := rng.Int63n(1000)
			pl := strings.Repeat("x", 1+rng.Intn(600))
			rid, err := tb.Insert(row(key, pl))
			if err != nil {
				t.Fatalf("step %d insert: %v", step, err)
			}
			if _, clash := model[rid]; clash {
				t.Fatalf("step %d: insert returned live RID %v", step, rid)
			}
			model[rid] = key
			live = append(live, rid)
		case op == 2: // delete
			r := live[rng.Intn(len(live))]
			if err := tb.Delete(r); err != nil {
				t.Fatalf("step %d delete %v: %v", step, r, err)
			}
			delete(model, r)
			removeRID(r)
		default: // update
			r := live[rng.Intn(len(live))]
			key := rng.Int63n(1000)
			pl := strings.Repeat("y", 1+rng.Intn(600))
			nr, err := tb.Update(r, row(key, pl))
			if err != nil {
				t.Fatalf("step %d update %v: %v", step, r, err)
			}
			if nr != r {
				delete(model, r)
				removeRID(r)
				if _, clash := model[nr]; clash {
					t.Fatalf("step %d: update moved to live RID %v", step, nr)
				}
				model[nr] = key
				live = append(live, nr)
			} else {
				model[r] = key
			}
		}
	}

	// Final verification: every model entry reachable, count matches.
	for rid, key := range model {
		got, err := tb.Get(rid)
		if err != nil {
			t.Fatalf("final: %v: %v", rid, err)
		}
		if got.Value(0).Int64() != key {
			t.Errorf("final: %v key = %d, want %d", rid, got.Value(0).Int64(), key)
		}
	}
	cnt, err := tb.Count()
	if err != nil {
		t.Fatal(err)
	}
	if cnt != len(model) {
		t.Errorf("final count = %d, model = %d", cnt, len(model))
	}
}

func TestOpenTableReattaches(t *testing.T) {
	d := buffer.NewSimDisk()
	pool, err := buffer.NewPool(d, 8)
	if err != nil {
		t.Fatal(err)
	}
	tb := NewTable(testSchema(), pool)
	if tb.Schema() != testSchema() && tb.Schema().NumColumns() != 2 {
		t.Error("Schema accessor wrong")
	}
	payload := strings.Repeat("o", 400)
	var rids []storage.RID
	for i := 0; i < 60; i++ {
		rid, err := tb.Insert(row(int64(i), payload))
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	_ = tb.Delete(rids[5])
	if err := pool.FlushAll(); err != nil {
		t.Fatal(err)
	}

	// Reattach over the same store with a fresh pool.
	pool2, err := buffer.NewPool(d, 8)
	if err != nil {
		t.Fatal(err)
	}
	tb2, err := OpenTable(testSchema(), pool2, tb.NumPages())
	if err != nil {
		t.Fatal(err)
	}
	n, err := tb2.Count()
	if err != nil {
		t.Fatal(err)
	}
	if n != 59 {
		t.Errorf("count = %d, want 59", n)
	}
	// Free hints rebuilt: inserts reuse the hole from the delete.
	rid, err := tb2.Insert(row(999, payload))
	if err != nil {
		t.Fatal(err)
	}
	got, err := tb2.Get(rid)
	if err != nil || got.Value(0).Int64() != 999 {
		t.Errorf("insert after reopen: %v, %v", got, err)
	}
	// Reopening a corrupt page fails loudly.
	f, err := pool2.Fetch(0)
	if err != nil {
		t.Fatal(err)
	}
	f.Data()[0] = 0xFF // implausible slot count
	f.Data()[1] = 0xFF
	f.MarkDirty()
	pool2.Unpin(f)
	if err := pool2.FlushAll(); err != nil {
		t.Fatal(err)
	}
	pool3, _ := buffer.NewPool(d, 8)
	if _, err := OpenTable(testSchema(), pool3, tb.NumPages()); err == nil {
		t.Error("reopen over corrupt page should fail")
	}
}
