package heap

import (
	"testing"

	"repro/internal/storage"
)

// TestChunks checks the partition contract exhaustively over small
// shapes: the chunks tile [0, numPages) exactly — contiguous, ascending,
// non-overlapping — with at most n chunks whose sizes differ by at most
// one page.
func TestChunks(t *testing.T) {
	t.Parallel()
	for numPages := 0; numPages <= 40; numPages++ {
		for n := -1; n <= numPages+2; n++ {
			chunks := Chunks(numPages, n)
			if numPages == 0 {
				if len(chunks) != 0 {
					t.Fatalf("Chunks(0, %d) = %v, want empty", n, chunks)
				}
				continue
			}
			wantLen := n
			if wantLen < 1 {
				wantLen = 1
			}
			if wantLen > numPages {
				wantLen = numPages
			}
			if len(chunks) != wantLen {
				t.Fatalf("Chunks(%d, %d): %d chunks, want %d", numPages, n, len(chunks), wantLen)
			}
			next := storage.PageID(0)
			minLen, maxLen := numPages, 0
			for i, c := range chunks {
				if c.Lo != next || c.Hi <= c.Lo {
					t.Fatalf("Chunks(%d, %d)[%d] = %+v, want contiguous from %d", numPages, n, i, c, next)
				}
				next = c.Hi
				if l := c.Len(); l < minLen {
					minLen = l
				} else if l > maxLen {
					maxLen = l
				}
			}
			if int(next) != numPages {
				t.Fatalf("Chunks(%d, %d) end at %d", numPages, n, next)
			}
			if maxLen > 0 && maxLen-minLen > 1 {
				t.Fatalf("Chunks(%d, %d): sizes range %d..%d", numPages, n, minLen, maxLen)
			}
		}
	}
}
