package heap

import (
	"fmt"
	"sync"

	"repro/internal/buffer"
	"repro/internal/storage"
)

// Table is a heap table: an unordered collection of tuples in slotted
// pages, accessed through the buffer pool. Page ids are dense ordinals
// starting at 0, which is what the Index Buffer's counter array C[p] is
// keyed by.
//
// Table is safe for concurrent use; DML takes an exclusive lock, scans a
// shared lock.
type Table struct {
	mu     sync.RWMutex
	schema *storage.Schema
	pool   *buffer.Pool

	numPages int
	// freeHint caches per-page free bytes so inserts avoid probing every
	// page. Values are refreshed on each touch; a stale overestimate only
	// costs one extra probe.
	freeHint []int
}

// NewTable creates an empty heap table over the pool.
func NewTable(schema *storage.Schema, pool *buffer.Pool) *Table {
	return &Table{schema: schema, pool: pool}
}

// OpenTable attaches to an existing heap of numPages pages (a persisted
// table being reloaded). It reads every page once to validate it and
// rebuild the free-space hints.
func OpenTable(schema *storage.Schema, pool *buffer.Pool, numPages int) (*Table, error) {
	t := &Table{schema: schema, pool: pool, numPages: numPages, freeHint: make([]int, numPages)}
	for p := 0; p < numPages; p++ {
		f, err := pool.Fetch(storage.PageID(p))
		if err != nil {
			return nil, err
		}
		sp, err := AsPage(f.Data())
		if err == nil {
			err = sp.Validate()
		}
		if err != nil {
			pool.Unpin(f)
			return nil, fmt.Errorf("heap: reopening page %d: %w", p, err)
		}
		t.freeHint[p] = sp.FreeSpace()
		pool.Unpin(f)
	}
	return t, nil
}

// Schema returns the table's schema.
func (t *Table) Schema() *storage.Schema { return t.schema }

// NumPages returns the number of heap pages.
func (t *Table) NumPages() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.numPages
}

// Insert appends the tuple and returns its RID. The placement policy is
// last-page-first, then any page with room (via the free-space hints),
// then a fresh page — an append-mostly heap like the paper's bulk-loaded
// table.
func (t *Table) Insert(tu storage.Tuple) (storage.RID, error) {
	payload, err := storage.EncodeTuple(t.schema, tu, nil)
	if err != nil {
		return storage.InvalidRID, err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.insertLocked(payload)
}

func (t *Table) insertLocked(payload []byte) (storage.RID, error) {
	try := func(page storage.PageID) (storage.RID, bool, error) {
		f, err := t.pool.Fetch(page)
		if err != nil {
			return storage.InvalidRID, false, err
		}
		defer t.pool.Unpin(f)
		sp, err := AsPage(f.Data())
		if err != nil {
			return storage.InvalidRID, false, err
		}
		slot, ok := sp.Insert(payload)
		t.freeHint[page] = sp.FreeSpace()
		if !ok {
			return storage.InvalidRID, false, nil
		}
		f.MarkDirty()
		return storage.RID{Page: page, Slot: uint16(slot)}, true, nil
	}

	// Last page first.
	if t.numPages > 0 {
		last := storage.PageID(t.numPages - 1)
		if t.freeHint[last] >= len(payload) {
			rid, ok, err := try(last)
			if err != nil || ok {
				return rid, err
			}
		}
		// Any page with enough hinted room.
		for p := 0; p < t.numPages-1; p++ {
			if t.freeHint[p] >= len(payload) {
				rid, ok, err := try(storage.PageID(p))
				if err != nil || ok {
					return rid, err
				}
			}
		}
	}

	// Fresh page.
	f, err := t.pool.Allocate()
	if err != nil {
		return storage.InvalidRID, err
	}
	defer t.pool.Unpin(f)
	page := f.ID()
	if int(page) != t.numPages {
		return storage.InvalidRID, fmt.Errorf("heap: non-dense page allocation: got %d, want %d", page, t.numPages)
	}
	t.numPages++
	t.freeHint = append(t.freeHint, 0)
	sp, err := AsPage(f.Data())
	if err != nil {
		return storage.InvalidRID, err
	}
	slot, ok := sp.Insert(payload)
	t.freeHint[page] = sp.FreeSpace()
	if !ok {
		return storage.InvalidRID, fmt.Errorf("heap: tuple of %d bytes does not fit an empty page", len(payload))
	}
	f.MarkDirty()
	return storage.RID{Page: page, Slot: uint16(slot)}, nil
}

// Get fetches the tuple at rid.
func (t *Table) Get(rid storage.RID) (storage.Tuple, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if err := t.checkRIDLocked(rid); err != nil {
		return storage.Tuple{}, err
	}
	f, err := t.pool.Fetch(rid.Page)
	if err != nil {
		return storage.Tuple{}, err
	}
	defer t.pool.Unpin(f)
	sp, err := AsPage(f.Data())
	if err != nil {
		return storage.Tuple{}, err
	}
	if err := sp.Validate(); err != nil {
		return storage.Tuple{}, fmt.Errorf("heap: page %d: %w", rid.Page, err)
	}
	raw, err := sp.Tuple(int(rid.Slot))
	if err != nil {
		return storage.Tuple{}, err
	}
	return storage.DecodeTuple(t.schema, raw)
}

// Delete removes the tuple at rid.
func (t *Table) Delete(rid storage.RID) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.checkRIDLocked(rid); err != nil {
		return err
	}
	f, err := t.pool.Fetch(rid.Page)
	if err != nil {
		return err
	}
	defer t.pool.Unpin(f)
	sp, err := AsPage(f.Data())
	if err != nil {
		return err
	}
	if err := sp.Delete(int(rid.Slot)); err != nil {
		return err
	}
	t.freeHint[rid.Page] = sp.FreeSpace()
	f.MarkDirty()
	return nil
}

// Update replaces the tuple at rid, returning the (possibly new) RID. The
// tuple stays in place when it fits; otherwise it relocates to another
// page and the returned RID differs — callers maintaining indexes must
// handle the move.
func (t *Table) Update(rid storage.RID, tu storage.Tuple) (storage.RID, error) {
	payload, err := storage.EncodeTuple(t.schema, tu, nil)
	if err != nil {
		return storage.InvalidRID, err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.checkRIDLocked(rid); err != nil {
		return storage.InvalidRID, err
	}
	f, err := t.pool.Fetch(rid.Page)
	if err != nil {
		return storage.InvalidRID, err
	}
	sp, err := AsPage(f.Data())
	if err != nil {
		t.pool.Unpin(f)
		return storage.InvalidRID, err
	}
	// Keep a copy of the current payload: the in-place attempt below may
	// free the slot (and compact the old bytes away) before reporting
	// that a relocation is needed, and a relocation that then fails must
	// restore the tuple rather than leave it half-deleted.
	oldRaw, err := sp.Tuple(int(rid.Slot))
	if err != nil {
		t.pool.Unpin(f)
		return storage.InvalidRID, err
	}
	oldPayload := append([]byte(nil), oldRaw...)
	ok, err := sp.Update(int(rid.Slot), payload)
	t.freeHint[rid.Page] = sp.FreeSpace()
	if err != nil {
		t.pool.Unpin(f)
		return storage.InvalidRID, err
	}
	if ok {
		f.MarkDirty()
		t.pool.Unpin(f)
		return rid, nil
	}
	// Relocate: the slot was freed by the failed in-place attempt or must
	// be freed now; ensure it is dead, then insert elsewhere. The old
	// page stays pinned across the insert: its deletion is dirty and not
	// yet logged, and the insert's probe walk is allowed to evict — an
	// eviction here would write the half-mutated page to the store before
	// the caller's WAL record exists, which a crash then exposes.
	if sp.Live(int(rid.Slot)) {
		if derr := sp.Delete(int(rid.Slot)); derr != nil {
			t.pool.Unpin(f)
			return storage.InvalidRID, derr
		}
	}
	f.MarkDirty()
	newRID, err := t.insertLocked(payload)
	if err != nil {
		// Undo: put the original tuple back into its slot so a failed
		// update leaves no half-state — neither in memory (the RID must
		// stay live with its old content) nor, via a later eviction of
		// this dirty page, on disk.
		if !sp.insertAt(int(rid.Slot), oldPayload) {
			t.pool.Unpin(f)
			return storage.InvalidRID, fmt.Errorf("heap: failed relocation of %v lost the tuple: %w", rid, err)
		}
		t.freeHint[rid.Page] = sp.FreeSpace()
	}
	t.pool.Unpin(f)
	return newRID, err
}

// PageLiveCount returns the number of live tuples in page p. It fetches
// the page through the pool, so it participates in I/O accounting.
func (t *Table) PageLiveCount(p storage.PageID) (int, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if int(p) >= t.numPages {
		return 0, fmt.Errorf("heap: page %d out of range (table has %d pages)", p, t.numPages)
	}
	f, err := t.pool.Fetch(p)
	if err != nil {
		return 0, err
	}
	defer t.pool.Unpin(f)
	sp, err := AsPage(f.Data())
	if err != nil {
		return 0, err
	}
	return sp.LiveCount(), nil
}

// ScanPage invokes fn for every live tuple in page p, in slot order.
// Returning a non-nil error from fn stops the scan and propagates.
func (t *Table) ScanPage(p storage.PageID, fn func(storage.RID, storage.Tuple) error) error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.scanPageLocked(p, fn)
}

func (t *Table) scanPageLocked(p storage.PageID, fn func(storage.RID, storage.Tuple) error) error {
	if int(p) >= t.numPages {
		return fmt.Errorf("heap: page %d out of range (table has %d pages)", p, t.numPages)
	}
	f, err := t.pool.Fetch(p)
	if err != nil {
		return err
	}
	defer t.pool.Unpin(f)
	sp, err := AsPage(f.Data())
	if err != nil {
		return err
	}
	if err := sp.Validate(); err != nil {
		return fmt.Errorf("heap: page %d: %w", p, err)
	}
	for s := 0; s < sp.NumSlots(); s++ {
		if !sp.Live(s) {
			continue
		}
		raw, err := sp.Tuple(s)
		if err != nil {
			return err
		}
		tu, err := storage.DecodeTuple(t.schema, raw)
		if err != nil {
			return err
		}
		if err := fn(storage.RID{Page: p, Slot: uint16(s)}, tu); err != nil {
			return err
		}
	}
	return nil
}

// Scan invokes fn for every live tuple in the table, in page then slot
// order — a full table scan.
func (t *Table) Scan(fn func(storage.RID, storage.Tuple) error) error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for p := 0; p < t.numPages; p++ {
		if err := t.scanPageLocked(storage.PageID(p), fn); err != nil {
			return err
		}
	}
	return nil
}

// Count returns the number of live tuples, scanning all pages.
func (t *Table) Count() (int, error) {
	n := 0
	err := t.Scan(func(storage.RID, storage.Tuple) error {
		n++
		return nil
	})
	return n, err
}

func (t *Table) checkRIDLocked(rid storage.RID) error {
	if !rid.IsValid() || int(rid.Page) >= t.numPages {
		return fmt.Errorf("heap: rid %v out of range (table has %d pages)", rid, t.numPages)
	}
	return nil
}
