package heap

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/buffer"
)

func newPage(t *testing.T) *SlottedPage {
	t.Helper()
	p, err := AsPage(make([]byte, buffer.PageSize))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestAsPageRejectsWrongSize(t *testing.T) {
	t.Parallel()
	if _, err := AsPage(make([]byte, 100)); err == nil {
		t.Error("wrong-size buffer should fail")
	}
}

func TestPageInsertGet(t *testing.T) {
	t.Parallel()
	p := newPage(t)
	if p.NumSlots() != 0 || p.LiveCount() != 0 {
		t.Fatalf("empty page: slots=%d live=%d", p.NumSlots(), p.LiveCount())
	}
	payloads := [][]byte{[]byte("alpha"), []byte("b"), []byte("gamma-long-payload")}
	slots := make([]int, len(payloads))
	for i, pl := range payloads {
		s, ok := p.Insert(pl)
		if !ok {
			t.Fatalf("insert %d failed", i)
		}
		slots[i] = s
	}
	if p.LiveCount() != 3 {
		t.Errorf("live = %d, want 3", p.LiveCount())
	}
	for i, pl := range payloads {
		got, err := p.Tuple(slots[i])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, pl) {
			t.Errorf("slot %d = %q, want %q", slots[i], got, pl)
		}
	}
}

func TestPageDeleteAndSlotReuse(t *testing.T) {
	t.Parallel()
	p := newPage(t)
	s0, _ := p.Insert([]byte("one"))
	s1, _ := p.Insert([]byte("two"))
	if err := p.Delete(s0); err != nil {
		t.Fatal(err)
	}
	if p.Live(s0) {
		t.Error("deleted slot still live")
	}
	if _, err := p.Tuple(s0); err == nil {
		t.Error("Tuple on dead slot should fail")
	}
	if err := p.Delete(s0); err == nil {
		t.Error("double delete should fail")
	}
	if err := p.Delete(99); err == nil {
		t.Error("out-of-range delete should fail")
	}
	// Next insert reuses the dead slot; directory does not grow.
	before := p.NumSlots()
	s2, ok := p.Insert([]byte("three"))
	if !ok {
		t.Fatal("reinsert failed")
	}
	if s2 != s0 {
		t.Errorf("reinsert got slot %d, want reused slot %d", s2, s0)
	}
	if p.NumSlots() != before {
		t.Errorf("directory grew from %d to %d on reuse", before, p.NumSlots())
	}
	got, _ := p.Tuple(s1)
	if !bytes.Equal(got, []byte("two")) {
		t.Error("unrelated slot corrupted by reuse")
	}
}

func TestPageUpdateInPlaceAndGrow(t *testing.T) {
	t.Parallel()
	p := newPage(t)
	s, _ := p.Insert([]byte("hello world"))
	ok, err := p.Update(s, []byte("hi"))
	if err != nil || !ok {
		t.Fatalf("shrink update: ok=%v err=%v", ok, err)
	}
	got, _ := p.Tuple(s)
	if !bytes.Equal(got, []byte("hi")) {
		t.Errorf("after shrink: %q", got)
	}
	big := bytes.Repeat([]byte("x"), 100)
	ok, err = p.Update(s, big)
	if err != nil || !ok {
		t.Fatalf("grow update: ok=%v err=%v", ok, err)
	}
	got, _ = p.Tuple(s)
	if !bytes.Equal(got, big) {
		t.Error("after grow: payload mismatch")
	}
	if _, err := p.Update(99, []byte("x")); err == nil {
		t.Error("out-of-range update should fail")
	}
}

func TestPageUpdateDoesNotFit(t *testing.T) {
	t.Parallel()
	p := newPage(t)
	// Fill the page with two large tuples.
	half := bytes.Repeat([]byte("a"), (buffer.PageSize-headerSize)/2-2*slotEntrySize)
	s0, ok := p.Insert(half)
	if !ok {
		t.Fatal("first insert failed")
	}
	if _, ok := p.Insert(half); !ok {
		t.Fatal("second insert failed")
	}
	// Growing s0 beyond page capacity must report !ok, no error.
	ok, err := p.Update(s0, bytes.Repeat([]byte("b"), len(half)+64))
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("oversized update should not fit")
	}
}

func TestPageInsertFullAndCompaction(t *testing.T) {
	t.Parallel()
	p := newPage(t)
	payload := bytes.Repeat([]byte("z"), 1000)
	var slots []int
	for {
		s, ok := p.Insert(payload)
		if !ok {
			break
		}
		slots = append(slots, s)
	}
	if len(slots) < 7 {
		t.Fatalf("only %d inserts fit, want >= 7", len(slots))
	}
	// Delete every other tuple; the holes are non-contiguous, so a large
	// insert requires compaction.
	for i := 0; i < len(slots); i += 2 {
		if err := p.Delete(slots[i]); err != nil {
			t.Fatal(err)
		}
	}
	big := bytes.Repeat([]byte("C"), 1800)
	s, ok := p.Insert(big)
	if !ok {
		t.Fatal("insert after deletes should compact and fit")
	}
	got, err := p.Tuple(s)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, big) {
		t.Error("compacted insert corrupted payload")
	}
	// Survivors intact.
	for i := 1; i < len(slots); i += 2 {
		got, err := p.Tuple(slots[i])
		if err != nil {
			t.Fatalf("survivor slot %d: %v", slots[i], err)
		}
		if !bytes.Equal(got, payload) {
			t.Errorf("survivor slot %d corrupted", slots[i])
		}
	}
}

func TestPageInsertOversized(t *testing.T) {
	t.Parallel()
	p := newPage(t)
	if _, ok := p.Insert(make([]byte, buffer.PageSize)); ok {
		t.Error("page-sized payload should not fit")
	}
}

// TestPageRandomizedOps drives a page with random inserts, deletes and
// updates against a map model and checks full consistency after every
// operation.
func TestPageRandomizedOps(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(7))
	p := newPage(t)
	model := map[int][]byte{} // slot -> payload

	randPayload := func() []byte {
		n := 1 + rng.Intn(300)
		b := make([]byte, n)
		rng.Read(b)
		return b
	}

	for step := 0; step < 5000; step++ {
		switch op := rng.Intn(3); {
		case op == 0 || len(model) == 0: // insert
			pl := randPayload()
			s, ok := p.Insert(pl)
			if ok {
				if _, clash := model[s]; clash {
					t.Fatalf("step %d: insert returned live slot %d", step, s)
				}
				model[s] = pl
			}
		case op == 1: // delete random live slot
			for s := range model {
				if err := p.Delete(s); err != nil {
					t.Fatalf("step %d: delete slot %d: %v", step, s, err)
				}
				delete(model, s)
				break
			}
		default: // update random live slot
			for s := range model {
				pl := randPayload()
				ok, err := p.Update(s, pl)
				if err != nil {
					t.Fatalf("step %d: update slot %d: %v", step, s, err)
				}
				if ok {
					model[s] = pl
				} else {
					// Contract: a failed grow may leave the slot dead.
					if p.Live(s) {
						model[s] = model[s] // unchanged
					} else {
						delete(model, s)
					}
				}
				break
			}
		}
		// Verify model equivalence.
		if p.LiveCount() != len(model) {
			t.Fatalf("step %d: live=%d model=%d", step, p.LiveCount(), len(model))
		}
		for s, want := range model {
			got, err := p.Tuple(s)
			if err != nil {
				t.Fatalf("step %d: slot %d: %v", step, s, err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("step %d: slot %d payload mismatch", step, s)
			}
		}
	}
}
