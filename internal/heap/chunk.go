package heap

import "repro/internal/storage"

// PageRange is a half-open contiguous range of heap pages [Lo, Hi). It
// is the unit of work a parallel scan hands to one worker: contiguous so
// each worker's page fetches stay sequential (the access pattern both
// real devices and the buffer pool's LRU prefer).
type PageRange struct {
	Lo, Hi storage.PageID
}

// Len returns the number of pages in the range.
func (r PageRange) Len() int { return int(r.Hi - r.Lo) }

// Chunks splits the page range [0, numPages) into at most n contiguous,
// non-overlapping ranges that together cover it exactly, in ascending
// page order. The first numPages%n chunks are one page larger, so sizes
// differ by at most one. n < 1 is treated as 1; fewer pages than chunks
// yield one single-page chunk per page.
func Chunks(numPages, n int) []PageRange {
	if numPages <= 0 {
		return nil
	}
	if n < 1 {
		n = 1
	}
	if n > numPages {
		n = numPages
	}
	out := make([]PageRange, 0, n)
	size, extra := numPages/n, numPages%n
	lo := 0
	for i := 0; i < n; i++ {
		hi := lo + size
		if i < extra {
			hi++
		}
		out = append(out, PageRange{Lo: storage.PageID(lo), Hi: storage.PageID(hi)})
		lo = hi
	}
	return out
}
