// Package heap implements slotted pages and heap tables on top of the
// buffer pool. A heap table is the unordered tuple store the paper's
// table scans run over; its page granularity is what the Index Buffer's
// per-page counters and skip decisions operate on.
package heap

import (
	"encoding/binary"
	"fmt"

	"repro/internal/buffer"
)

// Slotted page layout (all offsets little-endian):
//
//	bytes 0..1   numSlots   — number of slot directory entries
//	bytes 2..3   dataStart  — lowest byte offset used by tuple data
//	bytes 4..7   reserved
//	bytes 8..    slot directory, 4 bytes per slot: offset u16, length u16
//	...free space...
//	dataStart..  tuple payloads, growing downward from the page end
//
// A dead (deleted) slot has offset == deadSlot. Slot ids are stable for
// the lifetime of the tuple; deleted slots are reused by later inserts.
const (
	headerSize    = 8
	slotEntrySize = 4
	deadSlot      = 0xFFFF
)

// SlottedPage is a view over a PageSize byte buffer. It does not own the
// buffer; the heap layer wraps pinned frames directly, so mutations go
// straight to the buffer pool image.
type SlottedPage struct {
	data []byte
}

// AsPage interprets buf (which must be buffer.PageSize bytes) as a
// slotted page. A zeroed buffer is a valid empty page.
func AsPage(buf []byte) (*SlottedPage, error) {
	if len(buf) != buffer.PageSize {
		return nil, fmt.Errorf("heap: page buffer is %d bytes, want %d", len(buf), buffer.PageSize)
	}
	return &SlottedPage{data: buf}, nil
}

func (p *SlottedPage) numSlots() int { return int(binary.LittleEndian.Uint16(p.data[0:2])) }
func (p *SlottedPage) setNumSlots(n int) {
	binary.LittleEndian.PutUint16(p.data[0:2], uint16(n))
}

// dataStart returns the lowest offset occupied by tuple data; 0 encodes
// "empty page" and is normalized to the page end.
func (p *SlottedPage) dataStart() int {
	v := int(binary.LittleEndian.Uint16(p.data[2:4]))
	if v == 0 {
		return buffer.PageSize
	}
	return v
}
func (p *SlottedPage) setDataStart(v int) {
	binary.LittleEndian.PutUint16(p.data[2:4], uint16(v))
}

func (p *SlottedPage) slot(i int) (offset, length int) {
	base := headerSize + i*slotEntrySize
	return int(binary.LittleEndian.Uint16(p.data[base : base+2])),
		int(binary.LittleEndian.Uint16(p.data[base+2 : base+4]))
}
func (p *SlottedPage) setSlot(i, offset, length int) {
	base := headerSize + i*slotEntrySize
	binary.LittleEndian.PutUint16(p.data[base:base+2], uint16(offset))
	binary.LittleEndian.PutUint16(p.data[base+2:base+4], uint16(length))
}

// NumSlots returns the size of the slot directory, including dead slots.
func (p *SlottedPage) NumSlots() int { return p.numSlots() }

// Live reports whether slot i holds a tuple.
func (p *SlottedPage) Live(i int) bool {
	if i < 0 || i >= p.numSlots() {
		return false
	}
	off, _ := p.slot(i)
	return off != deadSlot
}

// LiveCount returns the number of live tuples in the page.
func (p *SlottedPage) LiveCount() int {
	n := 0
	for i := 0; i < p.numSlots(); i++ {
		if p.Live(i) {
			n++
		}
	}
	return n
}

// Tuple returns the payload of slot i. The returned slice aliases the
// page buffer and is invalidated by any mutation of the page. Corrupt
// slot entries (offsets outside the page) return an error rather than
// panicking, so damaged page images surface as errors.
func (p *SlottedPage) Tuple(i int) ([]byte, error) {
	if i < 0 || i >= p.numSlots() {
		return nil, fmt.Errorf("heap: slot %d out of range (page has %d slots)", i, p.numSlots())
	}
	off, length := p.slot(i)
	if off == deadSlot {
		return nil, fmt.Errorf("heap: slot %d is dead", i)
	}
	if off+length > buffer.PageSize || off < headerSize {
		return nil, fmt.Errorf("heap: slot %d is corrupt (offset %d, length %d)", i, off, length)
	}
	return p.data[off : off+length], nil
}

// Validate checks the structural integrity of the page: a plausible slot
// directory and every live slot within bounds. It is cheap enough to run
// on page images read from an untrusted store.
func (p *SlottedPage) Validate() error {
	n := p.numSlots()
	dirEnd := headerSize + n*slotEntrySize
	if dirEnd > buffer.PageSize {
		return fmt.Errorf("heap: slot directory of %d slots exceeds the page", n)
	}
	ds := p.dataStart()
	if ds < dirEnd {
		return fmt.Errorf("heap: data start %d overlaps the slot directory (end %d)", ds, dirEnd)
	}
	for i := 0; i < n; i++ {
		off, length := p.slot(i)
		if off == deadSlot {
			continue
		}
		if off < ds || off+length > buffer.PageSize {
			return fmt.Errorf("heap: slot %d out of bounds (offset %d, length %d, data start %d)", i, off, length, ds)
		}
	}
	return nil
}

// FreeSpace returns the bytes available for one more insert, accounting
// for the slot directory entry a fresh slot would need.
func (p *SlottedPage) FreeSpace() int {
	free := p.contiguousFree()
	// A reusable dead slot costs no directory growth.
	for i := 0; i < p.numSlots(); i++ {
		if !p.Live(i) {
			return free
		}
	}
	free -= slotEntrySize
	if free < 0 {
		return 0
	}
	return free
}

// contiguousFree is the gap between the slot directory end and dataStart.
func (p *SlottedPage) contiguousFree() int {
	dirEnd := headerSize + p.numSlots()*slotEntrySize
	return p.dataStart() - dirEnd
}

// deadSpace is the total byte length of dead tuples' former payloads that
// compaction could reclaim. Dead payload bytes are counted via the gap
// between the sum of live payload sizes and the occupied region.
func (p *SlottedPage) deadSpace() int {
	live := 0
	for i := 0; i < p.numSlots(); i++ {
		if p.Live(i) {
			_, l := p.slot(i)
			live += l
		}
	}
	occupied := buffer.PageSize - p.dataStart()
	return occupied - live
}

// Insert places payload into the page and returns its slot id. ok is
// false when the payload does not fit even after compaction.
func (p *SlottedPage) Insert(payload []byte) (slot int, ok bool) {
	if len(payload) > buffer.PageSize-headerSize-slotEntrySize {
		return 0, false
	}
	// Reuse a dead slot if present, otherwise grow the directory.
	slot = -1
	for i := 0; i < p.numSlots(); i++ {
		if !p.Live(i) {
			slot = i
			break
		}
	}
	need := len(payload)
	grow := 0
	if slot == -1 {
		grow = slotEntrySize
	}
	if p.contiguousFree() < need+grow {
		if p.contiguousFree()+p.deadSpace() < need+grow {
			return 0, false
		}
		p.compact()
		if p.contiguousFree() < need+grow {
			return 0, false
		}
	}
	if slot == -1 {
		slot = p.numSlots()
		p.setNumSlots(slot + 1)
	}
	start := p.dataStart() - need
	copy(p.data[start:], payload)
	p.setDataStart(start)
	p.setSlot(slot, start, need)
	return slot, true
}

// insertAt places payload into the specific dead slot i. This is the
// undo path for a failed relocation, which must restore the tuple under
// its original RID — a plain Insert would pick the first dead slot,
// not necessarily this one. The payload always fits when it is the
// slot's previous occupant: deletion only grew the reclaimable space.
func (p *SlottedPage) insertAt(i int, payload []byte) bool {
	if i < 0 || i >= p.numSlots() || p.Live(i) {
		return false
	}
	need := len(payload)
	if p.contiguousFree() < need {
		if p.contiguousFree()+p.deadSpace() < need {
			return false
		}
		p.compact()
		if p.contiguousFree() < need {
			return false
		}
	}
	start := p.dataStart() - need
	copy(p.data[start:], payload)
	p.setDataStart(start)
	p.setSlot(i, start, need)
	return true
}

// Delete marks slot i dead. The payload bytes are reclaimed lazily by
// compaction.
func (p *SlottedPage) Delete(i int) error {
	if i < 0 || i >= p.numSlots() {
		return fmt.Errorf("heap: delete of slot %d out of range (page has %d slots)", i, p.numSlots())
	}
	if !p.Live(i) {
		return fmt.Errorf("heap: delete of dead slot %d", i)
	}
	p.setSlot(i, deadSlot, 0)
	return nil
}

// Update replaces the payload of slot i in place. ok is false when the
// new payload does not fit in this page; the caller then relocates the
// tuple (delete here, insert elsewhere).
func (p *SlottedPage) Update(i int, payload []byte) (ok bool, err error) {
	if i < 0 || i >= p.numSlots() {
		return false, fmt.Errorf("heap: update of slot %d out of range (page has %d slots)", i, p.numSlots())
	}
	if !p.Live(i) {
		return false, fmt.Errorf("heap: update of dead slot %d", i)
	}
	off, length := p.slot(i)
	if len(payload) <= length {
		copy(p.data[off:], payload)
		p.setSlot(i, off, len(payload))
		return true, nil
	}
	// Larger payload: re-place within the page if space allows.
	if p.contiguousFree() < len(payload) {
		if p.contiguousFree()+p.deadSpace()+length < len(payload) {
			return false, nil
		}
		p.setSlot(i, deadSlot, 0) // free the old copy before compacting
		p.compact()
		if p.contiguousFree() < len(payload) {
			// Undo is impossible (old bytes compacted away), but the
			// caller treats !ok as "relocate", and the tuple content is
			// its to re-insert, so losing the dead copy is safe. Report
			// not-ok with the slot already freed.
			return false, nil
		}
		start := p.dataStart() - len(payload)
		copy(p.data[start:], payload)
		p.setDataStart(start)
		p.setSlot(i, start, len(payload))
		return true, nil
	}
	p.setSlot(i, deadSlot, 0)
	start := p.dataStart() - len(payload)
	copy(p.data[start:], payload)
	p.setDataStart(start)
	p.setSlot(i, start, len(payload))
	return true, nil
}

// compact rewrites live payloads to the end of the page, squeezing out
// dead space. Slot ids are preserved.
func (p *SlottedPage) compact() {
	type entry struct{ slot, off, length int }
	var live []entry
	for i := 0; i < p.numSlots(); i++ {
		if p.Live(i) {
			off, l := p.slot(i)
			live = append(live, entry{i, off, l})
		}
	}
	// Copy payloads out, then lay them back from the end.
	scratch := make([]byte, 0, buffer.PageSize)
	offsets := make([]int, len(live))
	pos := 0
	for i, e := range live {
		scratch = append(scratch, p.data[e.off:e.off+e.length]...)
		offsets[i] = pos
		pos += e.length
	}
	start := buffer.PageSize - len(scratch)
	copy(p.data[start:], scratch)
	for i, e := range live {
		p.setSlot(e.slot, start+offsets[i], e.length)
	}
	p.setDataStart(start)
}
