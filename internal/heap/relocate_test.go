package heap

import (
	"strings"
	"testing"

	"repro/internal/buffer"
)

// TestRelocatingUpdateKeepsOldPageResident is the torn-publication
// regression test at the heap layer. A relocating update dirties the
// old page (the slot dies) and then walks other pages looking for room;
// under a small pool those probe fetches evict frames. The old page
// must not be one of them: its mutation is not logged yet — the caller
// captures its WAL image only after Update returns — so an eviction
// here writes a half-published page to the store, exactly the state a
// crash then exposes. Update therefore keeps the old page pinned across
// the relocation insert.
//
// The walk only generates eviction pressure when free hints
// overestimate (each over-hinted page is fetched, probed, and rejected).
// Today's hint maintenance never overestimates, so the test plants
// inflated hints directly — the invariant must hold by construction,
// not by accident of the current hint policy.
func TestRelocatingUpdateKeepsOldPageResident(t *testing.T) {
	d := buffer.NewSimDisk()
	pool, err := buffer.NewPool(d, 2)
	if err != nil {
		t.Fatal(err)
	}
	tb := NewTable(testSchema(), pool)

	// The victim is small and lands on page 0; filler rows pack several
	// pages tightly enough that a 3000-byte replacement fits nowhere.
	victim, err := tb.Insert(row(1, "victim"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; tb.NumPages() < 6; i++ {
		if _, err := tb.Insert(row(int64(i), strings.Repeat("f", 2400))); err != nil {
			t.Fatal(err)
		}
	}
	// Top up the last page (inserts target it first) until no page has
	// room for the replacement: the walk must visit everything and then
	// allocate fresh.
	for i := 0; tb.freeHint[tb.NumPages()-1] > 700; i++ {
		if _, err := tb.Insert(row(int64(i), strings.Repeat("t", 600))); err != nil {
			t.Fatal(err)
		}
	}
	if n := tb.NumPages(); n != 6 {
		t.Fatalf("top-up spilled to a new page (%d pages); adjust the filler sizes", n)
	}
	// Make the pre-update truth durable so the store copy of page 0 is
	// meaningful, then inflate every hint: the relocation walk will now
	// fetch and reject every page before allocating a fresh one.
	if err := pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	for p := range tb.freeHint {
		tb.freeHint[p] = buffer.PageSize
	}

	newRID, err := tb.Update(victim, row(1, strings.Repeat("v", 3000)))
	if err != nil {
		t.Fatal(err)
	}
	if newRID.Page == victim.Page {
		t.Fatalf("update did not relocate (stayed on page %d); the test exercised nothing", victim.Page)
	}

	// The store's copy of the old page must still be the pre-update
	// image: the victim slot alive, the unlogged deletion never written.
	raw := make([]byte, buffer.PageSize)
	if err := d.Read(victim.Page, raw); err != nil {
		t.Fatal(err)
	}
	sp, err := AsPage(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !sp.Live(int(victim.Slot)) {
		t.Fatal("half-published relocation escaped to the store: the old page was evicted (and written) between the in-place delete and Update returning")
	}

	// The in-memory table, by contrast, has completed the move.
	if _, err := tb.Get(victim); err == nil {
		t.Error("old RID still live in memory after relocation")
	}
	got, err := tb.Get(newRID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Value(1).Str() != strings.Repeat("v", 3000) {
		t.Error("relocated tuple does not carry the updated payload")
	}
}

// TestFailedRelocationRestoresTuple injects a store fault into the
// middle of a relocating update — after the in-place attempt has freed
// the slot, while the insert is walking other pages — and requires the
// failed update to leave no trace: the tuple must still be readable at
// its original RID with its original content. Without the undo, the
// half-deleted page sits dirty in the pool and any later eviction
// publishes the loss to the store.
func TestFailedRelocationRestoresTuple(t *testing.T) {
	fs := buffer.NewFaultStore(buffer.NewSimDisk())
	pool, err := buffer.NewPool(fs, 2)
	if err != nil {
		t.Fatal(err)
	}
	tb := NewTable(testSchema(), pool)

	victim, err := tb.Insert(row(1, "victim"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; tb.NumPages() < 6; i++ {
		if _, err := tb.Insert(row(int64(i), strings.Repeat("f", 2400))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; tb.freeHint[tb.NumPages()-1] > 700; i++ {
		if _, err := tb.Insert(row(int64(i), strings.Repeat("t", 600))); err != nil {
			t.Fatal(err)
		}
	}
	before, err := tb.Count()
	if err != nil {
		t.Fatal(err)
	}

	// Prime the victim page so the update's own fetch of it is a pool
	// hit; with the hints inflated, the first store read then happens
	// inside the relocation walk — strictly after the slot died.
	if _, err := tb.Get(victim); err != nil {
		t.Fatal(err)
	}
	for p := range tb.freeHint {
		tb.freeHint[p] = buffer.PageSize
	}
	fs.SetReadsLeft(0)
	_, err = tb.Update(victim, row(1, strings.Repeat("v", 3000)))
	fs.SetReadsLeft(-1)
	if err == nil {
		t.Fatal("update succeeded; the fault never landed inside the relocation")
	}

	got, err := tb.Get(victim)
	if err != nil {
		t.Fatalf("tuple lost by the failed relocation: %v", err)
	}
	if got.Value(1).Str() != "victim" {
		t.Errorf("tuple content changed by the failed relocation: %q", got.Value(1).Str())
	}
	if after, err := tb.Count(); err != nil || after != before {
		t.Errorf("live count %d (err %v) after failed relocation, want %d", after, err, before)
	}
}
