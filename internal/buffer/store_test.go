package buffer

import (
	"bytes"
	"testing"
	"time"
)

func TestSimDiskAllocateReadWrite(t *testing.T) {
	d := NewSimDisk()
	if d.NumPages() != 0 {
		t.Fatalf("new disk has %d pages", d.NumPages())
	}
	id, err := d.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if id != 0 || d.NumPages() != 1 {
		t.Fatalf("first alloc id=%d pages=%d", id, d.NumPages())
	}

	out := make([]byte, PageSize)
	if err := d.Read(id, out); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, make([]byte, PageSize)) {
		t.Error("fresh page not zeroed")
	}

	in := make([]byte, PageSize)
	for i := range in {
		in[i] = byte(i)
	}
	if err := d.Write(id, in); err != nil {
		t.Fatal(err)
	}
	if err := d.Read(id, out); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(in, out) {
		t.Error("read back differs from write")
	}

	// Writes must copy, not alias.
	in[0] = 0xFF
	if err := d.Read(id, out); err != nil {
		t.Fatal(err)
	}
	if out[0] == 0xFF {
		t.Error("disk aliased caller buffer")
	}
}

func TestSimDiskErrors(t *testing.T) {
	d := NewSimDisk()
	buf := make([]byte, PageSize)
	if err := d.Read(0, buf); err == nil {
		t.Error("read of unallocated page should fail")
	}
	if err := d.Write(0, buf); err == nil {
		t.Error("write of unallocated page should fail")
	}
	if err := d.Read(0, make([]byte, 10)); err == nil {
		t.Error("short read buffer should fail")
	}
	if err := d.Write(0, make([]byte, 10)); err == nil {
		t.Error("short write buffer should fail")
	}
}

func TestSimDiskStats(t *testing.T) {
	d := NewSimDisk()
	id, _ := d.Allocate()
	buf := make([]byte, PageSize)
	_ = d.Write(id, buf)
	_ = d.Read(id, buf)
	_ = d.Read(id, buf)
	s := d.Stats()
	if s.Allocs != 1 || s.Writes != 1 || s.Reads != 2 {
		t.Errorf("stats = %+v, want 1 alloc, 1 write, 2 reads", s)
	}
	before := s
	_ = d.Read(id, buf)
	win := d.Stats().Sub(before)
	if win.Reads != 1 || win.Writes != 0 {
		t.Errorf("window = %+v, want exactly 1 read", win)
	}
}

func TestSimDiskLatency(t *testing.T) {
	d := NewSimDisk()
	id, _ := d.Allocate()
	buf := make([]byte, PageSize)
	d.SetLatency(2*time.Millisecond, time.Millisecond)
	start := time.Now()
	_ = d.Read(id, buf)
	if got := time.Since(start); got < 2*time.Millisecond {
		t.Errorf("read took %v, want >= 2ms", got)
	}
	start = time.Now()
	_ = d.Write(id, buf)
	if got := time.Since(start); got < time.Millisecond {
		t.Errorf("write took %v, want >= 1ms", got)
	}
	// Disabling restores full speed.
	d.SetLatency(0, 0)
	start = time.Now()
	for i := 0; i < 100; i++ {
		_ = d.Read(id, buf)
	}
	if got := time.Since(start); got > 100*time.Millisecond {
		t.Errorf("100 reads took %v after disabling latency", got)
	}
}
