package buffer

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/storage"
)

func TestFileStoreTruncate(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.pages")
	s, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	buf := make([]byte, PageSize)
	for i := 0; i < 4; i++ {
		id, err := s.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		buf[0] = byte(i)
		if err := s.Write(id, buf); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Truncate(5); err == nil {
		t.Error("growing Truncate should fail")
	}
	if err := s.Truncate(2); err != nil {
		t.Fatal(err)
	}
	if s.NumPages() != 2 {
		t.Fatalf("NumPages = %d, want 2", s.NumPages())
	}
	if err := s.Read(storage.PageID(2), buf); err == nil {
		t.Error("read past truncation point should fail")
	}
	if err := s.Read(storage.PageID(1), buf); err != nil || buf[0] != 1 {
		t.Fatalf("surviving page: err=%v buf[0]=%d", err, buf[0])
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != 2*PageSize {
		t.Fatalf("file size = %d, want %d", fi.Size(), 2*PageSize)
	}
}

func TestRecoverFileStoreTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.pages")
	s, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, PageSize)
	for i := 0; i < 3; i++ {
		id, err := s.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		buf[0] = byte(i)
		if err := s.Write(id, buf); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: half a page of garbage at the tail.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(make([]byte, PageSize/2)); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// The strict opener refuses the torn file.
	if _, err := OpenFileStoreExisting(path); err == nil {
		t.Error("OpenFileStoreExisting should reject a torn file")
	}

	r, torn, err := RecoverFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if torn != PageSize/2 {
		t.Fatalf("torn = %d, want %d", torn, PageSize/2)
	}
	if r.NumPages() != 3 {
		t.Fatalf("NumPages = %d, want 3", r.NumPages())
	}
	if err := r.Read(storage.PageID(2), buf); err != nil || buf[0] != 2 {
		t.Fatalf("page 2 after repair: err=%v buf[0]=%d", err, buf[0])
	}

	// A clean file recovers losslessly.
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	r2, torn2, err := RecoverFileStore(path)
	if err != nil || torn2 != 0 || r2.NumPages() != 3 {
		t.Fatalf("clean recover: torn=%d pages=%d err=%v", torn2, r2.NumPages(), err)
	}
	r2.Close()
}

func TestPoolDirtyCount(t *testing.T) {
	d := NewSimDisk()
	for i := 0; i < 3; i++ {
		if _, err := d.Allocate(); err != nil {
			t.Fatal(err)
		}
	}
	p, err := NewPool(d, 3)
	if err != nil {
		t.Fatal(err)
	}
	if p.DirtyCount() != 0 {
		t.Fatalf("fresh pool DirtyCount = %d", p.DirtyCount())
	}
	for i := 0; i < 2; i++ {
		f, err := p.Fetch(storage.PageID(i))
		if err != nil {
			t.Fatal(err)
		}
		f.MarkDirty()
		p.Unpin(f)
	}
	if p.DirtyCount() != 2 {
		t.Fatalf("DirtyCount = %d, want 2", p.DirtyCount())
	}
	if err := p.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if p.DirtyCount() != 0 {
		t.Fatalf("DirtyCount after flush = %d", p.DirtyCount())
	}
}
