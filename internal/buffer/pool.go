package buffer

import (
	"container/list"
	"fmt"
	"sync"

	"repro/internal/storage"
)

// Frame is a pinned page in the buffer pool. The caller owns the frame
// until Unpin; Data returns the live page image, and MarkDirty schedules
// writeback on eviction or flush.
type Frame struct {
	id    storage.PageID
	data  []byte
	pins  int
	dirty bool
	lru   *list.Element // position in the pool's eviction list when unpinned

	// ready is non-nil while the frame's store read is in flight: the
	// loading fetcher closes it once data is populated (or loadErr set),
	// and concurrent fetchers of the same page wait on it instead of
	// issuing a second read. A nil ready means the frame is loaded.
	ready   chan struct{}
	loadErr error // set before ready is closed when the store read failed
}

// ID returns the page id held by the frame.
func (f *Frame) ID() storage.PageID { return f.id }

// Data returns the page image. The slice is valid while the frame is
// pinned; callers must not retain it past Unpin.
func (f *Frame) Data() []byte { return f.data }

// MarkDirty records that the page image was modified and must reach the
// store before the frame is recycled.
func (f *Frame) MarkDirty() { f.dirty = true }

// PoolStats is a snapshot of buffer pool activity.
type PoolStats struct {
	Hits      uint64 // fetches served from memory
	Misses    uint64 // fetches that read from the store
	Evictions uint64 // frames recycled to make room
	Flushes   uint64 // dirty pages written back
}

// Pool is an LRU buffer pool over a Store. It models the paper's
// "database buffer": table pages are fetched through it, and the Index
// Buffer Space is accounted as a share of the same memory budget (the
// entry-count budget lives in internal/core; the pool only serves pages).
//
// Pool is safe for concurrent use.
type Pool struct {
	mu       sync.Mutex
	store    Store
	capacity int
	frames   map[storage.PageID]*Frame
	evict    *list.List // unpinned frames, front = least recently used
	stats    PoolStats
}

// NewPool creates a pool holding at most capacity pages. Capacity must be
// at least 1.
func NewPool(store Store, capacity int) (*Pool, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("buffer: pool capacity %d, want >= 1", capacity)
	}
	return &Pool{
		store:    store,
		capacity: capacity,
		frames:   make(map[storage.PageID]*Frame, capacity),
		evict:    list.New(),
	}, nil
}

// Capacity returns the configured frame count.
func (p *Pool) Capacity() int { return p.capacity }

// Stats returns a snapshot of pool counters.
func (p *Pool) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// Fetch pins page id into memory and returns its frame. Every Fetch must
// be paired with an Unpin.
//
// The store read of a miss happens outside the pool mutex: concurrent
// fetches of distinct cold pages overlap their device I/O (the property
// parallel scans depend on — a pool-wide lock held across a simulated
// device's read latency would serialize every worker). Concurrent
// fetches of the same cold page coalesce: the first issues the read,
// the rest wait on the frame's ready channel and share the result.
func (p *Pool) Fetch(id storage.PageID) (*Frame, error) {
	p.mu.Lock()

	if f, ok := p.frames[id]; ok {
		p.stats.Hits++
		if f.pins == 0 && f.lru != nil {
			p.evict.Remove(f.lru)
			f.lru = nil
		}
		f.pins++ // pin before waiting so the loading frame cannot be evicted
		ready := f.ready
		p.mu.Unlock()
		if ready != nil {
			<-ready
			// loadErr is published before ready is closed; the channel
			// receive orders this read after that write.
			if f.loadErr != nil {
				return nil, f.loadErr
			}
		}
		return f, nil
	}

	p.stats.Misses++
	if len(p.frames) >= p.capacity {
		if err := p.evictOneLocked(); err != nil {
			p.mu.Unlock()
			return nil, err
		}
	}
	f := &Frame{id: id, data: make([]byte, PageSize), pins: 1, ready: make(chan struct{})}
	p.frames[id] = f
	p.mu.Unlock()

	err := p.store.Read(id, f.data)

	p.mu.Lock()
	if err != nil {
		// Orphan the frame: waiters already holding a pin observe loadErr
		// and return it; the frame is no longer reachable or evictable.
		f.loadErr = err
		delete(p.frames, id)
	}
	ready := f.ready
	f.ready = nil
	p.mu.Unlock()
	close(ready)
	if err != nil {
		return nil, err
	}
	return f, nil
}

// Allocate creates a new zeroed page in the store and returns it pinned.
func (p *Pool) Allocate() (*Frame, error) {
	id, err := p.store.Allocate()
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.frames) >= p.capacity {
		if err := p.evictOneLocked(); err != nil {
			return nil, err
		}
	}
	f := &Frame{id: id, data: make([]byte, PageSize), pins: 1}
	p.frames[id] = f
	return f, nil
}

// Unpin releases one pin on the frame. When the pin count reaches zero
// the frame becomes eligible for eviction.
func (p *Pool) Unpin(f *Frame) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if f.pins <= 0 {
		panic(fmt.Sprintf("buffer: Unpin of page %d with %d pins", f.id, f.pins))
	}
	f.pins--
	if f.pins == 0 {
		f.lru = p.evict.PushBack(f)
	}
}

// evictOneLocked writes back and drops the least recently used unpinned
// frame. It fails if every frame is pinned.
func (p *Pool) evictOneLocked() error {
	el := p.evict.Front()
	if el == nil {
		return fmt.Errorf("buffer: pool exhausted: all %d frames pinned", p.capacity)
	}
	f := el.Value.(*Frame)
	p.evict.Remove(el)
	f.lru = nil
	if f.dirty {
		if err := p.store.Write(f.id, f.data); err != nil {
			return fmt.Errorf("buffer: writeback of page %d: %w", f.id, err)
		}
		p.stats.Flushes++
		f.dirty = false
	}
	delete(p.frames, f.id)
	p.stats.Evictions++
	return nil
}

// FlushAll writes every dirty frame back to the store. Pinned frames are
// flushed but stay resident.
func (p *Pool) FlushAll() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, f := range p.frames {
		if f.dirty {
			if err := p.store.Write(f.id, f.data); err != nil {
				return fmt.Errorf("buffer: flush of page %d: %w", f.id, err)
			}
			p.stats.Flushes++
			f.dirty = false
		}
	}
	return nil
}

// DirtyCount returns the number of resident frames with unflushed
// modifications. The checkpointer uses it to decide whether a flush
// pass would do any work.
func (p *Pool) DirtyCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, f := range p.frames {
		if f.dirty {
			n++
		}
	}
	return n
}

// Resident returns the number of pages currently held in memory.
func (p *Pool) Resident() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.frames)
}
