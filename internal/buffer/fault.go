package buffer

import (
	"errors"
	"sync"

	"repro/internal/storage"
)

// ErrInjected is returned by a FaultStore operation whose countdown
// reached zero.
var ErrInjected = errors.New("buffer: injected fault")

// ErrCrashed is returned by every FaultStore operation after Crash():
// the simulated device is gone, as after power loss.
var ErrCrashed = errors.New("buffer: simulated crash")

// FaultStore wraps a Store with deterministic fault injection for
// error-path and crash-recovery tests. Two mechanisms:
//
//   - countdowns: SetReadsLeft(n) lets n reads succeed and fails every
//     read after with ErrInjected (likewise writes and allocates); a
//     negative budget (the initial state) never fires.
//   - crash: Crash() makes every subsequent operation fail with
//     ErrCrashed, modeling the instant after power loss — whatever the
//     inner store already holds is the surviving on-disk state.
//
// FaultStore is safe for concurrent use.
type FaultStore struct {
	inner Store

	mu         sync.Mutex
	crashed    bool
	readsLeft  int
	writesLeft int
	allocsLeft int
}

// NewFaultStore wraps inner with all fault triggers disarmed.
func NewFaultStore(inner Store) *FaultStore {
	return &FaultStore{inner: inner, readsLeft: -1, writesLeft: -1, allocsLeft: -1}
}

// SetReadsLeft arms the read countdown: n more reads succeed, then
// every read fails. Negative disarms.
func (f *FaultStore) SetReadsLeft(n int) {
	f.mu.Lock()
	f.readsLeft = n
	f.mu.Unlock()
}

// SetWritesLeft arms the write countdown.
func (f *FaultStore) SetWritesLeft(n int) {
	f.mu.Lock()
	f.writesLeft = n
	f.mu.Unlock()
}

// SetAllocsLeft arms the allocate countdown.
func (f *FaultStore) SetAllocsLeft(n int) {
	f.mu.Lock()
	f.allocsLeft = n
	f.mu.Unlock()
}

// Crash makes every subsequent operation fail with ErrCrashed.
func (f *FaultStore) Crash() {
	f.mu.Lock()
	f.crashed = true
	f.mu.Unlock()
}

// Crashed reports whether Crash has been called.
func (f *FaultStore) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// gate consumes one unit of the given budget, reporting the error to
// inject (nil to pass through).
func (f *FaultStore) gate(budget *int) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return ErrCrashed
	}
	if *budget == 0 {
		return ErrInjected
	}
	if *budget > 0 {
		*budget--
	}
	return nil
}

// Read implements Store.
func (f *FaultStore) Read(id storage.PageID, buf []byte) error {
	if err := f.gate(&f.readsLeft); err != nil {
		return err
	}
	return f.inner.Read(id, buf)
}

// Write implements Store.
func (f *FaultStore) Write(id storage.PageID, buf []byte) error {
	if err := f.gate(&f.writesLeft); err != nil {
		return err
	}
	return f.inner.Write(id, buf)
}

// Allocate implements Store.
func (f *FaultStore) Allocate() (storage.PageID, error) {
	if err := f.gate(&f.allocsLeft); err != nil {
		return storage.InvalidPageID, err
	}
	return f.inner.Allocate()
}

// NumPages implements Store.
func (f *FaultStore) NumPages() int { return f.inner.NumPages() }

// Sync passes through to the inner store (honoring a crash), so a
// FaultStore can stand in for a FileStore on the engine's checkpoint
// path.
func (f *FaultStore) Sync() error {
	f.mu.Lock()
	crashed := f.crashed
	f.mu.Unlock()
	if crashed {
		return ErrCrashed
	}
	if s, ok := f.inner.(interface{ Sync() error }); ok {
		return s.Sync()
	}
	return nil
}

// Close passes through to the inner store. It works even after Crash,
// so tests can release file descriptors of a "crashed" engine.
func (f *FaultStore) Close() error {
	if c, ok := f.inner.(interface{ Close() error }); ok {
		return c.Close()
	}
	return nil
}

// Stats passes through the inner store's I/O counters, if any.
func (f *FaultStore) Stats() IOStats {
	if s, ok := f.inner.(interface{ Stats() IOStats }); ok {
		return s.Stats()
	}
	return IOStats{}
}
