package buffer

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/storage"
)

// osWriteFile is a test shim (keeps the os import localized).
func osWriteFile(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}

func newFileStore(t *testing.T) *FileStore {
	t.Helper()
	s, err := OpenFileStore(filepath.Join(t.TempDir(), "pages.db"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	return s
}

func TestFileStoreAllocateReadWrite(t *testing.T) {
	s := newFileStore(t)
	if s.NumPages() != 0 {
		t.Fatalf("fresh store has %d pages", s.NumPages())
	}
	id, err := s.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	out := make([]byte, PageSize)
	if err := s.Read(id, out); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, make([]byte, PageSize)) {
		t.Error("fresh page not zeroed")
	}
	in := make([]byte, PageSize)
	for i := range in {
		in[i] = byte(i * 7)
	}
	if err := s.Write(id, in); err != nil {
		t.Fatal(err)
	}
	if err := s.Read(id, out); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(in, out) {
		t.Error("read back differs")
	}
	st := s.Stats()
	if st.Allocs != 1 || st.Writes != 1 || st.Reads != 2 {
		t.Errorf("stats = %+v", st)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
}

func TestFileStoreErrors(t *testing.T) {
	s := newFileStore(t)
	buf := make([]byte, PageSize)
	if err := s.Read(0, buf); err == nil {
		t.Error("read of unallocated page should fail")
	}
	if err := s.Write(0, buf); err == nil {
		t.Error("write of unallocated page should fail")
	}
	if err := s.Read(0, make([]byte, 3)); err == nil {
		t.Error("short buffer should fail")
	}
	if err := s.Write(0, make([]byte, 3)); err == nil {
		t.Error("short buffer should fail")
	}
}

func TestFileStoreManyPages(t *testing.T) {
	s := newFileStore(t)
	const n = 50
	for i := 0; i < n; i++ {
		id, err := s.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		page := make([]byte, PageSize)
		page[0] = byte(i)
		page[PageSize-1] = byte(i + 1)
		if err := s.Write(id, page); err != nil {
			t.Fatal(err)
		}
	}
	if s.NumPages() != n {
		t.Fatalf("pages = %d", s.NumPages())
	}
	buf := make([]byte, PageSize)
	for i := 0; i < n; i++ {
		if err := s.Read(pid(i), buf); err != nil {
			t.Fatal(err)
		}
		if buf[0] != byte(i) || buf[PageSize-1] != byte(i+1) {
			t.Errorf("page %d content wrong", i)
		}
	}
}

// TestFileStoreBehindPool runs the standard pool over a real file.
func TestFileStoreBehindPool(t *testing.T) {
	s := newFileStore(t)
	p, err := NewPool(s, 2)
	if err != nil {
		t.Fatal(err)
	}
	var ids []int
	for i := 0; i < 6; i++ {
		f, err := p.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		f.Data()[0] = byte(0xA0 + i)
		f.MarkDirty()
		ids = append(ids, int(f.ID()))
		p.Unpin(f)
	}
	// Everything must survive the eviction churn through the real file.
	for i, id := range ids {
		f, err := p.Fetch(pid(id))
		if err != nil {
			t.Fatal(err)
		}
		if f.Data()[0] != byte(0xA0+i) {
			t.Errorf("page %d corrupted after file round trip", id)
		}
		p.Unpin(f)
	}
}

func pid(i int) storage.PageID { return storage.PageID(i) }

func TestOpenFileStoreExisting(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "p.db")
	s, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	in := make([]byte, PageSize)
	in[7] = 0x7A
	for i := 0; i < 3; i++ {
		if _, err := s.Allocate(); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Write(1, in); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenFileStoreExisting(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.NumPages() != 3 {
		t.Errorf("pages = %d, want 3", re.NumPages())
	}
	out := make([]byte, PageSize)
	if err := re.Read(1, out); err != nil {
		t.Fatal(err)
	}
	if out[7] != 0x7A {
		t.Error("content lost across reopen")
	}
	// New allocations continue past the existing pages.
	id, err := re.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if id != 3 {
		t.Errorf("next page id = %d, want 3", id)
	}

	// Errors: missing file and misaligned size.
	if _, err := OpenFileStoreExisting(filepath.Join(dir, "missing.db")); err == nil {
		t.Error("missing file should fail")
	}
	bad := filepath.Join(dir, "bad.db")
	if err := osWriteFile(bad, make([]byte, PageSize+100)); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFileStoreExisting(bad); err == nil {
		t.Error("misaligned file should fail")
	}
}
