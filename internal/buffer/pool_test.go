package buffer

import (
	"sync"
	"testing"

	"repro/internal/storage"
)

func newPoolT(t *testing.T, capacity, pages int) (*Pool, *SimDisk) {
	t.Helper()
	d := NewSimDisk()
	for i := 0; i < pages; i++ {
		if _, err := d.Allocate(); err != nil {
			t.Fatal(err)
		}
	}
	p, err := NewPool(d, capacity)
	if err != nil {
		t.Fatal(err)
	}
	return p, d
}

func TestNewPoolRejectsZeroCapacity(t *testing.T) {
	if _, err := NewPool(NewSimDisk(), 0); err == nil {
		t.Error("capacity 0 should fail")
	}
}

func TestPoolFetchHitMiss(t *testing.T) {
	p, _ := newPoolT(t, 2, 2)
	f, err := p.Fetch(0)
	if err != nil {
		t.Fatal(err)
	}
	if f.ID() != 0 {
		t.Errorf("frame id = %d", f.ID())
	}
	p.Unpin(f)
	f2, err := p.Fetch(0)
	if err != nil {
		t.Fatal(err)
	}
	p.Unpin(f2)
	s := p.Stats()
	if s.Misses != 1 || s.Hits != 1 {
		t.Errorf("stats = %+v, want 1 miss then 1 hit", s)
	}
}

func TestPoolEvictsLRU(t *testing.T) {
	p, d := newPoolT(t, 2, 3)
	for _, id := range []storage.PageID{0, 1} {
		f, err := p.Fetch(id)
		if err != nil {
			t.Fatal(err)
		}
		p.Unpin(f)
	}
	// Touch page 0 so page 1 is LRU.
	f, _ := p.Fetch(0)
	p.Unpin(f)
	// Fetching page 2 must evict page 1.
	f2, err := p.Fetch(2)
	if err != nil {
		t.Fatal(err)
	}
	p.Unpin(f2)
	if p.Resident() != 2 {
		t.Errorf("resident = %d, want 2", p.Resident())
	}
	base := d.Stats()
	f0, _ := p.Fetch(0) // still resident: no device read
	p.Unpin(f0)
	if got := d.Stats().Sub(base).Reads; got != 0 {
		t.Errorf("page 0 refetch caused %d device reads, want 0", got)
	}
	f1, _ := p.Fetch(1) // evicted: device read
	p.Unpin(f1)
	if got := d.Stats().Sub(base).Reads; got != 1 {
		t.Errorf("page 1 refetch caused %d device reads, want 1", got)
	}
}

func TestPoolWritebackOnEvict(t *testing.T) {
	p, d := newPoolT(t, 1, 2)
	f, err := p.Fetch(0)
	if err != nil {
		t.Fatal(err)
	}
	f.Data()[0] = 0xAB
	f.MarkDirty()
	p.Unpin(f)
	// Force eviction of page 0.
	f1, err := p.Fetch(1)
	if err != nil {
		t.Fatal(err)
	}
	p.Unpin(f1)
	buf := make([]byte, PageSize)
	if err := d.Read(0, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 0xAB {
		t.Error("dirty page not written back on eviction")
	}
	if p.Stats().Flushes != 1 {
		t.Errorf("flushes = %d, want 1", p.Stats().Flushes)
	}
}

func TestPoolAllPinnedFails(t *testing.T) {
	p, _ := newPoolT(t, 1, 2)
	f, err := p.Fetch(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Fetch(1); err == nil {
		t.Error("fetch with all frames pinned should fail")
	}
	p.Unpin(f)
	if _, err := p.Fetch(1); err != nil {
		t.Errorf("fetch after unpin: %v", err)
	}
}

func TestPoolAllocate(t *testing.T) {
	p, d := newPoolT(t, 2, 0)
	f, err := p.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	f.Data()[7] = 9
	f.MarkDirty()
	p.Unpin(f)
	if err := p.FlushAll(); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, PageSize)
	if err := d.Read(f.ID(), buf); err != nil {
		t.Fatal(err)
	}
	if buf[7] != 9 {
		t.Error("FlushAll did not persist allocated page")
	}
}

func TestPoolUnpinUnderflowPanics(t *testing.T) {
	p, _ := newPoolT(t, 1, 1)
	f, err := p.Fetch(0)
	if err != nil {
		t.Fatal(err)
	}
	p.Unpin(f)
	defer func() {
		if recover() == nil {
			t.Error("double unpin should panic")
		}
	}()
	p.Unpin(f)
}

func TestPoolConcurrentFetch(t *testing.T) {
	const pages = 16
	p, _ := newPoolT(t, 4, pages)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := storage.PageID((seed + i) % pages)
				f, err := p.Fetch(id)
				if err != nil {
					// All-pinned is possible under contention; retry.
					continue
				}
				if f.ID() != id {
					t.Errorf("fetched %d, want %d", f.ID(), id)
				}
				p.Unpin(f)
			}
		}(g)
	}
	wg.Wait()
}
