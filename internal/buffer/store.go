// Package buffer provides the I/O substrate of the engine: a page store
// abstraction, a simulated disk with explicit I/O accounting, and an LRU
// buffer pool with pin/unpin semantics.
//
// The paper's evaluation ran on a physical SSD and reported wall-clock
// runtimes. This reproduction replaces the device with SimDisk, which
// stores page images in memory and counts every logical read and write.
// Query "runtime" in the benchmarks is therefore reported both as logical
// page I/O (the quantity that determines the paper's curve shapes) and as
// measured wall-clock time of the in-process engine.
package buffer

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/storage"
)

// PageSize is the fixed size of every page in bytes. 8 KiB matches common
// DBMS defaults; with the paper's ~440-byte average tuple this yields
// roughly 18 tuples per page and ~27k pages for the 500k-row table.
const PageSize = 8192

// Store is the device-level page interface. Implementations must be safe
// for concurrent use.
type Store interface {
	// Read copies page id into buf, which must be PageSize bytes.
	Read(id storage.PageID, buf []byte) error
	// Write copies buf (PageSize bytes) into page id.
	Write(id storage.PageID, buf []byte) error
	// Allocate extends the store by one zeroed page and returns its id.
	Allocate() (storage.PageID, error)
	// NumPages returns the number of allocated pages.
	NumPages() int
}

// IOStats is a snapshot of device-level activity.
type IOStats struct {
	Reads  uint64 // pages read from the device
	Writes uint64 // pages written to the device
	Allocs uint64 // pages allocated
}

// Sub returns the component-wise difference s - o, for measuring a window
// of activity between two snapshots.
func (s IOStats) Sub(o IOStats) IOStats {
	return IOStats{Reads: s.Reads - o.Reads, Writes: s.Writes - o.Writes, Allocs: s.Allocs - o.Allocs}
}

// SimDisk is an in-memory page store that behaves like a device: every
// Read/Write is counted, and pages are copied in and out so callers
// cannot alias device memory.
type SimDisk struct {
	mu    sync.RWMutex
	pages [][]byte

	readLatency  atomic.Int64 // ns charged per Read
	writeLatency atomic.Int64 // ns charged per Write

	reads  atomic.Uint64
	writes atomic.Uint64
	allocs atomic.Uint64
}

// SetLatency makes every subsequent Read/Write sleep for the given
// durations, so wall-clock measurements take the shape of a real
// device's (the paper's curves are per-query milliseconds on an SSD).
// Zero disables the charge.
func (d *SimDisk) SetLatency(read, write time.Duration) {
	d.readLatency.Store(int64(read))
	d.writeLatency.Store(int64(write))
}

// NewSimDisk returns an empty simulated disk.
func NewSimDisk() *SimDisk { return &SimDisk{} }

// Read implements Store.
func (d *SimDisk) Read(id storage.PageID, buf []byte) error {
	if len(buf) != PageSize {
		return fmt.Errorf("buffer: Read buffer is %d bytes, want %d", len(buf), PageSize)
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	if int(id) >= len(d.pages) {
		return fmt.Errorf("buffer: read of unallocated page %d (disk has %d pages)", id, len(d.pages))
	}
	copy(buf, d.pages[id])
	d.reads.Add(1)
	if lat := d.readLatency.Load(); lat > 0 {
		time.Sleep(time.Duration(lat))
	}
	return nil
}

// Write implements Store.
func (d *SimDisk) Write(id storage.PageID, buf []byte) error {
	if len(buf) != PageSize {
		return fmt.Errorf("buffer: Write buffer is %d bytes, want %d", len(buf), PageSize)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if int(id) >= len(d.pages) {
		return fmt.Errorf("buffer: write of unallocated page %d (disk has %d pages)", id, len(d.pages))
	}
	copy(d.pages[id], buf)
	d.writes.Add(1)
	if lat := d.writeLatency.Load(); lat > 0 {
		time.Sleep(time.Duration(lat))
	}
	return nil
}

// Allocate implements Store.
func (d *SimDisk) Allocate() (storage.PageID, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.pages) >= int(storage.InvalidPageID) {
		return storage.InvalidPageID, fmt.Errorf("buffer: disk full at %d pages", len(d.pages))
	}
	id := storage.PageID(len(d.pages))
	d.pages = append(d.pages, make([]byte, PageSize))
	d.allocs.Add(1)
	return id, nil
}

// NumPages implements Store.
func (d *SimDisk) NumPages() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.pages)
}

// Stats returns a snapshot of the device counters.
func (d *SimDisk) Stats() IOStats {
	return IOStats{Reads: d.reads.Load(), Writes: d.writes.Load(), Allocs: d.allocs.Load()}
}
