package buffer

import (
	"fmt"
	"os"
	"sync"

	"repro/internal/storage"
)

// FileStore is a page store backed by a real file — the paper's table
// lived on an SSD, and this implementation lets the engine run against
// actual device I/O instead of the accounting-only SimDisk. Pages are
// stored at offset id*PageSize; the file grows on Allocate.
//
// Like SimDisk it counts logical reads and writes, so experiment series
// are comparable across backends. FileStore is safe for concurrent use.
type FileStore struct {
	mu    sync.Mutex
	f     *os.File
	pages int

	reads  uint64
	writes uint64
	allocs uint64
}

// OpenFileStore creates or truncates the file at path and returns an
// empty store. The caller owns Close.
func OpenFileStore(path string) (*FileStore, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("buffer: open file store: %w", err)
	}
	return &FileStore{f: f}, nil
}

// OpenFileStoreExisting opens a previously written page file, deriving
// the page count from its size. It is how a persisted database reattaches
// its heaps on restart.
func OpenFileStoreExisting(path string) (*FileStore, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("buffer: reopen file store: %w", err)
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("buffer: stat file store: %w", err)
	}
	if fi.Size()%PageSize != 0 {
		f.Close()
		return nil, fmt.Errorf("buffer: file store %s has size %d, not a multiple of the page size", path, fi.Size())
	}
	return &FileStore{f: f, pages: int(fi.Size() / PageSize)}, nil
}

// Close releases the underlying file.
func (s *FileStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.f.Close()
}

// Read implements Store.
func (s *FileStore) Read(id storage.PageID, buf []byte) error {
	if len(buf) != PageSize {
		return fmt.Errorf("buffer: Read buffer is %d bytes, want %d", len(buf), PageSize)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if int(id) >= s.pages {
		return fmt.Errorf("buffer: read of unallocated page %d (file has %d pages)", id, s.pages)
	}
	if _, err := s.f.ReadAt(buf, int64(id)*PageSize); err != nil {
		return fmt.Errorf("buffer: read page %d: %w", id, err)
	}
	s.reads++
	return nil
}

// Write implements Store.
func (s *FileStore) Write(id storage.PageID, buf []byte) error {
	if len(buf) != PageSize {
		return fmt.Errorf("buffer: Write buffer is %d bytes, want %d", len(buf), PageSize)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if int(id) >= s.pages {
		return fmt.Errorf("buffer: write of unallocated page %d (file has %d pages)", id, s.pages)
	}
	if _, err := s.f.WriteAt(buf, int64(id)*PageSize); err != nil {
		return fmt.Errorf("buffer: write page %d: %w", id, err)
	}
	s.writes++
	return nil
}

// Allocate implements Store: it extends the file by one zeroed page.
func (s *FileStore) Allocate() (storage.PageID, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	id := storage.PageID(s.pages)
	zero := make([]byte, PageSize)
	if _, err := s.f.WriteAt(zero, int64(id)*PageSize); err != nil {
		return storage.InvalidPageID, fmt.Errorf("buffer: allocate page %d: %w", id, err)
	}
	s.pages++
	s.allocs++
	return id, nil
}

// NumPages implements Store.
func (s *FileStore) NumPages() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pages
}

// Stats returns a snapshot of the logical I/O counters.
func (s *FileStore) Stats() IOStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return IOStats{Reads: s.reads, Writes: s.writes, Allocs: s.allocs}
}

// Sync flushes file contents to stable storage.
func (s *FileStore) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.f.Sync()
}

// Truncate shrinks the file to exactly pages pages. Recovery uses it to
// drop heap pages past the catalog's checkpointed extent — an append
// that made it to disk but never to a durable checkpoint or log record.
func (s *FileStore) Truncate(pages int) error {
	if pages < 0 {
		return fmt.Errorf("buffer: truncate to %d pages", pages)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if pages > s.pages {
		return fmt.Errorf("buffer: truncate to %d pages, file has only %d", pages, s.pages)
	}
	if err := s.f.Truncate(int64(pages) * PageSize); err != nil {
		return fmt.Errorf("buffer: truncate file store: %w", err)
	}
	s.pages = pages
	return nil
}

// RecoverFileStore opens a page file that may have a torn tail from a
// crash mid-append: a size that is not a page multiple is floored to
// the last whole page (the partial page was never acknowledged), and
// the number of bytes dropped is returned. A clean file recovers with
// zero truncated bytes.
func RecoverFileStore(path string) (*FileStore, int64, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, 0, fmt.Errorf("buffer: reopen file store: %w", err)
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, 0, fmt.Errorf("buffer: stat file store: %w", err)
	}
	torn := fi.Size() % PageSize
	if torn != 0 {
		if err := f.Truncate(fi.Size() - torn); err != nil {
			f.Close()
			return nil, 0, fmt.Errorf("buffer: repair torn page tail: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, 0, fmt.Errorf("buffer: repair torn page tail: %w", err)
		}
	}
	return &FileStore{f: f, pages: int((fi.Size() - torn) / PageSize)}, torn, nil
}
