package buffer

import (
	"errors"
	"testing"

	"repro/internal/storage"
)

// faultStore wraps a Store, failing operations after a countdown —
// deterministic fault injection for error-path coverage.
type faultStore struct {
	inner      Store
	readsLeft  int // fail Reads once this many have succeeded; -1 = never
	writesLeft int
	allocsLeft int
}

var errInjected = errors.New("injected fault")

func newFaultStore(inner Store) *faultStore {
	return &faultStore{inner: inner, readsLeft: -1, writesLeft: -1, allocsLeft: -1}
}

func (f *faultStore) Read(id storage.PageID, buf []byte) error {
	if f.readsLeft == 0 {
		return errInjected
	}
	if f.readsLeft > 0 {
		f.readsLeft--
	}
	return f.inner.Read(id, buf)
}

func (f *faultStore) Write(id storage.PageID, buf []byte) error {
	if f.writesLeft == 0 {
		return errInjected
	}
	if f.writesLeft > 0 {
		f.writesLeft--
	}
	return f.inner.Write(id, buf)
}

func (f *faultStore) Allocate() (storage.PageID, error) {
	if f.allocsLeft == 0 {
		return storage.InvalidPageID, errInjected
	}
	if f.allocsLeft > 0 {
		f.allocsLeft--
	}
	return f.inner.Allocate()
}

func (f *faultStore) NumPages() int { return f.inner.NumPages() }

func TestPoolSurfacesReadFault(t *testing.T) {
	d := NewSimDisk()
	for i := 0; i < 3; i++ {
		if _, err := d.Allocate(); err != nil {
			t.Fatal(err)
		}
	}
	fs := newFaultStore(d)
	fs.readsLeft = 1
	p, err := NewPool(fs, 2)
	if err != nil {
		t.Fatal(err)
	}
	f0, err := p.Fetch(0) // consumes the one allowed read
	if err != nil {
		t.Fatal(err)
	}
	p.Unpin(f0)
	if _, err := p.Fetch(1); !errors.Is(err, errInjected) {
		t.Errorf("fetch after fault = %v, want injected error", err)
	}
	// The pool stays usable for resident pages.
	f0b, err := p.Fetch(0)
	if err != nil {
		t.Fatalf("resident fetch after fault: %v", err)
	}
	p.Unpin(f0b)
}

func TestPoolSurfacesWritebackFault(t *testing.T) {
	d := NewSimDisk()
	for i := 0; i < 2; i++ {
		if _, err := d.Allocate(); err != nil {
			t.Fatal(err)
		}
	}
	fs := newFaultStore(d)
	fs.writesLeft = 0
	p, err := NewPool(fs, 1)
	if err != nil {
		t.Fatal(err)
	}
	f0, err := p.Fetch(0)
	if err != nil {
		t.Fatal(err)
	}
	f0.MarkDirty()
	p.Unpin(f0)
	// Evicting the dirty page hits the write fault.
	if _, err := p.Fetch(1); !errors.Is(err, errInjected) {
		t.Errorf("eviction writeback fault = %v", err)
	}
	// FlushAll reports it too.
	if err := p.FlushAll(); !errors.Is(err, errInjected) {
		t.Errorf("FlushAll fault = %v", err)
	}
}

func TestPoolSurfacesAllocateFault(t *testing.T) {
	fs := newFaultStore(NewSimDisk())
	fs.allocsLeft = 0
	p, err := NewPool(fs, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Allocate(); !errors.Is(err, errInjected) {
		t.Errorf("allocate fault = %v", err)
	}
}
