package buffer

import (
	"errors"
	"testing"
)

func TestPoolSurfacesReadFault(t *testing.T) {
	d := NewSimDisk()
	for i := 0; i < 3; i++ {
		if _, err := d.Allocate(); err != nil {
			t.Fatal(err)
		}
	}
	fs := NewFaultStore(d)
	fs.SetReadsLeft(1)
	p, err := NewPool(fs, 2)
	if err != nil {
		t.Fatal(err)
	}
	f0, err := p.Fetch(0) // consumes the one allowed read
	if err != nil {
		t.Fatal(err)
	}
	p.Unpin(f0)
	if _, err := p.Fetch(1); !errors.Is(err, ErrInjected) {
		t.Errorf("fetch after fault = %v, want injected error", err)
	}
	// The pool stays usable for resident pages.
	f0b, err := p.Fetch(0)
	if err != nil {
		t.Fatalf("resident fetch after fault: %v", err)
	}
	p.Unpin(f0b)
}

func TestPoolSurfacesWritebackFault(t *testing.T) {
	d := NewSimDisk()
	for i := 0; i < 2; i++ {
		if _, err := d.Allocate(); err != nil {
			t.Fatal(err)
		}
	}
	fs := NewFaultStore(d)
	fs.SetWritesLeft(0)
	p, err := NewPool(fs, 1)
	if err != nil {
		t.Fatal(err)
	}
	f0, err := p.Fetch(0)
	if err != nil {
		t.Fatal(err)
	}
	f0.MarkDirty()
	p.Unpin(f0)
	// Evicting the dirty page hits the write fault.
	if _, err := p.Fetch(1); !errors.Is(err, ErrInjected) {
		t.Errorf("eviction writeback fault = %v", err)
	}
	// FlushAll reports it too.
	if err := p.FlushAll(); !errors.Is(err, ErrInjected) {
		t.Errorf("FlushAll fault = %v", err)
	}
}

func TestPoolSurfacesAllocateFault(t *testing.T) {
	fs := NewFaultStore(NewSimDisk())
	fs.SetAllocsLeft(0)
	p, err := NewPool(fs, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Allocate(); !errors.Is(err, ErrInjected) {
		t.Errorf("allocate fault = %v", err)
	}
}
