package hashindex

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/storage"
)

func iv(v int64) storage.Value { return storage.Int64Value(v) }
func rid(p, s int) storage.RID { return storage.RID{Page: storage.PageID(p), Slot: uint16(s)} }

func TestInsertLookupDelete(t *testing.T) {
	ix := New()
	if !ix.Insert(iv(1), rid(1, 0)) {
		t.Error("first insert should add")
	}
	if ix.Insert(iv(1), rid(1, 0)) {
		t.Error("duplicate should not add")
	}
	ix.Insert(iv(1), rid(0, 5))
	post := ix.Lookup(iv(1))
	if len(post) != 2 || post[0] != rid(0, 5) || post[1] != rid(1, 0) {
		t.Errorf("posting = %v (want RID-sorted)", post)
	}
	if ix.Lookup(iv(2)) != nil {
		t.Error("missing key should be nil")
	}
	if !ix.Delete(iv(1), rid(0, 5)) {
		t.Error("delete should succeed")
	}
	if ix.Delete(iv(1), rid(0, 5)) {
		t.Error("re-delete should fail")
	}
	if ix.Delete(iv(99), rid(0, 0)) {
		t.Error("delete of absent key should fail")
	}
	if ix.Len() != 1 || ix.EntryCount() != 1 {
		t.Errorf("Len=%d Entries=%d", ix.Len(), ix.EntryCount())
	}
	ix.Delete(iv(1), rid(1, 0))
	if ix.Len() != 0 || ix.Lookup(iv(1)) != nil {
		t.Error("emptied key should be gone")
	}
}

func TestInsertInvalidKeyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("invalid key should panic")
		}
	}()
	New().Insert(storage.Value{}, rid(0, 0))
}

func TestGrowRehash(t *testing.T) {
	ix := New()
	before := ix.NumBuckets()
	const n = 1000
	for k := 0; k < n; k++ {
		ix.Insert(iv(int64(k)), rid(k, 0))
	}
	if ix.NumBuckets() <= before {
		t.Errorf("buckets did not grow: %d", ix.NumBuckets())
	}
	for k := 0; k < n; k++ {
		post := ix.Lookup(iv(int64(k)))
		if len(post) != 1 || post[0] != rid(k, 0) {
			t.Fatalf("after rehash, key %d = %v", k, post)
		}
	}
	if ix.Len() != n {
		t.Errorf("Len = %d, want %d", ix.Len(), n)
	}
}

func TestForEach(t *testing.T) {
	ix := New()
	for k := 0; k < 50; k++ {
		ix.Insert(iv(int64(k)), rid(k, 0))
	}
	seen := map[int64]bool{}
	ix.ForEach(func(k storage.Value, post []storage.RID) bool {
		if seen[k.Int64()] {
			t.Errorf("key %d visited twice", k.Int64())
		}
		seen[k.Int64()] = true
		return true
	})
	if len(seen) != 50 {
		t.Errorf("visited %d keys, want 50", len(seen))
	}
	// Early stop.
	n := 0
	ix.ForEach(func(storage.Value, []storage.RID) bool {
		n++
		return n < 5
	})
	if n != 5 {
		t.Errorf("early stop visited %d", n)
	}
}

func TestStringAndIntKeysCoexist(t *testing.T) {
	ix := New()
	ix.Insert(storage.StringValue("FRA"), rid(1, 0))
	ix.Insert(iv(42), rid(2, 0))
	if post := ix.Lookup(storage.StringValue("FRA")); len(post) != 1 || post[0] != rid(1, 0) {
		t.Errorf("FRA = %v", post)
	}
	if post := ix.Lookup(iv(42)); len(post) != 1 || post[0] != rid(2, 0) {
		t.Errorf("42 = %v", post)
	}
}

func TestRandomizedAgainstModel(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ix := New()
	model := map[int64]map[storage.RID]bool{}
	entries := 0
	for step := 0; step < 10000; step++ {
		k := rng.Int63n(300)
		r := rid(rng.Intn(40), rng.Intn(4))
		if rng.Intn(2) == 0 {
			added := ix.Insert(iv(k), r)
			if added == model[k][r] {
				t.Fatalf("step %d: insert mismatch", step)
			}
			if model[k] == nil {
				model[k] = map[storage.RID]bool{}
			}
			if added {
				model[k][r] = true
				entries++
			}
		} else {
			removed := ix.Delete(iv(k), r)
			if removed != model[k][r] {
				t.Fatalf("step %d: delete mismatch", step)
			}
			if removed {
				delete(model[k], r)
				if len(model[k]) == 0 {
					delete(model, k)
				}
				entries--
			}
		}
	}
	if ix.EntryCount() != entries || ix.Len() != len(model) {
		t.Fatalf("Len=%d/%d Entries=%d/%d", ix.Len(), len(model), ix.EntryCount(), entries)
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(keys []int64) bool {
		ix := New()
		for i, k := range keys {
			ix.Insert(iv(k), rid(i, 0))
		}
		for i, k := range keys {
			if !ix.Delete(iv(k), rid(i, 0)) {
				return false
			}
		}
		return ix.Len() == 0 && ix.EntryCount() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
