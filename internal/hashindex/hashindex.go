// Package hashindex implements a chained hash index mapping values to
// RID posting lists — the third index structure the paper names as a
// valid Index Buffer backend (§III: "a hash table can be used too").
// Unlike the tree structures it offers no ordered iteration, which is
// irrelevant for the Index Buffer's equality-predicate workload.
package hashindex

import (
	"hash/fnv"
	"sort"

	"repro/internal/storage"
)

// defaultBuckets is the initial bucket count.
const defaultBuckets = 16

// maxLoad triggers a doubling resize when entries/buckets exceeds it.
const maxLoad = 4.0

type entry struct {
	key  storage.Value
	post []storage.RID
	next *entry
}

// Index is a chained hash index. Not safe for concurrent use.
type Index struct {
	buckets  []*entry
	distinct int
	entries  int
}

// New creates an empty hash index.
func New() *Index {
	return &Index{buckets: make([]*entry, defaultBuckets)}
}

// Len returns the number of distinct keys.
func (ix *Index) Len() int { return ix.distinct }

// EntryCount returns the number of (key, rid) entries.
func (ix *Index) EntryCount() int { return ix.entries }

// NumBuckets is exposed for tests of the resize policy.
func (ix *Index) NumBuckets() int { return len(ix.buckets) }

// hash folds the value's encoded bytes (prefixed by kind to separate
// domains) through FNV-1a.
func hashValue(v storage.Value) uint64 {
	h := fnv.New64a()
	h.Write([]byte{byte(v.Kind())})
	h.Write(v.AppendEncode(nil))
	return h.Sum64()
}

func (ix *Index) bucket(v storage.Value) int {
	return int(hashValue(v) % uint64(len(ix.buckets)))
}

func (ix *Index) find(key storage.Value) *entry {
	for e := ix.buckets[ix.bucket(key)]; e != nil; e = e.next {
		if e.key.Equal(key) {
			return e
		}
	}
	return nil
}

// Insert adds (key, rid); a duplicate pair returns false.
func (ix *Index) Insert(key storage.Value, rid storage.RID) bool {
	if !key.IsValid() {
		panic("hashindex: insert of invalid key")
	}
	e := ix.find(key)
	if e == nil {
		b := ix.bucket(key)
		ix.buckets[b] = &entry{key: key, post: []storage.RID{rid}, next: ix.buckets[b]}
		ix.distinct++
		ix.entries++
		ix.maybeGrow()
		return true
	}
	j := sort.Search(len(e.post), func(j int) bool { return !e.post[j].Less(rid) })
	if j < len(e.post) && e.post[j] == rid {
		return false
	}
	e.post = append(e.post, storage.RID{})
	copy(e.post[j+1:], e.post[j:])
	e.post[j] = rid
	ix.entries++
	return true
}

// Delete removes (key, rid); returns false when absent.
func (ix *Index) Delete(key storage.Value, rid storage.RID) bool {
	b := ix.bucket(key)
	var prev *entry
	for e := ix.buckets[b]; e != nil; prev, e = e, e.next {
		if !e.key.Equal(key) {
			continue
		}
		j := sort.Search(len(e.post), func(j int) bool { return !e.post[j].Less(rid) })
		if j >= len(e.post) || e.post[j] != rid {
			return false
		}
		e.post = append(e.post[:j], e.post[j+1:]...)
		ix.entries--
		if len(e.post) == 0 {
			if prev == nil {
				ix.buckets[b] = e.next
			} else {
				prev.next = e.next
			}
			ix.distinct--
		}
		return true
	}
	return false
}

// Lookup returns the posting list for key, or nil. The slice is owned by
// the index.
func (ix *Index) Lookup(key storage.Value) []storage.RID {
	if e := ix.find(key); e != nil {
		return e.post
	}
	return nil
}

// Contains reports whether (key, rid) is present.
func (ix *Index) Contains(key storage.Value, rid storage.RID) bool {
	for _, r := range ix.Lookup(key) {
		if r == rid {
			return true
		}
	}
	return false
}

// ForEach calls fn for every (key, posting) in unspecified order until fn
// returns false.
func (ix *Index) ForEach(fn func(key storage.Value, post []storage.RID) bool) {
	for _, head := range ix.buckets {
		for e := head; e != nil; e = e.next {
			if !fn(e.key, e.post) {
				return
			}
		}
	}
}

// maybeGrow doubles the bucket array when the load factor exceeds
// maxLoad, rehashing every chain.
func (ix *Index) maybeGrow() {
	if float64(ix.distinct)/float64(len(ix.buckets)) <= maxLoad {
		return
	}
	old := ix.buckets
	ix.buckets = make([]*entry, 2*len(old))
	for _, head := range old {
		for e := head; e != nil; {
			next := e.next
			b := ix.bucket(e.key)
			e.next = ix.buckets[b]
			ix.buckets[b] = e
			e = next
		}
	}
}
