package exec

import (
	"context"
	"strings"
	"testing"

	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/heap"
	"repro/internal/index"
	"repro/internal/storage"
)

func iv(v int64) storage.Value { return storage.Int64Value(v) }

// buildTable creates a heap with rows tuples (key = i % 10, padded so a
// few tuples fit per page).
func buildTable(t *testing.T, rows int) *heap.Table {
	t.Helper()
	d := buffer.NewSimDisk()
	pool, err := buffer.NewPool(d, 64)
	if err != nil {
		t.Fatal(err)
	}
	schema := storage.MustSchema(
		storage.Column{Name: "k", Kind: storage.KindInt64},
		storage.Column{Name: "pad", Kind: storage.KindString},
	)
	tb := heap.NewTable(schema, pool)
	pad := strings.Repeat("p", 700) // ~11 tuples per page
	for i := 0; i < rows; i++ {
		tu := storage.NewTuple(iv(int64(i%10)), storage.StringValue(pad))
		if _, err := tb.Insert(tu); err != nil {
			t.Fatal(err)
		}
	}
	return tb
}

func TestEqualNoIndexNoBuffer(t *testing.T) {
	tb := buildTable(t, 200)
	got, stats, err := Equal(context.Background(), Access{Table: tb, Column: 0}, iv(3))
	if err != nil {
		t.Fatal(err)
	}
	if !stats.FullScan || stats.PartialHit {
		t.Errorf("stats = %+v", stats)
	}
	if stats.PagesRead != tb.NumPages() {
		t.Errorf("read %d pages, want all %d", stats.PagesRead, tb.NumPages())
	}
	if len(got) != 20 {
		t.Errorf("matches = %d, want 20", len(got))
	}
	if stats.Matches != 20 {
		t.Errorf("stats.Matches = %d", stats.Matches)
	}
}

func TestEqualIndexOnlyNoBuffer(t *testing.T) {
	tb := buildTable(t, 200)
	ix := index.NewPartial("k", 0, index.IntRange(0, 4))
	_ = tb.Scan(func(rid storage.RID, tu storage.Tuple) error {
		ix.Add(tu.Value(0), rid)
		return nil
	})
	a := Access{Table: tb, Column: 0, Index: ix}

	// Covered key: index scan fetches only match pages.
	got, stats, err := Equal(context.Background(), a, iv(2))
	if err != nil {
		t.Fatal(err)
	}
	if !stats.PartialHit || len(got) != 20 {
		t.Errorf("hit=%v matches=%d", stats.PartialHit, len(got))
	}
	if stats.PagesRead > tb.NumPages() {
		t.Errorf("read %d pages", stats.PagesRead)
	}

	// Uncovered key: full scan.
	_, stats, err = Equal(context.Background(), a, iv(7))
	if err != nil {
		t.Fatal(err)
	}
	if stats.PartialHit || !stats.FullScan || stats.PagesRead != tb.NumPages() {
		t.Errorf("uncovered stats = %+v", stats)
	}
}

func TestFetchRIDsCountsDistinctPages(t *testing.T) {
	tb := buildTable(t, 100)
	// All tuples with key 5: spread over pages; count distinct pages.
	var rids []storage.RID
	pages := map[storage.PageID]bool{}
	_ = tb.Scan(func(rid storage.RID, tu storage.Tuple) error {
		if tu.Value(0).Int64() == 5 {
			rids = append(rids, rid)
			pages[rid.Page] = true
		}
		return nil
	})
	var stats QueryStats
	got, err := fetchRIDs(Access{Table: tb, Column: 0}, rids, &stats, pageSet{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(rids) {
		t.Errorf("fetched %d, want %d", len(got), len(rids))
	}
	if stats.PagesRead != len(pages) {
		t.Errorf("PagesRead = %d, want %d distinct pages", stats.PagesRead, len(pages))
	}
	// Empty posting: zero cost.
	var empty QueryStats
	if out, err := fetchRIDs(Access{Table: tb}, nil, &empty, pageSet{}); err != nil || out != nil || empty.PagesRead != 0 {
		t.Error("empty fetch should be free")
	}
}

func TestIndexingScanSecondQuerySkips(t *testing.T) {
	tb := buildTable(t, 300)
	ix := index.NewPartial("k", 0, index.IntRange(0, 4))
	uncovered := make([]int, tb.NumPages())
	_ = tb.Scan(func(rid storage.RID, tu storage.Tuple) error {
		if !ix.Add(tu.Value(0), rid) {
			uncovered[rid.Page]++
		}
		return nil
	})
	space := core.NewSpace(core.Config{IMax: 10000, P: 100})
	buf, err := space.CreateBuffer("t.k", uncovered)
	if err != nil {
		t.Fatal(err)
	}
	a := Access{Table: tb, Column: 0, Index: ix, Buffer: buf, Space: space}

	_, s1, err := Equal(context.Background(), a, iv(8))
	if err != nil {
		t.Fatal(err)
	}
	if s1.PagesSelected != tb.NumPages() || s1.EntriesAdded == 0 {
		t.Errorf("first scan: selected=%d entries=%d", s1.PagesSelected, s1.EntriesAdded)
	}
	got, s2, err := Equal(context.Background(), a, iv(9))
	if err != nil {
		t.Fatal(err)
	}
	if s2.PagesSkipped != tb.NumPages() {
		t.Errorf("second scan skipped %d of %d", s2.PagesSkipped, tb.NumPages())
	}
	if len(got) != 30 {
		t.Errorf("matches = %d, want 30", len(got))
	}
	if s2.BufferMatches != 30 {
		t.Errorf("buffer matches = %d", s2.BufferMatches)
	}
	// Duration is populated.
	if s2.Duration <= 0 {
		t.Error("duration not recorded")
	}
}

func TestExplainEqual(t *testing.T) {
	tb := buildTable(t, 300)
	ix := index.NewPartial("k", 0, index.IntRange(0, 4))
	uncovered := make([]int, tb.NumPages())
	_ = tb.Scan(func(rid storage.RID, tu storage.Tuple) error {
		if !ix.Add(tu.Value(0), rid) {
			uncovered[rid.Page]++
		}
		return nil
	})
	space := core.NewSpace(core.Config{IMax: 10000, P: 100})
	buf, err := space.CreateBuffer("t.k", uncovered)
	if err != nil {
		t.Fatal(err)
	}
	a := Access{Table: tb, Column: 0, Index: ix, Buffer: buf, Space: space}

	// Covered key: hit plan, no mutation.
	plan := ExplainEqual(a, iv(2))
	if !plan.PartialHit || plan.Mechanism != "partial index hit" {
		t.Errorf("plan = %+v", plan)
	}
	if plan.EstimatedPagesRead == 0 || plan.EstimatedPagesRead > tb.NumPages() {
		t.Errorf("estimate = %d", plan.EstimatedPagesRead)
	}

	// Uncovered, empty buffer: indexing scan of every page.
	plan = ExplainEqual(a, iv(8))
	if plan.Mechanism != "indexing scan" || plan.EstimatedPagesRead != tb.NumPages() {
		t.Errorf("plan = %+v", plan)
	}
	if buf.EntryCount() != 0 {
		t.Error("EXPLAIN mutated the buffer")
	}

	// After a real query, the plan predicts skips.
	if _, _, err := Equal(context.Background(), a, iv(8)); err != nil {
		t.Fatal(err)
	}
	plan = ExplainEqual(a, iv(9))
	if plan.SkippablePages != tb.NumPages() {
		t.Errorf("skippable = %d of %d", plan.SkippablePages, tb.NumPages())
	}
	// Estimate matches the real cost.
	_, stats, err := Equal(context.Background(), a, iv(9))
	if err != nil {
		t.Fatal(err)
	}
	if plan.EstimatedPagesRead != stats.PagesRead {
		t.Errorf("estimate %d, actual %d", plan.EstimatedPagesRead, stats.PagesRead)
	}

	// No index, no buffer: full scan plan.
	plan = ExplainEqual(Access{Table: tb, Column: 0}, iv(1))
	if plan.Mechanism != "full scan" || plan.EstimatedPagesRead != tb.NumPages() {
		t.Errorf("plan = %+v", plan)
	}
	if plan.String() == "" {
		t.Error("empty plan string")
	}
}

func TestExplainRange(t *testing.T) {
	a := rangeFixture(t, 300, 99, nil)
	plan := ExplainRange(a, iv(10), iv(20))
	if !plan.PartialHit {
		t.Errorf("covered range plan = %+v", plan)
	}
	plan = ExplainRange(a, iv(90), iv(120))
	if plan.PartialHit || plan.Mechanism != "indexing scan" {
		t.Errorf("straddling plan = %+v", plan)
	}
	plan = ExplainRange(a, iv(20), iv(10))
	if plan.Mechanism != "empty range" || plan.EstimatedPagesRead != 0 {
		t.Errorf("inverted plan = %+v", plan)
	}
	noBuf := a
	noBuf.Buffer = nil
	noBuf.Space = nil
	plan = ExplainRange(noBuf, iv(150), iv(160))
	if plan.Mechanism != "full scan" {
		t.Errorf("no-buffer plan = %+v", plan)
	}
}
