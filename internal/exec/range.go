package exec

import (
	"context"

	"repro/internal/storage"
)

// Range answers the range query lo <= column <= hi. The access-path
// logic mirrors Equal: a partial index answers the query only when its
// predicate covers the whole interval; otherwise the query runs an
// indexing table scan (Algorithm 1 with a range predicate) or, without a
// buffer, a full scan. The Index Buffer machinery — page selection,
// skips, LRU-K — behaves identically to the equality path: a range miss
// is just another scan that builds the buffer.
//
// Unlike the equality path, two extra sources feed a range result beyond
// the page scan: the Index Buffer (uncovered tuples of fully indexed
// pages) and the partial index itself, because a range straddling the
// coverage predicate has covered matches sitting unreachable on skipped
// pages. The paper's §II observation "tuples referenced in the index
// will not be part of the result set" holds only for equality misses;
// for ranges the index postings on skipped pages must be added back —
// ExecuteShared's skipped-page recovery stage does exactly that.
//
// Range is a shared scan with a single attached query; ctx is honored
// between page reads of the scanning paths.
func Range(ctx context.Context, a Access, lo, hi storage.Value) ([]Match, QueryStats, error) {
	o := ExecuteShared(a, []SharedQuery{{Lo: lo, Hi: hi, Ctx: ctx}})[0]
	return o.Matches, o.Stats, o.Err
}
