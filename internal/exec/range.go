package exec

import (
	"context"
	"time"

	"repro/internal/storage"
)

// Range answers the range query lo <= column <= hi. The access-path
// logic mirrors Equal: a partial index answers the query only when its
// predicate covers the whole interval; otherwise the query runs an
// indexing table scan (Algorithm 1 with a range predicate) or, without a
// buffer, a full scan. The Index Buffer machinery — page selection,
// skips, LRU-K — behaves identically to the equality path: a range miss
// is just another scan that builds the buffer. ctx is honored between
// page reads of the scanning paths.
func Range(ctx context.Context, a Access, lo, hi storage.Value) ([]Match, QueryStats, error) {
	start := time.Now()
	stats := QueryStats{Key: lo}
	if hi.Compare(lo) < 0 {
		stats.Duration = time.Since(start)
		return nil, stats, nil
	}

	hit := a.Index != nil && a.Index.CoversRange(lo, hi)
	stats.PartialHit = hit
	if a.Space != nil {
		a.Space.OnQuery(a.Buffer, hit)
	}

	pred := func(v storage.Value) bool {
		return v.Compare(lo) >= 0 && v.Compare(hi) <= 0
	}

	var out []Match
	var err error
	switch {
	case hit:
		out, err = fetchRIDs(a, a.Index.LookupRange(lo, hi), &stats)
	case a.Buffer != nil:
		out, err = indexingScanRange(ctx, a, lo, hi, pred, &stats)
	default:
		stats.FullScan = true
		out, err = fullScanPred(ctx, a, pred, &stats)
	}
	if err != nil {
		return nil, stats, err
	}
	stats.Matches = len(out)
	stats.Duration = time.Since(start)
	return out, stats, nil
}

// indexingScanRange is Algorithm 1 generalized to a range predicate.
// Two sources feed the result beyond the page scan itself: the Index
// Buffer (uncovered tuples of fully indexed pages) and — unlike the
// equality path — the partial index, because a range straddling the
// coverage predicate has covered matches, and those sit unreachable on
// skipped pages. The paper's §II observation "tuples referenced in the
// index will not be part of the result set" holds only for equality
// misses; for ranges the index postings on skipped pages must be added
// back.
func indexingScanRange(ctx context.Context, a Access, lo, hi storage.Value, pred func(storage.Value) bool, stats *QueryStats) ([]Match, error) {
	release := a.Space.PinForScan(a.Buffer)
	defer release()

	numPages := a.Table.NumPages()
	selected := a.Space.SelectPagesForBuffer(a.Buffer, numPages)
	stats.PagesSelected = len(selected)
	inI := make(map[storage.PageID]bool, len(selected))
	for _, p := range selected {
		inI[p] = true
	}

	// Index Buffer scan.
	out, err := fetchRIDs(a, a.Buffer.LookupRange(lo, hi), stats)
	if err != nil {
		return nil, err
	}
	stats.BufferMatches = len(out)

	// Table scan, recording which pages were skipped.
	skipped := make(map[storage.PageID]bool)
	for p := 0; p < numPages; p++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		pg := storage.PageID(p)
		if a.Buffer.Counter(pg) == 0 {
			stats.PagesSkipped++
			skipped[pg] = true
			continue
		}
		indexThis := inI[pg]
		if indexThis {
			if err := a.Buffer.BeginPage(pg); err != nil {
				return nil, err
			}
		}
		stats.PagesRead++
		err := a.Table.ScanPage(pg, func(rid storage.RID, tu storage.Tuple) error {
			v := tu.Value(a.Column)
			if pred(v) {
				out = append(out, Match{RID: rid, Tuple: tu})
			}
			if indexThis && (a.Index == nil || !a.Index.Covers(v)) {
				if err := a.Buffer.AddEntry(pg, v, rid); err != nil {
					return err
				}
				stats.EntriesAdded++
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}

	// Recover covered matches on skipped pages from the partial index.
	if a.Index != nil && len(skipped) > 0 {
		var missing []storage.RID
		for _, rid := range a.Index.ScanRange(lo, hi) {
			if skipped[rid.Page] {
				missing = append(missing, rid)
			}
		}
		ixMatches, err := fetchRIDs(a, missing, stats)
		if err != nil {
			return nil, err
		}
		out = append(out, ixMatches...)
	}
	return out, nil
}

// fullScanPred reads every page, filtering by pred.
func fullScanPred(ctx context.Context, a Access, pred func(storage.Value) bool, stats *QueryStats) ([]Match, error) {
	var out []Match
	numPages := a.Table.NumPages()
	for p := 0; p < numPages; p++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		stats.PagesRead++
		err := a.Table.ScanPage(storage.PageID(p), func(rid storage.RID, tu storage.Tuple) error {
			if pred(tu.Value(a.Column)) {
				out = append(out, Match{RID: rid, Tuple: tu})
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
