package exec

import (
	"fmt"

	"repro/internal/storage"
)

// Plan describes the access path a query would take and its expected
// cost, without executing anything or mutating any state (no LRU-K
// advance, no page selection, no buffer growth) — an EXPLAIN.
type Plan struct {
	// Mechanism is one of "partial index hit", "indexing scan",
	// "full scan".
	Mechanism string
	// PartialHit reports whether the partial index serves the query.
	PartialHit bool
	// EstimatedPagesRead is the logical I/O the query would pay now:
	// posting pages for a hit, non-skippable pages plus buffered match
	// pages for an indexing scan, every page for a full scan.
	EstimatedPagesRead int
	// SkippablePages counts pages with counter zero that the scan would
	// skip.
	SkippablePages int
	// TablePages is the heap size for reference.
	TablePages int
}

// String renders the plan in one line.
func (p Plan) String() string {
	return fmt.Sprintf("%s: ~%d of %d pages read, %d skippable",
		p.Mechanism, p.EstimatedPagesRead, p.TablePages, p.SkippablePages)
}

// ExplainEqual plans the equality query column = key.
func ExplainEqual(a Access, key storage.Value) Plan {
	numPages := a.Table.NumPages()
	p := Plan{TablePages: numPages}

	if a.Index != nil && a.Index.Covers(key) {
		p.Mechanism = "partial index hit"
		p.PartialHit = true
		p.EstimatedPagesRead = countDistinctPages(a.Index.Lookup(key))
		return p
	}
	if a.Buffer == nil {
		p.Mechanism = "full scan"
		p.EstimatedPagesRead = numPages
		return p
	}
	p.Mechanism = "indexing scan"
	scanPages := 0
	for pg := 0; pg < numPages; pg++ {
		if a.Buffer.Counter(storage.PageID(pg)) == 0 {
			p.SkippablePages++
		} else {
			scanPages++
		}
	}
	p.EstimatedPagesRead = scanPages + countDistinctPages(a.Buffer.Lookup(key))
	return p
}

// ExplainRange plans the range query lo <= column <= hi.
func ExplainRange(a Access, lo, hi storage.Value) Plan {
	numPages := a.Table.NumPages()
	p := Plan{TablePages: numPages}
	if hi.Compare(lo) < 0 {
		p.Mechanism = "empty range"
		return p
	}
	if a.Index != nil && a.Index.CoversRange(lo, hi) {
		p.Mechanism = "partial index hit"
		p.PartialHit = true
		p.EstimatedPagesRead = countDistinctPages(a.Index.LookupRange(lo, hi))
		return p
	}
	if a.Buffer == nil {
		p.Mechanism = "full scan"
		p.EstimatedPagesRead = numPages
		return p
	}
	p.Mechanism = "indexing scan"
	scanPages := 0
	for pg := 0; pg < numPages; pg++ {
		if a.Buffer.Counter(storage.PageID(pg)) == 0 {
			p.SkippablePages++
		} else {
			scanPages++
		}
	}
	fetch := countDistinctPages(a.Buffer.LookupRange(lo, hi))
	if a.Index != nil {
		fetch += countDistinctPages(a.Index.ScanRange(lo, hi))
	}
	p.EstimatedPagesRead = scanPages + fetch
	return p
}

func countDistinctPages(rids []storage.RID) int {
	seen := map[storage.PageID]bool{}
	for _, r := range rids {
		seen[r.Page] = true
	}
	return len(seen)
}
