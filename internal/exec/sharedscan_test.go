package exec

import (
	"context"
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/heap"
	"repro/internal/index"
	"repro/internal/storage"
)

var errInjected = errors.New("injected fault")

// faultHeap wraps a heap table and fails the scan callback after a set
// number of tuples — mid-page, so the rollback path after BeginPage is
// exercised.
type faultHeap struct {
	*heap.Table
	remaining  int
	armed      bool
	failedPage storage.PageID
}

func (f *faultHeap) ScanPage(p storage.PageID, fn func(storage.RID, storage.Tuple) error) error {
	return f.Table.ScanPage(p, func(rid storage.RID, tu storage.Tuple) error {
		if f.armed {
			if f.remaining == 0 {
				f.armed = false
				f.failedPage = p
				return errInjected
			}
			f.remaining--
		}
		return fn(rid, tu)
	})
}

// scanFixture builds the standard 300-row table (keys i%10, coverage
// [0,4]) with a buffer over the given heap access.
func scanFixture(t *testing.T, tb Heap) Access {
	t.Helper()
	ix := index.NewPartial("k", 0, index.IntRange(0, 4))
	uncovered := make([]int, tb.NumPages())
	for p := 0; p < tb.NumPages(); p++ {
		err := tb.ScanPage(storage.PageID(p), func(rid storage.RID, tu storage.Tuple) error {
			if !ix.Add(tu.Value(0), rid) {
				uncovered[rid.Page]++
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	space := core.NewSpace(core.Config{IMax: 10000, P: 100})
	buf, err := space.CreateBuffer("t.k", uncovered)
	if err != nil {
		t.Fatal(err)
	}
	return Access{Table: tb, Column: 0, Index: ix, Buffer: buf, Space: space}
}

// checkCounterInvariant asserts the paper's skip invariant: a page may
// report C[p] == 0 only when every uncovered live tuple of the page is
// reachable through the buffer.
func checkCounterInvariant(t *testing.T, tb *heap.Table, a Access) {
	t.Helper()
	for p := 0; p < tb.NumPages(); p++ {
		pg := storage.PageID(p)
		if a.Buffer.Counter(pg) != 0 {
			continue
		}
		err := tb.ScanPage(pg, func(rid storage.RID, tu storage.Tuple) error {
			v := tu.Value(0)
			if a.Index.Covers(v) {
				return nil
			}
			for _, got := range a.Buffer.Lookup(v) {
				if got == rid {
					return nil
				}
			}
			t.Errorf("page %d: C[p]==0 but uncovered tuple %v at %v missing from buffer", p, v, rid)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestMidPageFailureRollsBackPage(t *testing.T) {
	real := buildTable(t, 300)
	fh := &faultHeap{Table: real}
	a := scanFixture(t, fh)
	fh.remaining, fh.armed = 25, true // fails on the 3rd page, mid-page

	_, stats, err := Equal(context.Background(), a, iv(8))
	if !errors.Is(err, errInjected) {
		t.Fatalf("err = %v, want injected fault", err)
	}
	if stats.Duration <= 0 {
		t.Error("Duration not recorded on the error path")
	}

	// The failed page must have reverted: its counter reads the full
	// uncovered count again, not 0.
	if got := a.Buffer.Counter(fh.failedPage); got == 0 {
		t.Errorf("failed page %d still reports C[p]==0 after rollback", fh.failedPage)
	} else if want := a.Buffer.Uncovered(fh.failedPage); got != want {
		t.Errorf("failed page counter = %d, want uncovered count %d", got, want)
	}
	// The Space budget balances the buffer's actual contents.
	if used, entries := a.Space.Used(), a.Buffer.EntryCount(); used != entries {
		t.Errorf("Space.Used() = %d, buffer holds %d entries", used, entries)
	}
	checkCounterInvariant(t, real, a)

	// With the fault disarmed, the query matches the serial oracle.
	got, _, err := Equal(context.Background(), a, iv(8))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 30 {
		t.Errorf("post-fault matches = %d, want 30", len(got))
	}
	checkCounterInvariant(t, real, a)
	if used, entries := a.Space.Used(), a.Buffer.EntryCount(); used != entries {
		t.Errorf("after recovery: Space.Used() = %d, buffer holds %d entries", used, entries)
	}
}

func TestExecuteSharedBatch(t *testing.T) {
	tb := buildTable(t, 300)
	a := scanFixture(t, tb)

	outs := ExecuteShared(a, []SharedQuery{
		{Lo: iv(8), Hi: iv(8), Equality: true}, // miss — batch leader
		{Lo: iv(9), Hi: iv(9), Equality: true}, // miss
		{Lo: iv(2), Hi: iv(2), Equality: true}, // covered: served from the index
		{Lo: iv(5), Hi: iv(9)},                 // range miss straddling coverage
	})
	want := []int{30, 30, 30, 150}
	for i, o := range outs {
		if o.Err != nil {
			t.Fatalf("query %d: %v", i, o.Err)
		}
		if len(o.Matches) != want[i] || o.Stats.Matches != want[i] {
			t.Errorf("query %d: %d matches (stats %d), want %d", i, len(o.Matches), o.Stats.Matches, want[i])
		}
		if o.Stats.Duration <= 0 {
			t.Errorf("query %d: Duration not recorded", i)
		}
	}
	if !outs[2].Stats.PartialHit || outs[2].Stats.PagesRead >= tb.NumPages() {
		t.Errorf("covered query stats = %+v", outs[2].Stats)
	}

	// Maintenance ran once, attributed to the first scanning query: 150
	// uncovered tuples entered the buffer in one pass.
	if outs[0].Stats.PagesSelected != tb.NumPages() || outs[0].Stats.EntriesAdded != 150 {
		t.Errorf("leader stats: selected=%d entries=%d", outs[0].Stats.PagesSelected, outs[0].Stats.EntriesAdded)
	}
	for _, i := range []int{1, 2, 3} {
		if outs[i].Stats.PagesSelected != 0 || outs[i].Stats.EntriesAdded != 0 {
			t.Errorf("query %d carries maintenance stats %+v", i, outs[i].Stats)
		}
	}
	// Per-query logical I/O stays deduplicated: no query reads a page
	// twice even though the range query touches buffer materialization,
	// the table scan, and skipped-page recovery.
	for i, o := range outs {
		if o.Stats.PagesRead > tb.NumPages() {
			t.Errorf("query %d read %d pages of %d", i, o.Stats.PagesRead, tb.NumPages())
		}
	}

	// One pass buffered every page: the next miss skips the whole table.
	got, s2, err := Equal(context.Background(), a, iv(9))
	if err != nil {
		t.Fatal(err)
	}
	if s2.PagesSkipped != tb.NumPages() || s2.BufferMatches != 30 || len(got) != 30 {
		t.Errorf("second pass: skipped=%d bufferMatches=%d matches=%d", s2.PagesSkipped, s2.BufferMatches, len(got))
	}
}

func TestExecuteSharedCancelOne(t *testing.T) {
	tb := buildTable(t, 300)
	a := scanFixture(t, tb)

	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	outs := ExecuteShared(a, []SharedQuery{
		{Lo: iv(8), Hi: iv(8), Equality: true, Ctx: canceled},
		{Lo: iv(9), Hi: iv(9), Equality: true},
	})

	if !errors.Is(outs[0].Err, context.Canceled) || outs[0].Matches != nil {
		t.Errorf("canceled query: err=%v matches=%d", outs[0].Err, len(outs[0].Matches))
	}
	if outs[1].Err != nil || len(outs[1].Matches) != 30 {
		t.Errorf("live query: err=%v matches=%d", outs[1].Err, len(outs[1].Matches))
	}
	// The scan survived the cancellation and still built the buffer.
	if a.Buffer.EntryCount() == 0 {
		t.Error("scan aborted: buffer empty after one query canceled")
	}
}
