// Package exec implements query execution over a heap table with a
// partial secondary index and an optional Index Buffer. Its centerpiece
// is the indexing table scan of the paper's Algorithm 1: a scan that
// consults the Index Buffer, skips fully indexed pages (counter C[p] ==
// 0), and opportunistically indexes the pages selected by Algorithm 2.
//
// Execution is context-aware: the page-at-a-time loops of the indexing
// scan and the full scan check for cancellation between page reads, so a
// long scan over a cold table can be abandoned mid-flight. The caller
// (the engine) provides the isolation: an indexing scan must run with the
// table's write lock held, everything else is safe under a read lock.
package exec

import (
	"context"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/heap"
	"repro/internal/index"
	"repro/internal/storage"
)

// Match is one result tuple with its physical address.
type Match struct {
	RID   storage.RID
	Tuple storage.Tuple
}

// QueryStats describes the cost and effect of one query. PagesRead is the
// engine's logical I/O — the quantity the paper's runtime curves are
// shaped by; pages served from the buffer pool still count, since the
// paper's 220 MB table does not fit its buffer either.
type QueryStats struct {
	Key        storage.Value
	PartialHit bool // answered by the partial index
	FullScan   bool // no buffer available: plain full table scan

	Matches       int // result tuples
	BufferMatches int // results obtained from the Index Buffer

	PagesRead     int // heap pages fetched (scan + RID materialization)
	PagesSkipped  int // pages skipped because C[p] == 0
	PagesSelected int // pages newly indexed this scan (|I|)
	EntriesAdded  int // Index Buffer entries inserted this scan

	Duration time.Duration
}

// Access bundles the storage objects a point query needs. Index and
// Buffer may be nil (no partial index / no Index Buffer on the column);
// Space must be non-nil whenever Buffer is.
type Access struct {
	Table  *heap.Table
	Column int
	Index  *index.Partial
	Buffer *core.IndexBuffer
	Space  *core.Space
}

// NeedsIndexingScan reports whether the equality query column = key would
// run an indexing scan — the only execution path that mutates the Index
// Buffer and therefore needs exclusive access to the table.
func (a Access) NeedsIndexingScan(key storage.Value) bool {
	return a.Buffer != nil && !(a.Index != nil && a.Index.Covers(key))
}

// NeedsIndexingScanRange is NeedsIndexingScan for lo <= column <= hi.
func (a Access) NeedsIndexingScanRange(lo, hi storage.Value) bool {
	if hi.Compare(lo) < 0 {
		return false
	}
	return a.Buffer != nil && !(a.Index != nil && a.Index.CoversRange(lo, hi))
}

// Equal answers the equality query column = key, maintaining the Index
// Buffer along the way. It is the top-level dispatch: partial-index hit →
// index scan; miss with a buffer → Algorithm 1; miss without → full scan.
// ctx is honored between page reads of the scanning paths.
func Equal(ctx context.Context, a Access, key storage.Value) ([]Match, QueryStats, error) {
	start := time.Now()
	stats := QueryStats{Key: key}

	hit := a.Index != nil && a.Index.Covers(key)
	stats.PartialHit = hit
	if a.Space != nil {
		// Table II: advance every buffer's LRU-K history for this query.
		a.Space.OnQuery(a.Buffer, hit)
	}

	var out []Match
	var err error
	switch {
	case hit:
		out, err = fetchRIDs(a, a.Index.Lookup(key), &stats)
	case a.Buffer != nil:
		out, err = indexingScan(ctx, a, key, &stats)
	default:
		stats.FullScan = true
		out, err = fullScan(ctx, a, key, &stats)
	}
	if err != nil {
		return nil, stats, err
	}
	stats.Matches = len(out)
	stats.Duration = time.Since(start)
	return out, stats, nil
}

// fetchRIDs materializes tuples for a posting list, page by page so each
// page is read once.
func fetchRIDs(a Access, rids []storage.RID, stats *QueryStats) ([]Match, error) {
	if len(rids) == 0 {
		return nil, nil
	}
	sorted := append([]storage.RID(nil), rids...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Less(sorted[j]) })

	var out []Match
	var lastPage storage.PageID
	for i, rid := range sorted {
		if i == 0 || rid.Page != lastPage {
			stats.PagesRead++
			lastPage = rid.Page
		}
		tu, err := a.Table.Get(rid)
		if err != nil {
			return nil, err
		}
		out = append(out, Match{RID: rid, Tuple: tu})
	}
	return out, nil
}

// indexingScan is the paper's Algorithm 1. The page set I to index comes
// from Algorithm 2 (Space.SelectPagesForBuffer), which also performs any
// displacement needed to make room. The buffer is pinned for the scan's
// duration so a concurrent scan on another table cannot displace the
// partitions this scan's skip decisions depend on.
func indexingScan(ctx context.Context, a Access, key storage.Value, stats *QueryStats) ([]Match, error) {
	release := a.Space.PinForScan(a.Buffer)
	defer release()

	numPages := a.Table.NumPages()
	selected := a.Space.SelectPagesForBuffer(a.Buffer, numPages) // I ← SelectPagesForBuffer()
	stats.PagesSelected = len(selected)
	inI := make(map[storage.PageID]bool, len(selected))
	for _, p := range selected {
		inI[p] = true
	}

	// Index Buffer scan (lines 8–10): matches on fully indexed pages.
	bufferRIDs := a.Buffer.Lookup(key)
	out, err := fetchRIDs(a, bufferRIDs, stats)
	if err != nil {
		return nil, err
	}
	stats.BufferMatches = len(out)

	// Table scan (lines 11–17): skip pages with C[p] == 0.
	for p := 0; p < numPages; p++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		pg := storage.PageID(p)
		if a.Buffer.Counter(pg) == 0 {
			stats.PagesSkipped++
			continue
		}
		indexThis := inI[pg]
		if indexThis {
			if err := a.Buffer.BeginPage(pg); err != nil {
				return nil, err
			}
		}
		stats.PagesRead++
		err := a.Table.ScanPage(pg, func(rid storage.RID, tu storage.Tuple) error {
			v := tu.Value(a.Column)
			if v.Equal(key) {
				out = append(out, Match{RID: rid, Tuple: tu})
			}
			if indexThis && (a.Index == nil || !a.Index.Covers(v)) {
				if err := a.Buffer.AddEntry(pg, v, rid); err != nil {
					return err
				}
				stats.EntriesAdded++
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// fullScan reads every page — the baseline cost the Index Buffer avoids.
func fullScan(ctx context.Context, a Access, key storage.Value, stats *QueryStats) ([]Match, error) {
	var out []Match
	numPages := a.Table.NumPages()
	for p := 0; p < numPages; p++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		stats.PagesRead++
		err := a.Table.ScanPage(storage.PageID(p), func(rid storage.RID, tu storage.Tuple) error {
			if tu.Value(a.Column).Equal(key) {
				out = append(out, Match{RID: rid, Tuple: tu})
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
