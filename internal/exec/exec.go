// Package exec implements query execution over a heap table with a
// partial secondary index and an optional Index Buffer. Its centerpiece
// is the indexing table scan of the paper's Algorithm 1: a scan that
// consults the Index Buffer, skips fully indexed pages (counter C[p] ==
// 0), and opportunistically indexes the pages selected by Algorithm 2.
//
// Every query runs through ExecuteShared, which executes Algorithm 1
// once for a whole batch of predicates: Equal and Range are batches of
// size one, and the engine's admission layer coalesces concurrent
// buffer misses on the same table/column into larger batches.
//
// Execution is context-aware: the page-at-a-time loops of the indexing
// scan and the full scan check for cancellation between page reads, so a
// long scan over a cold table can be abandoned mid-flight. The caller
// (the engine) provides the isolation: an indexing scan must run with the
// table's write lock held, everything else is safe under a read lock.
package exec

import (
	"context"
	"runtime"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/heap"
	"repro/internal/index"
	"repro/internal/storage"
)

// Match is one result tuple with its physical address.
type Match struct {
	RID   storage.RID
	Tuple storage.Tuple
}

// QueryStats describes the cost and effect of one query. PagesRead is the
// engine's logical I/O — the quantity the paper's runtime curves are
// shaped by; pages served from the buffer pool still count, since the
// paper's 220 MB table does not fit its buffer either. Each distinct page
// counts once per query, regardless of how many execution stages touch
// it. When several queries share one scan, the scan-wide maintenance
// counters (PagesSelected, EntriesAdded) appear on the batch's first
// scanning query only.
type QueryStats struct {
	Key        storage.Value
	PartialHit bool // answered by the partial index
	FullScan   bool // no buffer available: plain full table scan

	// QuotaDegraded marks a miss executed read-only because the owning
	// tenant's Index-Buffer quota was exhausted: existing buffer state
	// still served lookups and page skips, but no pages were selected or
	// indexed and no other tenant's partitions were displaced.
	QuotaDegraded bool

	Matches       int // result tuples
	BufferMatches int // results obtained from the Index Buffer

	PagesRead     int // heap pages fetched (scan + RID materialization)
	PagesSkipped  int // pages skipped because C[p] == 0
	PagesSelected int // pages newly indexed this scan (|I|)
	EntriesAdded  int // Index Buffer entries inserted this scan

	// ScanWorkers is the number of goroutines the table-scan stage fanned
	// out to: 1 for the serial path, >1 when the scan ran in parallel.
	// Like the maintenance counters, a shared scan attributes it to the
	// batch's first scanning query. Zero when no table scan ran.
	ScanWorkers int

	Duration time.Duration
}

// Heap is the table access the executor needs: page-at-a-time scans and
// RID materialization. *heap.Table implements it; tests substitute
// fault-injecting wrappers.
type Heap interface {
	NumPages() int
	Get(rid storage.RID) (storage.Tuple, error)
	ScanPage(p storage.PageID, fn func(rid storage.RID, tu storage.Tuple) error) error
}

var _ Heap = (*heap.Table)(nil)

// Access bundles the storage objects a point query needs. Index and
// Buffer may be nil (no partial index / no Index Buffer on the column);
// Space must be non-nil whenever Buffer is.
type Access struct {
	Table  Heap
	Column int
	Index  *index.Partial
	Buffer *core.IndexBuffer
	Space  *core.Space

	// Parallelism bounds the worker pool of the table-scan stage: 1 (or
	// a single-page table) runs the serial path, n > 1 fans page-range
	// chunks out to at most n goroutines, and 0 defaults to GOMAXPROCS.
	// Results, stats, and buffer maintenance are bit-identical across
	// settings; see parallel.go for the execution scheme.
	Parallelism int

	// ReadOnly degrades a miss to an unindexed scan: the Index Buffer is
	// consulted (lookups, C[p] == 0 page skips) but never mutated — no
	// page selection, no BeginPage/AddEntry, no displacement. The engine
	// sets it for misses of tenants whose quota is exhausted; because the
	// pass mutates nothing it may run under the table's read lock. The
	// buffer is still pinned against displacement for the pass's
	// duration, since the skip decisions and collected buffer matches
	// assume its partitions stay put.
	ReadOnly bool

	// Span, when non-nil, receives span events from the indexing scan —
	// currently "scan-parallel" (the scan fanned out, n = workers) and
	// "page-complete" (page fully buffered, the C[p]→0 transition) with
	// the page id and the entries added for it. The engine wires it to
	// the tracer's span ring and the adaptation-timeline recorder only
	// while at least one of them is enabled, so the nil check is the
	// entire disabled-path cost.
	Span func(kind string, page, n int)

	// SpaceObs, when non-nil, is threaded through Algorithm-2 page
	// selection (Space.SelectPagesForBufferObserved) so the selection's
	// management events — displace, page-select — are attributed to the
	// statement that triggered them, in addition to the Space-wide
	// observer. The engine wires it to the statement's flight record.
	SpaceObs core.Observer
}

// scanWorkers resolves the effective worker count for a scan over
// numPages pages: Parallelism when positive (GOMAXPROCS when zero),
// never more than the page count.
func (a Access) scanWorkers(numPages int) int {
	w := a.Parallelism
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > numPages {
		w = numPages
	}
	if w < 1 {
		w = 1
	}
	return w
}

// NeedsIndexingScan reports whether the equality query column = key would
// run an indexing scan — the only execution path that mutates the Index
// Buffer and therefore needs exclusive access to the table.
func (a Access) NeedsIndexingScan(key storage.Value) bool {
	return a.Buffer != nil && !(a.Index != nil && a.Index.Covers(key))
}

// NeedsIndexingScanRange is NeedsIndexingScan for lo <= column <= hi.
func (a Access) NeedsIndexingScanRange(lo, hi storage.Value) bool {
	if hi.Compare(lo) < 0 {
		return false
	}
	return a.Buffer != nil && !(a.Index != nil && a.Index.CoversRange(lo, hi))
}

// Equal answers the equality query column = key, maintaining the Index
// Buffer along the way: partial-index hit → index scan; miss with a
// buffer → Algorithm 1; miss without → full scan. It is a shared scan
// with a single attached query; ctx is honored between page reads of the
// scanning paths.
func Equal(ctx context.Context, a Access, key storage.Value) ([]Match, QueryStats, error) {
	o := ExecuteShared(a, []SharedQuery{{Lo: key, Hi: key, Equality: true, Ctx: ctx}})[0]
	return o.Matches, o.Stats, o.Err
}

// FetchHit materializes a partial-index hit from its posting list,
// reproducing the hit path of ExecuteShared bit for bit: RIDs are
// fetched in sorted order, PagesRead counts each distinct page once,
// and the stats carry Key/PartialHit/Matches. rids may alias immutable
// index state — it is copied before sorting. The engine's epoch-based
// read path resolves a probe against an index snapshot and calls this
// to materialize it without entering the shared-scan machinery; only
// a.Table and a.Column are consulted, so a read-path Access with nil
// Index/Buffer/Space is fine. Duration is left to the caller.
func FetchHit(a Access, key storage.Value, rids []storage.RID) ([]Match, QueryStats, error) {
	stats := QueryStats{Key: key, PartialHit: true}
	m, err := fetchRIDs(a, rids, &stats, pageSet{})
	if err != nil {
		return nil, stats, err
	}
	stats.Matches = len(m)
	return m, stats, nil
}

// fetchRIDs materializes tuples for a posting list, page by page. Pages
// are charged to stats through seen, so a page the query already fetched
// in another stage is not double-counted.
func fetchRIDs(a Access, rids []storage.RID, stats *QueryStats, seen pageSet) ([]Match, error) {
	if len(rids) == 0 {
		return nil, nil
	}
	sorted := append([]storage.RID(nil), rids...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Less(sorted[j]) })

	var out []Match
	for _, rid := range sorted {
		seen.read(stats, rid.Page)
		tu, err := a.Table.Get(rid)
		if err != nil {
			return nil, err
		}
		out = append(out, Match{RID: rid, Tuple: tu})
	}
	return out, nil
}
