package exec

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"sync/atomic"
	"testing"

	"repro/internal/heap"
	"repro/internal/storage"
)

// The parallel scan's contract is bit-identical results: for any batch,
// an Access with Parallelism > 1 must produce the same outcomes and
// leave the same Index Buffer state as the serial scan. The tests here
// hold the serial path as the oracle and diff everything observable.

// normStats strips the two fields that legitimately differ across
// parallelism settings: wall time and the fan-out itself.
func normStats(s QueryStats) QueryStats {
	s.Duration = 0
	s.ScanWorkers = 0
	return s
}

// oracleFixtures builds two identical table+buffer fixtures, one for the
// serial oracle and one for the parallel run under test.
func oracleFixtures(t *testing.T, rows, parallelism int) (serial, par Access) {
	t.Helper()
	serial = scanFixture(t, buildTable(t, rows))
	serial.Parallelism = 1
	par = scanFixture(t, buildTable(t, rows))
	par.Parallelism = parallelism
	return serial, par
}

// diffOutcomes asserts the parallel batch outcome equals the serial one.
func diffOutcomes(t *testing.T, label string, serial, par []SharedOutcome) {
	t.Helper()
	for i := range serial {
		s, p := serial[i], par[i]
		if (s.Err == nil) != (p.Err == nil) {
			t.Fatalf("%s query %d: serial err %v, parallel err %v", label, i, s.Err, p.Err)
		}
		if !reflect.DeepEqual(normStats(s.Stats), normStats(p.Stats)) {
			t.Errorf("%s query %d stats:\nserial   %+v\nparallel %+v", label, i, normStats(s.Stats), normStats(p.Stats))
		}
		if len(s.Matches) != len(p.Matches) {
			t.Fatalf("%s query %d: %d serial matches, %d parallel", label, i, len(s.Matches), len(p.Matches))
		}
		for j := range s.Matches {
			if s.Matches[j].RID != p.Matches[j].RID {
				t.Fatalf("%s query %d match %d: serial %v, parallel %v", label, i, j, s.Matches[j].RID, p.Matches[j].RID)
			}
		}
	}
}

// diffBuffers asserts the two fixtures' Index Buffer states are
// identical: every page counter, the entry totals, and the Space budget.
func diffBuffers(t *testing.T, label string, serial, par Access, numPages int) {
	t.Helper()
	for p := 0; p < numPages; p++ {
		pg := storage.PageID(p)
		if s, g := serial.Buffer.Counter(pg), par.Buffer.Counter(pg); s != g {
			t.Errorf("%s: C[%d] serial %d, parallel %d", label, p, s, g)
		}
		if c := par.Buffer.Counter(pg); c < 0 {
			t.Errorf("%s: C[%d] = %d negative", label, p, c)
		}
	}
	if s, g := serial.Buffer.EntryCount(), par.Buffer.EntryCount(); s != g {
		t.Errorf("%s: entries serial %d, parallel %d", label, s, g)
	}
	if s, g := serial.Space.Used(), par.Space.Used(); s != g {
		t.Errorf("%s: space used serial %d, parallel %d", label, s, g)
	}
}

// TestParallelMatchesSerialOracle runs the standard shared batch at
// parallelism 4 against the serial oracle, then repeats it so the
// second round exercises the all-pages-skipped path in parallel too.
func TestParallelMatchesSerialOracle(t *testing.T) {
	sa, pa := oracleFixtures(t, 300, 4)
	batch := []SharedQuery{
		{Lo: iv(8), Hi: iv(8), Equality: true},
		{Lo: iv(9), Hi: iv(9), Equality: true},
		{Lo: iv(2), Hi: iv(2), Equality: true}, // covered: index hit
		{Lo: iv(5), Hi: iv(9)},                 // range straddling coverage
	}
	for round, label := range []string{"cold", "buffered"} {
		so := ExecuteShared(sa, batch)
		po := ExecuteShared(pa, batch)
		if round == 0 && po[0].Stats.ScanWorkers != 4 {
			t.Errorf("parallel leader reports %d workers, want 4", po[0].Stats.ScanWorkers)
		}
		diffOutcomes(t, label, so, po)
		diffBuffers(t, label, sa, pa, sa.Table.NumPages())
	}
}

// TestParallelOracleRandomized drives both fixtures through the same
// seeded random batch stream — mixed equality and range predicates, in
// and out of index coverage — and diffs outcomes and buffer state after
// every batch. Seeded, so failures replay exactly.
func TestParallelOracleRandomized(t *testing.T) {
	for _, parallelism := range []int{2, 4} {
		sa, pa := oracleFixtures(t, 400, parallelism)
		numPages := sa.Table.NumPages()
		rng := rand.New(rand.NewSource(42))
		for round := 0; round < 12; round++ {
			batch := make([]SharedQuery, 1+rng.Intn(4))
			for i := range batch {
				lo := int64(rng.Intn(12) - 1) // keys are 0..9; stray outside on purpose
				if rng.Intn(2) == 0 {
					batch[i] = SharedQuery{Lo: iv(lo), Hi: iv(lo), Equality: true}
				} else {
					batch[i] = SharedQuery{Lo: iv(lo), Hi: iv(lo + int64(rng.Intn(5)))}
				}
			}
			so := ExecuteShared(sa, batch)
			po := ExecuteShared(pa, batch)
			label := string(rune('a' + round))
			diffOutcomes(t, label, so, po)
			diffBuffers(t, label, sa, pa, numPages)
		}
	}
}

// raceFaultHeap injects a fault after a set number of scanned tuples,
// like faultHeap, but with atomic state so concurrent workers may hit it.
type raceFaultHeap struct {
	*heap.Table
	remaining atomic.Int64
	armed     atomic.Bool
}

func (f *raceFaultHeap) ScanPage(p storage.PageID, fn func(storage.RID, storage.Tuple) error) error {
	return f.Table.ScanPage(p, func(rid storage.RID, tu storage.Tuple) error {
		if f.armed.Load() && f.remaining.Add(-1) < 0 {
			return errInjected
		}
		return fn(rid, tu)
	})
}

// TestParallelFaultLeavesBufferUntouched checks the parallel path's
// all-or-nothing failure contract: a fault during phase 1 aborts before
// the merge, so the Index Buffer holds nothing — no partial page, no
// counter movement, no Space usage.
func TestParallelFaultLeavesBufferUntouched(t *testing.T) {
	fh := &raceFaultHeap{Table: buildTable(t, 300)}
	a := scanFixture(t, fh)
	a.Parallelism = 4
	fh.remaining.Store(25)
	fh.armed.Store(true)

	_, _, err := Equal(context.Background(), a, iv(8))
	if !errors.Is(err, errInjected) {
		t.Fatalf("err = %v, want injected fault", err)
	}
	if n := a.Buffer.EntryCount(); n != 0 {
		t.Errorf("buffer holds %d entries after aborted parallel scan", n)
	}
	if used := a.Space.Used(); used != 0 {
		t.Errorf("Space.Used() = %d after aborted parallel scan", used)
	}
	for p := 0; p < fh.NumPages(); p++ {
		pg := storage.PageID(p)
		if got, want := a.Buffer.Counter(pg), a.Buffer.Uncovered(pg); got != want {
			t.Errorf("C[%d] = %d after abort, want untouched %d", p, got, want)
		}
	}

	// Disarmed, the same query completes and matches the fixture oracle.
	fh.armed.Store(false)
	got, stats, err := Equal(context.Background(), a, iv(8))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 30 || stats.ScanWorkers != 4 {
		t.Errorf("recovery: %d matches, %d workers", len(got), stats.ScanWorkers)
	}
	checkCounterInvariant(t, fh.Table, a)
}

// TestParallelCancelOne mirrors TestExecuteSharedCancelOne at
// parallelism 4: the canceled query gets ctx.Err and no matches, the
// live one completes, and the scan still builds the buffer.
func TestParallelCancelOne(t *testing.T) {
	a := scanFixture(t, buildTable(t, 300))
	a.Parallelism = 4
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	outs := ExecuteShared(a, []SharedQuery{
		{Lo: iv(8), Hi: iv(8), Equality: true, Ctx: canceled},
		{Lo: iv(9), Hi: iv(9), Equality: true},
	})
	if !errors.Is(outs[0].Err, context.Canceled) || outs[0].Matches != nil {
		t.Errorf("canceled query: err=%v matches=%d", outs[0].Err, len(outs[0].Matches))
	}
	if outs[1].Err != nil || len(outs[1].Matches) != 30 {
		t.Errorf("live query: err=%v matches=%d", outs[1].Err, len(outs[1].Matches))
	}
	if a.Buffer.EntryCount() == 0 {
		t.Error("scan aborted: buffer empty after one query canceled")
	}
}

// TestParallelCancelAll: when every attached query's context is expired
// the pool aborts in phase 1 and, like the fault path, applies nothing.
func TestParallelCancelAll(t *testing.T) {
	a := scanFixture(t, buildTable(t, 300))
	a.Parallelism = 4
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	outs := ExecuteShared(a, []SharedQuery{
		{Lo: iv(8), Hi: iv(8), Equality: true, Ctx: canceled},
		{Lo: iv(9), Hi: iv(9), Equality: true, Ctx: canceled},
	})
	for i, o := range outs {
		if !errors.Is(o.Err, context.Canceled) || o.Matches != nil {
			t.Errorf("query %d: err=%v matches=%d", i, o.Err, len(o.Matches))
		}
	}
	if n := a.Buffer.EntryCount(); n != 0 {
		t.Errorf("buffer holds %d entries after fully-canceled scan", n)
	}
	if used := a.Space.Used(); used != 0 {
		t.Errorf("Space.Used() = %d after fully-canceled scan", used)
	}
}
