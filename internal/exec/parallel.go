package exec

import (
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/heap"
	"repro/internal/storage"
)

// This file parallelizes the table-scan stage of ExecuteShared — the
// page-at-a-time heap walk that dominates every miss (the paper's §III
// cost model counts pages read, and Fig. 6's runtime is exactly that
// walk). The scan runs in two phases:
//
// Phase 1 (parallel, read-only): the page range [0, numPages) is split
// into contiguous chunks (heap.Chunks) claimed by a bounded worker pool
// off a shared cursor. Workers read pages, evaluate every attached
// query's predicate, and — for pages in the Algorithm-2 selection set I
// — collect the page's candidate Index Buffer entries. Nothing is
// mutated: workers share only the per-query cancellation flags and the
// per-page result slots (each page is written by exactly one worker).
//
// Phase 2 (serial, ordered merge): pages are folded in ascending page
// order into per-query stats, match lists, and the Index Buffer
// (core.ApplyPage assigns the page and inserts its complete entry set
// under one lock acquisition). Because the merge visits pages in the
// same order the serial loop does, results, QueryStats, partition
// assignment, C[p] transitions, and span events are bit-identical to
// parallelism=1 — the property the serial-oracle harness in
// parallel_test.go checks.
//
// Skip-safety: workers read the scan-start counter snapshot, which is
// lock-free and trivially identical across workers. It also matches
// what the serial loop would see live at every page's check: the only
// C[p] transitions during a scan are the ones this scan's merge
// performs (the caller holds the table's write lock, and
// Space.PinForScan keeps displacement away), and phase 2 starts
// strictly after every worker has finished — so a page's skip decision
// never races its own indexing.
//
// Failure semantics differ from the serial path in one deliberate way:
// a table-level fault or whole-batch cancellation in phase 1 aborts
// before phase 2, leaving the Index Buffer completely untouched — there
// is no partially-indexed page to roll back, so the AbortPage path is
// only needed by the serial scan. The invariant both paths preserve is
// the same: C[p] == 0 only when every uncovered tuple of p is buffered.

// chunksPerWorker over-partitions the page range so a worker that lands
// on cheap chunks (skipped or pool-resident pages) claims more work
// instead of idling behind a worker stuck on cold pages.
const chunksPerWorker = 4

// qMatch is one matching tuple tagged with the position (in scanQ) of
// the query it belongs to.
type qMatch struct {
	q int
	m Match
}

// pageResult is one page's phase-1 output, written by exactly one
// worker and read only after the worker pool has drained.
type pageResult struct {
	skipped bool // C[p] == 0: page not read
	matches []qMatch
	entries []core.PageEntry // candidate entries when the page is in I
}

// parallelScan is the shared state of one fan-out.
type parallelScan struct {
	a      Access
	qs     []SharedQuery
	states []scanState
	scanQ  []int
	inI    map[storage.PageID]bool // nil for a full scan
	snap   *core.CounterSnap       // scan-start counters; nil for a full scan

	results  []pageResult
	canceled []atomic.Bool // by position in scanQ
	chunks   []heap.PageRange
	next     atomic.Int64 // chunk cursor
	abort    atomic.Bool

	errMu sync.Mutex
	err   error // first table-level fault
}

func newParallelScan(a Access, qs []SharedQuery, states []scanState, scanQ []int, inI map[storage.PageID]bool, snap *core.CounterSnap, numPages, workers int) *parallelScan {
	return &parallelScan{
		a:        a,
		qs:       qs,
		states:   states,
		scanQ:    scanQ,
		inI:      inI,
		snap:     snap,
		results:  make([]pageResult, numPages),
		canceled: make([]atomic.Bool, len(scanQ)),
		chunks:   heap.Chunks(numPages, workers*chunksPerWorker),
	}
}

// run executes phase 1 on a pool of `workers` goroutines and returns the
// first table-level fault, if any. It always waits for every worker to
// exit before returning — no goroutine outlives the scan.
func (s *parallelScan) run(workers int) error {
	if s.a.Span != nil {
		s.a.Span("scan-parallel", -1, workers)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.worker()
		}()
	}
	wg.Wait()
	s.errMu.Lock()
	defer s.errMu.Unlock()
	return s.err
}

// fail records the first table-level fault and stops the pool.
func (s *parallelScan) fail(err error) {
	s.errMu.Lock()
	if s.err == nil {
		s.err = err
	}
	s.errMu.Unlock()
	s.abort.Store(true)
}

// pollCancel marks queries whose context expired and reports whether any
// attached query is still live — the parallel analogue of the serial
// loop's per-page pollCancel.
func (s *parallelScan) pollCancel() bool {
	any := false
	for k := range s.canceled {
		if s.canceled[k].Load() {
			continue
		}
		if s.states[s.scanQ[k]].ctx.Err() != nil {
			s.canceled[k].Store(true)
			continue
		}
		any = true
	}
	return any
}

// worker claims chunks until the cursor runs dry or the scan aborts.
func (s *parallelScan) worker() {
	for {
		if s.abort.Load() {
			return
		}
		ci := int(s.next.Add(1)) - 1
		if ci >= len(s.chunks) {
			return
		}
		r := s.chunks[ci]
		for p := r.Lo; p < r.Hi; p++ {
			if s.abort.Load() {
				return
			}
			if !s.pollCancel() {
				s.abort.Store(true) // every attached query canceled
				return
			}
			if err := s.scanOne(p); err != nil {
				s.fail(err)
				return
			}
		}
	}
}

// scanOne reads page pg and records its result slot. It mirrors the
// serial loop's per-page work minus every mutation: the skip check
// against C[p], predicate evaluation for each live attached query, and
// candidate-entry collection for pages in I.
func (s *parallelScan) scanOne(pg storage.PageID) error {
	res := &s.results[pg]
	if s.inI != nil && s.snap.At(pg) == 0 {
		res.skipped = true
		return nil
	}
	indexThis := s.inI != nil && s.inI[pg]
	return s.a.Table.ScanPage(pg, func(rid storage.RID, tu storage.Tuple) error {
		v := tu.Value(s.a.Column)
		for k, qi := range s.scanQ {
			if !s.canceled[k].Load() && s.qs[qi].matches(v) {
				res.matches = append(res.matches, qMatch{q: k, m: Match{RID: rid, Tuple: tu}})
			}
		}
		if indexThis && (s.a.Index == nil || !s.a.Index.Covers(v)) {
			res.entries = append(res.entries, core.PageEntry{Key: v, RID: rid})
		}
		return nil
	})
}

// finish publishes phase-1 cancellations and faults into the outcome
// slots, exactly as the serial loop's pollCancel/failActive would, and
// reports whether the scan aborted (fault, or whole batch canceled).
func (s *parallelScan) finish(err error, outs []SharedOutcome) (aborted bool) {
	for k, qi := range s.scanQ {
		if s.canceled[k].Load() && s.states[qi].active {
			outs[qi].Err = s.states[qi].ctx.Err()
			outs[qi].Matches = nil
			s.states[qi].active = false
		}
	}
	if err != nil {
		failActive(err, outs, s.states, s.scanQ)
		return true
	}
	any := false
	for _, qi := range s.scanQ {
		any = any || s.states[qi].active
	}
	return !any
}

// mergeMatches folds one completed page's demuxed matches and read/skip
// accounting into the outcomes, in the serial loop's order.
func (s *parallelScan) mergeMatches(pg storage.PageID, res *pageResult, outs []SharedOutcome) {
	if res.skipped {
		for _, qi := range s.scanQ {
			if s.states[qi].active {
				outs[qi].Stats.PagesSkipped++
			}
		}
		return
	}
	for _, qi := range s.scanQ {
		if s.states[qi].active {
			s.states[qi].seen.read(&outs[qi].Stats, pg)
		}
	}
	for _, m := range res.matches {
		if qi := s.scanQ[m.q]; s.states[qi].active {
			outs[qi].Matches = append(outs[qi].Matches, m.m)
		}
	}
}

// parallelFullScan is the fan-out variant of sharedFullScan's page loop.
// Called after the FullScan flags are set; the merge performs no buffer
// maintenance because there is no buffer.
func parallelFullScan(a Access, qs []SharedQuery, outs []SharedOutcome, states []scanState, scanQ []int, numPages, workers int) {
	s := newParallelScan(a, qs, states, scanQ, nil, nil, numPages, workers)
	if s.finish(s.run(workers), outs) {
		return
	}
	for p := 0; p < numPages; p++ {
		s.mergeMatches(storage.PageID(p), &s.results[p], outs)
	}
}

// parallelIndexingPass is the fan-out variant of sharedIndexingScan's
// table-scan loop (Algorithm 1 lines 11–17). The ordered merge applies
// each selected page's complete entry set to the Index Buffer via
// ApplyPage, so C[p] → 0 transitions, partition assignment, and
// page-complete span events happen in ascending page order exactly as
// in the serial loop. Returns the pages skipped, the entries added, and
// whether the scan aborted.
func parallelIndexingPass(a Access, qs []SharedQuery, outs []SharedOutcome, states []scanState, scanQ []int, inI map[storage.PageID]bool, snap *core.CounterSnap, numPages, workers int) (skipped map[storage.PageID]bool, entriesAdded int, aborted bool) {
	s := newParallelScan(a, qs, states, scanQ, inI, snap, numPages, workers)
	if s.finish(s.run(workers), outs) {
		// Aborted in phase 1: no page was applied, the buffer is untouched.
		return nil, 0, true
	}
	skipped = make(map[storage.PageID]bool)
	for p := 0; p < numPages; p++ {
		pg := storage.PageID(p)
		res := &s.results[p]
		if res.skipped {
			skipped[pg] = true
		}
		s.mergeMatches(pg, res, outs)
		if !res.skipped && inI[pg] {
			if err := a.Buffer.ApplyPage(pg, res.entries); err != nil {
				failActive(err, outs, states, scanQ)
				return skipped, entriesAdded, true
			}
			entriesAdded += len(res.entries)
			if a.Span != nil {
				a.Span("page-complete", int(pg), len(res.entries))
			}
		}
	}
	return skipped, entriesAdded, false
}
